// ViVo-style visibility determination (paper Section 3): which cells of the
// partitioned point cloud does a viewer actually need, and at what density?
//
// Three optimizations, individually switchable for ablation:
//   * viewport  — frustum culling of cells against the 3D viewport,
//   * occlusion — cells hidden behind dense closer cells (or behind another
//                 user's body) are dropped,
//   * distance  — far cells are fetched at reduced point density
//                 (level-of-detail), since projected point spacing shrinks
//                 with 1/distance.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geometry/frustum.h"
#include "geometry/obstacle.h"
#include "geometry/pose.h"
#include "pointcloud/cell_grid.h"
#include "trace/mobility.h"

namespace volcast::view {

/// Camera intrinsics of the study hardware: Magic Leap One class headsets
/// have a narrow ~45 degree AR field of view; smartphone AR sessions render
/// a wider ~60 degree camera view. The narrow headset FoV is one reason the
/// paper finds lower viewport similarity for the HM group.
[[nodiscard]] geo::CameraIntrinsics device_intrinsics(
    trace::DeviceType device) noexcept;

/// Per-viewer map over the cell grid: visibility flag + fetch density in
/// (0, 1] for each visible cell.
class VisibilityMap {
 public:
  VisibilityMap() = default;
  explicit VisibilityMap(std::size_t cell_count)
      : lod_(cell_count, 0.0f) {}

  [[nodiscard]] std::size_t cell_count() const noexcept { return lod_.size(); }

  void set(vv::CellId cell, double lod = 1.0) {
    float& slot = lod_.at(cell);
    const bool was = slot > 0.0f;
    slot = static_cast<float>(lod);
    const bool now = slot > 0.0f;
    if (now && !was)
      ++visible_;
    else if (was && !now)
      --visible_;
  }
  void reset(vv::CellId cell) {
    float& slot = lod_.at(cell);
    if (slot > 0.0f) --visible_;
    slot = 0.0f;
  }

  [[nodiscard]] bool visible(vv::CellId cell) const {
    return lod_.at(cell) > 0.0f;
  }
  /// Fetch density for the cell; 0 when not visible.
  [[nodiscard]] double lod(vv::CellId cell) const { return lod_.at(cell); }

  /// Number of visible cells. O(1): the count is maintained on write.
  [[nodiscard]] std::size_t visible_count() const noexcept {
    return visible_;
  }

  /// Ids of all visible cells, ascending.
  [[nodiscard]] std::vector<vv::CellId> visible_cells() const;

 private:
  std::vector<float> lod_;
  std::size_t visible_ = 0;
};

/// A person standing in the scene (shared with the mmWave blockage model;
/// see geometry/obstacle.h).
using BodyObstacle = geo::BodyObstacle;
using geo::segment_hits_body;

/// Which of the three ViVo optimizations to apply.
struct VisibilityOptions {
  bool viewport_culling = true;
  bool occlusion_culling = true;
  bool distance_lod = true;

  geo::CameraIntrinsics intrinsics{};
  /// Distance at which full density is required; beyond it the needed
  /// fraction falls off as (reference / d)^2 (projected point spacing).
  double lod_reference_m = 1.8;
  /// Floor for the LoD fraction, so far content is never dropped entirely.
  double lod_min = 0.25;
  /// A cell is opaque for self-occlusion when its point count exceeds this
  /// multiple of the mean occupied-cell count.
  double occluder_density_factor = 0.6;
  /// Opaque path length (in multiples of the cell size) the sight ray must
  /// cross before the target cell counts as occluded: ~1.2 cells of dense
  /// surface in front hides what is behind.
  double occluder_thickness_cells = 1.2;
};

/// Computes the visibility map of a viewer at `pose` over `grid`, given the
/// per-cell point counts `occupancy` of the current frame.
/// `others` lists other people in the room for user-user occlusion (pass
/// empty for single-user ViVo semantics).
/// Pure function of its arguments: `grid` and `occupancy` are only read, so
/// many sessions may compute visibility against one shared WorkloadBundle's
/// grid/occupancy concurrently.
[[nodiscard]] VisibilityMap compute_visibility(
    const vv::CellGrid& grid, std::span<const std::uint32_t> occupancy,
    const geo::Pose& pose, const VisibilityOptions& options = {},
    std::span<const BodyObstacle> others = {});

/// Total bytes a viewer needs for `frame` at `tier`, given its visibility
/// map: sum over visible cells of encoded size scaled by LoD density.
/// (Fractional-density cells are modelled as thinned re-encodes, which our
/// near-constant bits/point codec justifies.)
[[nodiscard]] double fetch_bytes(const VisibilityMap& map,
                                 const class FetchSizer& sizer);

/// Callback-free sizing adapter so viewport code does not depend on
/// VideoStore: cell -> encoded bytes at full density.
class FetchSizer {
 public:
  virtual ~FetchSizer() = default;
  [[nodiscard]] virtual double cell_bytes(vv::CellId cell) const = 0;
};

}  // namespace volcast::view
