// Inter-user viewport similarity (paper Section 3, Fig. 2): the intersection
// over union of users' visibility maps, the quantity that decides whether
// multicast can pay off.
#pragma once

#include <span>
#include <vector>

#include "viewport/visibility.h"

namespace volcast::view {

/// IoU of two visibility maps (cells with any positive LoD count as
/// visible). Returns 1.0 when both maps are empty — two users who need
/// nothing trivially agree.
[[nodiscard]] double iou(const VisibilityMap& a, const VisibilityMap& b);

/// IoU over an arbitrary group: |intersection of all| / |union of all|.
/// Mirrors the paper's group-size analysis (Fig. 2b, HM(3) curve).
[[nodiscard]] double group_iou(std::span<const VisibilityMap> maps);
[[nodiscard]] double group_iou(std::span<const VisibilityMap* const> maps);

/// Cells visible to every user of the group (the multicast payload of
/// Fig. 1: "overlapped cells"), with the group-maximum LoD per cell so the
/// multicast copy satisfies the most demanding member.
[[nodiscard]] VisibilityMap intersection(std::span<const VisibilityMap> maps);

/// Cells visible to at least one user.
[[nodiscard]] VisibilityMap union_of(std::span<const VisibilityMap> maps);

}  // namespace volcast::view
