#include "viewport/visibility.h"

#include <algorithm>
#include <cmath>

namespace volcast::view {

geo::CameraIntrinsics device_intrinsics(trace::DeviceType device) noexcept {
  geo::CameraIntrinsics intr;
  if (device == trace::DeviceType::kSmartphone) {
    intr.horizontal_fov_rad = 1.0471975511965976;  // 60 degrees
    intr.aspect = 0.75;
  } else {
    intr.horizontal_fov_rad = 0.7853981633974483;  // 45 degrees
    intr.aspect = 0.75;
  }
  return intr;
}

std::size_t VisibilityMap::visible_count() const noexcept {
  std::size_t n = 0;
  for (float l : lod_)
    if (l > 0.0f) ++n;
  return n;
}

std::vector<vv::CellId> VisibilityMap::visible_cells() const {
  std::vector<vv::CellId> out;
  for (vv::CellId c = 0; c < lod_.size(); ++c)
    if (lod_[c] > 0.0f) out.push_back(c);
  return out;
}

namespace {

/// True when a sight ray from `eye` to `target_center` is blocked by opaque
/// cells (dense cells clearly in front of the target).
bool ray_occluded(const vv::CellGrid& grid,
                  std::span<const std::uint32_t> occupancy,
                  const geo::Vec3& eye, const geo::Vec3& target_center,
                  vv::CellId target, double opaque_threshold,
                  double occluder_thickness_cells) {
  const geo::Vec3 delta = target_center - eye;
  const double dist = delta.norm();
  if (dist < 1e-9) return false;
  const geo::Vec3 dir = delta / dist;
  // Sample the ray at quarter-cell steps, skipping a guard band at both
  // ends, and accumulate the opaque path length the ray crosses: enough
  // dense surface in front hides the target, regardless of how much empty
  // air the ray also traverses.
  const double step = grid.cell_size_m() * 0.25;
  const double start = grid.cell_size_m() * 0.5;         // leave the eye
  const double stop = dist - grid.cell_size_m() * 0.75;  // stop before target
  if (stop <= start) return false;
  const double needed = occluder_thickness_cells * grid.cell_size_m();
  double opaque_length = 0.0;
  for (double s = start; s < stop; s += step) {
    const geo::Vec3 p = eye + dir * s;
    if (!grid.bounds().contains(p)) continue;
    const vv::CellId c = grid.locate(p);
    if (c == target) continue;
    if (static_cast<double>(occupancy[c]) >= opaque_threshold) {
      opaque_length += step;
      if (opaque_length >= needed) return true;
    }
  }
  return false;
}

}  // namespace

VisibilityMap compute_visibility(const vv::CellGrid& grid,
                                 std::span<const std::uint32_t> occupancy,
                                 const geo::Pose& pose,
                                 const VisibilityOptions& options,
                                 std::span<const BodyObstacle> others) {
  VisibilityMap map(grid.cell_count());
  if (occupancy.size() != grid.cell_count()) return map;

  // Opacity threshold for self-occlusion: relative to the mean occupied
  // cell so it adapts across quality tiers and cell sizes.
  double mean_occupied = 0.0;
  std::size_t occupied = 0;
  for (std::uint32_t n : occupancy) {
    if (n > 0) {
      mean_occupied += n;
      ++occupied;
    }
  }
  if (occupied == 0) return map;
  mean_occupied /= static_cast<double>(occupied);
  const double opaque_threshold =
      mean_occupied * options.occluder_density_factor;

  const geo::Frustum frustum(pose, options.intrinsics);
  const geo::Vec3 eye = pose.position;

  for (vv::CellId c = 0; c < grid.cell_count(); ++c) {
    if (occupancy[c] == 0) continue;
    const geo::Aabb cell = grid.cell_bounds(c);
    if (options.viewport_culling && !frustum.intersects(cell)) continue;

    const geo::Vec3 center = cell.center();
    if (options.occlusion_culling) {
      if (ray_occluded(grid, occupancy, eye, center, c, opaque_threshold,
                       options.occluder_thickness_cells))
        continue;
      bool behind_body = false;
      for (const BodyObstacle& body : others) {
        if (segment_hits_body(eye, center, body)) {
          behind_body = true;
          break;
        }
      }
      if (behind_body) continue;
    }

    double lod = 1.0;
    if (options.distance_lod) {
      const double d = std::max(center.distance(eye), 1e-3);
      if (d > options.lod_reference_m) {
        const double ratio = options.lod_reference_m / d;
        lod = std::max(ratio * ratio, options.lod_min);
      }
    }
    map.set(c, lod);
  }
  return map;
}

double fetch_bytes(const VisibilityMap& map, const FetchSizer& sizer) {
  double total = 0.0;
  for (vv::CellId c = 0; c < map.cell_count(); ++c) {
    const double lod = map.lod(c);
    if (lod > 0.0) total += sizer.cell_bytes(c) * lod;
  }
  return total;
}

}  // namespace volcast::view
