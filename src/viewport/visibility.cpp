#include "viewport/visibility.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace volcast::view {

geo::CameraIntrinsics device_intrinsics(trace::DeviceType device) noexcept {
  geo::CameraIntrinsics intr;
  if (device == trace::DeviceType::kSmartphone) {
    intr.horizontal_fov_rad = 1.0471975511965976;  // 60 degrees
    intr.aspect = 0.75;
  } else {
    intr.horizontal_fov_rad = 0.7853981633974483;  // 45 degrees
    intr.aspect = 0.75;
  }
  return intr;
}

std::vector<vv::CellId> VisibilityMap::visible_cells() const {
  std::vector<vv::CellId> out;
  for (vv::CellId c = 0; c < lod_.size(); ++c)
    if (lod_[c] > 0.0f) out.push_back(c);
  return out;
}

namespace {

/// Truncation floor for the DDA entry coordinate: exact for x >= 0, and a
/// (slightly) negative x — FP noise at the grid's lower face — lands on
/// slot 0 just as a floor + clamp would.
[[nodiscard]] inline std::int64_t floor_clamped(double x,
                                                std::int64_t n) noexcept {
  if (x <= 0.0) return 0;
  const auto i = static_cast<std::int64_t>(x);
  return i < n ? i : n - 1;
}

/// True when a sight ray from `eye` to `target_center` is blocked by opaque
/// cells (cells with occupancy >= `opaque_threshold` clearly in front of the
/// target).
///
/// Walks the grid cell-by-cell with an Amanatides–Woo 3D DDA and
/// accumulates the exact opaque path length the ray crosses: enough dense
/// surface in front hides the target, regardless of how much empty air the
/// ray also traverses. Cost is O(cells crossed) — independent of any sample
/// step — and the per-cell segment lengths are exact, so there is no
/// step-size aliasing. The traversal is parameterized by the unnormalized
/// eye->target delta (s in [0, 1]), which needs no direction normalization.
bool ray_occluded(const vv::CellGrid& grid,
                  std::span<const std::uint32_t> occupancy,
                  double opaque_threshold, const geo::Aabb& opaque_bounds,
                  const geo::Vec3& eye, const geo::Vec3& target_center,
                  vv::CellId target, double occluder_thickness_cells) {
  const geo::Vec3 delta = target_center - eye;
  const double dist = delta.norm();
  if (dist < 1e-9) return false;
  const double cell = grid.cell_size_m();
  const double inv_dist = 1.0 / dist;
  // Guard bands at both ends: leave the eye's own surroundings, stop before
  // the target so it never occludes itself. All in s-units (fractions of
  // the full segment).
  double s0 = cell * 0.5 * inv_dist;
  double s1 = 1.0 - cell * 0.75 * inv_dist;
  if (s1 <= s0) return false;
  // Opaque path length needed to occlude, in s-units.
  const double needed = occluder_thickness_cells * cell * inv_dist;

  // Clip [s0, s1] to the bounding box of the opaque cells — outside it
  // nothing can occlude — computing each axis' reciprocal once (reused by
  // the DDA set-up). The clipped span caps the achievable opaque path
  // length, so a span shorter than `needed` rejects the ray with no
  // traversal at all.
  const double origin[3] = {eye.x, eye.y, eye.z};
  const double d[3] = {delta.x, delta.y, delta.z};
  const double lo[3] = {opaque_bounds.lo.x, opaque_bounds.lo.y,
                        opaque_bounds.lo.z};
  const double hi[3] = {opaque_bounds.hi.x, opaque_bounds.hi.y,
                        opaque_bounds.hi.z};
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double inv[3];
  for (int axis = 0; axis < 3; ++axis) {
    if (std::abs(d[axis]) < 1e-15) {
      if (origin[axis] < lo[axis] || origin[axis] > hi[axis]) return false;
      inv[axis] = kInf;
      continue;
    }
    inv[axis] = 1.0 / d[axis];
    double sa = (lo[axis] - origin[axis]) * inv[axis];
    double sb = (hi[axis] - origin[axis]) * inv[axis];
    if (sa > sb) std::swap(sa, sb);
    s0 = std::max(s0, sa);
    s1 = std::min(s1, sb);
    if (s0 >= s1) return false;
  }
  if (s1 - s0 < needed) return false;

  // DDA state: integer cell coordinates of the entry point, the s of the
  // next boundary crossing per axis (s_max), and the s advance per full
  // cell (s_delta). Cell indexing is relative to the grid origin; the
  // entry point lies inside the grid because the opaque box is within it.
  const geo::Vec3 grid_lo = grid.bounds().lo;
  const double glo[3] = {grid_lo.x, grid_lo.y, grid_lo.z};
  const std::int64_t n[3] = {grid.nx(), grid.ny(), grid.nz()};
  std::int64_t idx[3];
  double s_max[3];
  double s_delta[3];
  const double inv_cell = 1.0 / cell;
  for (int axis = 0; axis < 3; ++axis) {
    const double entry = origin[axis] + d[axis] * s0;
    idx[axis] = floor_clamped((entry - glo[axis]) * inv_cell, n[axis]);
    if (inv[axis] == kInf) {
      s_max[axis] = kInf;
      s_delta[axis] = kInf;
    } else {
      const double next_boundary =
          glo[axis] +
          static_cast<double>(idx[axis] + (d[axis] > 0.0 ? 1 : 0)) * cell;
      s_max[axis] = (next_boundary - origin[axis]) * inv[axis];
      s_delta[axis] = cell * std::abs(inv[axis]);
    }
  }

  const std::int64_t nx = n[0];
  const std::int64_t nxy = n[0] * n[1];
  double s_cur = s0;
  double opaque_length = 0.0;
  while (s_cur < s1) {
    const double s_next = std::min({s_max[0], s_max[1], s_max[2], s1});
    const auto c =
        static_cast<vv::CellId>(idx[0] + nx * idx[1] + nxy * idx[2]);
    if (c != target &&
        static_cast<double>(occupancy[c]) >= opaque_threshold) {
      opaque_length += s_next - s_cur;
      if (opaque_length >= needed) return true;
    }
    if (s_next >= s1) break;
    // Advance across the nearest boundary (ties advance one axis; the next
    // iteration advances the other for a zero-length corner segment).
    int step_axis = 0;
    if (s_max[1] < s_max[0]) step_axis = 1;
    if (s_max[2] < s_max[step_axis]) step_axis = 2;
    idx[step_axis] += d[step_axis] > 0.0 ? 1 : -1;
    if (idx[step_axis] < 0 || idx[step_axis] >= n[step_axis]) break;
    s_cur = s_max[step_axis];
    s_max[step_axis] += s_delta[step_axis];
  }
  return false;
}

}  // namespace

VisibilityMap compute_visibility(const vv::CellGrid& grid,
                                 std::span<const std::uint32_t> occupancy,
                                 const geo::Pose& pose,
                                 const VisibilityOptions& options,
                                 std::span<const BodyObstacle> others) {
  VisibilityMap map(grid.cell_count());
  if (occupancy.size() != grid.cell_count()) return map;

  // Opacity threshold for self-occlusion: relative to the mean occupied
  // cell so it adapts across quality tiers and cell sizes.
  double mean_occupied = 0.0;
  std::size_t occupied = 0;
  for (std::uint32_t n : occupancy) {
    if (n > 0) {
      mean_occupied += n;
      ++occupied;
    }
  }
  if (occupied == 0) return map;
  mean_occupied /= static_cast<double>(occupied);
  const double opaque_threshold =
      mean_occupied * options.occluder_density_factor;

  const geo::Frustum frustum(pose, options.intrinsics);
  const geo::Vec3 eye = pose.position;
  const double cell_m = grid.cell_size_m();
  const geo::Vec3 grid_lo = grid.bounds().lo;

  // Bounding box of the opaque cells: occlusion rays are clipped to it, so
  // the DDA walks only the region that can actually occlude.
  geo::Aabb opaque_bounds{{0, 0, 0}, {-1, -1, -1}};  // invalid == none
  if (options.occlusion_culling) {
    std::uint32_t omin[3] = {0, 0, 0};
    std::uint32_t omax[3] = {0, 0, 0};
    bool any_opaque = false;
    vv::CellId oc = 0;
    for (std::uint32_t iz = 0; iz < grid.nz(); ++iz) {
      for (std::uint32_t iy = 0; iy < grid.ny(); ++iy) {
        for (std::uint32_t ix = 0; ix < grid.nx(); ++ix, ++oc) {
          if (static_cast<double>(occupancy[oc]) < opaque_threshold)
            continue;
          const std::uint32_t at[3] = {ix, iy, iz};
          if (!any_opaque) {
            for (int a = 0; a < 3; ++a) omin[a] = omax[a] = at[a];
            any_opaque = true;
          } else {
            for (int a = 0; a < 3; ++a) {
              omin[a] = std::min(omin[a], at[a]);
              omax[a] = std::max(omax[a], at[a]);
            }
          }
        }
      }
    }
    if (any_opaque) {
      opaque_bounds.lo =
          grid_lo + geo::Vec3{omin[0] * cell_m, omin[1] * cell_m,
                              omin[2] * cell_m};
      opaque_bounds.hi =
          grid_lo + geo::Vec3{(omax[0] + 1) * cell_m, (omax[1] + 1) * cell_m,
                              (omax[2] + 1) * cell_m};
    }
  }
  const bool cast_rays = options.occlusion_culling && opaque_bounds.valid();

  // Every cell is an identical cube, so the p-vertex of the box-vs-plane
  // test sits at a fixed offset (0 or cell_m per axis, by normal sign) from
  // the cell's lo corner. Precomputing those offsets per plane turns the
  // per-cell test into six add+dot+compare steps with no per-axis selects,
  // and is bit-identical to Frustum::intersects on these cells (the cell's
  // hi corner is constructed as lo + cell_m).
  const auto& planes = frustum.planes();
  geo::Vec3 pvert_off[6];
  for (std::size_t k = 0; k < 6; ++k) {
    pvert_off[k] = {planes[k].normal.x >= 0.0 ? cell_m : 0.0,
                    planes[k].normal.y >= 0.0 ? cell_m : 0.0,
                    planes[k].normal.z >= 0.0 ? cell_m : 0.0};
  }
  const auto cell_in_frustum = [&](const geo::Vec3& lo) noexcept {
    for (std::size_t k = 0; k < 6; ++k) {
      if (planes[k].signed_distance(lo + pvert_off[k]) < 0.0) return false;
    }
    return true;
  };

  // Walk cells in (z, y, x) order maintaining the cell box incrementally —
  // no per-cell div/mod to recover coordinates from the id.
  vv::CellId c = 0;
  for (std::uint32_t iz = 0; iz < grid.nz(); ++iz) {
    for (std::uint32_t iy = 0; iy < grid.ny(); ++iy) {
      for (std::uint32_t ix = 0; ix < grid.nx(); ++ix, ++c) {
        if (occupancy[c] == 0) continue;
        const geo::Vec3 lo =
            grid_lo + geo::Vec3{ix * cell_m, iy * cell_m, iz * cell_m};
        if (options.viewport_culling && !cell_in_frustum(lo)) continue;

        const geo::Vec3 center =
            (lo + (lo + geo::Vec3{cell_m, cell_m, cell_m})) * 0.5;
        if (options.occlusion_culling) {
          if (cast_rays &&
              ray_occluded(grid, occupancy, opaque_threshold, opaque_bounds,
                           eye, center, c, options.occluder_thickness_cells))
            continue;
          bool behind_body = false;
          for (const BodyObstacle& body : others) {
            if (segment_hits_body(eye, center, body)) {
              behind_body = true;
              break;
            }
          }
          if (behind_body) continue;
        }

        double lod = 1.0;
        if (options.distance_lod) {
          const double d = std::max(center.distance(eye), 1e-3);
          if (d > options.lod_reference_m) {
            const double ratio = options.lod_reference_m / d;
            lod = std::max(ratio * ratio, options.lod_min);
          }
        }
        map.set(c, lod);
      }
    }
  }
  return map;
}

double fetch_bytes(const VisibilityMap& map, const FetchSizer& sizer) {
  double total = 0.0;
  for (vv::CellId c = 0; c < map.cell_count(); ++c) {
    const double lod = map.lod(c);
    if (lod > 0.0) total += sizer.cell_bytes(c) * lod;
  }
  return total;
}

}  // namespace volcast::view
