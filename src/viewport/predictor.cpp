#include "viewport/predictor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace volcast::view {

// ---------------------------------------------------------------- Static

void StaticPredictor::observe(double /*t*/, const geo::Pose& pose) {
  last_ = pose;
  has_observation_ = true;
}

geo::Pose StaticPredictor::predict(double /*horizon_s*/) const {
  return last_;
}

// ------------------------------------------------------ ConstantVelocity

void ConstantVelocityPredictor::observe(double t, const geo::Pose& pose) {
  if (observations_ > 0) dt_ = t - last_t_;
  prev_ = last_;
  last_ = pose;
  last_t_ = t;
  ++observations_;
}

geo::Pose ConstantVelocityPredictor::predict(double horizon_s) const {
  if (observations_ < 2 || dt_ <= 0.0) return last_;
  const double scale = horizon_s / dt_;
  geo::Pose out;
  out.position =
      last_.position + (last_.position - prev_.position) * scale;
  // Rotation: apply the last inter-sample delta rotation `scale` times,
  // with the fractional remainder applied via slerp from identity. Capped
  // at 4 full deltas so a long horizon cannot spin the viewport.
  const geo::Quat delta =
      (last_.orientation * prev_.orientation.conjugate()).normalized();
  double remaining = std::min(scale, 4.0);
  geo::Quat total{};
  while (remaining > 1.0) {
    total = (delta * total).normalized();
    remaining -= 1.0;
  }
  total = (slerp(geo::Quat{}, delta, remaining) * total).normalized();
  out.orientation = (total * last_.orientation).normalized();
  return out;
}

// ------------------------------------------------------ LinearRegression

LinearRegressionPredictor::LinearRegressionPredictor(std::size_t window,
                                                     double target_distance_m)
    : window_(window < 2 ? 2 : window), target_distance_m_(target_distance_m) {
  if (target_distance_m <= 0.0)
    throw std::invalid_argument("target_distance_m must be positive");
}

void LinearRegressionPredictor::observe(double t, const geo::Pose& pose) {
  window_.push({t, pose.position,
                pose.position + pose.forward() * target_distance_m_, pose});
}

geo::Pose LinearRegressionPredictor::predict(double horizon_s) const {
  if (window_.empty()) return {};
  if (window_.size() < 3) return window_.back().pose;

  const std::size_t n = window_.size();
  std::vector<double> ts(n);
  const double t0 = window_[0].t;
  for (std::size_t i = 0; i < n; ++i) ts[i] = window_[i].t - t0;
  const double t_pred = window_[n - 1].t - t0 + horizon_s;

  auto fit_axis = [&](auto getter) {
    std::vector<double> ys(n);
    for (std::size_t i = 0; i < n; ++i) ys[i] = getter(window_[i]);
    return fit_line(ts, ys).at(t_pred);
  };

  const geo::Vec3 position{
      fit_axis([](const Sample& s) { return s.position.x; }),
      fit_axis([](const Sample& s) { return s.position.y; }),
      fit_axis([](const Sample& s) { return s.position.z; })};
  const geo::Vec3 target{
      fit_axis([](const Sample& s) { return s.target.x; }),
      fit_axis([](const Sample& s) { return s.target.y; }),
      fit_axis([](const Sample& s) { return s.target.z; })};
  if ((target - position).norm_sq() < 1e-9) return window_.back().pose;
  return geo::Pose::look_at(position, target);
}

// ----------------------------------------------------------------- Ewma

EwmaPredictor::EwmaPredictor(double alpha) : alpha_(alpha) {
  if (alpha <= 0.0 || alpha > 1.0)
    throw std::invalid_argument("EWMA alpha must be in (0, 1]");
}

void EwmaPredictor::observe(double t, const geo::Pose& pose) {
  const geo::Vec3 target = pose.position + pose.forward() * 2.0;
  if (observations_ > 0) {
    const double dt = t - last_t_;
    if (dt > 0.0) {
      const geo::Vec3 v = (pose.position - last_.position) / dt;
      const geo::Vec3 tv = (target - last_target_) / dt;
      velocity_ = velocity_ * (1.0 - alpha_) + v * alpha_;
      target_velocity_ = target_velocity_ * (1.0 - alpha_) + tv * alpha_;
    }
  }
  last_ = pose;
  last_target_ = target;
  last_t_ = t;
  ++observations_;
}

geo::Pose EwmaPredictor::predict(double horizon_s) const {
  if (observations_ < 2) return last_;
  const geo::Vec3 position = last_.position + velocity_ * horizon_s;
  const geo::Vec3 target = last_target_ + target_velocity_ * horizon_s;
  if ((target - position).norm_sq() < 1e-9) return last_;
  return geo::Pose::look_at(position, target);
}


// ------------------------------------------------------------------ Mlp

MlpPredictor::MlpPredictor(std::size_t history, std::size_t hidden,
                           double learning_rate, std::uint64_t seed)
    : history_(history < 2 ? 2 : history),
      hidden_(hidden < 2 ? 2 : hidden),
      learning_rate_(learning_rate),
      window_(history_ + 1) {
  if (learning_rate <= 0.0)
    throw std::invalid_argument("MLP learning rate must be positive");
  // Small deterministic initialization.
  volcast::Rng rng(seed);
  const std::size_t input = history_ * 6;
  w1_.resize(hidden_ * input);
  b1_.assign(hidden_, 0.0);
  w2_.resize(6 * hidden_);
  b2_.assign(6, 0.0);
  const double scale1 = 1.0 / std::sqrt(static_cast<double>(input));
  for (double& w : w1_) w = rng.uniform(-scale1, scale1);
  const double scale2 = 1.0 / std::sqrt(static_cast<double>(hidden_));
  for (double& w : w2_) w = rng.uniform(-scale2, scale2);
}

std::vector<double> MlpPredictor::features() const {
  // history_ velocity vectors for position and look-at target, oldest
  // first, clamped into tanh's comfortable range (velocities are ~m/s).
  std::vector<double> input;
  input.reserve(history_ * 6);
  for (std::size_t i = 0; i + 1 < window_.size(); ++i) {
    const Sample& a = window_[i];
    const Sample& b = window_[i + 1];
    const double dt = std::max(b.t - a.t, 1e-6);
    const geo::Vec3 vp = (b.position - a.position) / dt;
    const geo::Vec3 vt = (b.target - a.target) / dt;
    for (double v : {vp.x, vp.y, vp.z, vt.x, vt.y, vt.z})
      input.push_back(std::clamp(v, -3.0, 3.0));
  }
  return input;
}

std::array<geo::Vec3, 2> MlpPredictor::forward(
    const std::vector<double>& input) const {
  std::vector<double> h(hidden_, 0.0);
  for (std::size_t j = 0; j < hidden_; ++j) {
    double acc = b1_[j];
    for (std::size_t i = 0; i < input.size(); ++i)
      acc += w1_[j * input.size() + i] * input[i];
    h[j] = std::tanh(acc);
  }
  double out[6];
  for (std::size_t k = 0; k < 6; ++k) {
    double acc = b2_[k];
    for (std::size_t j = 0; j < hidden_; ++j)
      acc += w2_[k * hidden_ + j] * h[j];
    out[k] = acc;
  }
  return {geo::Vec3{out[0], out[1], out[2]},
          geo::Vec3{out[3], out[4], out[5]}};
}

void MlpPredictor::train_step(const std::vector<double>& input,
                              const geo::Vec3& v_pos,
                              const geo::Vec3& v_target) {
  // One SGD step on the squared error of the 6 velocity outputs.
  std::vector<double> h(hidden_, 0.0);
  for (std::size_t j = 0; j < hidden_; ++j) {
    double acc = b1_[j];
    for (std::size_t i = 0; i < input.size(); ++i)
      acc += w1_[j * input.size() + i] * input[i];
    h[j] = std::tanh(acc);
  }
  const double target[6] = {v_pos.x, v_pos.y, v_pos.z,
                            v_target.x, v_target.y, v_target.z};
  double delta_out[6];
  for (std::size_t k = 0; k < 6; ++k) {
    double acc = b2_[k];
    for (std::size_t j = 0; j < hidden_; ++j)
      acc += w2_[k * hidden_ + j] * h[j];
    delta_out[k] = acc - target[k];
  }
  // Hidden-layer error before updating w2.
  std::vector<double> delta_hidden(hidden_, 0.0);
  for (std::size_t j = 0; j < hidden_; ++j) {
    double acc = 0.0;
    for (std::size_t k = 0; k < 6; ++k)
      acc += w2_[k * hidden_ + j] * delta_out[k];
    delta_hidden[j] = acc * (1.0 - h[j] * h[j]);
  }
  for (std::size_t k = 0; k < 6; ++k) {
    for (std::size_t j = 0; j < hidden_; ++j)
      w2_[k * hidden_ + j] -= learning_rate_ * delta_out[k] * h[j];
    b2_[k] -= learning_rate_ * delta_out[k];
  }
  for (std::size_t j = 0; j < hidden_; ++j) {
    for (std::size_t i = 0; i < input.size(); ++i)
      w1_[j * input.size() + i] -=
          learning_rate_ * delta_hidden[j] * input[i];
    b1_[j] -= learning_rate_ * delta_hidden[j];
  }
  ++training_steps_;
}

void MlpPredictor::observe(double t, const geo::Pose& pose) {
  // Before pushing, the current window's features predict the velocity
  // that this new observation realizes: that is one training pair.
  if (window_.size() == window_.capacity()) {
    const Sample& last = window_.back();
    const double dt = std::max(t - last.t, 1e-6);
    const geo::Vec3 new_target = pose.position + pose.forward() * 2.0;
    const geo::Vec3 v_pos = (pose.position - last.position) / dt;
    const geo::Vec3 v_target = (new_target - last.target) / dt;
    train_step(features(), v_pos, v_target);
  }
  window_.push({pose.position, pose.position + pose.forward() * 2.0, t});
}

geo::Pose MlpPredictor::predict(double horizon_s) const {
  if (window_.empty()) return {};
  const Sample& last = window_.back();
  auto fallback = [&] {
    return geo::Pose::look_at(last.position, last.target);
  };
  // Warm-up: behave like constant velocity until the net has seen data.
  if (window_.size() < window_.capacity() || training_steps_ < 30) {
    if (window_.size() < 2) return fallback();
    const Sample& prev = window_[window_.size() - 2];
    const double dt = std::max(last.t - prev.t, 1e-6);
    const geo::Vec3 v_pos = (last.position - prev.position) / dt;
    const geo::Vec3 v_target = (last.target - prev.target) / dt;
    const geo::Vec3 p = last.position + v_pos * horizon_s;
    const geo::Vec3 target = last.target + v_target * horizon_s;
    if ((target - p).norm_sq() < 1e-9) return fallback();
    return geo::Pose::look_at(p, target);
  }
  const auto [v_pos, v_target] = forward(features());
  const geo::Vec3 p = last.position + v_pos * horizon_s;
  const geo::Vec3 target = last.target + v_target * horizon_s;
  if ((target - p).norm_sq() < 1e-9) return fallback();
  return geo::Pose::look_at(p, target);
}

// -------------------------------------------------------------- factory

std::unique_ptr<ViewportPredictor> make_predictor(const std::string& name) {
  if (name == "static") return std::make_unique<StaticPredictor>();
  if (name == "const-velocity")
    return std::make_unique<ConstantVelocityPredictor>();
  if (name == "linear-regression")
    return std::make_unique<LinearRegressionPredictor>();
  if (name == "ewma") return std::make_unique<EwmaPredictor>();
  if (name == "mlp") return std::make_unique<MlpPredictor>();
  throw std::invalid_argument("unknown predictor: " + name);
}

}  // namespace volcast::view
