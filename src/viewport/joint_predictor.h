// Joint multi-user viewport prediction (paper Section 4.1).
//
// Beyond running one predictor per user, the joint predictor uses the
// holistic multi-user view to do what per-user predictors cannot:
//   * user-user viewport occlusion — when another user's predicted body
//     stands between a viewer and a cell, that cell is not needed (AR
//     semantics: you would see the person, not the content);
//   * proactive mmWave blockage forecasting — when a user's predicted body
//     crosses the AP -> user line-of-sight of another user, the AP learns of
//     the impending rate drop *before* it happens and can prefetch or switch
//     beams (Section 4.1, "viewport prediction for proactive blockage
//     mitigation").
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "geometry/pose.h"
#include "pointcloud/cell_grid.h"
#include "viewport/predictor.h"
#include "viewport/visibility.h"

namespace volcast::common {
class ThreadPool;
}  // namespace volcast::common

namespace volcast::obs {
class Counter;
class MetricRegistry;
}  // namespace volcast::obs

namespace volcast::view {

/// Forecast of one mmWave line-of-sight blockage event.
struct BlockageForecast {
  std::size_t user = 0;      // whose link is (about to be) blocked
  std::size_t blocker = 0;   // which user's body causes it
  double clearance_m = 0.0;  // distance from blocker to the LoS segment
};

/// Everything the cross-layer scheduler needs per look-ahead step.
struct JointPrediction {
  std::vector<geo::Pose> poses;             // per user
  std::vector<VisibilityMap> visibility;    // per user, occlusion-aware
  std::vector<BlockageForecast> blockages;  // predicted LoS blockages
};

/// Joint predictor configuration.
struct JointPredictorConfig {
  std::string base_predictor = "linear-regression";
  VisibilityOptions visibility{};
  /// When true, other users' predicted bodies occlude viewports.
  bool user_occlusion = true;
  /// Body capsule used for both viewport occlusion and blockage forecasts.
  double body_radius_m = 0.25;
  double body_height_m = 1.8;
  /// AP (transmitter) position for blockage forecasting.
  geo::Vec3 ap_position{0.0, 0.0, 2.6};
  /// A forecast is emitted when a body comes within this XY clearance of a
  /// link's line of sight (first Fresnel zone scale at 60 GHz).
  double blockage_clearance_m = 0.35;
  /// Optional worker pool: per-user predictor updates and visibility maps
  /// run in parallel across users. Results are bit-identical to the serial
  /// path (each user's outputs land in its own slot; no shared
  /// accumulation). The pool must outlive the predictor.
  common::ThreadPool* pool = nullptr;
  /// Optional telemetry: counters for observations / predictions /
  /// blockage forecasts land here (atomic bumps only — no effect on the
  /// predictions themselves). The registry must outlive the predictor.
  obs::MetricRegistry* metrics = nullptr;
};

/// Per-user predictors + the joint reasoning layer.
class JointViewportPredictor {
 public:
  JointViewportPredictor(std::size_t user_count, JointPredictorConfig config);

  [[nodiscard]] std::size_t user_count() const noexcept {
    return predictors_.size();
  }
  [[nodiscard]] const JointPredictorConfig& config() const noexcept {
    return config_;
  }

  /// Feeds one synchronized observation (one pose per user) at time `t`.
  /// Throws std::invalid_argument when the pose count mismatches.
  void observe(double t, std::span<const geo::Pose> poses);

  /// Predicts all users `horizon_s` ahead and derives occlusion-aware
  /// visibility (against `grid`/`occupancy` of the target frame) plus
  /// blockage forecasts.
  [[nodiscard]] JointPrediction predict(
      double horizon_s, const vv::CellGrid& grid,
      std::span<const std::uint32_t> occupancy) const;

  /// Poses only (cheap variant for callers that do their own visibility).
  [[nodiscard]] std::vector<geo::Pose> predict_poses(double horizon_s) const;

  /// Forecasts blockages among an explicit set of poses — exposed for tests
  /// and for the mitigation ablation, which wants ground-truth poses.
  [[nodiscard]] std::vector<BlockageForecast> forecast_blockages(
      std::span<const geo::Pose> poses) const;

 private:
  JointPredictorConfig config_;
  std::vector<std::unique_ptr<ViewportPredictor>> predictors_;
  // Telemetry handles (null when config_.metrics is null).
  obs::Counter* observations_ = nullptr;
  obs::Counter* predictions_ = nullptr;
  obs::Counter* forecasts_ = nullptr;
};

}  // namespace volcast::view
