#include "viewport/similarity.h"

#include <algorithm>

namespace volcast::view {

double iou(const VisibilityMap& a, const VisibilityMap& b) {
  const VisibilityMap* pair[] = {&a, &b};
  return group_iou(pair);
}

double group_iou(std::span<const VisibilityMap> maps) {
  std::vector<const VisibilityMap*> ptrs;
  ptrs.reserve(maps.size());
  for (const VisibilityMap& m : maps) ptrs.push_back(&m);
  return group_iou(std::span<const VisibilityMap* const>(ptrs));
}

double group_iou(std::span<const VisibilityMap* const> maps) {
  if (maps.empty()) return 1.0;
  const std::size_t cells = maps.front()->cell_count();
  std::size_t inter = 0;
  std::size_t uni = 0;
  for (vv::CellId c = 0; c < cells; ++c) {
    bool in_all = true;
    bool in_any = false;
    for (const VisibilityMap* m : maps) {
      const bool v = m->visible(c);
      in_all = in_all && v;
      in_any = in_any || v;
    }
    inter += in_all ? 1 : 0;
    uni += in_any ? 1 : 0;
  }
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

VisibilityMap intersection(std::span<const VisibilityMap> maps) {
  if (maps.empty()) return VisibilityMap{};
  const std::size_t cells = maps.front().cell_count();
  VisibilityMap out(cells);
  for (vv::CellId c = 0; c < cells; ++c) {
    bool in_all = true;
    double best = 0.0;
    for (const VisibilityMap& m : maps) {
      if (!m.visible(c)) {
        in_all = false;
        break;
      }
      best = std::max(best, m.lod(c));
    }
    if (in_all) out.set(c, best);
  }
  return out;
}

VisibilityMap union_of(std::span<const VisibilityMap> maps) {
  if (maps.empty()) return VisibilityMap{};
  const std::size_t cells = maps.front().cell_count();
  VisibilityMap out(cells);
  for (vv::CellId c = 0; c < cells; ++c) {
    double best = 0.0;
    for (const VisibilityMap& m : maps) best = std::max(best, m.lod(c));
    if (best > 0.0) out.set(c, best);
  }
  return out;
}

}  // namespace volcast::view
