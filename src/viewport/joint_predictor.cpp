#include "viewport/joint_predictor.h"

#include <stdexcept>

#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace volcast::view {

JointViewportPredictor::JointViewportPredictor(std::size_t user_count,
                                               JointPredictorConfig config)
    : config_(std::move(config)) {
  predictors_.reserve(user_count);
  for (std::size_t u = 0; u < user_count; ++u)
    predictors_.push_back(make_predictor(config_.base_predictor));
  if (config_.metrics != nullptr) {
    observations_ = &config_.metrics->counter("viewport.observations");
    predictions_ = &config_.metrics->counter("viewport.predictions");
    forecasts_ = &config_.metrics->counter("viewport.blockage_forecasts");
  }
}

void JointViewportPredictor::observe(double t,
                                     std::span<const geo::Pose> poses) {
  if (poses.size() != predictors_.size())
    throw std::invalid_argument("JointViewportPredictor: pose count mismatch");
  // Each predictor owns its state: independent per-user updates.
  common::ThreadPool::run(config_.pool, poses.size(), [&](std::size_t u) {
    predictors_[u]->observe(t, poses[u]);
  });
  if (observations_ != nullptr) observations_->add(poses.size());
}

std::vector<geo::Pose> JointViewportPredictor::predict_poses(
    double horizon_s) const {
  std::vector<geo::Pose> out;
  out.reserve(predictors_.size());
  for (const auto& p : predictors_) out.push_back(p->predict(horizon_s));
  return out;
}

std::vector<BlockageForecast> JointViewportPredictor::forecast_blockages(
    std::span<const geo::Pose> poses) const {
  std::vector<BlockageForecast> out;
  for (std::size_t user = 0; user < poses.size(); ++user) {
    for (std::size_t blocker = 0; blocker < poses.size(); ++blocker) {
      if (blocker == user) continue;
      BodyObstacle body;
      body.position = poses[blocker].position;
      body.radius_m = config_.blockage_clearance_m;  // Fresnel-padded radius
      body.height_m = config_.body_height_m;
      if (segment_hits_body(config_.ap_position, poses[user].position, body)) {
        // Clearance: XY distance from the blocker to the LoS segment.
        BodyObstacle tight = body;
        double lo = 0.0;
        double hi = body.radius_m;
        // Bisect the radius at which the body stops hitting the segment —
        // that radius is exactly the clearance.
        for (int i = 0; i < 20; ++i) {
          const double mid = 0.5 * (lo + hi);
          tight.radius_m = mid;
          if (segment_hits_body(config_.ap_position, poses[user].position,
                                tight)) {
            hi = mid;
          } else {
            lo = mid;
          }
        }
        out.push_back({user, blocker, hi});
      }
    }
  }
  return out;
}

JointPrediction JointViewportPredictor::predict(
    double horizon_s, const vv::CellGrid& grid,
    std::span<const std::uint32_t> occupancy) const {
  JointPrediction result;
  result.poses = predict_poses(horizon_s);

  // Per-user visibility is the hot part of every tick: each user's map
  // depends only on the (already predicted) poses, so users fan out across
  // the pool into pre-sized slots — bit-identical to the serial loop.
  result.visibility.resize(result.poses.size());
  common::ThreadPool::run(
      config_.pool, result.poses.size(), [&](std::size_t u) {
        std::vector<BodyObstacle> others;
        if (config_.user_occlusion) {
          for (std::size_t v = 0; v < result.poses.size(); ++v) {
            if (v == u) continue;
            others.push_back({result.poses[v].position, config_.body_radius_m,
                              config_.body_height_m});
          }
        }
        result.visibility[u] = compute_visibility(
            grid, occupancy, result.poses[u], config_.visibility, others);
      });

  result.blockages = forecast_blockages(result.poses);
  if (predictions_ != nullptr) predictions_->add(result.poses.size());
  if (forecasts_ != nullptr) forecasts_->add(result.blockages.size());
  return result;
}

}  // namespace volcast::view
