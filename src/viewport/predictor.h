// Single-user 6DoF viewport prediction (paper Section 4.1).
//
// The paper cites ViVo-style linear regression / MLP predictors as the
// per-user state of the art; we implement the family the multi-user
// predictor composes:
//   * Static            — last observed pose (the lower baseline),
//   * ConstantVelocity  — extrapolates the last inter-sample motion,
//   * LinearRegression  — OLS over a sliding window, on position and on the
//                         look-at target (robust to orientation wrap),
//   * Ewma              — exponentially weighted velocity extrapolation,
//   * Mlp               — small online-trained multilayer perceptron.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/ring_buffer.h"
#include "geometry/pose.h"

namespace volcast::view {

/// Streaming pose predictor: feed observations, query a future pose.
class ViewportPredictor {
 public:
  virtual ~ViewportPredictor() = default;

  /// Records one observed pose at time `t` (seconds, strictly increasing).
  virtual void observe(double t, const geo::Pose& pose) = 0;

  /// Predicts the pose `horizon_s` after the last observation. Requires at
  /// least one observation; predictors degrade gracefully (toward the last
  /// pose) when history is short.
  [[nodiscard]] virtual geo::Pose predict(double horizon_s) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Last-value predictor.
class StaticPredictor final : public ViewportPredictor {
 public:
  void observe(double t, const geo::Pose& pose) override;
  [[nodiscard]] geo::Pose predict(double horizon_s) const override;
  [[nodiscard]] std::string name() const override { return "static"; }

 private:
  geo::Pose last_{};
  bool has_observation_ = false;
};

/// Extrapolates the last observed velocity (translation + rotation).
class ConstantVelocityPredictor final : public ViewportPredictor {
 public:
  void observe(double t, const geo::Pose& pose) override;
  [[nodiscard]] geo::Pose predict(double horizon_s) const override;
  [[nodiscard]] std::string name() const override { return "const-velocity"; }

 private:
  geo::Pose prev_{};
  geo::Pose last_{};
  double last_t_ = 0.0;
  double dt_ = 0.0;
  int observations_ = 0;
};

/// OLS over a sliding window of positions and look-at targets.
class LinearRegressionPredictor final : public ViewportPredictor {
 public:
  /// `window` = number of samples regressed over; ViVo-style predictors use
  /// a fraction of a second of 30 Hz history, so 9 samples (0.3 s) is the
  /// default — long enough to average jitter, short enough to track turns.
  /// `target_distance_m` places the virtual look-at point.
  explicit LinearRegressionPredictor(std::size_t window = 9,
                                     double target_distance_m = 2.0);

  void observe(double t, const geo::Pose& pose) override;
  [[nodiscard]] geo::Pose predict(double horizon_s) const override;
  [[nodiscard]] std::string name() const override { return "linear-regression"; }

 private:
  struct Sample {
    double t;
    geo::Vec3 position;
    geo::Vec3 target;
    geo::Pose pose;
  };
  RingBuffer<Sample> window_;
  double target_distance_m_;
};

/// EWMA of velocity, extrapolated linearly.
class EwmaPredictor final : public ViewportPredictor {
 public:
  explicit EwmaPredictor(double alpha = 0.3);

  void observe(double t, const geo::Pose& pose) override;
  [[nodiscard]] geo::Pose predict(double horizon_s) const override;
  [[nodiscard]] std::string name() const override { return "ewma"; }

 private:
  double alpha_;
  geo::Pose last_{};
  geo::Vec3 velocity_{};
  geo::Vec3 target_velocity_{};
  geo::Vec3 last_target_{};
  double last_t_ = 0.0;
  int observations_ = 0;
};

/// Online multilayer perceptron, the paper's second predictor family
/// ("individual users' 6DoF can be predicted using linear regression or
/// multilayer perceptron"). A small tanh network maps a window of recent
/// position / look-at velocities to the next-step velocity and trains by
/// one SGD step per observation; until warmed up it behaves like the
/// constant-velocity baseline.
class MlpPredictor final : public ViewportPredictor {
 public:
  /// `history` = velocity samples fed to the network; `hidden` = hidden
  /// units; `learning_rate` = SGD step. Deterministic for a given seed.
  explicit MlpPredictor(std::size_t history = 5, std::size_t hidden = 12,
                        double learning_rate = 0.05,
                        std::uint64_t seed = 7);

  void observe(double t, const geo::Pose& pose) override;
  [[nodiscard]] geo::Pose predict(double horizon_s) const override;
  [[nodiscard]] std::string name() const override { return "mlp"; }

  /// Number of SGD updates performed so far (diagnostic).
  [[nodiscard]] std::size_t training_steps() const noexcept {
    return training_steps_;
  }

 private:
  struct Sample {
    geo::Vec3 position;
    geo::Vec3 target;
    double t;
  };

  [[nodiscard]] std::vector<double> features() const;
  /// Returns {predicted position velocity, predicted target velocity}.
  [[nodiscard]] std::array<geo::Vec3, 2> forward(
      const std::vector<double>& input) const;
  void train_step(const std::vector<double>& input, const geo::Vec3& v_pos,
                  const geo::Vec3& v_target);

  std::size_t history_;
  std::size_t hidden_;
  double learning_rate_;
  RingBuffer<Sample> window_;
  std::vector<double> w1_;  // hidden x input
  std::vector<double> b1_;  // hidden
  std::vector<double> w2_;  // 6 x hidden
  std::vector<double> b2_;  // 6
  std::size_t training_steps_ = 0;
};

/// Factory by name ("static", "const-velocity", "linear-regression",
/// "ewma", "mlp"); throws std::invalid_argument for unknown names.
[[nodiscard]] std::unique_ptr<ViewportPredictor> make_predictor(
    const std::string& name);

}  // namespace volcast::view
