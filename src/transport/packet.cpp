#include "transport/packet.h"

#include <cstring>

#include "common/endian.h"

namespace volcast::transport {

namespace {

/// Fletcher-16 over the given bytes: cheap, order-sensitive, and any
/// single bit flip changes it. Good enough to *detect* corruption in a
/// simulated wire; not a cryptographic claim.
std::uint16_t checksum16(std::span<const std::uint8_t> bytes) noexcept {
  std::uint32_t a = 0, b = 0;
  for (std::uint8_t byte : bytes) {
    a = (a + byte) % 255;
    b = (b + a) % 255;
  }
  return static_cast<std::uint16_t>((b << 8) | a);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint16_t get_u16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void validate_header(const PacketHeader& h, std::size_t payload_bytes) {
  if ((h.flags & ~kFlagMask) != 0)
    throw WireError("packet: unknown flag bits set");
  if (payload_bytes > kMaxPayloadBytes)
    throw WireError("packet: payload exceeds the jumbo-frame ceiling");
  if (h.payload_len != payload_bytes)
    throw WireError("packet: payload_len does not match payload size");
  if (h.fec_k > 0) {
    const unsigned group = static_cast<unsigned>(h.fec_k) + h.fec_r;
    if (h.fec_index >= group)
      throw WireError("packet: fec_index outside its FEC group");
    const bool is_parity = (h.flags & kFlagParity) != 0;
    if (is_parity != (h.fec_index >= h.fec_k))
      throw WireError("packet: parity flag disagrees with fec_index");
  } else if ((h.flags & kFlagParity) != 0) {
    throw WireError("packet: parity packet without an FEC group");
  }
}

}  // namespace

std::vector<std::uint8_t> serialize_packet(
    const PacketHeader& header, std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxPayloadBytes)
    throw WireError("packet: payload exceeds the jumbo-frame ceiling");
  validate_header(header, payload.size());
  const PacketHeader& h = header;

  std::vector<std::uint8_t> out;
  out.reserve(PacketHeader::kWireSize + payload.size());
  put_u16(out, PacketHeader::kMagic);
  out.push_back(PacketHeader::kVersion);
  out.push_back(h.flags);
  put_u32(out, h.seq);
  put_u32(out, h.tick);
  put_u16(out, h.frame);
  put_u16(out, h.tile);
  put_u32(out, h.fec_group);
  out.push_back(h.fec_index);
  out.push_back(h.fec_k);
  out.push_back(h.fec_r);
  out.push_back(0);  // reserved
  put_u16(out, h.payload_len);
  // Checksum over everything serialized so far plus the payload; written
  // last so the parser can recompute over the same range.
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint16_t sum = checksum16(
      std::span<const std::uint8_t>(out.data(), out.size()));
  put_u16(out, sum);
  return out;
}

Packet parse_packet(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < PacketHeader::kWireSize)
    throw WireError("packet: truncated before the header ends");
  const std::uint8_t* p = bytes.data();
  PacketHeader h;
  if (get_u16(p) != PacketHeader::kMagic)
    throw WireError("packet: bad magic");
  if (p[2] != PacketHeader::kVersion)
    throw WireError("packet: unsupported version");
  h.flags = p[3];
  h.seq = get_u32(p + 4);
  h.tick = get_u32(p + 8);
  h.frame = get_u16(p + 12);
  h.tile = get_u16(p + 14);
  h.fec_group = get_u32(p + 16);
  h.fec_index = p[20];
  h.fec_k = p[21];
  h.fec_r = p[22];
  h.payload_len = get_u16(p + 24);

  // The length field is attacker-controlled until proven consistent: the
  // buffer must hold header + claimed payload + trailing checksum exactly.
  const std::size_t expected =
      PacketHeader::kWireSize + static_cast<std::size_t>(h.payload_len);
  if (h.payload_len > kMaxPayloadBytes)
    throw WireError("packet: payload_len exceeds the jumbo-frame ceiling");
  if (bytes.size() != expected)
    throw WireError("packet: payload_len disagrees with buffer size");
  validate_header(h, h.payload_len);

  const std::uint16_t claimed = get_u16(p + expected - 2);
  const std::uint16_t actual = checksum16(bytes.first(expected - 2));
  if (claimed != actual) throw WireError("packet: checksum mismatch");

  Packet packet;
  packet.header = h;
  packet.payload.assign(p + PacketHeader::kWireSize - 2,
                        p + expected - 2);
  return packet;
}

}  // namespace volcast::transport
