// Packet-level wire format for tile transmission (modelled on the
// AVTransport draft: stream segmentation, per-packet sequence numbers and
// timestamps, FEC grouping metadata in every header).
//
// A scheduled tile transmission becomes a *packet train*: the tile payload
// is segmented into MTU-sized data packets, each carrying a fixed-size
// header (sequence number, transmission tick, frame/tile ids, FEC group
// coordinates, payload length, checksum). Parity packets ride in the same
// train with the kParity flag. The parser is the trust boundary of the
// receive path: corrupted, truncated or hostile bytes must be rejected
// with a typed WireError — never undefined behaviour, over-allocation or
// silent garbage (see tests/test_fuzz_decoders.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace volcast::transport {

/// Typed rejection of malformed wire bytes.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Header flag bits.
inline constexpr std::uint8_t kFlagParity = 0x01;      // FEC parity packet
inline constexpr std::uint8_t kFlagRetransmit = 0x02;  // NACK-triggered resend
inline constexpr std::uint8_t kFlagLastInTile = 0x04;  // tail packet of a tile
inline constexpr std::uint8_t kFlagMask =
    kFlagParity | kFlagRetransmit | kFlagLastInTile;

/// Largest payload a single packet may carry (jumbo-frame ceiling); the
/// parser rejects anything larger before allocating.
inline constexpr std::size_t kMaxPayloadBytes = 9000;

/// Fixed-size packet header, little-endian on the wire.
struct PacketHeader {
  static constexpr std::uint16_t kMagic = 0x5650;  // "PV"
  static constexpr std::uint8_t kVersion = 1;
  /// Serialized size in bytes (header precedes the payload).
  static constexpr std::size_t kWireSize = 28;

  std::uint32_t seq = 0;        // per-receiver monotonic sequence number
  std::uint32_t tick = 0;       // transmission tick (logical timestamp)
  std::uint16_t frame = 0;      // video frame index
  std::uint16_t tile = 0;       // tile index within the frame train
  std::uint8_t flags = 0;       // kFlag* bits
  std::uint32_t fec_group = 0;  // FEC group id within the train
  std::uint8_t fec_index = 0;   // position in the group: data 0..k-1, then parity
  std::uint8_t fec_k = 0;       // data packets per FEC group (0 = no FEC)
  std::uint8_t fec_r = 0;       // parity packets per FEC group
  std::uint16_t payload_len = 0;
};

/// One parsed packet.
struct Packet {
  PacketHeader header;
  std::vector<std::uint8_t> payload;
};

/// Serializes header + payload into wire bytes (header checksum covers
/// both). Throws WireError if the payload exceeds kMaxPayloadBytes or the
/// header is internally inconsistent (payload_len mismatch, bad flags).
[[nodiscard]] std::vector<std::uint8_t> serialize_packet(
    const PacketHeader& header, std::span<const std::uint8_t> payload);

/// Parses wire bytes back into a packet. Throws WireError on truncation,
/// bad magic/version, unknown flags, FEC coordinates outside the group,
/// payload-length lies (header claims more or fewer bytes than present)
/// and checksum mismatch. Never reads out of bounds and never allocates
/// more than the buffer it was handed.
[[nodiscard]] Packet parse_packet(std::span<const std::uint8_t> bytes);

}  // namespace volcast::transport
