// Striped XOR forward error correction over a packet train.
//
// A tile's data packets are split into FEC groups of `k` data packets
// protected by `r` parity packets. Parity `j` is the XOR of the data
// packets whose in-group index satisfies `i % r == j` (a "stripe"), so the
// group survives up to `r` losses provided no stripe loses more than one
// data packet and the stripe's parity arrived. This is the classic
// interleaved-XOR construction used by live-video multicast systems: it
// turns short loss bursts (which land in distinct stripes) into fully
// recoverable events at a fixed `r/k` overhead.
//
// Two layers of API:
//  - `recoverable()` / `count_recoverable()` answer the *erasure pattern*
//    question from booleans alone — this is what the simulated wire uses,
//    because the sim never materialises payload bytes per packet.
//  - `make_parity()` / `recover()` operate on real byte payloads and are
//    exercised by the unit tests to pin the algebra (parity really is the
//    stripe XOR, recovery really reproduces the lost payload).
#pragma once

#include <cstdint>
#include <vector>

namespace volcast::transport::fec {

/// Parameters of one FEC group.
struct GroupParams {
  int k = 0;  // data packets in the group
  int r = 0;  // parity packets in the group
};

/// Builds the `r` parity payloads for a group of `k` data payloads.
/// Shorter data packets are zero-padded to the longest stripe member, so
/// parity `j` has the length of the longest packet in stripe `j`.
[[nodiscard]] std::vector<std::vector<std::uint8_t>> make_parity(
    const std::vector<std::vector<std::uint8_t>>& data, int r);

/// Given per-packet arrival booleans (`data_arrived.size() == k`,
/// `parity_arrived.size() == r`), returns true iff every lost data packet
/// can be reconstructed: each stripe lost at most one data packet and that
/// stripe's parity arrived.
[[nodiscard]] bool recoverable(const std::vector<bool>& data_arrived,
                               const std::vector<bool>& parity_arrived);

/// Number of lost data packets that the parity can reconstruct under the
/// stripe rule (each stripe repairs at most one loss, and only when its
/// parity arrived). Lost packets in over-subscribed or parity-less stripes
/// are not counted.
[[nodiscard]] int count_recoverable(const std::vector<bool>& data_arrived,
                                    const std::vector<bool>& parity_arrived);

/// Reconstructs the single lost data packet of stripe `lost_index % r` by
/// XOR-ing the stripe's parity with its surviving data packets. `data`
/// holds the group's packets with the lost one empty at `lost_index`;
/// `original_len` restores the exact pre-padding length. Returns the
/// recovered payload.
[[nodiscard]] std::vector<std::uint8_t> recover(
    const std::vector<std::vector<std::uint8_t>>& data,
    const std::vector<std::vector<std::uint8_t>>& parity, int lost_index,
    std::size_t original_len);

}  // namespace volcast::transport::fec
