// Simulated packet wire: per-train packetization, seeded loss, FEC and
// deadline-bounded NACK recovery.
//
// The session's TransportStage hands each (user, frame) transmission to
// `transmit_train`, which models what the scheduler's granted bits become
// on an actual multicast wire: the frame is segmented into tiles and
// MTU-sized packets, every packet is either delivered or dropped by a
// seeded per-user loss process (the residual PER of the backed-off
// multicast MCS, optionally sharpened by a Gilbert–Elliott burst chain
// driven from the fault injector), and the receiver recovers losses with
// striped-XOR FEC (transport/fec.h) and/or NACK retransmission rounds that
// race the frame deadline. Tiles the recovery path cannot rebuild in time
// are *failed*: the stage routes those frames through the player's
// loss-concealment path exactly as a corrupted frame would be.
//
// Determinism: every random draw is a splitmix64 hash of
// (seed, user, sequence number) — no sequential RNG state — and the
// per-user ReceiverState advances only inside the session's serial
// delivery loop, so results are bit-identical at any worker_threads /
// parallel_sessions setting.
#pragma once

#include <cstdint>
#include <string>

namespace volcast::transport {

/// Which recovery machinery the wire runs. kGoodput is the legacy
/// "scheduler goodput is delivered bits" model — no packetization at all —
/// kept as the default policy so existing results are untouched.
enum class TransportPolicy : std::uint8_t {
  kGoodput = 0,  // no wire: bits arrive exactly as scheduled
  kFec,          // FEC groups only, no retransmission
  kNack,         // NACK retransmission only, no parity
  kHybrid,       // FEC first, NACK for what the parity cannot rebuild
};

[[nodiscard]] const char* to_string(TransportPolicy policy) noexcept;

/// Wire + recovery knobs (defaults follow common mmWave WLAN practice:
/// ~1.4 KB MTU, 8+2 FEC groups ≈ 25% overhead, 2 NACK rounds at a 4 ms
/// in-room RTT inside the 33 ms frame budget).
struct TransportConfig {
  std::size_t mtu_bytes = 1400;    // payload bytes per data packet
  std::size_t tile_bytes = 32768;  // tile segmentation unit (bytes)
  int fec_group_data = 8;          // data packets per FEC group (k)
  int fec_group_parity = 2;        // parity packets per FEC group (r)
  int nack_rounds = 2;             // max retransmission rounds per train
  double nack_rtt_ms = 4.0;        // logical cost of one NACK round-trip
  /// Residual PER target of the multicast MCS choice: the wire's base
  /// per-packet loss probability comes from the PER of the *selected*
  /// backed-off MCS, which sits at or below this target.
  double target_per = 0.01;
  /// Gilbert–Elliott chain: probability of entering the bad (bursty)
  /// state per packet, and of leaving it per packet. The bad-state loss
  /// probability itself comes from the active kBurstLoss fault magnitude.
  double burst_enter = 0.02;
  double burst_exit = 0.2;

  /// Throws std::invalid_argument on nonsensical values.
  void validate() const;
};

/// Per-user receiver state. Mutated only inside the serial delivery loop,
/// folded in user-slot order.
struct ReceiverState {
  std::uint32_t next_seq = 0;  // next sequence number this receiver assigns
  bool burst_bad = false;      // Gilbert–Elliott chain state
  /// EWMA of residual loss after FEC (before NACK), the cross-layer signal
  /// fed to the rate adapter.
  double residual_loss = 0.0;
};

/// One scheduled transmission, as the transport stage sees it.
struct TrainParams {
  double frame_bits = 0.0;   // bits granted to this (user, frame)
  double per = 0.0;          // base per-packet loss probability
  double burst_loss = 0.0;   // bad-state loss probability (0 = chain off)
  double deadline_ms = 0.0;  // budget left for recovery after transfer
  std::uint64_t seed = 0;    // session seed
  std::size_t user = 0;
  std::uint32_t tick = 0;
  std::uint16_t frame = 0;
};

/// What one train did on the wire.
struct TrainResult {
  std::uint64_t tiles = 0;
  std::uint64_t data_packets = 0;
  std::uint64_t parity_packets = 0;
  std::uint64_t lost_packets = 0;        // first-transmission losses
  std::uint64_t retransmitted_packets = 0;
  std::uint64_t nacks = 0;               // NACK messages sent upstream
  std::uint64_t fec_recovered_tiles = 0;  // damaged tiles FEC fully rebuilt
  std::uint64_t nack_recovered_tiles = 0;  // tiles rescued by retransmission
  std::uint64_t failed_tiles = 0;          // tiles that missed the deadline
  /// Data-packet loss ratio after FEC repair, before NACK: the residual
  /// the rate adapter should react to.
  double residual_loss = 0.0;
  /// Added latency of the slowest recovered tile (NACK rounds * RTT).
  double recovery_ms = 0.0;
  /// Extra bits the wire cost beyond the frame itself.
  double parity_bits = 0.0;
  double retransmit_bits = 0.0;
  double header_bits = 0.0;

  /// True when every tile survived (possibly via recovery).
  [[nodiscard]] bool frame_ok() const noexcept { return failed_tiles == 0; }
};

/// Session-lifetime wire totals, folded into SessionResult. Scalars only
/// (the recovery-latency distribution lives in the session's sample
/// vector until result finalization).
struct TransportReport {
  std::uint64_t trains = 0;
  std::uint64_t tiles = 0;
  std::uint64_t data_packets = 0;
  std::uint64_t parity_packets = 0;
  std::uint64_t lost_packets = 0;
  std::uint64_t retransmitted_packets = 0;
  std::uint64_t nacks = 0;
  std::uint64_t fec_recovered_tiles = 0;
  std::uint64_t nack_recovered_tiles = 0;
  std::uint64_t deadline_missed_tiles = 0;
  double residual_loss_mean = 0.0;  // mean residual loss across trains
  double recovery_ms_p50 = 0.0;     // NACK recovery latency percentiles
  double recovery_ms_p99 = 0.0;
  double recovery_ms_max = 0.0;

  /// Accumulates one train (does not touch the latency percentiles).
  void add(const TrainResult& train) noexcept;
};

/// Simulates one packet train end to end: segmentation, per-packet loss
/// draws, FEC repair, NACK rounds within the deadline. Advances `rx`
/// (sequence numbers, burst-chain state, residual-loss EWMA).
/// kGoodput never reaches the wire, so `policy` here is kFec/kNack/kHybrid.
[[nodiscard]] TrainResult transmit_train(const TransportConfig& config,
                                         TransportPolicy policy,
                                         const TrainParams& params,
                                         ReceiverState& rx);

}  // namespace volcast::transport
