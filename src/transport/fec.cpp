#include "transport/fec.h"

#include <algorithm>

namespace volcast::transport::fec {

namespace {

void xor_into(std::vector<std::uint8_t>& acc,
              const std::vector<std::uint8_t>& src) {
  if (acc.size() < src.size()) acc.resize(src.size(), 0);
  for (std::size_t i = 0; i < src.size(); ++i) acc[i] ^= src[i];
}

}  // namespace

std::vector<std::vector<std::uint8_t>> make_parity(
    const std::vector<std::vector<std::uint8_t>>& data, int r) {
  if (r <= 0 || data.empty()) return {};
  std::vector<std::vector<std::uint8_t>> parity(static_cast<std::size_t>(r));
  for (std::size_t i = 0; i < data.size(); ++i)
    xor_into(parity[i % static_cast<std::size_t>(r)], data[i]);
  return parity;
}

bool recoverable(const std::vector<bool>& data_arrived,
                 const std::vector<bool>& parity_arrived) {
  const std::size_t r = parity_arrived.size();
  // No parity: recoverable only when nothing was lost.
  if (r == 0)
    return std::all_of(data_arrived.begin(), data_arrived.end(),
                       [](bool b) { return b; });
  std::vector<int> stripe_losses(r, 0);
  for (std::size_t i = 0; i < data_arrived.size(); ++i)
    if (!data_arrived[i]) ++stripe_losses[i % r];
  for (std::size_t j = 0; j < r; ++j) {
    if (stripe_losses[j] > 1) return false;
    if (stripe_losses[j] == 1 && !parity_arrived[j]) return false;
  }
  return true;
}

int count_recoverable(const std::vector<bool>& data_arrived,
                      const std::vector<bool>& parity_arrived) {
  const std::size_t r = parity_arrived.size();
  if (r == 0) return 0;
  std::vector<int> stripe_losses(r, 0);
  for (std::size_t i = 0; i < data_arrived.size(); ++i)
    if (!data_arrived[i]) ++stripe_losses[i % r];
  int recovered = 0;
  for (std::size_t j = 0; j < r; ++j)
    if (stripe_losses[j] == 1 && parity_arrived[j]) ++recovered;
  return recovered;
}

std::vector<std::uint8_t> recover(
    const std::vector<std::vector<std::uint8_t>>& data,
    const std::vector<std::vector<std::uint8_t>>& parity, int lost_index,
    std::size_t original_len) {
  const std::size_t r = parity.size();
  const std::size_t stripe = static_cast<std::size_t>(lost_index) % r;
  std::vector<std::uint8_t> acc = parity[stripe];
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (static_cast<int>(i) == lost_index) continue;
    if (i % r == stripe) xor_into(acc, data[i]);
  }
  acc.resize(original_len, 0);
  return acc;
}

}  // namespace volcast::transport::fec
