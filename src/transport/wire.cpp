#include "transport/wire.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "transport/fec.h"
#include "transport/packet.h"

namespace volcast::transport {

namespace {

/// splitmix64 finalizer — the same stateless draw discipline the fault
/// injector uses: hash, don't sequence, so parallel layout cannot change
/// the outcome.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double uniform(std::uint64_t seed, std::size_t user, std::uint32_t seq,
               std::uint64_t salt) noexcept {
  const std::uint64_t h = mix(
      seed ^ salt ^
      mix(static_cast<std::uint64_t>(user) * 0x632be59bd9b4e019ULL ^ seq));
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
}

constexpr std::uint64_t kSaltChain = 0x9e1c'7a2f'55b3'0d41ULL;
constexpr std::uint64_t kSaltLoss = 0x2b0f'48a1'c93d'7e65ULL;

/// One packet on the wire: advances the Gilbert–Elliott chain, draws the
/// loss, burns one sequence number. Returns true when the packet arrived.
bool send_packet(const TransportConfig& config, const TrainParams& params,
                 ReceiverState& rx) {
  const std::uint32_t seq = rx.next_seq++;
  if (params.burst_loss > 0.0) {
    const double t = uniform(params.seed, params.user, seq, kSaltChain);
    if (rx.burst_bad) {
      if (t < config.burst_exit) rx.burst_bad = false;
    } else {
      if (t < config.burst_enter) rx.burst_bad = true;
    }
  } else {
    rx.burst_bad = false;
  }
  const double p = rx.burst_bad ? std::max(params.burst_loss, params.per)
                                : params.per;
  if (p <= 0.0) return true;
  return uniform(params.seed, params.user, seq, kSaltLoss) >= p;
}

}  // namespace

const char* to_string(TransportPolicy policy) noexcept {
  switch (policy) {
    case TransportPolicy::kGoodput: return "goodput";
    case TransportPolicy::kFec: return "fec";
    case TransportPolicy::kNack: return "nack";
    case TransportPolicy::kHybrid: return "hybrid";
  }
  return "?";
}

void TransportConfig::validate() const {
  if (mtu_bytes == 0 || mtu_bytes > kMaxPayloadBytes)
    throw std::invalid_argument("transport: mtu_bytes must be in (0, 9000]");
  if (tile_bytes < mtu_bytes)
    throw std::invalid_argument(
        "transport: tile_bytes must be at least one MTU");
  if (fec_group_data < 1 || fec_group_data > 255)
    throw std::invalid_argument(
        "transport: fec_group_data must be in [1, 255]");
  if (fec_group_parity < 0 || fec_group_parity > fec_group_data)
    throw std::invalid_argument(
        "transport: fec_group_parity must be in [0, fec_group_data]");
  if (nack_rounds < 0)
    throw std::invalid_argument("transport: nack_rounds must be >= 0");
  if (nack_rtt_ms <= 0.0)
    throw std::invalid_argument("transport: nack_rtt_ms must be positive");
  if (target_per < 0.0 || target_per >= 1.0)
    throw std::invalid_argument("transport: target_per must be in [0, 1)");
  if (burst_enter < 0.0 || burst_enter > 1.0 || burst_exit <= 0.0 ||
      burst_exit > 1.0)
    throw std::invalid_argument(
        "transport: burst_enter in [0,1], burst_exit in (0,1]");
}

void TransportReport::add(const TrainResult& train) noexcept {
  const double prior = static_cast<double>(trains);
  ++trains;
  tiles += train.tiles;
  data_packets += train.data_packets;
  parity_packets += train.parity_packets;
  lost_packets += train.lost_packets;
  retransmitted_packets += train.retransmitted_packets;
  nacks += train.nacks;
  fec_recovered_tiles += train.fec_recovered_tiles;
  nack_recovered_tiles += train.nack_recovered_tiles;
  deadline_missed_tiles += train.failed_tiles;
  residual_loss_mean =
      (residual_loss_mean * prior + train.residual_loss) /
      static_cast<double>(trains);
}

TrainResult transmit_train(const TransportConfig& config,
                           TransportPolicy policy, const TrainParams& params,
                           ReceiverState& rx) {
  TrainResult out;
  if (params.frame_bits <= 0.0) return out;

  const bool use_fec = policy == TransportPolicy::kFec ||
                       policy == TransportPolicy::kHybrid;
  const bool use_nack = policy == TransportPolicy::kNack ||
                        policy == TransportPolicy::kHybrid;
  const int k = config.fec_group_data;
  const int r = use_fec ? config.fec_group_parity : 0;
  const double header_bits_per_packet =
      static_cast<double>(PacketHeader::kWireSize) * 8.0;
  const int round_budget =
      use_nack ? std::min(config.nack_rounds,
                          static_cast<int>(params.deadline_ms /
                                           config.nack_rtt_ms))
               : 0;

  const std::uint64_t frame_bytes = static_cast<std::uint64_t>(
      std::ceil(params.frame_bits / 8.0));
  std::uint64_t remaining = frame_bytes;
  std::uint64_t lost_after_fec_total = 0;

  while (remaining > 0) {
    const std::uint64_t tile_bytes =
        std::min<std::uint64_t>(remaining, config.tile_bytes);
    remaining -= tile_bytes;
    ++out.tiles;
    const int n = static_cast<int>(
        (tile_bytes + config.mtu_bytes - 1) / config.mtu_bytes);

    // First transmission, group by group: data packets then the group's
    // parity, exactly the order the packets occupy the train.
    std::vector<bool> data_arrived(static_cast<std::size_t>(n));
    int lost_data = 0;
    int recoverable_losses = 0;
    for (int g = 0; g * k < n; ++g) {
      const int lo = g * k;
      const int hi = std::min(n, lo + k);
      std::vector<bool> group_data(static_cast<std::size_t>(hi - lo));
      for (int i = lo; i < hi; ++i) {
        const bool ok = send_packet(config, params, rx);
        ++out.data_packets;
        out.header_bits += header_bits_per_packet;
        data_arrived[static_cast<std::size_t>(i)] = ok;
        group_data[static_cast<std::size_t>(i - lo)] = ok;
        if (!ok) {
          ++out.lost_packets;
          ++lost_data;
        }
      }
      std::vector<bool> group_parity(static_cast<std::size_t>(r));
      for (int j = 0; j < r; ++j) {
        const bool ok = send_packet(config, params, rx);
        ++out.parity_packets;
        out.parity_bits += static_cast<double>(config.mtu_bytes) * 8.0;
        out.header_bits += header_bits_per_packet;
        group_parity[static_cast<std::size_t>(j)] = ok;
        if (!ok) ++out.lost_packets;
      }
      const int fixed = fec::count_recoverable(group_data, group_parity);
      recoverable_losses += fixed;
      // Mark repaired packets as arrived so the NACK pass only chases what
      // the parity could not rebuild.
      if (fixed > 0) {
        std::vector<int> stripe_losses(static_cast<std::size_t>(r), 0);
        for (std::size_t i = 0; i < group_data.size(); ++i)
          if (!group_data[i]) ++stripe_losses[i % static_cast<std::size_t>(r)];
        for (std::size_t i = 0; i < group_data.size(); ++i) {
          const std::size_t stripe = i % static_cast<std::size_t>(r);
          if (!group_data[i] && stripe_losses[stripe] == 1 &&
              group_parity[stripe])
            data_arrived[static_cast<std::size_t>(lo) + i] = true;
        }
      }
    }

    const int missing_after_fec = lost_data - recoverable_losses;
    lost_after_fec_total += static_cast<std::uint64_t>(missing_after_fec);
    if (missing_after_fec == 0) {
      if (lost_data > 0) ++out.fec_recovered_tiles;
      continue;
    }

    // NACK rounds: each round reports the missing packets upstream and the
    // sender retransmits them; retransmissions ride the same lossy wire.
    int missing = missing_after_fec;
    int rounds_used = 0;
    while (missing > 0 && rounds_used < round_budget) {
      ++rounds_used;
      ++out.nacks;
      for (std::size_t i = 0; i < data_arrived.size() && missing > 0; ++i) {
        if (data_arrived[i]) continue;
        const bool ok = send_packet(config, params, rx);
        ++out.retransmitted_packets;
        out.retransmit_bits +=
            static_cast<double>(config.mtu_bytes) * 8.0 +
            header_bits_per_packet;
        if (ok) {
          data_arrived[i] = true;
          --missing;
        }
      }
    }
    if (rounds_used > 0)
      out.recovery_ms = std::max(
          out.recovery_ms, static_cast<double>(rounds_used) *
                               config.nack_rtt_ms);
    if (missing == 0) {
      ++out.nack_recovered_tiles;
    } else {
      ++out.failed_tiles;
    }
  }

  out.residual_loss =
      out.data_packets > 0
          ? static_cast<double>(lost_after_fec_total) /
                static_cast<double>(out.data_packets)
          : 0.0;
  // EWMA toward this train's residual: fast enough to react within a few
  // frames, smooth enough that one unlucky train does not whipsaw the
  // rate adapter.
  constexpr double kAlpha = 0.25;
  rx.residual_loss += kAlpha * (out.residual_loss - rx.residual_loss);
  return out;
}

}  // namespace volcast::transport
