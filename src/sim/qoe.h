// Quality-of-experience accounting for streaming sessions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/stats.h"

namespace volcast::sim {

/// Per-user session outcome.
struct UserQoe {
  std::size_t user = 0;
  double displayed_fps = 0.0;     // played frames / session duration
  double stall_time_s = 0.0;
  double stall_ratio = 0.0;       // stall / duration
  double mean_quality_tier = 0.0; // 0 = lowest tier
  std::size_t quality_switches = 0;
  double mean_goodput_mbps = 0.0; // delivered application bits / duration
  /// Fraction of cells the user actually needed at display time that the
  /// (prediction-driven) fetch missed; 0 = perfect viewport prediction.
  double viewport_miss_ratio = 0.0;
  /// Motion-to-photon latency: pose observation -> frame decoded and
  /// playable (transmission queueing + airtime + decode). The paper's
  /// stated goal for multicast is reducing exactly this.
  double mean_m2p_latency_s = 0.0;
  double max_m2p_latency_s = 0.0;
};

/// Whole-session outcome with convenience aggregates.
struct SessionQoe {
  double duration_s = 0.0;
  std::vector<UserQoe> users;

  [[nodiscard]] double mean_fps() const noexcept;
  [[nodiscard]] double min_fps() const noexcept;
  [[nodiscard]] double total_stall_s() const noexcept;
  [[nodiscard]] double mean_quality_tier() const noexcept;
  [[nodiscard]] double aggregate_goodput_mbps() const noexcept;

  /// Fraction of users whose displayed FPS reaches `threshold` (Table 1's
  /// "supported at 30 FPS" criterion uses threshold 29.5).
  [[nodiscard]] double fraction_at_fps(double threshold) const noexcept;

  /// Jain's fairness index over per-user goodputs, in (0, 1]; 1 = all
  /// users got equal throughput. Multicast grouping should not starve the
  /// users outside the big groups.
  [[nodiscard]] double fairness_index() const noexcept;

  /// Multi-line human-readable summary.
  [[nodiscard]] std::string summary() const;
};

}  // namespace volcast::sim
