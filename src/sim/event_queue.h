// Discrete-event simulation core: a time-ordered queue of callbacks with a
// monotonic simulated clock. Deliberately minimal — deterministic ordering
// (FIFO among same-time events) is the one property every experiment
// depends on.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace volcast::sim {

/// Simulated seconds.
using SimTime = double;

/// Deterministic discrete-event executor.
class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedules `handler` at absolute time `at` (must be >= now()).
  /// Throws std::invalid_argument for events in the past.
  void schedule_at(SimTime at, Handler handler);

  /// Schedules `handler` `delay` seconds from now (delay >= 0).
  void schedule_in(SimTime delay, Handler handler);

  /// Current simulated time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return events_.size(); }

  /// Runs events until the queue drains or `max_events` fire.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs events with time <= `until`, then advances the clock to `until`.
  std::size_t run_until(SimTime until);

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  // FIFO tie-break for simultaneous events
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;

  void pop_and_run();
};

}  // namespace volcast::sim
