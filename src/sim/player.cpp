#include "sim/player.h"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "obs/metrics.h"

namespace volcast::sim {

Player::Player(double fps, double decode_cap_fps, std::size_t startup_frames,
               std::size_t max_conceal_run)
    : fps_(fps),
      decode_cap_fps_(decode_cap_fps),
      startup_frames_(std::max<std::size_t>(startup_frames, 1)),
      max_conceal_run_(max_conceal_run) {
  if (fps <= 0.0 || decode_cap_fps <= 0.0)
    throw std::invalid_argument("Player: rates must be positive");
}

void Player::bind_metrics(obs::MetricRegistry* metrics) {
  if (metrics == nullptr) {
    delivered_metric_ = nullptr;
    concealed_metric_ = nullptr;
    played_metric_ = nullptr;
    buffer_metric_ = nullptr;
    return;
  }
  // Buffer depth in seconds: the interesting region is around the 1-2
  // frame startup threshold (at 30 FPS one frame is 33 ms).
  static constexpr std::array<double, 6> kBufferBounds = {
      0.033, 0.066, 0.1, 0.2, 0.5, 1.0};
  delivered_metric_ = &metrics->counter("player.frames_delivered");
  concealed_metric_ = &metrics->counter("player.frames_concealed");
  played_metric_ = &metrics->counter("player.frames_played");
  buffer_metric_ = &metrics->histogram("player.buffer_s", kBufferBounds);
}

void Player::deliver(const BufferedFrame& frame) {
  if (delivered_metric_ != nullptr) delivered_metric_->add();
  buffer_.push_back(frame);
  last_delivered_ = frame;
  has_last_delivered_ = true;
  conceal_run_ = 0;
  if (!playing_ && buffer_.size() >= startup_frames_) playing_ = true;
}

bool Player::conceal() {
  if (!has_last_delivered_ || conceal_run_ >= max_conceal_run_) return false;
  if (concealed_metric_ != nullptr) concealed_metric_->add();
  ++conceal_run_;
  ++concealed_;
  BufferedFrame held = last_delivered_;
  held.bits = 0.0;  // nothing new crossed the air interface
  buffer_.push_back(held);
  if (!playing_ && buffer_.size() >= startup_frames_) playing_ = true;
  return true;
}

double Player::buffer_s() const noexcept {
  return static_cast<double>(buffer_.size()) / fps_;
}

double Player::mean_played_tier() const noexcept {
  return tier_count_ > 0 ? tier_sum_ / static_cast<double>(tier_count_) : 0.0;
}

void Player::advance(double dt) {
  if (dt <= 0.0) return;
  if (buffer_metric_ != nullptr) buffer_metric_->observe(buffer_s());
  if (!playing_) {
    stall_s_ += dt;
    return;
  }
  const double rate = std::min(fps_, decode_cap_fps_);
  playhead_accum_ += dt * rate;
  while (playhead_accum_ >= 1.0) {
    if (buffer_.empty()) {
      // Underrun: remaining owed frames become stall time; playback pauses
      // until the startup threshold refills.
      stall_s_ += playhead_accum_ / rate;
      playhead_accum_ = 0.0;
      playing_ = false;
      return;
    }
    const BufferedFrame frame = buffer_.front();
    buffer_.pop_front();
    playhead_accum_ -= 1.0;
    played_ += 1.0;
    if (played_metric_ != nullptr) played_metric_->add();
    tier_sum_ += static_cast<double>(frame.quality_tier);
    ++tier_count_;
    if (has_last_tier_ && frame.quality_tier != last_tier_) ++switches_;
    has_last_tier_ = true;
    last_tier_ = frame.quality_tier;
  }
}

}  // namespace volcast::sim
