// Client-side video player: a frame buffer drained at the display rate,
// with stall accounting and a decode-rate ceiling. This is the application
// layer whose buffer level feeds the paper's cross-layer bandwidth
// predictor (Section 4.3 cites buffer-based rate adaptation).
#pragma once

#include <cstddef>
#include <deque>

namespace volcast::obs {
class Counter;
class Histogram;
class MetricRegistry;
}  // namespace volcast::obs

namespace volcast::sim {

/// One downloaded frame sitting in the player buffer.
struct BufferedFrame {
  std::size_t frame_index = 0;
  std::size_t quality_tier = 0;
  double bits = 0.0;
};

/// Playout buffer + display clock for one client.
class Player {
 public:
  /// `fps` display rate; `decode_cap_fps` the hardware decode ceiling;
  /// `startup_frames` buffered before playback starts (and re-starts after
  /// a stall); `max_conceal_run` bounds consecutive loss concealments.
  Player(double fps, double decode_cap_fps = 30.0,
         std::size_t startup_frames = 2, std::size_t max_conceal_run = 5);

  /// Enqueues a completed download.
  void deliver(const BufferedFrame& frame);

  /// Loss concealment for a frame that never arrived (corrupted on the air
  /// interface): re-presents the last delivered frame instead of letting
  /// the buffer underrun. Bounded — after `max_conceal_run` consecutive
  /// conceals (or before anything was delivered) it returns false and the
  /// frame is simply skipped.
  bool conceal();

  [[nodiscard]] std::size_t concealed_frames() const noexcept {
    return concealed_;
  }

  /// Advances playback by `dt` seconds: consumes buffered frames at the
  /// effective rate, accumulates stall time when the buffer underruns.
  void advance(double dt);

  [[nodiscard]] std::size_t buffered_frames() const noexcept {
    return buffer_.size();
  }
  /// Buffer depth in seconds at the display rate.
  [[nodiscard]] double buffer_s() const noexcept;

  [[nodiscard]] double played_frames() const noexcept { return played_; }
  [[nodiscard]] double stall_time_s() const noexcept { return stall_s_; }
  [[nodiscard]] bool playing() const noexcept { return playing_; }
  /// Mean quality tier of played frames (0 when nothing played).
  [[nodiscard]] double mean_played_tier() const noexcept;
  /// Number of tier changes between consecutive played frames.
  [[nodiscard]] std::size_t quality_switches() const noexcept {
    return switches_;
  }

  /// Attaches telemetry (null detaches): delivered / concealed / played
  /// counters plus a buffer-depth histogram sampled on every advance().
  /// Counter bumps are atomic and never change playback behavior. The
  /// registry must outlive the player.
  void bind_metrics(obs::MetricRegistry* metrics);

 private:
  double fps_;
  double decode_cap_fps_;
  std::size_t startup_frames_;
  std::size_t max_conceal_run_;
  std::deque<BufferedFrame> buffer_;
  BufferedFrame last_delivered_{};
  bool has_last_delivered_ = false;
  std::size_t conceal_run_ = 0;
  std::size_t concealed_ = 0;
  double playhead_accum_ = 0.0;  // fractional frames owed to the display
  double played_ = 0.0;
  double stall_s_ = 0.0;
  bool playing_ = false;
  double tier_sum_ = 0.0;
  std::size_t tier_count_ = 0;
  std::size_t switches_ = 0;
  bool has_last_tier_ = false;
  std::size_t last_tier_ = 0;
  // Telemetry handles (all null when unbound).
  obs::Counter* delivered_metric_ = nullptr;
  obs::Counter* concealed_metric_ = nullptr;
  obs::Counter* played_metric_ = nullptr;
  obs::Histogram* buffer_metric_ = nullptr;
};

}  // namespace volcast::sim
