#include "sim/event_queue.h"

#include <stdexcept>
#include <utility>

namespace volcast::sim {

void EventQueue::schedule_at(SimTime at, Handler handler) {
  if (at < now_)
    throw std::invalid_argument("EventQueue: scheduling into the past");
  events_.push(Event{at, next_seq_++, std::move(handler)});
}

void EventQueue::schedule_in(SimTime delay, Handler handler) {
  if (delay < 0.0)
    throw std::invalid_argument("EventQueue: negative delay");
  schedule_at(now_ + delay, std::move(handler));
}

void EventQueue::pop_and_run() {
  // Copy out before pop: the handler may schedule new events.
  Event event = std::move(const_cast<Event&>(events_.top()));
  events_.pop();
  now_ = event.at;
  event.handler();
}

std::size_t EventQueue::run(std::size_t max_events) {
  std::size_t executed = 0;
  while (!events_.empty() && executed < max_events) {
    pop_and_run();
    ++executed;
  }
  return executed;
}

std::size_t EventQueue::run_until(SimTime until) {
  std::size_t executed = 0;
  while (!events_.empty() && events_.top().at <= until) {
    pop_and_run();
    ++executed;
  }
  now_ = std::max(now_, until);
  return executed;
}

}  // namespace volcast::sim
