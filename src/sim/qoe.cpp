#include "sim/qoe.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace volcast::sim {

double SessionQoe::mean_fps() const noexcept {
  if (users.empty()) return 0.0;
  double sum = 0.0;
  for (const UserQoe& u : users) sum += u.displayed_fps;
  return sum / static_cast<double>(users.size());
}

double SessionQoe::min_fps() const noexcept {
  double lowest = std::numeric_limits<double>::infinity();
  for (const UserQoe& u : users) lowest = std::min(lowest, u.displayed_fps);
  return users.empty() ? 0.0 : lowest;
}

double SessionQoe::total_stall_s() const noexcept {
  double sum = 0.0;
  for (const UserQoe& u : users) sum += u.stall_time_s;
  return sum;
}

double SessionQoe::mean_quality_tier() const noexcept {
  if (users.empty()) return 0.0;
  double sum = 0.0;
  for (const UserQoe& u : users) sum += u.mean_quality_tier;
  return sum / static_cast<double>(users.size());
}

double SessionQoe::aggregate_goodput_mbps() const noexcept {
  double sum = 0.0;
  for (const UserQoe& u : users) sum += u.mean_goodput_mbps;
  return sum;
}

double SessionQoe::fraction_at_fps(double threshold) const noexcept {
  if (users.empty()) return 0.0;
  std::size_t hit = 0;
  for (const UserQoe& u : users)
    if (u.displayed_fps >= threshold) ++hit;
  return static_cast<double>(hit) / static_cast<double>(users.size());
}

double SessionQoe::fairness_index() const noexcept {
  if (users.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const UserQoe& u : users) {
    sum += u.mean_goodput_mbps;
    sum_sq += u.mean_goodput_mbps * u.mean_goodput_mbps;
  }
  if (sum_sq <= 0.0) return 1.0;
  return sum * sum / (static_cast<double>(users.size()) * sum_sq);
}

std::string SessionQoe::summary() const {
  std::ostringstream out;
  out << "session " << duration_s << " s, " << users.size() << " users\n";
  for (const UserQoe& u : users) {
    out << "  user " << u.user << ": " << u.displayed_fps << " fps, stall "
        << u.stall_time_s << " s, tier " << u.mean_quality_tier
        << ", goodput " << u.mean_goodput_mbps << " Mbps\n";
  }
  return out.str();
}

}  // namespace volcast::sim
