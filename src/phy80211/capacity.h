// Multi-user WLAN goodput model for the paper's Table 1 testbed.
//
// The paper measures aggregate/unicast goodput of its 802.11ac and 802.11ad
// links directly ("when serving a single user, the throughput is around 374
// Mbps for 802.11ac and 1270 Mbps for 802.11ad"), and Table 1's second
// column gives the measured per-user rate for every user count. Those
// measurements ARE the ground truth this model reproduces: aggregate
// efficiency factors are calibrated to the paper's numbers, and user counts
// beyond the measured range extrapolate with a gentle contention decay.
//
// The frame-rate model converts per-user goodput to the maximum achievable
// FPS exactly as the benchmark does: a viewer needs (bitrate / 30) bits per
// frame; the client decode ceiling caps everything at 30 FPS.
#pragma once

#include <cstddef>

namespace volcast::phy {

/// Which WLAN the testbed uses.
enum class WlanStandard {
  k80211ac,  // 5 GHz, 80 MHz
  k80211ad,  // 60 GHz mmWave
};

[[nodiscard]] const char* to_string(WlanStandard standard) noexcept;

/// Calibrated multi-user goodput tables.
class CapacityModel {
 public:
  /// Aggregate MAC goodput with `users` saturated unicast receivers (Mbps).
  /// `users` == 0 returns 0.
  [[nodiscard]] static double total_goodput_mbps(WlanStandard standard,
                                                 std::size_t users) noexcept;

  /// Per-user share (total / users); matches Table 1 column 2 within the
  /// calibrated range.
  [[nodiscard]] static double per_user_goodput_mbps(WlanStandard standard,
                                                    std::size_t users) noexcept;

  /// Largest user count backed by a paper measurement (3 for ac, 7 for ad).
  [[nodiscard]] static std::size_t calibrated_users(
      WlanStandard standard) noexcept;
};

/// Maximum achievable frame rate for a stream of `bitrate_mbps` (encoded at
/// `native_fps`) delivered at `goodput_mbps`, capped by the client decode
/// ceiling (the Table 1 experiment is capped at 30 FPS).
[[nodiscard]] double max_achievable_fps(double goodput_mbps,
                                        double bitrate_mbps,
                                        double native_fps = 30.0,
                                        double decode_cap_fps = 30.0) noexcept;

}  // namespace volcast::phy
