#include "phy80211/capacity.h"

#include <algorithm>
#include <array>
#include <span>

namespace volcast::phy {
namespace {

// Aggregate goodput (Mbps) measured on the paper's testbed; index = number
// of users - 1. Derived from Table 1's per-user rates:
//   ac: 374x1, 180x2, 112x3   ->  374, 360, 336
//   ad: 1270x1, 575x2, 382x3, 298x4, 231x5, 175x6, 144x7
constexpr std::array<double, 3> kAcTotals{374.0, 360.0, 336.0};
constexpr std::array<double, 7> kAdTotals{1270.0, 1150.0, 1146.0, 1192.0,
                                          1155.0, 1050.0, 1008.0};

// Extrapolation beyond the measured range: MAC contention keeps shaving the
// aggregate; 3% per extra user with a floor at 60% of the last measurement.
constexpr double kExtrapolationDecay = 0.03;
constexpr double kExtrapolationFloor = 0.6;

double extrapolate(std::span<const double> totals, std::size_t users) {
  const double last = totals.back();
  const auto extra = static_cast<double>(users - totals.size());
  const double factor =
      std::max(1.0 - kExtrapolationDecay * extra, kExtrapolationFloor);
  return last * factor;
}

std::span<const double> table_for(WlanStandard standard) noexcept {
  return standard == WlanStandard::k80211ac ? std::span<const double>(kAcTotals)
                                            : std::span<const double>(kAdTotals);
}

}  // namespace

const char* to_string(WlanStandard standard) noexcept {
  return standard == WlanStandard::k80211ac ? "802.11ac" : "802.11ad";
}

double CapacityModel::total_goodput_mbps(WlanStandard standard,
                                         std::size_t users) noexcept {
  if (users == 0) return 0.0;
  const auto totals = table_for(standard);
  if (users <= totals.size()) return totals[users - 1];
  return extrapolate(totals, users);
}

double CapacityModel::per_user_goodput_mbps(WlanStandard standard,
                                            std::size_t users) noexcept {
  if (users == 0) return 0.0;
  return total_goodput_mbps(standard, users) / static_cast<double>(users);
}

std::size_t CapacityModel::calibrated_users(WlanStandard standard) noexcept {
  return table_for(standard).size();
}

double max_achievable_fps(double goodput_mbps, double bitrate_mbps,
                          double native_fps, double decode_cap_fps) noexcept {
  if (bitrate_mbps <= 0.0 || native_fps <= 0.0) return 0.0;
  const double network_fps = native_fps * goodput_mbps / bitrate_mbps;
  return std::min({network_fps, native_fps, decode_cap_fps});
}

}  // namespace volcast::phy
