#include "obs/metrics.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace volcast::obs {

Histogram::Histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()),
      counts_(new std::atomic<std::uint64_t>[upper_bounds.size() + 1]) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::invalid_argument("Histogram: bounds must be ascending");
  for (std::size_t i = 0; i < bounds_.size() + 1; ++i) counts_[i] = 0;
}

void Histogram::observe(double x) noexcept {
  std::size_t i = 0;
  while (i < bounds_.size() && x > bounds_[i]) ++i;
  counts_[i].fetch_add(1, std::memory_order_relaxed);
}

double Histogram::upper_bound(std::size_t i) const {
  if (i >= bucket_count())
    throw std::out_of_range("Histogram: bucket index out of range");
  return i < bounds_.size() ? bounds_[i]
                            : std::numeric_limits<double>::infinity();
}

std::uint64_t Histogram::bucket_value(std::size_t i) const {
  if (i >= bucket_count())
    throw std::out_of_range("Histogram: bucket index out of range");
  return counts_[i].load(std::memory_order_relaxed);
}

std::uint64_t Histogram::total() const noexcept {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < bucket_count(); ++i)
    sum += counts_[i].load(std::memory_order_relaxed);
  return sum;
}

double Histogram::percentile(double p) const {
  const std::uint64_t n = total();
  if (n == 0) return 0.0;
  const double target = std::clamp(p, 0.0, 100.0) / 100.0 *
                        static_cast<double>(n);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bucket_count(); ++i) {
    cumulative += counts_[i].load(std::memory_order_relaxed);
    if (static_cast<double>(cumulative) >= target) return upper_bound(i);
  }
  return upper_bound(bucket_count() - 1);
}

Counter& MetricRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricRegistry::histogram(const std::string& name,
                                     std::span<const double> upper_bounds) {
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(upper_bounds);
    return *slot;
  }
  if (slot->bounds().size() != upper_bounds.size() ||
      !std::equal(slot->bounds().begin(), slot->bounds().end(),
                  upper_bounds.begin()))
    throw std::invalid_argument("MetricRegistry: histogram '" + name +
                                "' re-registered with different buckets");
  return *slot;
}

}  // namespace volcast::obs
