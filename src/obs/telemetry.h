// Deterministic cross-layer telemetry: spans, events, and a buffered JSONL
// sink.
//
// Design rules (the substrate later multi-AP / sharding PRs instrument):
//  * Disabled means a null `Telemetry*`: every hook degrades to one pointer
//    test, no clock reads, no allocation. SessionResult is bit-identical
//    with telemetry on or off.
//  * Recording (record_span / record_event / append) is serial-only: the
//    session loop records on the main thread, and parallel lanes collect
//    into per-slot EventBuffers merged in index order afterwards — the same
//    discipline the parallel pipeline uses for counters. Metric counters
//    and histograms (obs/metrics.h) are the only primitives bumped from
//    inside parallel regions.
//  * Every record carries a deterministic logical cost (workload-derived,
//    identical across machines and thread counts); wall time is an optional
//    extra field, and the JSONL stream with wall capture off — or with the
//    wall fields stripped — is byte-identical for any worker_threads value.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace volcast::obs {

/// Sentinel for "no id" in Event/SpanRecord user/group/ap fields.
inline constexpr std::uint32_t kNoId = 0xffffffffu;

/// Session tick stages wrapped in spans (one per stage per tick).
enum class Stage : std::uint8_t {
  kPose,      // mobility step + shadowing + body capsules
  kPredict,   // joint viewport prediction (visibility + blockage forecasts)
  kAssign,    // multi-AP user assignment
  kLink,      // per-user unicast link evaluation (beam + RSS + MCS)
  kAdapt,     // rate adaptation decisions
  kMitigate,  // proactive blockage mitigation planning
  kGroup,     // multicast grouping (per AP)
  kBeam,      // multicast beam design (per AP)
  kTile,      // per-user frame assembly from cached tiles
  kSchedule,  // MAC schedule + delivery accounting (per AP)
  kPlayer,    // player advance + health observation
};
[[nodiscard]] const char* to_string(Stage stage) noexcept;

/// Which layer of the cross-layer stack an event belongs to.
enum class Layer : std::uint8_t {
  kSession,
  kViewport,
  kGrouping,
  kMmwave,
  kMac,
  kRate,
  kPlayer,
  kFault,
};
[[nodiscard]] const char* to_string(Layer layer) noexcept;

/// Event taxonomy across the layers the session instruments.
enum class EventType : std::uint8_t {
  kFaultInjected,       // value = events newly fired this tick
  kApDown,              // ap
  kApUp,                // ap
  kProbeRetry,          // user
  kFallbackStockBeam,   // user
  kFallbackReflection,  // user
  kSlsSweep,            // user
  kReflectionSwitch,    // user
  kTierChange,          // user, value = new tier
  kPrefetch,            // user
  kOutage,              // user (no delivery path this tick)
  kDroppedTick,         // ap (air queue over budget)
  kGroupFormed,         // ap, group index, value = member count
  kFecRecovery,         // user, value = tiles FEC rebuilt this train
  kRetransmit,          // user, value = packets retransmitted this train
  kDeadlineMiss,        // user, value = tiles past the frame deadline
};
[[nodiscard]] const char* to_string(EventType type) noexcept;

/// One discrete cross-layer happening at a tick.
struct Event {
  std::uint32_t tick = 0;
  Layer layer = Layer::kSession;
  EventType type = EventType::kFaultInjected;
  std::uint32_t user = kNoId;
  std::uint32_t group = kNoId;
  std::uint32_t ap = kNoId;
  double value = 0.0;
  bool has_value = false;
};

/// Per-slot event collector for parallel lanes; merged serially via
/// Telemetry::append in index order.
using EventBuffer = std::vector<Event>;

/// One completed stage span.
struct SpanRecord {
  std::uint32_t tick = 0;
  Stage stage = Stage::kPose;
  std::uint32_t ap = kNoId;
  /// Deterministic logical-cost proxy (workload units, e.g. users x cells).
  std::uint64_t cost = 0;
  /// Wall time in microseconds; 0 and omitted from JSONL when wall capture
  /// is off.
  double wall_us = 0.0;
};

struct TelemetryOptions {
  /// Record wall-clock span durations. Off = byte-identical JSONL streams
  /// across runs, machines and thread counts.
  bool capture_wall_time = true;
};

/// Identity of the run, written as the first JSONL record. Deliberately
/// excludes worker_threads: the stream must not depend on it.
struct SessionMeta {
  std::uint32_t users = 0;
  std::uint32_t aps = 0;
  double fps = 0.0;
  double duration_s = 0.0;
  std::uint64_t seed = 0;
};

/// The buffered sink: owns the metric registry and the ordered span/event
/// log; flushed to JSONL at session end.
class Telemetry {
 public:
  explicit Telemetry(TelemetryOptions options = {});

  [[nodiscard]] MetricRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricRegistry& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] bool capture_wall_time() const noexcept {
    return options_.capture_wall_time;
  }

  void begin_session(const SessionMeta& meta);

  /// Serial-only recording (see file comment).
  void record_span(const SpanRecord& span);
  void record_event(const Event& event);
  /// Serial index-order merge of a parallel lane's buffer.
  void append(std::span<const Event> events);

  [[nodiscard]] std::size_t span_count() const noexcept {
    return span_count_;
  }
  [[nodiscard]] std::size_t event_count() const noexcept {
    return event_count_;
  }
  /// All spans in recording order (copies; test/tool convenience).
  [[nodiscard]] std::vector<SpanRecord> spans() const;
  [[nodiscard]] std::vector<Event> events() const;

  /// Writes the full log: meta line, then spans/events in recording order,
  /// then the metric snapshot sorted by name. Deterministic byte-for-byte
  /// when wall capture is off.
  void write_jsonl(std::ostream& out) const;
  [[nodiscard]] std::string to_jsonl() const;

 private:
  struct Record {
    bool is_span = false;
    SpanRecord span;
    Event event;
  };

  TelemetryOptions options_;
  MetricRegistry metrics_;
  SessionMeta meta_;
  bool has_meta_ = false;
  std::vector<Record> records_;
  std::size_t span_count_ = 0;
  std::size_t event_count_ = 0;
};

/// RAII stage timer. A null sink makes construction and destruction free
/// (no clock read). Costs accumulate via add_cost; end() records exactly
/// once (the destructor records if end() was never called).
class Span {
 public:
  Span(Telemetry* sink, Stage stage, std::uint32_t tick,
       std::uint32_t ap = kNoId) noexcept
      : sink_(sink), stage_(stage), tick_(tick), ap_(ap) {
    if (sink_ != nullptr && sink_->capture_wall_time())
      start_ = std::chrono::steady_clock::now();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  void add_cost(std::uint64_t cost) noexcept { cost_ += cost; }

  /// Records the span (idempotent; later add_cost calls are ignored).
  void end() noexcept {
    if (sink_ == nullptr || ended_) return;
    ended_ = true;
    SpanRecord record;
    record.tick = tick_;
    record.stage = stage_;
    record.ap = ap_;
    record.cost = cost_;
    if (sink_->capture_wall_time()) {
      record.wall_us = std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - start_)
                           .count();
    }
    sink_->record_span(record);
  }

 private:
  Telemetry* sink_;
  Stage stage_;
  std::uint32_t tick_;
  std::uint32_t ap_;
  std::uint64_t cost_ = 0;
  bool ended_ = false;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace volcast::obs
