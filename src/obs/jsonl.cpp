#include "obs/jsonl.h"

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace volcast::obs {
namespace {

[[noreturn]] void fail(const std::string& line, const char* why) {
  throw std::runtime_error(std::string("jsonl: ") + why + " in: " + line);
}

void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[i])) != 0)
    ++i;
}

// Consumes a quoted string (no escape support — the telemetry schema never
// emits escapes) and returns its contents.
std::string take_string(const std::string& s, std::size_t& i) {
  if (i >= s.size() || s[i] != '"') fail(s, "expected '\"'");
  const std::size_t start = ++i;
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\') fail(s, "escape sequences unsupported");
    ++i;
  }
  if (i >= s.size()) fail(s, "unterminated string");
  return s.substr(start, i++ - start);
}

// Consumes a number, bareword (true/false/null), or a numeric array, and
// returns the raw token text.
std::string take_token(const std::string& s, std::size_t& i) {
  const std::size_t start = i;
  if (i < s.size() && s[i] == '[') {
    int depth = 0;
    while (i < s.size()) {
      if (s[i] == '[') ++depth;
      if (s[i] == ']' && --depth == 0) {
        ++i;
        return s.substr(start, i - start);
      }
      if (s[i] == '"' || s[i] == '{') fail(s, "non-numeric array");
      ++i;
    }
    fail(s, "unterminated array");
  }
  while (i < s.size() && s[i] != ',' && s[i] != '}') ++i;
  if (i == start) fail(s, "empty value");
  std::size_t end = i;
  while (end > start &&
         std::isspace(static_cast<unsigned char>(s[end - 1])) != 0)
    --end;
  return s.substr(start, end - start);
}

}  // namespace

const std::string& JsonRecord::raw(const std::string& key) const {
  const auto it = fields_.find(key);
  if (it == fields_.end())
    throw std::runtime_error("jsonl: missing field '" + key + "'");
  return it->second;
}

double JsonRecord::num(const std::string& key) const {
  const std::string& token = raw(key);
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0')
    throw std::runtime_error("jsonl: field '" + key + "' is not a number: " +
                             token);
  return v;
}

std::uint64_t JsonRecord::uint(const std::string& key) const {
  const std::string& token = raw(key);
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0')
    throw std::runtime_error("jsonl: field '" + key +
                             "' is not an unsigned integer: " + token);
  return static_cast<std::uint64_t>(v);
}

std::vector<double> JsonRecord::num_array(const std::string& key) const {
  const std::string& token = raw(key);
  if (token.size() < 2 || token.front() != '[' || token.back() != ']')
    throw std::runtime_error("jsonl: field '" + key + "' is not an array: " +
                             token);
  std::vector<double> out;
  std::size_t i = 1;
  while (i < token.size() - 1) {
    skip_ws(token, i);
    if (i >= token.size() - 1) break;
    char* end = nullptr;
    const double v = std::strtod(token.c_str() + i, &end);
    const std::size_t consumed =
        static_cast<std::size_t>(end - (token.c_str() + i));
    if (consumed == 0)
      throw std::runtime_error("jsonl: bad array element in " + token);
    out.push_back(v);
    i += consumed;
    skip_ws(token, i);
    if (i < token.size() - 1) {
      if (token[i] != ',')
        throw std::runtime_error("jsonl: expected ',' in array " + token);
      ++i;
    }
  }
  return out;
}

JsonRecord parse_json_line(const std::string& line) {
  JsonRecord record;
  std::size_t i = 0;
  skip_ws(line, i);
  if (i >= line.size() || line[i] != '{') fail(line, "expected '{'");
  ++i;
  skip_ws(line, i);
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    while (true) {
      skip_ws(line, i);
      std::string key = take_string(line, i);
      skip_ws(line, i);
      if (i >= line.size() || line[i] != ':') fail(line, "expected ':'");
      ++i;
      skip_ws(line, i);
      std::string value = (i < line.size() && line[i] == '"')
                              ? take_string(line, i)
                              : take_token(line, i);
      record.set(std::move(key), std::move(value));
      skip_ws(line, i);
      if (i >= line.size()) fail(line, "unterminated object");
      if (line[i] == '}') {
        ++i;
        break;
      }
      if (line[i] != ',') fail(line, "expected ',' or '}'");
      ++i;
    }
  }
  skip_ws(line, i);
  if (i != line.size()) fail(line, "trailing content");
  return record;
}

std::vector<JsonRecord> parse_jsonl(const std::string& text) {
  std::vector<JsonRecord> records;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    std::size_t i = 0;
    skip_ws(line, i);
    if (i == line.size()) continue;
    records.push_back(parse_json_line(line));
  }
  return records;
}

}  // namespace volcast::obs
