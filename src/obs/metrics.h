// Metric primitives for the cross-layer telemetry subsystem.
//
// Counters and histograms are the only primitives allowed inside parallel
// regions: both are commutative (relaxed atomic adds), so their final
// values are bit-identical for any worker_threads value — exactly the
// determinism discipline of the session pipeline. Gauges are last-write
// and must only be set from serial code. The registry itself (name ->
// metric creation) is NOT thread-safe: fetch metric handles from serial
// code, bump them from anywhere.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace volcast::obs {

/// Monotonic event counter; add() is safe from any thread and the total is
/// independent of how increments interleave.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value; serial writers only (not commutative).
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram. The bucket layout is frozen at construction
/// (`upper_bounds` ascending, plus an implicit +inf overflow bucket), so
/// observe() is a branch-free-ish scan + one atomic increment — commutative
/// and therefore thread-count invariant.
class Histogram {
 public:
  explicit Histogram(std::span<const double> upper_bounds);

  void observe(double x) noexcept;

  /// Number of buckets including the overflow bucket.
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return bounds_.size() + 1;
  }
  /// Inclusive upper bound of bucket `i`; +inf for the overflow bucket.
  [[nodiscard]] double upper_bound(std::size_t i) const;
  [[nodiscard]] std::uint64_t bucket_value(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const noexcept;

  /// Approximate percentile in [0, 100]: the upper bound of the bucket
  /// where the cumulative count crosses p (deterministic, conservative).
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
};

/// Named metric store with deterministic (name-sorted) iteration order.
/// Creation is serial-only; returned references are stable for the
/// registry's lifetime.
class MetricRegistry {
 public:
  /// Returns the named counter, creating it on first use.
  Counter& counter(const std::string& name);
  /// Returns the named gauge, creating it on first use.
  Gauge& gauge(const std::string& name);
  /// Returns the named histogram, creating it with `upper_bounds` on first
  /// use. Throws std::invalid_argument when re-requested with a different
  /// bucket layout.
  Histogram& histogram(const std::string& name,
                       std::span<const double> upper_bounds);

  [[nodiscard]] const std::map<std::string, std::unique_ptr<Counter>>&
  counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, std::unique_ptr<Gauge>>& gauges()
      const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, std::unique_ptr<Histogram>>&
  histograms() const noexcept {
    return histograms_;
  }

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace volcast::obs
