// Minimal reader for the flat JSONL records Telemetry::write_jsonl emits.
// Not a general JSON parser: objects are one level deep, values are
// numbers, strings without escapes, or arrays of numbers — exactly the
// telemetry schema. Throws std::runtime_error on anything else so tests
// and `volcast_trace summarize` catch schema drift immediately.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace volcast::obs {

/// One parsed JSONL object: key -> raw token (strings unquoted, numbers
/// and arrays verbatim).
class JsonRecord {
 public:
  [[nodiscard]] bool has(const std::string& key) const {
    return fields_.count(key) != 0;
  }
  /// Raw token for `key`; throws std::runtime_error when absent.
  [[nodiscard]] const std::string& raw(const std::string& key) const;
  [[nodiscard]] std::string str(const std::string& key) const {
    return raw(key);
  }
  [[nodiscard]] double num(const std::string& key) const;
  [[nodiscard]] std::uint64_t uint(const std::string& key) const;
  /// Parses `key` as a JSON array of numbers.
  [[nodiscard]] std::vector<double> num_array(const std::string& key) const;

  void set(std::string key, std::string token) {
    fields_[std::move(key)] = std::move(token);
  }
  [[nodiscard]] const std::map<std::string, std::string>& fields() const {
    return fields_;
  }

 private:
  std::map<std::string, std::string> fields_;
};

/// Parses a single flat JSON object line. Throws std::runtime_error on
/// malformed input.
[[nodiscard]] JsonRecord parse_json_line(const std::string& line);

/// Parses a whole JSONL document (blank lines skipped).
[[nodiscard]] std::vector<JsonRecord> parse_jsonl(const std::string& text);

}  // namespace volcast::obs
