#include "obs/telemetry.h"

#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace volcast::obs {
namespace {

// Shortest round-trippable formatting: %.17g is exact for IEEE doubles and
// locale-independent via snprintf with the C locale digits (JSONL streams
// must be byte-stable).
std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return std::string(buf);
}

void append_id(std::string& out, const char* key, std::uint32_t id) {
  if (id == kNoId) return;
  char buf[48];
  std::snprintf(buf, sizeof(buf), ",\"%s\":%u", key, id);
  out += buf;
}

}  // namespace

const char* to_string(Stage stage) noexcept {
  switch (stage) {
    case Stage::kPose: return "pose";
    case Stage::kPredict: return "predict";
    case Stage::kAssign: return "assign";
    case Stage::kLink: return "link";
    case Stage::kAdapt: return "adapt";
    case Stage::kMitigate: return "mitigate";
    case Stage::kGroup: return "group";
    case Stage::kBeam: return "beam";
    case Stage::kTile: return "tile";
    case Stage::kSchedule: return "schedule";
    case Stage::kPlayer: return "player";
  }
  return "unknown";
}

const char* to_string(Layer layer) noexcept {
  switch (layer) {
    case Layer::kSession: return "session";
    case Layer::kViewport: return "viewport";
    case Layer::kGrouping: return "grouping";
    case Layer::kMmwave: return "mmwave";
    case Layer::kMac: return "mac";
    case Layer::kRate: return "rate";
    case Layer::kPlayer: return "player";
    case Layer::kFault: return "fault";
  }
  return "unknown";
}

const char* to_string(EventType type) noexcept {
  switch (type) {
    case EventType::kFaultInjected: return "fault_injected";
    case EventType::kApDown: return "ap_down";
    case EventType::kApUp: return "ap_up";
    case EventType::kProbeRetry: return "probe_retry";
    case EventType::kFallbackStockBeam: return "fallback_stock_beam";
    case EventType::kFallbackReflection: return "fallback_reflection";
    case EventType::kSlsSweep: return "sls_sweep";
    case EventType::kReflectionSwitch: return "reflection_switch";
    case EventType::kTierChange: return "tier_change";
    case EventType::kPrefetch: return "prefetch";
    case EventType::kOutage: return "outage";
    case EventType::kDroppedTick: return "dropped_tick";
    case EventType::kGroupFormed: return "group_formed";
    case EventType::kFecRecovery: return "fec_recovery";
    case EventType::kRetransmit: return "retransmit";
    case EventType::kDeadlineMiss: return "deadline_miss";
  }
  return "unknown";
}

Telemetry::Telemetry(TelemetryOptions options) : options_(options) {}

void Telemetry::begin_session(const SessionMeta& meta) {
  meta_ = meta;
  has_meta_ = true;
}

void Telemetry::record_span(const SpanRecord& span) {
  Record record;
  record.is_span = true;
  record.span = span;
  records_.push_back(record);
  ++span_count_;
}

void Telemetry::record_event(const Event& event) {
  Record record;
  record.is_span = false;
  record.event = event;
  records_.push_back(record);
  ++event_count_;
}

void Telemetry::append(std::span<const Event> events) {
  for (const Event& event : events) record_event(event);
}

std::vector<SpanRecord> Telemetry::spans() const {
  std::vector<SpanRecord> out;
  out.reserve(span_count_);
  for (const Record& record : records_)
    if (record.is_span) out.push_back(record.span);
  return out;
}

std::vector<Event> Telemetry::events() const {
  std::vector<Event> out;
  out.reserve(event_count_);
  for (const Record& record : records_)
    if (!record.is_span) out.push_back(record.event);
  return out;
}

void Telemetry::write_jsonl(std::ostream& out) const {
  std::string line;
  if (has_meta_) {
    line = "{\"record\":\"meta\",\"users\":";
    line += std::to_string(meta_.users);
    line += ",\"aps\":";
    line += std::to_string(meta_.aps);
    line += ",\"fps\":";
    line += format_double(meta_.fps);
    line += ",\"duration_s\":";
    line += format_double(meta_.duration_s);
    line += ",\"seed\":";
    line += std::to_string(meta_.seed);
    line += "}\n";
    out << line;
  }
  for (const Record& record : records_) {
    line.clear();
    if (record.is_span) {
      const SpanRecord& span = record.span;
      line = "{\"record\":\"span\",\"tick\":";
      line += std::to_string(span.tick);
      line += ",\"stage\":\"";
      line += to_string(span.stage);
      line += '"';
      append_id(line, "ap", span.ap);
      line += ",\"cost\":";
      line += std::to_string(span.cost);
      if (options_.capture_wall_time) {
        line += ",\"wall_us\":";
        line += format_double(span.wall_us);
      }
      line += "}\n";
    } else {
      const Event& event = record.event;
      line = "{\"record\":\"event\",\"tick\":";
      line += std::to_string(event.tick);
      line += ",\"layer\":\"";
      line += to_string(event.layer);
      line += "\",\"type\":\"";
      line += to_string(event.type);
      line += '"';
      append_id(line, "user", event.user);
      append_id(line, "group", event.group);
      append_id(line, "ap", event.ap);
      if (event.has_value) {
        line += ",\"value\":";
        line += format_double(event.value);
      }
      line += "}\n";
    }
    out << line;
  }
  for (const auto& [name, counter] : metrics_.counters()) {
    out << "{\"record\":\"counter\",\"name\":\"" << name
        << "\",\"value\":" << counter->value() << "}\n";
  }
  for (const auto& [name, gauge] : metrics_.gauges()) {
    out << "{\"record\":\"gauge\",\"name\":\"" << name
        << "\",\"value\":" << format_double(gauge->value()) << "}\n";
  }
  for (const auto& [name, hist] : metrics_.histograms()) {
    line = "{\"record\":\"histogram\",\"name\":\"";
    line += name;
    line += "\",\"bounds\":[";
    for (std::size_t i = 0; i < hist->bounds().size(); ++i) {
      if (i > 0) line += ',';
      line += format_double(hist->bounds()[i]);
    }
    line += "],\"counts\":[";
    for (std::size_t i = 0; i < hist->bucket_count(); ++i) {
      if (i > 0) line += ',';
      line += std::to_string(hist->bucket_value(i));
    }
    line += "]}\n";
    out << line;
  }
}

std::string Telemetry::to_jsonl() const {
  std::ostringstream out;
  write_jsonl(out);
  return out.str();
}

}  // namespace volcast::obs
