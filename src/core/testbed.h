// The standard experiment environment shared by benches, examples and the
// streaming session: an 8 x 6 x 3 m room, volumetric content near the room
// center, a ceiling-mounted 8x4-element 802.11ad AP on the front wall, and
// the calibrated link budget. Mirrors the paper's testbed (Fig. 3a).
#pragma once

#include "geometry/pose.h"
#include "mmwave/channel.h"
#include "mmwave/codebook.h"
#include "mmwave/link.h"
#include "mmwave/mcs.h"
#include "mmwave/phased_array.h"

namespace volcast::core {

/// Environment parameters (defaults = the calibrated reproduction setup).
struct TestbedConfig {
  mmwave::Room room{};  // 8 x 6 x 3 m
  geo::Vec3 content_floor{4.0, 3.0, 0.0};  // content stands mid-room
  geo::Vec3 ap_position{4.0, 0.1, 2.6};    // front wall, near ceiling
  mmwave::ArrayGeometry array{};           // 8 x 4 elements
  mmwave::CodebookConfig codebook{};       // stock wide sectors
  mmwave::LinkBudget budget{};             // calibrated to Fig. 3b
  mmwave::BlockageModel blockage{};        // partial-degradation body model
  double shadowing_sigma_db = 2.5;
  double shadowing_coherence_s = 0.5;
};

/// Owns the immutable radio environment of one experiment.
class Testbed {
 public:
  explicit Testbed(TestbedConfig config = {});

  [[nodiscard]] const TestbedConfig& config() const noexcept { return config_; }
  [[nodiscard]] const mmwave::Channel& channel() const noexcept {
    return channel_;
  }
  [[nodiscard]] const mmwave::PhasedArray& ap() const noexcept { return ap_; }
  [[nodiscard]] const mmwave::Codebook& codebook() const noexcept {
    return codebook_;
  }
  [[nodiscard]] const mmwave::McsTable& mcs() const noexcept { return mcs_; }
  [[nodiscard]] const mmwave::LinkBudget& budget() const noexcept {
    return config_.budget;
  }
  [[nodiscard]] const mmwave::BlockageModel& blockage() const noexcept {
    return config_.blockage;
  }

  /// Translates a pose from content-local coordinates (content at the
  /// origin, as the trace generator produces) into room coordinates.
  [[nodiscard]] geo::Pose to_room(const geo::Pose& content_local) const;
  [[nodiscard]] geo::Vec3 to_room(const geo::Vec3& content_local) const;

 private:
  TestbedConfig config_;
  mmwave::Channel channel_;
  mmwave::PhasedArray ap_;
  mmwave::Codebook codebook_;
  mmwave::McsTable mcs_;
};

}  // namespace volcast::core
