#include "core/blockage_mitigator.h"

#include <algorithm>

namespace volcast::core {

BlockageMitigator::BlockageMitigator(const Testbed& testbed,
                                     const BeamDesigner& designer,
                                     MitigatorConfig config)
    : testbed_(&testbed), designer_(&designer), config_(config) {}

std::vector<MitigationAction> BlockageMitigator::plan(
    std::span<const view::BlockageForecast> forecasts,
    std::span<const geo::Pose> positions,
    std::span<const double> current_rss_dbm) const {
  std::vector<MitigationAction> actions;
  std::vector<bool> handled(positions.size(), false);

  for (const view::BlockageForecast& forecast : forecasts) {
    if (forecast.user >= positions.size() || handled[forecast.user]) continue;
    handled[forecast.user] = true;

    MitigationAction action;
    action.user = forecast.user;
    if (config_.enable_prefetch)
      action.extra_prefetch_frames = config_.prefetch_frames;

    if (config_.enable_beam_switch) {
      const GroupBeam reflection =
          designer_->design_reflection(positions[forecast.user].position);
      const double blocked_rss_estimate =
          (forecast.user < current_rss_dbm.size()
               ? current_rss_dbm[forecast.user]
               : -200.0) -
          config_.assumed_blockage_loss_db;
      if (!reflection.awv.empty() &&
          reflection.min_member_rss_dbm >=
              blocked_rss_estimate + config_.min_reflection_gain_db) {
        action.use_reflection_beam = true;
        action.reflection_awv = reflection.awv;
        action.reflection_rate_mbps = reflection.multicast_rate_mbps;
      }
    }
    if (action.extra_prefetch_frames > 0 || action.use_reflection_beam)
      actions.push_back(std::move(action));
  }
  return actions;
}

}  // namespace volcast::core
