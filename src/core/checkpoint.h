// Fleet checkpoint/restore: versioned, checksummed persistence of finished
// fleet slots, so a killed long run resumes instead of recomputing.
//
// The binary layout (all little-endian, trailing FNV-1a checksum):
//
//   u32  magic           "VCKP"
//   u32  version         kCheckpointVersion
//   u64  fingerprint     hash of every result-determining FleetConfig field
//   u64  bundle_hash     WorkloadKey hash of the shared artifact set
//   u32  slot_count      sessions in the fleet this file belongs to
//   u32  record_count    finished slots stored
//   record x record_count (sorted by slot):
//     u32  slot
//     u8   status, u8 error_class, u32 attempts, u64 seed, u64 backoff
//     u32  message_len, message bytes
//     u32  result_len,  serialized SessionResult (bit-exact doubles)
//   u64  checksum        FNV-1a over every preceding byte
//
// Every load failure — truncation, bit flips, a corrupted length field, a
// foreign version, a fingerprint from a different config — throws the
// typed CheckpointError; a hostile file can never trigger UB or an
// unbounded allocation (lengths are validated against the remaining bytes
// before any allocation). Restored slots are byte-for-byte what the
// original run produced, which is what makes a resumed FleetResult
// bit-identical to an uninterrupted one.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/fleet.h"
#include "core/supervisor.h"

namespace volcast::core {

inline constexpr std::uint32_t kCheckpointMagic = 0x504b4356u;  // "VCKP"
// v2: SessionResult gained the packet-wire TransportReport block.
// v3: SessionResult gained the TileReport block; the fingerprint now
//     covers content_seed (shared-content fleets must not resume foreign
//     files).
// v4: header gained bundle_hash (the WorkloadKey hash of the shared
//     workload bundle, also folded into the fingerprint), so resume
//     rejects a checkpoint taken against different shared content with a
//     specific message instead of a generic fingerprint mismatch.
inline constexpr std::uint32_t kCheckpointVersion = 4;

/// Typed rejection of an unusable checkpoint (corrupt, truncated, foreign
/// version, or produced by a different fleet configuration).
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One finished slot: its supervision outcome plus (for completed slots)
/// the bit-exact result.
struct SlotRecord {
  std::uint32_t slot = 0;
  SlotOutcome outcome;
  SessionResult result;
};

/// In-memory image of a checkpoint file.
struct FleetCheckpoint {
  std::uint64_t fingerprint = 0;
  /// workload_bundle_hash(config.session) of the fleet that wrote the
  /// file: the identity of the shared artifact set every slot read.
  std::uint64_t bundle_hash = 0;
  std::uint32_t slot_count = 0;
  std::vector<SlotRecord> records;  // kept sorted by slot
};

/// FNV-1a64 over `data` — the same checksum the VideoStore blob uses,
/// exposed so tests can re-seal deliberately corrupted checkpoints.
[[nodiscard]] std::uint64_t checkpoint_checksum(
    std::span<const std::uint8_t> data) noexcept;

/// Hash of every result-determining field of the fleet configuration
/// (session template incl. fault plan, replay traces, ablation switches
/// and policy overrides; fleet size; supervision knobs). Deliberately
/// excludes pure-parallelism knobs (worker_threads, parallel_sessions) and
/// the checkpoint paths themselves: resuming at a different thread count
/// is sound, resuming under a different workload is not.
[[nodiscard]] std::uint64_t fleet_fingerprint(const FleetConfig& config);

[[nodiscard]] std::vector<std::uint8_t> serialize_checkpoint(
    const FleetCheckpoint& checkpoint);
/// Throws CheckpointError on any malformed input.
[[nodiscard]] FleetCheckpoint deserialize_checkpoint(
    std::span<const std::uint8_t> blob);

/// Atomic file write (temp file + rename), so a kill mid-checkpoint leaves
/// either the previous complete file or the new one, never a torn mix.
void save_checkpoint(const FleetCheckpoint& checkpoint,
                     const std::string& path);
/// Throws CheckpointError when the file is missing, unreadable or invalid.
[[nodiscard]] FleetCheckpoint load_checkpoint(const std::string& path);

}  // namespace volcast::core
