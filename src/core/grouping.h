// Multicast grouping with viewport similarity (paper Section 4.2).
//
// Given every user's (predicted) visibility map, demand and link rates, the
// grouper partitions users into multicast groups so that the frame-interval
// constraint T_m(k) <= 1/F holds and total airtime is minimized. The paper
// proposes grouping users "with high viewport similarity"; this module
// provides that greedy IoU policy plus an exhaustive optimum (tractable for
// the <= 8-user sessions of the paper) and baselines for ablation.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "mac/schedule.h"
#include "viewport/visibility.h"

namespace volcast::core {

/// Grouping policies.
enum class GroupingPolicy {
  kUnicastOnly,   // baseline: no multicast at all
  kGreedyIoU,     // the paper's proposal: merge by viewport similarity
  kPairsOnly,     // greedy, but groups are capped at two members
  kExhaustive,    // optimal partition by airtime (Bell-number search)
};

[[nodiscard]] const char* to_string(GroupingPolicy policy) noexcept;

/// Everything the grouper knows about one user this frame interval.
struct UserState {
  std::size_t user = 0;
  const view::VisibilityMap* visibility = nullptr;  // predicted map
  double total_bits = 0.0;                          // S_i at the chosen tier
  double unicast_rate_mbps = 0.0;                   // r_i
};

/// Callback computing a group's multicast behaviour: given member indices
/// (into the UserState span), returns the multicast rate r_m in Mbps (the
/// lowest common MCS under the group's beam) — 0 when the group cannot be
/// served. Provided by the beam designer.
using GroupRateFn =
    std::function<double(std::span<const std::size_t> members)>;

/// Callback computing the overlapped bits S_m(k) for a member set.
using OverlapBitsFn =
    std::function<double(std::span<const std::size_t> members)>;

/// Grouper configuration.
struct GrouperConfig {
  GroupingPolicy policy = GroupingPolicy::kGreedyIoU;
  double target_fps = 30.0;
  /// Minimum pairwise IoU for the greedy policy to consider a merge.
  double min_iou = 0.3;
  /// Upper bound on group size (0 = unlimited).
  std::size_t max_group_size = 0;
};

/// Result: a partition of the users plus its MAC schedule.
struct GroupingResult {
  std::vector<std::vector<std::size_t>> groups;  // user ids per group
  mac::FrameSchedule schedule;
};

/// Forms multicast groups over `users`.
/// `group_rate` and `overlap_bits` are consulted for candidate groups.
[[nodiscard]] GroupingResult form_groups(std::span<const UserState> users,
                                         const GrouperConfig& config,
                                         const GroupRateFn& group_rate,
                                         const OverlapBitsFn& overlap_bits);

}  // namespace volcast::core
