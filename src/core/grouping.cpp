#include "core/grouping.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "viewport/similarity.h"

namespace volcast::core {

const char* to_string(GroupingPolicy policy) noexcept {
  switch (policy) {
    case GroupingPolicy::kUnicastOnly:
      return "unicast-only";
    case GroupingPolicy::kGreedyIoU:
      return "greedy-iou";
    case GroupingPolicy::kPairsOnly:
      return "pairs-only";
    case GroupingPolicy::kExhaustive:
      return "exhaustive";
  }
  return "?";
}

namespace {

/// Builds the MAC plan for one candidate member set.
mac::GroupPlan build_plan(std::span<const UserState> users,
                          std::span<const std::size_t> members,
                          const GroupRateFn& group_rate,
                          const OverlapBitsFn& overlap_bits) {
  mac::GroupPlan plan;
  plan.members.reserve(members.size());
  if (members.size() > 1) {
    plan.group_overlap_bits = overlap_bits(members);
    plan.multicast_rate_mbps = group_rate(members);
  }
  for (std::size_t m : members) {
    const UserState& u = users[m];
    plan.members.push_back({u.user, u.total_bits, plan.group_overlap_bits,
                            u.unicast_rate_mbps});
  }
  return plan;
}

double group_min_pairwise_iou(std::span<const UserState> users,
                              std::span<const std::size_t> members) {
  double lowest = 1.0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      const auto* a = users[members[i]].visibility;
      const auto* b = users[members[j]].visibility;
      if (a == nullptr || b == nullptr) return 0.0;
      lowest = std::min(lowest, view::iou(*a, *b));
    }
  }
  return lowest;
}

GroupingResult finalize(std::span<const UserState> users,
                        std::vector<std::vector<std::size_t>> member_sets,
                        const GroupRateFn& group_rate,
                        const OverlapBitsFn& overlap_bits) {
  GroupingResult result;
  for (auto& set : member_sets) {
    std::sort(set.begin(), set.end());
    result.schedule.groups.push_back(
        build_plan(users, set, group_rate, overlap_bits));
    std::vector<std::size_t> ids;
    ids.reserve(set.size());
    for (std::size_t m : set) ids.push_back(users[m].user);
    result.groups.push_back(std::move(ids));
  }
  return result;
}

GroupingResult greedy(std::span<const UserState> users,
                      const GrouperConfig& config,
                      const GroupRateFn& group_rate,
                      const OverlapBitsFn& overlap_bits,
                      std::size_t size_cap) {
  // Start from singletons; repeatedly apply the merge with the largest
  // positive airtime saving among pairs that clear the IoU bar.
  std::vector<std::vector<std::size_t>> clusters;
  for (std::size_t i = 0; i < users.size(); ++i) clusters.push_back({i});

  const double frame_budget_s =
      config.target_fps > 0.0 ? 1.0 / config.target_fps
                              : std::numeric_limits<double>::infinity();

  auto plan_time = [&](const std::vector<std::size_t>& members) {
    return build_plan(users, members, group_rate, overlap_bits)
        .transmit_time_s();
  };

  bool merged = true;
  while (merged) {
    merged = false;
    double best_saving = 0.0;
    std::size_t best_a = 0;
    std::size_t best_b = 0;
    std::vector<std::size_t> best_union;
    for (std::size_t a = 0; a < clusters.size(); ++a) {
      for (std::size_t b = a + 1; b < clusters.size(); ++b) {
        std::vector<std::size_t> candidate = clusters[a];
        candidate.insert(candidate.end(), clusters[b].begin(),
                         clusters[b].end());
        if (size_cap != 0 && candidate.size() > size_cap) continue;
        if (group_min_pairwise_iou(users, candidate) < config.min_iou)
          continue;
        const double t_merged = plan_time(candidate);
        if (t_merged > frame_budget_s) continue;  // paper's T_m(k) <= 1/F
        const double saving =
            plan_time(clusters[a]) + plan_time(clusters[b]) - t_merged;
        if (saving > best_saving) {
          best_saving = saving;
          best_a = a;
          best_b = b;
          best_union = std::move(candidate);
        }
      }
    }
    if (best_saving > 0.0) {
      clusters[best_a] = std::move(best_union);
      clusters.erase(clusters.begin() + static_cast<std::ptrdiff_t>(best_b));
      merged = true;
    }
  }
  return finalize(users, std::move(clusters), group_rate, overlap_bits);
}

GroupingResult exhaustive(std::span<const UserState> users,
                          const GrouperConfig& config,
                          const GroupRateFn& group_rate,
                          const OverlapBitsFn& overlap_bits) {
  if (users.size() > 10)
    throw std::invalid_argument(
        "exhaustive grouping is limited to 10 users (Bell-number search)");
  std::vector<std::vector<std::size_t>> current;
  std::vector<std::vector<std::size_t>> best;
  double best_time = std::numeric_limits<double>::infinity();

  const double frame_budget_s =
      config.target_fps > 0.0 ? 1.0 / config.target_fps
                              : std::numeric_limits<double>::infinity();
  auto total_time = [&](const std::vector<std::vector<std::size_t>>& part) {
    double t = 0.0;
    for (const auto& block : part) {
      const double block_time =
          build_plan(users, block, group_rate, overlap_bits)
              .transmit_time_s();
      // Same per-group feasibility rule the greedy policy enforces: a
      // group that cannot finish within the frame interval is penalized
      // out of contention (but a partition of infeasible singletons can
      // still win when nothing is feasible).
      t += block_time > frame_budget_s && block.size() > 1 ? 1e6 + block_time
                                                           : block_time;
    }
    return t;
  };

  std::function<void(std::size_t)> recurse = [&](std::size_t next) {
    if (next == users.size()) {
      const double t = total_time(current);
      if (t < best_time) {
        best_time = t;
        best = current;
      }
      return;
    }
    // Index-based: recursion grows `current`, which would invalidate any
    // reference held across the recursive call.
    const std::size_t block_count = current.size();
    for (std::size_t b = 0; b < block_count; ++b) {
      if (config.max_group_size != 0 &&
          current[b].size() >= config.max_group_size)
        continue;
      current[b].push_back(next);
      recurse(next + 1);
      current[b].pop_back();
    }
    current.push_back({next});
    recurse(next + 1);
    current.pop_back();
  };
  recurse(0);
  return finalize(users, std::move(best), group_rate, overlap_bits);
}

}  // namespace

GroupingResult form_groups(std::span<const UserState> users,
                           const GrouperConfig& config,
                           const GroupRateFn& group_rate,
                           const OverlapBitsFn& overlap_bits) {
  if (users.empty()) return {};
  switch (config.policy) {
    case GroupingPolicy::kUnicastOnly: {
      std::vector<std::vector<std::size_t>> singletons;
      for (std::size_t i = 0; i < users.size(); ++i) singletons.push_back({i});
      return finalize(users, std::move(singletons), group_rate, overlap_bits);
    }
    case GroupingPolicy::kGreedyIoU:
      return greedy(users, config, group_rate, overlap_bits,
                    config.max_group_size);
    case GroupingPolicy::kPairsOnly:
      return greedy(users, config, group_rate, overlap_bits, 2);
    case GroupingPolicy::kExhaustive:
      return exhaustive(users, config, group_rate, overlap_bits);
  }
  return {};
}

}  // namespace volcast::core
