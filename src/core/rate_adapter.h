// Multi-user video rate adaptation (paper Section 4.3).
//
// Runs at the server (edge), one decision per user per frame interval,
// combining the player buffer level with the predicted bandwidth. The
// "possible reactions" the paper lists map to the returned action flags:
// prefetching for at-risk users, regrouping the multicast schedule, and
// switching to a reflection beam.
#pragma once

#include <cstddef>
#include <vector>

namespace volcast::obs {
class Counter;
class MetricRegistry;
}  // namespace volcast::obs

namespace volcast::core {

/// Input state for one user's decision.
struct AdaptationInput {
  double buffer_s = 0.0;           // player buffer depth
  double predicted_mbps = 0.0;     // from BandwidthPredictor
  double demand_mbps[3] = {0, 0, 0};  // stream rate needed per quality tier
  std::size_t tier_count = 3;
  std::size_t current_tier = 0;
  bool blockage_forecast = false;
  /// Residual packet loss after FEC (EWMA from the transport wire): the
  /// cross-layer signal that the link is losing more than the parity can
  /// absorb. 0 (the default, and always under the goodput transport
  /// policy) leaves every decision exactly as before the wire existed.
  double residual_loss = 0.0;
};

/// Output decision for one user.
struct AdaptationDecision {
  std::size_t tier = 0;
  bool prefetch = false;      // fetch ahead now (blockage imminent / buffer low)
  bool regroup = false;       // multicast regrouping recommended
  bool switch_beam = false;   // try a reflection beam
};

/// Adaptation policies for the ablation bench.
enum class AdaptationPolicy {
  kNone,        // pin the starting tier, never react
  kBufferOnly,  // BBA-style thresholds on buffer depth alone
  kCrossLayer,  // buffer + predicted bandwidth + blockage forecasts
};

[[nodiscard]] const char* to_string(AdaptationPolicy policy) noexcept;

/// Tuning knobs.
struct RateAdapterConfig {
  AdaptationPolicy policy = AdaptationPolicy::kCrossLayer;
  double low_buffer_s = 0.10;    // panic threshold
  double high_buffer_s = 0.50;   // comfortable threshold
  /// Upgrade only when predicted bandwidth exceeds the next tier's demand
  /// by this safety factor.
  double headroom = 1.15;
  /// Residual-loss thresholds (cross-layer policy only): above
  /// `loss_hold`, upgrades are blocked — retransmissions are already
  /// eating the headroom; above `loss_shed`, drop one tier immediately so
  /// the smaller frames fit under the FEC budget again.
  double loss_hold = 0.02;
  double loss_shed = 0.08;
  /// Optional telemetry sink: decision / upgrade / downgrade / prefetch
  /// counters (atomic bumps — decisions are unaffected). The registry must
  /// outlive the adapter; decide() stays safe from parallel lanes.
  obs::MetricRegistry* metrics = nullptr;
};

/// Stateless per-decision adapter.
class RateAdapter {
 public:
  explicit RateAdapter(RateAdapterConfig config = {});

  [[nodiscard]] AdaptationDecision decide(const AdaptationInput& input) const;

  [[nodiscard]] const RateAdapterConfig& config() const noexcept {
    return config_;
  }

 private:
  [[nodiscard]] AdaptationDecision decide_impl(
      const AdaptationInput& input) const;

  RateAdapterConfig config_;
  // Telemetry handles (null when config_.metrics is null).
  obs::Counter* decisions_ = nullptr;
  obs::Counter* upgrades_ = nullptr;
  obs::Counter* downgrades_ = nullptr;
  obs::Counter* prefetches_ = nullptr;
};

}  // namespace volcast::core
