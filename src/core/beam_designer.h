// Beam selection for unicast links and multicast groups (paper Section 4.2).
//
// For a unicast user: the best stock sector (SLS outcome) — or, when custom
// beams are allowed, a full-aperture steered beam from the predicted 6DoF
// position ("we can use the predicted 6DoF motion information at the server
// to select the individual beams ... without beam searching").
//
// For a multicast group: synthesize the paper's RSS-weighted multi-lobe
// beam from the members' individual beams, probe it (Section 5: reflections
// can make a new beam interfere), and fall back to the best stock common
// sector when that already serves everyone well or the probe fails.
#pragma once

#include <span>
#include <vector>

#include "core/testbed.h"
#include "mmwave/beam_design.h"

namespace volcast::obs {
class Counter;
class MetricRegistry;
}  // namespace volcast::obs

namespace volcast::core {

/// Designer options.
struct BeamDesignerConfig {
  /// Allow synthesized (non-codebook) beams at all.
  bool enable_custom_beams = true;
  /// "When both users have high RSS [under the stock beam], directly use
  /// the default common beam": threshold for that fast path (-64 dBm still
  /// supports MCS 4, > 1.1 Gbps PHY).
  double default_beam_good_dbm = -64.0;
  /// Probe rejection: the custom beam must not leak more than this RSS to
  /// any non-member (interference screening).
  double max_spill_dbm = -55.0;
  /// Probe rejection: the custom beam must beat the stock common beam's
  /// worst member by at least this margin.
  double min_improvement_db = 0.5;
  /// Optional telemetry sink: design counts and custom/stock/probe-reject
  /// outcomes are recorded as counters (atomic bumps — design decisions are
  /// unaffected). The registry must outlive the designer; safe to share a
  /// designer across parallel lanes.
  obs::MetricRegistry* metrics = nullptr;
};

/// Outcome of designing one group beam.
struct GroupBeam {
  mmwave::Awv awv;            // the beam to transmit with
  bool custom = false;        // synthesized vs stock sector
  double min_member_rss_dbm = -200.0;
  double multicast_rate_mbps = 0.0;  // lowest common MCS PHY rate * MAC eff
};

/// Stateless designer bound to a testbed.
class BeamDesigner {
 public:
  BeamDesigner(const Testbed& testbed, BeamDesignerConfig config = {});

  /// Unicast beam + achievable goodput for one user at `position`.
  /// `bodies` are the other people in the room (ground-truth blockage).
  [[nodiscard]] GroupBeam design_unicast(
      const geo::Vec3& position,
      std::span<const geo::BodyObstacle> bodies = {}) const;

  /// Multicast beam for `positions` (>= 1). `others` are non-member user
  /// positions used for spill probing.
  [[nodiscard]] GroupBeam design_multicast(
      std::span<const geo::Vec3> positions,
      std::span<const geo::BodyObstacle> bodies = {},
      std::span<const geo::Vec3> others = {}) const;

  /// A reflection beam for blockage mitigation: steers at the strongest
  /// non-line-of-sight bounce toward `position` (empty AWV when the room
  /// offers no reflection).
  [[nodiscard]] GroupBeam design_reflection(
      const geo::Vec3& position,
      std::span<const geo::BodyObstacle> bodies = {}) const;

  [[nodiscard]] const BeamDesignerConfig& config() const noexcept {
    return config_;
  }

 private:
  const Testbed* testbed_;
  BeamDesignerConfig config_;
  // Telemetry handles (null when config_.metrics is null).
  obs::Counter* unicast_designs_ = nullptr;
  obs::Counter* multicast_designs_ = nullptr;
  obs::Counter* reflection_designs_ = nullptr;
  obs::Counter* custom_selected_ = nullptr;
  obs::Counter* stock_selected_ = nullptr;
  obs::Counter* probe_rejects_ = nullptr;
  obs::Counter* rss_evals_ = nullptr;

  [[nodiscard]] double rss(const mmwave::Awv& w, const geo::Vec3& position,
                           std::span<const geo::BodyObstacle> bodies) const;
  [[nodiscard]] GroupBeam finish(mmwave::Awv awv, bool custom,
                                 std::span<const geo::Vec3> positions,
                                 std::span<const geo::BodyObstacle> bodies)
      const;
};

}  // namespace volcast::core
