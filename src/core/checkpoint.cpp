#include "core/checkpoint.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/endian.h"
#include "core/workload_bundle.h"

namespace volcast::core {

namespace {

using common::get_u32;
using common::get_u64;
using common::put_f64;
using common::put_u32;
using common::put_u64;

/// Bounds-checked cursor over an untrusted blob: every read validates the
/// remaining byte count first, so corrupted length fields fail with a
/// typed error before any allocation or out-of-range access.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - at_;
  }

  std::uint8_t u8() {
    need(1, "u8");
    return data_[at_++];
  }
  std::uint32_t u32() {
    need(4, "u32");
    const std::uint32_t v = get_u32(data_, at_);
    at_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8, "u64");
    const std::uint64_t v = get_u64(data_, at_);
    at_ += 8;
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str(std::size_t length) {
    need(length, "string body");
    std::string out(reinterpret_cast<const char*>(data_.data() + at_),
                    length);
    at_ += length;
    return out;
  }

 private:
  void need(std::size_t bytes, const char* what) const {
    if (remaining() < bytes)
      throw CheckpointError(std::string("checkpoint: truncated ") + what +
                            " at offset " + std::to_string(at_));
  }

  std::span<const std::uint8_t> data_;
  std::size_t at_ = 0;
};

void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

// --- SessionResult <-> bytes ----------------------------------------------
// Doubles are stored as raw bit patterns: restore must be bit-exact, not
// merely round-trip-close.

void put_session_result(std::vector<std::uint8_t>& out,
                        const SessionResult& r) {
  put_f64(out, r.qoe.duration_s);
  put_u32(out, static_cast<std::uint32_t>(r.qoe.users.size()));
  for (const sim::UserQoe& u : r.qoe.users) {
    put_u64(out, static_cast<std::uint64_t>(u.user));
    put_f64(out, u.displayed_fps);
    put_f64(out, u.stall_time_s);
    put_f64(out, u.stall_ratio);
    put_f64(out, u.mean_quality_tier);
    put_u64(out, static_cast<std::uint64_t>(u.quality_switches));
    put_f64(out, u.mean_goodput_mbps);
    put_f64(out, u.viewport_miss_ratio);
    put_f64(out, u.mean_m2p_latency_s);
    put_f64(out, u.max_m2p_latency_s);
  }
  put_f64(out, r.multicast_bit_share);
  put_f64(out, r.mean_group_size);
  put_u64(out, static_cast<std::uint64_t>(r.custom_beam_uses));
  put_u64(out, static_cast<std::uint64_t>(r.stock_beam_uses));
  put_u64(out, static_cast<std::uint64_t>(r.blockage_forecasts));
  put_u64(out, static_cast<std::uint64_t>(r.reflection_switches));
  put_u64(out, static_cast<std::uint64_t>(r.dropped_ticks));
  put_u64(out, static_cast<std::uint64_t>(r.outage_user_ticks));
  put_u64(out, static_cast<std::uint64_t>(r.sls_sweeps));
  put_u64(out, static_cast<std::uint64_t>(r.sls_outage_ticks));
  put_f64(out, r.mean_airtime_utilization);
  const fault::FaultReport& f = r.faults;
  put_u64(out, static_cast<std::uint64_t>(f.faults_injected));
  put_u64(out, static_cast<std::uint64_t>(f.recoveries));
  put_f64(out, f.mean_time_to_recover_s);
  put_f64(out, f.max_time_to_recover_s);
  put_f64(out, f.fault_rebuffer_s);
  put_u64(out, static_cast<std::uint64_t>(f.group_reformations));
  put_u64(out, static_cast<std::uint64_t>(f.concealed_frames));
  put_u64(out, static_cast<std::uint64_t>(f.skipped_frames));
  put_u64(out, static_cast<std::uint64_t>(f.probe_retries));
  put_u64(out, static_cast<std::uint64_t>(f.fallback_stock_beams));
  put_u64(out, static_cast<std::uint64_t>(f.fallback_reflection_beams));
  put_u64(out, static_cast<std::uint64_t>(f.fallback_tier_drops));
  put_u64(out, static_cast<std::uint64_t>(f.degraded_user_ticks));
  put_u64(out, static_cast<std::uint64_t>(f.unhealthy_user_ticks));
  put_u64(out, static_cast<std::uint64_t>(f.health_transitions));
  const transport::TransportReport& w = r.transport;
  put_u64(out, w.trains);
  put_u64(out, w.tiles);
  put_u64(out, w.data_packets);
  put_u64(out, w.parity_packets);
  put_u64(out, w.lost_packets);
  put_u64(out, w.retransmitted_packets);
  put_u64(out, w.nacks);
  put_u64(out, w.fec_recovered_tiles);
  put_u64(out, w.nack_recovered_tiles);
  put_u64(out, w.deadline_missed_tiles);
  put_f64(out, w.residual_loss_mean);
  put_f64(out, w.recovery_ms_p50);
  put_f64(out, w.recovery_ms_p99);
  put_f64(out, w.recovery_ms_max);
  const vv::TileReport& t = r.tiles;
  put_u64(out, t.requests);
  put_u64(out, t.encoded_tiles);
  put_u64(out, t.stitched_tiles);
  put_u64(out, t.encoded_bytes);
  put_u64(out, t.stitched_bytes);
}

SessionResult read_session_result(Reader& in) {
  SessionResult r;
  r.qoe.duration_s = in.f64();
  const std::uint32_t users = in.u32();
  // Each user row is 10 fixed fields of 8 bytes: reject an absurd count
  // before reserving anything.
  if (static_cast<std::uint64_t>(users) * 80 > in.remaining())
    throw CheckpointError("checkpoint: user count exceeds payload size");
  r.qoe.users.reserve(users);
  for (std::uint32_t i = 0; i < users; ++i) {
    sim::UserQoe u;
    u.user = static_cast<std::size_t>(in.u64());
    u.displayed_fps = in.f64();
    u.stall_time_s = in.f64();
    u.stall_ratio = in.f64();
    u.mean_quality_tier = in.f64();
    u.quality_switches = static_cast<std::size_t>(in.u64());
    u.mean_goodput_mbps = in.f64();
    u.viewport_miss_ratio = in.f64();
    u.mean_m2p_latency_s = in.f64();
    u.max_m2p_latency_s = in.f64();
    r.qoe.users.push_back(u);
  }
  r.multicast_bit_share = in.f64();
  r.mean_group_size = in.f64();
  r.custom_beam_uses = static_cast<std::size_t>(in.u64());
  r.stock_beam_uses = static_cast<std::size_t>(in.u64());
  r.blockage_forecasts = static_cast<std::size_t>(in.u64());
  r.reflection_switches = static_cast<std::size_t>(in.u64());
  r.dropped_ticks = static_cast<std::size_t>(in.u64());
  r.outage_user_ticks = static_cast<std::size_t>(in.u64());
  r.sls_sweeps = static_cast<std::size_t>(in.u64());
  r.sls_outage_ticks = static_cast<std::size_t>(in.u64());
  r.mean_airtime_utilization = in.f64();
  fault::FaultReport& f = r.faults;
  f.faults_injected = static_cast<std::size_t>(in.u64());
  f.recoveries = static_cast<std::size_t>(in.u64());
  f.mean_time_to_recover_s = in.f64();
  f.max_time_to_recover_s = in.f64();
  f.fault_rebuffer_s = in.f64();
  f.group_reformations = static_cast<std::size_t>(in.u64());
  f.concealed_frames = static_cast<std::size_t>(in.u64());
  f.skipped_frames = static_cast<std::size_t>(in.u64());
  f.probe_retries = static_cast<std::size_t>(in.u64());
  f.fallback_stock_beams = static_cast<std::size_t>(in.u64());
  f.fallback_reflection_beams = static_cast<std::size_t>(in.u64());
  f.fallback_tier_drops = static_cast<std::size_t>(in.u64());
  f.degraded_user_ticks = static_cast<std::size_t>(in.u64());
  f.unhealthy_user_ticks = static_cast<std::size_t>(in.u64());
  f.health_transitions = static_cast<std::size_t>(in.u64());
  transport::TransportReport& w = r.transport;
  w.trains = in.u64();
  w.tiles = in.u64();
  w.data_packets = in.u64();
  w.parity_packets = in.u64();
  w.lost_packets = in.u64();
  w.retransmitted_packets = in.u64();
  w.nacks = in.u64();
  w.fec_recovered_tiles = in.u64();
  w.nack_recovered_tiles = in.u64();
  w.deadline_missed_tiles = in.u64();
  w.residual_loss_mean = in.f64();
  w.recovery_ms_p50 = in.f64();
  w.recovery_ms_p99 = in.f64();
  w.recovery_ms_max = in.f64();
  vv::TileReport& t = r.tiles;
  t.requests = in.u64();
  t.encoded_tiles = in.u64();
  t.stitched_tiles = in.u64();
  t.encoded_bytes = in.u64();
  t.stitched_bytes = in.u64();
  return r;
}

// --- fingerprint ----------------------------------------------------------

/// Incremental FNV-1a over the canonical little-endian encoding of the
/// fields fed to it.
class Hasher {
 public:
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void b(bool v) { byte(v ? 1 : 0); }
  void str(const std::string& s) {
    u64(s.size());
    for (char c : s) byte(static_cast<std::uint8_t>(c));
  }
  [[nodiscard]] std::uint64_t digest() const noexcept { return h_; }

 private:
  void byte(std::uint8_t v) noexcept {
    h_ ^= v;
    h_ *= 0x100000001b3ULL;
  }
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

}  // namespace

std::uint64_t checkpoint_checksum(
    std::span<const std::uint8_t> data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t byte : data) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fleet_fingerprint(const FleetConfig& config) {
  const SessionConfig& s = config.session;
  Hasher h;
  // The shared-artifact identity folds in first: any bundle change (video
  // seed, point budget, frame count, fps, cell size) moves the fingerprint
  // even though the same fields also hash individually below — the
  // checkpoint additionally records the hash verbatim for a specific
  // resume-time error message.
  h.u64(workload_bundle_hash(s));
  h.u64(config.sessions);
  h.f64(config.supported_fps_threshold);
  h.u64(config.supervision.max_retries);
  h.u64(config.supervision.tick_budget);
  h.u64(s.user_count);
  h.u64(static_cast<std::uint64_t>(s.device));
  h.f64(s.duration_s);
  h.f64(s.fps);
  h.u64(s.master_points);
  h.u64(s.video_frames);
  h.f64(s.cell_size_m);
  h.u64(s.start_tier);
  h.u64(s.seed);
  h.u64(s.content_seed);
  h.f64(s.prediction_horizon_s);
  h.f64(s.decode_points_per_second);
  h.f64(s.audience_spread_rad);
  h.u64(s.tick_budget);
  h.b(s.enable_multicast);
  h.u64(static_cast<std::uint64_t>(s.grouping));
  h.f64(s.grouping_min_iou);
  h.b(s.enable_custom_beams);
  h.b(s.predictive_beam_tracking);
  h.f64(s.sls_staleness_db);
  h.b(s.enable_user_occlusion);
  h.b(s.enable_blockage_mitigation);
  h.u64(static_cast<std::uint64_t>(s.adaptation));
  h.u64(static_cast<std::uint64_t>(s.estimator));
  h.u64(s.ap_count);
  h.f64(s.max_backlog_s);
  h.f64(s.mac_overheads.per_transmission_s);
  h.f64(s.mac_overheads.per_beam_switch_s);
  h.f64(s.health.degraded_rate_mbps);
  h.u64(s.health.recovery_ticks);
  h.f64(s.testbed.shadowing_sigma_db);
  h.f64(s.testbed.shadowing_coherence_s);
  h.f64(s.testbed.content_floor.x);
  h.f64(s.testbed.content_floor.y);
  h.f64(s.testbed.content_floor.z);
  h.f64(s.testbed.ap_position.x);
  h.f64(s.testbed.ap_position.y);
  h.f64(s.testbed.ap_position.z);
  h.u64(s.policy_overrides.size());
  for (const auto& [slot, name] : s.policy_overrides) {
    h.str(slot);
    h.str(name);
  }
  h.u64(s.transport.mtu_bytes);
  h.u64(s.transport.tile_bytes);
  h.u64(static_cast<std::uint64_t>(s.transport.fec_group_data));
  h.u64(static_cast<std::uint64_t>(s.transport.fec_group_parity));
  h.u64(static_cast<std::uint64_t>(s.transport.nack_rounds));
  h.f64(s.transport.nack_rtt_ms);
  h.f64(s.transport.target_per);
  h.f64(s.transport.burst_enter);
  h.f64(s.transport.burst_exit);
  h.u64(s.fault_plan.size());
  for (const fault::FaultEvent& e : s.fault_plan.events()) {
    h.f64(e.t_s);
    h.u64(static_cast<std::uint64_t>(e.kind));
    h.u64(e.target);
    h.f64(e.duration_s);
    h.f64(e.magnitude);
    h.f64(e.position.x);
    h.f64(e.position.y);
    h.f64(e.position.z);
  }
  h.u64(s.replay_traces.size());
  for (const trace::Trace& t : s.replay_traces) {
    h.u64(static_cast<std::uint64_t>(t.device));
    h.f64(t.sample_rate_hz);
    h.u64(t.poses.size());
    for (const geo::Pose& p : t.poses) {
      h.f64(p.position.x);
      h.f64(p.position.y);
      h.f64(p.position.z);
      h.f64(p.orientation.w);
      h.f64(p.orientation.x);
      h.f64(p.orientation.y);
      h.f64(p.orientation.z);
    }
  }
  return h.digest();
}

std::vector<std::uint8_t> serialize_checkpoint(
    const FleetCheckpoint& checkpoint) {
  std::vector<std::uint8_t> out;
  put_u32(out, kCheckpointMagic);
  put_u32(out, kCheckpointVersion);
  put_u64(out, checkpoint.fingerprint);
  put_u64(out, checkpoint.bundle_hash);
  put_u32(out, checkpoint.slot_count);
  put_u32(out, static_cast<std::uint32_t>(checkpoint.records.size()));
  for (const SlotRecord& rec : checkpoint.records) {
    put_u32(out, rec.slot);
    out.push_back(static_cast<std::uint8_t>(rec.outcome.status));
    out.push_back(static_cast<std::uint8_t>(rec.outcome.error_class));
    put_u32(out, rec.outcome.attempts);
    put_u64(out, rec.outcome.seed);
    put_u64(out, rec.outcome.backoff_ticks);
    put_str(out, rec.outcome.message);
    std::vector<std::uint8_t> body;
    put_session_result(body, rec.result);
    put_u32(out, static_cast<std::uint32_t>(body.size()));
    out.insert(out.end(), body.begin(), body.end());
  }
  put_u64(out, checkpoint_checksum(out));
  return out;
}

FleetCheckpoint deserialize_checkpoint(std::span<const std::uint8_t> blob) {
  if (blob.size() < 8 + 4 + 4 + 8 + 8 + 4 + 4)
    throw CheckpointError("checkpoint: too short to hold a header");
  const std::uint64_t expected =
      get_u64(blob, blob.size() - 8);
  if (checkpoint_checksum(blob.subspan(0, blob.size() - 8)) != expected)
    throw CheckpointError("checkpoint: checksum mismatch (corrupt file)");

  Reader in(blob.subspan(0, blob.size() - 8));
  if (in.u32() != kCheckpointMagic)
    throw CheckpointError("checkpoint: bad magic (not a VCKP file)");
  const std::uint32_t version = in.u32();
  if (version != kCheckpointVersion)
    throw CheckpointError("checkpoint: unsupported version " +
                          std::to_string(version) + " (expected " +
                          std::to_string(kCheckpointVersion) + ")");
  FleetCheckpoint ckpt;
  ckpt.fingerprint = in.u64();
  ckpt.bundle_hash = in.u64();
  ckpt.slot_count = in.u32();
  const std::uint32_t records = in.u32();
  // Each record needs at least its fixed 38-byte prefix; reject counts the
  // payload cannot possibly hold before reserving.
  if (static_cast<std::uint64_t>(records) * 38 > in.remaining())
    throw CheckpointError("checkpoint: record count exceeds payload size");
  ckpt.records.reserve(records);
  for (std::uint32_t i = 0; i < records; ++i) {
    SlotRecord rec;
    rec.slot = in.u32();
    if (rec.slot >= ckpt.slot_count)
      throw CheckpointError("checkpoint: slot index " +
                            std::to_string(rec.slot) +
                            " out of range for a fleet of " +
                            std::to_string(ckpt.slot_count));
    const std::uint8_t status = in.u8();
    if (status > static_cast<std::uint8_t>(SlotStatus::kQuarantined))
      throw CheckpointError("checkpoint: invalid slot status");
    rec.outcome.status = static_cast<SlotStatus>(status);
    const std::uint8_t error_class = in.u8();
    if (error_class > static_cast<std::uint8_t>(FailureClass::kUnknown))
      throw CheckpointError("checkpoint: invalid failure class");
    rec.outcome.error_class = static_cast<FailureClass>(error_class);
    rec.outcome.attempts = in.u32();
    rec.outcome.seed = in.u64();
    rec.outcome.backoff_ticks = in.u64();
    const std::uint32_t message_len = in.u32();
    if (message_len > in.remaining())
      throw CheckpointError("checkpoint: message length exceeds payload");
    rec.outcome.message = in.str(message_len);
    const std::uint32_t result_len = in.u32();
    if (result_len > in.remaining())
      throw CheckpointError("checkpoint: result length exceeds payload");
    const std::size_t before = in.remaining();
    rec.result = read_session_result(in);
    if (before - in.remaining() != result_len)
      throw CheckpointError("checkpoint: result length field disagrees "
                            "with its body");
    ckpt.records.push_back(std::move(rec));
  }
  if (in.remaining() != 0)
    throw CheckpointError("checkpoint: trailing bytes after last record");
  for (std::size_t i = 1; i < ckpt.records.size(); ++i)
    if (ckpt.records[i - 1].slot >= ckpt.records[i].slot)
      throw CheckpointError("checkpoint: slot records not strictly sorted");
  return ckpt;
}

void save_checkpoint(const FleetCheckpoint& checkpoint,
                     const std::string& path) {
  const std::vector<std::uint8_t> blob = serialize_checkpoint(checkpoint);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw CheckpointError("checkpoint: cannot write " + tmp);
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
    if (!out)
      throw CheckpointError("checkpoint: short write to " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    throw CheckpointError("checkpoint: cannot replace " + path + ": " +
                          ec.message());
  }
}

FleetCheckpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw CheckpointError("checkpoint: cannot open " + path);
  std::vector<std::uint8_t> blob(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad())
    throw CheckpointError("checkpoint: read error on " + path);
  return deserialize_checkpoint(blob);
}

}  // namespace volcast::core
