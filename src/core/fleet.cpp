#include "core/fleet.h"

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/thread_pool.h"
#include "core/checkpoint.h"
#include "core/stages/registry.h"
#include "core/workload_bundle.h"

namespace volcast::core {

void FleetConfig::validate() const {
  if (sessions == 0)
    throw std::invalid_argument("FleetConfig: sessions must be > 0");
  if (!(supported_fps_threshold >= 0.0))
    throw std::invalid_argument(
        "FleetConfig: supported_fps_threshold must be >= 0");
  if (session.telemetry != nullptr)
    throw std::invalid_argument(
        "FleetConfig: the session template cannot carry a telemetry sink "
        "(sessions run concurrently; attach per-session sinks by running "
        "Sessions directly)");
  if (session.tick_observer)
    throw std::invalid_argument(
        "FleetConfig: the session template cannot carry a tick_observer "
        "(sessions run concurrently)");
  session.validate();
}

namespace {

/// Runs one fleet slot under the supervision policy: every failure is
/// caught and classified instead of escaping, transient classes are
/// retried with a deterministically derived seed, deadline overruns are
/// never retried (the budget is structural — a rerun would overrun
/// again), and an exhausted retry budget quarantines the slot. Pure data
/// in, pure data out: the outcome is bit-identical at any
/// parallel_sessions value.
SlotOutcome run_supervised_slot(const FleetConfig& config, std::size_t slot,
                                SessionResult& out) {
  SlotOutcome outcome;
  const std::uint64_t base_seed =
      config.session.seed + static_cast<std::uint64_t>(slot);
  std::uint64_t seed = base_seed;
  for (std::uint32_t attempt = 1;; ++attempt) {
    outcome.attempts = attempt;
    outcome.seed = seed;
    try {
      SessionConfig sc = config.session;
      sc.seed = seed;
      if (config.supervision.tick_budget != 0)
        sc.tick_budget = config.supervision.tick_budget;
      // The shared bundle survives retries untouched: a retry only redraws
      // the *session* seed, and with content_seed pinned the workload
      // identity — and therefore the bundle key — is seed-independent. The
      // reset below only fires when content ties to the session seed
      // (content_seed == 0), where each slot/attempt legitimately streams
      // its own video and must build privately.
      if (sc.bundle != nullptr &&
          !(sc.bundle->key() == WorkloadKey::from(sc)))
        sc.bundle.reset();
      Session session(std::move(sc));
      out = session.run();
      outcome.status = SlotStatus::kCompleted;
      outcome.error_class = FailureClass::kNone;
      outcome.message.clear();
      return outcome;
    } catch (...) {
      std::string message;
      const FailureClass cls = classify_current_exception(message);
      outcome.error_class = cls;
      outcome.message = std::move(message);
      if (cls == FailureClass::kDeadline) {
        outcome.status = SlotStatus::kDeadlineExceeded;
        return outcome;
      }
      if (attempt > config.supervision.max_retries) {
        outcome.status = config.supervision.max_retries > 0
                             ? SlotStatus::kQuarantined
                             : SlotStatus::kFailed;
        return outcome;
      }
      outcome.backoff_ticks += retry_backoff_ticks(slot, attempt);
      seed = derive_retry_seed(base_seed, slot, attempt + 1);
    }
  }
}

/// The tiling policy the session template resolves to (default +
/// override), i.e. what build_pipeline will instantiate in every slot.
std::string resolved_tiling_policy(const SessionConfig& session) {
  std::string name = default_policy(StageKind::kTiling, session);
  const auto it = session.policy_overrides.find("tiling");
  if (it != session.policy_overrides.end()) name = it->second;
  return name;
}

FleetResult run_fleet_impl(const FleetConfig& config) {
  FleetResult result;
  result.sessions.resize(config.sessions);
  result.outcomes.resize(config.sessions);

  const std::uint64_t fingerprint = fleet_fingerprint(config);
  const std::uint64_t bundle_hash = workload_bundle_hash(config.session);

  // Restore finished slots verbatim before dispatching anything: the
  // stored outcome and result are byte-for-byte what the original run
  // produced, which is what makes the resumed FleetResult bit-identical
  // to an uninterrupted one.
  std::vector<char> finished(config.sessions, 0);
  if (!config.resume_file.empty()) {
    FleetCheckpoint ckpt = load_checkpoint(config.resume_file);
    // Check the bundle hash before the full fingerprint: a content
    // mismatch is the likelier operator error under shared-bundle fleets
    // and deserves the specific message.
    if (ckpt.bundle_hash != bundle_hash)
      throw CheckpointError(
          "checkpoint: workload bundle hash mismatch — " +
          config.resume_file +
          " was produced against different shared content (video seed, "
          "master_points, video_frames, fps or cell_size_m differ)");
    if (ckpt.fingerprint != fingerprint)
      throw CheckpointError(
          "checkpoint: fingerprint mismatch — " + config.resume_file +
          " was produced by a different fleet configuration");
    if (ckpt.slot_count != config.sessions)
      throw CheckpointError(
          "checkpoint: slot count " + std::to_string(ckpt.slot_count) +
          " does not match a fleet of " + std::to_string(config.sessions));
    for (SlotRecord& rec : ckpt.records) {
      result.sessions[rec.slot] = std::move(rec.result);
      result.outcomes[rec.slot] = std::move(rec.outcome);
      finished[rec.slot] = 1;
    }
  }

  // Checkpoint sink. `finished` doubles as the happens-before edge: a
  // slot's result/outcome writes precede setting its flag under ckpt_mu,
  // so the builder (also under ckpt_mu) only ever reads quiescent slots.
  std::mutex ckpt_mu;
  std::size_t newly_finished = 0;
  const bool sink_active =
      !config.checkpoint_file.empty() || config.kill_after_slots > 0;

  auto run_slot = [&](std::size_t k) {
    if (finished[k]) return;
    result.outcomes[k] = run_supervised_slot(config, k, result.sessions[k]);
    if (!sink_active) return;
    std::lock_guard<std::mutex> lock(ckpt_mu);
    finished[k] = 1;
    ++newly_finished;
    if (!config.checkpoint_file.empty()) {
      FleetCheckpoint ckpt;
      ckpt.fingerprint = fingerprint;
      ckpt.bundle_hash = bundle_hash;
      ckpt.slot_count = static_cast<std::uint32_t>(config.sessions);
      for (std::size_t j = 0; j < config.sessions; ++j) {
        if (!finished[j]) continue;
        SlotRecord rec;
        rec.slot = static_cast<std::uint32_t>(j);
        rec.outcome = result.outcomes[j];
        rec.result = result.sessions[j];
        ckpt.records.push_back(std::move(rec));
      }
      save_checkpoint(ckpt, config.checkpoint_file);
    }
    if (config.kill_after_slots > 0 &&
        newly_finished >= config.kill_after_slots)
      throw FleetKilled("fleet kill hook: aborting after " +
                        std::to_string(newly_finished) +
                        " newly finished slots");
  };

  {
    // Sessions are heavyweight (each precomputes its video store), so the
    // pool fans out whole sessions via per-slot task claiming; each writes
    // only its own slot. Inner session parallelism multiplies with this —
    // for large fleets prefer session.worker_threads = 1 and let the fleet
    // dimension scale.
    common::ThreadPool pool(config.parallel_sessions);
    pool.parallel_tasks(config.sessions, run_slot);
  }

  // Aggregates folded serially, in slot order then user order, over the
  // *completed* slots only.
  RunningStats fps_stats;
  RunningStats stall_stats;
  RunningStats tier_stats;
  EmpiricalDistribution fps_dist;
  EmpiricalDistribution stall_dist;
  for (std::size_t k = 0; k < config.sessions; ++k) {
    const SlotOutcome& outcome = result.outcomes[k];
    if (outcome.status != SlotStatus::kCompleted) {
      ++result.aborted_slots;
      if (outcome.status == SlotStatus::kQuarantined)
        ++result.quarantined_slots;
      continue;
    }
    if (outcome.attempts > 1) ++result.retried_slots;
    for (const sim::UserQoe& q : result.sessions[k].qoe.users) {
      ++result.total_users;
      if (q.displayed_fps >= config.supported_fps_threshold)
        ++result.supported_users;
      fps_stats.add(q.displayed_fps);
      stall_stats.add(q.stall_ratio);
      tier_stats.add(q.mean_quality_tier);
      fps_dist.add(q.displayed_fps);
      stall_dist.add(q.stall_time_s);
    }
  }
  for (std::size_t k = 0; k < config.sessions; ++k) {
    if (result.outcomes[k].status != SlotStatus::kCompleted) continue;
    const vv::TileReport& t = result.sessions[k].tiles;
    result.tiles.requests += t.requests;
    result.tiles.encoded_tiles += t.encoded_tiles;
    result.tiles.stitched_tiles += t.stitched_tiles;
    result.tiles.encoded_bytes += t.encoded_bytes;
    result.tiles.stitched_bytes += t.stitched_bytes;
  }
  result.mean_displayed_fps = fps_stats.mean();
  result.mean_stall_ratio = stall_stats.mean();
  result.mean_quality_tier = tier_stats.mean();
  if (!fps_dist.empty()) {
    result.p5_displayed_fps = fps_dist.percentile(5.0);
    result.p50_displayed_fps = fps_dist.percentile(50.0);
    result.p95_displayed_fps = fps_dist.percentile(95.0);
    result.p95_stall_time_s = stall_dist.percentile(95.0);
  }
  return result;
}

}  // namespace

FleetResult run_fleet(const FleetConfig& config) {
  config.validate();
  FleetConfig effective = config;
  // Setup-once, serve-many across the fleet: with pinned content every
  // slot's workload identity is the same, so one shared WorkloadBundle
  // replaces per-slot setup (video generation, codec precompute,
  // occupancy). With content_seed == 0 each slot streams its own video
  // (seed + k) and nothing is shareable — the legacy path stays. Like the
  // tile cache below, the bundle changes wall clock only, never results.
  if (effective.share_bundle && effective.session.bundle == nullptr &&
      effective.session.content_seed != 0)
    effective.session.bundle = WorkloadBundle::build(effective.session);
  // Encode-once, serve-many across the fleet: when the slots will run the
  // "shared" tiling policy and the caller didn't supply a cache, stand up
  // one fleet-shared cache here so a tile encoded by any slot is stitched
  // by all the others. Neither the cache pointer nor the bundle is part of
  // the checkpoint fingerprint (they change wall clock only, never
  // results), so resumed runs stay compatible either way.
  vv::TileCache shared_cache;
  if (effective.session.tile_cache == nullptr &&
      resolved_tiling_policy(effective.session) == "shared")
    effective.session.tile_cache = &shared_cache;
  return run_fleet_impl(effective);
}

}  // namespace volcast::core
