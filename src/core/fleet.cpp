#include "core/fleet.h"

#include <stdexcept>

#include "common/stats.h"
#include "common/thread_pool.h"

namespace volcast::core {

void FleetConfig::validate() const {
  if (sessions == 0)
    throw std::invalid_argument("FleetConfig: sessions must be > 0");
  if (!(supported_fps_threshold >= 0.0))
    throw std::invalid_argument(
        "FleetConfig: supported_fps_threshold must be >= 0");
  if (session.telemetry != nullptr)
    throw std::invalid_argument(
        "FleetConfig: the session template cannot carry a telemetry sink "
        "(sessions run concurrently; attach per-session sinks by running "
        "Sessions directly)");
  if (session.tick_observer)
    throw std::invalid_argument(
        "FleetConfig: the session template cannot carry a tick_observer "
        "(sessions run concurrently)");
  session.validate();
}

FleetResult run_fleet(const FleetConfig& config) {
  config.validate();

  FleetResult result;
  result.sessions.resize(config.sessions);
  {
    // Sessions are heavyweight (each precomputes its video store), so the
    // pool fans out whole sessions; each writes only its own slot. Inner
    // session parallelism multiplies with this — for large fleets prefer
    // session.worker_threads = 1 and let the fleet dimension scale.
    common::ThreadPool pool(config.parallel_sessions);
    pool.parallel_for(config.sessions, [&](std::size_t k) {
      SessionConfig sc = config.session;
      sc.seed = config.session.seed + static_cast<std::uint64_t>(k);
      Session session(std::move(sc));
      result.sessions[k] = session.run();
    });
  }

  // Aggregates folded serially, in slot order then user order.
  RunningStats fps_stats;
  RunningStats stall_stats;
  RunningStats tier_stats;
  EmpiricalDistribution fps_dist;
  EmpiricalDistribution stall_dist;
  for (const SessionResult& sr : result.sessions) {
    for (const sim::UserQoe& q : sr.qoe.users) {
      ++result.total_users;
      if (q.displayed_fps >= config.supported_fps_threshold)
        ++result.supported_users;
      fps_stats.add(q.displayed_fps);
      stall_stats.add(q.stall_ratio);
      tier_stats.add(q.mean_quality_tier);
      fps_dist.add(q.displayed_fps);
      stall_dist.add(q.stall_time_s);
    }
  }
  result.mean_displayed_fps = fps_stats.mean();
  result.mean_stall_ratio = stall_stats.mean();
  result.mean_quality_tier = tier_stats.mean();
  if (!fps_dist.empty()) {
    result.p5_displayed_fps = fps_dist.percentile(5.0);
    result.p50_displayed_fps = fps_dist.percentile(50.0);
    result.p95_displayed_fps = fps_dist.percentile(95.0);
    result.p95_stall_time_s = stall_dist.percentile(95.0);
  }
  return result;
}

}  // namespace volcast::core
