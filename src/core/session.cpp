// Session driver: validates the config, assembles the staged pipeline
// from the policy registry, and owns the tick loop. All per-tick work
// lives in the stages (src/core/stages/); the driver contributes only
// what frames them — the event-queue clock, the fault-injection prologue
// that updates AP availability, and the result finalization.
#include "core/session.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/stats.h"
#include "common/units.h"
#include "core/stages/registry.h"
#include "core/supervisor.h"
#include "core/stages/session_state.h"
#include "core/stages/tick_context.h"
#include "core/workload_bundle.h"
#include "obs/telemetry.h"

namespace volcast::core {

void SessionConfig::validate() const {
  if (!(fps > 0.0))
    throw std::invalid_argument("SessionConfig: fps must be > 0");
  if (!(duration_s > 0.0))
    throw std::invalid_argument("SessionConfig: duration_s must be > 0");
  if (user_count == 0)
    throw std::invalid_argument("SessionConfig: user_count must be > 0");
  if (master_points == 0)
    throw std::invalid_argument("SessionConfig: master_points must be > 0");
  if (video_frames == 0)
    throw std::invalid_argument("SessionConfig: video_frames must be > 0");
  if (!(cell_size_m > 0.0))
    throw std::invalid_argument("SessionConfig: cell_size_m must be > 0");
  if (ap_count < 1 || ap_count > 4)
    throw std::invalid_argument("SessionConfig: ap_count must be in [1, 4]");
  if (start_tier > 2)
    throw std::invalid_argument(
        "SessionConfig: start_tier must be in [0, 2] (three quality tiers)");
  if (!(prediction_horizon_s >= 0.0))
    throw std::invalid_argument(
        "SessionConfig: prediction_horizon_s must be >= 0");
  if (!(decode_points_per_second >= 0.0))
    throw std::invalid_argument(
        "SessionConfig: decode_points_per_second must be >= 0");
  if (!(max_backlog_s >= 0.0))
    throw std::invalid_argument("SessionConfig: max_backlog_s must be >= 0");
  if (!replay_traces.empty()) {
    if (replay_traces.size() < user_count)
      throw std::invalid_argument(
          "SessionConfig: fewer replay traces than users");
    for (const auto& trace : replay_traces)
      if (trace.poses.empty())
        throw std::invalid_argument("SessionConfig: empty replay trace");
  }
  for (const auto& [slot, name] : policy_overrides) {
    const auto kind = parse_stage_kind(slot);
    if (!kind.has_value())
      throw std::invalid_argument(
          "SessionConfig: unknown pipeline slot '" + slot +
          "' in policy_overrides (expected prediction, beam, adaptation, "
          "mitigation, grouping, tiling or transport)");
    if (!PolicyRegistry::instance().contains(*kind, name)) {
      std::string msg = "SessionConfig: unknown " + slot + " policy '" +
                        name + "'; registered:";
      for (const auto& known : PolicyRegistry::instance().names(*kind))
        msg += " " + known;
      throw std::invalid_argument(msg);
    }
  }
  fault_plan.validate(user_count, ap_count);
  try {
    transport.validate();
  } catch (const std::invalid_argument& bad) {
    throw std::invalid_argument(std::string("SessionConfig: ") + bad.what());
  }
  if (bundle != nullptr) {
    if (!bundle->frozen())
      throw std::invalid_argument(
          "SessionConfig: bundle must be frozen before sessions can share "
          "it (call WorkloadBundle::freeze or use WorkloadBundle::build)");
    if (!(bundle->key() == WorkloadKey::from(*this)))
      throw std::invalid_argument(
          "SessionConfig: bundle workload identity does not match this "
          "config (video seed, master_points, video_frames, fps and "
          "cell_size_m must all agree)");
  }
}

struct Session::Impl {
  SessionState state;
  std::vector<std::unique_ptr<Stage>> pipeline;
  bool ran = false;

  explicit Impl(SessionConfig c)
      : state(std::move(c)), pipeline(build_pipeline(state.config)) {}

  SessionResult run();
};

SessionResult Session::Impl::run() {
  if (ran)
    throw std::logic_error(
        "Session::run() called twice: a run consumes the session state; "
        "construct a fresh Session to re-run");
  ran = true;

  const SessionConfig& config = state.config;
  const auto ticks = static_cast<std::size_t>(
      std::llround(config.duration_s * config.fps));
  const std::size_t n = config.user_count;
  state.begin_run();

  for (std::size_t tick = 0; tick < ticks; ++tick) {
    if (config.tick_budget != 0 && tick >= config.tick_budget)
      throw DeadlineExceeded(
          "session deadline: tick budget " +
          std::to_string(config.tick_budget) + " exhausted with " +
          std::to_string(ticks - tick) + " of " + std::to_string(ticks) +
          " ticks left");
    TickContext ctx;
    ctx.tick = tick;
    ctx.tick32 = static_cast<std::uint32_t>(tick);
    ctx.t = static_cast<double>(tick) * state.dt;
    ctx.tel = state.tel;
    state.queue.run_until(ctx.t);
    ctx.frame = tick % config.video_frames;

    // Fault-injection prologue: advance the injector's clock and fold AP
    // outages into the availability flags before any stage runs. Inert
    // (and cost-free on the hot paths) with an empty plan.
    if (state.has_faults) {
      const std::size_t fired = state.injector.advance(ctx.t);
      state.freport.faults_injected += fired;
      if (state.injector.crash_triggered())
        throw fault::SessionCrashFault(
            "fault plan: session crash injected at t=" +
            std::to_string(state.injector.crash_onset_s()) + "s (tick " +
            std::to_string(tick) + ")");
      if (state.tel != nullptr && fired > 0) {
        obs::Event e;
        e.tick = ctx.tick32;
        e.layer = obs::Layer::kFault;
        e.type = obs::EventType::kFaultInjected;
        e.value = static_cast<double>(fired);
        e.has_value = true;
        state.tel->record_event(e);
      }
      for (std::size_t a = 0; a < state.coordinator.ap_count(); ++a) {
        const bool up = !state.injector.ap_down(a);
        if (up != state.ap_up[a]) {
          ctx.availability_changed = true;
          if (state.tel != nullptr) {
            obs::Event e;
            e.tick = ctx.tick32;
            e.layer = obs::Layer::kFault;
            e.type = up ? obs::EventType::kApUp : obs::EventType::kApDown;
            e.ap = static_cast<std::uint32_t>(a);
            state.tel->record_event(e);
          }
        }
        state.ap_up[a] = up;
      }
      std::fill(state.fault_fallback.begin(), state.fault_fallback.end(), 0);
    }

    for (const auto& stage : pipeline) stage->run(state, ctx);
  }
  state.queue.run();

  SessionResult result;
  result.qoe.duration_s = config.duration_s;
  for (std::size_t u = 0; u < n; ++u) {
    sim::UserQoe q;
    q.user = u;
    q.displayed_fps =
        state.users[u].player.played_frames() / config.duration_s;
    q.stall_time_s = state.users[u].player.stall_time_s();
    q.stall_ratio = q.stall_time_s / config.duration_s;
    q.mean_quality_tier = state.users[u].player.mean_played_tier();
    q.quality_switches = state.users[u].player.quality_switches();
    q.mean_goodput_mbps =
        bits_to_megabits(state.users[u].delivered_bits / config.duration_s);
    q.viewport_miss_ratio =
        state.users[u].miss_count > 0
            ? state.users[u].miss_sum /
                  static_cast<double>(state.users[u].miss_count)
            : 0.0;
    q.mean_m2p_latency_s = state.users[u].m2p.mean();
    q.max_m2p_latency_s = state.users[u].m2p.max();
    result.qoe.users.push_back(q);
  }
  const double total_bits = state.multicast_bits + state.unicast_bits;
  result.multicast_bit_share =
      total_bits > 0.0 ? state.multicast_bits / total_bits : 0.0;
  result.mean_group_size =
      state.group_count > 0
          ? state.group_size_sum / static_cast<double>(state.group_count)
          : 0.0;
  result.custom_beam_uses = state.custom_beam_uses;
  result.stock_beam_uses = state.stock_beam_uses;
  result.blockage_forecasts = state.blockage_forecasts;
  result.reflection_switches = state.reflection_switches;
  result.dropped_ticks = state.dropped_ticks;
  result.outage_user_ticks = state.outage_user_ticks;
  result.sls_sweeps = state.sls_sweeps;
  result.sls_outage_ticks = state.sls_outage_ticks;
  result.mean_airtime_utilization =
      config.duration_s > 0.0 ? state.scheduled_airtime / config.duration_s
                              : 0.0;
  if (state.has_faults) {
    RunningStats ttr;
    for (const fault::HealthMonitor& monitor : state.health) {
      for (double episode : monitor.recovery_times()) ttr.add(episode);
      state.freport.health_transitions += monitor.transitions();
    }
    state.freport.recoveries = ttr.count();
    state.freport.mean_time_to_recover_s = ttr.mean();
    state.freport.max_time_to_recover_s = ttr.max();
  }
  result.faults = state.freport;
  // Wire totals + NACK recovery-latency percentiles. The samples were
  // appended in serial delivery order, so the sort (and everything after
  // it) is identical at any worker_threads value.
  if (!state.recovery_samples.empty()) {
    std::vector<double> sorted = state.recovery_samples;
    std::sort(sorted.begin(), sorted.end());
    const auto at = [&](double q) {
      const std::size_t i = static_cast<std::size_t>(
          q * static_cast<double>(sorted.size() - 1) + 0.5);
      return sorted[std::min(i, sorted.size() - 1)];
    };
    state.twire.recovery_ms_p50 = at(0.50);
    state.twire.recovery_ms_p99 = at(0.99);
    state.twire.recovery_ms_max = sorted.back();
  }
  result.transport = state.twire;
  result.tiles = state.tiles;
  return result;
}

Session::Session(SessionConfig config) {
  config.validate();
  impl_ = std::make_unique<Impl>(std::move(config));
}
Session::~Session() = default;
Session::Session(Session&&) noexcept = default;
Session& Session::operator=(Session&&) noexcept = default;

const SessionConfig& Session::config() const noexcept {
  return impl_->state.config;
}

SessionResult Session::run() { return impl_->run(); }

}  // namespace volcast::core
