#include "core/session.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/stats.h"
#include "common/thread_pool.h"
#include "common/units.h"
#include "core/beam_designer.h"
#include "core/blockage_mitigator.h"
#include "core/multi_ap.h"
#include "fault/injector.h"
#include "mmwave/link.h"
#include "mmwave/sls.h"
#include "obs/telemetry.h"
#include "pointcloud/video_store.h"
#include "sim/event_queue.h"
#include "sim/player.h"
#include "viewport/joint_predictor.h"
#include "viewport/similarity.h"

namespace volcast::core {

void SessionConfig::validate() const {
  if (!(fps > 0.0))
    throw std::invalid_argument("SessionConfig: fps must be > 0");
  if (!(duration_s > 0.0))
    throw std::invalid_argument("SessionConfig: duration_s must be > 0");
  if (user_count == 0)
    throw std::invalid_argument("SessionConfig: user_count must be > 0");
  if (master_points == 0)
    throw std::invalid_argument("SessionConfig: master_points must be > 0");
  if (video_frames == 0)
    throw std::invalid_argument("SessionConfig: video_frames must be > 0");
  if (!(cell_size_m > 0.0))
    throw std::invalid_argument("SessionConfig: cell_size_m must be > 0");
  if (ap_count < 1 || ap_count > 4)
    throw std::invalid_argument("SessionConfig: ap_count must be in [1, 4]");
  if (start_tier > 2)
    throw std::invalid_argument(
        "SessionConfig: start_tier must be in [0, 2] (three quality tiers)");
  if (!(prediction_horizon_s >= 0.0))
    throw std::invalid_argument(
        "SessionConfig: prediction_horizon_s must be >= 0");
  if (!(decode_points_per_second >= 0.0))
    throw std::invalid_argument(
        "SessionConfig: decode_points_per_second must be >= 0");
  if (!(max_backlog_s >= 0.0))
    throw std::invalid_argument("SessionConfig: max_backlog_s must be >= 0");
  if (!replay_traces.empty()) {
    if (replay_traces.size() < user_count)
      throw std::invalid_argument(
          "SessionConfig: fewer replay traces than users");
    for (const auto& trace : replay_traces)
      if (trace.poses.empty())
        throw std::invalid_argument("SessionConfig: empty replay trace");
  }
  fault_plan.validate(user_count, ap_count);
}

namespace {

/// Bits a user needs for `frame` at `tier` given its visibility map.
double visible_bits(const view::VisibilityMap& map, const vv::VideoStore& store,
                    std::size_t frame, std::size_t tier) {
  double bits = 0.0;
  for (vv::CellId c = 0; c < map.cell_count(); ++c) {
    const double lod = map.lod(c);
    if (lod > 0.0)
      bits += byte_bits(static_cast<double>(store.cell_bytes(frame, tier, c))) *
              lod;
  }
  return bits;
}

}  // namespace

struct Session::Impl {
  SessionConfig config;
  MultiApCoordinator coordinator;
  vv::VideoGenerator generator;
  vv::CellGrid grid;
  // Declared before the store and the joint predictor: both hold a pointer
  // to it and use it during their own construction.
  common::ThreadPool pool;
  vv::VideoStore store;
  view::JointViewportPredictor joint;
  std::vector<BeamDesigner> designers;   // one per AP
  BlockageMitigator mitigator;

  // Per-video-frame occupancy at the top tier (drives visibility).
  std::vector<std::vector<std::uint32_t>> occupancy;

  // Per-user state.
  struct User {
    trace::MobilityModel mobility;
    mmwave::ShadowingProcess shadowing;
    sim::Player player;
    BandwidthPredictor predictor;
    std::size_t tier;
    std::size_t prefetch_credit = 0;
    std::size_t frames_ahead = 0;
    int reflection_ticks = 0;
    mmwave::Awv reflection_awv;
    double delivered_bits = 0.0;
    bool blockage_forecast = false;
    // Reactive (SLS) beam tracking state.
    mmwave::Awv serving_awv;
    int sls_remaining_ticks = 0;
    // Viewport prediction quality accounting.
    double miss_sum = 0.0;
    std::size_t miss_count = 0;
    // The decoder is a serial resource: completion time of the last frame.
    double decode_free_at = 0.0;
    // Motion-to-photon accounting (pose -> playable).
    RunningStats m2p;
    // Fault-recovery state: exponential backoff after failed beam probes,
    // and the frozen position of a stuck sector.
    int probe_backoff_ticks = 0;
    int probe_backoff_next = 1;
    bool was_stuck = false;
    geo::Vec3 stuck_pos{};
  };
  std::vector<User> users;

  // Fault injection (all inert when the plan is empty).
  fault::FaultInjector injector;
  std::vector<fault::HealthMonitor> health;
  bool has_faults = false;
  fault::FaultReport freport;
  // Per-AP membership signature of the last tick, for counting multicast
  // group reformations under churn / AP faults.
  std::vector<std::vector<std::size_t>> prev_active;

  // Counters for SessionResult.
  double multicast_bits = 0.0;
  double unicast_bits = 0.0;
  double group_size_sum = 0.0;
  std::size_t group_count = 0;
  std::size_t custom_beam_uses = 0;
  std::size_t stock_beam_uses = 0;
  std::size_t blockage_forecasts = 0;
  std::size_t reflection_switches = 0;
  std::size_t dropped_ticks = 0;
  std::size_t outage_user_ticks = 0;
  std::size_t sls_sweeps = 0;
  std::size_t sls_outage_ticks = 0;
  double scheduled_airtime = 0.0;

  // Telemetry (null = disabled; every hook below is one pointer test).
  obs::Telemetry* tel = nullptr;
  obs::Counter* rss_evals = nullptr;

  static MultiApConfig multi_ap_config(const SessionConfig& c) {
    MultiApConfig mc;
    mc.ap_count = std::max<std::size_t>(c.ap_count, 1);
    return mc;
  }

  static vv::VideoConfig video_config(const SessionConfig& c) {
    vv::VideoConfig vc;
    vc.points_per_frame = c.master_points;
    vc.frame_count = c.video_frames;
    vc.fps = c.fps;
    vc.seed = c.seed ^ 0xc0ffee;
    return vc;
  }

  static vv::VideoStoreConfig store_config(const SessionConfig& c,
                                           common::ThreadPool* pool) {
    vv::VideoStoreConfig sc;
    // Scale the paper's 330K/430K/550K tier ladder to the configured
    // master point budget.
    const double scale = static_cast<double>(c.master_points) / 550'000.0;
    sc.tiers = {{"low", static_cast<std::size_t>(330'000 * scale)},
                {"med", static_cast<std::size_t>(430'000 * scale)},
                {"high", c.master_points}};
    sc.sample_frames = 1;
    sc.pool = pool;
    return sc;
  }

  static view::JointPredictorConfig joint_config(const SessionConfig& c,
                                                 const Testbed& tb,
                                                 common::ThreadPool* pool) {
    view::JointPredictorConfig jc;
    jc.user_occlusion = c.enable_user_occlusion;
    jc.visibility.intrinsics = view::device_intrinsics(c.device);
    // The joint predictor works in content-local coordinates; express the
    // (primary) AP there.
    jc.ap_position =
        tb.config().ap_position - tb.config().content_floor;
    jc.pool = pool;
    jc.metrics = c.telemetry != nullptr ? &c.telemetry->metrics() : nullptr;
    return jc;
  }

  explicit Impl(SessionConfig c)
      : config(c),
        coordinator(c.testbed, multi_ap_config(c)),
        generator(video_config(c)),
        grid(generator.content_bounds(), c.cell_size_m),
        pool(c.worker_threads),
        store(generator, grid, store_config(c, &pool)),
        joint(c.user_count, joint_config(c, coordinator.ap(0), &pool)),
        mitigator(coordinator.ap(0),
                  designers_placeholder(),  // replaced below
                  MitigatorConfig{}),
        injector(c.fault_plan, c.user_count,
                 std::max<std::size_t>(c.ap_count, 1), c.seed ^ 0xfa17ULL),
        health(c.user_count, fault::HealthMonitor(c.health)),
        has_faults(!c.fault_plan.empty()) {
    tel = config.telemetry;
    if (tel != nullptr)
      rss_evals = &tel->metrics().counter("mmwave.rss_evals");
    BeamDesignerConfig bd;
    bd.enable_custom_beams = c.enable_custom_beams;
    bd.metrics = tel != nullptr ? &tel->metrics() : nullptr;
    for (std::size_t a = 0; a < coordinator.ap_count(); ++a)
      designers.emplace_back(coordinator.ap(a), bd);
    mitigator = BlockageMitigator(coordinator.ap(0), designers.front(),
                                  MitigatorConfig{});

    occupancy.reserve(c.video_frames);
    const std::size_t top = store.tier_count() - 1;
    for (std::size_t f = 0; f < c.video_frames; ++f) {
      std::vector<std::uint32_t> occ(grid.cell_count());
      for (vv::CellId cell = 0; cell < grid.cell_count(); ++cell)
        occ[cell] = store.cell_points(f, top, cell);
      occupancy.push_back(std::move(occ));
    }

    Rng seeder(c.seed);
    const geo::Vec3 center = generator.content_center();
    for (std::size_t u = 0; u < c.user_count; ++u) {
      const double frac =
          c.user_count > 1
              ? static_cast<double>(u) / static_cast<double>(c.user_count - 1)
              : 0.5;
      // Audience arc centered on the far side of the content from the
      // first AP, matching the user study.
      const double home = 1.5707963267948966 +
                          (frac - 0.5) * c.audience_spread_rad +
                          seeder.uniform(-0.1, 0.1);
      Rng param_rng = seeder.fork();
      const auto params = trace::MobilityParams::for_device(
          c.device, param_rng, center, home);
      User user{trace::MobilityModel(params, seeder.next_u64()),
                mmwave::ShadowingProcess(c.testbed.shadowing_sigma_db,
                                         c.testbed.shadowing_coherence_s,
                                         seeder.next_u64()),
                sim::Player(c.fps), BandwidthPredictor(c.estimator),
                std::min(c.start_tier, store.tier_count() - 1),
                0, 0, 0, {}, 0.0, false};
      users.push_back(std::move(user));
    }
    if (tel != nullptr)
      for (User& user : users) user.player.bind_metrics(&tel->metrics());
  }

  // The mitigator needs a designer reference at construction; a static
  // placeholder satisfies the constructor before the real one is assigned.
  static const BeamDesigner& designers_placeholder() {
    static const TestbedConfig config{};
    static const Testbed testbed(config);
    static const BeamDesigner designer(testbed);
    return designer;
  }

  SessionResult run();
};

SessionResult Session::Impl::run() {
  const double dt = 1.0 / config.fps;
  const auto ticks = static_cast<std::size_t>(
      std::llround(config.duration_s * config.fps));
  const std::size_t n = config.user_count;
  const double horizon = config.prediction_horizon_s;
  const std::size_t horizon_ticks = static_cast<std::size_t>(
      std::llround(horizon * config.fps));

  sim::EventQueue queue;
  std::vector<double> backlog(coordinator.ap_count(), 0.0);
  std::vector<std::size_t> assignment(n, 0);
  // Beams each AP transmitted with last tick: the interference the other
  // APs' users see this tick (beams persist across a frame interval).
  std::vector<mmwave::Awv> concurrent_beams(coordinator.ap_count());

  const auto& mcs = coordinator.ap(0).mcs();

  if (tel != nullptr) {
    obs::SessionMeta meta;
    meta.users = static_cast<std::uint32_t>(n);
    meta.aps = static_cast<std::uint32_t>(coordinator.ap_count());
    meta.fps = config.fps;
    meta.duration_s = config.duration_s;
    meta.seed = config.seed;
    tel->begin_session(meta);
  }
  // Per-user event slots for the parallel link lanes, merged serially in
  // user order after each fan-out (same discipline as the counter tallies).
  std::vector<obs::EventBuffer> lane_events(tel != nullptr ? n : 0);
  std::vector<std::size_t> prev_tier(tel != nullptr ? n : 0);

  // Fault state; inert (and cost-free on the hot paths) with an empty plan.
  std::array<bool, 4> ap_up{};
  ap_up.fill(true);
  prev_active.assign(coordinator.ap_count(), {});
  const auto absent = [&](std::size_t u) {
    return has_faults && injector.user_absent(u);
  };
  std::vector<char> fault_fallback(n, 0);

  for (std::size_t tick = 0; tick < ticks; ++tick) {
    const double t = static_cast<double>(tick) * dt;
    const auto tick32 = static_cast<std::uint32_t>(tick);
    queue.run_until(t);
    const std::size_t frame = tick % config.video_frames;

    bool availability_changed = false;
    if (has_faults) {
      const std::size_t fired = injector.advance(t);
      freport.faults_injected += fired;
      if (tel != nullptr && fired > 0) {
        obs::Event e;
        e.tick = tick32;
        e.layer = obs::Layer::kFault;
        e.type = obs::EventType::kFaultInjected;
        e.value = static_cast<double>(fired);
        e.has_value = true;
        tel->record_event(e);
      }
      for (std::size_t a = 0; a < coordinator.ap_count(); ++a) {
        const bool up = !injector.ap_down(a);
        if (up != ap_up[a]) {
          availability_changed = true;
          if (tel != nullptr) {
            obs::Event e;
            e.tick = tick32;
            e.layer = obs::Layer::kFault;
            e.type = up ? obs::EventType::kApUp : obs::EventType::kApDown;
            e.ap = static_cast<std::uint32_t>(a);
            tel->record_event(e);
          }
        }
        ap_up[a] = up;
      }
      std::fill(fault_fallback.begin(), fault_fallback.end(), 0);
    }

    // ---- 1. observe poses, bodies, shadowing --------------------------
    obs::Span pose_span(tel, obs::Stage::kPose, tick32);
    std::vector<geo::Pose> local_poses(n);
    std::vector<geo::Vec3> room_pos(n);
    std::vector<geo::BodyObstacle> bodies(n);
    std::vector<double> shadow(n);
    const bool replaying = !config.replay_traces.empty();
    // Mobility and shadowing advance per-user RNG streams — independent
    // state, slot-indexed outputs, so users fan out across the pool.
    pool.parallel_for(n, [&](std::size_t u) {
      if (replaying) {
        const auto& poses = config.replay_traces[u].poses;
        local_poses[u] = poses[tick % poses.size()];
        (void)users[u].mobility.step(dt);  // keep RNG streams aligned
      } else {
        local_poses[u] = users[u].mobility.step(dt);
      }
      room_pos[u] = coordinator.ap(0).to_room(local_poses[u].position);
      bodies[u] = {room_pos[u], 0.25, 1.8};
      shadow[u] = users[u].shadowing.step(dt);
    });
    joint.observe(t, local_poses);
    pose_span.add_cost(n);
    pose_span.end();

    // ---- 2. joint prediction ------------------------------------------
    obs::Span predict_span(tel, obs::Stage::kPredict, tick32);
    const std::size_t target_frame =
        (tick + horizon_ticks) % config.video_frames;
    view::JointPrediction prediction =
        joint.predict(horizon, grid, occupancy[target_frame]);
    for (std::size_t u = 0; u < n; ++u) users[u].blockage_forecast = false;
    for (const auto& forecast : prediction.blockages) {
      if (forecast.user < n) users[forecast.user].blockage_forecast = true;
    }
    blockage_forecasts += prediction.blockages.size();
    predict_span.add_cost(n * grid.cell_count());
    predict_span.end();

    // ---- 3. AP assignment (refreshed every second, and immediately when
    // an AP goes dark or comes back) --------------------------------------
    if (coordinator.ap_count() > 1 &&
        (tick % 30 == 0 || availability_changed)) {
      obs::Span assign_span(tel, obs::Stage::kAssign, tick32);
      assign_span.add_cost(n * coordinator.ap_count());
      assignment = has_faults
                       ? coordinator.assign_users(
                             room_pos, std::span<const bool>(
                                           ap_up.data(),
                                           coordinator.ap_count()))
                       : coordinator.assign_users(room_pos);
    }

    // Multicast membership tracking: the set of users each AP can serve.
    // Under an active fault, any change to that set is a group reformation
    // (member churned, blacked out, or was re-homed after an AP outage).
    if (has_faults) {
      for (std::size_t a = 0; a < coordinator.ap_count(); ++a) {
        std::vector<std::size_t> sig;
        if (ap_up[a]) {
          for (std::size_t u = 0; u < n; ++u)
            if (assignment[u] == a && !absent(u)) sig.push_back(u);
        }
        if (tick > 0 && injector.any_active() && sig != prev_active[a])
          ++freport.group_reformations;
        prev_active[a] = std::move(sig);
      }
    }

    // ---- 4. per-user unicast link state --------------------------------
    obs::Span link_span(tel, obs::Stage::kLink, tick32);
    std::vector<double> unicast_rate(n, 0.0);
    std::vector<double> unicast_rss(n, -200.0);
    const mmwave::SlsProcedure sls;
    // Per-user counter deltas: parallel lanes touch only their own slot;
    // the shared tallies are reduced serially, in user order, below.
    struct LinkTally {
      std::size_t probe_retries = 0;
      std::size_t fallback_stock_beams = 0;
      std::size_t fallback_reflection_beams = 0;
      std::size_t sls_sweeps = 0;
      std::size_t sls_outage_ticks = 0;
      std::size_t reflection_switches = 0;
    };
    std::vector<LinkTally> link_tally(n);
    pool.parallel_for(n, [&](std::size_t u) {
      LinkTally& tally = link_tally[u];
      // Telemetry events land in this lane's own slot (merged serially in
      // user order below); counters are atomic and commutative.
      const auto push_event = [&](obs::Layer layer, obs::EventType type) {
        if (tel == nullptr) return;
        obs::Event e;
        e.tick = tick32;
        e.layer = layer;
        e.type = type;
        e.user = static_cast<std::uint32_t>(u);
        lane_events[u].push_back(e);
      };
      if (has_faults && (absent(u) || !ap_up[assignment[u]])) {
        // Churned out, or the serving AP is dark: no delivery path at all
        // this tick. The player rides its buffer until recovery.
        unicast_rss[u] = -200.0;
        unicast_rate[u] = 0.0;
        users[u].predictor.set_phy_state(0.0, false);
        return;
      }
      const Testbed& tb = coordinator.ap(assignment[u]);
      std::vector<geo::BodyObstacle> others;
      for (std::size_t v = 0; v < n; ++v)
        if (v != u && !absent(v)) others.push_back(bodies[v]);
      for (const geo::BodyObstacle& o : injector.obstacles())
        others.push_back(o);

      mmwave::Awv serving;
      if (has_faults && injector.sector_stuck(u)) {
        // Stuck sector: the radio keeps riding the sweep result frozen at
        // the moment the fault hit, however stale it gets.
        User& st = users[u];
        if (!st.was_stuck) {
          st.was_stuck = true;
          st.stuck_pos = room_pos[u];
        }
        serving = tb.codebook().beam(
            tb.codebook().best_beam_toward(tb.ap(), st.stuck_pos));
        fault_fallback[u] = 1;
      } else if (config.predictive_beam_tracking) {
        users[u].was_stuck = false;
        // The paper's proposal: steer from the (predicted) 6DoF position,
        // no beam search, no outage. A custom beam must be probed before
        // use, and under a probe fault that probe fails: retry with
        // exponential backoff, riding the fallback chain meanwhile.
        bool use_custom = true;
        if (has_faults) {
          User& st = users[u];
          if (st.probe_backoff_ticks > 0) {
            --st.probe_backoff_ticks;  // still backing off a failed probe
            use_custom = false;
          } else if (injector.probe_fail(u)) {
            ++tally.probe_retries;
            push_event(obs::Layer::kMmwave, obs::EventType::kProbeRetry);
            st.probe_backoff_ticks = st.probe_backoff_next;
            st.probe_backoff_next = std::min(st.probe_backoff_next * 2, 16);
            use_custom = false;
          } else {
            st.probe_backoff_next = 1;  // probe succeeded
          }
        }
        if (use_custom) {
          serving =
              designers[assignment[u]].design_unicast(room_pos[u], others)
                  .awv;
        } else {
          // Fallback chain, step 1: the stock sector beam needs no probe.
          serving = tb.codebook().beam(
              tb.codebook().best_beam_toward(tb.ap(), room_pos[u]));
          ++tally.fallback_stock_beams;
          push_event(obs::Layer::kMmwave, obs::EventType::kFallbackStockBeam);
          fault_fallback[u] = 1;
        }
      } else {
        // Reactive baseline: ride the last swept sector; re-train via SLS
        // when it goes stale, paying the 5-20 ms search outage.
        User& st = users[u];
        auto start_sweep = [&] {
          st.sls_remaining_ticks = std::max(
              1, static_cast<int>(std::ceil(
                     sls.outage_s(tb.codebook()) * config.fps)));
          ++tally.sls_sweeps;
          push_event(obs::Layer::kMmwave, obs::EventType::kSlsSweep);
        };
        if (st.sls_remaining_ticks > 0) {
          --st.sls_remaining_ticks;
          ++tally.sls_outage_ticks;
          if (st.sls_remaining_ticks == 0) {
            st.serving_awv = tb.codebook().beam(
                tb.codebook().best_beam_toward(tb.ap(), room_pos[u]));
          }
          unicast_rss[u] = -200.0;
          unicast_rate[u] = 0.0;
          users[u].predictor.set_phy_state(0.0, users[u].blockage_forecast);
          return;
        }
        if (st.serving_awv.empty()) {
          start_sweep();
          unicast_rss[u] = -200.0;
          unicast_rate[u] = 0.0;
          users[u].predictor.set_phy_state(0.0, users[u].blockage_forecast);
          return;
        }
        const double serving_rss =
            mmwave::rss_dbm(tb.ap(), st.serving_awv, tb.channel(),
                            room_pos[u], others, tb.budget(), tb.blockage(),
                            rss_evals);
        const double best_rss = mmwave::best_beam_rss_dbm(
            tb.ap(), tb.codebook(), tb.channel(), room_pos[u], others,
            tb.budget(), tb.blockage(), rss_evals);
        // Re-train when the sector went stale — or when the link fell
        // below the usable floor, which a reactive device cannot tell
        // apart from misalignment. Sweeping into a body blockage is
        // exactly the wasted 5-20 ms the paper's proactive design avoids.
        if (serving_rss < best_rss - config.sls_staleness_db ||
            serving_rss < -68.0)
          start_sweep();
        serving = st.serving_awv;  // stale or not, it carries this tick
      }

      double rss = mmwave::rss_dbm(tb.ap(), serving, tb.channel(),
                                   room_pos[u], others, tb.budget(),
                                   tb.blockage(), rss_evals) +
                   shadow[u];
      // Reflection override from an earlier mitigation action: use it when
      // it currently beats the (possibly blocked) line of sight.
      if (users[u].reflection_ticks > 0 &&
          !users[u].reflection_awv.empty()) {
        const double refl =
            mmwave::rss_dbm(tb.ap(), users[u].reflection_awv, tb.channel(),
                            room_pos[u], others, tb.budget(), tb.blockage(),
                            rss_evals) +
            shadow[u];
        if (refl > rss) {
          rss = refl;
          ++tally.reflection_switches;
          push_event(obs::Layer::kMmwave, obs::EventType::kReflectionSwitch);
        }
        --users[u].reflection_ticks;
      }
      if (has_faults && fault_fallback[u] != 0 && rss < -68.0) {
        // Fallback chain, step 2: the stock beam is unusable too (stale
        // sector, or a fault-spawned obstacle shadows the LoS) — try a
        // reflected path off the room surfaces.
        const GroupBeam refl_beam =
            designers[assignment[u]].design_reflection(room_pos[u], others);
        if (!refl_beam.awv.empty()) {
          const double refl_rss =
              mmwave::rss_dbm(tb.ap(), refl_beam.awv, tb.channel(),
                              room_pos[u], others, tb.budget(),
                              tb.blockage(), rss_evals) +
              shadow[u];
          if (refl_rss > rss) {
            rss = refl_rss;
            ++tally.fallback_reflection_beams;
            push_event(obs::Layer::kMmwave,
                       obs::EventType::kFallbackReflection);
          }
        }
      }
      unicast_rss[u] = rss;
      unicast_rate[u] = mcs.goodput_mbps(rss);
      if (coordinator.ap_count() > 1) {
        unicast_rate[u] *= coordinator.interference_factor(
            assignment[u], room_pos[u], rss, concurrent_beams);
      }
      users[u].predictor.set_phy_state(unicast_rate[u],
                                       users[u].blockage_forecast);
    });
    for (const LinkTally& tally : link_tally) {
      freport.probe_retries += tally.probe_retries;
      freport.fallback_stock_beams += tally.fallback_stock_beams;
      freport.fallback_reflection_beams += tally.fallback_reflection_beams;
      sls_sweeps += tally.sls_sweeps;
      sls_outage_ticks += tally.sls_outage_ticks;
      reflection_switches += tally.reflection_switches;
    }
    if (tel != nullptr) {
      for (std::size_t u = 0; u < n; ++u) {
        tel->append(lane_events[u]);
        lane_events[u].clear();
      }
    }
    link_span.add_cost(n * n);
    link_span.end();

    // ---- 5. rate adaptation --------------------------------------------
    obs::Span adapt_span(tel, obs::Stage::kAdapt, tick32);
    RateAdapterConfig rc;
    rc.policy = config.adaptation;
    rc.low_buffer_s = 0.75 / config.fps;   // under one frame buffered
    rc.high_buffer_s = 1.6 / config.fps;   // healthy: > 1.6 frames
    rc.metrics = tel != nullptr ? &tel->metrics() : nullptr;
    const RateAdapter adapter(rc);
    if (tel != nullptr)
      for (std::size_t u = 0; u < n; ++u) prev_tier[u] = users[u].tier;
    std::vector<std::size_t> ap_active(coordinator.ap_count(), 0);
    for (std::size_t u = 0; u < n; ++u)
      if (unicast_rate[u] > 0.0) ++ap_active[assignment[u]];
    // Per-user decisions over per-user state; the only shared tally
    // (fallback tier drops) goes through slots reduced in user order.
    std::vector<std::size_t> tier_drop_tally(n, 0);
    pool.parallel_for(n, [&](std::size_t u) {
      AdaptationInput in;
      in.buffer_s = users[u].player.buffer_s();
      // The air interface is shared: a user can only count on its share of
      // the frame interval (the central scheduler knows the user count —
      // exactly the paper's argument for server-side adaptation).
      const double share =
          static_cast<double>(std::max<std::size_t>(
              ap_active[assignment[u]], 1));
      in.predicted_mbps = users[u].predictor.predict_mbps() / share;
      in.tier_count = store.tier_count();
      in.current_tier = users[u].tier;
      in.blockage_forecast = users[u].blockage_forecast;
      for (std::size_t q = 0; q < store.tier_count() && q < 3; ++q) {
        in.demand_mbps[q] = bits_to_megabits(
            visible_bits(prediction.visibility[u], store, target_frame, q) *
            config.fps);
      }
      const AdaptationDecision decision = adapter.decide(in);
      users[u].tier = decision.tier;
      if (has_faults && fault_fallback[u] != 0) {
        // Fallback chain, step 3 (last resort): a user riding a fallback
        // beam whose link cannot carry its tier sheds quality immediately
        // instead of waiting for the adapter's smoothed estimate.
        while (users[u].tier > 0 &&
               in.demand_mbps[std::min<std::size_t>(users[u].tier, 2)] >
                   in.predicted_mbps) {
          --users[u].tier;
          ++tier_drop_tally[u];
        }
      }
      if (decision.prefetch && users[u].prefetch_credit == 0)
        users[u].prefetch_credit = 2;
    });
    for (std::size_t drops : tier_drop_tally)
      freport.fallback_tier_drops += drops;
    if (tel != nullptr) {
      for (std::size_t u = 0; u < n; ++u) {
        if (users[u].tier == prev_tier[u]) continue;
        obs::Event e;
        e.tick = tick32;
        e.layer = obs::Layer::kRate;
        e.type = obs::EventType::kTierChange;
        e.user = static_cast<std::uint32_t>(u);
        e.value = static_cast<double>(users[u].tier);
        e.has_value = true;
        tel->record_event(e);
      }
    }
    adapt_span.add_cost(n);
    adapt_span.end();

    // ---- 6. proactive blockage mitigation ------------------------------
    if (config.enable_blockage_mitigation) {
      obs::Span mitigate_span(tel, obs::Stage::kMitigate, tick32);
      mitigate_span.add_cost(prediction.blockages.size());
      const auto actions = mitigator.plan(prediction.blockages,
                                          prediction.poses, unicast_rss);
      for (const MitigationAction& action : actions) {
        User& u = users[action.user];
        u.prefetch_credit =
            std::max(u.prefetch_credit, action.extra_prefetch_frames);
        if (action.use_reflection_beam) {
          u.reflection_awv = action.reflection_awv;
          u.reflection_ticks = 15;  // half a second of override
        }
      }
    }

    // ---- 7. grouping + scheduling per AP --------------------------------
    std::vector<double> app_sample_mbps(n, 0.0);
    for (std::size_t a = 0; a < coordinator.ap_count(); ++a) {
      const auto ap32 = static_cast<std::uint32_t>(a);
      if (has_faults && !ap_up[a]) {
        // AP in outage: it schedules nothing and radiates nothing.
        concurrent_beams[a].clear();
        backlog[a] = std::max(0.0, backlog[a] - dt);
        continue;
      }
      // Users of this AP that still need this tick's frame.
      std::vector<std::size_t> members;  // user ids
      for (std::size_t u = 0; u < n; ++u) {
        if (assignment[u] != a) continue;
        if (absent(u)) continue;  // churned out mid-session
        if (users[u].frames_ahead > 0) {
          --users[u].frames_ahead;  // already prefetched
          continue;
        }
        if (unicast_rate[u] <= 0.0) {
          // Deep blockage outage: even the control PHY fails, nothing can
          // be delivered this tick. The player rides its buffer.
          ++outage_user_ticks;
          if (tel != nullptr) {
            obs::Event e;
            e.tick = tick32;
            e.layer = obs::Layer::kMmwave;
            e.type = obs::EventType::kOutage;
            e.user = static_cast<std::uint32_t>(u);
            e.ap = ap32;
            tel->record_event(e);
          }
          continue;
        }
        members.push_back(u);
      }
      if (members.empty()) continue;

      if (backlog[a] > config.max_backlog_s) {
        // Air queue over budget: skip this round entirely (frame drop);
        // the buffers and the adapter absorb it.
        ++dropped_ticks;
        if (tel != nullptr) {
          obs::Event e;
          e.tick = tick32;
          e.layer = obs::Layer::kMac;
          e.type = obs::EventType::kDroppedTick;
          e.ap = ap32;
          tel->record_event(e);
        }
        backlog[a] = std::max(0.0, backlog[a] - dt);
        continue;
      }

      obs::Span group_span(tel, obs::Stage::kGroup, tick32, ap32);
      group_span.add_cost(members.size() * members.size());
      std::vector<UserState> states(members.size());
      pool.parallel_for(members.size(), [&](std::size_t i) {
        const std::size_t u = members[i];
        UserState s;
        s.user = u;
        s.visibility = &prediction.visibility[u];
        s.total_bits =
            visible_bits(prediction.visibility[u], store, frame, users[u].tier);
        s.unicast_rate_mbps = unicast_rate[u];
        states[i] = s;
      });

      auto group_tier = [&](std::span<const std::size_t> idx) {
        std::size_t tier = 0;
        for (std::size_t i : idx) tier = std::max(tier, users[members[i]].tier);
        return tier;
      };
      auto overlap_bits_fn = [&](std::span<const std::size_t> idx) {
        std::vector<view::VisibilityMap> maps;
        maps.reserve(idx.size());
        for (std::size_t i : idx)
          maps.push_back(prediction.visibility[members[i]]);
        const view::VisibilityMap inter = view::intersection(maps);
        return visible_bits(inter, store, frame, group_tier(idx));
      };
      auto group_rate_fn = [&](std::span<const std::size_t> idx) {
        if (!config.enable_multicast) return 0.0;
        std::vector<geo::Vec3> positions;
        std::vector<geo::Vec3> other_positions;
        std::vector<geo::BodyObstacle> non_member_bodies;
        positions.reserve(idx.size());
        for (std::size_t i : idx) positions.push_back(room_pos[members[i]]);
        for (std::size_t u = 0; u < n; ++u) {
          if (absent(u)) continue;
          if (std::find_if(idx.begin(), idx.end(), [&](std::size_t i) {
                return members[i] == u;
              }) == idx.end()) {
            other_positions.push_back(room_pos[u]);
            non_member_bodies.push_back(bodies[u]);
          }
        }
        for (const geo::BodyObstacle& o : injector.obstacles())
          non_member_bodies.push_back(o);
        const GroupBeam beam = designers[a].design_multicast(
            positions, non_member_bodies, other_positions);
        // Worst member RSS including that member's shadowing.
        double min_rss = 1e9;
        for (std::size_t i : idx) {
          const std::size_t u = members[i];
          const Testbed& tb = coordinator.ap(a);
          std::vector<geo::BodyObstacle> others;
          for (std::size_t v = 0; v < n; ++v)
            if (v != u && !absent(v)) others.push_back(bodies[v]);
          for (const geo::BodyObstacle& o : injector.obstacles())
            others.push_back(o);
          const double rss =
              mmwave::rss_dbm(tb.ap(), beam.awv, tb.channel(), room_pos[u],
                              others, tb.budget(), tb.blockage()) +
              shadow[u];
          min_rss = std::min(min_rss, rss);
        }
        return mcs.goodput_mbps(min_rss);
      };

      GrouperConfig gc;
      gc.policy = config.enable_multicast ? config.grouping
                                          : GroupingPolicy::kUnicastOnly;
      gc.target_fps = config.fps;
      gc.min_iou = config.grouping_min_iou;
      const GroupingResult grouping =
          form_groups(states, gc, group_rate_fn, overlap_bits_fn);
      group_span.end();
      if (tel != nullptr) {
        for (std::size_t g = 0; g < grouping.groups.size(); ++g) {
          obs::Event e;
          e.tick = tick32;
          e.layer = obs::Layer::kGrouping;
          e.type = obs::EventType::kGroupFormed;
          e.group = static_cast<std::uint32_t>(g);
          e.ap = ap32;
          e.value = static_cast<double>(grouping.groups[g].size());
          e.has_value = true;
          tel->record_event(e);
        }
      }

      obs::Span beam_span(tel, obs::Stage::kBeam, tick32, ap32);
      // Beam bookkeeping for the result counters and for next tick's
      // cross-AP interference screening (largest group's beam represents
      // this AP's transmission; unicast fallback below).
      if (!grouping.groups.empty()) {
        const auto largest = std::max_element(
            grouping.groups.begin(), grouping.groups.end(),
            [](const auto& lhs, const auto& rhs) {
              return lhs.size() < rhs.size();
            });
        if (largest->size() == 1) {
          concurrent_beams[a] = coordinator.ap(a).ap().steer_at(
              room_pos[largest->front()]);
        }
      } else {
        concurrent_beams[a].clear();
      }
      // Multicast beam design is the heavy per-group step and each group's
      // beam is independent: design into per-group slots in parallel, then
      // apply counters and the AP's transmit beam serially in group order
      // (the last multicast group's beam represents this AP next tick,
      // exactly as in the serial loop).
      std::vector<GroupBeam> group_beams(grouping.groups.size());
      pool.parallel_for(grouping.groups.size(), [&](std::size_t g) {
        const auto& group = grouping.groups[g];
        if (group.size() < 2) return;
        std::vector<geo::Vec3> positions;
        std::vector<geo::BodyObstacle> non_member_bodies;
        for (std::size_t u : group) positions.push_back(room_pos[u]);
        for (std::size_t u = 0; u < n; ++u)
          if (!absent(u) &&
              std::find(group.begin(), group.end(), u) == group.end())
            non_member_bodies.push_back(bodies[u]);
        for (const geo::BodyObstacle& o : injector.obstacles())
          non_member_bodies.push_back(o);
        group_beams[g] =
            designers[a].design_multicast(positions, non_member_bodies, {});
      });
      for (std::size_t g = 0; g < grouping.groups.size(); ++g) {
        if (grouping.groups[g].size() < 2) continue;
        beam_span.add_cost(grouping.groups[g].size());
        GroupBeam& beam = group_beams[g];
        if (beam.custom) {
          ++custom_beam_uses;
        } else {
          ++stock_beam_uses;
        }
        concurrent_beams[a] = std::move(beam.awv);
      }
      beam_span.end();

      obs::Span schedule_span(tel, obs::Stage::kSchedule, tick32, ap32);
      if (tel != nullptr)
        mac::observe_schedule(grouping.schedule, config.mac_overheads,
                              tel->metrics());
      const double airtime =
          grouping.schedule.airtime_s(config.mac_overheads);
      scheduled_airtime += airtime;
      backlog[a] = std::max(0.0, backlog[a] - dt) + airtime;
      const double delivery_time = t + backlog[a];

      for (const mac::GroupPlan& plan : grouping.schedule.groups) {
        schedule_span.add_cost(plan.members.size());
        group_size_sum += static_cast<double>(plan.members.size());
        ++group_count;
        const bool is_multicast =
            plan.members.size() > 1 && plan.multicast_rate_mbps > 0.0 &&
            plan.group_overlap_bits > 0.0;
        for (const mac::UserDemand& demand : plan.members) {
          const std::size_t u = demand.user;
          const double bits = demand.total_bits;
          // Application-layer throughput sample: bits over the transfer
          // time this user's frame actually took — multicast sharing shows
          // up here as a higher effective rate.
          double transfer_s = 0.0;
          if (is_multicast) {
            transfer_s =
                tx_time_s(plan.group_overlap_bits, plan.multicast_rate_mbps);
            const double residual =
                std::max(bits - plan.group_overlap_bits, 0.0);
            if (demand.unicast_rate_mbps > 0.0)
              transfer_s += tx_time_s(residual, demand.unicast_rate_mbps);
          } else if (demand.unicast_rate_mbps > 0.0) {
            transfer_s = tx_time_s(bits, demand.unicast_rate_mbps);
          }
          if (transfer_s > 0.0)
            app_sample_mbps[u] = bits_to_megabits(bits / transfer_s);
          if (is_multicast) {
            multicast_bits += plan.group_overlap_bits;
            unicast_bits +=
                std::max(bits - plan.group_overlap_bits, 0.0);
          } else {
            unicast_bits += bits;
          }
          users[u].delivered_bits += bits;
          const std::size_t tier = users[u].tier;
          // The frame is playable only after the client decodes it.
          double visible_points = 0.0;
          for (vv::CellId cell = 0; cell < grid.cell_count(); ++cell) {
            const double lod = prediction.visibility[u].lod(cell);
            if (lod > 0.0)
              visible_points += lod * store.cell_points(frame, tier, cell);
          }
          const double decode_time =
              config.decode_points_per_second > 0.0
                  ? visible_points / config.decode_points_per_second
                  : 0.0;
          if (has_faults && injector.decoder_stalled(u)) {
            // The decoder is frozen: nothing completes before the stall
            // lifts (clamped to the session end for permanent stalls).
            const double resume = std::min(injector.decoder_stall_until(u),
                                           config.duration_s);
            users[u].decode_free_at =
                std::max(users[u].decode_free_at, resume);
          }
          users[u].decode_free_at =
              std::max(users[u].decode_free_at, delivery_time) + decode_time;
          users[u].m2p.add(users[u].decode_free_at - t);
          if (has_faults && injector.frame_lost(u, tick)) {
            // Corrupted on the air interface: the airtime was spent but
            // nothing playable arrives. Conceal by holding the last
            // decoded frame (bounded), else the frame is skipped.
            queue.schedule_at(users[u].decode_free_at, [this, u]() {
              if (users[u].player.conceal()) {
                ++freport.concealed_frames;
              } else {
                ++freport.skipped_frames;
              }
            });
          } else {
            queue.schedule_at(users[u].decode_free_at,
                              [this, u, frame, tier, bits]() {
              users[u].player.deliver({frame, tier, bits});
            });
          }
        }
      }

      // Prefetch: fetch one frame ahead per tick of credit, while the air
      // queue is healthy.
      for (std::size_t u : members) {
        if (users[u].prefetch_credit == 0 ||
            backlog[a] > config.max_backlog_s * 0.5)
          continue;
        --users[u].prefetch_credit;
        ++users[u].frames_ahead;
        if (tel != nullptr) {
          obs::Event e;
          e.tick = tick32;
          e.layer = obs::Layer::kSession;
          e.type = obs::EventType::kPrefetch;
          e.user = static_cast<std::uint32_t>(u);
          e.ap = ap32;
          tel->record_event(e);
        }
        const std::size_t next_frame = (frame + 1) % config.video_frames;
        const double bits = visible_bits(prediction.visibility[u], store,
                                         next_frame, users[u].tier);
        if (unicast_rate[u] <= 0.0) continue;
        const double extra_air = tx_time_s(bits, unicast_rate[u]);
        scheduled_airtime += extra_air;
        backlog[a] += extra_air;
        unicast_bits += bits;
        users[u].delivered_bits += bits;
        const double when = t + backlog[a];
        const std::size_t tier = users[u].tier;
        if (has_faults && injector.frame_lost(u, tick)) {
          queue.schedule_at(when, [this, u]() {
            if (users[u].player.conceal()) {
              ++freport.concealed_frames;
            } else {
              ++freport.skipped_frames;
            }
          });
        } else {
          queue.schedule_at(when, [this, u, next_frame, tier, bits]() {
            users[u].player.deliver({next_frame, tier, bits});
          });
        }
      }

      schedule_span.end();

      // Viewport-prediction quality: what fraction of the cells each member
      // actually needs (at its true pose) did the prediction-driven fetch
      // miss?
      // Ground-truth visibility per member is another full visibility
      // computation: fan out into (needed, missed) slots, then fold into
      // the per-user running sums serially, in member order.
      std::vector<std::pair<std::size_t, std::size_t>> miss_tally(
          members.size());
      pool.parallel_for(members.size(), [&](std::size_t i) {
        const std::size_t u = members[i];
        std::vector<geo::BodyObstacle> local_bodies;
        if (config.enable_user_occlusion) {
          for (std::size_t v = 0; v < n; ++v) {
            if (v == u) continue;
            local_bodies.push_back(
                {local_poses[v].position, 0.25, 1.8});
          }
        }
        const auto actual = view::compute_visibility(
            grid, occupancy[frame], local_poses[u],
            joint.config().visibility, local_bodies);
        std::size_t needed = 0;
        std::size_t missed = 0;
        for (vv::CellId cell = 0; cell < grid.cell_count(); ++cell) {
          if (!actual.visible(cell)) continue;
          ++needed;
          if (!prediction.visibility[u].visible(cell)) ++missed;
        }
        miss_tally[i] = {needed, missed};
      });
      for (std::size_t i = 0; i < members.size(); ++i) {
        const auto [needed, missed] = miss_tally[i];
        if (needed > 0) {
          users[members[i]].miss_sum += static_cast<double>(missed) /
                                        static_cast<double>(needed);
          ++users[members[i]].miss_count;
        }
      }
    }

    // ---- 8. app-layer observation + playback ---------------------------
    obs::Span player_span(tel, obs::Stage::kPlayer, tick32);
    player_span.add_cost(n);
    for (std::size_t u = 0; u < n; ++u) {
      if (app_sample_mbps[u] > 0.0)
        users[u].predictor.observe(app_sample_mbps[u], unicast_rate[u]);
      if (has_faults) {
        const bool is_absent = absent(u);
        const bool delivering = !is_absent && ap_up[assignment[u]] &&
                                unicast_rate[u] > 0.0;
        const bool impaired =
            injector.probe_fail(u) || injector.sector_stuck(u) ||
            injector.decoder_stalled(u) ||
            injector.frame_loss_probability(u) > 0.0;
        const fault::HealthState s =
            health[u].observe(t, delivering, unicast_rate[u], impaired);
        if (s == fault::HealthState::kDegraded) ++freport.degraded_user_ticks;
        if (s == fault::HealthState::kOutage) ++freport.unhealthy_user_ticks;
        if (!is_absent) {
          // Playback continues only while the user is in the room; stalls
          // during an active fault are attributed to it.
          const double stall_before = users[u].player.stall_time_s();
          users[u].player.advance(dt);
          if (injector.any_active())
            freport.fault_rebuffer_s +=
                users[u].player.stall_time_s() - stall_before;
        }
      } else {
        users[u].player.advance(dt);
      }
      if (config.tick_observer) {
        config.tick_observer({t, u, users[u].player.buffer_s(),
                              users[u].tier, unicast_rss[u],
                              unicast_rate[u],
                              users[u].blockage_forecast});
      }
    }
  }
  queue.run();

  SessionResult result;
  result.qoe.duration_s = config.duration_s;
  for (std::size_t u = 0; u < n; ++u) {
    sim::UserQoe q;
    q.user = u;
    q.displayed_fps = users[u].player.played_frames() / config.duration_s;
    q.stall_time_s = users[u].player.stall_time_s();
    q.stall_ratio = q.stall_time_s / config.duration_s;
    q.mean_quality_tier = users[u].player.mean_played_tier();
    q.quality_switches = users[u].player.quality_switches();
    q.mean_goodput_mbps =
        bits_to_megabits(users[u].delivered_bits / config.duration_s);
    q.viewport_miss_ratio =
        users[u].miss_count > 0
            ? users[u].miss_sum / static_cast<double>(users[u].miss_count)
            : 0.0;
    q.mean_m2p_latency_s = users[u].m2p.mean();
    q.max_m2p_latency_s = users[u].m2p.max();
    result.qoe.users.push_back(q);
  }
  const double total_bits = multicast_bits + unicast_bits;
  result.multicast_bit_share =
      total_bits > 0.0 ? multicast_bits / total_bits : 0.0;
  result.mean_group_size =
      group_count > 0 ? group_size_sum / static_cast<double>(group_count)
                      : 0.0;
  result.custom_beam_uses = custom_beam_uses;
  result.stock_beam_uses = stock_beam_uses;
  result.blockage_forecasts = blockage_forecasts;
  result.reflection_switches = reflection_switches;
  result.dropped_ticks = dropped_ticks;
  result.outage_user_ticks = outage_user_ticks;
  result.sls_sweeps = sls_sweeps;
  result.sls_outage_ticks = sls_outage_ticks;
  result.mean_airtime_utilization =
      config.duration_s > 0.0 ? scheduled_airtime / config.duration_s : 0.0;
  if (has_faults) {
    RunningStats ttr;
    for (const fault::HealthMonitor& monitor : health) {
      for (double episode : monitor.recovery_times()) ttr.add(episode);
      freport.health_transitions += monitor.transitions();
    }
    freport.recoveries = ttr.count();
    freport.mean_time_to_recover_s = ttr.mean();
    freport.max_time_to_recover_s = ttr.max();
  }
  result.faults = freport;
  return result;
}

Session::Session(SessionConfig config) {
  config.validate();
  impl_ = std::make_unique<Impl>(std::move(config));
}
Session::~Session() = default;
Session::Session(Session&&) noexcept = default;
Session& Session::operator=(Session&&) noexcept = default;

const SessionConfig& Session::config() const noexcept {
  return impl_->config;
}

SessionResult Session::run() { return impl_->run(); }

}  // namespace volcast::core
