#include "core/workload_bundle.h"

#include <bit>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/thread_pool.h"
#include "core/session.h"

namespace volcast::core {
namespace {

// FNV-1a64 over little-endian bytes — the same construction the checkpoint
// fingerprint uses, kept separate so the bundle hash is stable on its own.
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

std::atomic<std::uint64_t> g_builds{0};

vv::VideoConfig video_config(const WorkloadKey& key) {
  vv::VideoConfig vc;
  vc.points_per_frame = static_cast<std::size_t>(key.master_points);
  vc.frame_count = static_cast<std::size_t>(key.video_frames);
  vc.fps = key.fps;
  vc.seed = key.video_seed;
  return vc;
}

vv::VideoStoreConfig store_config(const WorkloadKey& key,
                                  common::ThreadPool* pool) {
  vv::VideoStoreConfig sc;
  // Scale the paper's 330K/430K/550K tier ladder to the configured
  // master point budget.
  const double scale = static_cast<double>(key.master_points) / 550'000.0;
  sc.tiers = {{"low", static_cast<std::size_t>(330'000 * scale)},
              {"med", static_cast<std::size_t>(430'000 * scale)},
              {"high", static_cast<std::size_t>(key.master_points)}};
  sc.sample_frames = 1;
  sc.pool = pool;
  return sc;
}

}  // namespace

WorkloadKey WorkloadKey::from(const SessionConfig& config) {
  WorkloadKey key;
  // content_seed decouples the video identity from the session seed so
  // fleet slots (seed + k) can stream the *same* content and share both
  // tiles and this bundle.
  key.video_seed = config.content_seed != 0 ? config.content_seed
                                            : (config.seed ^ 0xc0ffee);
  key.master_points = config.master_points;
  key.video_frames = config.video_frames;
  key.fps = config.fps;
  key.cell_size_m = config.cell_size_m;
  return key;
}

std::uint64_t WorkloadKey::hash() const noexcept {
  std::uint64_t h = kFnvOffset;
  h = fnv_u64(h, video_seed);
  h = fnv_u64(h, master_points);
  h = fnv_u64(h, video_frames);
  h = fnv_u64(h, std::bit_cast<std::uint64_t>(fps));
  h = fnv_u64(h, std::bit_cast<std::uint64_t>(cell_size_m));
  return h;
}

std::uint64_t workload_bundle_hash(const SessionConfig& config) {
  return WorkloadKey::from(config).hash();
}

void WorkloadBundle::mutate_guard(const char* what) const {
  if (frozen())
    throw std::logic_error(std::string("WorkloadBundle: ") + what +
                           " after freeze() — the bundle is immutable once "
                           "sessions can share it");
}

const void* WorkloadBundle::built_guard(const void* artifact,
                                        const char* what) const {
  if (artifact == nullptr)
    throw std::logic_error(std::string("WorkloadBundle: ") + what +
                           " accessed before the bundle was built");
  return artifact;
}

void WorkloadBundle::build_artifacts(std::size_t worker_threads) {
  mutate_guard("build_artifacts()");
  g_builds.fetch_add(1, std::memory_order_relaxed);

  auto generator = std::make_unique<vv::VideoGenerator>(video_config(key_));
  auto grid = std::make_unique<vv::CellGrid>(generator->content_bounds(),
                                             key_.cell_size_m);
  // A bundle-local pool for the store precompute: the size tables are
  // bit-identical at any thread count, so sharing them across sessions
  // with different worker_threads settings is sound.
  common::ThreadPool pool(worker_threads);
  auto store = std::make_unique<vv::VideoStore>(*generator, *grid,
                                               store_config(key_, &pool));

  // Per-video-frame occupancy at the top tier (drives visibility).
  std::vector<std::vector<std::uint32_t>> occupancy;
  occupancy.reserve(static_cast<std::size_t>(key_.video_frames));
  const std::size_t top = store->tier_count() - 1;
  for (std::size_t f = 0; f < key_.video_frames; ++f) {
    std::vector<std::uint32_t> occ(grid->cell_count());
    for (vv::CellId cell = 0; cell < grid->cell_count(); ++cell)
      occ[cell] = store->cell_points(f, top, cell);
    occupancy.push_back(std::move(occ));
  }

  generator_ = std::move(generator);
  grid_ = std::move(grid);
  store_ = std::move(store);
  occupancy_ = std::move(occupancy);
  has_occupancy_ = true;
}

void WorkloadBundle::install_video(std::unique_ptr<vv::VideoGenerator> generator,
                                   std::unique_ptr<vv::CellGrid> grid,
                                   std::unique_ptr<vv::VideoStore> store) {
  mutate_guard("install_video()");
  if (generator == nullptr || grid == nullptr || store == nullptr)
    throw std::invalid_argument(
        "WorkloadBundle::install_video: all artifacts must be non-null");
  generator_ = std::move(generator);
  grid_ = std::move(grid);
  store_ = std::move(store);
}

void WorkloadBundle::install_occupancy(
    std::vector<std::vector<std::uint32_t>> occupancy) {
  mutate_guard("install_occupancy()");
  occupancy_ = std::move(occupancy);
  has_occupancy_ = true;
}

void WorkloadBundle::freeze() {
  mutate_guard("freeze()");
  if (generator_ == nullptr || grid_ == nullptr || store_ == nullptr ||
      !has_occupancy_)
    throw std::logic_error(
        "WorkloadBundle::freeze: artifacts missing — build_artifacts() or "
        "install them before freezing");
  frozen_.store(true, std::memory_order_release);
}

std::shared_ptr<const WorkloadBundle> WorkloadBundle::build(
    const SessionConfig& config) {
  auto bundle = std::make_shared<WorkloadBundle>(WorkloadKey::from(config));
  bundle->build_artifacts(config.worker_threads);
  bundle->freeze();
  return bundle;
}

const vv::VideoGenerator& WorkloadBundle::generator() const {
  return *static_cast<const vv::VideoGenerator*>(
      built_guard(generator_.get(), "generator"));
}

const vv::CellGrid& WorkloadBundle::grid() const {
  return *static_cast<const vv::CellGrid*>(built_guard(grid_.get(), "grid"));
}

const vv::VideoStore& WorkloadBundle::store() const {
  return *static_cast<const vv::VideoStore*>(
      built_guard(store_.get(), "store"));
}

const std::vector<std::vector<std::uint32_t>>& WorkloadBundle::occupancy()
    const {
  if (!has_occupancy_)
    throw std::logic_error(
        "WorkloadBundle: occupancy accessed before the bundle was built");
  return occupancy_;
}

std::span<const std::uint32_t> WorkloadBundle::occupancy(
    std::size_t frame) const {
  return occupancy().at(frame);
}

std::uint64_t WorkloadBundle::builds_total() noexcept {
  return g_builds.load(std::memory_order_relaxed);
}

}  // namespace volcast::core
