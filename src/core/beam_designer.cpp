#include "core/beam_designer.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/units.h"
#include "mmwave/link.h"
#include "obs/metrics.h"

namespace volcast::core {

BeamDesigner::BeamDesigner(const Testbed& testbed, BeamDesignerConfig config)
    : testbed_(&testbed), config_(config) {
  if (config_.metrics != nullptr) {
    unicast_designs_ = &config_.metrics->counter("beam.unicast_designs");
    multicast_designs_ = &config_.metrics->counter("beam.multicast_designs");
    reflection_designs_ =
        &config_.metrics->counter("beam.reflection_designs");
    custom_selected_ = &config_.metrics->counter("beam.custom_selected");
    stock_selected_ = &config_.metrics->counter("beam.stock_selected");
    probe_rejects_ = &config_.metrics->counter("beam.probe_rejects");
    rss_evals_ = &config_.metrics->counter("mmwave.rss_evals");
  }
}

double BeamDesigner::rss(const mmwave::Awv& w, const geo::Vec3& position,
                         std::span<const geo::BodyObstacle> bodies) const {
  return mmwave::rss_dbm(testbed_->ap(), w, testbed_->channel(), position,
                         bodies, testbed_->budget(), testbed_->blockage(),
                         rss_evals_);
}

GroupBeam BeamDesigner::finish(
    mmwave::Awv awv, bool custom, std::span<const geo::Vec3> positions,
    std::span<const geo::BodyObstacle> bodies) const {
  GroupBeam out;
  out.awv = std::move(awv);
  out.custom = custom;
  out.min_member_rss_dbm = std::numeric_limits<double>::infinity();
  for (const geo::Vec3& p : positions)
    out.min_member_rss_dbm =
        std::min(out.min_member_rss_dbm, rss(out.awv, p, bodies));
  if (positions.empty()) out.min_member_rss_dbm = -200.0;
  out.multicast_rate_mbps =
      testbed_->mcs().goodput_mbps(out.min_member_rss_dbm);
  return out;
}

GroupBeam BeamDesigner::design_unicast(
    const geo::Vec3& position,
    std::span<const geo::BodyObstacle> bodies) const {
  const geo::Vec3 positions[] = {position};
  if (unicast_designs_ != nullptr) unicast_designs_->add();
  if (config_.enable_custom_beams) {
    // Predicted-position steering: full aperture, no beam search.
    if (custom_selected_ != nullptr) custom_selected_->add();
    return finish(testbed_->ap().steer_at(position), true, positions, bodies);
  }
  const std::size_t sector =
      testbed_->codebook().best_beam_toward(testbed_->ap(), position);
  if (stock_selected_ != nullptr) stock_selected_->add();
  return finish(testbed_->codebook().beam(sector), false, positions, bodies);
}

GroupBeam BeamDesigner::design_multicast(
    std::span<const geo::Vec3> positions,
    std::span<const geo::BodyObstacle> bodies,
    std::span<const geo::Vec3> others) const {
  if (positions.empty())
    throw std::invalid_argument("design_multicast: empty group");
  if (multicast_designs_ != nullptr) multicast_designs_->add();

  // Stock fallback: the best common sector of the default codebook.
  const std::size_t common =
      testbed_->codebook().best_common_beam(testbed_->ap(), positions);
  GroupBeam stock = finish(testbed_->codebook().beam(common), false,
                           positions, bodies);
  if (positions.size() == 1 || !config_.enable_custom_beams) {
    if (stock_selected_ != nullptr) stock_selected_->add();
    return stock;
  }

  // Fast path from the paper: if every member already has high RSS under
  // the stock common beam, keep it.
  if (stock.min_member_rss_dbm >= config_.default_beam_good_dbm) {
    if (stock_selected_ != nullptr) stock_selected_->add();
    return stock;
  }

  // Synthesize the multi-lobe beam from per-member steered beams weighted
  // by measured per-member RSS (linear).
  std::vector<mmwave::Awv> beams;
  std::vector<double> rss_mw;
  beams.reserve(positions.size());
  rss_mw.reserve(positions.size());
  for (const geo::Vec3& p : positions) {
    mmwave::Awv individual = testbed_->ap().steer_at(p);
    const double member_rss = rss(individual, p, bodies);
    beams.push_back(std::move(individual));
    rss_mw.push_back(std::max(dbm_to_mw(member_rss), 1e-15));
  }
  GroupBeam custom =
      finish(mmwave::combine_awvs(beams, rss_mw), true, positions, bodies);

  // Probe before use (Section 5): the custom beam must actually improve the
  // weakest member and must not blast a non-member.
  if (custom.min_member_rss_dbm <
      stock.min_member_rss_dbm + config_.min_improvement_db) {
    if (probe_rejects_ != nullptr) probe_rejects_->add();
    if (stock_selected_ != nullptr) stock_selected_->add();
    return stock;
  }
  for (const geo::Vec3& other : others) {
    if (rss(custom.awv, other, bodies) > config_.max_spill_dbm) {
      if (probe_rejects_ != nullptr) probe_rejects_->add();
      if (stock_selected_ != nullptr) stock_selected_->add();
      return stock;
    }
  }
  if (custom_selected_ != nullptr) custom_selected_->add();
  return custom;
}

GroupBeam BeamDesigner::design_reflection(
    const geo::Vec3& position,
    std::span<const geo::BodyObstacle> bodies) const {
  // Try a beam at every bounce point (ignoring bodies along the candidate
  // paths — the whole point is to route around them) and keep the one with
  // the best *achievable* RSS: the geometrically shortest bounce can sit
  // behind the array's element pattern and be useless.
  if (reflection_designs_ != nullptr) reflection_designs_->add();
  const auto paths = testbed_->channel().paths(
      testbed_->ap().pose().position, position, {}, testbed_->blockage());
  GroupBeam best{};
  const geo::Vec3 positions[] = {position};
  for (const mmwave::Path& path : paths) {
    if (path.line_of_sight) continue;
    GroupBeam candidate = finish(testbed_->ap().steer(path.tx_direction),
                                 true, positions, bodies);
    if (best.awv.empty() ||
        candidate.min_member_rss_dbm > best.min_member_rss_dbm)
      best = std::move(candidate);
  }
  return best;
}

}  // namespace volcast::core
