// End-to-end multi-user volumetric streaming session: the system the
// paper's research agenda adds up to.
//
// Every frame interval the server (edge) side:
//   1. observes all users' 6DoF poses and runs the joint viewport
//      predictor (occlusion-aware visibility + blockage forecasts),
//   2. adapts each user's quality tier from buffer depth and the
//      cross-layer bandwidth prediction,
//   3. forms multicast groups by viewport similarity under T_m(k) <= 1/F,
//   4. designs per-group beams (custom multi-lobe, probed, with stock
//      fallback) and per-user unicast beams,
//   5. transmits over the simulated mmWave channel (bodies, shadowing,
//      partial blockage), delivering frames into per-client players,
//   6. applies proactive blockage mitigation (prefetch / reflection beam).
//
// Every stage has an ablation switch so the benchmark harness can turn the
// paper's ideas off one at a time.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/bandwidth_predictor.h"
#include "core/grouping.h"
#include "core/rate_adapter.h"
#include "core/testbed.h"
#include "fault/fault_plan.h"
#include "fault/health.h"
#include "pointcloud/tile_cache.h"
#include "sim/qoe.h"
#include "trace/mobility.h"
#include "transport/wire.h"

namespace volcast::obs {
class Telemetry;
}  // namespace volcast::obs

namespace volcast::core {

class WorkloadBundle;  // core/workload_bundle.h

/// One row of the per-tick session timeline, delivered to the optional
/// tick observer: everything needed to plot a session (buffer dynamics,
/// link quality, quality-tier decisions) without recompiling.
struct TickSample {
  double t_s = 0.0;
  std::size_t user = 0;
  double buffer_s = 0.0;
  std::size_t tier = 0;
  double rss_dbm = 0.0;
  double rate_mbps = 0.0;
  bool blockage_forecast = false;
};

/// Full session configuration.
struct SessionConfig {
  std::size_t user_count = 4;
  trace::DeviceType device = trace::DeviceType::kHeadset;
  double duration_s = 10.0;
  double fps = 30.0;

  /// Content scale. The default is reduced from the paper's 550K points so
  /// unit tests and quick benches run in seconds; Table-1-class benches
  /// override it.
  std::size_t master_points = 120'000;
  std::size_t video_frames = 60;
  double cell_size_m = 0.5;
  std::size_t start_tier = 2;  // highest of the three paper tiers

  std::uint64_t seed = 1;
  /// Content identity override. 0 (the default) derives the video seed
  /// from `seed` as before, so every session streams its own video. A
  /// nonzero value pins the video (and thus every tile's content
  /// fingerprint) regardless of `seed` — this is what lets fleet slots
  /// (seed + k) share one tile cache: same content, different audiences.
  std::uint64_t content_seed = 0;
  double prediction_horizon_s = 0.1;
  /// Worker threads for the per-tick pipeline (per-user visibility, link
  /// evaluation, per-group beam design) and the video-store precompute.
  /// 0 = hardware concurrency, 1 = fully serial. The SessionResult is
  /// bit-identical for every value: parallel stages write per-index slots
  /// and all accumulation happens serially, in index order.
  std::size_t worker_threads = 0;
  /// Client decode throughput in points/s. The paper's 550K tier is "the
  /// highest point density that can be decompressed by Draco at 30 FPS" —
  /// i.e. ~16.5M points/s; decoded frames become playable only after their
  /// decode latency.
  double decode_points_per_second = 16.5e6;
  /// Angular spread of the audience arc around the content. The default
  /// (2 rad) is the user-study arc on the far side from the primary AP;
  /// 2*pi surrounds the content — the regime where multiple APs achieve
  /// spatial reuse (Section 5).
  double audience_spread_rad = 2.0;

  /// When non-empty, user poses replay these traces (content-local
  /// coordinates, looped) instead of the built-in mobility models; must
  /// contain at least `user_count` traces. This is how real captured 6DoF
  /// trajectories are fed into the system.
  std::vector<trace::Trace> replay_traces;

  // --- ablation switches -------------------------------------------------
  bool enable_multicast = true;
  GroupingPolicy grouping = GroupingPolicy::kGreedyIoU;
  double grouping_min_iou = 0.3;
  bool enable_custom_beams = true;
  /// Predictive beam tracking (the paper: "use the predicted 6DoF motion
  /// information at the server to select the individual beams ... without
  /// beam searching"). When false, unicast beams come from reactive
  /// sector-level sweeps: each sweep costs the 802.11ad SLS outage
  /// (5-20 ms) and the link rides a stale sector in between.
  bool predictive_beam_tracking = true;
  /// Reactive mode only: a re-sweep triggers when the serving sector falls
  /// this many dB below the best available sector.
  double sls_staleness_db = 6.0;
  bool enable_user_occlusion = true;
  bool enable_blockage_mitigation = true;
  AdaptationPolicy adaptation = AdaptationPolicy::kCrossLayer;
  BandwidthEstimator estimator = BandwidthEstimator::kCrossLayer;
  std::size_t ap_count = 1;

  /// Pipeline-slot policy overrides by name, applied on top of the
  /// defaults the ablation switches select: e.g. {"grouping",
  /// "pairs_only"} or {"beam", "reactive"}. Keys are the seven slot names
  /// ("prediction", "beam", "adaptation", "mitigation", "grouping",
  /// "tiling", "transport"); values are names registered in the stage policy
  /// registry (core/stages/registry.h). validate() rejects unknown slots
  /// and names. This is what `volcast_sim --policy grouping=greedy_iou`
  /// sets.
  std::map<std::string, std::string> policy_overrides;

  /// Called once per user per tick with the live session state; leave
  /// empty for no overhead. Used by volcast_sim --timeline to export CSVs.
  std::function<void(const TickSample&)> tick_observer;

  /// Optional cross-layer telemetry sink (see obs/telemetry.h): per-stage
  /// spans with deterministic logical costs, cross-layer events, and metric
  /// counters across viewport / mmwave / MAC / rate / player layers. Null
  /// (the default) disables telemetry entirely — the session then does one
  /// pointer test per stage and the SessionResult is bit-identical either
  /// way, at any worker_threads value. The sink must outlive the session
  /// and is not flushed here: call Telemetry::write_jsonl after run().
  obs::Telemetry* telemetry = nullptr;

  /// Optional shared tile cache for the "shared" tiling policy (null = the
  /// session builds its own). A fleet passes one cache to every slot so a
  /// tile encoded by any session is stitched by all the others. The cache
  /// must outlive the session. Tiles are pure functions of their key, so a
  /// racing shared cache affects wall clock only — never SessionResult
  /// (see core/stages/tiling_stage.h). Ignored when tiling is "off".
  vv::TileCache* tile_cache = nullptr;

  /// Optional shared workload bundle (core/workload_bundle.h): the
  /// immutable setup artifacts — generated video, cell grid, VideoStore
  /// codec tables, occupancy precompute — built once and read by every
  /// session that shares it. Null (the default) makes the session build a
  /// private bundle, which is the legacy per-session setup path,
  /// bit-identical in every result. validate() rejects a bundle that is
  /// not frozen or whose WorkloadKey does not match this config; run_fleet
  /// fills this in automatically when content_seed pins the content.
  std::shared_ptr<const WorkloadBundle> bundle;

  TestbedConfig testbed{};
  /// Per-burst MAC costs applied to every scheduled transmission.
  mac::MacOverheads mac_overheads{};
  /// Air-queue backlog beyond which a tick's fetches are dropped (frames
  /// skipped) instead of queued.
  double max_backlog_s = 0.25;

  /// Logical deadline for the whole run, in ticks (0 = unlimited). When
  /// the tick loop would start tick `tick_budget`, run() aborts with
  /// core::DeadlineExceeded instead — the fleet supervisor's deterministic
  /// stand-in for a wall-clock watchdog (see core/supervisor.h). Purely a
  /// budget: values at or above duration_s * fps change nothing.
  std::size_t tick_budget = 0;

  /// Packet-wire knobs (MTU, FEC group shape, NACK budget); consulted only
  /// when the transport policy is fec/nack/hybrid — the default "mac"
  /// policy never packetizes and ignores these entirely. See
  /// transport/wire.h.
  transport::TransportConfig transport{};

  /// Timed fault events injected into the run (empty = no faults; the
  /// session then behaves bit-identically to a build without the fault
  /// subsystem). See fault/fault_plan.h.
  fault::FaultPlan fault_plan;
  /// Thresholds of the per-user health state machine (only consulted when
  /// the plan is non-empty).
  fault::HealthConfig health{};

  /// Checks the whole configuration up front; throws std::invalid_argument
  /// with one clear message per violated rule. Session's constructor calls
  /// this, but callers building configs incrementally can call it early.
  void validate() const;
};

/// Session outcome: per-user QoE plus system-level counters.
struct SessionResult {
  sim::SessionQoe qoe;
  double multicast_bit_share = 0.0;   // fraction of bits delivered multicast
  double mean_group_size = 0.0;       // members per scheduled group
  std::size_t custom_beam_uses = 0;
  std::size_t stock_beam_uses = 0;
  std::size_t blockage_forecasts = 0;
  std::size_t reflection_switches = 0;
  std::size_t dropped_ticks = 0;      // fetch rounds skipped due to backlog
  std::size_t outage_user_ticks = 0;  // user-ticks lost to deep blockage
  std::size_t sls_sweeps = 0;         // reactive beam searches performed
  std::size_t sls_outage_ticks = 0;   // user-ticks spent sweeping (no data)
  double mean_airtime_utilization = 0.0;  // scheduled airtime / wall time
  /// Fault-injection recovery metrics (all zero with an empty FaultPlan
  /// and the default transport policy; wire policies also count frames the
  /// packet wire failed to recover as concealed/skipped here).
  fault::FaultReport faults;
  /// Packet-wire totals (all zero under the default goodput transport
  /// policy): packets sent/lost, FEC and NACK recoveries, deadline misses,
  /// residual loss after FEC, recovery-latency percentiles.
  transport::TransportReport transport;
  /// Tile assembly totals (all zero under the default "off" tiling policy).
  /// Deterministic first-touch accounting: under "shared", encoded_tiles
  /// counts distinct (frame, tier, cell) keys this session touched first,
  /// stitched_tiles the repeats served from cache — regardless of thread
  /// count or what other fleet slots did to the shared cache.
  vv::TileReport tiles;
};

/// Runs one configured session; construction precomputes the video store.
class Session {
 public:
  explicit Session(SessionConfig config);
  ~Session();
  Session(Session&&) noexcept;
  Session& operator=(Session&&) noexcept;

  [[nodiscard]] const SessionConfig& config() const noexcept;

  /// Simulates the whole session and returns the outcome. Deterministic
  /// for a given config. Single-shot: the run consumes the session's
  /// mutable state (players, predictors, RNG streams), so a second call
  /// throws std::logic_error — construct a fresh Session to re-run.
  [[nodiscard]] SessionResult run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace volcast::core
