// Multi-AP coordination (paper Section 5, "Multiple APs Coordination").
//
// Several 802.11ad APs on the room walls serve disjoint multicast groups
// concurrently. Directionality gives spatial reuse, but multi-lobe beams
// can leak into another AP's clients, so the coordinator (a) assigns each
// user to the AP with the best unblocked RSS and (b) screens concurrent
// transmissions for cross-AP interference, degrading the victim's MCS when
// the signal-to-interference ratio is poor.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/testbed.h"

namespace volcast::core {

/// Coordinator options.
struct MultiApConfig {
  std::size_t ap_count = 2;  // 1..4 (front, back, left, right walls)
  /// SIR below this means the victim falls back to the control PHY.
  double outage_sir_db = 3.0;
  /// SIR below this (but above outage) halves the victim's goodput.
  double degraded_sir_db = 10.0;
};

/// Owns one Testbed per AP (same room, different wall mounts).
class MultiApCoordinator {
 public:
  /// Builds `config.ap_count` testbeds derived from `base` (AP positions
  /// replaced by wall mounts). Throws std::invalid_argument for count 0 or
  /// > 4.
  MultiApCoordinator(const TestbedConfig& base, const MultiApConfig& config);

  [[nodiscard]] std::size_t ap_count() const noexcept { return aps_.size(); }
  [[nodiscard]] const Testbed& ap(std::size_t index) const {
    return *aps_.at(index);
  }
  [[nodiscard]] const MultiApConfig& config() const noexcept { return config_; }

  /// Assigns each user position to the AP with the strongest unicast RSS.
  [[nodiscard]] std::vector<std::size_t> assign_users(
      std::span<const geo::Vec3> positions) const;

  /// Availability-aware assignment: only APs with `available[a]` true are
  /// candidates (fault tolerance — an AP in outage serves nobody). When no
  /// AP is available every user keeps index 0; callers must treat a down
  /// AP's users as unserved.
  [[nodiscard]] std::vector<std::size_t> assign_users(
      std::span<const geo::Vec3> positions,
      std::span<const bool> available) const;

  /// Goodput multiplier in [0, 1] for a victim at `victim_pos` served by
  /// `victim_ap` with signal `victim_rss_dbm`, while every other AP
  /// transmits with the given beams (indexed by AP; empty AWVs are idle).
  [[nodiscard]] double interference_factor(
      std::size_t victim_ap, const geo::Vec3& victim_pos,
      double victim_rss_dbm,
      std::span<const mmwave::Awv> concurrent_beams) const;

 private:
  MultiApConfig config_;
  std::vector<std::unique_ptr<Testbed>> aps_;
};

}  // namespace volcast::core
