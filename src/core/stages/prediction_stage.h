// Pipeline stage 1: observe poses, bodies and shadowing, then run the
// joint (occlusion-aware) viewport predictor.
#pragma once

#include "core/stages/stage.h"

namespace volcast::core {

class PredictionStage final : public Stage {
 public:
  [[nodiscard]] StageKind kind() const noexcept override {
    return StageKind::kPrediction;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "joint";
  }
  void run(SessionState& state, TickContext& ctx) override;
};

}  // namespace volcast::core
