#include "core/stages/grouping_stage.h"

#include <algorithm>
#include <span>
#include <vector>

#include "core/stages/session_state.h"
#include "core/stages/tick_context.h"
#include "mmwave/link.h"
#include "viewport/similarity.h"

namespace volcast::core {

void GroupingStage::run(SessionState& state, TickContext& ctx) {
  const SessionConfig& config = state.config;
  const std::size_t n = state.user_count();
  const std::size_t frame = ctx.frame;
  const std::uint32_t tick32 = ctx.tick32;
  obs::Telemetry* tel = state.tel;
  auto& users = state.users;
  const auto absent = [&](std::size_t u) { return state.absent(u); };

  ctx.ap_plans.assign(state.coordinator.ap_count(), {});
  for (std::size_t a = 0; a < state.coordinator.ap_count(); ++a) {
    const auto ap32 = static_cast<std::uint32_t>(a);
    if (state.has_faults && !state.ap_up[a]) {
      // AP in outage: it schedules nothing and radiates nothing.
      state.concurrent_beams[a].clear();
      state.backlog[a] = std::max(0.0, state.backlog[a] - state.dt);
      continue;
    }
    // Users of this AP that still need this tick's frame.
    std::vector<std::size_t>& members = ctx.ap_plans[a].members;  // user ids
    for (std::size_t u = 0; u < n; ++u) {
      if (state.assignment[u] != a) continue;
      if (absent(u)) continue;  // churned out mid-session
      if (users[u].frames_ahead > 0) {
        --users[u].frames_ahead;  // already prefetched
        continue;
      }
      if (ctx.unicast_rate[u] <= 0.0) {
        // Deep blockage outage: even the control PHY fails, nothing can
        // be delivered this tick. The player rides its buffer.
        ++state.outage_user_ticks;
        if (tel != nullptr) {
          obs::Event e;
          e.tick = tick32;
          e.layer = obs::Layer::kMmwave;
          e.type = obs::EventType::kOutage;
          e.user = static_cast<std::uint32_t>(u);
          e.ap = ap32;
          tel->record_event(e);
        }
        continue;
      }
      members.push_back(u);
    }
    if (members.empty()) continue;

    if (state.backlog[a] > config.max_backlog_s) {
      // Air queue over budget: skip this round entirely (frame drop);
      // the buffers and the adapter absorb it.
      ++state.dropped_ticks;
      if (tel != nullptr) {
        obs::Event e;
        e.tick = tick32;
        e.layer = obs::Layer::kMac;
        e.type = obs::EventType::kDroppedTick;
        e.ap = ap32;
        tel->record_event(e);
      }
      state.backlog[a] = std::max(0.0, state.backlog[a] - state.dt);
      continue;
    }

    obs::Span group_span = ctx.span(obs::Stage::kGroup, ap32);
    group_span.add_cost(members.size() * members.size());
    std::vector<UserState> states(members.size());
    state.pool.parallel_for(members.size(), [&](std::size_t i) {
      const std::size_t u = members[i];
      UserState s;
      s.user = u;
      s.visibility = &ctx.prediction.visibility[u];
      s.total_bits = visible_bits(ctx.prediction.visibility[u], state.store,
                                  frame, users[u].tier);
      s.unicast_rate_mbps = ctx.unicast_rate[u];
      states[i] = s;
    });

    auto group_tier = [&](std::span<const std::size_t> idx) {
      std::size_t tier = 0;
      for (std::size_t i : idx) tier = std::max(tier, users[members[i]].tier);
      return tier;
    };
    auto overlap_bits_fn = [&](std::span<const std::size_t> idx) {
      std::vector<view::VisibilityMap> maps;
      maps.reserve(idx.size());
      for (std::size_t i : idx)
        maps.push_back(ctx.prediction.visibility[members[i]]);
      const view::VisibilityMap inter = view::intersection(maps);
      return visible_bits(inter, state.store, frame, group_tier(idx));
    };
    auto group_rate_fn = [&](std::span<const std::size_t> idx) {
      if (!config.enable_multicast) return 0.0;
      std::vector<geo::Vec3> positions;
      std::vector<geo::Vec3> other_positions;
      std::vector<geo::BodyObstacle> non_member_bodies;
      positions.reserve(idx.size());
      for (std::size_t i : idx) positions.push_back(ctx.room_pos[members[i]]);
      for (std::size_t u = 0; u < n; ++u) {
        if (absent(u)) continue;
        if (std::find_if(idx.begin(), idx.end(), [&](std::size_t i) {
              return members[i] == u;
            }) == idx.end()) {
          other_positions.push_back(ctx.room_pos[u]);
          non_member_bodies.push_back(ctx.bodies[u]);
        }
      }
      for (const geo::BodyObstacle& o : state.injector.obstacles())
        non_member_bodies.push_back(o);
      const GroupBeam beam = state.designers[a].design_multicast(
          positions, non_member_bodies, other_positions);
      // Worst member RSS including that member's shadowing.
      double min_rss = 1e9;
      for (std::size_t i : idx) {
        const std::size_t u = members[i];
        const Testbed& tb = state.coordinator.ap(a);
        std::vector<geo::BodyObstacle> others;
        for (std::size_t v = 0; v < n; ++v)
          if (v != u && !absent(v)) others.push_back(ctx.bodies[v]);
        for (const geo::BodyObstacle& o : state.injector.obstacles())
          others.push_back(o);
        const double rss =
            mmwave::rss_dbm(tb.ap(), beam.awv, tb.channel(), ctx.room_pos[u],
                            others, tb.budget(), tb.blockage()) +
            ctx.shadow[u];
        min_rss = std::min(min_rss, rss);
      }
      return state.mcs->goodput_mbps(min_rss);
    };

    GrouperConfig gc;
    gc.policy = policy_;
    gc.target_fps = config.fps;
    gc.min_iou = config.grouping_min_iou;
    GroupingResult& grouping = ctx.ap_plans[a].grouping;
    grouping = form_groups(states, gc, group_rate_fn, overlap_bits_fn);
    group_span.end();
    if (tel != nullptr) {
      for (std::size_t g = 0; g < grouping.groups.size(); ++g) {
        obs::Event e;
        e.tick = tick32;
        e.layer = obs::Layer::kGrouping;
        e.type = obs::EventType::kGroupFormed;
        e.group = static_cast<std::uint32_t>(g);
        e.ap = ap32;
        e.value = static_cast<double>(grouping.groups[g].size());
        e.has_value = true;
        tel->record_event(e);
      }
    }

    obs::Span beam_span = ctx.span(obs::Stage::kBeam, ap32);
    // Beam bookkeeping for the result counters and for next tick's
    // cross-AP interference screening (largest group's beam represents
    // this AP's transmission; unicast fallback below).
    if (!grouping.groups.empty()) {
      const auto largest = std::max_element(
          grouping.groups.begin(), grouping.groups.end(),
          [](const auto& lhs, const auto& rhs) {
            return lhs.size() < rhs.size();
          });
      if (largest->size() == 1) {
        state.concurrent_beams[a] = state.coordinator.ap(a).ap().steer_at(
            ctx.room_pos[largest->front()]);
      }
    } else {
      state.concurrent_beams[a].clear();
    }
    // Multicast beam design is the heavy per-group step and each group's
    // beam is independent: design into per-group slots in parallel, then
    // apply counters and the AP's transmit beam serially in group order
    // (the last multicast group's beam represents this AP next tick,
    // exactly as in the serial loop).
    std::vector<GroupBeam> group_beams(grouping.groups.size());
    state.pool.parallel_for(grouping.groups.size(), [&](std::size_t g) {
      const auto& group = grouping.groups[g];
      if (group.size() < 2) return;
      std::vector<geo::Vec3> positions;
      std::vector<geo::BodyObstacle> non_member_bodies;
      for (std::size_t u : group) positions.push_back(ctx.room_pos[u]);
      for (std::size_t u = 0; u < n; ++u)
        if (!absent(u) &&
            std::find(group.begin(), group.end(), u) == group.end())
          non_member_bodies.push_back(ctx.bodies[u]);
      for (const geo::BodyObstacle& o : state.injector.obstacles())
        non_member_bodies.push_back(o);
      group_beams[g] =
          state.designers[a].design_multicast(positions, non_member_bodies, {});
    });
    for (std::size_t g = 0; g < grouping.groups.size(); ++g) {
      if (grouping.groups[g].size() < 2) continue;
      beam_span.add_cost(grouping.groups[g].size());
      GroupBeam& beam = group_beams[g];
      if (beam.custom) {
        ++state.custom_beam_uses;
      } else {
        ++state.stock_beam_uses;
      }
      state.concurrent_beams[a] = std::move(beam.awv);
    }
    beam_span.end();

    ctx.ap_plans[a].active = true;
  }
}

}  // namespace volcast::core
