// Pipeline stage 4: proactive blockage mitigation (prefetch credit and
// reflected-path beam overrides planned from the blockage forecasts).
//
// Registered policies: "proactive" (the paper's design) and "off" (the
// ablation: forecasts are still produced but never acted on).
#pragma once

#include "core/stages/stage.h"

namespace volcast::core {

class MitigationStage final : public Stage {
 public:
  explicit MitigationStage(bool enabled) : enabled_(enabled) {}

  [[nodiscard]] StageKind kind() const noexcept override {
    return StageKind::kMitigation;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return enabled_ ? "proactive" : "off";
  }
  void run(SessionState& state, TickContext& ctx) override;

 private:
  bool enabled_;
};

}  // namespace volcast::core
