#include "core/stages/session_state.h"

#include <algorithm>
#include <cmath>

#include "common/units.h"

namespace volcast::core {

double visible_bits(const view::VisibilityMap& map, const vv::VideoStore& store,
                    std::size_t frame, std::size_t tier) {
  double bits = 0.0;
  for (vv::CellId c = 0; c < map.cell_count(); ++c) {
    const double lod = map.lod(c);
    if (lod > 0.0)
      bits += byte_bits(static_cast<double>(store.cell_bytes(frame, tier, c))) *
              lod;
  }
  return bits;
}

MultiApConfig SessionState::multi_ap_config(const SessionConfig& c) {
  MultiApConfig mc;
  mc.ap_count = std::max<std::size_t>(c.ap_count, 1);
  return mc;
}

view::JointPredictorConfig SessionState::joint_config(
    const SessionConfig& c, const Testbed& tb, common::ThreadPool* pool) {
  view::JointPredictorConfig jc;
  jc.user_occlusion = c.enable_user_occlusion;
  jc.visibility.intrinsics = view::device_intrinsics(c.device);
  // The joint predictor works in content-local coordinates; express the
  // (primary) AP there.
  jc.ap_position = tb.config().ap_position - tb.config().content_floor;
  jc.pool = pool;
  jc.metrics = c.telemetry != nullptr ? &c.telemetry->metrics() : nullptr;
  return jc;
}

const BeamDesigner& SessionState::designers_placeholder() {
  static const TestbedConfig config{};
  static const Testbed testbed(config);
  static const BeamDesigner designer(testbed);
  return designer;
}

SessionState::SessionState(SessionConfig c)
    : config(c),
      coordinator(c.testbed, multi_ap_config(c)),
      // A shared bundle (validated against this config by
      // SessionConfig::validate) short-circuits the whole setup path; the
      // legacy per-session path is simply a private bundle.
      bundle(c.bundle != nullptr ? c.bundle : WorkloadBundle::build(c)),
      pool(c.worker_threads),
      generator(bundle->generator()),
      grid(bundle->grid()),
      store(bundle->store()),
      occupancy(bundle->occupancy()),
      joint(c.user_count, joint_config(c, coordinator.ap(0), &pool)),
      mitigator(coordinator.ap(0),
                designers_placeholder(),  // replaced below
                MitigatorConfig{}),
      injector(c.fault_plan, c.user_count,
               std::max<std::size_t>(c.ap_count, 1), c.seed ^ 0xfa17ULL),
      health(c.user_count, fault::HealthMonitor(c.health)),
      has_faults(!c.fault_plan.empty()) {
  tel = config.telemetry;
  video_seed = bundle->key().video_seed;
  if (tel != nullptr)
    rss_evals = &tel->metrics().counter("mmwave.rss_evals");
  BeamDesignerConfig bd;
  bd.enable_custom_beams = c.enable_custom_beams;
  bd.metrics = tel != nullptr ? &tel->metrics() : nullptr;
  for (std::size_t a = 0; a < coordinator.ap_count(); ++a)
    designers.emplace_back(coordinator.ap(a), bd);
  mitigator = BlockageMitigator(coordinator.ap(0), designers.front(),
                                MitigatorConfig{});

  Rng seeder(c.seed);
  const geo::Vec3 center = generator.content_center();
  for (std::size_t u = 0; u < c.user_count; ++u) {
    const double frac =
        c.user_count > 1
            ? static_cast<double>(u) / static_cast<double>(c.user_count - 1)
            : 0.5;
    // Audience arc centered on the far side of the content from the
    // first AP, matching the user study.
    const double home = 1.5707963267948966 +
                        (frac - 0.5) * c.audience_spread_rad +
                        seeder.uniform(-0.1, 0.1);
    Rng param_rng = seeder.fork();
    const auto params =
        trace::MobilityParams::for_device(c.device, param_rng, center, home);
    User user{trace::MobilityModel(params, seeder.next_u64()),
              mmwave::ShadowingProcess(c.testbed.shadowing_sigma_db,
                                       c.testbed.shadowing_coherence_s,
                                       seeder.next_u64()),
              sim::Player(c.fps),
              BandwidthPredictor(c.estimator),
              std::min(c.start_tier, store.tier_count() - 1)};
    users.push_back(std::move(user));
  }
  if (tel != nullptr)
    for (User& user : users) user.player.bind_metrics(&tel->metrics());
}

void SessionState::begin_run() {
  const std::size_t n = config.user_count;
  dt = 1.0 / config.fps;
  horizon_ticks = static_cast<std::size_t>(
      std::llround(config.prediction_horizon_s * config.fps));
  mcs = &coordinator.ap(0).mcs();
  backlog.assign(coordinator.ap_count(), 0.0);
  assignment.assign(n, 0);
  concurrent_beams.assign(coordinator.ap_count(), {});
  lane_events.assign(tel != nullptr ? n : 0, {});
  prev_tier.assign(tel != nullptr ? n : 0, 0);
  ap_up.fill(true);
  prev_active.assign(coordinator.ap_count(), {});
  fault_fallback.assign(n, 0);

  if (tel != nullptr) {
    obs::SessionMeta meta;
    meta.users = static_cast<std::uint32_t>(n);
    meta.aps = static_cast<std::uint32_t>(coordinator.ap_count());
    meta.fps = config.fps;
    meta.duration_s = config.duration_s;
    meta.seed = config.seed;
    tel->begin_session(meta);
  }
}

}  // namespace volcast::core
