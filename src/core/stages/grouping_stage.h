// Pipeline stage 5: per-AP member selection, multicast group formation
// and group beam design.
//
// The grouping policy (the paper's greedy IoU merge, the pairs-capped and
// exhaustive variants, or the unicast-only baseline) is fixed at pipeline
// assembly: when multicast is ablated off, the registry selects
// "unicast_only" regardless of SessionConfig::grouping.
#pragma once

#include "core/grouping.h"
#include "core/stages/stage.h"

namespace volcast::core {

class GroupingStage final : public Stage {
 public:
  explicit GroupingStage(GroupingPolicy policy) : policy_(policy) {}

  [[nodiscard]] StageKind kind() const noexcept override {
    return StageKind::kGrouping;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    switch (policy_) {
      case GroupingPolicy::kUnicastOnly: return "unicast_only";
      case GroupingPolicy::kGreedyIoU: return "greedy_iou";
      case GroupingPolicy::kPairsOnly: return "pairs_only";
      case GroupingPolicy::kExhaustive: return "exhaustive";
    }
    return "?";
  }
  void run(SessionState& state, TickContext& ctx) override;

 private:
  GroupingPolicy policy_;
};

}  // namespace volcast::core
