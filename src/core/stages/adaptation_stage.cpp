#include "core/stages/adaptation_stage.h"

#include <algorithm>
#include <vector>

#include "common/units.h"
#include "core/stages/session_state.h"
#include "core/stages/tick_context.h"

namespace volcast::core {

void AdaptationStage::run(SessionState& state, TickContext& ctx) {
  const SessionConfig& config = state.config;
  const std::size_t n = state.user_count();
  obs::Telemetry* tel = state.tel;
  auto& users = state.users;

  obs::Span adapt_span = ctx.span(obs::Stage::kAdapt);
  RateAdapterConfig rc;
  rc.policy = policy_;
  rc.low_buffer_s = 0.75 / config.fps;  // under one frame buffered
  rc.high_buffer_s = 1.6 / config.fps;  // healthy: > 1.6 frames
  rc.metrics = tel != nullptr ? &tel->metrics() : nullptr;
  const RateAdapter adapter(rc);
  if (tel != nullptr)
    for (std::size_t u = 0; u < n; ++u) state.prev_tier[u] = users[u].tier;
  std::vector<std::size_t> ap_active(state.coordinator.ap_count(), 0);
  for (std::size_t u = 0; u < n; ++u)
    if (ctx.unicast_rate[u] > 0.0) ++ap_active[state.assignment[u]];
  // Per-user decisions over per-user state; the only shared tally
  // (fallback tier drops) goes through slots reduced in user order.
  std::vector<std::size_t> tier_drop_tally(n, 0);
  state.pool.parallel_for(n, [&](std::size_t u) {
    AdaptationInput in;
    in.buffer_s = users[u].player.buffer_s();
    // The air interface is shared: a user can only count on its share of
    // the frame interval (the central scheduler knows the user count —
    // exactly the paper's argument for server-side adaptation).
    const double share = static_cast<double>(
        std::max<std::size_t>(ap_active[state.assignment[u]], 1));
    in.predicted_mbps = users[u].predictor.predict_mbps() / share;
    in.tier_count = state.store.tier_count();
    in.current_tier = users[u].tier;
    in.blockage_forecast = users[u].blockage_forecast;
    // Cross-layer wire feedback: residual loss after FEC, written by the
    // transport stage's serial delivery loop last tick (0 under the
    // goodput policy, so this is a no-op there).
    in.residual_loss = users[u].receiver.residual_loss;
    for (std::size_t q = 0; q < state.store.tier_count() && q < 3; ++q) {
      in.demand_mbps[q] = bits_to_megabits(
          visible_bits(ctx.prediction.visibility[u], state.store,
                       ctx.target_frame, q) *
          config.fps);
    }
    const AdaptationDecision decision = adapter.decide(in);
    users[u].tier = decision.tier;
    if (state.has_faults && state.fault_fallback[u] != 0) {
      // Fallback chain, step 3 (last resort): a user riding a fallback
      // beam whose link cannot carry its tier sheds quality immediately
      // instead of waiting for the adapter's smoothed estimate.
      while (users[u].tier > 0 &&
             in.demand_mbps[std::min<std::size_t>(users[u].tier, 2)] >
                 in.predicted_mbps) {
        --users[u].tier;
        ++tier_drop_tally[u];
      }
    }
    if (decision.prefetch && users[u].prefetch_credit == 0)
      users[u].prefetch_credit = 2;
  });
  for (std::size_t drops : tier_drop_tally)
    state.freport.fallback_tier_drops += drops;
  if (tel != nullptr) {
    for (std::size_t u = 0; u < n; ++u) {
      if (users[u].tier == state.prev_tier[u]) continue;
      obs::Event e;
      e.tick = ctx.tick32;
      e.layer = obs::Layer::kRate;
      e.type = obs::EventType::kTierChange;
      e.user = static_cast<std::uint32_t>(u);
      e.value = static_cast<double>(users[u].tier);
      e.has_value = true;
      tel->record_event(e);
    }
  }
  adapt_span.add_cost(n);
  adapt_span.end();
}

}  // namespace volcast::core
