#include "core/stages/mitigation_stage.h"

#include <algorithm>

#include "core/blockage_mitigator.h"
#include "core/stages/session_state.h"
#include "core/stages/tick_context.h"

namespace volcast::core {

void MitigationStage::run(SessionState& state, TickContext& ctx) {
  if (!enabled_) return;
  obs::Span mitigate_span = ctx.span(obs::Stage::kMitigate);
  mitigate_span.add_cost(ctx.prediction.blockages.size());
  const auto actions = state.mitigator.plan(
      ctx.prediction.blockages, ctx.prediction.poses, ctx.unicast_rss);
  for (const MitigationAction& action : actions) {
    SessionState::User& u = state.users[action.user];
    u.prefetch_credit = std::max(u.prefetch_credit, action.extra_prefetch_frames);
    if (action.use_reflection_beam) {
      u.reflection_awv = action.reflection_awv;
      u.reflection_ticks = 15;  // half a second of override
    }
  }
}

}  // namespace volcast::core
