// Pipeline stage 3: per-user quality-tier adaptation.
//
// Registered policies ("cross_layer", "buffer", "none") map onto the
// RateAdapter's AdaptationPolicy; the adapter itself is rebuilt per tick
// (it is a cheap value type and its config carries the live metrics sink).
#pragma once

#include "core/rate_adapter.h"
#include "core/stages/stage.h"

namespace volcast::core {

class AdaptationStage final : public Stage {
 public:
  explicit AdaptationStage(AdaptationPolicy policy) : policy_(policy) {}

  [[nodiscard]] StageKind kind() const noexcept override {
    return StageKind::kAdaptation;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    switch (policy_) {
      case AdaptationPolicy::kNone: return "none";
      case AdaptationPolicy::kBufferOnly: return "buffer";
      case AdaptationPolicy::kCrossLayer: return "cross_layer";
    }
    return "?";
  }
  void run(SessionState& state, TickContext& ctx) override;

 private:
  AdaptationPolicy policy_;
};

}  // namespace volcast::core
