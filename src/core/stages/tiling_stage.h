// Tiling stage: assembles each scheduled user's frame from per-cell tiles.
//
// Sits between Grouping (which fixes the tick's members and their tiers)
// and Transport (which puts the assembled bitstreams on the air). For every
// member of every scheduled group it walks the user's visible cells at its
// granted tier and produces one tile per cell:
//
//  * policy "off"  — the legacy encode-per-user model: every tile a user
//    needs counts as an encode for that user. Pure accounting (no payloads
//    are materialized), so the default pipeline keeps its cost profile.
//  * policy "shared" — encode-once, serve-many: the first touch of a
//    (content, frame, tier, cell) key this session *encodes* the tile
//    (into the shared TileCache when one is attached, else into a
//    session-local cache); every repeat — another user in the group, a
//    later tick of the same looped frame — *stitches* the cached bitstream
//    at ~1/4 the cost.
//
// Determinism: the encoded/stitched split comes from a session-local
// first-touch bitmap, never from cache probe outcomes, so SessionResult is
// bit-identical at any worker_threads / parallel_sessions value even when
// a fleet-shared cache is racing across slots (the cache changes wall
// clock only — a hit skips the encode work, a miss or eviction redoes it).
//
// Only main-frame deliveries are assembled here; prefetch pulls the *next*
// frame, which becomes this stage's main frame one tick later, so its
// tiles are counted exactly once.
#pragma once

#include "core/stages/stage.h"

namespace volcast::core {

class TilingStage : public Stage {
 public:
  explicit TilingStage(bool shared) : shared_(shared) {}

  [[nodiscard]] StageKind kind() const noexcept override {
    return StageKind::kTiling;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return shared_ ? "shared" : "off";
  }

  void run(SessionState& state, TickContext& ctx) override;

 private:
  const bool shared_;
};

}  // namespace volcast::core
