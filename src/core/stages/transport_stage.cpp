#include "core/stages/transport_stage.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/units.h"
#include "core/stages/session_state.h"
#include "core/stages/tick_context.h"
#include "mmwave/link.h"
#include "mmwave/per.h"

namespace volcast::core {

void TransportStage::run(SessionState& state, TickContext& ctx) {
  const SessionConfig& config = state.config;
  const std::size_t n = state.user_count();
  const std::size_t frame = ctx.frame;
  const std::size_t tick = ctx.tick;
  const std::uint32_t tick32 = ctx.tick32;
  const double t = ctx.t;
  const double dt = state.dt;
  obs::Telemetry* tel = state.tel;
  auto& users = state.users;
  const auto absent = [&](std::size_t u) { return state.absent(u); };
  const bool use_wire = policy_ != transport::TransportPolicy::kGoodput;
  const mmwave::PerModel per_model{};

  ctx.app_sample_mbps.assign(n, 0.0);
  auto& app_sample_mbps = ctx.app_sample_mbps;
  for (std::size_t a = 0; a < state.coordinator.ap_count(); ++a) {
    if (!ctx.ap_plans[a].active) continue;
    const auto ap32 = static_cast<std::uint32_t>(a);
    const std::vector<std::size_t>& members = ctx.ap_plans[a].members;
    const GroupingResult& grouping = ctx.ap_plans[a].grouping;

    obs::Span schedule_span = ctx.span(obs::Stage::kSchedule, ap32);
    if (tel != nullptr)
      mac::observe_schedule(grouping.schedule, config.mac_overheads,
                            tel->metrics());
    const double airtime = grouping.schedule.airtime_s(config.mac_overheads);
    state.scheduled_airtime += airtime;
    state.backlog[a] = std::max(0.0, state.backlog[a] - dt) + airtime;
    const double delivery_time = t + state.backlog[a];

    for (const mac::GroupPlan& plan : grouping.schedule.groups) {
      schedule_span.add_cost(plan.members.size());
      state.group_size_sum += static_cast<double>(plan.members.size());
      ++state.group_count;
      const bool is_multicast = plan.members.size() > 1 &&
                                plan.multicast_rate_mbps > 0.0 &&
                                plan.group_overlap_bits > 0.0;
      for (const mac::UserDemand& demand : plan.members) {
        const std::size_t u = demand.user;
        const double bits = demand.total_bits;
        // Application-layer throughput sample: bits over the transfer
        // time this user's frame actually took — multicast sharing shows
        // up here as a higher effective rate.
        double transfer_s = 0.0;
        if (is_multicast) {
          transfer_s =
              tx_time_s(plan.group_overlap_bits, plan.multicast_rate_mbps);
          const double residual =
              std::max(bits - plan.group_overlap_bits, 0.0);
          if (demand.unicast_rate_mbps > 0.0)
            transfer_s += tx_time_s(residual, demand.unicast_rate_mbps);
        } else if (demand.unicast_rate_mbps > 0.0) {
          transfer_s = tx_time_s(bits, demand.unicast_rate_mbps);
        }
        if (transfer_s > 0.0)
          app_sample_mbps[u] = bits_to_megabits(bits / transfer_s);
        if (is_multicast) {
          state.multicast_bits += plan.group_overlap_bits;
          state.unicast_bits += std::max(bits - plan.group_overlap_bits, 0.0);
        } else {
          state.unicast_bits += bits;
        }
        users[u].delivered_bits += bits;
        const std::size_t tier = users[u].tier;
        // Packet wire: the scheduled bits become a packet train with
        // per-user loss from the shared transmission, FEC repair, and
        // NACK rounds racing the frame deadline. Runs inside this serial
        // member loop, so the per-user receiver state folds in slot order
        // at any worker_threads value.
        transport::TrainResult train;
        bool wire_ok = true;
        if (use_wire && bits > 0.0) {
          transport::TrainParams tp;
          tp.frame_bits = bits;
          tp.per = per_model.multicast_residual_per(
              *state.mcs, ctx.unicast_rss[u], config.transport.target_per);
          tp.burst_loss =
              state.has_faults ? state.injector.burst_loss_probability(u)
                               : 0.0;
          tp.deadline_ms =
              std::max(0.0, 1000.0 / config.fps - transfer_s * 1000.0);
          tp.seed = config.seed;
          tp.user = u;
          tp.tick = tick32;
          tp.frame = static_cast<std::uint16_t>(frame);
          train = transport::transmit_train(config.transport, policy_, tp,
                                            users[u].receiver);
          state.twire.add(train);
          if (train.recovery_ms > 0.0)
            state.recovery_samples.push_back(train.recovery_ms);
          wire_ok = train.frame_ok();
          // Parity, retransmissions and headers are real bits on the air:
          // they consume airtime on top of the scheduled frame.
          const double wire_rate = demand.unicast_rate_mbps > 0.0
                                       ? demand.unicast_rate_mbps
                                       : plan.multicast_rate_mbps;
          if (wire_rate > 0.0) {
            const double extra_air = tx_time_s(
                train.parity_bits + train.retransmit_bits + train.header_bits,
                wire_rate);
            state.scheduled_airtime += extra_air;
            state.backlog[a] += extra_air;
          }
          if (tel != nullptr) {
            obs::MetricRegistry& metrics = tel->metrics();
            metrics.counter("transport.packets_sent")
                .add(train.data_packets);
            metrics.counter("transport.parity_packets")
                .add(train.parity_packets);
            metrics.counter("transport.packets_lost").add(train.lost_packets);
            metrics.counter("transport.retransmitted_packets")
                .add(train.retransmitted_packets);
            metrics.counter("transport.fec_recovered_tiles")
                .add(train.fec_recovered_tiles);
            metrics.counter("transport.deadline_missed_tiles")
                .add(train.failed_tiles);
            const auto u32 = static_cast<std::uint32_t>(u);
            const auto record = [&](obs::EventType type, double value) {
              obs::Event e;
              e.tick = tick32;
              e.layer = obs::Layer::kMac;
              e.type = type;
              e.user = u32;
              e.ap = ap32;
              e.value = value;
              e.has_value = true;
              tel->record_event(e);
            };
            if (train.fec_recovered_tiles > 0)
              record(obs::EventType::kFecRecovery,
                     static_cast<double>(train.fec_recovered_tiles));
            if (train.retransmitted_packets > 0)
              record(obs::EventType::kRetransmit,
                     static_cast<double>(train.retransmitted_packets));
            if (train.failed_tiles > 0)
              record(obs::EventType::kDeadlineMiss,
                     static_cast<double>(train.failed_tiles));
          }
        }
        // The frame is playable only after the client decodes it.
        double visible_points = 0.0;
        for (vv::CellId cell = 0; cell < state.grid.cell_count(); ++cell) {
          const double lod = ctx.prediction.visibility[u].lod(cell);
          if (lod > 0.0)
            visible_points += lod * state.store.cell_points(frame, tier, cell);
        }
        const double decode_time =
            config.decode_points_per_second > 0.0
                ? visible_points / config.decode_points_per_second
                : 0.0;
        if (state.has_faults && state.injector.decoder_stalled(u)) {
          // The decoder is frozen: nothing completes before the stall
          // lifts (clamped to the session end for permanent stalls).
          const double resume = std::min(state.injector.decoder_stall_until(u),
                                         config.duration_s);
          users[u].decode_free_at = std::max(users[u].decode_free_at, resume);
        }
        // NACK recovery delays when the frame is complete at the receiver.
        const double user_delivery = delivery_time + train.recovery_ms * 1e-3;
        users[u].decode_free_at =
            std::max(users[u].decode_free_at, user_delivery) + decode_time;
        users[u].m2p.add(users[u].decode_free_at - t);
        if ((state.has_faults && state.injector.frame_lost(u, tick)) ||
            !wire_ok) {
          // Corrupted on the air interface — or tiles the wire could not
          // recover before the frame deadline: the airtime was spent but
          // nothing playable arrives. Conceal by holding the last
          // decoded frame (bounded), else the frame is skipped.
          state.queue.schedule_at(users[u].decode_free_at, [&state, u]() {
            if (state.users[u].player.conceal()) {
              ++state.freport.concealed_frames;
            } else {
              ++state.freport.skipped_frames;
            }
          });
        } else {
          state.queue.schedule_at(users[u].decode_free_at,
                                  [&state, u, frame, tier, bits]() {
            state.users[u].player.deliver({frame, tier, bits});
          });
        }
      }
    }

    // Prefetch: fetch one frame ahead per tick of credit, while the air
    // queue is healthy.
    for (std::size_t u : members) {
      if (users[u].prefetch_credit == 0 ||
          state.backlog[a] > config.max_backlog_s * 0.5)
        continue;
      --users[u].prefetch_credit;
      ++users[u].frames_ahead;
      if (tel != nullptr) {
        obs::Event e;
        e.tick = tick32;
        e.layer = obs::Layer::kSession;
        e.type = obs::EventType::kPrefetch;
        e.user = static_cast<std::uint32_t>(u);
        e.ap = ap32;
        tel->record_event(e);
      }
      const std::size_t next_frame = (frame + 1) % config.video_frames;
      const double bits = visible_bits(ctx.prediction.visibility[u],
                                       state.store, next_frame, users[u].tier);
      if (ctx.unicast_rate[u] <= 0.0) continue;
      const double extra_air = tx_time_s(bits, ctx.unicast_rate[u]);
      state.scheduled_airtime += extra_air;
      state.backlog[a] += extra_air;
      state.unicast_bits += bits;
      users[u].delivered_bits += bits;
      const double when = t + state.backlog[a];
      const std::size_t tier = users[u].tier;
      if (state.has_faults && state.injector.frame_lost(u, tick)) {
        state.queue.schedule_at(when, [&state, u]() {
          if (state.users[u].player.conceal()) {
            ++state.freport.concealed_frames;
          } else {
            ++state.freport.skipped_frames;
          }
        });
      } else {
        state.queue.schedule_at(when, [&state, u, next_frame, tier, bits]() {
          state.users[u].player.deliver({next_frame, tier, bits});
        });
      }
    }

    schedule_span.end();

    // Viewport-prediction quality: what fraction of the cells each member
    // actually needs (at its true pose) did the prediction-driven fetch
    // miss?
    // Ground-truth visibility per member is another full visibility
    // computation: fan out into (needed, missed) slots, then fold into
    // the per-user running sums serially, in member order.
    std::vector<std::pair<std::size_t, std::size_t>> miss_tally(
        members.size());
    state.pool.parallel_for(members.size(), [&](std::size_t i) {
      const std::size_t u = members[i];
      std::vector<geo::BodyObstacle> local_bodies;
      if (config.enable_user_occlusion) {
        for (std::size_t v = 0; v < n; ++v) {
          if (v == u) continue;
          local_bodies.push_back({ctx.local_poses[v].position, 0.25, 1.8});
        }
      }
      const auto actual = view::compute_visibility(
          state.grid, state.occupancy[frame], ctx.local_poses[u],
          state.joint.config().visibility, local_bodies);
      std::size_t needed = 0;
      std::size_t missed = 0;
      for (vv::CellId cell = 0; cell < state.grid.cell_count(); ++cell) {
        if (!actual.visible(cell)) continue;
        ++needed;
        if (!ctx.prediction.visibility[u].visible(cell)) ++missed;
      }
      miss_tally[i] = {needed, missed};
    });
    for (std::size_t i = 0; i < members.size(); ++i) {
      const auto [needed, missed] = miss_tally[i];
      if (needed > 0) {
        users[members[i]].miss_sum +=
            static_cast<double>(missed) / static_cast<double>(needed);
        ++users[members[i]].miss_count;
      }
    }
  }

  // ---- app-layer observation + playback ---------------------------------
  obs::Span player_span = ctx.span(obs::Stage::kPlayer);
  player_span.add_cost(n);
  for (std::size_t u = 0; u < n; ++u) {
    if (app_sample_mbps[u] > 0.0)
      users[u].predictor.observe(app_sample_mbps[u], ctx.unicast_rate[u]);
    if (state.has_faults) {
      const bool is_absent = absent(u);
      const bool delivering = !is_absent && state.ap_up[state.assignment[u]] &&
                              ctx.unicast_rate[u] > 0.0;
      const bool impaired = state.injector.probe_fail(u) ||
                            state.injector.sector_stuck(u) ||
                            state.injector.decoder_stalled(u) ||
                            state.injector.frame_loss_probability(u) > 0.0;
      const fault::HealthState s = state.health[u].observe(
          t, delivering, ctx.unicast_rate[u], impaired);
      if (s == fault::HealthState::kDegraded)
        ++state.freport.degraded_user_ticks;
      if (s == fault::HealthState::kOutage)
        ++state.freport.unhealthy_user_ticks;
      if (!is_absent) {
        // Playback continues only while the user is in the room; stalls
        // during an active fault are attributed to it.
        const double stall_before = users[u].player.stall_time_s();
        users[u].player.advance(dt);
        if (state.injector.any_active())
          state.freport.fault_rebuffer_s +=
              users[u].player.stall_time_s() - stall_before;
      }
    } else {
      users[u].player.advance(dt);
    }
    if (config.tick_observer) {
      config.tick_observer({t, u, users[u].player.buffer_s(), users[u].tier,
                            ctx.unicast_rss[u], ctx.unicast_rate[u],
                            users[u].blockage_forecast});
    }
  }
}

}  // namespace volcast::core
