// Pipeline stage 6: MAC scheduling and delivery. Turns each AP's group
// plan into airtime, queues frame deliveries through the decode model,
// spends prefetch credit, accounts viewport-prediction misses against
// ground truth, then advances every client player.
//
// With a wire policy (fec / nack / hybrid) each scheduled (user, frame)
// additionally runs through the packet wire (transport/wire.h): the frame
// is packetized, packets are lost per-user from the shared multicast
// transmission, and FEC / NACK recovery races the frame deadline. Frames
// whose tiles miss the deadline degrade through the player's
// loss-concealment path. The default "mac" policy (kGoodput) bypasses the
// wire entirely and is bit-identical to the pre-wire stage.
#pragma once

#include "core/stages/stage.h"
#include "transport/wire.h"

namespace volcast::core {

class TransportStage final : public Stage {
 public:
  explicit TransportStage(
      transport::TransportPolicy policy = transport::TransportPolicy::kGoodput)
      : policy_(policy) {}

  [[nodiscard]] StageKind kind() const noexcept override {
    return StageKind::kTransport;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    // The legacy goodput model keeps its historical registry name.
    return policy_ == transport::TransportPolicy::kGoodput
               ? "mac"
               : transport::to_string(policy_);
  }
  void run(SessionState& state, TickContext& ctx) override;

 private:
  transport::TransportPolicy policy_;
};

}  // namespace volcast::core
