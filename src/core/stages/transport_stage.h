// Pipeline stage 6: MAC scheduling and delivery. Turns each AP's group
// plan into airtime, queues frame deliveries through the decode model,
// spends prefetch credit, accounts viewport-prediction misses against
// ground truth, then advances every client player.
#pragma once

#include "core/stages/stage.h"

namespace volcast::core {

class TransportStage final : public Stage {
 public:
  [[nodiscard]] StageKind kind() const noexcept override {
    return StageKind::kTransport;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "mac";
  }
  void run(SessionState& state, TickContext& ctx) override;
};

}  // namespace volcast::core
