#include "core/stages/prediction_stage.h"

#include "core/stages/session_state.h"
#include "core/stages/tick_context.h"

namespace volcast::core {

void PredictionStage::run(SessionState& state, TickContext& ctx) {
  const SessionConfig& config = state.config;
  const std::size_t n = state.user_count();
  const double dt = state.dt;

  // ---- observe poses, bodies, shadowing -------------------------------
  obs::Span pose_span = ctx.span(obs::Stage::kPose);
  ctx.local_poses.resize(n);
  ctx.room_pos.resize(n);
  ctx.bodies.resize(n);
  ctx.shadow.resize(n);
  const bool replaying = !config.replay_traces.empty();
  // Mobility and shadowing advance per-user RNG streams — independent
  // state, slot-indexed outputs, so users fan out across the pool.
  state.pool.parallel_for(n, [&](std::size_t u) {
    if (replaying) {
      const auto& poses = config.replay_traces[u].poses;
      ctx.local_poses[u] = poses[ctx.tick % poses.size()];
      (void)state.users[u].mobility.step(dt);  // keep RNG streams aligned
    } else {
      ctx.local_poses[u] = state.users[u].mobility.step(dt);
    }
    ctx.room_pos[u] = state.coordinator.ap(0).to_room(ctx.local_poses[u].position);
    ctx.bodies[u] = {ctx.room_pos[u], 0.25, 1.8};
    ctx.shadow[u] = state.users[u].shadowing.step(dt);
  });
  state.joint.observe(ctx.t, ctx.local_poses);
  pose_span.add_cost(n);
  pose_span.end();

  // ---- joint prediction -----------------------------------------------
  obs::Span predict_span = ctx.span(obs::Stage::kPredict);
  ctx.target_frame = (ctx.tick + state.horizon_ticks) % config.video_frames;
  ctx.prediction = state.joint.predict(config.prediction_horizon_s, state.grid,
                                       state.occupancy[ctx.target_frame]);
  for (std::size_t u = 0; u < n; ++u) state.users[u].blockage_forecast = false;
  for (const auto& forecast : ctx.prediction.blockages) {
    if (forecast.user < n) state.users[forecast.user].blockage_forecast = true;
  }
  state.blockage_forecasts += ctx.prediction.blockages.size();
  predict_span.add_cost(n * state.grid.cell_count());
  predict_span.end();
}

}  // namespace volcast::core
