#include "core/stages/beam_stage.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "core/stages/session_state.h"
#include "core/stages/tick_context.h"
#include "mmwave/link.h"
#include "mmwave/sls.h"

namespace volcast::core {

void BeamStage::run(SessionState& state, TickContext& ctx) {
  const SessionConfig& config = state.config;
  const std::size_t n = state.user_count();
  const std::uint32_t tick32 = ctx.tick32;
  obs::Telemetry* tel = state.tel;
  auto& users = state.users;
  auto& assignment = state.assignment;
  const auto& ap_up = state.ap_up;
  const auto absent = [&](std::size_t u) { return state.absent(u); };

  // ---- AP assignment (refreshed every second, and immediately when an AP
  // goes dark or comes back) ----------------------------------------------
  if (state.coordinator.ap_count() > 1 &&
      (ctx.tick % 30 == 0 || ctx.availability_changed)) {
    obs::Span assign_span = ctx.span(obs::Stage::kAssign);
    assign_span.add_cost(n * state.coordinator.ap_count());
    assignment = state.has_faults
                     ? state.coordinator.assign_users(
                           ctx.room_pos,
                           std::span<const bool>(ap_up.data(),
                                                 state.coordinator.ap_count()))
                     : state.coordinator.assign_users(ctx.room_pos);
  }

  // Multicast membership tracking: the set of users each AP can serve.
  // Under an active fault, any change to that set is a group reformation
  // (member churned, blacked out, or was re-homed after an AP outage).
  if (state.has_faults) {
    for (std::size_t a = 0; a < state.coordinator.ap_count(); ++a) {
      std::vector<std::size_t> sig;
      if (ap_up[a]) {
        for (std::size_t u = 0; u < n; ++u)
          if (assignment[u] == a && !absent(u)) sig.push_back(u);
      }
      if (ctx.tick > 0 && state.injector.any_active() &&
          sig != state.prev_active[a])
        ++state.freport.group_reformations;
      state.prev_active[a] = std::move(sig);
    }
  }

  // ---- per-user unicast link state --------------------------------------
  obs::Span link_span = ctx.span(obs::Stage::kLink);
  ctx.unicast_rate.assign(n, 0.0);
  ctx.unicast_rss.assign(n, -200.0);
  auto& unicast_rate = ctx.unicast_rate;
  auto& unicast_rss = ctx.unicast_rss;
  const mmwave::SlsProcedure sls;
  // Per-user counter deltas: parallel lanes touch only their own slot;
  // the shared tallies are reduced serially, in user order, below.
  struct LinkTally {
    std::size_t probe_retries = 0;
    std::size_t fallback_stock_beams = 0;
    std::size_t fallback_reflection_beams = 0;
    std::size_t sls_sweeps = 0;
    std::size_t sls_outage_ticks = 0;
    std::size_t reflection_switches = 0;
  };
  std::vector<LinkTally> link_tally(n);
  state.pool.parallel_for(n, [&](std::size_t u) {
    LinkTally& tally = link_tally[u];
    // Telemetry events land in this lane's own slot (merged serially in
    // user order below); counters are atomic and commutative.
    const auto push_event = [&](obs::Layer layer, obs::EventType type) {
      if (tel == nullptr) return;
      obs::Event e;
      e.tick = tick32;
      e.layer = layer;
      e.type = type;
      e.user = static_cast<std::uint32_t>(u);
      state.lane_events[u].push_back(e);
    };
    if (state.has_faults && (absent(u) || !ap_up[assignment[u]])) {
      // Churned out, or the serving AP is dark: no delivery path at all
      // this tick. The player rides its buffer until recovery.
      unicast_rss[u] = -200.0;
      unicast_rate[u] = 0.0;
      users[u].predictor.set_phy_state(0.0, false);
      return;
    }
    const Testbed& tb = state.coordinator.ap(assignment[u]);
    std::vector<geo::BodyObstacle> others;
    for (std::size_t v = 0; v < n; ++v)
      if (v != u && !absent(v)) others.push_back(ctx.bodies[v]);
    for (const geo::BodyObstacle& o : state.injector.obstacles())
      others.push_back(o);

    mmwave::Awv serving;
    if (state.has_faults && state.injector.sector_stuck(u)) {
      // Stuck sector: the radio keeps riding the sweep result frozen at
      // the moment the fault hit, however stale it gets.
      SessionState::User& st = users[u];
      if (!st.was_stuck) {
        st.was_stuck = true;
        st.stuck_pos = ctx.room_pos[u];
      }
      serving = tb.codebook().beam(
          tb.codebook().best_beam_toward(tb.ap(), st.stuck_pos));
      state.fault_fallback[u] = 1;
    } else if (predictive_) {
      users[u].was_stuck = false;
      // The paper's proposal: steer from the (predicted) 6DoF position,
      // no beam search, no outage. A custom beam must be probed before
      // use, and under a probe fault that probe fails: retry with
      // exponential backoff, riding the fallback chain meanwhile.
      bool use_custom = true;
      if (state.has_faults) {
        SessionState::User& st = users[u];
        if (st.probe_backoff_ticks > 0) {
          --st.probe_backoff_ticks;  // still backing off a failed probe
          use_custom = false;
        } else if (state.injector.probe_fail(u)) {
          ++tally.probe_retries;
          push_event(obs::Layer::kMmwave, obs::EventType::kProbeRetry);
          st.probe_backoff_ticks = st.probe_backoff_next;
          st.probe_backoff_next = std::min(st.probe_backoff_next * 2, 16);
          use_custom = false;
        } else {
          st.probe_backoff_next = 1;  // probe succeeded
        }
      }
      if (use_custom) {
        serving = state.designers[assignment[u]]
                      .design_unicast(ctx.room_pos[u], others)
                      .awv;
      } else {
        // Fallback chain, step 1: the stock sector beam needs no probe.
        serving = tb.codebook().beam(
            tb.codebook().best_beam_toward(tb.ap(), ctx.room_pos[u]));
        ++tally.fallback_stock_beams;
        push_event(obs::Layer::kMmwave, obs::EventType::kFallbackStockBeam);
        state.fault_fallback[u] = 1;
      }
    } else {
      // Reactive baseline: ride the last swept sector; re-train via SLS
      // when it goes stale, paying the 5-20 ms search outage.
      SessionState::User& st = users[u];
      auto start_sweep = [&] {
        st.sls_remaining_ticks = std::max(
            1, static_cast<int>(
                   std::ceil(sls.outage_s(tb.codebook()) * config.fps)));
        ++tally.sls_sweeps;
        push_event(obs::Layer::kMmwave, obs::EventType::kSlsSweep);
      };
      if (st.sls_remaining_ticks > 0) {
        --st.sls_remaining_ticks;
        ++tally.sls_outage_ticks;
        if (st.sls_remaining_ticks == 0) {
          st.serving_awv = tb.codebook().beam(
              tb.codebook().best_beam_toward(tb.ap(), ctx.room_pos[u]));
        }
        unicast_rss[u] = -200.0;
        unicast_rate[u] = 0.0;
        users[u].predictor.set_phy_state(0.0, users[u].blockage_forecast);
        return;
      }
      if (st.serving_awv.empty()) {
        start_sweep();
        unicast_rss[u] = -200.0;
        unicast_rate[u] = 0.0;
        users[u].predictor.set_phy_state(0.0, users[u].blockage_forecast);
        return;
      }
      const double serving_rss =
          mmwave::rss_dbm(tb.ap(), st.serving_awv, tb.channel(),
                          ctx.room_pos[u], others, tb.budget(), tb.blockage(),
                          state.rss_evals);
      const double best_rss = mmwave::best_beam_rss_dbm(
          tb.ap(), tb.codebook(), tb.channel(), ctx.room_pos[u], others,
          tb.budget(), tb.blockage(), state.rss_evals);
      // Re-train when the sector went stale — or when the link fell
      // below the usable floor, which a reactive device cannot tell
      // apart from misalignment. Sweeping into a body blockage is
      // exactly the wasted 5-20 ms the paper's proactive design avoids.
      if (serving_rss < best_rss - config.sls_staleness_db ||
          serving_rss < -68.0)
        start_sweep();
      serving = st.serving_awv;  // stale or not, it carries this tick
    }

    double rss = mmwave::rss_dbm(tb.ap(), serving, tb.channel(),
                                 ctx.room_pos[u], others, tb.budget(),
                                 tb.blockage(), state.rss_evals) +
                 ctx.shadow[u];
    // Reflection override from an earlier mitigation action: use it when
    // it currently beats the (possibly blocked) line of sight.
    if (users[u].reflection_ticks > 0 && !users[u].reflection_awv.empty()) {
      const double refl =
          mmwave::rss_dbm(tb.ap(), users[u].reflection_awv, tb.channel(),
                          ctx.room_pos[u], others, tb.budget(), tb.blockage(),
                          state.rss_evals) +
          ctx.shadow[u];
      if (refl > rss) {
        rss = refl;
        ++tally.reflection_switches;
        push_event(obs::Layer::kMmwave, obs::EventType::kReflectionSwitch);
      }
      --users[u].reflection_ticks;
    }
    if (state.has_faults && state.fault_fallback[u] != 0 && rss < -68.0) {
      // Fallback chain, step 2: the stock beam is unusable too (stale
      // sector, or a fault-spawned obstacle shadows the LoS) — try a
      // reflected path off the room surfaces.
      const GroupBeam refl_beam =
          state.designers[assignment[u]].design_reflection(ctx.room_pos[u],
                                                           others);
      if (!refl_beam.awv.empty()) {
        const double refl_rss =
            mmwave::rss_dbm(tb.ap(), refl_beam.awv, tb.channel(),
                            ctx.room_pos[u], others, tb.budget(),
                            tb.blockage(), state.rss_evals) +
            ctx.shadow[u];
        if (refl_rss > rss) {
          rss = refl_rss;
          ++tally.fallback_reflection_beams;
          push_event(obs::Layer::kMmwave, obs::EventType::kFallbackReflection);
        }
      }
    }
    unicast_rss[u] = rss;
    unicast_rate[u] = state.mcs->goodput_mbps(rss);
    if (state.coordinator.ap_count() > 1) {
      unicast_rate[u] *= state.coordinator.interference_factor(
          assignment[u], ctx.room_pos[u], rss, state.concurrent_beams);
    }
    users[u].predictor.set_phy_state(unicast_rate[u],
                                     users[u].blockage_forecast);
  });
  for (const LinkTally& tally : link_tally) {
    state.freport.probe_retries += tally.probe_retries;
    state.freport.fallback_stock_beams += tally.fallback_stock_beams;
    state.freport.fallback_reflection_beams += tally.fallback_reflection_beams;
    state.sls_sweeps += tally.sls_sweeps;
    state.sls_outage_ticks += tally.sls_outage_ticks;
    state.reflection_switches += tally.reflection_switches;
  }
  if (tel != nullptr) {
    for (std::size_t u = 0; u < n; ++u) {
      tel->append(state.lane_events[u]);
      state.lane_events[u].clear();
    }
  }
  link_span.add_cost(n * n);
  link_span.end();
}

}  // namespace volcast::core
