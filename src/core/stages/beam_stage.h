// Pipeline stage 2: AP assignment and per-user beam tracking / unicast
// link state.
//
// Two registered policies share this class:
//   "predictive" — the paper's proposal: steer from the predicted 6DoF
//                  position, no beam search, no outage.
//   "reactive"   — 802.11ad SLS baseline: ride the last swept sector and
//                  pay the 5-20 ms search outage when it goes stale.
#pragma once

#include "core/stages/stage.h"

namespace volcast::core {

class BeamStage final : public Stage {
 public:
  explicit BeamStage(bool predictive) : predictive_(predictive) {}

  [[nodiscard]] StageKind kind() const noexcept override {
    return StageKind::kBeam;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return predictive_ ? "predictive" : "reactive";
  }
  void run(SessionState& state, TickContext& ctx) override;

 private:
  bool predictive_;
};

}  // namespace volcast::core
