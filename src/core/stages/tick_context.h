// Per-tick data flowing through the staged pipeline.
//
// Each tick the driver (session.cpp) builds one TickContext and hands it
// through the stages in order; every field below is produced by exactly
// one stage and consumed by later ones:
//
//   driver       -> tick / t / frame, fault availability flags
//   Prediction   -> poses, body capsules, shadowing, joint prediction
//   Beam         -> AP assignment refresh, unicast link state (rate/rss)
//   Adaptation   -> per-user tier decisions (written into SessionState)
//   Mitigation   -> prefetch credit / reflection overrides (SessionState)
//   Grouping     -> per-AP multicast plan (ApPlan)
//   Transport    -> deliveries, app-layer throughput samples
#pragma once

#include <cstdint>
#include <vector>

#include "core/grouping.h"
#include "core/session.h"
#include "geometry/obstacle.h"
#include "geometry/pose.h"
#include "obs/telemetry.h"
#include "viewport/joint_predictor.h"

namespace volcast::core {

/// Per-AP product of the grouping stage, consumed by transport.
struct ApPlan {
  /// False when the AP scheduled nothing this tick (down, no members, or
  /// its round was dropped over backlog): transport skips it entirely.
  bool active = false;
  std::vector<std::size_t> members;  // user ids still needing this frame
  GroupingResult grouping;
};

struct TickContext {
  std::size_t tick = 0;
  std::uint32_t tick32 = 0;
  double t = 0.0;
  std::size_t frame = 0;
  /// The frame the prediction horizon lands on (what adaptation budgets
  /// for); set by the prediction stage.
  std::size_t target_frame = 0;
  /// An AP went dark or came back this tick (forces AP reassignment).
  bool availability_changed = false;

  // Products of the prediction stage (slot per user).
  std::vector<geo::Pose> local_poses;
  std::vector<geo::Vec3> room_pos;
  std::vector<geo::BodyObstacle> bodies;
  std::vector<double> shadow;
  view::JointPrediction prediction;

  // Products of the beam stage (slot per user).
  std::vector<double> unicast_rate;
  std::vector<double> unicast_rss;

  // Products of the grouping stage (slot per AP).
  std::vector<ApPlan> ap_plans;

  // Product of the transport stage (slot per user): application-layer
  // throughput samples fed to the bandwidth predictors.
  std::vector<double> app_sample_mbps;

  /// Telemetry sink (null = disabled), so stage instrumentation is written
  /// once: `auto span = ctx.span(obs::Stage::kLink);`.
  obs::Telemetry* tel = nullptr;

  [[nodiscard]] obs::Span span(obs::Stage stage,
                               std::uint32_t ap = obs::kNoId) const noexcept {
    return obs::Span(tel, stage, tick32, ap);
  }
};

}  // namespace volcast::core
