// The narrow interface every pipeline stage implements.
//
// A Stage owns one slice of the per-tick work (see tick_context.h for the
// dataflow). Stages are constructed once per session by the policy
// registry (registry.h) — the ablation switches in SessionConfig select
// *which* implementation fills each slot, and `--policy kind=name`
// overrides that selection by name without touching session code.
#pragma once

#include <string_view>

namespace volcast::core {

struct SessionState;
struct TickContext;

/// The seven pipeline slots, in execution order.
enum class StageKind : std::uint8_t {
  kPrediction,  // pose observation + joint viewport prediction
  kBeam,        // AP assignment + per-user beam tracking / link state
  kAdaptation,  // per-user quality-tier decisions
  kMitigation,  // proactive blockage mitigation
  kGrouping,    // per-AP multicast group formation + group beam design
  kTiling,      // per-user frame assembly from content-addressed tiles
  kTransport,   // MAC scheduling, delivery, prefetch, miss accounting
};
inline constexpr std::size_t kStageKindCount = 7;

[[nodiscard]] constexpr std::string_view to_string(StageKind kind) noexcept {
  switch (kind) {
    case StageKind::kPrediction: return "prediction";
    case StageKind::kBeam: return "beam";
    case StageKind::kAdaptation: return "adaptation";
    case StageKind::kMitigation: return "mitigation";
    case StageKind::kGrouping: return "grouping";
    case StageKind::kTiling: return "tiling";
    case StageKind::kTransport: return "transport";
  }
  return "?";
}

class Stage {
 public:
  virtual ~Stage() = default;

  /// Which pipeline slot this stage fills.
  [[nodiscard]] virtual StageKind kind() const noexcept = 0;
  /// The registered policy name ("greedy_iou", "reactive", ...).
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Advances this stage's slice of the tick.
  virtual void run(SessionState& state, TickContext& ctx) = 0;
};

}  // namespace volcast::core
