// Session-lifetime state shared by the pipeline stages.
//
// The staged pipeline splits the per-tick work into narrow Stage objects
// (see stage.h); everything that outlives a tick lives here: the
// construction-time components (video store, joint predictor, beam
// designers, multi-AP coordinator), per-user streaming state, the result
// counters, and the run-scoped scratch vectors (air-queue backlogs, AP
// assignment, last tick's beams). TickContext (tick_context.h) carries the
// per-tick products between stages.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "common/thread_pool.h"
#include "core/beam_designer.h"
#include "core/blockage_mitigator.h"
#include "core/multi_ap.h"
#include "core/session.h"
#include "core/workload_bundle.h"
#include "fault/injector.h"
#include "mmwave/mcs.h"
#include "obs/telemetry.h"
#include "pointcloud/tile_cache.h"
#include "pointcloud/video_store.h"
#include "sim/event_queue.h"
#include "sim/player.h"
#include "viewport/joint_predictor.h"

namespace volcast::core {

struct SessionState {
  SessionConfig config;
  MultiApCoordinator coordinator;
  // The immutable workload artifacts. Either the caller's shared bundle
  // (config.bundle — one VideoStore serving every fleet slot) or a private
  // one built here; the reference members below alias into it, so stage
  // code reads them exactly as when the state owned the artifacts.
  std::shared_ptr<const WorkloadBundle> bundle;
  // Declared before the joint predictor, which holds a pointer to it and
  // uses it during its own construction.
  common::ThreadPool pool;
  const vv::VideoGenerator& generator;
  const vv::CellGrid& grid;
  const vv::VideoStore& store;
  // Per-video-frame occupancy at the top tier (drives visibility).
  const std::vector<std::vector<std::uint32_t>>& occupancy;
  view::JointViewportPredictor joint;
  std::vector<BeamDesigner> designers;  // one per AP
  BlockageMitigator mitigator;

  // Per-user state.
  struct User {
    trace::MobilityModel mobility;
    mmwave::ShadowingProcess shadowing;
    sim::Player player;
    BandwidthPredictor predictor;
    std::size_t tier;
    std::size_t prefetch_credit = 0;
    std::size_t frames_ahead = 0;
    int reflection_ticks = 0;
    mmwave::Awv reflection_awv;
    double delivered_bits = 0.0;
    bool blockage_forecast = false;
    // Reactive (SLS) beam tracking state.
    mmwave::Awv serving_awv;
    int sls_remaining_ticks = 0;
    // Viewport prediction quality accounting.
    double miss_sum = 0.0;
    std::size_t miss_count = 0;
    // The decoder is a serial resource: completion time of the last frame.
    double decode_free_at = 0.0;
    // Motion-to-photon accounting (pose -> playable).
    RunningStats m2p;
    // Fault-recovery state: exponential backoff after failed beam probes,
    // and the frozen position of a stuck sector.
    int probe_backoff_ticks = 0;
    int probe_backoff_next = 1;
    bool was_stuck = false;
    geo::Vec3 stuck_pos{};
    // Packet-wire receiver (sequence numbers, burst-chain state,
    // residual-loss EWMA). Mutated only inside the serial delivery loop.
    transport::ReceiverState receiver;
  };
  std::vector<User> users;

  // Fault injection (all inert when the plan is empty).
  fault::FaultInjector injector;
  std::vector<fault::HealthMonitor> health;
  bool has_faults = false;
  fault::FaultReport freport;
  // Per-AP membership signature of the last tick, for counting multicast
  // group reformations under churn / AP faults.
  std::vector<std::vector<std::size_t>> prev_active;

  // Counters for SessionResult.
  double multicast_bits = 0.0;
  double unicast_bits = 0.0;
  double group_size_sum = 0.0;
  std::size_t group_count = 0;
  std::size_t custom_beam_uses = 0;
  std::size_t stock_beam_uses = 0;
  std::size_t blockage_forecasts = 0;
  std::size_t reflection_switches = 0;
  std::size_t dropped_ticks = 0;
  std::size_t outage_user_ticks = 0;
  std::size_t sls_sweeps = 0;
  std::size_t sls_outage_ticks = 0;
  double scheduled_airtime = 0.0;
  // Packet-wire totals (zero under the goodput policy) and the NACK
  // recovery-latency samples the result finalizer turns into percentiles.
  // Both are appended only from the serial delivery loop, in slot order.
  transport::TransportReport twire;
  std::vector<double> recovery_samples;

  // Tiling-stage state. `tiles` is the deterministic logical report
  // (first-touch accounting; see tiling_stage.h); the cache pointers and
  // the seen-bitmap are lazily initialized on the stage's first tick.
  vv::TileReport tiles;
  std::vector<char> tile_seen;
  std::uint64_t tile_content = 0;
  std::uint64_t video_seed = 0;
  vv::TileCache* tile_cache = nullptr;  // external (fleet-shared) or local
  std::unique_ptr<vv::TileCache> local_tile_cache;

  // Telemetry (null = disabled; every hook is one pointer test).
  obs::Telemetry* tel = nullptr;
  obs::Counter* rss_evals = nullptr;

  // Run-scoped state, initialized by begin_run() before the first tick.
  double dt = 0.0;
  std::size_t horizon_ticks = 0;
  const mmwave::McsTable* mcs = nullptr;
  sim::EventQueue queue;
  std::vector<double> backlog;                // per AP: air-queue depth (s)
  std::vector<std::size_t> assignment;        // user -> serving AP
  // Beams each AP transmitted with last tick: the interference the other
  // APs' users see this tick (beams persist across a frame interval).
  std::vector<mmwave::Awv> concurrent_beams;
  // Per-user event slots for the parallel link lanes, merged serially in
  // user order after each fan-out (same discipline as the counter tallies).
  std::vector<obs::EventBuffer> lane_events;
  std::vector<std::size_t> prev_tier;
  std::array<bool, 4> ap_up{};
  std::vector<char> fault_fallback;

  explicit SessionState(SessionConfig c);

  /// Resets the run-scoped vectors; called once at the top of run().
  void begin_run();

  [[nodiscard]] std::size_t user_count() const noexcept {
    return config.user_count;
  }

  /// Is this user churned out of the room this tick?
  [[nodiscard]] bool absent(std::size_t u) const {
    return has_faults && injector.user_absent(u);
  }

 private:
  // The mitigator needs a designer reference at construction; a static
  // placeholder satisfies the constructor before the real one is assigned.
  static const BeamDesigner& designers_placeholder();

  static MultiApConfig multi_ap_config(const SessionConfig& c);
  static view::JointPredictorConfig joint_config(const SessionConfig& c,
                                                 const Testbed& tb,
                                                 common::ThreadPool* pool);
};

/// Bits a user needs for `frame` at `tier` given its visibility map.
/// Shared by the adaptation, grouping and transport stages.
[[nodiscard]] double visible_bits(const view::VisibilityMap& map,
                                  const vv::VideoStore& store,
                                  std::size_t frame, std::size_t tier);

}  // namespace volcast::core
