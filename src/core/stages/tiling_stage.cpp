#include "core/stages/tiling_stage.h"

#include <memory>
#include <vector>

#include "core/stages/session_state.h"
#include "core/stages/tick_context.h"

namespace volcast::core {

void TilingStage::run(SessionState& state, TickContext& ctx) {
  const std::size_t frame = ctx.frame;
  obs::Telemetry* tel = state.tel;
  obs::Span span = ctx.span(obs::Stage::kTile);
  const vv::TileReport before = state.tiles;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  const std::size_t tier_count = state.store.tier_count();
  const std::size_t cell_count = state.grid.cell_count();
  if (shared_ && state.tile_seen.empty()) {
    // First tick: size the first-touch bitmap and resolve the cache — the
    // fleet-shared one when the config carries it, else a session-local
    // store (within-session sharing still amortizes repeats).
    std::vector<std::size_t> tier_points;
    tier_points.reserve(tier_count);
    for (const vv::QualityTier& tier : state.store.tiers())
      tier_points.push_back(tier.points_per_frame);
    state.tile_content = vv::tile_content_fingerprint(
        state.video_seed, state.config.master_points,
        state.config.video_frames, state.config.cell_size_m, tier_points);
    state.tile_seen.assign(state.config.video_frames * tier_count * cell_count,
                           0);
    state.tile_cache = state.config.tile_cache;
    if (state.tile_cache == nullptr) {
      state.local_tile_cache = std::make_unique<vv::TileCache>();
      state.tile_cache = state.local_tile_cache.get();
    }
  }

  for (std::size_t a = 0; a < state.coordinator.ap_count(); ++a) {
    if (!ctx.ap_plans[a].active) continue;
    for (const mac::GroupPlan& plan :
         ctx.ap_plans[a].grouping.schedule.groups) {
      for (const mac::UserDemand& demand : plan.members) {
        const std::size_t u = demand.user;
        const std::size_t tier = state.users[u].tier;
        const auto& vis = ctx.prediction.visibility[u];
        for (vv::CellId cell = 0; cell < cell_count; ++cell) {
          if (vis.lod(cell) <= 0.0) continue;
          const std::size_t bytes = state.store.cell_bytes(frame, tier, cell);
          if (bytes == 0) continue;
          ++state.tiles.requests;
          if (!shared_) {
            // Legacy model: every user encodes its own copy of the cell.
            ++state.tiles.encoded_tiles;
            state.tiles.encoded_bytes += bytes;
            continue;
          }
          const std::size_t seen_at =
              (frame * tier_count + tier) * cell_count + cell;
          if (!state.tile_seen[seen_at]) {
            state.tile_seen[seen_at] = 1;
            ++state.tiles.encoded_tiles;
            state.tiles.encoded_bytes += bytes;
          } else {
            ++state.tiles.stitched_tiles;
            state.tiles.stitched_bytes += bytes;
          }
          // Materialize: a resident tile — this session's earlier encode
          // or another fleet slot's — is stitched at the cost of get()'s
          // checksum validation; a miss (cold key, eviction, corruption)
          // pays the full encode. Wall clock only: the logical
          // encoded/stitched split above is already settled.
          vv::TileKey key;
          key.content = state.tile_content;
          key.frame = static_cast<std::uint32_t>(frame);
          key.cell = static_cast<std::uint32_t>(cell);
          key.tier = static_cast<std::uint16_t>(tier);
          const std::shared_ptr<const vv::Tile> tile =
              state.tile_cache->get(key);
          if (tile != nullptr) {
            ++cache_hits;
          } else {
            ++cache_misses;
            (void)state.tile_cache->put(vv::encode_tile(key, bytes));
          }
        }
      }
    }
  }

  const std::uint64_t requests = state.tiles.requests - before.requests;
  span.add_cost(requests);
  if (tel != nullptr && requests > 0) {
    obs::MetricRegistry& metrics = tel->metrics();
    metrics.counter("tile.requests").add(requests);
    metrics.counter("tile.encoded_tiles")
        .add(state.tiles.encoded_tiles - before.encoded_tiles);
    metrics.counter("tile.stitched_tiles")
        .add(state.tiles.stitched_tiles - before.stitched_tiles);
    metrics.counter("tile.encoded_bytes")
        .add(state.tiles.encoded_bytes - before.encoded_bytes);
    metrics.counter("tile.stitched_bytes")
        .add(state.tiles.stitched_bytes - before.stitched_bytes);
    if (cache_hits > 0) metrics.counter("tile.cache_hits").add(cache_hits);
    if (cache_misses > 0)
      metrics.counter("tile.cache_misses").add(cache_misses);
    metrics.gauge("tile.encode_bytes_per_user")
        .set(static_cast<double>(state.tiles.encoded_bytes) /
             static_cast<double>(state.user_count()));
  }
}

}  // namespace volcast::core
