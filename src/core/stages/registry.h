// String -> stage-factory registry: the seam that lets ablation switches,
// the CLI (`volcast_sim --policy grouping=greedy_iou`) and future policy
// experiments select pipeline implementations by name without touching
// session code.
//
// Built-in policies are registered centrally in registry.cpp (a static
// library drops per-TU self-registration objects, so lazy central
// registration is the only scheme that survives linking); new policies
// register through PolicyRegistry::add at startup or test setup.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/stages/stage.h"

namespace volcast::core {

struct SessionConfig;

class PolicyRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Stage>(const SessionConfig&)>;

  /// The process-wide registry, built-ins pre-registered.
  static PolicyRegistry& instance();

  /// Registers (or replaces) `name` for the given pipeline slot.
  void add(StageKind kind, std::string name, Factory factory);

  [[nodiscard]] bool contains(StageKind kind, const std::string& name) const;

  /// Instantiates a registered policy; throws std::invalid_argument naming
  /// the slot and the registered alternatives on an unknown name.
  [[nodiscard]] std::unique_ptr<Stage> create(StageKind kind,
                                              const std::string& name,
                                              const SessionConfig& c) const;

  /// Registered names for one slot, sorted (for --help and error text).
  [[nodiscard]] std::vector<std::string> names(StageKind kind) const;

 private:
  PolicyRegistry();

  std::array<std::map<std::string, Factory>, kStageKindCount> slots_;
};

/// "grouping" -> StageKind::kGrouping, etc.; nullopt on unknown text.
[[nodiscard]] std::optional<StageKind> parse_stage_kind(std::string_view text);

/// The policy name each ablation switch in `c` selects for `kind` (e.g.
/// enable_multicast=false forces grouping="unicast_only").
[[nodiscard]] std::string default_policy(StageKind kind,
                                         const SessionConfig& c);

/// Assembles the six-stage pipeline, execution order fixed: defaults from
/// the ablation switches, then SessionConfig::policy_overrides applied on
/// top. Throws std::invalid_argument on an unknown slot or policy name.
[[nodiscard]] std::vector<std::unique_ptr<Stage>> build_pipeline(
    const SessionConfig& c);

}  // namespace volcast::core
