#include "core/stages/registry.h"

#include <stdexcept>
#include <utility>

#include "core/session.h"
#include "core/stages/adaptation_stage.h"
#include "core/stages/beam_stage.h"
#include "core/stages/grouping_stage.h"
#include "core/stages/mitigation_stage.h"
#include "core/stages/prediction_stage.h"
#include "core/stages/tiling_stage.h"
#include "core/stages/transport_stage.h"

namespace volcast::core {

namespace {

constexpr std::array<StageKind, kStageKindCount> kPipelineOrder = {
    StageKind::kPrediction, StageKind::kBeam,   StageKind::kAdaptation,
    StageKind::kMitigation, StageKind::kGrouping, StageKind::kTiling,
    StageKind::kTransport,
};

}  // namespace

PolicyRegistry::PolicyRegistry() {
  add(StageKind::kPrediction, "joint",
      [](const SessionConfig&) { return std::make_unique<PredictionStage>(); });
  add(StageKind::kBeam, "predictive", [](const SessionConfig&) {
    return std::make_unique<BeamStage>(true);
  });
  add(StageKind::kBeam, "reactive", [](const SessionConfig&) {
    return std::make_unique<BeamStage>(false);
  });
  add(StageKind::kAdaptation, "none", [](const SessionConfig&) {
    return std::make_unique<AdaptationStage>(AdaptationPolicy::kNone);
  });
  add(StageKind::kAdaptation, "buffer", [](const SessionConfig&) {
    return std::make_unique<AdaptationStage>(AdaptationPolicy::kBufferOnly);
  });
  add(StageKind::kAdaptation, "cross_layer", [](const SessionConfig&) {
    return std::make_unique<AdaptationStage>(AdaptationPolicy::kCrossLayer);
  });
  add(StageKind::kMitigation, "proactive", [](const SessionConfig&) {
    return std::make_unique<MitigationStage>(true);
  });
  add(StageKind::kMitigation, "off", [](const SessionConfig&) {
    return std::make_unique<MitigationStage>(false);
  });
  add(StageKind::kGrouping, "unicast_only", [](const SessionConfig&) {
    return std::make_unique<GroupingStage>(GroupingPolicy::kUnicastOnly);
  });
  add(StageKind::kGrouping, "greedy_iou", [](const SessionConfig&) {
    return std::make_unique<GroupingStage>(GroupingPolicy::kGreedyIoU);
  });
  add(StageKind::kGrouping, "pairs_only", [](const SessionConfig&) {
    return std::make_unique<GroupingStage>(GroupingPolicy::kPairsOnly);
  });
  add(StageKind::kGrouping, "exhaustive", [](const SessionConfig&) {
    return std::make_unique<GroupingStage>(GroupingPolicy::kExhaustive);
  });
  add(StageKind::kTiling, "off", [](const SessionConfig&) {
    return std::make_unique<TilingStage>(false);
  });
  add(StageKind::kTiling, "shared", [](const SessionConfig&) {
    return std::make_unique<TilingStage>(true);
  });
  add(StageKind::kTransport, "mac",
      [](const SessionConfig&) { return std::make_unique<TransportStage>(); });
  add(StageKind::kTransport, "fec", [](const SessionConfig&) {
    return std::make_unique<TransportStage>(transport::TransportPolicy::kFec);
  });
  add(StageKind::kTransport, "nack", [](const SessionConfig&) {
    return std::make_unique<TransportStage>(transport::TransportPolicy::kNack);
  });
  add(StageKind::kTransport, "hybrid", [](const SessionConfig&) {
    return std::make_unique<TransportStage>(
        transport::TransportPolicy::kHybrid);
  });
}

PolicyRegistry& PolicyRegistry::instance() {
  static PolicyRegistry registry;
  return registry;
}

void PolicyRegistry::add(StageKind kind, std::string name, Factory factory) {
  slots_[static_cast<std::size_t>(kind)][std::move(name)] = std::move(factory);
}

bool PolicyRegistry::contains(StageKind kind, const std::string& name) const {
  const auto& slot = slots_[static_cast<std::size_t>(kind)];
  return slot.find(name) != slot.end();
}

std::unique_ptr<Stage> PolicyRegistry::create(StageKind kind,
                                              const std::string& name,
                                              const SessionConfig& c) const {
  const auto& slot = slots_[static_cast<std::size_t>(kind)];
  const auto it = slot.find(name);
  if (it == slot.end()) {
    std::string msg = "unknown ";
    msg += to_string(kind);
    msg += " policy '" + name + "'; registered:";
    for (const auto& [known, factory] : slot) msg += " " + known;
    throw std::invalid_argument(msg);
  }
  return it->second(c);
}

std::vector<std::string> PolicyRegistry::names(StageKind kind) const {
  std::vector<std::string> out;
  for (const auto& [name, factory] : slots_[static_cast<std::size_t>(kind)])
    out.push_back(name);
  return out;
}

std::optional<StageKind> parse_stage_kind(std::string_view text) {
  for (StageKind kind : kPipelineOrder)
    if (text == to_string(kind)) return kind;
  return std::nullopt;
}

std::string default_policy(StageKind kind, const SessionConfig& c) {
  switch (kind) {
    case StageKind::kPrediction:
      return "joint";
    case StageKind::kBeam:
      return c.predictive_beam_tracking ? "predictive" : "reactive";
    case StageKind::kAdaptation:
      switch (c.adaptation) {
        case AdaptationPolicy::kNone: return "none";
        case AdaptationPolicy::kBufferOnly: return "buffer";
        case AdaptationPolicy::kCrossLayer: return "cross_layer";
      }
      return "cross_layer";
    case StageKind::kMitigation:
      return c.enable_blockage_mitigation ? "proactive" : "off";
    case StageKind::kGrouping:
      if (!c.enable_multicast) return "unicast_only";
      switch (c.grouping) {
        case GroupingPolicy::kUnicastOnly: return "unicast_only";
        case GroupingPolicy::kGreedyIoU: return "greedy_iou";
        case GroupingPolicy::kPairsOnly: return "pairs_only";
        case GroupingPolicy::kExhaustive: return "exhaustive";
      }
      return "greedy_iou";
    case StageKind::kTiling:
      return "off";
    case StageKind::kTransport:
      return "mac";
  }
  throw std::invalid_argument("unknown stage kind");
}

std::vector<std::unique_ptr<Stage>> build_pipeline(const SessionConfig& c) {
  const PolicyRegistry& registry = PolicyRegistry::instance();
  std::vector<std::unique_ptr<Stage>> pipeline;
  pipeline.reserve(kPipelineOrder.size());
  for (StageKind kind : kPipelineOrder) {
    std::string name = default_policy(kind, c);
    const auto it = c.policy_overrides.find(std::string(to_string(kind)));
    if (it != c.policy_overrides.end()) name = it->second;
    pipeline.push_back(registry.create(kind, name, c));
  }
  return pipeline;
}

}  // namespace volcast::core
