#include "core/testbed.h"

namespace volcast::core {

namespace {
geo::Pose ap_pose(const TestbedConfig& config) {
  // Boresight from the AP toward a point above the content: covers the
  // audience arc with the codebook's downward-tilted sectors.
  return geo::Pose::look_at(config.ap_position,
                            config.content_floor + geo::Vec3{0.0, 0.0, 1.2});
}
}  // namespace

Testbed::Testbed(TestbedConfig config)
    : config_(config),
      channel_(config.room),
      ap_(config.array, ap_pose(config), channel_.carrier_hz()),
      codebook_(ap_, config.codebook) {}

geo::Pose Testbed::to_room(const geo::Pose& content_local) const {
  geo::Pose out = content_local;
  out.position = to_room(content_local.position);
  return out;
}

geo::Vec3 Testbed::to_room(const geo::Vec3& content_local) const {
  return content_local + config_.content_floor;
}

}  // namespace volcast::core
