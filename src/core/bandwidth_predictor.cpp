#include "core/bandwidth_predictor.h"

#include <algorithm>
#include <vector>

#include "common/stats.h"

namespace volcast::core {

const char* to_string(BandwidthEstimator mode) noexcept {
  switch (mode) {
    case BandwidthEstimator::kAppOnly:
      return "app-only";
    case BandwidthEstimator::kPhyOnly:
      return "phy-only";
    case BandwidthEstimator::kCrossLayer:
      return "cross-layer";
  }
  return "?";
}

BandwidthPredictor::BandwidthPredictor(BandwidthEstimator mode,
                                       std::size_t window)
    : mode_(mode), window_(std::max<std::size_t>(window, 1)) {}

void BandwidthPredictor::observe(double app_goodput_mbps,
                                 double phy_rate_mbps) {
  window_.push({app_goodput_mbps, phy_rate_mbps});
  current_phy_mbps_ = phy_rate_mbps;
}

void BandwidthPredictor::set_phy_state(double phy_rate_mbps,
                                       bool blockage_forecast) {
  current_phy_mbps_ = phy_rate_mbps;
  blockage_forecast_ = blockage_forecast;
}

double BandwidthPredictor::predict_mbps() const {
  if (window_.empty()) return current_phy_mbps_;

  std::vector<double> app;
  double mean_phy = 0.0;
  app.reserve(window_.size());
  for (std::size_t i = 0; i < window_.size(); ++i) {
    app.push_back(window_[i].app_mbps);
    mean_phy += window_[i].phy_mbps;
  }
  mean_phy /= static_cast<double>(window_.size());
  const double app_estimate = harmonic_mean(app);

  switch (mode_) {
    case BandwidthEstimator::kAppOnly:
      return app_estimate;
    case BandwidthEstimator::kPhyOnly:
      return blockage_forecast_ ? current_phy_mbps_ * kForecastDiscount
                                : current_phy_mbps_;
    case BandwidthEstimator::kCrossLayer: {
      // App history rescaled by how the channel has moved since: if RSS just
      // collapsed, the PHY ratio pulls the estimate down this tick instead
      // of waiting a window's worth of bad samples.
      const double ratio =
          mean_phy > 0.0
              ? std::clamp(current_phy_mbps_ / mean_phy, 0.05, 2.0)
              : 1.0;
      double estimate = app_estimate * ratio;
      if (blockage_forecast_) estimate *= kForecastDiscount;
      return estimate;
    }
  }
  return app_estimate;
}

}  // namespace volcast::core
