// Proactive blockage mitigation (paper Section 4.1).
//
// Consumes the joint predictor's blockage forecasts and decides, per user,
// what the AP should do *before* the body crosses the line of sight:
// prefetch frames while the link is still fast, and/or pre-compute a
// reflection beam to switch to the instant RSS collapses — avoiding the
// 5-20 ms beam re-search the paper says a reactive system pays.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/beam_designer.h"
#include "viewport/joint_predictor.h"

namespace volcast::core {

/// Mitigation plan for one user with an imminent blockage.
struct MitigationAction {
  std::size_t user = 0;
  std::size_t extra_prefetch_frames = 0;  // fetch-ahead depth while fast
  bool use_reflection_beam = false;       // switch when the drop lands
  mmwave::Awv reflection_awv;             // precomputed NLoS beam
  double reflection_rate_mbps = 0.0;
};

/// Mitigator configuration.
struct MitigatorConfig {
  bool enable_prefetch = true;
  bool enable_beam_switch = true;
  std::size_t prefetch_frames = 3;
  /// Only switch beams when the reflection actually beats the blocked LoS
  /// estimate by this margin (dB); otherwise ride out the partial blockage.
  double min_reflection_gain_db = 3.0;
  /// Estimated LoS loss of a forecast blockage (matches BlockageModel's
  /// dead-center loss; used before the blockage materializes).
  double assumed_blockage_loss_db = 20.0;
};

/// Turns forecasts into per-user actions.
class BlockageMitigator {
 public:
  BlockageMitigator(const Testbed& testbed, const BeamDesigner& designer,
                    MitigatorConfig config = {});

  /// `forecasts` from JointViewportPredictor; `positions` the predicted
  /// user positions; `current_rss_dbm` each user's current (unblocked) RSS.
  [[nodiscard]] std::vector<MitigationAction> plan(
      std::span<const view::BlockageForecast> forecasts,
      std::span<const geo::Pose> positions,
      std::span<const double> current_rss_dbm) const;

  [[nodiscard]] const MitigatorConfig& config() const noexcept {
    return config_;
  }

 private:
  const Testbed* testbed_;
  const BeamDesigner* designer_;
  MitigatorConfig config_;
};

}  // namespace volcast::core
