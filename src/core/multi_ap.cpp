#include "core/multi_ap.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "mmwave/link.h"

namespace volcast::core {

MultiApCoordinator::MultiApCoordinator(const TestbedConfig& base,
                                       const MultiApConfig& config)
    : config_(config) {
  if (config.ap_count == 0 || config.ap_count > 4)
    throw std::invalid_argument("MultiApCoordinator: ap_count must be 1..4");
  const double w = base.room.width_m;
  const double l = base.room.length_m;
  const double z = base.ap_position.z;
  // Order matters: the second AP goes on a side wall, which keeps a
  // moderate distance to an audience anywhere in the room (the wall
  // opposite the primary AP would sit on top of a far-side audience).
  const geo::Vec3 mounts[4] = {
      {w * 0.5, 0.1, z},      // front wall (primary)
      {w - 0.1, l * 0.5, z},  // right wall
      {0.1, l * 0.5, z},      // left wall
      {w * 0.5, l - 0.1, z},  // back wall
  };
  for (std::size_t i = 0; i < config.ap_count; ++i) {
    TestbedConfig derived = base;
    derived.ap_position = mounts[i];
    aps_.push_back(std::make_unique<Testbed>(derived));
  }
}

std::vector<std::size_t> MultiApCoordinator::assign_users(
    std::span<const geo::Vec3> positions) const {
  return assign_users(positions, {});
}

std::vector<std::size_t> MultiApCoordinator::assign_users(
    std::span<const geo::Vec3> positions,
    std::span<const bool> available) const {
  std::vector<std::size_t> assignment;
  assignment.reserve(positions.size());
  for (const geo::Vec3& pos : positions) {
    std::size_t best_ap = 0;
    double best_rss = -std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < aps_.size(); ++a) {
      if (a < available.size() && !available[a]) continue;
      const Testbed& tb = *aps_[a];
      const double rss = mmwave::best_beam_rss_dbm(
          tb.ap(), tb.codebook(), tb.channel(), pos, {}, tb.budget(),
          tb.blockage());
      if (rss > best_rss) {
        best_rss = rss;
        best_ap = a;
      }
    }
    assignment.push_back(best_ap);
  }
  return assignment;
}

double MultiApCoordinator::interference_factor(
    std::size_t victim_ap, const geo::Vec3& victim_pos, double victim_rss_dbm,
    std::span<const mmwave::Awv> concurrent_beams) const {
  double strongest_interference = -std::numeric_limits<double>::infinity();
  for (std::size_t a = 0; a < aps_.size() && a < concurrent_beams.size();
       ++a) {
    if (a == victim_ap || concurrent_beams[a].empty()) continue;
    const Testbed& tb = *aps_[a];
    const double leak =
        mmwave::rss_dbm(tb.ap(), concurrent_beams[a], tb.channel(),
                        victim_pos, {}, tb.budget(), tb.blockage());
    strongest_interference = std::max(strongest_interference, leak);
  }
  if (strongest_interference ==
      -std::numeric_limits<double>::infinity())
    return 1.0;
  const double sir = victim_rss_dbm - strongest_interference;
  if (sir < config_.outage_sir_db) return 0.0;
  if (sir < config_.degraded_sir_db) return 0.5;
  return 1.0;
}

}  // namespace volcast::core
