// Shared immutable workload artifacts: one VideoStore, ten thousand
// sessions.
//
// Per-session setup (generating the video, precomputing the codec size
// tables and octrees, deriving the per-frame occupancy that drives
// visibility) costs ~0.24-0.32 s — which dwarfs run time for short
// sessions and scales fleet serial time linearly with slot count. But all
// of those artifacts are pure functions of the *workload identity* (video
// seed, point budget, frame count, fps, cell size), not of the audience:
// every fleet slot streaming the same content recomputes byte-identical
// tables. The WorkloadBundle hoists them into a single reference-counted,
// frozen artifact set built once per fleet and read concurrently by every
// slot — the same encode-once/serve-many amortization the tile cache
// applies to the wire, applied to the setup path.
//
// Ownership / copy-on-write rules:
//  * The bundle is built (or installed) while unfrozen, then freeze()d.
//    After freeze every mutator throws std::logic_error; only const
//    accessors remain — shared reads are race-free by construction, and
//    the TSan suite pins that (tests/test_workload_bundle.cpp).
//  * Artifacts are heap-allocated so their addresses survive handoff; the
//    VideoStore's interior CellGrid pointer stays valid for the bundle's
//    whole lifetime.
//  * Nothing a session mutates lives here. Per-session state (players,
//    predictors, RNG streams, per-user health) is copied out of / derived
//    from the bundle at session construction — copy-on-write with session
//    granularity: a session that needs divergent artifacts simply builds a
//    private bundle (the legacy path is exactly that, one private bundle
//    per session).
//  * Identity is the WorkloadKey; its hash() is the bundle hash folded
//    into the fleet checkpoint fingerprint (checkpoint v4), so a resumed
//    run rejects a checkpoint taken against different shared content.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "pointcloud/cell_grid.h"
#include "pointcloud/video_generator.h"
#include "pointcloud/video_store.h"

namespace volcast::core {

struct SessionConfig;  // core/session.h

/// Identity of one workload's immutable artifact set: every SessionConfig
/// field that determines the generated video, the cell grid, the codec
/// size tables and the occupancy precompute — and nothing else. Two
/// configs with equal keys produce byte-identical artifacts and may share
/// one bundle; audience fields (users, seeds beyond the video seed,
/// ablation switches, policies) deliberately do not participate.
struct WorkloadKey {
  /// The video's content seed: SessionConfig::content_seed when nonzero,
  /// else derived from the session seed (seed ^ 0xc0ffee) — the same rule
  /// the tile cache uses for content fingerprints.
  std::uint64_t video_seed = 0;
  std::uint64_t master_points = 0;
  std::uint64_t video_frames = 0;
  double fps = 30.0;
  double cell_size_m = 0.5;

  [[nodiscard]] static WorkloadKey from(const SessionConfig& config);

  [[nodiscard]] bool operator==(const WorkloadKey& other) const noexcept {
    return video_seed == other.video_seed &&
           master_points == other.master_points &&
           video_frames == other.video_frames && fps == other.fps &&
           cell_size_m == other.cell_size_m;
  }

  /// FNV-1a64 over the canonical little-endian field encoding (doubles as
  /// raw IEEE-754 bits) — the bundle hash recorded in checkpoint v4.
  [[nodiscard]] std::uint64_t hash() const noexcept;
};

/// Bundle hash a config would build — computable without building the
/// bundle, so run_fleet can fingerprint resumes cheaply.
[[nodiscard]] std::uint64_t workload_bundle_hash(const SessionConfig& config);

/// The immutable artifact set. Typical use is the one-liner
/// WorkloadBundle::build(config); the two-phase constructor + install /
/// build_artifacts + freeze path exists for callers that bring their own
/// artifacts (e.g. a VideoStore deserialized from disk) and for the
/// immutability-guard tests.
class WorkloadBundle {
 public:
  explicit WorkloadBundle(WorkloadKey key) : key_(key) {}

  WorkloadBundle(const WorkloadBundle&) = delete;
  WorkloadBundle& operator=(const WorkloadBundle&) = delete;

  /// Builds video + store + occupancy from the key, in one call: exactly
  /// the tables SessionState used to build per session, bit-identical at
  /// any worker thread count. Throws std::logic_error once frozen.
  void build_artifacts(std::size_t worker_threads = 1);

  /// Installs externally built artifacts (the store must have been built
  /// against *grid). Throws std::logic_error once frozen.
  void install_video(std::unique_ptr<vv::VideoGenerator> generator,
                     std::unique_ptr<vv::CellGrid> grid,
                     std::unique_ptr<vv::VideoStore> store);
  /// Installs the per-frame top-tier occupancy tables (visibility
  /// precompute). Throws std::logic_error once frozen.
  void install_occupancy(std::vector<std::vector<std::uint32_t>> occupancy);

  /// Seals the bundle: mutators throw from now on, const accessors are
  /// free-threaded. Throws std::logic_error when artifacts are missing —
  /// a frozen bundle is always complete.
  void freeze();

  /// Builds and freezes a bundle for `config` (worker_threads taken from
  /// the config). The standard entry point: run_fleet and SessionState
  /// both funnel through here, which is what the build counter counts.
  [[nodiscard]] static std::shared_ptr<const WorkloadBundle> build(
      const SessionConfig& config);

  [[nodiscard]] bool frozen() const noexcept {
    return frozen_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const WorkloadKey& key() const noexcept { return key_; }
  /// == key().hash(); the checkpoint-v4 bundle hash.
  [[nodiscard]] std::uint64_t hash() const noexcept { return key_.hash(); }

  // Const accessors: throw std::logic_error while the artifact is missing
  // (an unbuilt bundle), never after freeze().
  [[nodiscard]] const vv::VideoGenerator& generator() const;
  [[nodiscard]] const vv::CellGrid& grid() const;
  [[nodiscard]] const vv::VideoStore& store() const;
  [[nodiscard]] const std::vector<std::vector<std::uint32_t>>& occupancy()
      const;
  /// Top-tier occupancy row of one video frame.
  [[nodiscard]] std::span<const std::uint32_t> occupancy(
      std::size_t frame) const;

  /// Process-lifetime count of build_artifacts() calls — the "peak bundle
  /// builds == 1" observability hook the fleet tests assert through.
  [[nodiscard]] static std::uint64_t builds_total() noexcept;

 private:
  void mutate_guard(const char* what) const;
  const void* built_guard(const void* artifact, const char* what) const;

  WorkloadKey key_;
  std::atomic<bool> frozen_{false};
  // Heap-allocated for address stability: the store points at the grid.
  std::unique_ptr<vv::VideoGenerator> generator_;
  std::unique_ptr<vv::CellGrid> grid_;
  std::unique_ptr<vv::VideoStore> store_;
  std::vector<std::vector<std::uint32_t>> occupancy_;
  bool has_occupancy_ = false;
};

}  // namespace volcast::core
