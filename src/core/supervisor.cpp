#include "core/supervisor.h"

#include <new>

#include "fault/fault_plan.h"

namespace volcast::core {

namespace {

/// splitmix64 finalizer, the same decorrelator the fault injector uses for
/// its per-(user, tick) draws.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* to_string(SlotStatus status) noexcept {
  switch (status) {
    case SlotStatus::kCompleted: return "completed";
    case SlotStatus::kFailed: return "failed";
    case SlotStatus::kDeadlineExceeded: return "deadline-exceeded";
    case SlotStatus::kQuarantined: return "quarantined";
  }
  return "unknown";
}

const char* to_string(FailureClass c) noexcept {
  switch (c) {
    case FailureClass::kNone: return "none";
    case FailureClass::kCrashFault: return "crash-fault";
    case FailureClass::kDeadline: return "deadline";
    case FailureClass::kBadAlloc: return "bad-alloc";
    case FailureClass::kInvalidArgument: return "invalid-argument";
    case FailureClass::kLogicError: return "logic-error";
    case FailureClass::kRuntimeError: return "runtime-error";
    case FailureClass::kUnknown: return "unknown";
  }
  return "unknown";
}

std::uint64_t derive_retry_seed(std::uint64_t base_seed, std::size_t slot,
                                std::uint32_t attempt) noexcept {
  // The salt keeps retry seeds disjoint from the base_seed + k family that
  // first attempts use, so a retried slot never silently clones a
  // neighbouring slot's run.
  return mix(base_seed ^ 0x5afe'f1ee'7c0d'e5edULL ^
             mix(static_cast<std::uint64_t>(slot) * 0x632be59bd9b4e019ULL ^
                 static_cast<std::uint64_t>(attempt)));
}

std::uint64_t retry_backoff_ticks(std::size_t slot,
                                  std::uint32_t attempt) noexcept {
  const std::uint32_t exponent = attempt < 10 ? attempt : 10;
  const std::uint64_t base = std::uint64_t{1} << exponent;
  const std::uint64_t jitter =
      mix(static_cast<std::uint64_t>(slot) ^
          (static_cast<std::uint64_t>(attempt) << 32)) &
      0xf;
  return base + jitter;
}

FailureClass classify_failure(const std::exception& e) noexcept {
  // Most-derived classes first: the taxonomy's own types both derive from
  // std::runtime_error.
  if (dynamic_cast<const fault::SessionCrashFault*>(&e) != nullptr)
    return FailureClass::kCrashFault;
  if (dynamic_cast<const DeadlineExceeded*>(&e) != nullptr)
    return FailureClass::kDeadline;
  if (dynamic_cast<const std::bad_alloc*>(&e) != nullptr)
    return FailureClass::kBadAlloc;
  if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr)
    return FailureClass::kInvalidArgument;
  if (dynamic_cast<const std::runtime_error*>(&e) != nullptr)
    return FailureClass::kRuntimeError;
  if (dynamic_cast<const std::logic_error*>(&e) != nullptr)
    return FailureClass::kLogicError;
  return FailureClass::kUnknown;
}

FailureClass classify_current_exception(std::string& message) {
  try {
    throw;
  } catch (const std::exception& e) {
    message = e.what();
    return classify_failure(e);
  } catch (...) {
    message = "unknown exception";
    return FailureClass::kUnknown;
  }
}

}  // namespace volcast::core
