// Fleet supervision: typed per-slot failure taxonomy, deterministic retry
// scheduling, and logical deadlines.
//
// Production multi-user streaming survives partial failure: one crashing
// session (a chaos crash fault, a bad allocation, a deadline overrun) must
// not abort the other N-1 rooms, and a long fleet run must be resumable
// after a kill. The supervisor half of that story lives here — a typed
// SlotOutcome per fleet slot, a retry schedule that is *pure data* (retry k
// of slot j reruns with a seed derived only from (base seed, slot,
// attempt), so the FleetResult stays bit-identical at any
// `parallel_sessions` value), and quarantine once retries are exhausted.
// The persistence half lives in core/checkpoint.h.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <stdexcept>
#include <string>

namespace volcast::core {

/// Terminal state of one fleet slot.
enum class SlotStatus : std::uint8_t {
  kCompleted = 0,         // result is valid (attempts > 1 => retried-then-ok)
  kFailed = 1,            // threw with retries disabled; result is empty
  kDeadlineExceeded = 2,  // exceeded the logical tick budget; never retried
  kQuarantined = 3,       // threw on every attempt, retries exhausted
};

/// Error taxonomy of the attempt that decided a non-completed slot.
enum class FailureClass : std::uint8_t {
  kNone = 0,             // completed slots
  kCrashFault = 1,       // fault::SessionCrashFault (injected chaos crash)
  kDeadline = 2,         // core::DeadlineExceeded (tick budget exhausted)
  kBadAlloc = 3,         // std::bad_alloc
  kInvalidArgument = 4,  // std::invalid_argument
  kLogicError = 5,       // other std::logic_error
  kRuntimeError = 6,     // other std::runtime_error
  kUnknown = 7,          // anything else (incl. non-std exceptions)
};

[[nodiscard]] const char* to_string(SlotStatus status) noexcept;
[[nodiscard]] const char* to_string(FailureClass c) noexcept;

/// Per-slot supervision record. For completed slots `error_class` is kNone
/// and `message` is empty even when earlier attempts failed — `attempts`
/// and `backoff_ticks` carry the retry history.
struct SlotOutcome {
  SlotStatus status = SlotStatus::kCompleted;
  FailureClass error_class = FailureClass::kNone;
  /// what() of the failure that decided a non-completed slot.
  std::string message;
  /// Total attempts made (1 = first try decided the slot).
  std::uint32_t attempts = 1;
  /// Seed of the attempt that produced `status` (base seed + slot for the
  /// first attempt, derive_retry_seed(...) afterwards).
  std::uint64_t seed = 0;
  /// Sum of the logical backoff schedule across retries. Simulated
  /// sessions never wall-clock-wait; this is the deterministic schedule a
  /// real deployment would sleep, recorded as data.
  std::uint64_t backoff_ticks = 0;
};

/// Fleet supervision knobs. The zero-initialized default disables both
/// retry and deadline, and run_fleet then behaves exactly like an
/// unsupervised fold over healthy slots (failures are still caught and
/// recorded instead of aborting the fleet).
struct SupervisorConfig {
  /// Retries after the first failed attempt (0 = first failure is final).
  /// Deadline overruns are never retried: the tick budget is structural,
  /// so a rerun would deterministically overrun again.
  std::size_t max_retries = 0;
  /// Logical per-session deadline in ticks (0 = unlimited). Forwarded to
  /// SessionConfig::tick_budget for every slot; a session whose tick count
  /// would exceed it aborts mid-run with DeadlineExceeded.
  std::size_t tick_budget = 0;
};

/// Thrown by Session::run when SessionConfig::tick_budget is exhausted.
class DeadlineExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by run_fleet when FleetConfig::kill_after_slots fired (a test
/// hook simulating an operator kill mid-fleet; the checkpoint file already
/// holds every slot finished so far).
class FleetKilled : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Seed for retry `attempt` (>= 2) of fleet slot `slot`: a splitmix-style
/// mix of the inputs only, so the schedule is identical at any
/// parallelism. Attempt 1 uses `base_seed + slot` (the PR-4 fleet
/// contract) — this function is only consulted for the reruns.
[[nodiscard]] std::uint64_t derive_retry_seed(std::uint64_t base_seed,
                                              std::size_t slot,
                                              std::uint32_t attempt) noexcept;

/// Logical backoff before retry `attempt` of `slot`: exponential base with
/// a seeded slot-indexed jitter term, pure data (see SlotOutcome).
[[nodiscard]] std::uint64_t retry_backoff_ticks(std::size_t slot,
                                                std::uint32_t attempt) noexcept;

/// Maps a caught exception onto the taxonomy (most-derived class first).
[[nodiscard]] FailureClass classify_failure(const std::exception& e) noexcept;

/// Classifies the in-flight exception of a catch block and extracts its
/// what() into `message` ("unknown exception" for non-std types).
[[nodiscard]] FailureClass classify_current_exception(std::string& message);

}  // namespace volcast::core
