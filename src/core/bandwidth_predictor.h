// Cross-layer bandwidth prediction (paper Section 4.3).
//
// "We design a cross-layer bandwidth prediction scheme by combining the
// data rate indicators from the physical layer (blockage or mobility) and
// the application layer (buffer size or throughput)."
//
// Three estimator modes, so the rate-adaptation ablation can compare:
//   * kAppOnly    — harmonic mean of recent application-layer throughput
//                   samples (the classic client-side estimator);
//   * kPhyOnly    — the instantaneous PHY rate implied by RSS/MCS;
//   * kCrossLayer — application history rescaled by the ratio of the
//                   current PHY rate to the PHY rate those samples saw,
//                   discounted further when a blockage forecast is active.
//                   Reacts instantly to RSS drops (PHY term) without losing
//                   the MAC/contention realism of app-layer samples.
#pragma once

#include <cstddef>

#include "common/ring_buffer.h"

namespace volcast::core {

enum class BandwidthEstimator {
  kAppOnly,
  kPhyOnly,
  kCrossLayer,
};

[[nodiscard]] const char* to_string(BandwidthEstimator mode) noexcept;

/// Per-link bandwidth predictor.
class BandwidthPredictor {
 public:
  explicit BandwidthPredictor(BandwidthEstimator mode,
                              std::size_t window = 8);

  /// Records one delivery interval: the application-layer goodput achieved
  /// and the PHY rate that was available during it.
  void observe(double app_goodput_mbps, double phy_rate_mbps);

  /// Tells the predictor the current PHY rate (updated every tick, even
  /// between deliveries) and whether a blockage is forecast imminently.
  void set_phy_state(double phy_rate_mbps, bool blockage_forecast);

  /// Predicted goodput for the next interval (Mbps). Returns the PHY rate
  /// until enough app samples exist.
  [[nodiscard]] double predict_mbps() const;

  [[nodiscard]] BandwidthEstimator mode() const noexcept { return mode_; }

 private:
  struct Sample {
    double app_mbps;
    double phy_mbps;
  };
  BandwidthEstimator mode_;
  RingBuffer<Sample> window_;
  double current_phy_mbps_ = 0.0;
  bool blockage_forecast_ = false;

  /// Forecast discount: expected residual rate fraction under an imminent
  /// body blockage (calibrated to the partial-blockage channel model).
  static constexpr double kForecastDiscount = 0.35;
};

}  // namespace volcast::core
