// Multi-session fleet runner: N independently-seeded sessions (e.g. N
// rooms of the same venue, or N Monte-Carlo repetitions of one deployment)
// executed across a thread pool, with slot-indexed results and aggregate
// fleet statistics.
//
// Determinism contract (same as Session's worker_threads contract): slot k
// always runs the session template with seed `session.seed + k`, results
// land in slot k, and every aggregate is folded serially in slot order —
// the FleetResult is bit-identical for every `parallel_sessions` value.
//
// Supervision contract: a throwing session never escapes run_fleet — the
// slot is recorded as failed (typed SlotOutcome, see core/supervisor.h),
// optionally retried with a deterministically derived seed, and the
// healthy slots still fold into the aggregates. With `checkpoint_file`
// set, every finished slot is persisted (core/checkpoint.h) and a later
// run with `resume_file` skips the stored slots, producing a FleetResult
// bit-identical to an uninterrupted run.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/session.h"
#include "core/supervisor.h"

namespace volcast::core {

struct FleetConfig {
  /// Per-session template. Slot k runs it with `seed + k`; everything else
  /// (users, duration, ablation switches, policy overrides) is shared.
  /// Leave `telemetry` and `tick_observer` null/empty — per-slot sinks
  /// cannot be shared across concurrent sessions.
  SessionConfig session;
  /// Number of sessions in the fleet.
  std::size_t sessions = 1;
  /// Sessions simulated concurrently: 0 = hardware concurrency, 1 = fully
  /// serial. Outer parallelism only changes wall time, never results.
  std::size_t parallel_sessions = 0;
  /// A user counts as "supported" when its displayed FPS reaches this
  /// floor (the paper's bar for smooth 30 FPS playback).
  double supported_fps_threshold = 29.5;
  /// Build one shared WorkloadBundle for the whole fleet when the template
  /// pins the content (content_seed != 0) and doesn't already carry a
  /// bundle: every slot then reads the same immutable artifact set instead
  /// of rebuilding its own ~0.3 s of setup. Results are bit-identical
  /// either way (the bundle holds only pure functions of the workload
  /// identity), so this knob — like parallel_sessions — is excluded from
  /// the checkpoint fingerprint; set it false to force the legacy
  /// per-slot setup path, e.g. for A/B determinism tests.
  bool share_bundle = true;

  /// Retry / deadline policy (defaults disable both; failures are still
  /// caught and recorded rather than aborting the fleet).
  SupervisorConfig supervision;
  /// When non-empty, rewrite this file after every finished slot with all
  /// finished slots so far (atomic replace; see core/checkpoint.h).
  std::string checkpoint_file;
  /// When non-empty, restore the slots stored in this file verbatim and
  /// only run the missing ones. Throws CheckpointError when the file is
  /// invalid or was produced by a different configuration. May name the
  /// same file as `checkpoint_file` to continue a run in place.
  std::string resume_file;
  /// Test hook: abort with core::FleetKilled once this many *newly run*
  /// slots have finished and checkpointed (0 = off). Simulates an operator
  /// kill mid-fleet; exact with parallel_sessions == 1, best-effort
  /// otherwise (slots already in flight still complete).
  std::size_t kill_after_slots = 0;

  /// Throws std::invalid_argument on an invalid fleet or session config.
  void validate() const;
};

/// Fleet outcome: per-session results (slot k = seed + k) + aggregates.
struct FleetResult {
  std::vector<SessionResult> sessions;
  /// Per-slot supervision record, same indexing as `sessions`. A slot that
  /// did not complete keeps a default SessionResult and is excluded from
  /// every aggregate below.
  std::vector<SlotOutcome> outcomes;

  /// Slots that produced no result (failed + deadline-exceeded +
  /// quarantined).
  std::size_t aborted_slots = 0;
  /// Completed slots that needed more than one attempt.
  std::size_t retried_slots = 0;
  /// Slots that exhausted max_retries.
  std::size_t quarantined_slots = 0;

  // Aggregates over every user of every *completed* session, folded in
  // slot order.
  std::size_t total_users = 0;
  /// Users whose displayed FPS met the supported threshold.
  std::size_t supported_users = 0;
  double mean_displayed_fps = 0.0;
  double mean_stall_ratio = 0.0;
  double mean_quality_tier = 0.0;
  /// Displayed-FPS distribution across users (p5 pessimum, median, p95).
  double p5_displayed_fps = 0.0;
  double p50_displayed_fps = 0.0;
  double p95_displayed_fps = 0.0;
  /// Stall-time distribution across users.
  double p95_stall_time_s = 0.0;
  /// Tile assembly totals summed over completed slots (all zero under the
  /// default "off" tiling policy). With the "shared" tiling policy
  /// run_fleet hands every slot one shared cache (unless the template
  /// already carries one), so cross-slot stitching shows up as wall-clock
  /// savings while these logical totals stay bit-identical at any
  /// parallel_sessions value.
  vv::TileReport tiles;
};

/// Runs the whole fleet. Deterministic for a given config at any
/// `parallel_sessions` value.
[[nodiscard]] FleetResult run_fleet(const FleetConfig& config);

}  // namespace volcast::core
