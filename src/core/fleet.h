// Multi-session fleet runner: N independently-seeded sessions (e.g. N
// rooms of the same venue, or N Monte-Carlo repetitions of one deployment)
// executed across a thread pool, with slot-indexed results and aggregate
// fleet statistics.
//
// Determinism contract (same as Session's worker_threads contract): slot k
// always runs the session template with seed `session.seed + k`, results
// land in slot k, and every aggregate is folded serially in slot order —
// the FleetResult is bit-identical for every `parallel_sessions` value.
#pragma once

#include <cstddef>
#include <vector>

#include "core/session.h"

namespace volcast::core {

struct FleetConfig {
  /// Per-session template. Slot k runs it with `seed + k`; everything else
  /// (users, duration, ablation switches, policy overrides) is shared.
  /// Leave `telemetry` and `tick_observer` null/empty — per-slot sinks
  /// cannot be shared across concurrent sessions.
  SessionConfig session;
  /// Number of sessions in the fleet.
  std::size_t sessions = 1;
  /// Sessions simulated concurrently: 0 = hardware concurrency, 1 = fully
  /// serial. Outer parallelism only changes wall time, never results.
  std::size_t parallel_sessions = 0;
  /// A user counts as "supported" when its displayed FPS reaches this
  /// floor (the paper's bar for smooth 30 FPS playback).
  double supported_fps_threshold = 29.5;

  /// Throws std::invalid_argument on an invalid fleet or session config.
  void validate() const;
};

/// Fleet outcome: per-session results (slot k = seed + k) + aggregates.
struct FleetResult {
  std::vector<SessionResult> sessions;

  // Aggregates over every user of every session, folded in slot order.
  std::size_t total_users = 0;
  /// Users whose displayed FPS met the supported threshold.
  std::size_t supported_users = 0;
  double mean_displayed_fps = 0.0;
  double mean_stall_ratio = 0.0;
  double mean_quality_tier = 0.0;
  /// Displayed-FPS distribution across users (p5 pessimum, median, p95).
  double p5_displayed_fps = 0.0;
  double p50_displayed_fps = 0.0;
  double p95_displayed_fps = 0.0;
  /// Stall-time distribution across users.
  double p95_stall_time_s = 0.0;
};

/// Runs the whole fleet. Deterministic for a given config at any
/// `parallel_sessions` value.
[[nodiscard]] FleetResult run_fleet(const FleetConfig& config);

}  // namespace volcast::core
