#include "core/rate_adapter.h"

#include <algorithm>

#include "obs/metrics.h"

namespace volcast::core {

const char* to_string(AdaptationPolicy policy) noexcept {
  switch (policy) {
    case AdaptationPolicy::kNone:
      return "none";
    case AdaptationPolicy::kBufferOnly:
      return "buffer-only";
    case AdaptationPolicy::kCrossLayer:
      return "cross-layer";
  }
  return "?";
}

RateAdapter::RateAdapter(RateAdapterConfig config) : config_(config) {
  if (config_.metrics != nullptr) {
    decisions_ = &config_.metrics->counter("rate.decisions");
    upgrades_ = &config_.metrics->counter("rate.upgrades");
    downgrades_ = &config_.metrics->counter("rate.downgrades");
    prefetches_ = &config_.metrics->counter("rate.prefetches");
  }
}

AdaptationDecision RateAdapter::decide(const AdaptationInput& input) const {
  AdaptationDecision out = decide_impl(input);
  if (decisions_ != nullptr) {
    decisions_->add();
    if (out.tier > input.current_tier) upgrades_->add();
    if (out.tier < input.current_tier) downgrades_->add();
    if (out.prefetch) prefetches_->add();
  }
  return out;
}

AdaptationDecision RateAdapter::decide_impl(
    const AdaptationInput& input) const {
  AdaptationDecision out;
  const std::size_t top = input.tier_count > 0 ? input.tier_count - 1 : 0;
  out.tier = std::min(input.current_tier, top);

  switch (config_.policy) {
    case AdaptationPolicy::kNone:
      return out;

    case AdaptationPolicy::kBufferOnly: {
      // Classic buffer thresholds: panic -> lowest, comfortable -> step up.
      if (input.buffer_s < config_.low_buffer_s) {
        out.tier = 0;
      } else if (input.buffer_s > config_.high_buffer_s && out.tier < top) {
        out.tier = out.tier + 1;
      }
      out.prefetch = input.buffer_s < config_.low_buffer_s;
      return out;
    }

    case AdaptationPolicy::kCrossLayer: {
      // Pick the highest tier the predicted bandwidth affords (with
      // headroom); the buffer acts as a brake on upgrades and a floor
      // against panic downgrades.
      std::size_t affordable = 0;
      for (std::size_t q = 0; q < input.tier_count; ++q) {
        if (input.predicted_mbps >=
            input.demand_mbps[q] * config_.headroom)
          affordable = q;
      }
      if (affordable > input.current_tier) {
        // Upgrade one step at a time, and only with a healthy buffer.
        out.tier = input.buffer_s >= config_.high_buffer_s
                       ? input.current_tier + 1
                       : input.current_tier;
      } else {
        out.tier = affordable;
      }
      out.tier = std::min(out.tier, top);

      // Residual loss after FEC: the wire is telling us the parity budget
      // is exhausted. Block upgrades first; past the shed threshold, drop
      // a tier so frames shrink back under what FEC can repair. Exact
      // no-op at residual_loss == 0.
      if (input.residual_loss > config_.loss_hold &&
          out.tier > input.current_tier)
        out.tier = input.current_tier;
      if (input.residual_loss > config_.loss_shed && out.tier > 0 &&
          out.tier >= input.current_tier)
        out.tier = input.current_tier > 0 ? input.current_tier - 1 : 0;

      if (input.blockage_forecast) {
        // Proactive reactions (Section 4.1 / 4.3): pull content forward
        // before the rate collapses, consider a reflection beam, and let
        // the scheduler regroup around the degraded link.
        out.prefetch = true;
        out.switch_beam = true;
        out.regroup = true;
      }
      if (input.buffer_s < config_.low_buffer_s) {
        out.prefetch = true;
        out.tier = 0;
      }
      return out;
    }
  }
  return out;
}

}  // namespace volcast::core
