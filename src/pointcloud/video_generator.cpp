#include "pointcloud/video_generator.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>

#include "common/rng.h"
#include "geometry/quat.h"

namespace volcast::vv {
namespace {

using geo::Quat;
using geo::Vec3;

/// Rigid body part: an ellipsoid shell swinging about a pivot.
struct PartSpec {
  Vec3 pivot;          // joint the part rotates about (body frame, metres)
  Vec3 offset;         // ellipsoid center relative to the pivot
  Vec3 radii;          // ellipsoid semi-axes
  Vec3 swing_axis;     // rotation axis for the gait swing
  double amplitude;    // swing amplitude (radians)
  double phase;        // gait phase offset (radians)
  double weight;       // share of the point budget (~ surface area)
  std::uint8_t r, g, b;
};

// A ~1.85 m tall figure standing at the origin, +Z up, facing +X.
// Left/right limbs swing in anti-phase; lower limbs lead the uppers,
// a crude but visually plausible gait.
constexpr double kPi = std::numbers::pi;
const std::array<PartSpec, 10> kParts{{
    // pivot              offset              radii                axis     amp    phase   w    color
    {{0, 0, 1.15}, {0, 0, 0.28}, {0.16, 0.22, 0.33}, {0, 1, 0}, 0.05, 0.0, 3.0, 90, 110, 70},   // torso
    {{0, 0, 1.62}, {0, 0, 0.16}, {0.11, 0.11, 0.13}, {0, 1, 0}, 0.08, 0.3, 1.0, 224, 172, 140}, // head
    {{0, 0.26, 1.52}, {0, 0.02, -0.16}, {0.06, 0.06, 0.17}, {0, 1, 0}, 0.55, 0.0, 0.8, 80, 100, 60},   // L upper arm
    {{0, -0.26, 1.52}, {0, -0.02, -0.16}, {0.06, 0.06, 0.17}, {0, 1, 0}, 0.55, kPi, 0.8, 80, 100, 60}, // R upper arm
    {{0, 0.28, 1.20}, {0.02, 0.02, -0.16}, {0.05, 0.05, 0.16}, {0, 1, 0}, 0.80, 0.3, 0.7, 210, 160, 130},   // L forearm
    {{0, -0.28, 1.20}, {0.02, -0.02, -0.16}, {0.05, 0.05, 0.16}, {0, 1, 0}, 0.80, kPi + 0.3, 0.7, 210, 160, 130}, // R forearm
    {{0, 0.10, 0.95}, {0, 0.01, -0.24}, {0.08, 0.08, 0.25}, {0, 1, 0}, 0.45, kPi, 1.2, 60, 60, 90},    // L thigh
    {{0, -0.10, 0.95}, {0, -0.01, -0.24}, {0.08, 0.08, 0.25}, {0, 1, 0}, 0.45, 0.0, 1.2, 60, 60, 90},  // R thigh
    {{0, 0.10, 0.48}, {0.01, 0, -0.23}, {0.06, 0.06, 0.24}, {0, 1, 0}, 0.60, kPi + 0.4, 1.0, 40, 40, 60},  // L shin
    {{0, -0.10, 0.48}, {0.01, 0, -0.23}, {0.06, 0.06, 0.24}, {0, 1, 0}, 0.60, 0.4, 1.0, 40, 40, 60},   // R shin
}};

}  // namespace

VideoGenerator::VideoGenerator(VideoConfig config) : config_(config) {
  // Sample each part's shell once; frames reuse the samples under rigid
  // transforms, giving the temporal coherence a real capture has.
  double total_weight = 0.0;
  for (const PartSpec& part : kParts) total_weight += part.weight;

  Rng rng(config_.seed);
  samples_.reserve(config_.points_per_frame);
  for (std::uint16_t part_id = 0; part_id < kParts.size(); ++part_id) {
    const PartSpec& part = kParts[part_id];
    const auto budget = static_cast<std::size_t>(
        std::round(static_cast<double>(config_.points_per_frame) *
                   part.weight / total_weight));
    for (std::size_t i = 0; i < budget && samples_.size() < config_.points_per_frame;
         ++i) {
      // Uniform direction on the unit sphere, scaled by the semi-axes and
      // jittered slightly in depth so the shell has thickness.
      Vec3 dir{rng.normal(), rng.normal(), rng.normal()};
      dir = dir.normalized();
      const double shell = 1.0 - 0.06 * rng.uniform();
      PartSample s;
      s.part = part_id;
      s.local = part.offset + Vec3{dir.x * part.radii.x * shell,
                                   dir.y * part.radii.y * shell,
                                   dir.z * part.radii.z * shell};
      auto shade = [&rng](std::uint8_t base) {
        const double v = base + rng.normal(0.0, 4.0);
        return static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
      };
      s.r = shade(part.r);
      s.g = shade(part.g);
      s.b = shade(part.b);
      samples_.push_back(s);
    }
  }
  // Rounding may leave the budget a few points short; top up from the torso.
  Rng top_up = rng.fork();
  while (samples_.size() < config_.points_per_frame) {
    PartSample s = samples_[static_cast<std::size_t>(
        top_up.uniform_int(0, static_cast<std::int64_t>(samples_.size()) - 1))];
    samples_.push_back(s);
  }
}

PointCloud VideoGenerator::frame(std::size_t index) const {
  const std::size_t wrapped =
      config_.frame_count > 0 ? index % config_.frame_count : index;
  const double t = static_cast<double>(wrapped) / config_.fps;
  const double gait = 2.0 * kPi * config_.walk_rate_hz * t;

  // Whole-body motion: vertical bob and a slow yaw turn.
  const double bob = 0.015 * std::sin(2.0 * gait);
  const double yaw =
      config_.yaw_amplitude_rad * std::sin(2.0 * kPi * 0.05 * t);
  const Quat body_rot = Quat::from_axis_angle({0, 0, 1}, yaw);

  std::array<Quat, kParts.size()> part_rot;
  for (std::size_t p = 0; p < kParts.size(); ++p) {
    const PartSpec& part = kParts[p];
    const double angle = part.amplitude * std::sin(gait + part.phase);
    part_rot[p] = Quat::from_axis_angle(part.swing_axis, angle);
  }

  PointCloud cloud;
  cloud.reserve(samples_.size());
  for (const PartSample& s : samples_) {
    const PartSpec& part = kParts[s.part];
    Vec3 p = part.pivot + part_rot[s.part].rotate(s.local);
    p = body_rot.rotate(p);
    p.z += bob;
    cloud.add({p, s.r, s.g, s.b});
  }
  return cloud;
}

geo::Aabb VideoGenerator::content_bounds() const noexcept {
  // Generous analytic bound: arm span with full swing stays within 0.8 m of
  // the axis; the head shell plus vertical bob tops out just under 2.0 m.
  return {{-0.8, -0.8, 0.0}, {0.8, 0.8, 2.0}};
}

geo::Vec3 VideoGenerator::content_center() const noexcept {
  return {0.0, 0.0, 1.1};
}

PointCloud thin(const PointCloud& cloud, double fraction) {
  if (fraction >= 1.0) return cloud;
  PointCloud out;
  if (fraction <= 0.0) return out;
  const auto threshold = static_cast<std::uint32_t>(
      fraction * 4294967296.0);
  out.reserve(static_cast<std::size_t>(
      fraction * static_cast<double>(cloud.size())));
  const auto& pts = cloud.points();
  for (std::uint32_t i = 0; i < pts.size(); ++i) {
    // Knuth multiplicative hash of the index: stable, order-free thinning.
    const std::uint32_t h = i * 2654435761u;
    if (h < threshold) out.add(pts[i]);
  }
  return out;
}

}  // namespace volcast::vv
