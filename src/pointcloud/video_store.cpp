#include "pointcloud/video_store.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/endian.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "common/units.h"

namespace volcast::vv {

std::vector<QualityTier> paper_quality_tiers() {
  return {{"330K", 330'000}, {"430K", 430'000}, {"550K", 550'000}};
}

namespace {

/// Encodes each occupied cell of `cloud` exactly; returns per-cell byte and
/// point counts, and appends (points, bytes) pairs for the size model.
void encode_frame_exact(const PointCloud& cloud, const CellGrid& grid,
                        const VideoStoreConfig& config,
                        std::vector<std::uint32_t>& bytes_out,
                        std::vector<std::uint32_t>& points_out,
                        std::vector<double>* model_points,
                        std::vector<double>* model_bytes) {
  const auto buckets = grid.assign(cloud);
  bytes_out.assign(grid.cell_count(), 0);
  points_out.assign(grid.cell_count(), 0);
  const auto& pts = cloud.points();
  for (CellId c = 0; c < buckets.size(); ++c) {
    const auto& indices = buckets[c];
    if (indices.empty()) continue;
    PointCloud cell_cloud;
    cell_cloud.reserve(indices.size());
    for (std::uint32_t i : indices) cell_cloud.add(pts[i]);
    const auto blob = config.codec_kind == StoreCodec::kOctree
                          ? octree_encode(cell_cloud, config.octree)
                          : encode(cell_cloud, config.codec);
    bytes_out[c] = static_cast<std::uint32_t>(blob.size());
    points_out[c] = static_cast<std::uint32_t>(indices.size());
    if (model_points != nullptr) {
      model_points->push_back(static_cast<double>(indices.size()));
      model_bytes->push_back(static_cast<double>(blob.size()));
    }
  }
}

}  // namespace

VideoStore::VideoStore(const VideoGenerator& generator, const CellGrid& grid,
                       VideoStoreConfig config)
    : config_(std::move(config)), grid_(&grid), fps_(generator.config().fps) {
  if (config_.tiers.empty())
    throw std::invalid_argument("VideoStore: no quality tiers");
  const std::size_t master_points = generator.config().points_per_frame;
  for (const QualityTier& tier : config_.tiers) {
    if (tier.points_per_frame == 0 || tier.points_per_frame > master_points)
      throw std::invalid_argument(
          "VideoStore: tier point count must be in (0, generator points]");
  }

  const std::size_t n_frames = generator.config().frame_count;
  const std::size_t n_tiers = config_.tiers.size();
  frames_.resize(n_frames);

  // Per-tier linear size model fitted from exactly encoded sample frames.
  std::vector<std::vector<double>> model_points(n_tiers);
  std::vector<std::vector<double>> model_bytes(n_tiers);
  std::vector<LinearFit> fits(n_tiers);
  const std::size_t sample_count =
      config_.exact ? n_frames
                    : std::min(std::max<std::size_t>(config_.sample_frames, 1),
                               n_frames);

  // frame(f) is a pure function of the generator config, and each frame
  // fills only its own slot of frames_, so frames precompute in parallel
  // with bit-identical tables. Only the size-model fit couples frames: the
  // sample frames run serially first (their (points, bytes) pairs feed the
  // fit in frame order), then the modeled remainder fans out.
  const auto build_frame = [&](std::size_t f, bool exact_frame,
                               std::vector<double>* mp,
                               std::vector<double>* mb) {
    const PointCloud master = generator.frame(f);
    FrameSizes& sizes = frames_[f];
    sizes.bytes.resize(n_tiers);
    sizes.points.resize(n_tiers);
    for (std::size_t q = 0; q < n_tiers; ++q) {
      const double fraction =
          static_cast<double>(config_.tiers[q].points_per_frame) /
          static_cast<double>(master_points);
      const PointCloud cloud = thin(master, fraction);
      if (exact_frame) {
        encode_frame_exact(cloud, grid, config_, sizes.bytes[q],
                           sizes.points[q], mp != nullptr ? &mp[q] : nullptr,
                           mb != nullptr ? &mb[q] : nullptr);
      } else {
        // Modeled sizing: occupancy is exact, bytes come from the fit.
        const auto counts = grid.occupancy(cloud);
        sizes.points[q].assign(counts.begin(), counts.end());
        sizes.bytes[q].assign(grid.cell_count(), 0);
        for (CellId c = 0; c < counts.size(); ++c) {
          if (counts[c] == 0) continue;
          const double predicted = fits[q].at(static_cast<double>(counts[c]));
          const double floor_bytes = static_cast<double>(kCodecHeaderBytes);
          sizes.bytes[q][c] = static_cast<std::uint32_t>(
              std::max(predicted, floor_bytes));
        }
      }
    }
  };

  if (config_.exact) {
    // Every frame is exact and independent (no size model to fit).
    common::ThreadPool::run(config_.pool, n_frames, [&](std::size_t f) {
      build_frame(f, true, nullptr, nullptr);
    });
  } else {
    for (std::size_t f = 0; f < sample_count; ++f)
      build_frame(f, true, model_points.data(), model_bytes.data());
    for (std::size_t q = 0; q < n_tiers; ++q)
      fits[q] = fit_line(model_points[q], model_bytes[q]);
    common::ThreadPool::run(
        config_.pool, n_frames - sample_count,
        [&](std::size_t i) {
          build_frame(sample_count + i, false, nullptr, nullptr);
        });
  }
}

std::size_t VideoStore::cell_bytes(std::size_t frame, std::size_t tier,
                                   CellId cell) const {
  return frames_.at(frame).bytes.at(tier).at(cell);
}

std::uint32_t VideoStore::cell_points(std::size_t frame, std::size_t tier,
                                      CellId cell) const {
  return frames_.at(frame).points.at(tier).at(cell);
}

std::size_t VideoStore::frame_bytes(std::size_t frame,
                                    std::size_t tier) const {
  const auto& bytes = frames_.at(frame).bytes.at(tier);
  std::size_t total = 0;
  for (std::uint32_t b : bytes) total += b;
  return total;
}

double VideoStore::tier_bitrate_mbps(std::size_t tier) const {
  if (frames_.empty()) return 0.0;
  double total_bits = 0.0;
  for (std::size_t f = 0; f < frames_.size(); ++f)
    total_bits += byte_bits(static_cast<double>(frame_bytes(f, tier)));
  const double mean_bits_per_frame =
      total_bits / static_cast<double>(frames_.size());
  return bits_to_megabits(mean_bits_per_frame * fps_);
}

double VideoStore::tier_bits_per_point(std::size_t tier) const {
  double bits = 0.0;
  double points = 0.0;
  for (const FrameSizes& f : frames_) {
    for (std::uint32_t b : f.bytes.at(tier)) bits += byte_bits(b);
    for (std::uint32_t n : f.points.at(tier)) points += n;
  }
  return points > 0.0 ? bits / points : 0.0;
}

namespace {

constexpr std::uint8_t kStoreMagic[4] = {'V', 'S', 'T', 'R'};
constexpr std::uint32_t kStoreVersion = 1;
constexpr std::size_t kMaxTiers = 64;
constexpr std::size_t kMaxFrames = 1u << 20;
constexpr std::size_t kMaxNameLen = 256;

std::uint64_t fnv1a(std::span<const std::uint8_t> data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

using common::put_u32;
using common::put_u64;

/// Bounds-checked little-endian reader; every decode failure throws.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint32_t u32() {
    need(4);
    const std::uint32_t v = common::get_u32(data_, pos_);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    const std::uint64_t v = common::get_u64(data_, pos_);
    pos_ += 8;
    return v;
  }
  std::string str(std::size_t len) {
    need(len);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return s;
  }
  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }

 private:
  void need(std::size_t bytes) const {
    if (pos_ + bytes > data_.size())
      throw std::runtime_error("VideoStore: truncated blob");
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> VideoStore::serialize() const {
  std::vector<std::uint8_t> out;
  for (std::uint8_t b : kStoreMagic) out.push_back(b);
  put_u32(out, kStoreVersion);
  common::put_f64(out, fps_);
  put_u32(out, static_cast<std::uint32_t>(config_.tiers.size()));
  put_u32(out, static_cast<std::uint32_t>(frames_.size()));
  put_u64(out, grid_ != nullptr ? grid_->cell_count() : 0);
  for (const QualityTier& tier : config_.tiers) {
    put_u32(out, static_cast<std::uint32_t>(tier.name.size()));
    out.insert(out.end(), tier.name.begin(), tier.name.end());
    put_u64(out, tier.points_per_frame);
  }
  for (const FrameSizes& frame : frames_) {
    for (std::size_t q = 0; q < config_.tiers.size(); ++q) {
      for (std::uint32_t b : frame.bytes.at(q)) put_u32(out, b);
      for (std::uint32_t p : frame.points.at(q)) put_u32(out, p);
    }
  }
  put_u64(out, fnv1a(out));
  return out;
}

VideoStore VideoStore::deserialize(const CellGrid& grid,
                                   std::span<const std::uint8_t> blob) {
  if (blob.size() < sizeof kStoreMagic + 8)
    throw std::runtime_error("VideoStore: blob too small");
  Reader checksum_reader(blob.subspan(blob.size() - 8));
  const std::uint64_t expected = checksum_reader.u64();
  if (fnv1a(blob.subspan(0, blob.size() - 8)) != expected)
    throw std::runtime_error("VideoStore: checksum mismatch");

  Reader in(blob.subspan(0, blob.size() - 8));
  if (std::memcmp(in.str(4).data(), kStoreMagic, 4) != 0)
    throw std::runtime_error("VideoStore: bad magic");
  if (in.u32() != kStoreVersion)
    throw std::runtime_error("VideoStore: unsupported version");
  VideoStore store;
  const double fps = std::bit_cast<double>(in.u64());
  if (!(fps > 0.0) || !std::isfinite(fps))
    throw std::runtime_error("VideoStore: invalid fps");
  store.fps_ = fps;
  const std::size_t n_tiers = in.u32();
  const std::size_t n_frames = in.u32();
  const std::uint64_t n_cells = in.u64();
  if (n_tiers == 0 || n_tiers > kMaxTiers)
    throw std::runtime_error("VideoStore: tier count out of range");
  if (n_frames > kMaxFrames)
    throw std::runtime_error("VideoStore: frame count out of range");
  if (n_cells != grid.cell_count())
    throw std::runtime_error("VideoStore: cell count does not match grid");
  store.config_.tiers.clear();
  for (std::size_t q = 0; q < n_tiers; ++q) {
    const std::size_t name_len = in.u32();
    if (name_len > kMaxNameLen)
      throw std::runtime_error("VideoStore: tier name too long");
    QualityTier tier;
    tier.name = in.str(name_len);
    tier.points_per_frame = in.u64();
    store.config_.tiers.push_back(std::move(tier));
  }
  store.grid_ = &grid;
  store.frames_.resize(n_frames);
  for (FrameSizes& frame : store.frames_) {
    frame.bytes.resize(n_tiers);
    frame.points.resize(n_tiers);
    for (std::size_t q = 0; q < n_tiers; ++q) {
      frame.bytes[q].resize(n_cells);
      for (std::uint64_t c = 0; c < n_cells; ++c) frame.bytes[q][c] = in.u32();
      frame.points[q].resize(n_cells);
      for (std::uint64_t c = 0; c < n_cells; ++c)
        frame.points[q][c] = in.u32();
    }
  }
  if (in.pos() != blob.size() - 8)
    throw std::runtime_error("VideoStore: trailing bytes in blob");
  return store;
}

}  // namespace volcast::vv
