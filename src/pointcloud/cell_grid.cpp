#include "pointcloud/cell_grid.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace volcast::vv {

CellGrid::CellGrid(const geo::Aabb& content_bounds, double cell_size_m)
    : bounds_(content_bounds), cell_size_(cell_size_m) {
  if (!(cell_size_m > 0.0))
    throw std::invalid_argument("CellGrid: cell size must be positive");
  if (!content_bounds.valid())
    throw std::invalid_argument("CellGrid: invalid content bounds");
  const geo::Vec3 extent = content_bounds.extent();
  auto cells_along = [cell_size_m](double len) {
    return std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::ceil(len / cell_size_m - 1e-9)));
  };
  nx_ = cells_along(extent.x);
  ny_ = cells_along(extent.y);
  nz_ = cells_along(extent.z);
  if (cell_count() > 16u * 1024u * 1024u)
    throw std::invalid_argument("CellGrid: too many cells");
}

geo::Aabb CellGrid::cell_bounds(CellId id) const {
  if (id >= cell_count()) throw std::out_of_range("CellGrid::cell_bounds");
  const std::uint32_t ix = id % nx_;
  const std::uint32_t iy = (id / nx_) % ny_;
  const std::uint32_t iz = id / (nx_ * ny_);
  const geo::Vec3 lo = bounds_.lo + geo::Vec3{ix * cell_size_, iy * cell_size_,
                                              iz * cell_size_};
  return {lo, lo + geo::Vec3{cell_size_, cell_size_, cell_size_}};
}

geo::Vec3 CellGrid::cell_center(CellId id) const {
  return cell_bounds(id).center();
}

CellId CellGrid::locate(const geo::Vec3& p) const noexcept {
  auto clamp_axis = [this](double v, double lo, std::uint32_t n) {
    const auto raw = static_cast<std::int64_t>((v - lo) / cell_size_);
    return static_cast<std::uint32_t>(
        std::clamp<std::int64_t>(raw, 0, static_cast<std::int64_t>(n) - 1));
  };
  const std::uint32_t ix = clamp_axis(p.x, bounds_.lo.x, nx_);
  const std::uint32_t iy = clamp_axis(p.y, bounds_.lo.y, ny_);
  const std::uint32_t iz = clamp_axis(p.z, bounds_.lo.z, nz_);
  return ix + nx_ * (iy + ny_ * iz);
}

std::vector<std::vector<std::uint32_t>> CellGrid::assign(
    const PointCloud& cloud) const {
  std::vector<std::vector<std::uint32_t>> buckets(cell_count());
  const auto& pts = cloud.points();
  for (std::uint32_t i = 0; i < pts.size(); ++i)
    buckets[locate(pts[i].position)].push_back(i);
  return buckets;
}

std::vector<std::uint32_t> CellGrid::occupancy(const PointCloud& cloud) const {
  std::vector<std::uint32_t> counts(cell_count(), 0);
  for (const Point& p : cloud.points()) ++counts[locate(p.position)];
  return counts;
}

}  // namespace volcast::vv
