// Spatial partition of a volumetric video into independently prefetchable,
// independently decodable cells (the paper partitions into 25/50/100 cm
// cubes; Section 3, Fig. 1).
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/aabb.h"
#include "pointcloud/point_cloud.h"

namespace volcast::vv {

/// Index of a cell within a CellGrid (linear, row-major x-fastest).
using CellId = std::uint32_t;

/// Uniform grid of cubic cells covering a content bounding box.
///
/// The grid geometry is fixed for the whole video (built from the union of
/// all frame bounds) so that cell ids are stable across frames — a
/// requirement for visibility maps and per-cell rate adaptation.
///
/// Thread safety: immutable after construction; every member function is
/// const and touches only construction-time state, so concurrent queries
/// from any number of threads are race-free (a shared core::WorkloadBundle
/// relies on this). Note VideoStore aliases the grid by pointer — keep the
/// grid alive for as long as any store built on it.
class CellGrid {
 public:
  /// Covers `content_bounds` with cubes of edge `cell_size_m`.
  /// Throws std::invalid_argument for non-positive sizes or invalid bounds.
  CellGrid(const geo::Aabb& content_bounds, double cell_size_m);

  [[nodiscard]] double cell_size_m() const noexcept { return cell_size_; }
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return static_cast<std::size_t>(nx_) * ny_ * nz_;
  }
  [[nodiscard]] std::uint32_t nx() const noexcept { return nx_; }
  [[nodiscard]] std::uint32_t ny() const noexcept { return ny_; }
  [[nodiscard]] std::uint32_t nz() const noexcept { return nz_; }
  [[nodiscard]] const geo::Aabb& bounds() const noexcept { return bounds_; }

  /// Axis-aligned box of the given cell.
  [[nodiscard]] geo::Aabb cell_bounds(CellId id) const;

  /// Center point of the given cell.
  [[nodiscard]] geo::Vec3 cell_center(CellId id) const;

  /// Cell containing `p`; points on the outer boundary are clamped into the
  /// closest edge cell so every content point maps somewhere.
  [[nodiscard]] CellId locate(const geo::Vec3& p) const noexcept;

  /// Buckets every point of `cloud` by containing cell.
  /// Result has cell_count() entries; entry c lists indices into
  /// cloud.points().
  [[nodiscard]] std::vector<std::vector<std::uint32_t>> assign(
      const PointCloud& cloud) const;

  /// Per-cell point counts only (cheaper than assign()).
  [[nodiscard]] std::vector<std::uint32_t> occupancy(
      const PointCloud& cloud) const;

 private:
  geo::Aabb bounds_;
  double cell_size_;
  std::uint32_t nx_ = 0;
  std::uint32_t ny_ = 0;
  std::uint32_t nz_ = 0;
};

}  // namespace volcast::vv
