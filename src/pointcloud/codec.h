// Point-cloud codec: the role Google Draco plays in the paper's pipeline.
//
// Pipeline (encode): quantize positions to `quant_bits` per axis over the
// cloud bounds -> sort by Morton code -> delta the codes -> entropy-code the
// deltas and per-channel color deltas with an adaptive binary range coder.
//
// Properties the streaming system relies on:
//  * each encoded blob is self-contained (a cell can be decoded alone),
//  * decode(encode(x)) reproduces the quantized cloud exactly (lossless in
//    the quantized domain; position error is bounded by half a quantization
//    step),
//  * the compressed rate lands in the ~20-25 bits/point regime that the
//    paper's 235-364 Mbps bitrates imply for 330K-550K point frames.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pointcloud/point_cloud.h"

namespace volcast::vv {

/// Codec tuning knobs.
struct CodecConfig {
  /// Target spatial resolution (quantization step) in metres. When > 0 the
  /// per-axis bit depth is derived from the cloud extent so that the step is
  /// at most this value (capped at 21 bits); voxelized datasets such as 8i
  /// are defined by resolution, not bit depth, and deriving bits per blob
  /// keeps small cells from wasting bits. When <= 0, `quant_bits` is used
  /// directly.
  double resolution_m = 0.0012;
  /// Fallback / explicit position quantization bits per axis (1..21).
  unsigned quant_bits = 11;
  /// When false, colors are dropped and reconstructed as mid-grey; used by
  /// ablations to isolate geometry cost.
  bool encode_colors = true;
};

/// Encodes a cloud into a self-contained blob. Empty clouds are valid.
/// Throws std::invalid_argument for out-of-range quant_bits.
[[nodiscard]] std::vector<std::uint8_t> encode(const PointCloud& cloud,
                                               const CodecConfig& config = {});

/// Decodes a blob produced by encode(). Throws std::runtime_error on a
/// malformed header.
[[nodiscard]] PointCloud decode(std::span<const std::uint8_t> data);

/// Upper-bound size of the fixed header, for capacity planning.
inline constexpr std::size_t kCodecHeaderBytes = 4 + 4 + 1 + 1 + 6 * 8;

}  // namespace volcast::vv
