// Procedural volumetric-video source.
//
// Stands in for the 8i "soldier" dynamic voxelized point cloud used by the
// paper (Section 3): an articulated human figure (head, torso, limbs built
// from ellipsoid shells) performing a walk-in-place cycle at 30 FPS. What the
// experiments need from the dataset — human-shaped cell occupancy, temporal
// coherence, 330K/430K/550K points per frame, ~2 m spatial extent — is all
// reproduced; see DESIGN.md substitution table.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/aabb.h"
#include "pointcloud/point_cloud.h"

namespace volcast::vv {

/// Generator parameters.
struct VideoConfig {
  std::size_t points_per_frame = 550'000;
  std::size_t frame_count = 300;
  double fps = 30.0;
  std::uint64_t seed = 1;
  /// Walk-cycle rate; one full gait cycle per 1/rate seconds.
  double walk_rate_hz = 0.9;
  /// Slow whole-body yaw oscillation amplitude (radians), mimicking the
  /// subject turning in place.
  double yaw_amplitude_rad = 0.5;
};

/// Deterministic articulated-figure video. `frame(i)` is a pure function of
/// (config, i): the same index always yields the same cloud, so streaming
/// components can regenerate frames instead of buffering them.
///
/// Thread safety: the generator holds only its (const) config, so frame()
/// and every other member may be called concurrently without locking —
/// sessions sharing one core::WorkloadBundle do exactly that.
class VideoGenerator {
 public:
  explicit VideoGenerator(VideoConfig config);

  [[nodiscard]] const VideoConfig& config() const noexcept { return config_; }

  /// Generates frame `index` (wraps modulo frame_count for looping playback).
  [[nodiscard]] PointCloud frame(std::size_t index) const;

  /// Analytic bound that contains the figure in every frame; used to build
  /// the stable CellGrid.
  [[nodiscard]] geo::Aabb content_bounds() const noexcept;

  /// Approximate centroid of the content (the "look-at" target for traces).
  [[nodiscard]] geo::Vec3 content_center() const noexcept;

 private:
  struct PartSample {
    std::uint16_t part = 0;
    geo::Vec3 local{};       // offset from the part pivot, already scaled
    std::uint8_t r = 0, g = 0, b = 0;
  };

  VideoConfig config_;
  std::vector<PartSample> samples_;  // one entry per output point
};

/// Deterministically thins a cloud to ~`fraction` of its points, uniformly
/// across the cloud (hash-based, stable under re-runs). Used to derive the
/// 430K / 330K quality tiers from the 550K master, and for distance-based
/// level-of-detail.
[[nodiscard]] PointCloud thin(const PointCloud& cloud, double fraction);

}  // namespace volcast::vv
