#include "pointcloud/range_coder.h"

namespace volcast::vv {

namespace {
constexpr std::uint32_t kTopValue = 1u << 24;
}

void RangeEncoder::shift_low() {
  if (low_ < 0xff000000ULL || low_ > 0xffffffffULL) {
    // Carry resolved: flush the cached byte plus any 0xff run.
    const auto carry = static_cast<std::uint8_t>(low_ >> 32);
    while (cache_size_ != 0) {
      output_.push_back(static_cast<std::uint8_t>(cache_ + carry));
      cache_ = 0xff;
      --cache_size_;
    }
    cache_ = static_cast<std::uint8_t>(low_ >> 24);
    cache_size_ = 0;
  }
  ++cache_size_;
  low_ = (low_ << 8) & 0xffffffffULL;
}

void RangeEncoder::encode_bit(BitModel& model, bool bit) {
  const std::uint32_t bound =
      (range_ >> BitModel::kBits) * model.prob_zero();
  if (!bit) {
    range_ = bound;
  } else {
    low_ += bound;
    range_ -= bound;
  }
  model.update(bit);
  while (range_ < kTopValue) {
    range_ <<= 8;
    shift_low();
  }
}

void RangeEncoder::encode_raw(std::uint64_t value, unsigned count) {
  for (unsigned i = count; i-- > 0;) {
    range_ >>= 1;
    if ((value >> i) & 1u) low_ += range_;
    while (range_ < kTopValue) {
      range_ <<= 8;
      shift_low();
    }
  }
}

std::vector<std::uint8_t> RangeEncoder::finish() {
  for (int i = 0; i < 5; ++i) shift_low();
  return std::move(output_);
}

RangeDecoder::RangeDecoder(std::span<const std::uint8_t> data) : data_(data) {
  ++pos_;  // skip the initial cache byte emitted by the encoder
  for (int i = 0; i < 4; ++i) code_ = (code_ << 8) | next_byte();
}

std::uint8_t RangeDecoder::next_byte() noexcept {
  return pos_ < data_.size() ? data_[pos_++] : 0;
}

bool RangeDecoder::decode_bit(BitModel& model) {
  const std::uint32_t bound =
      (range_ >> BitModel::kBits) * model.prob_zero();
  bool bit;
  if (code_ < bound) {
    range_ = bound;
    bit = false;
  } else {
    code_ -= bound;
    range_ -= bound;
    bit = true;
  }
  model.update(bit);
  while (range_ < kTopValue) {
    range_ <<= 8;
    code_ = (code_ << 8) | next_byte();
  }
  return bit;
}

std::uint64_t RangeDecoder::decode_raw(unsigned count) {
  std::uint64_t value = 0;
  for (unsigned i = 0; i < count; ++i) {
    range_ >>= 1;
    bool bit;
    if (code_ < range_) {
      bit = false;
    } else {
      code_ -= range_;
      bit = true;
    }
    value = (value << 1) | static_cast<std::uint64_t>(bit);
    while (range_ < kTopValue) {
      range_ <<= 8;
      code_ = (code_ << 8) | next_byte();
    }
  }
  return value;
}

}  // namespace volcast::vv
