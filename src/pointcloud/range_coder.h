// Adaptive binary range coder (carry-less, 32-bit, byte renormalization) —
// the entropy-coding backend of the point-cloud codec. This plays the role
// Draco's entropy stage plays in the paper's pipeline: it is what brings the
// per-point cost from ~57 raw quantized bits down to the ~20-25 bits/point
// the paper's 235-364 Mbps bitrates imply.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace volcast::vv {

/// Adaptive probability model for a single binary context.
/// 12-bit probability, shift-based update (classic LZMA-style model).
class BitModel {
 public:
  static constexpr std::uint32_t kBits = 12;
  static constexpr std::uint32_t kOne = 1u << kBits;
  static constexpr std::uint32_t kAdaptShift = 5;

  [[nodiscard]] std::uint32_t prob_zero() const noexcept { return p0_; }

  void update(bool bit) noexcept {
    if (bit) {
      p0_ -= p0_ >> kAdaptShift;
    } else {
      p0_ += (kOne - p0_) >> kAdaptShift;
    }
  }

 private:
  std::uint32_t p0_ = kOne / 2;
};

/// Encodes a bit stream into bytes using per-call BitModel contexts.
class RangeEncoder {
 public:
  void encode_bit(BitModel& model, bool bit);
  /// Encodes `count` raw (equiprobable) low bits of `value`, MSB first.
  void encode_raw(std::uint64_t value, unsigned count);
  /// Flushes the coder state; must be called exactly once, after which the
  /// encoder is finished.
  [[nodiscard]] std::vector<std::uint8_t> finish();

  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return output_.size();
  }

 private:
  void shift_low();

  std::uint64_t low_ = 0;
  std::uint32_t range_ = 0xffffffffu;
  std::uint8_t cache_ = 0;
  std::uint64_t cache_size_ = 1;  // first shift emits the initial cache
  std::vector<std::uint8_t> output_;
};

/// Decodes a byte stream produced by RangeEncoder. The caller must use the
/// exact same sequence of models/raw widths as the encoder.
class RangeDecoder {
 public:
  explicit RangeDecoder(std::span<const std::uint8_t> data);

  [[nodiscard]] bool decode_bit(BitModel& model);
  [[nodiscard]] std::uint64_t decode_raw(unsigned count);

 private:
  std::uint8_t next_byte() noexcept;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::uint32_t range_ = 0xffffffffu;
  std::uint32_t code_ = 0;
};

}  // namespace volcast::vv
