// Octree occupancy codec — the compression family of GROOT and MPEG G-PCC,
// which the paper cites as the other practical volumetric pipeline
// (GROOT's GPU decoder consumes exactly this kind of occupancy-mask
// stream).
//
// Encode: voxelize to a 2^depth cubic grid, sort by Morton code, then walk
// the implicit octree depth-first emitting one 8-bit child-occupancy mask
// per internal node; masks are entropy-coded bit-by-bit with contexts per
// (tree level, child index). Colors are per-voxel averages, delta-coded in
// traversal order.
//
// Semantics differ from the Morton-delta codec in codec.h: the octree
// stream stores *voxels*, so duplicate points collapse (standard
// voxelization semantics); decode returns one point per occupied voxel.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pointcloud/point_cloud.h"

namespace volcast::vv {

/// Octree codec parameters.
struct OctreeCodecConfig {
  /// Tree depth = bits per axis (1..16). Depth 10 over a ~2 m figure is a
  /// ~2 mm voxel.
  unsigned depth = 10;
  bool encode_colors = true;
};

/// Encodes a cloud as an octree occupancy stream. Empty clouds are valid.
/// Throws std::invalid_argument for an out-of-range depth.
[[nodiscard]] std::vector<std::uint8_t> octree_encode(
    const PointCloud& cloud, const OctreeCodecConfig& config = {});

/// Decodes a stream produced by octree_encode: one point per occupied
/// voxel, positioned at the voxel center. Throws std::runtime_error on a
/// malformed header.
[[nodiscard]] PointCloud octree_decode(std::span<const std::uint8_t> data);

/// Number of occupied voxels the encoded stream holds (reads the header).
[[nodiscard]] std::size_t octree_voxel_count(
    std::span<const std::uint8_t> data);

}  // namespace volcast::vv
