#include "pointcloud/octree_codec.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/endian.h"
#include "geometry/morton.h"
#include "pointcloud/range_coder.h"

namespace volcast::vv {
namespace {

constexpr std::array<std::uint8_t, 4> kMagic{'V', 'O', 'C', '1'};
constexpr unsigned kMaxDepth = 16;
constexpr std::size_t kHeaderBytes = 4 + 4 + 1 + 1 + 6 * 8;

using common::get_f64;
using common::get_u32;
using common::put_f64;
using common::put_u32;

/// Occupancy-bit contexts: (level bucket, child index).
struct OccupancyModels {
  static constexpr unsigned kLevelBuckets = 8;
  std::array<BitModel, kLevelBuckets * 8> models;

  BitModel& at(unsigned level, unsigned child) {
    const unsigned bucket = std::min(level, kLevelBuckets - 1);
    return models[bucket * 8 + child];
  }
};

struct ColorCoder {
  BitModel zero[3];
  // Simple adaptive magnitude coding: unary length + raw payload.
  std::array<BitModel, 9> length[3];
  std::array<std::uint8_t, 3> previous{128, 128, 128};

  void encode(RangeEncoder& enc, const std::array<std::uint8_t, 3>& color) {
    for (int ch = 0; ch < 3; ++ch) {
      const auto chan = static_cast<std::size_t>(ch);
      const int diff = int{color[chan]} - int{previous[chan]};
      enc.encode_bit(zero[chan], diff != 0);
      if (diff != 0) {
        const auto mag = static_cast<std::uint32_t>(
            (diff > 0 ? diff * 2 - 1 : -diff * 2) - 1);  // zigzag - 1
        unsigned len = 0;
        while ((mag >> len) != 0 && len < 9) ++len;
        for (unsigned i = 0; i < len; ++i)
          enc.encode_bit(length[chan][i], true);
        if (len < 9) enc.encode_bit(length[chan][len], false);
        if (len > 1)
          enc.encode_raw(mag & ((1u << (len - 1)) - 1), len - 1);
      }
      previous[chan] = color[chan];
    }
  }

  std::array<std::uint8_t, 3> decode(RangeDecoder& dec) {
    for (int ch = 0; ch < 3; ++ch) {
      const auto chan = static_cast<std::size_t>(ch);
      if (dec.decode_bit(zero[chan])) {
        unsigned len = 0;
        while (len < 9 && dec.decode_bit(length[chan][len])) ++len;
        std::uint32_t mag = 0;
        if (len > 0) {
          mag = 1;
          if (len > 1)
            mag = (mag << (len - 1)) |
                  static_cast<std::uint32_t>(dec.decode_raw(len - 1));
        }
        const auto zig = mag + 1;
        const int diff = (zig & 1) ? static_cast<int>((zig + 1) / 2)
                                   : -static_cast<int>(zig / 2);
        previous[chan] =
            static_cast<std::uint8_t>(int{previous[chan]} + diff);
      }
    }
    return previous;
  }
};

struct Voxel {
  std::uint64_t code;  // Morton code at full depth
  std::uint32_t r_sum, g_sum, b_sum, count;
};

}  // namespace

std::vector<std::uint8_t> octree_encode(const PointCloud& cloud,
                                        const OctreeCodecConfig& config) {
  if (config.depth == 0 || config.depth > kMaxDepth)
    throw std::invalid_argument("octree codec: depth out of range [1, 16]");

  const geo::Aabb bounds = cloud.bounds();
  const geo::Aabb stored =
      cloud.empty() ? geo::Aabb{{0, 0, 0}, {0, 0, 0}} : bounds;

  // Voxelize: quantize into the cubic 2^depth grid, merge duplicates,
  // average colors.
  const double max_q = static_cast<double>((1u << config.depth) - 1);
  const geo::Vec3 extent = stored.extent();
  const double span = std::max({extent.x, extent.y, extent.z, 1e-12});
  auto quantize = [&](double v, double lo) {
    const double q = std::floor((v - lo) / span * (max_q + 1.0));
    return static_cast<std::uint32_t>(std::clamp(q, 0.0, max_q));
  };

  std::vector<Voxel> voxels;
  voxels.reserve(cloud.size());
  for (const Point& p : cloud.points()) {
    const auto code = geo::morton_encode(quantize(p.position.x, stored.lo.x),
                                         quantize(p.position.y, stored.lo.y),
                                         quantize(p.position.z, stored.lo.z));
    voxels.push_back({code, p.r, p.g, p.b, 1});
  }
  std::sort(voxels.begin(), voxels.end(),
            [](const Voxel& a, const Voxel& b) { return a.code < b.code; });
  // Merge equal codes.
  std::size_t write = 0;
  for (std::size_t i = 0; i < voxels.size(); ++i) {
    if (write > 0 && voxels[write - 1].code == voxels[i].code) {
      voxels[write - 1].r_sum += voxels[i].r_sum;
      voxels[write - 1].g_sum += voxels[i].g_sum;
      voxels[write - 1].b_sum += voxels[i].b_sum;
      voxels[write - 1].count += voxels[i].count;
    } else {
      voxels[write++] = voxels[i];
    }
  }
  voxels.resize(write);

  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + voxels.size());
  out.insert(out.end(), kMagic.begin(), kMagic.end());
  put_u32(out, static_cast<std::uint32_t>(voxels.size()));
  out.push_back(static_cast<std::uint8_t>(config.depth));
  out.push_back(config.encode_colors ? 1 : 0);
  put_f64(out, stored.lo.x);
  put_f64(out, stored.lo.y);
  put_f64(out, stored.lo.z);
  put_f64(out, stored.hi.x);
  put_f64(out, stored.hi.y);
  put_f64(out, stored.hi.z);
  if (voxels.empty()) return out;

  RangeEncoder enc;
  OccupancyModels occupancy;
  ColorCoder colors;

  // Depth-first over the implicit octree: a node is a contiguous range of
  // the Morton-sorted voxels sharing a code prefix.
  struct Frame {
    std::size_t begin, end;
    unsigned level;  // 0 = root
  };
  std::vector<Frame> stack{{0, voxels.size(), 0}};
  const unsigned depth = config.depth;
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.level == depth) {
      if (config.encode_colors) {
        const Voxel& v = voxels[frame.begin];
        colors.encode(enc, {static_cast<std::uint8_t>(v.r_sum / v.count),
                            static_cast<std::uint8_t>(v.g_sum / v.count),
                            static_cast<std::uint8_t>(v.b_sum / v.count)});
      }
      continue;
    }
    // Partition the range by the 3-bit child index at this level.
    const unsigned shift = 3 * (depth - 1 - frame.level);
    std::array<std::size_t, 9> edges{};
    edges[0] = frame.begin;
    std::size_t pos = frame.begin;
    for (unsigned child = 0; child < 8; ++child) {
      while (pos < frame.end &&
             ((voxels[pos].code >> shift) & 7u) == child)
        ++pos;
      edges[child + 1] = pos;
    }
    // Emit the occupancy mask, then push occupied children in reverse so
    // the DFS visits them in ascending Morton order.
    for (unsigned child = 0; child < 8; ++child) {
      enc.encode_bit(occupancy.at(frame.level, child),
                     edges[child + 1] > edges[child]);
    }
    for (unsigned child = 8; child-- > 0;) {
      if (edges[child + 1] > edges[child])
        stack.push_back({edges[child], edges[child + 1], frame.level + 1});
    }
  }
  const auto payload = enc.finish();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

PointCloud octree_decode(std::span<const std::uint8_t> data) {
  if (data.size() < kHeaderBytes ||
      !std::equal(kMagic.begin(), kMagic.end(), data.begin()))
    throw std::runtime_error("octree codec: bad header");
  const std::uint32_t voxel_count = get_u32(data, 4);
  const unsigned depth = data[8];
  const bool has_colors = data[9] != 0;
  if (depth == 0 || depth > kMaxDepth)
    throw std::runtime_error("octree codec: corrupt depth");
  if (voxel_count > 64 * 8 * (data.size() - kHeaderBytes) + 64)
    throw std::runtime_error("octree codec: corrupt voxel count");
  geo::Aabb bounds;
  bounds.lo = {get_f64(data, 10), get_f64(data, 18), get_f64(data, 26)};
  bounds.hi = {get_f64(data, 34), get_f64(data, 42), get_f64(data, 50)};

  PointCloud cloud;
  cloud.reserve(voxel_count);
  if (voxel_count == 0) return cloud;

  const double max_q = static_cast<double>((1u << depth) - 1);
  const geo::Vec3 extent = bounds.extent();
  const double span = std::max({extent.x, extent.y, extent.z, 1e-12});
  const double step = span / (max_q + 1.0);
  auto voxel_center = [&](std::uint32_t q, double lo) {
    return lo + (static_cast<double>(q) + 0.5) * step;
  };

  RangeDecoder dec(data.subspan(kHeaderBytes));
  OccupancyModels occupancy;
  ColorCoder colors;

  struct Frame {
    std::uint64_t prefix;
    unsigned level;
  };
  std::vector<Frame> stack{{0, 0}};
  while (!stack.empty() && cloud.size() < voxel_count) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.level == depth) {
      const auto coords = geo::morton_decode(frame.prefix);
      Point p;
      p.position = {voxel_center(coords.x, bounds.lo.x),
                    voxel_center(coords.y, bounds.lo.y),
                    voxel_center(coords.z, bounds.lo.z)};
      if (has_colors) {
        const auto c = colors.decode(dec);
        p.r = c[0];
        p.g = c[1];
        p.b = c[2];
      } else {
        p.r = p.g = p.b = 128;
      }
      cloud.add(p);
      continue;
    }
    std::array<bool, 8> mask{};
    for (unsigned child = 0; child < 8; ++child)
      mask[child] = dec.decode_bit(occupancy.at(frame.level, child));
    for (unsigned child = 8; child-- > 0;) {
      if (mask[child])
        stack.push_back({(frame.prefix << 3) | child, frame.level + 1});
    }
  }
  return cloud;
}

std::size_t octree_voxel_count(std::span<const std::uint8_t> data) {
  if (data.size() < kHeaderBytes ||
      !std::equal(kMagic.begin(), kMagic.end(), data.begin()))
    throw std::runtime_error("octree codec: bad header");
  return get_u32(data, 4);
}

}  // namespace volcast::vv
