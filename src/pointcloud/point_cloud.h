// Point-cloud container: the volumetric video frame representation.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/aabb.h"
#include "geometry/vec3.h"

namespace volcast::vv {

/// One colored point of a volumetric frame.
struct Point {
  geo::Vec3 position{};
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;

  bool operator==(const Point& o) const noexcept = default;
};

/// A single frame of volumetric video: an unordered set of colored points.
class PointCloud {
 public:
  PointCloud() = default;
  explicit PointCloud(std::vector<Point> points)
      : points_(std::move(points)) {}

  [[nodiscard]] const std::vector<Point>& points() const noexcept {
    return points_;
  }
  [[nodiscard]] std::vector<Point>& points() noexcept { return points_; }
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }

  void add(const Point& p) { points_.push_back(p); }
  void reserve(std::size_t n) { points_.reserve(n); }
  void clear() noexcept { points_.clear(); }

  /// Tight bounding box of all points (invalid Aabb when empty).
  [[nodiscard]] geo::Aabb bounds() const noexcept {
    geo::Aabb box;
    for (const Point& p : points_) box.expand(p.position);
    return box;
  }

  /// Uncompressed wire size in bytes (3 x float32 position + RGB), the
  /// baseline the codec's compression ratio is measured against.
  [[nodiscard]] std::size_t raw_size_bytes() const noexcept {
    return points_.size() * (3 * sizeof(float) + 3);
  }

 private:
  std::vector<Point> points_;
};

}  // namespace volcast::vv
