// Content-server view of a volumetric video: for every frame, every cell and
// every quality tier, the number of points and the encoded size in bytes.
// This is what the streaming scheduler consumes — it never touches raw
// points on the hot path.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pointcloud/cell_grid.h"
#include "pointcloud/codec.h"
#include "pointcloud/octree_codec.h"
#include "pointcloud/video_generator.h"

namespace volcast::common {
class ThreadPool;
}  // namespace volcast::common

namespace volcast::vv {

/// One quality tier of the stored video (e.g. the paper's 330K/430K/550K
/// points-per-frame versions).
struct QualityTier {
  std::string name;
  std::size_t points_per_frame = 0;
};

/// The paper's three quality tiers.
[[nodiscard]] std::vector<QualityTier> paper_quality_tiers();

/// Which compression pipeline sizes the stored cells.
enum class StoreCodec {
  kMortonDelta,  // codec.h — Draco-role pipeline (default)
  kOctree,       // octree_codec.h — GROOT/G-PCC-role pipeline
};

/// Store construction options.
struct VideoStoreConfig {
  std::vector<QualityTier> tiers = paper_quality_tiers();
  StoreCodec codec_kind = StoreCodec::kMortonDelta;
  CodecConfig codec{};
  OctreeCodecConfig octree{};
  /// When true every cell of every frame is range-coded exactly (slow; for
  /// tests and the codec bench). When false, `sample_frames` frames are
  /// encoded exactly and a linear bytes-vs-points model fitted from them
  /// sizes the remaining frames (fast; for system benches).
  bool exact = false;
  std::size_t sample_frames = 2;
  /// Optional worker pool: independent frames are precomputed in parallel
  /// (bit-identical tables — each frame fills its own slot; the size model
  /// is still fitted from the sample frames in frame order). The pool must
  /// outlive construction.
  common::ThreadPool* pool = nullptr;
};

/// Precomputed per-frame/per-tier/per-cell sizes of a generated video.
///
/// Thread safety: once constructed (or deserialized), a VideoStore is
/// immutable — every public member function is const and reads only state
/// written during construction. Any number of threads may query one store
/// concurrently without synchronization. This is what lets a shared
/// core::WorkloadBundle serve one store to a whole fleet of sessions. The
/// store aliases the CellGrid passed to its constructor (it keeps a
/// pointer, not a copy), so the grid must outlive it and must be equally
/// immutable for the guarantee to hold.
class VideoStore {
 public:
  /// Builds the store by generating (and thinning, and encoding) frames.
  /// Throws std::invalid_argument for an empty tier list or tiers exceeding
  /// the generator's points_per_frame.
  VideoStore(const VideoGenerator& generator, const CellGrid& grid,
             VideoStoreConfig config = {});

  [[nodiscard]] const CellGrid& grid() const noexcept { return *grid_; }
  [[nodiscard]] std::size_t frame_count() const noexcept {
    return frames_.size();
  }
  [[nodiscard]] std::size_t tier_count() const noexcept {
    return config_.tiers.size();
  }
  [[nodiscard]] const std::vector<QualityTier>& tiers() const noexcept {
    return config_.tiers;
  }
  [[nodiscard]] double fps() const noexcept { return fps_; }

  /// Encoded bytes of one cell (0 for empty cells).
  [[nodiscard]] std::size_t cell_bytes(std::size_t frame, std::size_t tier,
                                       CellId cell) const;
  /// Point count of one cell.
  [[nodiscard]] std::uint32_t cell_points(std::size_t frame, std::size_t tier,
                                          CellId cell) const;
  /// Total encoded bytes of a frame at a tier.
  [[nodiscard]] std::size_t frame_bytes(std::size_t frame,
                                        std::size_t tier) const;
  /// Mean stream bitrate of a tier in Mbps at the video frame rate.
  [[nodiscard]] double tier_bitrate_mbps(std::size_t tier) const;
  /// Mean encoded bits per point at a tier (codec efficiency metric).
  [[nodiscard]] double tier_bits_per_point(std::size_t tier) const;

  /// Serializes the precomputed size tables into a compact checksummed
  /// binary blob ("VSTR"), so a server can persist the store instead of
  /// re-encoding the video on every start.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Rebuilds a store from serialize() output. The blob must describe the
  /// same cell grid (`grid.cell_count()` cells). Throws std::runtime_error
  /// on malformed, truncated or corrupted input — never crashes or
  /// over-allocates.
  [[nodiscard]] static VideoStore deserialize(
      const CellGrid& grid, std::span<const std::uint8_t> blob);

 private:
  struct FrameSizes {
    // [tier][cell]
    std::vector<std::vector<std::uint32_t>> bytes;
    std::vector<std::vector<std::uint32_t>> points;
  };

  VideoStore() = default;  // deserialize() fills the tables directly

  VideoStoreConfig config_;
  const CellGrid* grid_ = nullptr;
  double fps_ = 30.0;
  std::vector<FrameSizes> frames_;
};

}  // namespace volcast::vv
