// Content-addressed tile cache: encode once, serve many.
//
// A *tile* is the independently decodable codec output of one cell at one
// quality tier of one video frame — the unit tiled-HEVC pipelines splice
// per-viewer bitstreams from. Because the codec output for a given
// (content, frame, tier, cell) is a pure function of its key, tiles are
// content-addressed: the cache key embeds a fingerprint of the video
// content itself, so sessions streaming different videos coexist safely in
// one cache and a hit is always byte-identical to a fresh encode.
//
// Sharing model:
//  * Within a session, the tiling stage encodes each distinct tile once
//    (first touch) and *stitches* every repeat — users in the same
//    multicast group fetch overlapping cells at the same tier, so encode
//    cost scales with distinct viewports, not user count.
//  * Across fleet slots, run_fleet hands every slot one shared cache; a
//    slot that needs a tile another slot already encoded validates its
//    checksum and reuses the payload instead of re-encoding.
//
// Determinism: tiles are pure functions of their key, so insert order,
// races between slots and even eviction change only wall-clock work, never
// payload bytes. The per-session TileReport is computed from session-local
// first-touch accounting (see core/stages/tiling_stage.h) and is therefore
// bit-identical at any worker_threads / parallel_sessions value regardless
// of what the shared cache holds.
//
// Integrity: every tile carries an FNV-1a checksum of its payload; get()
// re-validates on every hit and a corrupt entry is evicted and reported as
// a miss, so a damaged cache degrades to re-encoding instead of serving
// garbage bitstreams.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

namespace volcast::vv {

/// Identity of one encoded tile. `content` fingerprints the video the tile
/// was cut from (see tile_content_fingerprint), so keys are globally
/// unambiguous across sessions and fleet slots.
struct TileKey {
  std::uint64_t content = 0;
  std::uint32_t frame = 0;
  std::uint32_t cell = 0;
  std::uint16_t tier = 0;

  [[nodiscard]] bool operator==(const TileKey& other) const noexcept {
    return content == other.content && frame == other.frame &&
           cell == other.cell && tier == other.tier;
  }

  /// splitmix64 over the packed fields — the seed of the tile's synthetic
  /// bitstream and the cache's hash function.
  [[nodiscard]] std::uint64_t hash() const noexcept;
};

struct TileKeyHash {
  std::size_t operator()(const TileKey& key) const noexcept {
    return static_cast<std::size_t>(key.hash());
  }
};

/// One encoded tile: the bitstream plus its integrity checksum.
struct Tile {
  TileKey key;
  std::vector<std::uint8_t> payload;
  std::uint64_t checksum = 0;  // FNV-1a64 over payload

  /// Does the stored checksum match the payload?
  [[nodiscard]] bool valid() const noexcept;
};

/// FNV-1a64 — the repo-wide blob checksum (VideoStore, checkpoint).
[[nodiscard]] std::uint64_t tile_checksum(
    std::span<const std::uint8_t> data) noexcept;

/// Fingerprint of the video content a tile belongs to: everything that
/// determines codec output for a (frame, tier, cell) coordinate. Sessions
/// with equal fingerprints may share tiles; unequal ones never collide
/// because the fingerprint is part of every TileKey.
[[nodiscard]] std::uint64_t tile_content_fingerprint(
    std::uint64_t video_seed, std::size_t master_points,
    std::size_t video_frames, double cell_size_m,
    std::span<const std::size_t> tier_points);

/// Produces the tile for `key` with an encoded size of `bytes`. The
/// payload is a deterministic pure function of the key (a seeded keystream
/// plus the extra mixing passes that stand in for the codec's
/// rate-distortion search), so two encoders always produce byte-identical
/// tiles — the property that makes content-addressed sharing sound.
[[nodiscard]] Tile encode_tile(const TileKey& key, std::size_t bytes);

/// Re-derives the checksum of the tile `key` would encode to, at roughly
/// the cost of one pass over the payload — the "stitch" path: ~4x cheaper
/// than encode_tile, which is where the serve-many saving comes from.
[[nodiscard]] std::uint64_t stitch_tile(const Tile& tile) noexcept;

/// Session-lifetime tile accounting, folded into SessionResult. Counted
/// from session-local first-touch state, never from shared-cache probe
/// outcomes, so the report is deterministic at any parallelism.
struct TileReport {
  std::uint64_t requests = 0;        // tiles assembled into user frames
  std::uint64_t encoded_tiles = 0;   // first touches (distinct tiles)
  std::uint64_t stitched_tiles = 0;  // repeats served from encoded output
  std::uint64_t encoded_bytes = 0;   // bytes the session had to encode
  std::uint64_t stitched_bytes = 0;  // encode bytes saved by stitching
};

/// Thread-safe content-addressed tile store with bounded capacity and
/// deterministic FIFO (insertion-order) eviction. One mutex guards the
/// index; payloads are immutable shared_ptrs, so an eviction racing a
/// reader is safe. All Stats counters are atomics.
class TileCache {
 public:
  struct Stats {
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> insertions{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> corrupt_rejected{0};
    std::atomic<std::uint64_t> payload_bytes{0};  // currently resident

    [[nodiscard]] double hit_rate() const noexcept {
      const double h = static_cast<double>(hits.load());
      const double m = static_cast<double>(misses.load());
      return h + m > 0.0 ? h / (h + m) : 0.0;
    }
  };

  /// `max_bytes` bounds resident payload bytes (0 = unbounded). Inserting
  /// past the bound evicts oldest-inserted tiles first.
  explicit TileCache(std::size_t max_bytes = 0) : max_bytes_(max_bytes) {}

  TileCache(const TileCache&) = delete;
  TileCache& operator=(const TileCache&) = delete;

  /// Looks up a tile, re-validating its checksum: a corrupt entry is
  /// evicted, counted in `corrupt_rejected` and reported as a miss (null).
  [[nodiscard]] std::shared_ptr<const Tile> get(const TileKey& key);

  /// Insert-or-get: stores `tile` unless an entry for its key is already
  /// resident (two slots encoding concurrently produce identical bytes, so
  /// first-in wins and the other copy is dropped). Returns the resident
  /// tile; when the cache is frozen or the tile alone exceeds the
  /// capacity, nothing is stored and the caller's copy is returned.
  std::shared_ptr<const Tile> put(Tile tile);

  /// Read-only from now on: get() keeps serving, put() stops storing.
  /// The fleet's handoff safety latch for pre-warmed caches.
  void freeze() noexcept { frozen_.store(true, std::memory_order_release); }
  [[nodiscard]] bool frozen() const noexcept {
    return frozen_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t payload_bytes() const;
  [[nodiscard]] std::size_t max_bytes() const noexcept { return max_bytes_; }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  /// Drops oldest-inserted tiles until `incoming` more bytes fit. Caller
  /// holds mu_.
  void evict_for(std::size_t incoming);

  const std::size_t max_bytes_;
  std::atomic<bool> frozen_{false};
  mutable std::mutex mu_;
  std::unordered_map<TileKey, std::shared_ptr<const Tile>, TileKeyHash> map_;
  std::deque<TileKey> fifo_;  // insertion order, front = oldest
  std::size_t bytes_ = 0;
  Stats stats_;
};

}  // namespace volcast::vv
