#include "pointcloud/tile_cache.h"

#include <bit>
#include <utility>

namespace volcast::vv {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t TileKey::hash() const noexcept {
  std::uint64_t state = content;
  state ^= (static_cast<std::uint64_t>(frame) << 32) |
           (static_cast<std::uint64_t>(tier) << 24) | cell;
  return splitmix64(state);
}

std::uint64_t tile_checksum(std::span<const std::uint8_t> data) noexcept {
  std::uint64_t h = kFnvOffset;
  for (std::uint8_t byte : data) {
    h ^= byte;
    h *= kFnvPrime;
  }
  return h;
}

bool Tile::valid() const noexcept { return tile_checksum(payload) == checksum; }

std::uint64_t tile_content_fingerprint(
    std::uint64_t video_seed, std::size_t master_points,
    std::size_t video_frames, double cell_size_m,
    std::span<const std::size_t> tier_points) {
  const auto fold = [](std::uint64_t h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<std::uint8_t>(v >> (8 * i));
      h *= kFnvPrime;
    }
    return h;
  };
  std::uint64_t h = kFnvOffset;
  h = fold(h, video_seed);
  h = fold(h, master_points);
  h = fold(h, video_frames);
  h = fold(h, std::bit_cast<std::uint64_t>(cell_size_m));
  h = fold(h, tier_points.size());
  for (std::size_t points : tier_points) h = fold(h, points);
  return h;
}

Tile encode_tile(const TileKey& key, std::size_t bytes) {
  Tile tile;
  tile.key = key;
  tile.payload.resize(bytes);
  // The keystream models the codec's output; the extra mixing rounds per
  // word model the rate-distortion search a real per-cell encode performs.
  // Both feed the payload bytes, so the work cannot be elided — this is
  // what makes encode ~4x the cost of the stitch path's checksum pass.
  std::uint64_t state = key.hash();
  std::size_t at = 0;
  while (at < bytes) {
    std::uint64_t word = splitmix64(state);
    word ^= splitmix64(state);
    word ^= splitmix64(state);
    const std::size_t take = bytes - at < 8 ? bytes - at : 8;
    for (std::size_t i = 0; i < take; ++i)
      tile.payload[at + i] = static_cast<std::uint8_t>(word >> (8 * i));
    at += take;
  }
  tile.checksum = tile_checksum(tile.payload);
  return tile;
}

std::uint64_t stitch_tile(const Tile& tile) noexcept {
  return tile_checksum(tile.payload);
}

std::shared_ptr<const Tile> TileCache::get(const TileKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    stats_.misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  std::shared_ptr<const Tile> tile = it->second;
  if (!tile->valid()) {
    // Bit rot (or a hostile writer): never serve a bad bitstream. Evict
    // the entry so the next encoder repopulates it.
    bytes_ -= tile->payload.size();
    stats_.payload_bytes.store(bytes_, std::memory_order_relaxed);
    map_.erase(it);
    stats_.corrupt_rejected.fetch_add(1, std::memory_order_relaxed);
    stats_.misses.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  stats_.hits.fetch_add(1, std::memory_order_relaxed);
  return tile;
}

std::shared_ptr<const Tile> TileCache::put(Tile tile) {
  auto owned = std::make_shared<const Tile>(std::move(tile));
  if (frozen()) return owned;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(owned->key);
  if (it != map_.end()) return it->second;  // first-in wins, bytes identical
  const std::size_t incoming = owned->payload.size();
  if (max_bytes_ != 0 && incoming > max_bytes_) return owned;  // never fits
  evict_for(incoming);
  bytes_ += incoming;
  stats_.payload_bytes.store(bytes_, std::memory_order_relaxed);
  stats_.insertions.fetch_add(1, std::memory_order_relaxed);
  fifo_.push_back(owned->key);
  map_.emplace(owned->key, owned);
  return owned;
}

void TileCache::evict_for(std::size_t incoming) {
  if (max_bytes_ == 0) return;
  while (bytes_ + incoming > max_bytes_ && !fifo_.empty()) {
    const TileKey victim = fifo_.front();
    fifo_.pop_front();
    const auto it = map_.find(victim);
    if (it == map_.end()) continue;  // already evicted as corrupt
    bytes_ -= it->second->payload.size();
    map_.erase(it);
    stats_.evictions.fetch_add(1, std::memory_order_relaxed);
  }
  stats_.payload_bytes.store(bytes_, std::memory_order_relaxed);
}

std::size_t TileCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

std::size_t TileCache::payload_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

}  // namespace volcast::vv
