#include "pointcloud/codec.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>

#include "common/endian.h"
#include "geometry/morton.h"
#include "pointcloud/range_coder.h"

namespace volcast::vv {
namespace {

constexpr std::array<std::uint8_t, 4> kMagic{'V', 'P', 'C', '1'};
constexpr unsigned kMaxQuantBits = 21;
constexpr unsigned kMaxDeltaBits = 64;

using common::get_f64;
using common::get_u32;
using common::put_f64;
using common::put_u32;

/// Context models for one non-negative integer stream: capped adaptive
/// unary for the bit length, adaptive models for the two payload bits under
/// the MSB, raw bits for the rest.
struct UIntModels {
  std::array<BitModel, kMaxDeltaBits + 1> length;
  std::array<BitModel, 2> payload;
};

void encode_uint(RangeEncoder& enc, UIntModels& m, std::uint64_t value) {
  unsigned len = 0;
  while ((value >> len) != 0 && len < kMaxDeltaBits) ++len;
  for (unsigned i = 0; i < len; ++i) enc.encode_bit(m.length[i], true);
  if (len < kMaxDeltaBits) enc.encode_bit(m.length[len], false);
  if (len <= 1) return;  // MSB implied by length
  // Bits below the MSB: adaptive for the top two, raw below.
  unsigned remaining = len - 1;
  for (unsigned k = 0; k < 2 && remaining > 0; ++k) {
    --remaining;
    enc.encode_bit(m.payload[k], ((value >> remaining) & 1u) != 0);
  }
  if (remaining > 0)
    enc.encode_raw(value & ((std::uint64_t{1} << remaining) - 1), remaining);
}

std::uint64_t decode_uint(RangeDecoder& dec, UIntModels& m) {
  unsigned len = 0;
  while (len < kMaxDeltaBits && dec.decode_bit(m.length[len])) ++len;
  if (len == 0) return 0;
  std::uint64_t value = 1;  // the implied MSB
  unsigned remaining = len - 1;
  for (unsigned k = 0; k < 2 && remaining > 0; ++k) {
    --remaining;
    value = (value << 1) | static_cast<std::uint64_t>(dec.decode_bit(m.payload[k]));
  }
  if (remaining > 0) value = (value << remaining) | dec.decode_raw(remaining);
  return value;
}

[[nodiscard]] constexpr std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] constexpr std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

struct ColorModels {
  BitModel zero;
  UIntModels magnitude;
};

}  // namespace

std::vector<std::uint8_t> encode(const PointCloud& cloud,
                                 const CodecConfig& config) {
  if (config.quant_bits == 0 || config.quant_bits > kMaxQuantBits)
    throw std::invalid_argument("codec: quant_bits out of range [1, 21]");

  const auto& pts = cloud.points();
  const geo::Aabb bounds = cloud.bounds();

  unsigned quant_bits = config.quant_bits;
  if (config.resolution_m > 0.0 && !pts.empty()) {
    const geo::Vec3 e = bounds.extent();
    const double span = std::max({e.x, e.y, e.z});
    unsigned bits = 1;
    while (bits < kMaxQuantBits &&
           span / static_cast<double>((std::uint64_t{1} << bits) - 1) >
               config.resolution_m)
      ++bits;
    quant_bits = bits;
  }

  std::vector<std::uint8_t> out;
  out.reserve(kCodecHeaderBytes + pts.size() * 3);
  out.insert(out.end(), kMagic.begin(), kMagic.end());
  put_u32(out, static_cast<std::uint32_t>(pts.size()));
  out.push_back(static_cast<std::uint8_t>(quant_bits));
  out.push_back(config.encode_colors ? 1 : 0);
  const geo::Aabb stored =
      pts.empty() ? geo::Aabb{{0, 0, 0}, {0, 0, 0}} : bounds;
  put_f64(out, stored.lo.x);
  put_f64(out, stored.lo.y);
  put_f64(out, stored.lo.z);
  put_f64(out, stored.hi.x);
  put_f64(out, stored.hi.y);
  put_f64(out, stored.hi.z);
  if (pts.empty()) return out;

  const double max_q =
      static_cast<double>((std::uint64_t{1} << quant_bits) - 1);
  const geo::Vec3 extent = stored.extent();
  auto quantize_axis = [max_q](double v, double lo, double len) {
    if (len <= 0.0) return std::uint32_t{0};
    const double q = std::round((v - lo) / len * max_q);
    return static_cast<std::uint32_t>(std::clamp(q, 0.0, max_q));
  };

  struct Keyed {
    std::uint64_t code;
    std::uint32_t index;
  };
  std::vector<Keyed> keyed(pts.size());
  for (std::uint32_t i = 0; i < pts.size(); ++i) {
    const geo::Vec3& p = pts[i].position;
    const std::uint32_t qx = quantize_axis(p.x, stored.lo.x, extent.x);
    const std::uint32_t qy = quantize_axis(p.y, stored.lo.y, extent.y);
    const std::uint32_t qz = quantize_axis(p.z, stored.lo.z, extent.z);
    keyed[i] = {geo::morton_encode(qx, qy, qz), i};
  }
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    return a.code < b.code || (a.code == b.code && a.index < b.index);
  });

  RangeEncoder enc;
  UIntModels delta_models;
  std::array<ColorModels, 3> color_models;
  std::uint64_t prev_code = 0;
  std::array<std::uint8_t, 3> prev_color{128, 128, 128};
  for (const Keyed& k : keyed) {
    encode_uint(enc, delta_models, k.code - prev_code);
    prev_code = k.code;
    if (config.encode_colors) {
      const Point& p = pts[k.index];
      const std::array<std::uint8_t, 3> c{p.r, p.g, p.b};
      for (int ch = 0; ch < 3; ++ch) {
        const auto chan = static_cast<std::size_t>(ch);
        const std::int64_t diff =
            std::int64_t{c[chan]} - std::int64_t{prev_color[chan]};
        const bool is_zero = diff == 0;
        enc.encode_bit(color_models[chan].zero, !is_zero);
        if (!is_zero)
          encode_uint(enc, color_models[chan].magnitude, zigzag(diff) - 1);
        prev_color[chan] = c[chan];
      }
    }
  }
  const std::vector<std::uint8_t> payload = enc.finish();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

PointCloud decode(std::span<const std::uint8_t> data) {
  if (data.size() < kCodecHeaderBytes ||
      !std::equal(kMagic.begin(), kMagic.end(), data.begin()))
    throw std::runtime_error("codec: bad header");
  const std::uint32_t count = get_u32(data, 4);
  const unsigned quant_bits = data[8];
  const bool has_colors = data[9] != 0;
  if (quant_bits == 0 || quant_bits > kMaxQuantBits)
    throw std::runtime_error("codec: corrupt quant_bits");
  // Corruption guard: even at the entropy floor a point costs on the order
  // of a bit, so a count wildly beyond 64 x payload bits is a corrupt
  // header, not a dense cloud. Prevents multi-gigabyte reserve() on a
  // flipped count field.
  if (count > 64 * 8 * (data.size() - kCodecHeaderBytes) + 64)
    throw std::runtime_error("codec: corrupt point count");
  geo::Aabb bounds;
  bounds.lo = {get_f64(data, 10), get_f64(data, 18), get_f64(data, 26)};
  bounds.hi = {get_f64(data, 34), get_f64(data, 42), get_f64(data, 50)};

  PointCloud cloud;
  cloud.reserve(count);
  if (count == 0) return cloud;

  const double max_q =
      static_cast<double>((std::uint64_t{1} << quant_bits) - 1);
  const geo::Vec3 extent = bounds.extent();
  auto dequantize_axis = [max_q](std::uint32_t q, double lo, double len) {
    if (len <= 0.0) return lo;
    return lo + static_cast<double>(q) / max_q * len;
  };

  RangeDecoder dec(data.subspan(kCodecHeaderBytes));
  UIntModels delta_models;
  std::array<ColorModels, 3> color_models;
  std::uint64_t code = 0;
  std::array<std::uint8_t, 3> color{128, 128, 128};
  for (std::uint32_t i = 0; i < count; ++i) {
    code += decode_uint(dec, delta_models);
    const auto [qx, qy, qz] = geo::morton_decode(code);
    Point p;
    p.position = {dequantize_axis(qx, bounds.lo.x, extent.x),
                  dequantize_axis(qy, bounds.lo.y, extent.y),
                  dequantize_axis(qz, bounds.lo.z, extent.z)};
    if (has_colors) {
      for (int ch = 0; ch < 3; ++ch) {
        const auto chan = static_cast<std::size_t>(ch);
        if (dec.decode_bit(color_models[chan].zero)) {
          const std::int64_t diff =
              unzigzag(decode_uint(dec, color_models[chan].magnitude) + 1);
          color[chan] = static_cast<std::uint8_t>(
              std::int64_t{color[chan]} + diff);
        }
      }
    }
    p.r = color[0];
    p.g = color[1];
    p.b = color[2];
    cloud.add(p);
  }
  return cloud;
}

}  // namespace volcast::vv
