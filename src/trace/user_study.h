// Synthetic replica of the paper's 32-participant viewing study: 6DoF
// trajectories for every user, sampled at 30 Hz, split into a smartphone
// ("PH") group and a headset ("HM") group.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/mobility.h"

namespace volcast::trace {

/// Study composition. Defaults mirror the paper: 32 participants in two
/// device groups watching the same ~10 s volumetric clip (300 frames at
/// 30 Hz, the x-range of the paper's Fig. 2a).
struct UserStudyConfig {
  std::size_t smartphone_users = 16;
  std::size_t headset_users = 16;
  std::size_t samples_per_user = 300;
  double sample_rate_hz = 30.0;
  geo::Vec3 content_center{0, 0, 1.1};
  std::uint64_t seed = 42;
  /// Angular spread of users around the content (radians). Users cluster in
  /// front of the content rather than surrounding it uniformly, as viewers
  /// naturally face a performer.
  double spread_rad = 1.8;
  /// Center of the audience arc. The default (+pi/2) puts the audience on
  /// the far side of the content from the testbed's front-wall AP, so the
  /// whole arc sits inside the AP's sector range at a moderate distance —
  /// the deployment a real testbed would choose.
  double arc_center_rad = 1.5707963267948966;
};

/// Generates and owns one trace per participant.
class UserStudy {
 public:
  explicit UserStudy(UserStudyConfig config = {});

  [[nodiscard]] const UserStudyConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::size_t user_count() const noexcept {
    return traces_.size();
  }
  [[nodiscard]] const std::vector<Trace>& traces() const noexcept {
    return traces_;
  }
  [[nodiscard]] const Trace& trace(std::size_t user) const {
    return traces_.at(user);
  }
  [[nodiscard]] DeviceType device_of(std::size_t user) const {
    return traces_.at(user).device;
  }

  /// Indices of all users of a device class, in ascending order.
  [[nodiscard]] std::vector<std::size_t> users_of(DeviceType device) const;

 private:
  UserStudyConfig config_;
  std::vector<Trace> traces_;
};

}  // namespace volcast::trace
