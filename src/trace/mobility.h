// Stochastic 6DoF viewer mobility.
//
// Stands in for the paper's IRB user study (32 participants, 30 Hz 6DoF
// trajectories, one smartphone group "PH" and one Magic Leap headset group
// "HM"). The model is an Ornstein-Uhlenbeck random walk on a viewing ring
// around the content, with gaze directed at a jittered look-at target:
//   * PH (smartphone) users hold a device at chest height and move little —
//     small radial/angular diffusion, tight gaze;
//   * HM (headset) users walk freely — larger diffusion, wider gaze noise
//     and occasional look-away glances.
// These differences reproduce the paper's Fig. 2b ordering (PH pairs overlap
// more than HM pairs; triples overlap less than pairs).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geometry/pose.h"

namespace volcast::trace {

/// Viewer hardware class from the paper's user study.
enum class DeviceType {
  kSmartphone,  // "PH" group
  kHeadset,     // "HM" group
};

[[nodiscard]] const char* to_string(DeviceType device) noexcept;

/// Tunable parameters of the mobility process. `for_device` draws a
/// plausible per-user parameter set for the given hardware class.
struct MobilityParams {
  DeviceType device = DeviceType::kHeadset;
  geo::Vec3 attractor{0, 0, 1.1};  // content the user watches

  double ring_radius_m = 2.0;   // preferred viewing distance (mean)
  double radial_sigma = 0.3;    // OU diffusion of the distance
  double radial_rate = 0.5;     // OU mean reversion of the distance
  /// Angular motion is a second-order process: angular *velocity* follows
  /// an OU process pulled toward a spring on the home angle, so positions
  /// have persistent velocity (smooth, predictable short-horizon motion,
  /// as real 6DoF traces do).
  double angular_sigma = 0.25;  // velocity diffusion (rad/s per sqrt(s))
  double angular_rate = 0.15;   // spring toward the user's home angle
  double home_angle_rad = 0.0;  // where on the ring the user tends to stand
  double eye_height_m = 1.6;
  double height_sigma = 0.03;
  /// Gaze is also second-order: the look-at offset's *velocity* diffuses
  /// and a spring pulls the offset back to the content center, so head
  /// rotation has momentum (as real headset traces show).
  double gaze_sigma_m = 0.15;   // gaze velocity diffusion (m/s per sqrt(s))
  double gaze_rate = 1.5;       // spring pulling the offset back to center
  double look_away_per_s = 0.0;  // Poisson rate of brief look-away glances

  /// Draws per-user parameters for a device class. The caller supplies the
  /// user's home angle so a study can spread users around the content.
  [[nodiscard]] static MobilityParams for_device(DeviceType device, Rng& rng,
                                                 const geo::Vec3& content_center,
                                                 double home_angle_rad);
};

/// Continuous-state mobility process; `step(dt)` advances the state and
/// returns the viewer pose. Deterministic for a given (params, seed).
class MobilityModel {
 public:
  MobilityModel(const MobilityParams& params, std::uint64_t seed);

  /// Advances the walk by `dt` seconds and returns the new 6DoF pose.
  geo::Pose step(double dt);

  /// Current pose without advancing.
  [[nodiscard]] const geo::Pose& pose() const noexcept { return pose_; }

  [[nodiscard]] const MobilityParams& params() const noexcept {
    return params_;
  }

 private:
  MobilityParams params_;
  Rng rng_;
  double angle_;
  double angular_velocity_ = 0.0;
  double radius_;
  double radial_velocity_ = 0.0;
  double height_;
  bool has_orientation_ = false;
  geo::Vec3 gaze_offset_{};
  geo::Vec3 gaze_velocity_{};
  double look_away_remaining_s_ = 0.0;
  geo::Vec3 look_away_dir_{1, 0, 0};
  geo::Pose pose_{};

  void refresh_pose();
};

/// A recorded 6DoF trajectory sampled at a fixed rate.
struct Trace {
  DeviceType device = DeviceType::kHeadset;
  double sample_rate_hz = 30.0;
  std::vector<geo::Pose> poses;

  [[nodiscard]] std::size_t size() const noexcept { return poses.size(); }
  [[nodiscard]] double duration_s() const noexcept {
    return poses.empty() ? 0.0
                         : static_cast<double>(poses.size()) / sample_rate_hz;
  }
};

/// Samples `samples` poses at `rate_hz` from a fresh MobilityModel.
[[nodiscard]] Trace generate_trace(const MobilityParams& params,
                                   std::uint64_t seed, std::size_t samples,
                                   double rate_hz = 30.0);

}  // namespace volcast::trace
