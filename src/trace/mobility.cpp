#include "trace/mobility.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace volcast::trace {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// One Euler-Maruyama step of an Ornstein-Uhlenbeck process.
double ou_step(double x, double mean, double rate, double sigma, double dt,
               Rng& rng) {
  return x + rate * (mean - x) * dt + sigma * std::sqrt(dt) * rng.normal();
}
}  // namespace

const char* to_string(DeviceType device) noexcept {
  switch (device) {
    case DeviceType::kSmartphone:
      return "PH";
    case DeviceType::kHeadset:
      return "HM";
  }
  return "??";
}

MobilityParams MobilityParams::for_device(DeviceType device, Rng& rng,
                                          const geo::Vec3& content_center,
                                          double home_angle_rad) {
  MobilityParams p;
  p.device = device;
  p.attractor = content_center;
  p.home_angle_rad = home_angle_rad;
  if (device == DeviceType::kSmartphone) {
    // Phone viewers hold the device and mostly stand still.
    p.ring_radius_m = rng.uniform(1.6, 2.2);
    p.radial_sigma = 0.10;
    p.radial_rate = 0.8;
    p.angular_sigma = 0.20;
    p.angular_rate = 0.25;
    p.eye_height_m = rng.uniform(1.35, 1.5);  // chest-held device
    p.height_sigma = 0.015;
    p.gaze_sigma_m = 0.42;
    p.gaze_rate = 1.0;
    p.look_away_per_s = 0.0;
  } else {
    // Headset viewers roam and glance around.
    p.ring_radius_m = rng.uniform(1.2, 2.8);
    p.radial_sigma = 0.20;
    p.radial_rate = 0.35;
    p.angular_sigma = 0.15;
    p.angular_rate = 0.08;
    p.eye_height_m = rng.uniform(1.5, 1.8);
    p.height_sigma = 0.04;
    p.gaze_sigma_m = 0.70;
    p.gaze_rate = 0.8;
    p.look_away_per_s = 0.05;
  }
  return p;
}

MobilityModel::MobilityModel(const MobilityParams& params, std::uint64_t seed)
    : params_(params),
      rng_(seed),
      angle_(params.home_angle_rad),
      radius_(params.ring_radius_m),
      height_(params.eye_height_m) {
  refresh_pose();
}

geo::Pose MobilityModel::step(double dt) {
  if (dt <= 0.0) return pose_;
  // Second-order angular dynamics: velocity relaxes toward the home-angle
  // spring, so consecutive steps share momentum (predictable motion).
  const double target_velocity =
      params_.angular_rate * (params_.home_angle_rad - angle_);
  angular_velocity_ = ou_step(angular_velocity_, target_velocity, 1.2,
                              params_.angular_sigma, dt, rng_);
  angle_ += angular_velocity_ * dt;
  const double radial_spring =
      params_.radial_rate * (params_.ring_radius_m - radius_);
  radial_velocity_ =
      ou_step(radial_velocity_, radial_spring, 1.5, params_.radial_sigma, dt,
              rng_);
  radius_ += radial_velocity_ * dt;
  if (radius_ < 0.6) {  // never walk inside the content
    radius_ = 0.6;
    radial_velocity_ = std::max(radial_velocity_, 0.0);
  }
  height_ = ou_step(height_, params_.eye_height_m, 1.0, params_.height_sigma,
                    dt, rng_);
  for (int axis = 0; axis < 3; ++axis) {
    double* g = axis == 0 ? &gaze_offset_.x
                          : (axis == 1 ? &gaze_offset_.y : &gaze_offset_.z);
    double* v = axis == 0 ? &gaze_velocity_.x
                          : (axis == 1 ? &gaze_velocity_.y : &gaze_velocity_.z);
    const double spring_v = -params_.gaze_rate * *g;
    *v = ou_step(*v, spring_v, 2.0, params_.gaze_sigma_m, dt, rng_);
    *g += *v * dt;
  }

  // Brief look-away glances (headset users): gaze leaves the content for a
  // few hundred milliseconds, which breaks viewport overlap exactly the way
  // headset freedom does in the paper's study.
  if (look_away_remaining_s_ > 0.0) {
    look_away_remaining_s_ -= dt;
  } else if (params_.look_away_per_s > 0.0 &&
             rng_.chance(1.0 - std::exp(-params_.look_away_per_s * dt))) {
    look_away_remaining_s_ = rng_.uniform(0.3, 1.0);
    const double yaw = rng_.uniform(0.0, kTwoPi);
    look_away_dir_ = {std::cos(yaw), std::sin(yaw), rng_.uniform(-0.2, 0.4)};
  }

  refresh_pose();
  return pose_;
}

void MobilityModel::refresh_pose() {
  const geo::Vec3 center = params_.attractor;
  const geo::Vec3 position{center.x + radius_ * std::cos(angle_),
                           center.y + radius_ * std::sin(angle_), height_};
  geo::Vec3 target = center + gaze_offset_;
  if (look_away_remaining_s_ > 0.0)
    target = position + look_away_dir_ * 3.0;
  const geo::Pose ideal = geo::Pose::look_at(position, target);
  // Head rotation has inertia: blend toward the ideal look-at orientation
  // with a ~100 ms time constant instead of snapping (real heads cannot
  // snap; this also makes short-horizon orientation predictable).
  geo::Quat orientation = ideal.orientation;
  if (has_orientation_) {
    orientation = slerp(pose_.orientation, ideal.orientation, 0.28);
  }
  has_orientation_ = true;
  pose_ = {position, orientation.normalized()};
}

Trace generate_trace(const MobilityParams& params, std::uint64_t seed,
                     std::size_t samples, double rate_hz) {
  MobilityModel model(params, seed);
  Trace trace;
  trace.device = params.device;
  trace.sample_rate_hz = rate_hz;
  trace.poses.reserve(samples);
  const double dt = 1.0 / rate_hz;
  for (std::size_t i = 0; i < samples; ++i) {
    trace.poses.push_back(model.pose());
    model.step(dt);
  }
  return trace;
}

}  // namespace volcast::trace
