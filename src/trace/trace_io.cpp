#include "trace/trace_io.h"

#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <string>

namespace volcast::trace {

namespace {
constexpr const char* kMagic = "VCTRACE";
constexpr int kVersion = 1;
}  // namespace

void write_trace(std::ostream& out, const Trace& trace) {
  out << kMagic << ' ' << kVersion << ' ' << to_string(trace.device) << ' '
      << trace.sample_rate_hz << ' ' << trace.poses.size() << '\n';
  out << std::setprecision(17);
  for (const geo::Pose& p : trace.poses) {
    out << p.position.x << ' ' << p.position.y << ' ' << p.position.z << ' '
        << p.orientation.w << ' ' << p.orientation.x << ' ' << p.orientation.y
        << ' ' << p.orientation.z << '\n';
  }
  if (!out) throw std::runtime_error("trace_io: write failed");
}

Trace read_trace(std::istream& in) {
  std::string magic;
  int version = 0;
  std::string device;
  Trace trace;
  std::size_t count = 0;
  if (!(in >> magic >> version >> device >> trace.sample_rate_hz >> count))
    throw std::runtime_error("trace_io: malformed header");
  if (magic != kMagic || version != kVersion)
    throw std::runtime_error("trace_io: bad magic or version");
  if (device == "PH") {
    trace.device = DeviceType::kSmartphone;
  } else if (device == "HM") {
    trace.device = DeviceType::kHeadset;
  } else {
    throw std::runtime_error("trace_io: unknown device type '" + device + "'");
  }
  if (trace.sample_rate_hz <= 0.0)
    throw std::runtime_error("trace_io: non-positive sample rate");
  // A pose line is >= 14 characters; a count far beyond any plausible
  // remaining input is a corrupt header. (Streams do not always expose
  // their size, so bound by an absolute cap: 30 Hz for 24 h.)
  if (count > 30u * 60u * 60u * 24u)
    throw std::runtime_error("trace_io: implausible sample count");
  trace.poses.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    geo::Pose p;
    if (!(in >> p.position.x >> p.position.y >> p.position.z >>
          p.orientation.w >> p.orientation.x >> p.orientation.y >>
          p.orientation.z))
      throw std::runtime_error("trace_io: truncated pose data");
    trace.poses.push_back(p);
  }
  return trace;
}

std::string trace_to_string(const Trace& trace) {
  std::ostringstream out;
  write_trace(out, trace);
  return out.str();
}

Trace trace_from_string(const std::string& text) {
  std::istringstream in(text);
  return read_trace(in);
}

}  // namespace volcast::trace
