#include "trace/user_study.h"

namespace volcast::trace {

UserStudy::UserStudy(UserStudyConfig config) : config_(config) {
  Rng rng(config_.seed);
  const std::size_t total = config_.smartphone_users + config_.headset_users;
  traces_.reserve(total);
  for (std::size_t u = 0; u < total; ++u) {
    const DeviceType device = u < config_.smartphone_users
                                  ? DeviceType::kSmartphone
                                  : DeviceType::kHeadset;
    // Spread home angles across the configured arc, with per-user jitter so
    // groups are not perfectly regular.
    const double frac =
        total > 1 ? static_cast<double>(u) / static_cast<double>(total - 1)
                  : 0.5;
    const double home_angle = config_.arc_center_rad +
                              (frac - 0.5) * config_.spread_rad +
                              rng.uniform(-0.1, 0.1);
    Rng param_rng = rng.fork();
    const MobilityParams params = MobilityParams::for_device(
        device, param_rng, config_.content_center, home_angle);
    traces_.push_back(generate_trace(params, rng.next_u64(),
                                     config_.samples_per_user,
                                     config_.sample_rate_hz));
  }
}

std::vector<std::size_t> UserStudy::users_of(DeviceType device) const {
  std::vector<std::size_t> out;
  for (std::size_t u = 0; u < traces_.size(); ++u)
    if (traces_[u].device == device) out.push_back(u);
  return out;
}

}  // namespace volcast::trace
