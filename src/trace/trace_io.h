// Plain-text serialization for 6DoF traces, so experiments can persist and
// share trajectories (and users can substitute real captures for the
// synthetic study).
//
// Format (one trace per stream):
//   VCTRACE 1 <PH|HM> <rate_hz> <count>
//   px py pz qw qx qy qz      (count lines)
#pragma once

#include <iosfwd>
#include <string>

#include "trace/mobility.h"

namespace volcast::trace {

/// Writes a trace. Throws std::runtime_error on stream failure.
void write_trace(std::ostream& out, const Trace& trace);

/// Reads a trace written by write_trace. Throws std::runtime_error on
/// malformed input.
[[nodiscard]] Trace read_trace(std::istream& in);

/// Convenience: round-trips via a string.
[[nodiscard]] std::string trace_to_string(const Trace& trace);
[[nodiscard]] Trace trace_from_string(const std::string& text);

}  // namespace volcast::trace
