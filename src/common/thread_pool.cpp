#include "common/thread_pool.h"

#include <atomic>
#include <exception>
#include <limits>

namespace volcast::common {

namespace {
/// Set inside worker threads so nested parallel_for degrades to serial
/// instead of deadlocking on the pool it is already running on.
thread_local bool tls_in_pool_worker = false;
}  // namespace

struct ThreadPool::Batch {
  const std::function<void(std::size_t)>* chunk_fn = nullptr;
  std::size_t chunks = 0;
  std::atomic<std::size_t> next{0};          // chunk claim ticket
  std::size_t done = 0;                      // guarded by pool mu_
  std::vector<std::exception_ptr> errors;    // one slot per chunk
  /// Lowest chunk index that has failed so far; chunks claimed behind it
  /// are cancelled (fail-fast) instead of run.
  std::atomic<std::size_t> first_error{std::numeric_limits<std::size_t>::max()};
};

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  thread_count_ = threads;
  workers_.reserve(threads > 0 ? threads - 1 : 0);
  for (std::size_t i = 0; i + 1 < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::execute(Batch& batch) {
  for (;;) {
    const std::size_t chunk =
        batch.next.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= batch.chunks) return;
    // Fail-fast: skip a claimed chunk only when a *strictly lower* chunk
    // already failed — the lowest recorded failure then provably ran, so
    // the lowest-failure rethrow contract survives cancellation.
    if (batch.first_error.load(std::memory_order_acquire) < chunk) {
      std::lock_guard<std::mutex> lock(mu_);
      if (++batch.done == batch.chunks) done_cv_.notify_all();
      continue;
    }
    try {
      (*batch.chunk_fn)(chunk);
    } catch (...) {
      batch.errors[chunk] = std::current_exception();
      std::size_t prev = batch.first_error.load(std::memory_order_relaxed);
      while (chunk < prev &&
             !batch.first_error.compare_exchange_weak(
                 prev, chunk, std::memory_order_release,
                 std::memory_order_relaxed)) {
      }
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (++batch.done == batch.chunks) done_cv_.notify_all();
  }
}

void ThreadPool::run_chunks(
    std::size_t chunks, const std::function<void(std::size_t)>& chunk_fn) {
  auto serial = [&] {
    for (std::size_t c = 0; c < chunks; ++c) chunk_fn(c);
  };
  if (tls_in_pool_worker) {  // nested use: run inline, same results
    serial();
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->chunk_fn = &chunk_fn;
  batch->chunks = chunks;
  batch->errors.resize(chunks);
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (batch_ != nullptr) {
      // Another thread is mid-batch on this pool (unsupported concurrent
      // use): degrade to serial rather than interleave two batches.
      lock.unlock();
      serial();
      return;
    }
    batch_ = batch;
  }
  work_cv_.notify_all();
  execute(*batch);  // the caller is one of the lanes
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return batch->done == batch->chunks; });
    batch_.reset();
  }
  // Deterministic error propagation: lowest chunk index wins.
  for (std::exception_ptr& error : batch->errors)
    if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  tls_in_pool_worker = true;
  for (;;) {
    std::shared_ptr<Batch> current;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ ||
               (batch_ != nullptr &&
                batch_->next.load(std::memory_order_relaxed) <
                    batch_->chunks);
      });
      if (stop_) return;
      current = batch_;
    }
    execute(*current);
  }
}

}  // namespace volcast::common
