// Little-endian (de)serialization helpers shared by every binary format in
// the tree (point-cloud codecs, the VideoStore blob, trace files).
//
// All values are stored little-endian regardless of host byte order. On
// little-endian hosts every helper compiles to a single std::memcpy (which
// the optimizer turns into an unaligned load/store) instead of the
// byte-at-a-time shift loops these replaced.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace volcast::common {

namespace detail {

template <typename T>
[[nodiscard]] constexpr T byteswap(T v) noexcept {
  static_assert(std::is_unsigned_v<T>);
  T out = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out = static_cast<T>(out << 8);
    out = static_cast<T>(out | ((v >> (8 * i)) & 0xff));
  }
  return out;
}

template <typename T>
[[nodiscard]] constexpr T to_little(T v) noexcept {
  if constexpr (std::endian::native == std::endian::big)
    return byteswap(v);
  else
    return v;
}

}  // namespace detail

/// Appends `v` to `out` as `sizeof(T)` little-endian bytes.
template <typename T>
inline void append_le(std::vector<std::uint8_t>& out, T v) {
  static_assert(std::is_unsigned_v<T>);
  const T le = detail::to_little(v);
  std::uint8_t bytes[sizeof(T)];
  std::memcpy(bytes, &le, sizeof(T));
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

/// Reads a little-endian `T` from `in` at byte offset `at`.
/// Callers are responsible for bounds (at + sizeof(T) <= in.size()).
template <typename T>
[[nodiscard]] inline T read_le(std::span<const std::uint8_t> in,
                               std::size_t at) noexcept {
  static_assert(std::is_unsigned_v<T>);
  T v;
  std::memcpy(&v, in.data() + at, sizeof(T));
  return detail::to_little(v);
}

inline void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  append_le(out, v);
}
inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  append_le(out, v);
}
inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  append_le(out, v);
}
inline void put_f64(std::vector<std::uint8_t>& out, double v) {
  append_le(out, std::bit_cast<std::uint64_t>(v));
}

[[nodiscard]] inline std::uint16_t get_u16(std::span<const std::uint8_t> in,
                                           std::size_t at) noexcept {
  return read_le<std::uint16_t>(in, at);
}
[[nodiscard]] inline std::uint32_t get_u32(std::span<const std::uint8_t> in,
                                           std::size_t at) noexcept {
  return read_le<std::uint32_t>(in, at);
}
[[nodiscard]] inline std::uint64_t get_u64(std::span<const std::uint8_t> in,
                                           std::size_t at) noexcept {
  return read_le<std::uint64_t>(in, at);
}
[[nodiscard]] inline double get_f64(std::span<const std::uint8_t> in,
                                    std::size_t at) noexcept {
  return std::bit_cast<double>(read_le<std::uint64_t>(in, at));
}

}  // namespace volcast::common
