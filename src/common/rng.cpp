#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace volcast {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // splitmix64 expansion guarantees a non-zero state for any seed.
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Lemire-style rejection-free bounded sampling (bias < 2^-64 * span).
  __extension__ using uint128 = unsigned __int128;
  const auto hi64 =
      static_cast<std::uint64_t>((uint128{next_u64()} * span) >> 64);
  return lo + static_cast<std::int64_t>(hi64);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

bool Rng::chance(double p) noexcept { return uniform() < p; }

Rng Rng::fork() noexcept {
  Rng child(0);
  for (auto& word : child.state_) word = next_u64();
  // Guard against the (astronomically unlikely) all-zero state.
  child.state_[0] |= 1;
  child.has_cached_normal_ = false;
  return child;
}

}  // namespace volcast
