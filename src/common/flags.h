// Minimal command-line flag parser for the tools and examples.
// Supports --name=value, --name value, and boolean --name switches, plus
// generated --help text. Deliberately tiny — no external dependencies.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace volcast {

/// Fixed name -> value mapping for enum-valued flags. Replaces the
/// hand-rolled if/else ladders in the tools:
///
///   const FlagChoices<AdaptationPolicy> kAdaptation{
///       {"none", AdaptationPolicy::kNone}, ...};
///   auto policy = kAdaptation.parse(flags.str("adaptation"));
///   if (!policy) return fail("unknown --adaptation (expected " +
///                            kAdaptation.names() + ")");
template <typename T>
class FlagChoices {
 public:
  FlagChoices(std::initializer_list<std::pair<const char*, T>> items)
      : items_(items.begin(), items.end()) {}

  /// The mapped value, or nullopt when `name` is not a known choice.
  [[nodiscard]] std::optional<T> parse(const std::string& name) const {
    for (const auto& [known, value] : items_)
      if (name == known) return value;
    return std::nullopt;
  }

  /// "a | b | c" for help and error text.
  [[nodiscard]] std::string names() const {
    std::string out;
    for (const auto& [known, value] : items_) {
      if (!out.empty()) out += " | ";
      out += known;
    }
    return out;
  }

 private:
  std::vector<std::pair<const char*, T>> items_;
};

/// Splits "key=value,key=value" pairs (the --policy flag syntax). Returns
/// nullopt — with `error` naming the offending chunk — on a missing '='.
[[nodiscard]] inline std::optional<std::vector<std::pair<std::string, std::string>>>
parse_key_value_list(const std::string& text, std::string* error = nullptr) {
  std::vector<std::pair<std::string, std::string>> out;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      if (error != nullptr) *error = "expected key=value, got '" + item + "'";
      return std::nullopt;
    }
    out.emplace_back(item.substr(0, eq), item.substr(eq + 1));
  }
  return out;
}

/// Declarative flag set with parsing and help rendering.
class FlagParser {
 public:
  explicit FlagParser(std::string program, std::string description = "")
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Registers a string-valued flag with a default.
  void add_string(const std::string& name, std::string default_value,
                  std::string help) {
    entries_[name] = {std::move(default_value), std::move(help), false};
  }
  /// Registers a numeric flag (stored as string, parsed on access).
  void add_number(const std::string& name, double default_value,
                  std::string help) {
    std::ostringstream out;
    out << default_value;
    entries_[name] = {out.str(), std::move(help), false};
  }
  /// Registers a boolean switch (false unless present).
  void add_switch(const std::string& name, std::string help) {
    entries_[name] = {"false", std::move(help), true};
  }

  /// Parses argv. On failure returns false and sets `error`. "--help" sets
  /// the help_requested() state and returns true.
  bool parse(int argc, const char* const* argv, std::string* error = nullptr) {
    auto fail = [error](const std::string& message) {
      if (error != nullptr) *error = message;
      return false;
    };
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        help_requested_ = true;
        return true;
      }
      if (arg.rfind("--", 0) != 0) return fail("unexpected argument: " + arg);
      arg = arg.substr(2);
      std::string value;
      bool has_value = false;
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        value = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
        has_value = true;
      }
      const auto it = entries_.find(arg);
      if (it == entries_.end()) return fail("unknown flag: --" + arg);
      if (it->second.is_switch) {
        if (has_value && value != "true" && value != "false")
          return fail("switch --" + arg + " takes no value");
        it->second.value = has_value ? value : "true";
        continue;
      }
      if (!has_value) {
        if (i + 1 >= argc) return fail("flag --" + arg + " needs a value");
        value = argv[++i];
      }
      it->second.value = value;
    }
    return true;
  }

  [[nodiscard]] bool help_requested() const noexcept {
    return help_requested_;
  }

  [[nodiscard]] std::string str(const std::string& name) const {
    return entries_.at(name).value;
  }
  [[nodiscard]] double num(const std::string& name) const {
    return std::stod(entries_.at(name).value);
  }
  [[nodiscard]] long integer(const std::string& name) const {
    return std::stol(entries_.at(name).value);
  }
  /// integer() clamped at zero and converted — the cast every count-valued
  /// flag (users, frames, threads, ...) in the tools otherwise spells out.
  [[nodiscard]] std::size_t size(const std::string& name) const {
    const long v = integer(name);
    return v > 0 ? static_cast<std::size_t>(v) : 0;
  }
  [[nodiscard]] std::uint64_t u64(const std::string& name) const {
    return static_cast<std::uint64_t>(std::stoull(entries_.at(name).value));
  }
  [[nodiscard]] bool on(const std::string& name) const {
    return entries_.at(name).value == "true";
  }

  [[nodiscard]] std::string help() const {
    std::ostringstream out;
    out << program_;
    if (!description_.empty()) out << " — " << description_;
    out << "\n\nflags:\n";
    for (const auto& [name, entry] : entries_) {
      out << "  --" << name;
      if (!entry.is_switch) out << "=<" << entry.value << ">";
      out << "\n      " << entry.help << "\n";
    }
    out << "  --help\n      show this message\n";
    return out.str();
  }

 private:
  struct Entry {
    std::string value;
    std::string help;
    bool is_switch = false;
  };
  std::string program_;
  std::string description_;
  std::map<std::string, Entry> entries_;
  bool help_requested_ = false;
};

}  // namespace volcast
