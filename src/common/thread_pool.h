// Fixed-size worker pool with a deterministic parallel_for primitive.
//
// The per-frame scheduler must produce bit-identical results for any thread
// count, so parallel_for makes only one guarantee interesting to callers:
// fn(i) is invoked exactly once for every i in [0, n), with results expected
// to land in pre-sized per-index slots. The index range is partitioned into
// min(thread_count, n) contiguous chunks; which OS thread executes which
// chunk is unspecified and must not matter. Order-dependent accumulation
// (counters, running sums) belongs in per-index slots reduced serially after
// the parallel region — never in shared floats or atomics.
//
// Usage notes:
//   * thread_count() == 1 (or n <= 1) runs inline on the caller — the serial
//     path, with zero synchronization.
//   * The calling thread participates in the work, so a pool of N provides N
//     lanes with N-1 spawned workers.
//   * Nested parallel_for (from inside a task) runs the inner loop serially
//     on the worker — safe, still deterministic, never deadlocks.
//   * Exceptions thrown by fn are captured and the one from the lowest chunk
//     index is rethrown on the caller after the whole batch finishes.
//   * Fail-fast: once any chunk has failed, chunks *behind* it that were not
//     yet claimed are cancelled instead of run. Only indexes above a failure
//     are ever skipped, so the lowest-failure rethrow stays deterministic.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace volcast::common {

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller is the remaining lane).
  /// `threads == 0` means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallel lanes (spawned workers + the calling thread).
  [[nodiscard]] std::size_t thread_count() const noexcept {
    return thread_count_;
  }

  /// Calls fn(i) exactly once for each i in [0, n); blocks until all
  /// invocations finished. Deterministic for slot-indexed writes.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    if (n == 0) return;
    const std::size_t chunks = std::min(thread_count_, n);
    if (chunks <= 1 || workers_.empty()) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    run_chunks(chunks, [&fn, n, chunks](std::size_t chunk) {
      const std::size_t lo = n * chunk / chunks;
      const std::size_t hi = n * (chunk + 1) / chunks;
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }

  /// Like parallel_for, but every index is its own claimable task (tasks
  /// may outnumber lanes), so heavyweight, unevenly-sized jobs
  /// load-balance dynamically and fail-fast cancellation has real unstarted
  /// work to cancel. fn(i) runs at most once per i: after any task throws,
  /// tasks with a higher index that were not yet claimed are skipped, and
  /// the exception from the lowest-indexed failed task is rethrown. Use for
  /// coarse jobs (whole sessions); parallel_for's contiguous chunks remain
  /// the right shape for fine-grained per-element loops.
  template <typename Fn>
  void parallel_tasks(std::size_t n, Fn&& fn) {
    if (n == 0) return;
    if (thread_count_ <= 1 || workers_.empty() || n == 1) {
      // Serial path: a throw propagates immediately, cancelling the rest —
      // the same fail-fast contract with zero synchronization.
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    run_chunks(n, [&fn](std::size_t i) { fn(i); });
  }

  /// Convenience for optional pools: runs on `pool` when non-null, else
  /// serially inline. Lets subsystems accept a `ThreadPool*` that defaults
  /// to nullptr without branching at every call site.
  template <typename Fn>
  static void run(ThreadPool* pool, std::size_t n, Fn&& fn) {
    if (pool != nullptr) {
      pool->parallel_for(n, std::forward<Fn>(fn));
      return;
    }
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }

 private:
  struct Batch;

  /// Runs chunk_fn(c) for each c in [0, chunks) across the pool.
  void run_chunks(std::size_t chunks,
                  const std::function<void(std::size_t)>& chunk_fn);
  void execute(Batch& batch);
  void worker_loop();

  std::size_t thread_count_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a batch
  std::condition_variable done_cv_;   // caller waits for completion
  std::shared_ptr<Batch> batch_;      // active batch (guarded by mu_)
  bool stop_ = false;                 // guarded by mu_
};

}  // namespace volcast::common
