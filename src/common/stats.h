// Small statistics toolkit used by the benchmark harness and the QoE
// accounting: online moments, percentiles, empirical CDFs and simple linear
// regression (the paper's baseline viewport predictor).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace volcast {

/// Online mean / variance / extrema accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Empirical distribution: collects samples, answers percentile / CDF queries.
class EmpiricalDistribution {
 public:
  void add(double x) { samples_.push_back(x); }
  void add_all(std::span<const double> xs);

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// Percentile in [0, 100] with linear interpolation. Requires non-empty.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  /// Empirical CDF value P[X <= x].
  [[nodiscard]] double cdf(double x) const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Sorted copy of the samples (useful for exporting full CDF curves).
  [[nodiscard]] std::vector<double> sorted() const;

  /// Renders "x cdf(x)" rows at `points` evenly spaced sample quantiles;
  /// the format matches the gnuplot-style figures in the paper.
  [[nodiscard]] std::string format_cdf(std::size_t points = 20) const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Ordinary least squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;

  [[nodiscard]] double at(double x) const noexcept {
    return slope * x + intercept;
  }
};

/// Fits a line to (x, y) pairs. Returns a flat fit through the mean when the
/// x values are degenerate (all equal or fewer than two points).
[[nodiscard]] LinearFit fit_line(std::span<const double> xs,
                                 std::span<const double> ys);

/// Harmonic mean, the classic throughput predictor baseline; 0 if empty or
/// any sample is <= 0.
[[nodiscard]] double harmonic_mean(std::span<const double> xs) noexcept;

}  // namespace volcast
