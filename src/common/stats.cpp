#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace volcast {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void EmpiricalDistribution::add_all(std::span<const double> xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void EmpiricalDistribution::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalDistribution::percentile(double p) const {
  if (samples_.empty())
    throw std::logic_error("percentile() on empty distribution");
  ensure_sorted();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

double EmpiricalDistribution::cdf(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double EmpiricalDistribution::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

double EmpiricalDistribution::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double EmpiricalDistribution::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

std::vector<double> EmpiricalDistribution::sorted() const {
  ensure_sorted();
  return samples_;
}

std::string EmpiricalDistribution::format_cdf(std::size_t points) const {
  std::ostringstream out;
  if (samples_.empty() || points == 0) return out.str();
  ensure_sorted();
  for (std::size_t i = 0; i < points; ++i) {
    const double q =
        100.0 * static_cast<double>(i) / static_cast<double>(points - 1);
    const double x = percentile(q);
    out << x << ' ' << cdf(x) << '\n';
  }
  return out.str();
}

LinearFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  const std::size_t n = std::min(xs.size(), ys.size());
  LinearFit fit;
  if (n == 0) return fit;
  double mx = 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    sxx += dx * dx;
    sxy += dx * (ys[i] - my);
  }
  if (sxx <= 0.0) {
    fit.slope = 0.0;
    fit.intercept = my;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  return fit;
}

double harmonic_mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double denom = 0.0;
  for (double x : xs) {
    if (x <= 0.0) return 0.0;
    denom += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / denom;
}

}  // namespace volcast
