// Fixed-capacity ring buffer used for sliding-window histories: viewport
// predictor pose windows, throughput samples for bandwidth estimation, and
// RSS histories in the link simulator.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace volcast {

/// Bounded FIFO that overwrites the oldest element when full.
///
/// Indexing is oldest-first: `buf[0]` is the oldest retained element and
/// `buf[size() - 1]` the newest, which matches how regression windows are
/// consumed (x = sample age, y = value).
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) throw std::invalid_argument("RingBuffer capacity == 0");
    data_.reserve(capacity);
  }

  void push(const T& value) {
    if (data_.size() < capacity_) {
      data_.push_back(value);
    } else {
      data_[head_] = value;
      head_ = (head_ + 1) % capacity_;
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] bool full() const noexcept { return data_.size() == capacity_; }

  /// Oldest-first access; index must be < size().
  [[nodiscard]] const T& operator[](std::size_t i) const {
    if (i >= data_.size()) throw std::out_of_range("RingBuffer index");
    return data_[(head_ + i) % data_.size()];
  }

  [[nodiscard]] const T& front() const { return (*this)[0]; }
  [[nodiscard]] const T& back() const { return (*this)[size() - 1]; }

  void clear() noexcept {
    data_.clear();
    head_ = 0;
  }

  /// Copies out the contents, oldest-first.
  [[nodiscard]] std::vector<T> to_vector() const {
    std::vector<T> out;
    out.reserve(data_.size());
    for (std::size_t i = 0; i < data_.size(); ++i) out.push_back((*this)[i]);
    return out;
  }

 private:
  std::size_t capacity_;
  std::vector<T> data_;
  std::size_t head_ = 0;  // index of the oldest element once full
};

}  // namespace volcast
