// Deterministic pseudo-random number generation for reproducible simulations.
//
// All stochastic components in volcast (mobility models, channel fading,
// workload generators) draw from an explicitly seeded `Rng` so that every
// experiment in EXPERIMENTS.md is bit-reproducible across runs and platforms.
// The generator is xoshiro256++ (Blackman & Vigna), which is small, fast and
// has no observable statistical defects at the scale we use it.
#pragma once

#include <array>
#include <cstdint>

namespace volcast {

/// Deterministic, seedable PRNG (xoshiro256++) with convenience samplers.
///
/// Satisfies the essentials of `std::uniform_random_bit_generator` so it can
/// also be used with <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed via splitmix64 expansion.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next raw 64-bit value.
  result_type operator()() noexcept { return next_u64(); }
  result_type next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Standard normal via Box-Muller (cached second value).
  double normal() noexcept;
  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;
  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate) noexcept;
  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) noexcept;

  /// Derives an independent child generator; used to give each simulated
  /// user / link its own stream without cross-coupling.
  [[nodiscard]] Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace volcast
