// Minimal fixed-width ASCII table renderer used by the benchmark harness to
// print paper-style tables (e.g. Table 1) in a stable, diff-able format.
#pragma once

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

namespace volcast {

/// Accumulates rows of strings and renders them column-aligned.
class AsciiTable {
 public:
  /// Sets the header row (optional).
  void header(std::vector<std::string> cells) { header_ = std::move(cells); }

  /// Appends a data row.
  void row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Formats a double with fixed precision — convenience for row building.
  [[nodiscard]] static std::string num(double v, int precision = 1) {
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision) << v;
    return out.str();
  }

  /// Renders the table with two-space column gutters and a rule under the
  /// header.
  [[nodiscard]] std::string render() const {
    std::vector<std::size_t> widths;
    auto widen = [&widths](const std::vector<std::string>& cells) {
      if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
      for (std::size_t i = 0; i < cells.size(); ++i)
        widths[i] = std::max(widths[i], cells[i].size());
    };
    if (!header_.empty()) widen(header_);
    for (const auto& r : rows_) widen(r);

    std::ostringstream out;
    auto emit = [&out, &widths](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        out << std::left << std::setw(static_cast<int>(widths[i])) << cells[i];
        if (i + 1 < cells.size()) out << "  ";
      }
      out << '\n';
    };
    if (!header_.empty()) {
      emit(header_);
      std::size_t total = 0;
      for (std::size_t w : widths) total += w + 2;
      out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    }
    for (const auto& r : rows_) emit(r);
    return out.str();
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace volcast
