// Unit helpers shared across the PHY / MAC / application layers.
//
// Conventions used throughout volcast:
//   * power       : dBm (log) or milliwatts (linear)
//   * gain / loss : dB
//   * data rates  : megabits per second (Mbps)
//   * data sizes  : bits (double, to avoid overflow-prone integer math in
//                   rate computations) or bytes where a payload is meant
//   * time        : seconds (double)
#pragma once

#include <cmath>

namespace volcast {

/// Converts a linear milliwatt power to dBm.
[[nodiscard]] inline double mw_to_dbm(double mw) noexcept {
  return 10.0 * std::log10(mw);
}

/// Converts a dBm power to linear milliwatts.
[[nodiscard]] inline double dbm_to_mw(double dbm) noexcept {
  return std::pow(10.0, dbm / 10.0);
}

/// Converts a linear power ratio to dB.
[[nodiscard]] inline double ratio_to_db(double ratio) noexcept {
  return 10.0 * std::log10(ratio);
}

/// Converts dB to a linear power ratio.
[[nodiscard]] inline double db_to_ratio(double db) noexcept {
  return std::pow(10.0, db / 10.0);
}

/// Megabits -> bits.
[[nodiscard]] constexpr double megabits(double mb) noexcept {
  return mb * 1e6;
}

/// Bytes -> bits.
[[nodiscard]] constexpr double byte_bits(double bytes) noexcept {
  return bytes * 8.0;
}

/// Bits -> megabits.
[[nodiscard]] constexpr double bits_to_megabits(double bits) noexcept {
  return bits / 1e6;
}

/// Transmission time in seconds for `bits` at `rate_mbps`.
[[nodiscard]] inline double tx_time_s(double bits, double rate_mbps) noexcept {
  return bits / megabits(rate_mbps);
}

/// Milliseconds -> seconds.
[[nodiscard]] constexpr double ms(double milliseconds) noexcept {
  return milliseconds * 1e-3;
}

/// Speed of light in metres per second.
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// Wavelength (m) of a carrier at `freq_hz`.
[[nodiscard]] constexpr double wavelength_m(double freq_hz) noexcept {
  return kSpeedOfLight / freq_hz;
}

/// 60 GHz ISM carrier used by 802.11ad channel 2.
inline constexpr double kMmWaveCarrierHz = 60.48e9;

}  // namespace volcast
