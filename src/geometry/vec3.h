// 3D vector math. Double precision throughout: the simulator mixes
// centimetre-scale cell geometry with metre-scale room geometry and
// nanosecond-scale phase terms, and float error is an avoidable headache.
#pragma once

#include <cmath>
#include <ostream>

namespace volcast::geo {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double px, double py, double pz) : x(px), y(py), z(pz) {}

  constexpr Vec3 operator+(const Vec3& o) const noexcept {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const noexcept {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator-() const noexcept { return {-x, -y, -z}; }
  constexpr Vec3 operator*(double s) const noexcept {
    return {x * s, y * s, z * s};
  }
  constexpr Vec3 operator/(double s) const noexcept {
    return {x / s, y / s, z / s};
  }
  constexpr Vec3& operator+=(const Vec3& o) noexcept {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) noexcept {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) noexcept {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }
  constexpr bool operator==(const Vec3& o) const noexcept = default;

  [[nodiscard]] constexpr double dot(const Vec3& o) const noexcept {
    return x * o.x + y * o.y + z * o.z;
  }
  [[nodiscard]] constexpr Vec3 cross(const Vec3& o) const noexcept {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  [[nodiscard]] constexpr double norm_sq() const noexcept { return dot(*this); }
  [[nodiscard]] double norm() const noexcept { return std::sqrt(norm_sq()); }
  [[nodiscard]] double distance(const Vec3& o) const noexcept {
    return (*this - o).norm();
  }

  /// Unit vector in the same direction; returns +X for the zero vector so
  /// that degenerate inputs stay finite instead of producing NaNs.
  [[nodiscard]] Vec3 normalized() const noexcept {
    const double n = norm();
    if (n <= 0.0) return {1.0, 0.0, 0.0};
    return *this / n;
  }

  /// Component-wise minimum / maximum — AABB building blocks.
  [[nodiscard]] constexpr Vec3 min(const Vec3& o) const noexcept {
    return {x < o.x ? x : o.x, y < o.y ? y : o.y, z < o.z ? z : o.z};
  }
  [[nodiscard]] constexpr Vec3 max(const Vec3& o) const noexcept {
    return {x > o.x ? x : o.x, y > o.y ? y : o.y, z > o.z ? z : o.z};
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) noexcept { return v * s; }

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

/// Linear interpolation between a and b at parameter t in [0, 1].
[[nodiscard]] constexpr Vec3 lerp(const Vec3& a, const Vec3& b,
                                  double t) noexcept {
  return a + (b - a) * t;
}

}  // namespace volcast::geo
