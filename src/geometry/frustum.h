// View frustum construction and frustum culling.
//
// The paper determines the cells overlapping a user's 3D viewport with
// frustum culling (ref [26] in the paper); this is that primitive. A frustum
// is stored as six inward-facing planes, and AABB tests use the standard
// p-vertex rejection test (exact for box-vs-plane, conservative for the
// frustum corners, which is the behaviour streaming systems want: never cull
// a visible cell).
#pragma once

#include <array>

#include "geometry/aabb.h"
#include "geometry/pose.h"
#include "geometry/vec3.h"

namespace volcast::geo {

/// Plane in Hessian form: normal . p + d = 0; `normal` points to the
/// inside half-space for frustum planes.
struct Plane {
  Vec3 normal{0, 0, 1};
  double d = 0.0;

  /// Signed distance of p to the plane (> 0 on the inside).
  [[nodiscard]] double signed_distance(const Vec3& p) const noexcept {
    return normal.dot(p) + d;
  }

  [[nodiscard]] static Plane from_point_normal(const Vec3& point,
                                               const Vec3& normal) noexcept {
    const Vec3 n = normal.normalized();
    return {n, -n.dot(point)};
  }
};

/// Camera intrinsics for frustum construction.
struct CameraIntrinsics {
  double horizontal_fov_rad = 1.3962634015954636;  // 80 degrees
  double aspect = 9.0 / 16.0;                      // vertical / horizontal
  double near_m = 0.05;
  double far_m = 20.0;
};

/// Six-plane view frustum.
class Frustum {
 public:
  Frustum() = default;

  /// Builds the frustum of a camera at `pose` (forward = pose.forward()).
  Frustum(const Pose& pose, const CameraIntrinsics& intrinsics);

  /// True if `p` lies inside all six planes.
  [[nodiscard]] bool contains(const Vec3& p) const noexcept;

  /// Conservative frustum/AABB overlap test (may rarely report overlap for a
  /// box outside near an edge; never misses a truly overlapping box).
  [[nodiscard]] bool intersects(const Aabb& box) const noexcept;

  [[nodiscard]] const std::array<Plane, 6>& planes() const noexcept {
    return planes_;
  }
  [[nodiscard]] const Pose& pose() const noexcept { return pose_; }
  [[nodiscard]] const CameraIntrinsics& intrinsics() const noexcept {
    return intrinsics_;
  }

 private:
  std::array<Plane, 6> planes_{};  // near, far, left, right, top, bottom
  Pose pose_{};
  CameraIntrinsics intrinsics_{};
};

}  // namespace volcast::geo
