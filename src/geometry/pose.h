// 6DoF pose: the paper's fundamental viewer state — 3DoF translation
// (X, Y, Z) plus 3DoF rotation (yaw, pitch, roll).
#pragma once

#include "geometry/quat.h"
#include "geometry/vec3.h"

namespace volcast::geo {

/// Position + orientation of a viewer (or antenna) in world space.
///
/// Camera convention: the viewing direction is the pose's rotated +X axis,
/// +Z is up and +Y is left. This matches the trace generator, the frustum
/// builder and the phased-array boresight.
struct Pose {
  Vec3 position{};
  Quat orientation{};

  [[nodiscard]] Vec3 forward() const noexcept {
    return orientation.rotate({1, 0, 0});
  }
  [[nodiscard]] Vec3 up() const noexcept { return orientation.rotate({0, 0, 1}); }
  [[nodiscard]] Vec3 left() const noexcept {
    return orientation.rotate({0, 1, 0});
  }

  /// Pose at `position` looking toward `target` with +Z up.
  [[nodiscard]] static Pose look_at(const Vec3& position,
                                    const Vec3& target) noexcept {
    Pose p;
    p.position = position;
    p.orientation = Quat::between({1, 0, 0}, target - position);
    return p;
  }

  /// Translation distance plus a comparable rotational term; used as the
  /// predictor error metric (metres + radians, unweighted).
  [[nodiscard]] double distance(const Pose& o) const noexcept {
    return position.distance(o.position) +
           orientation.angular_distance(o.orientation);
  }
};

/// Component-wise interpolation of two poses (lerp position, slerp rotation).
[[nodiscard]] inline Pose interpolate(const Pose& a, const Pose& b,
                                      double t) noexcept {
  return {lerp(a.position, b.position, t),
          slerp(a.orientation, b.orientation, t)};
}

}  // namespace volcast::geo
