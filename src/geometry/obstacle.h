// Human bodies as geometric obstacles. One model serves two layers:
// the application layer (a user's body occludes another user's viewport)
// and the physical layer (a body crossing an AP->client line of sight
// attenuates the 60 GHz link) — this shared geometry is exactly what the
// paper's cross-layer blockage prediction exploits.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

#include "geometry/vec3.h"

namespace volcast::geo {

/// A person modelled as a vertical capsule (axis along +Z from the floor).
struct BodyObstacle {
  Vec3 position{};       // x,y locate the axis; z is ignored
  double radius_m = 0.25;
  double height_m = 1.8;
};

/// XY-plane distance from the body axis to the segment a->b, evaluated at
/// the closest approach; returns +infinity when the segment passes entirely
/// above or below the capsule.
[[nodiscard]] inline double segment_body_clearance(
    const Vec3& a, const Vec3& b, const BodyObstacle& body) noexcept {
  const double abx = b.x - a.x;
  const double aby = b.y - a.y;
  const double len_sq = abx * abx + aby * aby;
  double t = 0.0;
  if (len_sq > 1e-12) {
    t = ((body.position.x - a.x) * abx + (body.position.y - a.y) * aby) /
        len_sq;
    t = std::clamp(t, 0.0, 1.0);
  }
  const double z = a.z + t * (b.z - a.z);
  if (z < 0.0 || z > body.height_m)
    return std::numeric_limits<double>::infinity();
  const double dx = a.x + t * abx - body.position.x;
  const double dy = a.y + t * aby - body.position.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// True when the segment a->b passes through the capsule volume.
[[nodiscard]] inline bool segment_hits_body(const Vec3& a, const Vec3& b,
                                            const BodyObstacle& body) noexcept {
  return segment_body_clearance(a, b, body) <= body.radius_m;
}

}  // namespace volcast::geo
