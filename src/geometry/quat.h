// Unit quaternions for 3D orientation (the rotational half of a 6DoF pose).
#pragma once

#include <algorithm>
#include <cmath>

#include "geometry/vec3.h"

namespace volcast::geo {

/// Quaternion w + xi + yj + zk. Orientation quaternions are kept unit-norm
/// by construction; `normalized()` re-projects after accumulation drift.
struct Quat {
  double w = 1.0;
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Quat() = default;
  constexpr Quat(double qw, double qx, double qy, double qz)
      : w(qw), x(qx), y(qy), z(qz) {}

  /// Rotation of `angle_rad` around (unit) `axis`.
  [[nodiscard]] static Quat from_axis_angle(const Vec3& axis,
                                            double angle_rad) noexcept {
    const Vec3 u = axis.normalized();
    const double half = 0.5 * angle_rad;
    const double s = std::sin(half);
    return {std::cos(half), u.x * s, u.y * s, u.z * s};
  }

  /// Yaw (around +Z), pitch (around +Y), roll (around +X), applied in
  /// Z-Y-X order — the convention used by the trace generator.
  [[nodiscard]] static Quat from_euler(double yaw, double pitch,
                                       double roll) noexcept {
    const Quat qz = from_axis_angle({0, 0, 1}, yaw);
    const Quat qy = from_axis_angle({0, 1, 0}, pitch);
    const Quat qx = from_axis_angle({1, 0, 0}, roll);
    return qz * qy * qx;
  }

  /// Shortest-arc rotation taking unit vector `from` to unit vector `to`.
  [[nodiscard]] static Quat between(const Vec3& from, const Vec3& to) noexcept {
    const Vec3 f = from.normalized();
    const Vec3 t = to.normalized();
    const double d = f.dot(t);
    if (d > 1.0 - 1e-12) return {};  // identical
    if (d < -1.0 + 1e-12) {
      // Opposite: rotate pi around any axis orthogonal to f.
      Vec3 axis = f.cross({1, 0, 0});
      if (axis.norm_sq() < 1e-12) axis = f.cross({0, 1, 0});
      return from_axis_angle(axis, 3.14159265358979323846);
    }
    const Vec3 axis = f.cross(t);
    const double s = std::sqrt((1.0 + d) * 2.0);
    return Quat{s * 0.5, axis.x / s, axis.y / s, axis.z / s}.normalized();
  }

  constexpr Quat operator*(const Quat& o) const noexcept {
    return {w * o.w - x * o.x - y * o.y - z * o.z,
            w * o.x + x * o.w + y * o.z - z * o.y,
            w * o.y - x * o.z + y * o.w + z * o.x,
            w * o.z + x * o.y - y * o.x + z * o.w};
  }

  [[nodiscard]] constexpr Quat conjugate() const noexcept {
    return {w, -x, -y, -z};
  }

  [[nodiscard]] double norm() const noexcept {
    return std::sqrt(w * w + x * x + y * y + z * z);
  }

  [[nodiscard]] Quat normalized() const noexcept {
    const double n = norm();
    if (n <= 0.0) return {};
    return {w / n, x / n, y / n, z / n};
  }

  [[nodiscard]] constexpr double dot(const Quat& o) const noexcept {
    return w * o.w + x * o.x + y * o.y + z * o.z;
  }

  /// Rotates vector v by this (unit) quaternion.
  [[nodiscard]] Vec3 rotate(const Vec3& v) const noexcept {
    // v' = v + 2u x (u x v + w v), u = (x, y, z)
    const Vec3 u{x, y, z};
    const Vec3 t = u.cross(v) * 2.0;
    return v + t * w + u.cross(t);
  }

  /// Angle of the rotation (radians, in [0, pi]).
  [[nodiscard]] double angle() const noexcept {
    const double cw = std::clamp(std::abs(w), 0.0, 1.0);
    return 2.0 * std::acos(cw);
  }

  /// Angular distance to another orientation (radians).
  [[nodiscard]] double angular_distance(const Quat& o) const noexcept {
    const double d = std::clamp(std::abs(dot(o)), 0.0, 1.0);
    return 2.0 * std::acos(d);
  }
};

/// Spherical linear interpolation between unit quaternions.
[[nodiscard]] inline Quat slerp(const Quat& a, const Quat& b,
                                double t) noexcept {
  double d = a.dot(b);
  Quat bb = b;
  if (d < 0.0) {  // take the short way around
    d = -d;
    bb = {-b.w, -b.x, -b.y, -b.z};
  }
  if (d > 1.0 - 1e-9) {  // nearly parallel: lerp + renormalize
    return Quat{a.w + (bb.w - a.w) * t, a.x + (bb.x - a.x) * t,
                a.y + (bb.y - a.y) * t, a.z + (bb.z - a.z) * t}
        .normalized();
  }
  const double theta = std::acos(d);
  const double sin_theta = std::sin(theta);
  const double wa = std::sin((1.0 - t) * theta) / sin_theta;
  const double wb = std::sin(t * theta) / sin_theta;
  return {wa * a.w + wb * bb.w, wa * a.x + wb * bb.x, wa * a.y + wb * bb.y,
          wa * a.z + wb * bb.z};
}

}  // namespace volcast::geo
