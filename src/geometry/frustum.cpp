#include "geometry/frustum.h"

#include <cmath>

namespace volcast::geo {

Frustum::Frustum(const Pose& pose, const CameraIntrinsics& intrinsics)
    : pose_(pose), intrinsics_(intrinsics) {
  const Vec3 fwd = pose.forward();
  const Vec3 up = pose.up();
  const Vec3 left = pose.left();
  const Vec3 eye = pose.position;

  const double half_h = 0.5 * intrinsics.horizontal_fov_rad;

  // Near and far planes face each other along the view axis.
  planes_[0] = Plane::from_point_normal(eye + fwd * intrinsics.near_m, fwd);
  planes_[1] = Plane::from_point_normal(eye + fwd * intrinsics.far_m, -fwd);

  // Side planes pass through the eye with inward normals
  //   n = sin(half) * fwd +- cos(half) * lateral.
  // A point straight ahead (eye + fwd) is at distance sin(half) > 0 from all
  // four side planes, so all normals face inward.
  //
  // The vertical half angle is atan(tan(half_h) * aspect); its sine and
  // cosine follow algebraically (cos(atan(u)) = 1/sqrt(1+u^2)) without the
  // atan/sin/cos round trip.
  const double ch = std::cos(half_h);
  const double sh = std::sin(half_h);
  const double u = std::tan(half_h) * intrinsics.aspect;
  const double cv = 1.0 / std::sqrt(1.0 + u * u);
  const double sv = u * cv;
  planes_[2] = Plane::from_point_normal(eye, fwd * sh - left * ch);  // left
  planes_[3] = Plane::from_point_normal(eye, fwd * sh + left * ch);  // right
  planes_[4] = Plane::from_point_normal(eye, fwd * sv - up * cv);    // top
  planes_[5] = Plane::from_point_normal(eye, fwd * sv + up * cv);    // bottom
}

bool Frustum::contains(const Vec3& p) const noexcept {
  for (const Plane& plane : planes_) {
    if (plane.signed_distance(p) < 0.0) return false;
  }
  return true;
}

bool Frustum::intersects(const Aabb& box) const noexcept {
  if (!box.valid()) return false;
  for (const Plane& plane : planes_) {
    // p-vertex: the box corner farthest along the plane normal. If even that
    // corner is outside, the whole box is outside this plane.
    const Vec3 p{plane.normal.x >= 0.0 ? box.hi.x : box.lo.x,
                 plane.normal.y >= 0.0 ? box.hi.y : box.lo.y,
                 plane.normal.z >= 0.0 ? box.hi.z : box.lo.z};
    if (plane.signed_distance(p) < 0.0) return false;
  }
  return true;
}

}  // namespace volcast::geo
