// 3D Morton (Z-order) codes. The point-cloud codec sorts quantized points in
// Morton order so that delta coding sees spatially coherent (small) gaps —
// the same trick octree coders such as Draco exploit.
#pragma once

#include <cstdint>

namespace volcast::geo {

/// Spreads the low 21 bits of x so there are two zero bits between each
/// payload bit (enough for 21-bit-per-axis 63-bit Morton codes).
[[nodiscard]] constexpr std::uint64_t morton_spread(std::uint64_t x) noexcept {
  x &= 0x1fffff;  // 21 bits
  x = (x | (x << 32)) & 0x1f00000000ffffULL;
  x = (x | (x << 16)) & 0x1f0000ff0000ffULL;
  x = (x | (x << 8)) & 0x100f00f00f00f00fULL;
  x = (x | (x << 4)) & 0x10c30c30c30c30c3ULL;
  x = (x | (x << 2)) & 0x1249249249249249ULL;
  return x;
}

/// Inverse of morton_spread.
[[nodiscard]] constexpr std::uint64_t morton_compact(std::uint64_t x) noexcept {
  x &= 0x1249249249249249ULL;
  x = (x ^ (x >> 2)) & 0x10c30c30c30c30c3ULL;
  x = (x ^ (x >> 4)) & 0x100f00f00f00f00fULL;
  x = (x ^ (x >> 8)) & 0x1f0000ff0000ffULL;
  x = (x ^ (x >> 16)) & 0x1f00000000ffffULL;
  x = (x ^ (x >> 32)) & 0x1fffff;
  return x;
}

/// Interleaves three 21-bit coordinates into one 63-bit Morton code.
[[nodiscard]] constexpr std::uint64_t morton_encode(std::uint32_t x,
                                                    std::uint32_t y,
                                                    std::uint32_t z) noexcept {
  return morton_spread(x) | (morton_spread(y) << 1) | (morton_spread(z) << 2);
}

/// Recovers the three coordinates from a Morton code.
struct MortonCoords {
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  std::uint32_t z = 0;
};

[[nodiscard]] constexpr MortonCoords morton_decode(std::uint64_t code) noexcept {
  return {static_cast<std::uint32_t>(morton_compact(code)),
          static_cast<std::uint32_t>(morton_compact(code >> 1)),
          static_cast<std::uint32_t>(morton_compact(code >> 2))};
}

}  // namespace volcast::geo
