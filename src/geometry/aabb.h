// Axis-aligned bounding boxes — the shape of a point-cloud cell and the
// primitive that frustum culling, occlusion rays and blockage checks test
// against.
#pragma once

#include <algorithm>
#include <array>
#include <limits>

#include "geometry/vec3.h"

namespace volcast::geo {

struct Aabb {
  Vec3 lo{std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::infinity()};
  Vec3 hi{-std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity()};

  constexpr Aabb() = default;
  constexpr Aabb(const Vec3& mn, const Vec3& mx) : lo(mn), hi(mx) {}

  [[nodiscard]] constexpr bool valid() const noexcept {
    return lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z;
  }

  [[nodiscard]] constexpr Vec3 center() const noexcept {
    return (lo + hi) * 0.5;
  }
  [[nodiscard]] constexpr Vec3 extent() const noexcept { return hi - lo; }
  [[nodiscard]] constexpr double volume() const noexcept {
    if (!valid()) return 0.0;
    const Vec3 e = extent();
    return e.x * e.y * e.z;
  }

  /// Grows the box to contain p.
  constexpr void expand(const Vec3& p) noexcept {
    lo = lo.min(p);
    hi = hi.max(p);
  }
  constexpr void expand(const Aabb& b) noexcept {
    lo = lo.min(b.lo);
    hi = hi.max(b.hi);
  }

  /// Uniformly pads the box by `margin` on all sides.
  [[nodiscard]] constexpr Aabb padded(double margin) const noexcept {
    const Vec3 m{margin, margin, margin};
    return {lo - m, hi + m};
  }

  [[nodiscard]] constexpr bool contains(const Vec3& p) const noexcept {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
           p.z >= lo.z && p.z <= hi.z;
  }

  [[nodiscard]] constexpr bool intersects(const Aabb& b) const noexcept {
    return lo.x <= b.hi.x && hi.x >= b.lo.x && lo.y <= b.hi.y &&
           hi.y >= b.lo.y && lo.z <= b.hi.z && hi.z >= b.lo.z;
  }

  /// The eight corner points.
  [[nodiscard]] std::array<Vec3, 8> corners() const noexcept {
    return {Vec3{lo.x, lo.y, lo.z}, Vec3{hi.x, lo.y, lo.z},
            Vec3{lo.x, hi.y, lo.z}, Vec3{hi.x, hi.y, lo.z},
            Vec3{lo.x, lo.y, hi.z}, Vec3{hi.x, lo.y, hi.z},
            Vec3{lo.x, hi.y, hi.z}, Vec3{hi.x, hi.y, hi.z}};
  }

  /// Closest point inside the box to p.
  [[nodiscard]] Vec3 clamp(const Vec3& p) const noexcept {
    return {std::clamp(p.x, lo.x, hi.x), std::clamp(p.y, lo.y, hi.y),
            std::clamp(p.z, lo.z, hi.z)};
  }

  /// Squared distance from p to the box (0 when inside).
  [[nodiscard]] double distance_sq(const Vec3& p) const noexcept {
    return (p - clamp(p)).norm_sq();
  }
};

/// Slab-method ray/AABB intersection over the segment [0, max_t].
/// Returns true and sets `t_enter` (clamped to >= 0) on hit.
[[nodiscard]] inline bool ray_intersects_aabb(const Vec3& origin,
                                              const Vec3& dir, double max_t,
                                              const Aabb& box,
                                              double* t_enter = nullptr) noexcept {
  double t0 = 0.0;
  double t1 = max_t;
  const double o[3] = {origin.x, origin.y, origin.z};
  const double d[3] = {dir.x, dir.y, dir.z};
  const double lo[3] = {box.lo.x, box.lo.y, box.lo.z};
  const double hi[3] = {box.hi.x, box.hi.y, box.hi.z};
  for (int axis = 0; axis < 3; ++axis) {
    if (std::abs(d[axis]) < 1e-15) {
      if (o[axis] < lo[axis] || o[axis] > hi[axis]) return false;
      continue;
    }
    const double inv = 1.0 / d[axis];
    double ta = (lo[axis] - o[axis]) * inv;
    double tb = (hi[axis] - o[axis]) * inv;
    if (ta > tb) std::swap(ta, tb);
    t0 = std::max(t0, ta);
    t1 = std::min(t1, tb);
    if (t0 > t1) return false;
  }
  if (t_enter != nullptr) *t_enter = t0;
  return true;
}

}  // namespace volcast::geo
