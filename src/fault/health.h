// Per-user health state machine and session-level recovery accounting.
//
// Under fault injection a user is never silently "broken": it is always in
// one of four explicit states —
//
//   healthy ──(low rate / impairment)──> degraded
//   healthy/degraded ──(no delivery path)──> outage
//   degraded/outage ──(good tick)──> recovering
//   recovering ──(N consecutive good ticks)──> healthy
//
// An *episode* opens when the user first leaves healthy and closes when it
// re-enters healthy; the episode length is that fault's time-to-recover.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace volcast::fault {

enum class HealthState { kHealthy, kDegraded, kOutage, kRecovering };

[[nodiscard]] const char* to_string(HealthState state) noexcept;

/// Health-machine thresholds.
struct HealthConfig {
  /// Link rates below this (Mbps) count as degraded service.
  double degraded_rate_mbps = 50.0;
  /// Consecutive good ticks required to leave kRecovering.
  std::size_t recovery_ticks = 3;
};

/// One user's health machine. Purely observational: it never changes the
/// session's behaviour, only classifies it.
class HealthMonitor {
 public:
  explicit HealthMonitor(HealthConfig config = {});

  /// Feeds one tick. `delivering` = the user has a usable delivery path
  /// this tick (assigned AP up, present, nonzero rate); `impaired` = a
  /// non-outage fault is actively disturbing the user.
  HealthState observe(double t, bool delivering, double rate_mbps,
                      bool impaired);

  [[nodiscard]] HealthState state() const noexcept { return state_; }
  [[nodiscard]] std::size_t transitions() const noexcept {
    return transitions_;
  }
  /// Closed episodes: each value is one fault's time-to-recover in seconds.
  [[nodiscard]] const std::vector<double>& recovery_times() const noexcept {
    return recovery_times_;
  }

 private:
  void enter(HealthState next);

  HealthConfig config_;
  HealthState state_ = HealthState::kHealthy;
  std::size_t transitions_ = 0;
  std::size_t good_ticks_ = 0;
  double episode_start_ = -1.0;
  std::vector<double> recovery_times_;
};

/// Recovery metrics of one session run, all zero when the plan was empty.
struct FaultReport {
  std::size_t faults_injected = 0;
  std::size_t recoveries = 0;              // closed health episodes
  double mean_time_to_recover_s = 0.0;
  double max_time_to_recover_s = 0.0;
  /// Player stall time accrued while at least one fault was active.
  double fault_rebuffer_s = 0.0;
  /// Multicast-eligible membership changes caused by churn / AP faults.
  std::size_t group_reformations = 0;
  std::size_t concealed_frames = 0;        // lost frames hidden by replay
  std::size_t skipped_frames = 0;          // lost frames nothing could hide
  std::size_t probe_retries = 0;           // failed beam probes re-attempted
  std::size_t fallback_stock_beams = 0;    // chain step: custom -> stock
  std::size_t fallback_reflection_beams = 0;  // chain step: stock -> NLoS
  std::size_t fallback_tier_drops = 0;     // chain step: last resort
  std::size_t degraded_user_ticks = 0;
  std::size_t unhealthy_user_ticks = 0;    // outage-state user ticks
  std::size_t health_transitions = 0;

  /// Multi-line human-readable recovery report.
  [[nodiscard]] std::string summary() const;
};

}  // namespace volcast::fault
