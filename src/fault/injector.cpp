#include "fault/injector.h"

#include <algorithm>
#include <bit>
#include <limits>

namespace volcast::fault {

namespace {

constexpr double kForever = std::numeric_limits<double>::infinity();

/// splitmix64 finalizer: decorrelates the (seed, user, tick) triple into an
/// independent uniform draw without any sequential RNG state.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan, std::size_t user_count,
                             std::size_t ap_count, std::uint64_t seed)
    : pending_(plan.events()),
      user_count_(user_count),
      ap_count_(ap_count),
      seed_(seed),
      ap_down_(ap_count, false),
      user_absent_(user_count, false),
      probe_fail_(user_count, false),
      sector_stuck_(user_count, false),
      stall_until_(user_count, 0.0),
      loss_p_(user_count, 0.0),
      burst_p_(user_count, 0.0) {}

std::size_t FaultInjector::advance(double t) {
  bool changed = false;
  std::size_t newly_fired = 0;
  while (next_ < pending_.size() && pending_[next_].t_s <= t) {
    const FaultEvent& e = pending_[next_++];
    ++newly_fired;
    if (e.kind == FaultKind::kSessionCrash) {
      // Instantaneous, never joins the active set. Whether the crash
      // actually happens is a pure draw from (seed, target, onset) against
      // the event's probability — deterministic per session seed, so a
      // supervised retry with a derived seed redraws it.
      const double p = e.magnitude > 0.0 ? e.magnitude : 1.0;
      const std::uint64_t h = mix(
          seed_ ^ 0xc4a5'0cf8'115e'55edULL ^
          mix(static_cast<std::uint64_t>(e.target) * 0x9e3779b97f4a7c15ULL ^
              std::bit_cast<std::uint64_t>(e.t_s)));
      const double u =
          static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
      if (u < p && !crash_triggered_) {
        crash_triggered_ = true;
        crash_onset_ = e.t_s;
      }
      continue;
    }
    Active a;
    a.event = e;
    a.until = e.duration_s > 0.0 ? e.t_s + e.duration_s : kForever;
    active_.push_back(a);
    changed = true;
  }
  fired_ += newly_fired;
  const auto expired = std::remove_if(
      active_.begin(), active_.end(),
      [t](const Active& a) { return a.until <= t; });
  if (expired != active_.end()) {
    active_.erase(expired, active_.end());
    changed = true;
  }
  if (changed) rebuild_flags();
  active_count_ = active_.size();
  return newly_fired;
}

void FaultInjector::rebuild_flags() {
  std::fill(ap_down_.begin(), ap_down_.end(), false);
  std::fill(user_absent_.begin(), user_absent_.end(), false);
  std::fill(probe_fail_.begin(), probe_fail_.end(), false);
  std::fill(sector_stuck_.begin(), sector_stuck_.end(), false);
  std::fill(stall_until_.begin(), stall_until_.end(), 0.0);
  std::fill(loss_p_.begin(), loss_p_.end(), 0.0);
  std::fill(burst_p_.begin(), burst_p_.end(), 0.0);
  obstacles_.clear();
  for (const Active& a : active_) {
    const FaultEvent& e = a.event;
    switch (e.kind) {
      case FaultKind::kApOutage:
        if (e.target < ap_count_) ap_down_[e.target] = true;
        break;
      case FaultKind::kUserLeave:
        if (e.target < user_count_) user_absent_[e.target] = true;
        break;
      case FaultKind::kBeamProbeFail:
        if (e.target < user_count_) probe_fail_[e.target] = true;
        break;
      case FaultKind::kStuckSector:
        if (e.target < user_count_) sector_stuck_[e.target] = true;
        break;
      case FaultKind::kDecoderStall:
        if (e.target < user_count_)
          stall_until_[e.target] = std::max(stall_until_[e.target], a.until);
        break;
      case FaultKind::kFrameLoss:
        if (e.target == kAllUsers) {
          for (double& p : loss_p_) p = std::max(p, e.magnitude);
        } else if (e.target < user_count_) {
          loss_p_[e.target] = std::max(loss_p_[e.target], e.magnitude);
        }
        break;
      case FaultKind::kObstacleSpawn: {
        geo::BodyObstacle obstacle;
        obstacle.position = e.position;
        obstacle.radius_m = e.magnitude > 0.0 ? e.magnitude : 0.4;
        obstacle.height_m = 2.0;
        obstacles_.push_back(obstacle);
        break;
      }
      case FaultKind::kBurstLoss:
        if (e.target == kAllUsers) {
          for (double& p : burst_p_) p = std::max(p, e.magnitude);
        } else if (e.target < user_count_) {
          burst_p_[e.target] = std::max(burst_p_[e.target], e.magnitude);
        }
        break;
      case FaultKind::kSessionCrash:
        break;  // never enters the active set (handled in advance())
    }
  }
}

bool FaultInjector::ap_down(std::size_t ap) const {
  return ap < ap_count_ && ap_down_[ap];
}
bool FaultInjector::user_absent(std::size_t user) const {
  return user < user_count_ && user_absent_[user];
}
bool FaultInjector::probe_fail(std::size_t user) const {
  return user < user_count_ && probe_fail_[user];
}
bool FaultInjector::sector_stuck(std::size_t user) const {
  return user < user_count_ && sector_stuck_[user];
}
bool FaultInjector::decoder_stalled(std::size_t user) const {
  return user < user_count_ && stall_until_[user] > 0.0;
}
double FaultInjector::decoder_stall_until(std::size_t user) const {
  return user < user_count_ ? stall_until_[user] : 0.0;
}
double FaultInjector::frame_loss_probability(std::size_t user) const {
  return user < user_count_ ? loss_p_[user] : 0.0;
}
double FaultInjector::burst_loss_probability(std::size_t user) const {
  return user < user_count_ ? burst_p_[user] : 0.0;
}

bool FaultInjector::frame_lost(std::size_t user, std::size_t tick) const {
  const double p = frame_loss_probability(user);
  if (p <= 0.0) return false;
  const std::uint64_t h =
      mix(seed_ ^ mix(static_cast<std::uint64_t>(user) * 0x632be59bd9b4e019ULL ^
                      static_cast<std::uint64_t>(tick)));
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // [0, 1)
  return u < p;
}

}  // namespace volcast::fault
