// Time-indexed view of a FaultPlan: which faults are active *now*.
//
// The session calls advance(t) once per tick; every layer then queries the
// injector for its own disturbance (is my AP down? did this user's probe
// fail? is this frame lost?). All answers derive from the plan and the
// seed, never from wall-clock state, so runs reproduce exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_plan.h"
#include "geometry/obstacle.h"

namespace volcast::fault {

class FaultInjector {
 public:
  /// `seed` drives the per-(user, tick) frame-loss draws only; the event
  /// timeline itself is fully determined by the plan.
  FaultInjector(const FaultPlan& plan, std::size_t user_count,
                std::size_t ap_count, std::uint64_t seed);

  /// Activates events with onset <= t and retires expired ones. Returns
  /// how many events newly fired during this call.
  std::size_t advance(double t);

  /// True while at least one fault is active.
  [[nodiscard]] bool any_active() const noexcept { return active_count_ > 0; }
  /// Total events fired so far.
  [[nodiscard]] std::size_t fired() const noexcept { return fired_; }

  /// True once a kSessionCrash event fired and its seeded draw passed.
  /// The session driver checks this right after advance() and aborts the
  /// run with fault::SessionCrashFault. Latched: stays true forever.
  [[nodiscard]] bool crash_triggered() const noexcept {
    return crash_triggered_;
  }
  /// Onset time of the triggering crash event (meaningful only when
  /// crash_triggered()).
  [[nodiscard]] double crash_onset_s() const noexcept { return crash_onset_; }

  [[nodiscard]] bool ap_down(std::size_t ap) const;
  [[nodiscard]] bool user_absent(std::size_t user) const;
  [[nodiscard]] bool probe_fail(std::size_t user) const;
  [[nodiscard]] bool sector_stuck(std::size_t user) const;
  [[nodiscard]] bool decoder_stalled(std::size_t user) const;
  /// Simulation time at which the user's active decoder stall ends
  /// (0 when no stall is active; infinity for a permanent stall).
  [[nodiscard]] double decoder_stall_until(std::size_t user) const;
  /// Active frame-loss probability for the user (max over active events).
  [[nodiscard]] double frame_loss_probability(std::size_t user) const;
  /// Active correlated burst-loss probability (kBurstLoss, max over active
  /// events): the bad-state packet-loss probability of the transport
  /// wire's Gilbert–Elliott chain. 0 when no burst fault is active.
  [[nodiscard]] double burst_loss_probability(std::size_t user) const;
  /// Deterministic per-(user, tick) loss draw against the active
  /// probability; false when no frame-loss fault is active.
  [[nodiscard]] bool frame_lost(std::size_t user, std::size_t tick) const;
  /// Obstacles spawned and still standing (room coordinates).
  [[nodiscard]] const std::vector<geo::BodyObstacle>& obstacles()
      const noexcept {
    return obstacles_;
  }

 private:
  struct Active {
    FaultEvent event;
    double until = 0.0;  // infinity for permanent faults
  };

  void rebuild_flags();

  std::vector<FaultEvent> pending_;  // sorted by onset; consumed in order
  std::size_t next_ = 0;
  std::vector<Active> active_;
  std::size_t active_count_ = 0;
  std::size_t fired_ = 0;
  std::size_t user_count_;
  std::size_t ap_count_;
  std::uint64_t seed_;
  bool crash_triggered_ = false;
  double crash_onset_ = 0.0;

  // Flags recomputed whenever the active set changes.
  std::vector<bool> ap_down_;
  std::vector<bool> user_absent_;
  std::vector<bool> probe_fail_;
  std::vector<bool> sector_stuck_;
  std::vector<double> stall_until_;
  std::vector<double> loss_p_;
  std::vector<double> burst_p_;
  std::vector<geo::BodyObstacle> obstacles_;
};

}  // namespace volcast::fault
