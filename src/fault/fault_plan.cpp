#include "fault/fault_plan.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "common/rng.h"

namespace volcast::fault {

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kApOutage: return "ap-outage";
    case FaultKind::kUserLeave: return "user-leave";
    case FaultKind::kObstacleSpawn: return "obstacle-spawn";
    case FaultKind::kBeamProbeFail: return "beam-probe-fail";
    case FaultKind::kStuckSector: return "stuck-sector";
    case FaultKind::kFrameLoss: return "frame-loss";
    case FaultKind::kDecoderStall: return "decoder-stall";
    case FaultKind::kSessionCrash: return "session-crash";
    case FaultKind::kBurstLoss: return "burst-loss";
  }
  return "unknown";
}

void FaultPlan::add(const FaultEvent& event) {
  const auto at = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) { return a.t_s < b.t_s; });
  events_.insert(at, event);
}

void FaultPlan::validate(std::size_t user_count, std::size_t ap_count) const {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& e = events_[i];
    const std::string where =
        "FaultPlan event " + std::to_string(i) + " (" + to_string(e.kind) +
        "): ";
    if (!(e.t_s >= 0.0))
      throw std::invalid_argument(where + "onset must be >= 0");
    switch (e.kind) {
      case FaultKind::kApOutage:
        if (e.target >= ap_count)
          throw std::invalid_argument(where + "AP index out of range");
        break;
      case FaultKind::kFrameLoss:
      case FaultKind::kBurstLoss:
        if (e.target != kAllUsers && e.target >= user_count)
          throw std::invalid_argument(where + "user index out of range");
        if (e.magnitude < 0.0 || e.magnitude > 1.0)
          throw std::invalid_argument(
              where + "loss probability must be in [0, 1]");
        break;
      case FaultKind::kObstacleSpawn:
        if (e.magnitude < 0.0)
          throw std::invalid_argument(where + "obstacle radius must be >= 0");
        break;
      case FaultKind::kSessionCrash:
        // `target` is a free draw salt, not a user index.
        if (e.magnitude < 0.0 || e.magnitude > 1.0)
          throw std::invalid_argument(
              where + "crash probability must be in [0, 1]");
        break;
      case FaultKind::kUserLeave:
      case FaultKind::kBeamProbeFail:
      case FaultKind::kStuckSector:
      case FaultKind::kDecoderStall:
        if (e.target >= user_count)
          throw std::invalid_argument(where + "user index out of range");
        break;
    }
  }
}

std::string FaultPlan::summary() const {
  std::ostringstream out;
  out << "fault plan: " << events_.size() << " event(s)\n";
  for (const FaultEvent& e : events_) {
    out << "  t=" << e.t_s << "s " << to_string(e.kind);
    if ((e.kind == FaultKind::kFrameLoss ||
         e.kind == FaultKind::kBurstLoss) &&
        e.target == kAllUsers) {
      out << " target=all";
    } else {
      out << " target=" << e.target;
    }
    if (e.duration_s > 0.0) {
      out << " for " << e.duration_s << "s";
    } else {
      out << " (permanent)";
    }
    if (e.kind == FaultKind::kFrameLoss || e.kind == FaultKind::kBurstLoss)
      out << " p=" << e.magnitude;
    if (e.kind == FaultKind::kSessionCrash)
      out << " p=" << (e.magnitude > 0.0 ? e.magnitude : 1.0);
    if (e.kind == FaultKind::kObstacleSpawn)
      out << " at (" << e.position.x << ", " << e.position.y << ")";
    out << "\n";
  }
  return out.str();
}

FaultPlan random_plan(const ChaosConfig& config) {
  FaultPlan plan;
  Rng rng(config.seed ^ 0xfa017ULL);
  const double rate = std::max(config.intensity, 1e-3);
  // Leave a head start so the session establishes itself, and a tail so
  // there is always room to observe recovery.
  const double start = std::min(0.5, config.duration_s * 0.1);
  const double end = config.duration_s * 0.9;
  double t = start + rng.exponential(rate);
  while (t < end) {
    FaultEvent e;
    e.t_s = t;
    // Weighted kind choice: link/user level faults are the common case,
    // AP outages need a second AP to be survivable.
    const int max_kind = config.ap_count > 1 ? 6 : 5;
    const auto pick = rng.uniform_int(0, max_kind);
    switch (pick) {
      case 0: e.kind = FaultKind::kUserLeave; break;
      case 1: e.kind = FaultKind::kObstacleSpawn; break;
      case 2: e.kind = FaultKind::kBeamProbeFail; break;
      case 3: e.kind = FaultKind::kStuckSector; break;
      case 4: e.kind = FaultKind::kFrameLoss; break;
      case 5: e.kind = FaultKind::kDecoderStall; break;
      default: e.kind = FaultKind::kApOutage; break;
    }
    e.duration_s = rng.uniform(0.3, 1.5);
    switch (e.kind) {
      case FaultKind::kApOutage:
        e.target = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(config.ap_count) - 1));
        break;
      case FaultKind::kFrameLoss:
        e.target = rng.chance(0.3)
                       ? kAllUsers
                       : static_cast<std::size_t>(rng.uniform_int(
                             0,
                             static_cast<std::int64_t>(config.user_count) - 1));
        e.magnitude = rng.uniform(0.1, 0.6);
        break;
      case FaultKind::kObstacleSpawn:
        e.magnitude = rng.uniform(0.2, 0.6);
        // Somewhere in the half of the room between the front-wall AP and
        // the mid-room content, where it can actually shadow links.
        e.position = {rng.uniform(1.5, 6.5), rng.uniform(0.5, 3.0), 0.0};
        break;
      default:
        e.target = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(config.user_count) - 1));
        break;
    }
    plan.add(e);
    t += rng.exponential(rate);
  }
  if (plan.empty()) {
    // Intensity so low nothing fired: inject one representative fault so
    // --chaos always exercises the machinery.
    FaultEvent e;
    e.t_s = start;
    e.kind = FaultKind::kBeamProbeFail;
    e.target = 0;
    e.duration_s = std::max(0.5, config.duration_s * 0.25);
    plan.add(e);
  }
  if (config.crash_probability > 0.0) {
    // Separate stream: plans with crash_probability == 0 stay byte-for-byte
    // what this generator produced before the crash-fault class existed.
    Rng crash_rng(config.seed ^ 0xc4a5ULL);
    FaultEvent e;
    e.kind = FaultKind::kSessionCrash;
    e.t_s = start + crash_rng.uniform(0.0, std::max(end - start, 1e-3));
    e.target = static_cast<std::size_t>(crash_rng.uniform_int(0, 1023));
    e.magnitude = std::min(config.crash_probability, 1.0);
    plan.add(e);
  }
  if (config.burst_loss_probability > 0.0) {
    // Separate stream again: plans with the knob off keep their exact
    // pre-burst-loss bytes. Two correlated-loss windows covering all users
    // — short enough to recover from, long enough to span many trains.
    Rng burst_rng(config.seed ^ 0xb1257ULL);
    for (int i = 0; i < 2; ++i) {
      FaultEvent e;
      e.kind = FaultKind::kBurstLoss;
      e.target = kAllUsers;
      e.t_s = start + burst_rng.uniform(0.0, std::max(end - start, 1e-3));
      e.duration_s = burst_rng.uniform(0.5, 1.5);
      e.magnitude = std::min(config.burst_loss_probability, 1.0);
      plan.add(e);
    }
  }
  return plan;
}

}  // namespace volcast::fault
