// Deterministic cross-layer fault injection (chaos testing for the
// streaming stack).
//
// The paper's agenda is surviving disruption, but the anticipated failure
// modes (forecastable body blockage, SLS staleness) are only half the
// story: real multi-user deployments are dominated by *unanticipated*
// faults — AP outages, user churn, new obstacles, broken beam probes,
// corrupted frames, decoder stalls. A FaultPlan is an explicit, seeded list
// of such timed events; the session threads it through every layer so that
// graceful degradation and recovery can be exercised and measured. Faults
// are simulation events, never wall-clock randomness: the same
// (SessionConfig, FaultPlan, seed) reproduces bit-identical results.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "geometry/vec3.h"

namespace volcast::fault {

/// Event taxonomy, one entry per layer the injector can disturb.
enum class FaultKind {
  kApOutage,       // AP `target` goes dark, restarts after duration_s
  kUserLeave,      // user `target` churns out, rejoins after duration_s
  kObstacleSpawn,  // persistent obstacle appears at `position`
  kBeamProbeFail,  // user `target`'s custom-beam probes fail while active
  kStuckSector,    // user `target`'s serving sector freezes while active
  kFrameLoss,      // user frames corrupt/lost with probability `magnitude`
  kDecoderStall,   // user `target`'s decoder is frozen while active
  kSessionCrash,   // whole session process dies at onset (see below)
  kBurstLoss,      // correlated packet loss: while active, the transport
                   // wire's Gilbert–Elliott chain drops packets with
                   // probability `magnitude` in the bad state (kAllUsers
                   // supported; inert under the goodput transport policy)
};

[[nodiscard]] const char* to_string(FaultKind kind) noexcept;

/// `target` value meaning "every user" (kFrameLoss and kBurstLoss).
inline constexpr std::size_t kAllUsers =
    std::numeric_limits<std::size_t>::max();

/// One timed fault.
struct FaultEvent {
  double t_s = 0.0;         // onset (simulation time)
  FaultKind kind = FaultKind::kApOutage;
  std::size_t target = 0;   // AP index or user index depending on kind
  /// Active window; <= 0 means "until the end of the session".
  double duration_s = 0.0;
  /// Kind-specific knob: loss probability in [0, 1] for kFrameLoss and
  /// kBurstLoss (bad-state packet loss),
  /// obstacle radius in meters for kObstacleSpawn (0 = default 0.4 m),
  /// crash probability in [0, 1] for kSessionCrash (0 = certain crash).
  double magnitude = 0.0;
  /// Obstacle spawn point in room coordinates (kObstacleSpawn only).
  geo::Vec3 position{};
};

/// Thrown out of Session::run when a kSessionCrash fault fires: the
/// simulated analogue of the whole serving process dying mid-session. The
/// session is unusable afterwards (it is single-shot anyway); the fleet
/// supervisor (core/supervisor.h) catches this, classifies it, and retries
/// or quarantines the slot instead of aborting the fleet.
///
/// Whether a kSessionCrash event actually fires is a deterministic draw
/// from (session seed, event target, onset) against `magnitude`
/// (0 = always crash). The draw depends on the seed, so a supervised
/// retry with a derived seed models a *transient* crash (may survive the
/// rerun) while magnitude 0/1.0 models a persistent one (crashes every
/// attempt until quarantine). `target` is a free salt that selects which
/// seeds draw below the probability — not a user index.
class SessionCrashFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An ordered, validated list of fault events.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Inserts an event keeping the list sorted by onset time.
  void add(const FaultEvent& event);

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

  /// Checks every event against the session shape. Throws
  /// std::invalid_argument with a message naming the offending event.
  void validate(std::size_t user_count, std::size_t ap_count) const;

  /// Human-readable one-line-per-event listing.
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<FaultEvent> events_;
};

/// Knobs for the seeded chaos-plan generator.
struct ChaosConfig {
  std::uint64_t seed = 1;
  double duration_s = 8.0;
  std::size_t user_count = 4;
  std::size_t ap_count = 1;
  /// Expected fault events per simulated second (before clamping to at
  /// least one event per plan).
  double intensity = 0.5;
  /// When > 0, the plan additionally carries one kSessionCrash event with
  /// this crash probability at a seeded onset. Drawn from a separate RNG
  /// stream, so plans with crash_probability == 0 are byte-identical to
  /// pre-crash-fault chaos plans.
  double crash_probability = 0.0;
  /// When > 0, the plan additionally carries correlated burst-loss windows
  /// (kBurstLoss, all users) with this bad-state packet-loss probability.
  /// Also a separate RNG stream, for the same byte-stability reason.
  double burst_loss_probability = 0.0;
};

/// Generates a random-but-deterministic plan: same ChaosConfig, same plan.
[[nodiscard]] FaultPlan random_plan(const ChaosConfig& config);

}  // namespace volcast::fault
