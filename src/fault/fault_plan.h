// Deterministic cross-layer fault injection (chaos testing for the
// streaming stack).
//
// The paper's agenda is surviving disruption, but the anticipated failure
// modes (forecastable body blockage, SLS staleness) are only half the
// story: real multi-user deployments are dominated by *unanticipated*
// faults — AP outages, user churn, new obstacles, broken beam probes,
// corrupted frames, decoder stalls. A FaultPlan is an explicit, seeded list
// of such timed events; the session threads it through every layer so that
// graceful degradation and recovery can be exercised and measured. Faults
// are simulation events, never wall-clock randomness: the same
// (SessionConfig, FaultPlan, seed) reproduces bit-identical results.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "geometry/vec3.h"

namespace volcast::fault {

/// Event taxonomy, one entry per layer the injector can disturb.
enum class FaultKind {
  kApOutage,       // AP `target` goes dark, restarts after duration_s
  kUserLeave,      // user `target` churns out, rejoins after duration_s
  kObstacleSpawn,  // persistent obstacle appears at `position`
  kBeamProbeFail,  // user `target`'s custom-beam probes fail while active
  kStuckSector,    // user `target`'s serving sector freezes while active
  kFrameLoss,      // user frames corrupt/lost with probability `magnitude`
  kDecoderStall,   // user `target`'s decoder is frozen while active
};

[[nodiscard]] const char* to_string(FaultKind kind) noexcept;

/// `target` value meaning "every user" (kFrameLoss only).
inline constexpr std::size_t kAllUsers =
    std::numeric_limits<std::size_t>::max();

/// One timed fault.
struct FaultEvent {
  double t_s = 0.0;         // onset (simulation time)
  FaultKind kind = FaultKind::kApOutage;
  std::size_t target = 0;   // AP index or user index depending on kind
  /// Active window; <= 0 means "until the end of the session".
  double duration_s = 0.0;
  /// Kind-specific knob: loss probability in [0, 1] for kFrameLoss,
  /// obstacle radius in meters for kObstacleSpawn (0 = default 0.4 m).
  double magnitude = 0.0;
  /// Obstacle spawn point in room coordinates (kObstacleSpawn only).
  geo::Vec3 position{};
};

/// An ordered, validated list of fault events.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Inserts an event keeping the list sorted by onset time.
  void add(const FaultEvent& event);

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

  /// Checks every event against the session shape. Throws
  /// std::invalid_argument with a message naming the offending event.
  void validate(std::size_t user_count, std::size_t ap_count) const;

  /// Human-readable one-line-per-event listing.
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<FaultEvent> events_;
};

/// Knobs for the seeded chaos-plan generator.
struct ChaosConfig {
  std::uint64_t seed = 1;
  double duration_s = 8.0;
  std::size_t user_count = 4;
  std::size_t ap_count = 1;
  /// Expected fault events per simulated second (before clamping to at
  /// least one event per plan).
  double intensity = 0.5;
};

/// Generates a random-but-deterministic plan: same ChaosConfig, same plan.
[[nodiscard]] FaultPlan random_plan(const ChaosConfig& config);

}  // namespace volcast::fault
