#include "fault/health.h"

#include <sstream>

namespace volcast::fault {

const char* to_string(HealthState state) noexcept {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kOutage: return "outage";
    case HealthState::kRecovering: return "recovering";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(HealthConfig config) : config_(config) {}

void HealthMonitor::enter(HealthState next) {
  if (next == state_) return;
  state_ = next;
  ++transitions_;
}

HealthState HealthMonitor::observe(double t, bool delivering,
                                   double rate_mbps, bool impaired) {
  const bool good =
      delivering && !impaired && rate_mbps >= config_.degraded_rate_mbps;
  if (!delivering) {
    if (episode_start_ < 0.0) episode_start_ = t;
    good_ticks_ = 0;
    enter(HealthState::kOutage);
    return state_;
  }
  if (!good) {
    if (episode_start_ < 0.0) episode_start_ = t;
    good_ticks_ = 0;
    enter(HealthState::kDegraded);
    return state_;
  }
  // Good tick.
  if (state_ == HealthState::kHealthy) return state_;
  enter(HealthState::kRecovering);
  if (++good_ticks_ >= config_.recovery_ticks) {
    if (episode_start_ >= 0.0) {
      recovery_times_.push_back(t - episode_start_);
      episode_start_ = -1.0;
    }
    good_ticks_ = 0;
    enter(HealthState::kHealthy);
  }
  return state_;
}

std::string FaultReport::summary() const {
  std::ostringstream out;
  out << "recovery report\n";
  out << "  faults injected        " << faults_injected << "\n";
  out << "  recoveries             " << recoveries << " (mean ttr "
      << mean_time_to_recover_s << " s, max " << max_time_to_recover_s
      << " s)\n";
  out << "  fault rebuffer         " << fault_rebuffer_s << " s\n";
  out << "  group reformations     " << group_reformations << "\n";
  out << "  concealed frames       " << concealed_frames << " (skipped "
      << skipped_frames << ")\n";
  out << "  probe retries          " << probe_retries << "\n";
  out << "  fallback beams         stock " << fallback_stock_beams
      << ", reflection " << fallback_reflection_beams << ", tier drops "
      << fallback_tier_drops << "\n";
  out << "  degraded user-ticks    " << degraded_user_ticks << "\n";
  out << "  outage user-ticks      " << unhealthy_user_ticks << "\n";
  out << "  health transitions     " << health_transitions << "\n";
  return out.str();
}

}  // namespace volcast::fault
