// 802.11ad sector-level sweep (SLS) beam training.
//
// The paper's motivation for predictive beam selection: "Reinitiating beam
// searching to find new beams ... will cause a delay of up to 5 to 20 ms"
// (Section 4.1). This models that cost. A sweep transmits one SSW frame per
// transmit sector, the responder answers with feedback, and the exchange
// occupies the medium — airtime no payload can use — while the link rides
// the stale beam until the sweep completes.
//
// Frame timings follow the 802.11ad control PHY (SSW frame ~15.8 us on air
// plus SBIFS spacing); with a ~39-sector codebook one full TXSS lands in
// the paper's quoted 5-20 ms band once both sides and MAC overheads are
// accounted.
#pragma once

#include <cstddef>

#include "mmwave/codebook.h"

namespace volcast::mmwave {

/// SLS timing parameters (802.11ad control PHY).
struct SlsTiming {
  double ssw_frame_s = 15.8e-6;   // one SSW frame on air
  double sbifs_s = 1.0e-6;        // short beamforming IFS between frames
  double feedback_s = 40.0e-6;    // SSW-Feedback + ACK exchange
  /// MAC/scheduling overhead factor: queueing the sweep inside beacon
  /// intervals stretches the wall-clock cost of a sweep well beyond the raw
  /// on-air time (this is why the paper quotes 5-20 ms, not ~1 ms).
  double mac_stretch = 12.0;
};

/// Cost model for one transmit-sector sweep over `sector_count` sectors.
class SlsProcedure {
 public:
  explicit SlsProcedure(SlsTiming timing = {});

  /// Raw on-air time of the sweep (both directions of the TXSS).
  [[nodiscard]] double on_air_s(std::size_t sector_count) const noexcept;

  /// Wall-clock link interruption: how long the station streams on a stale
  /// (possibly useless) beam before the new beam is installed.
  [[nodiscard]] double outage_s(std::size_t sector_count) const noexcept;

  /// Convenience for a codebook.
  [[nodiscard]] double outage_s(const Codebook& codebook) const noexcept {
    return outage_s(codebook.size());
  }

  [[nodiscard]] const SlsTiming& timing() const noexcept { return timing_; }

 private:
  SlsTiming timing_;
};

}  // namespace volcast::mmwave
