// Packet error rate vs. SNR margin, and PER-aware rate selection.
//
// The sensitivity thresholds in the MCS table are the "just decodable"
// points; real links see a PER cliff around them. Rate selection that
// merely picks the highest decodable MCS rides that cliff — PER-aware
// selection maximizes expected goodput (1 - PER) * rate instead, and
// multicast (which has no per-receiver retransmission) backs off an extra
// margin, the "reliable multicast" MCS choice the paper describes.
#pragma once

#include "mmwave/mcs.h"

namespace volcast::mmwave {

/// Logistic PER model around each MCS's sensitivity.
struct PerModel {
  /// PER = 1 / (1 + exp(steepness * (margin_db - midpoint_db))).
  double midpoint_db = 0.5;   // margin at which PER = 50%
  double steepness = 2.2;     // cliff sharpness (per dB)
  /// Extra SNR margin required for multicast payloads (no retransmission,
  /// every member must receive the frame).
  double multicast_backoff_db = 2.0;

  /// Packet error rate for one MCS at the given RSS.
  [[nodiscard]] double per(double rss_dbm, const McsEntry& mcs) const noexcept;

  /// Expected unicast goodput: picks the MCS maximizing
  /// (1 - PER) * phy_rate * mac_efficiency.
  [[nodiscard]] double effective_goodput_mbps(const McsTable& table,
                                              double rss_dbm) const noexcept;

  /// Multicast rate: the backed-off MCS choice (highest rate whose PER at
  /// rss - multicast_backoff_db is below `target_per`), times MAC
  /// efficiency; 0 when nothing qualifies.
  [[nodiscard]] double multicast_goodput_mbps(
      const McsTable& table, double rss_dbm,
      double target_per = 0.01) const noexcept;

  /// Residual per-packet error rate of that same multicast MCS choice: the
  /// PER (at the *un*-backed-off RSS) of the entry multicast_goodput_mbps
  /// selects. This is what a packet-level wire should use as its base loss
  /// probability — at or below `target_per` by construction, not the ~50%
  /// cliff value of the marginal unicast MCS. Returns `target_per` when no
  /// MCS qualifies (the link carries nothing then anyway).
  [[nodiscard]] double multicast_residual_per(
      const McsTable& table, double rss_dbm,
      double target_per = 0.01) const noexcept;
};

}  // namespace volcast::mmwave
