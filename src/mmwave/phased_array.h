// Phased antenna array with explicit antenna weight vectors (AWVs).
//
// Models the Airfide 802.11ad AP from the paper's testbed (8 phased-array
// patches, Fig. 3a) as a uniform planar array: elements on a half-wavelength
// grid in the array's local y-z plane, boresight along local +x. A beam IS
// an AWV (one complex weight per element); beam gain in a direction is the
// array factor under that AWV times the element pattern. The paper's custom
// multi-lobe beams are synthesized by combining AWVs (beam_design.h), which
// is why the AWV is a first-class value here rather than an internal detail.
#pragma once

#include <complex>
#include <vector>

#include "geometry/pose.h"
#include "geometry/vec3.h"

namespace volcast::mmwave {

using Complex = std::complex<double>;

/// Antenna weight vector: one complex weight per element. Power-normalized
/// AWVs satisfy sum |w_i|^2 == 1 (total transmit power constraint — the
/// constraint the paper's multi-lobe combination must respect).
using Awv = std::vector<Complex>;

/// Returns w scaled so that sum |w_i|^2 == 1 (no-op for a zero vector).
[[nodiscard]] Awv power_normalized(Awv w);

/// Element layout of the array.
struct ArrayGeometry {
  unsigned ny = 8;  ///< elements along local y (the 8 patch columns)
  unsigned nz = 4;  ///< elements along local z
  double spacing_wavelengths = 0.5;

  [[nodiscard]] unsigned element_count() const noexcept { return ny * nz; }
};

/// A mounted phased array: geometry + world pose + carrier.
class PhasedArray {
 public:
  /// `pose.forward()` is the boresight; `pose.left()`/`pose.up()` span the
  /// element plane. Throws std::invalid_argument for an empty geometry.
  PhasedArray(const ArrayGeometry& geometry, const geo::Pose& pose,
              double carrier_hz);

  [[nodiscard]] const ArrayGeometry& geometry() const noexcept {
    return geometry_;
  }
  [[nodiscard]] const geo::Pose& pose() const noexcept { return pose_; }
  [[nodiscard]] std::size_t element_count() const noexcept {
    return elements_local_.size();
  }

  /// Conjugate-steering AWV pointed at the world-space direction `dir`
  /// (need not be normalized), power-normalized.
  [[nodiscard]] Awv steer(const geo::Vec3& dir_world) const;

  /// AWV pointed at a world position (steer toward target - array origin).
  [[nodiscard]] Awv steer_at(const geo::Vec3& target_world) const;

  /// Linear transmit power gain of AWV `w` toward world direction `dir`:
  /// |array factor|^2 scaled by the single-element pattern. For a
  /// power-normalized conjugate-steered AWV the peak equals
  /// element_count() * element peak gain.
  [[nodiscard]] double gain(const Awv& w, const geo::Vec3& dir_world) const;

  /// gain() in dBi.
  [[nodiscard]] double gain_dbi(const Awv& w, const geo::Vec3& dir_world) const;

  /// Cosine-squared element power pattern with ~6 dBi peak and a hard
  /// backplane: 4 cos^2(theta) in front, -30 dB of the peak behind.
  [[nodiscard]] static double element_gain(double cos_theta) noexcept;

 private:
  ArrayGeometry geometry_;
  geo::Pose pose_;
  double wavelength_m_;
  std::vector<geo::Vec3> elements_local_;  // metres, local frame

  /// World direction -> (local direction, cos(theta) from boresight).
  [[nodiscard]] geo::Vec3 to_local(const geo::Vec3& dir_world) const noexcept;
};

}  // namespace volcast::mmwave
