// Indoor 60 GHz propagation: deterministic image-method ray tracing in a
// rectangular room (LoS + first-order reflections off the four walls,
// ceiling and floor) plus a human-body blockage model with partial
// degradation levels.
//
// This substitutes for the commercial Remcom Wireless InSite ray tracer the
// paper used for its Fig. 3d study — what the custom-beam experiments need
// is direction-resolved multipath with plausible 60 GHz magnitudes, which
// first-order image theory in a room provides.
#pragma once

#include <span>
#include <vector>

#include "geometry/obstacle.h"
#include "geometry/vec3.h"

namespace volcast::mmwave {

/// Rectangular room [0,w] x [0,l] x [0,h] with uniform wall reflectivity.
struct Room {
  double width_m = 8.0;   // x extent
  double length_m = 6.0;  // y extent
  double height_m = 3.0;  // z extent
  /// Power reflection loss per wall bounce at 60 GHz (plasterboard ~10 dB).
  double reflection_loss_db = 10.0;
  bool enable_reflections = true;
  /// Image-method depth: 1 = single bounces (six surfaces), 2 = adds all
  /// ordered double bounces (wall-wall, wall-ceiling, ...). Second-order
  /// paths carry two reflection losses (~-20 dB) — negligible for RSS sums
  /// but useful when hunting alternate routes around a blocker.
  int max_reflection_order = 1;
};

/// One propagation path from transmitter to receiver.
struct Path {
  geo::Vec3 tx_direction{};   // unit vector leaving the transmitter
  double length_m = 0.0;      // total travelled distance
  double extra_loss_db = 0.0; // reflection + blockage losses
  bool line_of_sight = true;
  int bounces = 0;            // 0 for LoS
  geo::Vec3 bounce_point{};   // first bounce, valid when !line_of_sight
};

/// Human blockage with partial degradation (paper Section 5: "blockage does
/// not always cause link outage"): loss ramps from 0 dB at `clearance_m`
/// XY clearance down to `max_loss_db` for a dead-center crossing.
struct BlockageModel {
  double max_loss_db = 20.0;  // torso dead-center at 60 GHz
  double clearance_m = 0.35;  // Fresnel-padded body radius

  /// Loss in dB for a segment a->b against one body.
  [[nodiscard]] double segment_loss_db(const geo::Vec3& a, const geo::Vec3& b,
                                       const geo::BodyObstacle& body) const
      noexcept;

  /// Total loss for a segment against many bodies (losses add in dB:
  /// successive independent shadowing screens).
  [[nodiscard]] double segment_loss_db(
      const geo::Vec3& a, const geo::Vec3& b,
      std::span<const geo::BodyObstacle> bodies) const noexcept;
};

/// Deterministic multipath channel in a room.
class Channel {
 public:
  explicit Channel(const Room& room, double carrier_hz = 60.48e9);

  [[nodiscard]] const Room& room() const noexcept { return room_; }
  [[nodiscard]] double carrier_hz() const noexcept { return carrier_hz_; }

  /// All propagation paths between two points, with body blockage applied
  /// per path segment. The LoS path is always first.
  [[nodiscard]] std::vector<Path> paths(
      const geo::Vec3& tx, const geo::Vec3& rx,
      std::span<const geo::BodyObstacle> bodies = {},
      const BlockageModel& blockage = {}) const;

  /// Free-space path loss at the carrier for `distance_m` (positive dB).
  [[nodiscard]] double fspl_db(double distance_m) const noexcept;

 private:
  Room room_;
  double carrier_hz_;
};

}  // namespace volcast::mmwave
