#include "mmwave/link.h"

#include <algorithm>
#include <cmath>

#include "common/units.h"
#include "obs/metrics.h"

namespace volcast::mmwave {

double rss_dbm(const PhasedArray& tx, const Awv& w, const Channel& channel,
               const geo::Vec3& rx_pos,
               std::span<const geo::BodyObstacle> bodies,
               const LinkBudget& budget, const BlockageModel& blockage,
               obs::Counter* evals) {
  if (evals != nullptr) evals->add();
  const auto paths = channel.paths(tx.pose().position, rx_pos, bodies,
                                   blockage);
  double total_mw = 0.0;
  for (const Path& path : paths) {
    const double gain_db = ratio_to_db(
        std::max(tx.gain(w, path.tx_direction), 1e-12));
    const double rx_dbm = budget.tx_power_dbm + gain_db -
                          channel.fspl_db(path.length_m) -
                          path.extra_loss_db + budget.rx_gain_dbi -
                          budget.implementation_loss_db;
    total_mw += dbm_to_mw(rx_dbm);
  }
  if (total_mw <= 0.0) return -200.0;
  return mw_to_dbm(total_mw);
}

double best_beam_rss_dbm(const PhasedArray& tx, const Codebook& codebook,
                         const Channel& channel, const geo::Vec3& rx_pos,
                         std::span<const geo::BodyObstacle> bodies,
                         const LinkBudget& budget,
                         const BlockageModel& blockage, obs::Counter* evals) {
  const std::size_t beam = codebook.best_beam_toward(tx, rx_pos);
  return rss_dbm(tx, codebook.beam(beam), channel, rx_pos, bodies, budget,
                 blockage, evals);
}

ShadowingProcess::ShadowingProcess(double sigma_db, double coherence_time_s,
                                   std::uint64_t seed)
    : sigma_db_(sigma_db),
      coherence_time_s_(std::max(coherence_time_s, 1e-3)),
      rng_(seed) {
  value_db_ = rng_.normal(0.0, sigma_db_);
}

double ShadowingProcess::step(double dt_s) {
  // AR(1) / Gauss-Markov: rho = exp(-dt / tau) keeps the marginal variance
  // at sigma^2 for any step size.
  const double rho = std::exp(-std::max(dt_s, 0.0) / coherence_time_s_);
  const double innovation_sigma = sigma_db_ * std::sqrt(1.0 - rho * rho);
  value_db_ = rho * value_db_ + rng_.normal(0.0, innovation_sigma);
  return value_db_;
}

}  // namespace volcast::mmwave
