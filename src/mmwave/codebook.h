// Default sector-beam codebook.
//
// Commercial 802.11ad devices ship a fixed grid of single-lobe sector beams
// and pick the best one per station during beam training (SLS). The paper's
// Fig. 3b shows exactly why this codebook struggles with multicast: no
// single sector covers two separated users with high RSS. This class is
// that default codebook.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "mmwave/phased_array.h"

namespace volcast::mmwave {

/// Codebook grid parameters (relative to the array boresight).
struct CodebookConfig {
  double az_min_rad = -1.0471975511965976;  // -60 degrees
  double az_max_rad = 1.0471975511965976;   // +60 degrees
  std::size_t az_steps = 13;                // 10-degree sector pitch
  double el_min_rad = -0.6981317007977318;  // -40 degrees (AP looks down)
  double el_max_rad = 0.0;
  std::size_t el_steps = 3;
  /// Stock sector beams drive only a central subarray (0 = use the full
  /// array). Commercial codebooks trade peak gain for robust wide sectors;
  /// the paper's custom beams, by contrast, exploit the full aperture.
  unsigned subarray_ny = 4;
  unsigned subarray_nz = 2;
};

/// Grid of pre-steered sector AWVs with best-beam selection.
class Codebook {
 public:
  /// Builds the sector grid for `array`. Throws std::invalid_argument for a
  /// degenerate grid (zero steps).
  Codebook(const PhasedArray& array, const CodebookConfig& config = {});

  [[nodiscard]] std::size_t size() const noexcept { return beams_.size(); }
  [[nodiscard]] const Awv& beam(std::size_t index) const {
    return beams_.at(index);
  }
  [[nodiscard]] std::span<const Awv> beams() const noexcept { return beams_; }

  /// Index of the beam with the highest gain toward a world position
  /// (the outcome of per-station sector sweep training).
  [[nodiscard]] std::size_t best_beam_toward(const PhasedArray& array,
                                             const geo::Vec3& target) const;

  /// Index of the beam maximizing the *minimum* gain over several targets —
  /// the best the default codebook can do for a multicast group.
  [[nodiscard]] std::size_t best_common_beam(
      const PhasedArray& array, std::span<const geo::Vec3> targets) const;

 private:
  std::vector<Awv> beams_;
};

}  // namespace volcast::mmwave
