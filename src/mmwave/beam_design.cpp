#include "mmwave/beam_design.h"

#include <stdexcept>

namespace volcast::mmwave {

Awv combine_awvs(std::span<const Awv> beams, std::span<const double> rss_mw) {
  if (beams.empty()) throw std::invalid_argument("combine_awvs: no beams");
  if (beams.size() != rss_mw.size())
    throw std::invalid_argument("combine_awvs: beams/RSS size mismatch");
  const std::size_t n = beams.front().size();

  // Weight_i proportional to 1 / rss_i: for two users this is
  //   w = (D2 w1 + D1 w2) / (D1 + D2)
  // up to the common factor D1*D2, i.e. exactly the paper's rule.
  double weight_sum = 0.0;
  for (double rss : rss_mw) {
    if (rss <= 0.0)
      throw std::invalid_argument("combine_awvs: non-positive RSS");
    weight_sum += 1.0 / rss;
  }

  Awv combined(n, Complex{0.0, 0.0});
  for (std::size_t b = 0; b < beams.size(); ++b) {
    if (beams[b].size() != n)
      throw std::invalid_argument("combine_awvs: AWV length mismatch");
    const double weight = (1.0 / rss_mw[b]) / weight_sum;
    for (std::size_t i = 0; i < n; ++i) combined[i] += weight * beams[b][i];
  }
  return power_normalized(std::move(combined));
}

Awv combine_awvs_equal(std::span<const Awv> beams) {
  if (beams.empty())
    throw std::invalid_argument("combine_awvs_equal: no beams");
  const std::size_t n = beams.front().size();
  Awv combined(n, Complex{0.0, 0.0});
  for (const Awv& beam : beams) {
    if (beam.size() != n)
      throw std::invalid_argument("combine_awvs_equal: AWV length mismatch");
    for (std::size_t i = 0; i < n; ++i) combined[i] += beam[i];
  }
  return power_normalized(std::move(combined));
}

}  // namespace volcast::mmwave
