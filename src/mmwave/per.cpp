#include "mmwave/per.h"

#include <algorithm>
#include <cmath>

namespace volcast::mmwave {

double PerModel::per(double rss_dbm, const McsEntry& mcs) const noexcept {
  if (mcs.phy_rate_mbps <= 0.0) return 1.0;
  const double margin = rss_dbm - mcs.sensitivity_dbm;
  return 1.0 / (1.0 + std::exp(steepness * (margin - midpoint_db)));
}

double PerModel::effective_goodput_mbps(const McsTable& table,
                                        double rss_dbm) const noexcept {
  double best = 0.0;
  for (const McsEntry& entry : table.entries()) {
    if (entry.index < 1) continue;  // control PHY carries no video payload
    const double expected =
        (1.0 - per(rss_dbm, entry)) * entry.phy_rate_mbps *
        table.mac_efficiency;
    best = std::max(best, expected);
  }
  return best;
}

double PerModel::multicast_goodput_mbps(const McsTable& table,
                                        double rss_dbm,
                                        double target_per) const noexcept {
  const double backed_off = rss_dbm - multicast_backoff_db;
  double best = 0.0;
  for (const McsEntry& entry : table.entries()) {
    if (entry.index < 1) continue;
    if (per(backed_off, entry) <= target_per)
      best = std::max(best, entry.phy_rate_mbps * table.mac_efficiency);
  }
  return best;
}

double PerModel::multicast_residual_per(const McsTable& table, double rss_dbm,
                                        double target_per) const noexcept {
  const double backed_off = rss_dbm - multicast_backoff_db;
  double best_rate = 0.0;
  double residual = target_per;
  for (const McsEntry& entry : table.entries()) {
    if (entry.index < 1) continue;
    if (per(backed_off, entry) <= target_per &&
        entry.phy_rate_mbps > best_rate) {
      best_rate = entry.phy_rate_mbps;
      residual = per(rss_dbm, entry);
    }
  }
  return residual;
}

}  // namespace volcast::mmwave
