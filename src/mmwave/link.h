// Link budget: AWV + multipath channel -> RSS -> MCS -> rate.
#pragma once

#include <span>

#include "common/rng.h"
#include "mmwave/channel.h"
#include "mmwave/codebook.h"
#include "mmwave/mcs.h"
#include "mmwave/phased_array.h"

namespace volcast::obs {
class Counter;
}  // namespace volcast::obs

namespace volcast::mmwave {

/// Fixed terms of the link budget. Defaults are calibrated so that the
/// default-codebook RSS distribution over the user-study positions matches
/// the paper's Fig. 3b anchor (-68 dBm coverage of ~96.5% for one user).
struct LinkBudget {
  double tx_power_dbm = 7.5;   // conducted power (FCC-friendly EIRP once
                               // the ~20 dBi array gain is added)
  double rx_gain_dbi = 6.0;    // client quasi-omni receive gain
  double implementation_loss_db = 10.0;  // RF chain, pointing, polarization
};

/// Computes the received signal strength at `rx_pos` for transmit AWV `w`:
/// non-coherent power sum over all channel paths of
///   P_tx + G_tx(path direction) - FSPL(length) - extra losses + G_rx.
/// (Non-coherent summing models the wideband 802.11ad waveform, whose
/// symbol bandwidth decorrelates path phases.)
/// `evals`, when non-null, counts link-budget evaluations (telemetry; an
/// atomic bump, safe from parallel lanes and free of RNG interaction).
[[nodiscard]] double rss_dbm(const PhasedArray& tx, const Awv& w,
                             const Channel& channel, const geo::Vec3& rx_pos,
                             std::span<const geo::BodyObstacle> bodies = {},
                             const LinkBudget& budget = {},
                             const BlockageModel& blockage = {},
                             obs::Counter* evals = nullptr);

/// Convenience: RSS with the best codebook beam for this receiver (the
/// unicast SLS outcome).
[[nodiscard]] double best_beam_rss_dbm(
    const PhasedArray& tx, const Codebook& codebook, const Channel& channel,
    const geo::Vec3& rx_pos, std::span<const geo::BodyObstacle> bodies = {},
    const LinkBudget& budget = {}, const BlockageModel& blockage = {},
    obs::Counter* evals = nullptr);

/// Slow log-normal shadowing as an AR(1) process in dB; gives the RSS
/// time series the jitter a real testbed shows without breaking
/// reproducibility.
class ShadowingProcess {
 public:
  ShadowingProcess(double sigma_db, double coherence_time_s,
                   std::uint64_t seed);

  /// Advances by dt and returns the current shadowing term in dB.
  double step(double dt_s);

  [[nodiscard]] double current_db() const noexcept { return value_db_; }

 private:
  double sigma_db_;
  double coherence_time_s_;
  Rng rng_;
  double value_db_ = 0.0;
};

}  // namespace volcast::mmwave
