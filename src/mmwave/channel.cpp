#include "mmwave/channel.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/units.h"

namespace volcast::mmwave {

double BlockageModel::segment_loss_db(const geo::Vec3& a, const geo::Vec3& b,
                                      const geo::BodyObstacle& body) const
    noexcept {
  const double clearance = geo::segment_body_clearance(a, b, body);
  if (clearance >= clearance_m) return 0.0;
  // Linear (in dB) ramp: grazing the Fresnel boundary costs ~0, a
  // dead-center torso crossing costs max_loss_db.
  return max_loss_db * (1.0 - clearance / clearance_m);
}

double BlockageModel::segment_loss_db(
    const geo::Vec3& a, const geo::Vec3& b,
    std::span<const geo::BodyObstacle> bodies) const noexcept {
  double total = 0.0;
  for (const geo::BodyObstacle& body : bodies)
    total += segment_loss_db(a, b, body);
  return total;
}

Channel::Channel(const Room& room, double carrier_hz)
    : room_(room), carrier_hz_(carrier_hz) {}

double Channel::fspl_db(double distance_m) const noexcept {
  const double d = std::max(distance_m, 0.01);
  const double lambda = wavelength_m(carrier_hz_);
  return 20.0 * std::log10(4.0 * std::numbers::pi * d / lambda);
}

std::vector<Path> Channel::paths(const geo::Vec3& tx, const geo::Vec3& rx,
                                 std::span<const geo::BodyObstacle> bodies,
                                 const BlockageModel& blockage) const {
  std::vector<Path> out;

  // Line of sight.
  {
    Path los;
    const geo::Vec3 delta = rx - tx;
    los.length_m = delta.norm();
    los.tx_direction = delta.normalized();
    los.line_of_sight = true;
    los.extra_loss_db = blockage.segment_loss_db(tx, rx, bodies);
    out.push_back(los);
  }
  if (!room_.enable_reflections) return out;

  // Reflections via the image method: mirror the receiver across bounding
  // planes, shoot at the image, unfold the bounce points.
  struct Plane {
    int axis;      // 0=x, 1=y, 2=z
    double value;  // plane coordinate
  };
  const Plane planes[6] = {{0, 0.0},           {0, room_.width_m},
                           {1, 0.0},           {1, room_.length_m},
                           {2, 0.0},           {2, room_.height_m}};
  auto component = [](const geo::Vec3& v, int axis) {
    return axis == 0 ? v.x : (axis == 1 ? v.y : v.z);
  };
  auto mirrored = [&component](geo::Vec3 v, const Plane& plane) {
    const double c = component(v, plane.axis);
    (plane.axis == 0 ? v.x : plane.axis == 1 ? v.y : v.z) =
        2.0 * plane.value - c;
    return v;
  };
  auto on_face = [this](const geo::Vec3& p) {
    return p.x >= -1e-9 && p.x <= room_.width_m + 1e-9 && p.y >= -1e-9 &&
           p.y <= room_.length_m + 1e-9 && p.z >= -1e-9 &&
           p.z <= room_.height_m + 1e-9;
  };
  // Intersection parameter of segment a->b with a plane; < 0 when parallel
  // or outside the open interval (0, 1).
  auto cross_at = [&component](const geo::Vec3& a, const geo::Vec3& b,
                               const Plane& plane) {
    const double ca = component(a, plane.axis);
    const double cb = component(b, plane.axis);
    const double denom = cb - ca;
    if (std::abs(denom) < 1e-12) return -1.0;
    const double t = (plane.value - ca) / denom;
    return (t > 1e-9 && t < 1.0 - 1e-9) ? t : -1.0;
  };

  // First order.
  for (const Plane& plane : planes) {
    const geo::Vec3 image = mirrored(rx, plane);
    const double t = cross_at(tx, image, plane);
    if (t < 0.0) continue;
    const geo::Vec3 bounce = tx + (image - tx) * t;
    if (!on_face(bounce)) continue;

    Path p;
    p.line_of_sight = false;
    p.bounces = 1;
    p.bounce_point = bounce;
    p.length_m = (image - tx).norm();
    p.tx_direction = (image - tx).normalized();
    p.extra_loss_db = room_.reflection_loss_db +
                      blockage.segment_loss_db(tx, bounce, bodies) +
                      blockage.segment_loss_db(bounce, rx, bodies);
    out.push_back(p);
  }

  // Second order: bounce off plane A, then plane B (ordered pairs of
  // distinct planes; same-axis pairs are the opposite-wall ping-pong).
  if (room_.max_reflection_order >= 2) {
    for (const Plane& a : planes) {
      for (const Plane& b : planes) {
        if (a.axis == b.axis && a.value == b.value) continue;
        const geo::Vec3 image_b = mirrored(rx, b);
        const geo::Vec3 image_ab = mirrored(image_b, a);
        const double ta = cross_at(tx, image_ab, a);
        if (ta < 0.0) continue;
        const geo::Vec3 bounce_a = tx + (image_ab - tx) * ta;
        if (!on_face(bounce_a)) continue;
        const double tb = cross_at(bounce_a, image_b, b);
        if (tb < 0.0) continue;
        const geo::Vec3 bounce_b = bounce_a + (image_b - bounce_a) * tb;
        if (!on_face(bounce_b)) continue;

        Path p;
        p.line_of_sight = false;
        p.bounces = 2;
        p.bounce_point = bounce_a;
        p.length_m = (image_ab - tx).norm();
        p.tx_direction = (image_ab - tx).normalized();
        p.extra_loss_db =
            2.0 * room_.reflection_loss_db +
            blockage.segment_loss_db(tx, bounce_a, bodies) +
            blockage.segment_loss_db(bounce_a, bounce_b, bodies) +
            blockage.segment_loss_db(bounce_b, rx, bodies);
        out.push_back(p);
      }
    }
  }
  return out;
}

}  // namespace volcast::mmwave
