#include "mmwave/mcs.h"

#include <array>

namespace volcast::mmwave {
namespace {

// IEEE 802.11ad-2012 Table 21-3 (SC PHY) rates with the standard's receiver
// sensitivity requirements (Table 21-25). MCS 0 is the control PHY.
constexpr std::array<McsEntry, 13> kTable{{
    {0, 27.5, -78.0},
    {1, 385.0, -68.0},
    {2, 770.0, -66.0},
    {3, 962.5, -65.0},
    {4, 1155.0, -64.0},
    {5, 1251.25, -62.0},
    {6, 1540.0, -63.0},
    {7, 1925.0, -62.0},
    {8, 2310.0, -61.0},
    {9, 2502.5, -59.0},
    {10, 3080.0, -55.0},
    {11, 3850.0, -54.0},
    {12, 4620.0, -53.0},
}};

}  // namespace

McsTable::McsTable() = default;

std::span<const McsEntry> McsTable::entries() const noexcept {
  return kTable;
}

McsEntry McsTable::select(double rss_dbm) const noexcept {
  McsEntry best{-1, 0.0, 0.0};
  for (const McsEntry& entry : kTable) {
    if (rss_dbm >= entry.sensitivity_dbm &&
        entry.phy_rate_mbps > best.phy_rate_mbps)
      best = entry;
  }
  return best;
}

double McsTable::rate_mbps(double rss_dbm) const noexcept {
  return select(rss_dbm).phy_rate_mbps;
}

double McsTable::goodput_mbps(double rss_dbm) const noexcept {
  return rate_mbps(rss_dbm) * mac_efficiency;
}

}  // namespace volcast::mmwave
