// 802.11ad single-carrier modulation and coding schemes: receiver
// sensitivity thresholds and PHY data rates. The paper's anchor point —
// "RSS of -68 dBm ... can provide approximately 384 Mbps" — is MCS 1 of
// this table.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace volcast::mmwave {

/// One SC MCS entry.
struct McsEntry {
  int index = 0;
  double phy_rate_mbps = 0.0;
  double sensitivity_dbm = 0.0;
};

/// The 802.11ad SC PHY rate set (MCS 1-12) plus the control PHY (MCS 0).
class McsTable {
 public:
  /// Standard-compliant default table.
  McsTable();

  [[nodiscard]] std::span<const McsEntry> entries() const noexcept;

  /// Highest-rate MCS decodable at `rss_dbm`; returns the control PHY
  /// (index 0, rate 27.5 Mbps) below MCS 1 sensitivity and a zero-rate
  /// sentinel (index -1) when even control frames fail.
  [[nodiscard]] McsEntry select(double rss_dbm) const noexcept;

  /// PHY rate for `select(rss_dbm)`, in Mbps (0 when out of range).
  [[nodiscard]] double rate_mbps(double rss_dbm) const noexcept;

  /// Effective MAC-layer throughput: PHY rate times the MAC efficiency
  /// factor (aggregation, ACKs, beacon/beamforming overhead).
  [[nodiscard]] double goodput_mbps(double rss_dbm) const noexcept;

  /// MAC efficiency factor in (0, 1]; default 0.65, typical of 802.11ad
  /// A-MPDU operation.
  double mac_efficiency = 0.65;
};

}  // namespace volcast::mmwave
