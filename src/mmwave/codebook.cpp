#include "mmwave/codebook.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace volcast::mmwave {

namespace {

/// Zeroes the weights of elements outside a centered ny x nz window and
/// re-normalizes — the "wide sector" taper of stock codebooks.
Awv apply_subarray(Awv w, const ArrayGeometry& geometry, unsigned sub_ny,
                   unsigned sub_nz) {
  if (sub_ny == 0 || sub_ny >= geometry.ny) sub_ny = geometry.ny;
  if (sub_nz == 0 || sub_nz >= geometry.nz) sub_nz = geometry.nz;
  if (sub_ny == geometry.ny && sub_nz == geometry.nz) return w;
  const unsigned y_lo = (geometry.ny - sub_ny) / 2;
  const unsigned z_lo = (geometry.nz - sub_nz) / 2;
  for (unsigned iz = 0; iz < geometry.nz; ++iz) {
    for (unsigned iy = 0; iy < geometry.ny; ++iy) {
      const bool inside = iy >= y_lo && iy < y_lo + sub_ny && iz >= z_lo &&
                          iz < z_lo + sub_nz;
      if (!inside) w[iz * geometry.ny + iy] = Complex{0.0, 0.0};
    }
  }
  return power_normalized(std::move(w));
}

}  // namespace

Codebook::Codebook(const PhasedArray& array, const CodebookConfig& config) {
  if (config.az_steps == 0 || config.el_steps == 0)
    throw std::invalid_argument("Codebook: zero grid steps");
  beams_.reserve(config.az_steps * config.el_steps);
  for (std::size_t ie = 0; ie < config.el_steps; ++ie) {
    const double el =
        config.el_steps == 1
            ? 0.5 * (config.el_min_rad + config.el_max_rad)
            : config.el_min_rad + (config.el_max_rad - config.el_min_rad) *
                                      static_cast<double>(ie) /
                                      static_cast<double>(config.el_steps - 1);
    for (std::size_t ia = 0; ia < config.az_steps; ++ia) {
      const double az =
          config.az_steps == 1
              ? 0.5 * (config.az_min_rad + config.az_max_rad)
              : config.az_min_rad +
                    (config.az_max_rad - config.az_min_rad) *
                        static_cast<double>(ia) /
                        static_cast<double>(config.az_steps - 1);
      // Local direction (x forward, y left, z up) for the sector center.
      const geo::Vec3 local{std::cos(el) * std::cos(az),
                            std::cos(el) * std::sin(az), std::sin(el)};
      const geo::Pose& pose = array.pose();
      const geo::Vec3 world = pose.forward() * local.x +
                              pose.left() * local.y + pose.up() * local.z;
      beams_.push_back(apply_subarray(array.steer(world), array.geometry(),
                                      config.subarray_ny, config.subarray_nz));
    }
  }
}

std::size_t Codebook::best_beam_toward(const PhasedArray& array,
                                       const geo::Vec3& target) const {
  const geo::Vec3 dir = target - array.pose().position;
  std::size_t best = 0;
  double best_gain = -1.0;
  for (std::size_t i = 0; i < beams_.size(); ++i) {
    const double g = array.gain(beams_[i], dir);
    if (g > best_gain) {
      best_gain = g;
      best = i;
    }
  }
  return best;
}

std::size_t Codebook::best_common_beam(
    const PhasedArray& array, std::span<const geo::Vec3> targets) const {
  std::size_t best = 0;
  double best_min = -1.0;
  for (std::size_t i = 0; i < beams_.size(); ++i) {
    double min_gain = std::numeric_limits<double>::infinity();
    for (const geo::Vec3& t : targets) {
      const double g = array.gain(beams_[i], t - array.pose().position);
      min_gain = std::min(min_gain, g);
    }
    if (targets.empty()) min_gain = 0.0;
    if (min_gain > best_min) {
      best_min = min_gain;
      best = i;
    }
  }
  return best;
}

}  // namespace volcast::mmwave
