#include "mmwave/sls.h"

namespace volcast::mmwave {

SlsProcedure::SlsProcedure(SlsTiming timing) : timing_(timing) {}

double SlsProcedure::on_air_s(std::size_t sector_count) const noexcept {
  // Initiator TXSS + responder TXSS (same sector count on both sides is
  // the common symmetric configuration) + feedback.
  const double one_side =
      static_cast<double>(sector_count) *
      (timing_.ssw_frame_s + timing_.sbifs_s);
  return 2.0 * one_side + timing_.feedback_s;
}

double SlsProcedure::outage_s(std::size_t sector_count) const noexcept {
  return on_air_s(sector_count) * timing_.mac_stretch;
}

}  // namespace volcast::mmwave
