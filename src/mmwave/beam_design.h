// Customized multi-lobe beam synthesis (paper Section 4.2).
//
// The paper's rule for a two-user multicast beam combines the per-user
// steering AWVs weighted by the *other* user's RSS:
//     w = (Delta_2 * w_1 + Delta_1 * w_2) / (Delta_1 + Delta_2)
// so the weaker user receives the larger share of the transmit power, and
// the total power constraint is restored by re-normalizing the combined
// AWV. Only per-user RSS is needed — no CSI — which is what makes the
// scheme deployable on COTS devices (paper Section 4.2).
//
// We generalize to k users with weights proportional to the inverse of each
// user's linear RSS (reduces exactly to the paper's rule at k = 2).
#pragma once

#include <span>

#include "mmwave/phased_array.h"

namespace volcast::mmwave {

/// Combines per-user AWVs into one multi-lobe AWV using the paper's
/// RSS-weighted rule. `rss_mw` are linear received powers (milliwatts)
/// measured per user with its individual beam. Returns a power-normalized
/// AWV. Throws std::invalid_argument on size mismatch, empty input, or a
/// non-positive RSS.
[[nodiscard]] Awv combine_awvs(std::span<const Awv> beams,
                               std::span<const double> rss_mw);

/// Equal-weight combination (the ablation baseline: what you get without
/// the RSS balancing term).
[[nodiscard]] Awv combine_awvs_equal(std::span<const Awv> beams);

/// Beam-probing verdict (paper Section 5: multi-lobe beams can interfere
/// via reflections and must be probed before use).
struct BeamProbe {
  double min_user_rss_dbm = 0.0;    // worst group member under the beam
  double spill_rss_dbm = -200.0;    // strongest RSS leaked to a non-member
  bool acceptable = true;           // min-user improved and spill bounded
};

}  // namespace volcast::mmwave
