#include "mmwave/phased_array.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/units.h"

namespace volcast::mmwave {

Awv power_normalized(Awv w) {
  double power = 0.0;
  for (const Complex& c : w) power += std::norm(c);
  if (power <= 0.0) return w;
  const double scale = 1.0 / std::sqrt(power);
  for (Complex& c : w) c *= scale;
  return w;
}

PhasedArray::PhasedArray(const ArrayGeometry& geometry, const geo::Pose& pose,
                         double carrier_hz)
    : geometry_(geometry),
      pose_(pose),
      wavelength_m_(wavelength_m(carrier_hz)) {
  if (geometry.element_count() == 0)
    throw std::invalid_argument("PhasedArray: empty geometry");
  if (carrier_hz <= 0.0)
    throw std::invalid_argument("PhasedArray: non-positive carrier");
  const double d = geometry.spacing_wavelengths * wavelength_m_;
  elements_local_.reserve(geometry.element_count());
  const double y0 = -0.5 * d * (geometry.ny - 1);
  const double z0 = -0.5 * d * (geometry.nz - 1);
  for (unsigned iz = 0; iz < geometry.nz; ++iz)
    for (unsigned iy = 0; iy < geometry.ny; ++iy)
      elements_local_.push_back(
          {0.0, y0 + d * static_cast<double>(iy),
           z0 + d * static_cast<double>(iz)});
}

geo::Vec3 PhasedArray::to_local(const geo::Vec3& dir_world) const noexcept {
  const geo::Vec3 u = dir_world.normalized();
  return {u.dot(pose_.forward()), u.dot(pose_.left()), u.dot(pose_.up())};
}

Awv PhasedArray::steer(const geo::Vec3& dir_world) const {
  const geo::Vec3 local = to_local(dir_world);
  const double k = 2.0 * std::numbers::pi / wavelength_m_;
  Awv w;
  w.reserve(elements_local_.size());
  for (const geo::Vec3& e : elements_local_) {
    const double phase = k * e.dot(local);
    // Conjugate steering: cancel the per-element propagation phase.
    w.emplace_back(std::cos(phase), -std::sin(phase));
  }
  return power_normalized(std::move(w));
}

Awv PhasedArray::steer_at(const geo::Vec3& target_world) const {
  return steer(target_world - pose_.position);
}

double PhasedArray::element_gain(double cos_theta) noexcept {
  constexpr double kPeak = 4.0;  // ~6 dBi
  if (cos_theta <= 0.0) return kPeak * 1e-3;  // backplane isolation
  return kPeak * cos_theta * cos_theta;
}

double PhasedArray::gain(const Awv& w, const geo::Vec3& dir_world) const {
  if (w.size() != elements_local_.size()) return 0.0;
  const geo::Vec3 local = to_local(dir_world);
  const double k = 2.0 * std::numbers::pi / wavelength_m_;
  Complex af{0.0, 0.0};
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double phase = k * elements_local_[i].dot(local);
    af += w[i] * Complex{std::cos(phase), std::sin(phase)};
  }
  return std::norm(af) * element_gain(local.x);
}

double PhasedArray::gain_dbi(const Awv& w, const geo::Vec3& dir_world) const {
  return ratio_to_db(std::max(gain(w, dir_world), 1e-12));
}

}  // namespace volcast::mmwave
