// MAC-layer transmission accounting for mixed multicast/unicast delivery of
// one volumetric frame (paper Section 4.2).
//
// The central quantity is the paper's group transmit-time estimate
//   T_m(k) = S_m(k) / r_m  +  sum_i (S_i - S_m(k)) / r_i
// where S_m is the size of the group's overlapped cells, r_m the multicast
// rate (bounded by the lowest common MCS), and S_i / r_i each member's
// total requested size and unicast rate. A grouping is feasible when
// T_m(k) <= 1/F for the target frame rate F.
#pragma once

#include <cstddef>
#include <vector>

namespace volcast::obs {
class MetricRegistry;
}  // namespace volcast::obs

namespace volcast::mac {

/// One user's traffic demand and link quality within a frame interval.
struct UserDemand {
  std::size_t user = 0;
  double total_bits = 0.0;         // S_i: everything the user needs
  double overlap_bits = 0.0;       // portion shared with the user's group
  double unicast_rate_mbps = 0.0;  // r_i under the user's own best beam
};

/// Fixed per-burst MAC costs: PHY preamble + MAC headers + block-ack per
/// transmission burst, and the AWV reload when the AP switches beams
/// between bursts. Small individually, they matter once a frame interval
/// carries one multicast burst plus a residual burst per member.
struct MacOverheads {
  double per_transmission_s = 80e-6;
  double per_beam_switch_s = 10e-6;

  [[nodiscard]] double per_burst_s() const noexcept {
    return per_transmission_s + per_beam_switch_s;
  }
};

/// A multicast group's planned transmission.
struct GroupPlan {
  std::vector<UserDemand> members;
  double multicast_rate_mbps = 0.0;  // r_m: lowest common MCS under the beam
  double group_overlap_bits = 0.0;   // S_m(k)

  /// The paper's T_m(k). Degenerates to pure unicast time when the group
  /// has one member or no multicast rate. `overheads` adds the per-burst
  /// MAC costs (default: ideal MAC, pure transmission time).
  [[nodiscard]] double transmit_time_s(
      const MacOverheads& overheads = {0.0, 0.0}) const noexcept;

  /// Pure-unicast time for the same members (the baseline T_m compares to).
  [[nodiscard]] double unicast_time_s(
      const MacOverheads& overheads = {0.0, 0.0}) const noexcept;

  /// Airtime saved by multicasting (unicast - multicast, >= 0 when the
  /// grouping pays off; negative when multicast is a net loss).
  [[nodiscard]] double airtime_saving_s() const noexcept {
    return unicast_time_s() - transmit_time_s();
  }
};

/// A full frame-interval schedule: disjoint groups (singletons = unicast).
struct FrameSchedule {
  std::vector<GroupPlan> groups;

  /// Sequential TDMA airtime of the whole schedule.
  [[nodiscard]] double airtime_s(
      const MacOverheads& overheads = {0.0, 0.0}) const noexcept;

  /// True when the schedule fits a frame interval at `fps`.
  [[nodiscard]] bool feasible(double fps) const noexcept;

  /// The frame rate this schedule can sustain (1 / airtime, capped).
  [[nodiscard]] double sustainable_fps(double cap_fps = 30.0) const noexcept;
};

/// Telemetry hook: records one frame schedule into `metrics` — group /
/// multicast-group / scheduled-user counters, a group-size histogram, and
/// airtime + airtime-saving histograms (milliseconds). Serial-only (it
/// creates metrics on first use); call once per AP per tick.
void observe_schedule(const FrameSchedule& schedule,
                      const MacOverheads& overheads,
                      obs::MetricRegistry& metrics);

}  // namespace volcast::mac
