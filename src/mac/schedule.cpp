#include "mac/schedule.h"

#include <algorithm>

#include "common/units.h"

namespace volcast::mac {

double GroupPlan::transmit_time_s(const MacOverheads& overheads) const
    noexcept {
  if (members.empty()) return 0.0;
  if (members.size() == 1 || multicast_rate_mbps <= 0.0 ||
      group_overlap_bits <= 0.0)
    return unicast_time_s(overheads);
  // One multicast burst plus one residual unicast burst per member with a
  // residual to deliver.
  double t = tx_time_s(group_overlap_bits, multicast_rate_mbps) +
             overheads.per_burst_s();
  for (const UserDemand& m : members) {
    const double residual = std::max(m.total_bits - group_overlap_bits, 0.0);
    if (m.unicast_rate_mbps > 0.0) {
      if (residual > 0.0)
        t += tx_time_s(residual, m.unicast_rate_mbps) +
             overheads.per_burst_s();
    } else if (residual > 0.0) {
      return 1e9;  // undeliverable residual: infeasible plan
    }
  }
  return t;
}

double GroupPlan::unicast_time_s(const MacOverheads& overheads) const
    noexcept {
  double t = 0.0;
  for (const UserDemand& m : members) {
    if (m.unicast_rate_mbps > 0.0) {
      t += tx_time_s(m.total_bits, m.unicast_rate_mbps) +
           overheads.per_burst_s();
    } else if (m.total_bits > 0.0) {
      return 1e9;
    }
  }
  return t;
}

double FrameSchedule::airtime_s(const MacOverheads& overheads) const
    noexcept {
  double t = 0.0;
  for (const GroupPlan& g : groups) t += g.transmit_time_s(overheads);
  return t;
}

bool FrameSchedule::feasible(double fps) const noexcept {
  return fps > 0.0 && airtime_s() <= 1.0 / fps;
}

double FrameSchedule::sustainable_fps(double cap_fps) const noexcept {
  const double t = airtime_s();
  if (t <= 0.0) return cap_fps;
  return std::min(cap_fps, 1.0 / t);
}

}  // namespace volcast::mac
