#include "mac/schedule.h"

#include <algorithm>
#include <array>

#include "common/units.h"
#include "obs/metrics.h"

namespace volcast::mac {

double GroupPlan::transmit_time_s(const MacOverheads& overheads) const
    noexcept {
  if (members.empty()) return 0.0;
  if (members.size() == 1 || multicast_rate_mbps <= 0.0 ||
      group_overlap_bits <= 0.0)
    return unicast_time_s(overheads);
  // One multicast burst plus one residual unicast burst per member with a
  // residual to deliver.
  double t = tx_time_s(group_overlap_bits, multicast_rate_mbps) +
             overheads.per_burst_s();
  for (const UserDemand& m : members) {
    const double residual = std::max(m.total_bits - group_overlap_bits, 0.0);
    if (m.unicast_rate_mbps > 0.0) {
      if (residual > 0.0)
        t += tx_time_s(residual, m.unicast_rate_mbps) +
             overheads.per_burst_s();
    } else if (residual > 0.0) {
      return 1e9;  // undeliverable residual: infeasible plan
    }
  }
  return t;
}

double GroupPlan::unicast_time_s(const MacOverheads& overheads) const
    noexcept {
  double t = 0.0;
  for (const UserDemand& m : members) {
    if (m.unicast_rate_mbps > 0.0) {
      t += tx_time_s(m.total_bits, m.unicast_rate_mbps) +
           overheads.per_burst_s();
    } else if (m.total_bits > 0.0) {
      return 1e9;
    }
  }
  return t;
}

double FrameSchedule::airtime_s(const MacOverheads& overheads) const
    noexcept {
  double t = 0.0;
  for (const GroupPlan& g : groups) t += g.transmit_time_s(overheads);
  return t;
}

bool FrameSchedule::feasible(double fps) const noexcept {
  return fps > 0.0 && airtime_s() <= 1.0 / fps;
}

double FrameSchedule::sustainable_fps(double cap_fps) const noexcept {
  const double t = airtime_s();
  if (t <= 0.0) return cap_fps;
  return std::min(cap_fps, 1.0 / t);
}

void observe_schedule(const FrameSchedule& schedule,
                      const MacOverheads& overheads,
                      obs::MetricRegistry& metrics) {
  // One frame interval at 30 FPS is 33.3 ms: the buckets bracket the
  // feasibility boundary T_m(k) <= 1/F the grouping optimizes against.
  static constexpr std::array<double, 7> kAirtimeMsBounds = {
      0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 33.0};
  static constexpr std::array<double, 6> kGroupSizeBounds = {1.0, 2.0, 3.0,
                                                             4.0, 6.0, 8.0};
  obs::Counter& groups = metrics.counter("mac.groups");
  obs::Counter& multicast_groups = metrics.counter("mac.multicast_groups");
  obs::Counter& scheduled_users = metrics.counter("mac.scheduled_users");
  obs::Histogram& group_size =
      metrics.histogram("mac.group_size", kGroupSizeBounds);
  obs::Histogram& airtime_ms =
      metrics.histogram("mac.airtime_ms", kAirtimeMsBounds);
  obs::Histogram& saving_ms =
      metrics.histogram("mac.airtime_saving_ms", kAirtimeMsBounds);
  for (const GroupPlan& plan : schedule.groups) {
    groups.add();
    scheduled_users.add(plan.members.size());
    group_size.observe(static_cast<double>(plan.members.size()));
    airtime_ms.observe(plan.transmit_time_s(overheads) * 1e3);
    if (plan.members.size() > 1 && plan.multicast_rate_mbps > 0.0 &&
        plan.group_overlap_bits > 0.0) {
      multicast_groups.add();
      saving_ms.observe(std::max(plan.airtime_saving_s(), 0.0) * 1e3);
    }
  }
}

}  // namespace volcast::mac
