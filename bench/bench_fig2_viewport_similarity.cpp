// Reproduces Fig. 2: inter-user viewport similarity.
//  (a) IoU over time for two user pairs (50 cm cells, 300 frames),
//  (b) CDF of IoU for HM(2)-Seg(100cm), HM(2)-Seg(50cm), PH(2)-Seg(50cm)
//      and HM(3)-Seg(50cm) across the whole 32-user study.
#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "pointcloud/video_generator.h"
#include "trace/user_study.h"
#include "viewport/similarity.h"

using namespace volcast;

namespace {

struct Fig2Setup {
  vv::VideoGenerator generator;
  trace::UserStudy study;

  Fig2Setup()
      : generator([] {
          vv::VideoConfig vc;
          vc.points_per_frame = 100'000;  // occupancy-faithful, fast
          vc.frame_count = 300;
          return vc;
        }()) {}
};

std::vector<view::VisibilityMap> frame_maps(
    const Fig2Setup& s, const vv::CellGrid& grid, std::size_t frame,
    const std::vector<std::size_t>& users) {
  const auto occupancy = grid.occupancy(s.generator.frame(frame));
  std::vector<view::VisibilityMap> maps;
  maps.reserve(users.size());
  for (std::size_t u : users) {
    view::VisibilityOptions options;
    options.intrinsics = view::device_intrinsics(s.study.device_of(u));
    maps.push_back(view::compute_visibility(
        grid, occupancy, s.study.trace(u).poses[frame], options));
  }
  return maps;
}

EmpiricalDistribution iou_distribution(const Fig2Setup& s,
                                       const vv::CellGrid& grid,
                                       trace::DeviceType device,
                                       std::size_t group_size) {
  const auto users = s.study.users_of(device);
  EmpiricalDistribution dist;
  for (std::size_t f = 0; f < 300; f += 5) {
    const auto maps = frame_maps(s, grid, f, users);
    const std::size_t n = std::min<std::size_t>(maps.size(), 10);
    if (group_size == 2) {
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j)
          dist.add(view::iou(maps[i], maps[j]));
    } else {
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j)
          for (std::size_t k = j + 1; k < n; ++k) {
            const view::VisibilityMap group[] = {maps[i], maps[j], maps[k]};
            dist.add(view::group_iou(group));
          }
    }
  }
  return dist;
}

}  // namespace

int main() {
  std::printf("=== Fig. 2a: viewport similarity (IoU) over time, "
              "50 cm cells ===\n");
  Fig2Setup s;
  const vv::CellGrid grid50(s.generator.content_bounds(), 0.50);
  const vv::CellGrid grid100(s.generator.content_bounds(), 1.00);

  const auto hm = s.study.users_of(trace::DeviceType::kHeadset);
  const std::vector<std::size_t> pair_a{hm[0], hm[1]};
  const std::vector<std::size_t> pair_b{hm[3], hm[9]};
  std::printf("frame  IoU(user0,user1)  IoU(user3,user9)\n");
  for (std::size_t f = 0; f < 300; f += 15) {
    const auto maps_a = frame_maps(s, grid50, f, pair_a);
    const auto maps_b = frame_maps(s, grid50, f, pair_b);
    std::printf("%5zu  %17.2f  %17.2f\n", f,
                view::iou(maps_a[0], maps_a[1]),
                view::iou(maps_b[0], maps_b[1]));
  }

  std::printf("\n=== Fig. 2b: CDF of IoU across the 32-user study ===\n");
  struct Curve {
    const char* label;
    EmpiricalDistribution dist;
  };
  Curve curves[] = {
      {"HM(2)-Seg(100cm)",
       iou_distribution(s, grid100, trace::DeviceType::kHeadset, 2)},
      {"HM(2)-Seg(50cm) ",
       iou_distribution(s, grid50, trace::DeviceType::kHeadset, 2)},
      {"PH(2)-Seg(50cm) ",
       iou_distribution(s, grid50, trace::DeviceType::kSmartphone, 2)},
      {"HM(3)-Seg(50cm) ",
       iou_distribution(s, grid50, trace::DeviceType::kHeadset, 3)},
  };
  std::printf("curve              p10   p25   p50   p75   mean\n");
  for (const Curve& c : curves) {
    std::printf("%s  %.2f  %.2f  %.2f  %.2f  %.2f\n", c.label,
                c.dist.percentile(10), c.dist.percentile(25), c.dist.median(),
                c.dist.percentile(75), c.dist.mean());
  }

  std::printf("\nexpected ordering (paper): PH(2) > HM(2)-100cm > "
              "HM(2)-50cm > HM(3)-50cm\n");
  const bool ordering_holds =
      curves[2].dist.mean() > curves[0].dist.mean() &&
      curves[0].dist.mean() > curves[1].dist.mean() &&
      curves[1].dist.mean() > curves[3].dist.mean();
  std::printf("ordering holds: %s\n", ordering_holds ? "YES" : "NO");

  std::printf("\nfull CDF, HM(2)-Seg(50cm)  (x = IoU, y = CDF):\n%s",
              curves[1].dist.format_cdf(12).c_str());
  return 0;
}
