// Reproduces Fig. 3e: normalized throughput of unicast, multicast with
// default beams, and multicast with customized beams, for two users
// watching the same volumetric video.
//
// Throughput of a scheme = overlapped + residual bits deliverable in a
// frame interval, computed with the paper's T_m(k) group transmit-time
// model over real visibility overlap from the user-study traces and
// RSS -> MCS rates from the channel simulator. Values are normalized to the
// customized-beam scheme's mean (the tallest bar in the paper).
//
// Expected shape: multicast with default beams sometimes *loses* to unicast
// (unbalanced RSS drags the common MCS down); customized beams win clearly.
#include <cstdio>

#include "common/stats.h"
#include "common/units.h"
#include "core/testbed.h"
#include "mac/schedule.h"
#include "mmwave/beam_design.h"
#include "mmwave/link.h"
#include "pointcloud/video_generator.h"
#include "pointcloud/video_store.h"
#include "trace/user_study.h"
#include "viewport/similarity.h"

using namespace volcast;

int main() {
  std::printf("=== Fig. 3e: normalized throughput, 2-user delivery ===\n");
  core::Testbed testbed;

  // Content and visibility setup (content-local coordinates).
  vv::VideoConfig vc;
  vc.points_per_frame = 550'000;
  vc.frame_count = 30;
  const vv::VideoGenerator generator(vc);
  const vv::CellGrid grid(generator.content_bounds(), 0.25);
  vv::VideoStoreConfig sc;
  sc.sample_frames = 2;
  const vv::VideoStore store(generator, grid, sc);
  const std::size_t tier = store.tier_count() - 1;  // 550K quality

  const trace::UserStudy study;  // content-local positions

  auto room = [&](const geo::Vec3& p) { return testbed.to_room(p); };
  auto rate_for = [&](const mmwave::Awv& beam, const geo::Vec3& pos) {
    return testbed.mcs().goodput_mbps(
        mmwave::rss_dbm(testbed.ap(), beam, testbed.channel(), room(pos), {},
                        testbed.budget()));
  };
  auto visible_bits = [&](const view::VisibilityMap& map, std::size_t frame) {
    double bits = 0.0;
    for (vv::CellId c = 0; c < map.cell_count(); ++c)
      if (map.lod(c) > 0.0)
        bits += byte_bits(static_cast<double>(store.cell_bytes(frame, tier, c))) *
                map.lod(c);
    return bits;
  };

  RunningStats unicast_tput, stock_tput, custom_tput;
  int stock_loses_to_unicast = 0;
  int samples = 0;

  const auto hm_users = study.users_of(trace::DeviceType::kHeadset);
  for (std::size_t f = 0; f < 30; f += 2) {
    const auto occupancy_counts = [&] {
      std::vector<std::uint32_t> occ(grid.cell_count());
      for (vv::CellId c = 0; c < grid.cell_count(); ++c)
        occ[c] = store.cell_points(f, tier, c);
      return occ;
    }();
    for (std::size_t i = 0; i + 1 < hm_users.size(); i += 2) {
      const auto& pose1 = study.trace(hm_users[i]).poses[f * 7 % 300];
      const auto& pose2 = study.trace(hm_users[i + 1]).poses[f * 7 % 300];
      view::VisibilityOptions options;
      options.intrinsics =
          view::device_intrinsics(trace::DeviceType::kHeadset);
      const auto map1 =
          view::compute_visibility(grid, occupancy_counts, pose1, options);
      const auto map2 =
          view::compute_visibility(grid, occupancy_counts, pose2, options);
      const view::VisibilityMap both[] = {map1, map2};
      const double s1 = visible_bits(map1, f);
      const double s2 = visible_bits(map2, f);
      const double sm = visible_bits(view::intersection(both), f);
      if (s1 <= 0.0 || s2 <= 0.0) continue;

      // Rates.
      const mmwave::Awv b1 = testbed.ap().steer_at(room(pose1.position));
      const mmwave::Awv b2 = testbed.ap().steer_at(room(pose2.position));
      const double r1 = rate_for(b1, pose1.position);
      const double r2 = rate_for(b2, pose2.position);
      if (r1 <= 0.0 || r2 <= 0.0) continue;

      const geo::Vec3 group[] = {room(pose1.position), room(pose2.position)};
      const auto stock_beam = testbed.codebook().beam(
          testbed.codebook().best_common_beam(testbed.ap(), group));
      const double stock_rate =
          std::min(rate_for(stock_beam, pose1.position),
                   rate_for(stock_beam, pose2.position));

      const double rss1 = mmwave::rss_dbm(testbed.ap(), b1, testbed.channel(),
                                          room(pose1.position), {},
                                          testbed.budget());
      const double rss2 = mmwave::rss_dbm(testbed.ap(), b2, testbed.channel(),
                                          room(pose2.position), {},
                                          testbed.budget());
      const mmwave::Awv beams[] = {b1, b2};
      const double rss_mw[] = {dbm_to_mw(rss1), dbm_to_mw(rss2)};
      const mmwave::Awv custom_beam = mmwave::combine_awvs(beams, rss_mw);
      const double custom_rate =
          std::min(rate_for(custom_beam, pose1.position),
                   rate_for(custom_beam, pose2.position));

      // Scheme airtime via the T_m(k) model; throughput = bits / airtime.
      auto scheme_tput = [&](double multicast_rate) {
        mac::GroupPlan plan;
        plan.members = {{0, s1, sm, r1}, {1, s2, sm, r2}};
        plan.group_overlap_bits = multicast_rate > 0.0 ? sm : 0.0;
        plan.multicast_rate_mbps = multicast_rate;
        const double airtime = plan.transmit_time_s();
        return airtime > 0.0 ? bits_to_megabits((s1 + s2) / airtime) : 0.0;
      };
      const double uni = scheme_tput(0.0);
      const double stock = scheme_tput(stock_rate);
      const double custom = scheme_tput(custom_rate);
      unicast_tput.add(uni);
      stock_tput.add(stock);
      custom_tput.add(custom);
      if (stock < uni) ++stock_loses_to_unicast;
      ++samples;
    }
  }

  const double norm = custom_tput.mean();
  std::printf("\nscheme                         normalized throughput\n");
  std::printf("----------------------------------------------------\n");
  std::printf("unicast                        %.2f\n",
              unicast_tput.mean() / norm);
  std::printf("multicast (default beams)      %.2f\n",
              stock_tput.mean() / norm);
  std::printf("multicast (customized beams)   1.00\n");
  std::printf("\nabsolute means: unicast=%.0f, default=%.0f, custom=%.0f "
              "Mbps effective\n",
              unicast_tput.mean(), stock_tput.mean(), custom_tput.mean());
  std::printf("default-beam multicast loses to unicast in %.0f%% of pairs "
              "(paper: \"may in fact sometimes reduce the data rate\")\n",
              100.0 * stock_loses_to_unicast / std::max(samples, 1));
  return 0;
}
