// Reproduces Table 1: "Performance of multi-user volumetric video streaming
// with vanilla and ViVo systems" — maximum achievable FPS per user count
// (802.11ac 1-3, 802.11ad 1-7) and per quality tier (330K/430K/550K points).
//
// Pipeline: the synthetic soldier video is encoded per cell through the real
// codec to obtain each tier's bitrate; the vanilla system fetches whole
// frames; the multi-user ViVo system fetches only the cells its visibility
// pipeline (viewport + occlusion + distance) marks, measured against the
// 32-user study traces. Per-user goodput comes from the capacity model
// calibrated to the paper's own testbed measurements.
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.h"
#include "common/units.h"
#include "phy80211/capacity.h"
#include "pointcloud/cell_grid.h"
#include "pointcloud/video_store.h"
#include "trace/user_study.h"
#include "viewport/visibility.h"

using namespace volcast;

namespace {

/// Mean fraction of the stream a ViVo client actually fetches, measured
/// over the user-study traces with the full visibility pipeline.
double measure_vivo_fetch_fraction(const vv::VideoGenerator& generator,
                                   const vv::CellGrid& grid,
                                   const vv::VideoStore& store,
                                   std::size_t tier) {
  const trace::UserStudy study;
  view::VisibilityOptions options;
  double fetched = 0.0;
  double full = 0.0;
  const std::size_t frame_count = store.frame_count();
  for (std::size_t f = 0; f < frame_count; f += 3) {
    std::vector<std::uint32_t> occupancy(grid.cell_count());
    for (vv::CellId c = 0; c < grid.cell_count(); ++c)
      occupancy[c] = store.cell_points(f, tier, c);
    const double frame_bytes = static_cast<double>(store.frame_bytes(f, tier));
    for (std::size_t u = 0; u < study.user_count(); u += 4) {
      options.intrinsics = view::device_intrinsics(study.device_of(u));
      const auto map = view::compute_visibility(
          grid, occupancy, study.trace(u).poses[f % 300], options);
      double user_bytes = 0.0;
      for (vv::CellId c = 0; c < grid.cell_count(); ++c) {
        if (map.lod(c) > 0.0)
          user_bytes +=
              static_cast<double>(store.cell_bytes(f, tier, c)) * map.lod(c);
      }
      fetched += user_bytes;
      full += frame_bytes;
    }
  }
  return full > 0.0 ? fetched / full : 1.0;
}

}  // namespace

int main() {
  std::printf("=== Table 1: multi-user volumetric streaming, vanilla vs "
              "multi-user ViVo ===\n");
  std::printf("(max achievable FPS, capped at 30 by the decode ceiling)\n\n");

  // Full-scale content: the paper's 550K master with the 330K/430K tiers.
  vv::VideoConfig vc;
  vc.points_per_frame = 550'000;
  vc.frame_count = 30;  // one looped second is enough for stable bitrates
  const vv::VideoGenerator generator(vc);
  const vv::CellGrid grid(generator.content_bounds(), 0.25);
  vv::VideoStoreConfig sc;
  sc.sample_frames = 2;
  const vv::VideoStore store(generator, grid, sc);

  std::vector<double> bitrate(store.tier_count());
  std::vector<double> vivo_fraction(store.tier_count());
  for (std::size_t q = 0; q < store.tier_count(); ++q) {
    bitrate[q] = store.tier_bitrate_mbps(q);
    vivo_fraction[q] =
        measure_vivo_fetch_fraction(generator, grid, store, q);
  }

  std::printf("encoded tier bitrates (Mbps):");
  for (std::size_t q = 0; q < store.tier_count(); ++q)
    std::printf(" %s=%.0f", store.tiers()[q].name.c_str(), bitrate[q]);
  std::printf("   (paper: 235-364 Mbps after Draco)\n");
  std::printf("ViVo mean fetch fraction:");
  for (std::size_t q = 0; q < store.tier_count(); ++q)
    std::printf(" %s=%.2f", store.tiers()[q].name.c_str(), vivo_fraction[q]);
  std::printf("   (paper-implied: ~0.61-0.70)\n\n");

  AsciiTable table;
  table.header({"net", "users", "per-user Mbps", "vanilla 330K", "430K",
                "550K", "ViVo 330K", "430K", "550K"});
  struct NetSpec {
    phy::WlanStandard standard;
    std::size_t max_users;
  };
  const NetSpec nets[] = {{phy::WlanStandard::k80211ac, 3},
                          {phy::WlanStandard::k80211ad, 7}};
  for (const auto& net : nets) {
    for (std::size_t users = 1; users <= net.max_users; ++users) {
      const double rate =
          phy::CapacityModel::per_user_goodput_mbps(net.standard, users);
      std::vector<std::string> row{
          users == 1 ? to_string(net.standard) : "",
          std::to_string(users), AsciiTable::num(rate, 0)};
      for (std::size_t q = 0; q < store.tier_count(); ++q)
        row.push_back(
            AsciiTable::num(phy::max_achievable_fps(rate, bitrate[q]), 1));
      for (std::size_t q = 0; q < store.tier_count(); ++q)
        row.push_back(AsciiTable::num(
            phy::max_achievable_fps(rate, bitrate[q] * vivo_fraction[q]), 1));
      table.row(std::move(row));
    }
  }
  std::printf("%s\n", table.render().c_str());

  // Headline numbers the paper calls out in the text.
  auto users_at_30 = [&](phy::WlanStandard std_, bool vivo,
                         std::size_t tier) {
    std::size_t n = 0;
    for (std::size_t users = 1; users <= 12; ++users) {
      const double rate =
          phy::CapacityModel::per_user_goodput_mbps(std_, users);
      const double eff_bitrate =
          vivo ? bitrate[tier] * vivo_fraction[tier] : bitrate[tier];
      if (phy::max_achievable_fps(rate, eff_bitrate) >= 29.5) n = users;
    }
    return n;
  };
  std::printf("users sustained at 30 FPS (550K): 802.11ac vanilla=%zu "
              "ViVo=%zu | 802.11ad vanilla=%zu ViVo=%zu\n",
              users_at_30(phy::WlanStandard::k80211ac, false, 2),
              users_at_30(phy::WlanStandard::k80211ac, true, 2),
              users_at_30(phy::WlanStandard::k80211ad, false, 2),
              users_at_30(phy::WlanStandard::k80211ad, true, 2));
  std::printf("(paper: ad vanilla=3, ad ViVo=4 at 550K)\n");
  return 0;
}
