// Micro-benchmarks (google-benchmark) for the library's hot paths: codec
// encode/decode, frustum culling, visibility computation, beam gain
// evaluation, AWV synthesis and the grouping search. These are the budgets
// that decide whether the cross-layer scheduler can run per frame interval
// (33 ms at 30 FPS) on an edge server.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/units.h"
#include "core/grouping.h"
#include "core/testbed.h"
#include "mmwave/beam_design.h"
#include "mmwave/link.h"
#include "pointcloud/codec.h"
#include "pointcloud/octree_codec.h"
#include "pointcloud/video_generator.h"
#include "viewport/similarity.h"
#include "viewport/visibility.h"

using namespace volcast;

namespace {

const vv::VideoGenerator& generator() {
  static const vv::VideoGenerator gen([] {
    vv::VideoConfig vc;
    vc.points_per_frame = 100'000;
    vc.frame_count = 4;
    return vc;
  }());
  return gen;
}

void BM_CodecEncode(benchmark::State& state) {
  const auto cloud = vv::thin(generator().frame(0),
                              static_cast<double>(state.range(0)) / 100'000.0);
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto blob = vv::encode(cloud);
    bytes = blob.size();
    benchmark::DoNotOptimize(blob.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(cloud.size()));
  state.counters["bits/pt"] =
      8.0 * static_cast<double>(bytes) / static_cast<double>(cloud.size());
}
BENCHMARK(BM_CodecEncode)->Arg(10'000)->Arg(50'000)->Arg(100'000);

void BM_CodecDecode(benchmark::State& state) {
  const auto cloud = vv::thin(generator().frame(0),
                              static_cast<double>(state.range(0)) / 100'000.0);
  const auto blob = vv::encode(cloud);
  for (auto _ : state) {
    const auto back = vv::decode(blob);
    benchmark::DoNotOptimize(back.points().data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(cloud.size()));
}
BENCHMARK(BM_CodecDecode)->Arg(10'000)->Arg(100'000);


void BM_OctreeEncode(benchmark::State& state) {
  const auto cloud = vv::thin(generator().frame(0),
                              static_cast<double>(state.range(0)) / 100'000.0);
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto blob = vv::octree_encode(cloud);
    bytes = blob.size();
    benchmark::DoNotOptimize(blob.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(cloud.size()));
  state.counters["bits/pt"] =
      8.0 * static_cast<double>(bytes) / static_cast<double>(cloud.size());
}
BENCHMARK(BM_OctreeEncode)->Arg(10'000)->Arg(100'000);

void BM_OctreeDecode(benchmark::State& state) {
  const auto cloud = vv::thin(generator().frame(0),
                              static_cast<double>(state.range(0)) / 100'000.0);
  const auto blob = vv::octree_encode(cloud);
  for (auto _ : state) {
    const auto back = vv::octree_decode(blob);
    benchmark::DoNotOptimize(back.points().data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(cloud.size()));
}
BENCHMARK(BM_OctreeDecode)->Arg(100'000);

void BM_FrustumCulling(benchmark::State& state) {
  const vv::CellGrid grid(generator().content_bounds(), 0.25);
  const geo::Pose pose = geo::Pose::look_at({2.5, 0, 1.5}, {0, 0, 1.1});
  const geo::Frustum frustum(pose, {});
  for (auto _ : state) {
    std::size_t visible = 0;
    for (vv::CellId c = 0; c < grid.cell_count(); ++c)
      if (frustum.intersects(grid.cell_bounds(c))) ++visible;
    benchmark::DoNotOptimize(visible);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(grid.cell_count()));
}
BENCHMARK(BM_FrustumCulling);

void BM_ComputeVisibility(benchmark::State& state) {
  const vv::CellGrid grid(generator().content_bounds(),
                          state.range(0) / 100.0);
  const auto occupancy = grid.occupancy(generator().frame(0));
  const geo::Pose pose = geo::Pose::look_at({2.5, 0, 1.5}, {0, 0, 1.1});
  for (auto _ : state) {
    const auto map = view::compute_visibility(grid, occupancy, pose, {});
    benchmark::DoNotOptimize(map.visible_count());
  }
}
BENCHMARK(BM_ComputeVisibility)->Arg(25)->Arg(50)->Arg(100);

void BM_BeamGain(benchmark::State& state) {
  const core::Testbed testbed;
  const mmwave::Awv beam = testbed.ap().steer_at({4, 3, 1.5});
  Rng rng(1);
  for (auto _ : state) {
    const geo::Vec3 dir{rng.uniform(-1, 1), rng.uniform(0, 1),
                        rng.uniform(-0.5, 0)};
    benchmark::DoNotOptimize(testbed.ap().gain(beam, dir));
  }
}
BENCHMARK(BM_BeamGain);

void BM_RssEvaluation(benchmark::State& state) {
  const core::Testbed testbed;
  const mmwave::Awv beam = testbed.ap().steer_at({4, 3, 1.5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mmwave::rss_dbm(testbed.ap(), beam, testbed.channel(), {4, 3, 1.5},
                        {}, testbed.budget()));
  }
}
BENCHMARK(BM_RssEvaluation);

void BM_CombineAwvs(benchmark::State& state) {
  const core::Testbed testbed;
  std::vector<mmwave::Awv> beams;
  std::vector<double> rss;
  for (int i = 0; i < state.range(0); ++i) {
    beams.push_back(testbed.ap().steer_at({2.0 + i, 3, 1.5}));
    rss.push_back(1e-6);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mmwave::combine_awvs(beams, rss).data());
  }
}
BENCHMARK(BM_CombineAwvs)->Arg(2)->Arg(4);

void BM_GroupingGreedy(benchmark::State& state) {
  const auto users_count = static_cast<std::size_t>(state.range(0));
  std::vector<view::VisibilityMap> maps(users_count,
                                        view::VisibilityMap(64));
  Rng rng(5);
  for (auto& m : maps)
    for (vv::CellId c = 0; c < 64; ++c)
      if (rng.chance(0.4)) m.set(c);
  std::vector<core::UserState> users(users_count);
  for (std::size_t u = 0; u < users_count; ++u)
    users[u] = {u, &maps[u], 10e6, 1200.0};
  core::GrouperConfig config;
  const core::GroupRateFn rate = [](std::span<const std::size_t>) {
    return 900.0;
  };
  const core::OverlapBitsFn overlap = [&](std::span<const std::size_t> idx) {
    return 4e6 * static_cast<double>(idx.size());
  };
  for (auto _ : state) {
    const auto result = core::form_groups(users, config, rate, overlap);
    benchmark::DoNotOptimize(result.groups.size());
  }
}
BENCHMARK(BM_GroupingGreedy)->Arg(4)->Arg(7)->Arg(12);

void BM_GroupIou(benchmark::State& state) {
  view::VisibilityMap a(1024);
  view::VisibilityMap b(1024);
  Rng rng(9);
  for (vv::CellId c = 0; c < 1024; ++c) {
    if (rng.chance(0.3)) a.set(c);
    if (rng.chance(0.3)) b.set(c);
  }
  for (auto _ : state) benchmark::DoNotOptimize(view::iou(a, b));
}
BENCHMARK(BM_GroupIou);

}  // namespace

BENCHMARK_MAIN();
