# Benchmark harness: one binary per paper table/figure plus ablations and a
# google-benchmark micro suite. Included from the top-level CMakeLists (not
# add_subdirectory) so that build/bench/ contains only the binaries —
# `for b in build/bench/*; do $b; done` must run clean.
set(VOLCAST_BENCH_OUTPUT_DIR ${CMAKE_BINARY_DIR}/bench)

function(volcast_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE volcast::volcast)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR}/src)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${VOLCAST_BENCH_OUTPUT_DIR})
endfunction()

volcast_add_bench(bench_table1)
volcast_add_bench(bench_fig2_viewport_similarity)
volcast_add_bench(bench_fig3b_default_codebook)
volcast_add_bench(bench_fig3d_custom_beams)
volcast_add_bench(bench_fig3e_multicast_throughput)
volcast_add_bench(bench_ablation_beam_tracking)
volcast_add_bench(bench_ablation_prediction)
volcast_add_bench(bench_ablation_grouping)
volcast_add_bench(bench_ablation_rate_adaptation)
volcast_add_bench(bench_system_scaling)
volcast_add_bench(bench_fleet)
volcast_add_bench(bench_tile_cache)
volcast_add_bench(bench_transport)

volcast_add_bench(bench_micro)
target_link_libraries(bench_micro PRIVATE benchmark::benchmark)
