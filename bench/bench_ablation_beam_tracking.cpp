// Ablation for Section 4.1's beam-management claim: "we can use the
// predicted 6DoF motion information at the server to select the individual
// beams and combined beams for the AP without beam searching."
//
// Compares predictive beam tracking (steer from predicted positions, zero
// search cost) against the reactive 802.11ad baseline (ride the last swept
// sector; re-train via SLS when it goes stale, paying the 5-20 ms outage
// the paper quotes), across device mobility classes.
#include <cstdio>

#include "common/table.h"
#include "core/session.h"
#include "mmwave/sls.h"

using namespace volcast;
using namespace volcast::core;

namespace {

SessionConfig base_config(trace::DeviceType device, bool predictive) {
  SessionConfig c;
  c.user_count = 5;
  c.device = device;
  c.duration_s = 8.0;
  c.master_points = 90'000;
  c.video_frames = 30;
  c.start_tier = 1;
  c.predictive_beam_tracking = predictive;
  return c;
}

void run_row(AsciiTable& table, const char* label, const SessionConfig& c) {
  Session session(c);
  const auto r = session.run();
  table.row({label, AsciiTable::num(r.qoe.mean_fps(), 1),
             AsciiTable::num(r.qoe.total_stall_s(), 2),
             AsciiTable::num(r.qoe.mean_quality_tier(), 2),
             std::to_string(r.sls_sweeps),
             std::to_string(r.sls_outage_ticks)});
}

}  // namespace

int main() {
  std::printf("=== Ablation: predictive beam tracking vs reactive SLS "
              "(Sec 4.1) ===\n");
  const mmwave::SlsProcedure sls;
  std::printf("one full sector sweep over a 39-sector codebook costs "
              "%.1f ms of link outage (paper: 5-20 ms)\n\n",
              sls.outage_s(39) * 1e3);

  AsciiTable table;
  table.header({"configuration", "mean fps", "stall s", "tier", "sweeps",
                "sweep-outage ticks"});
  run_row(table, "PH (static)  reactive SLS",
          base_config(trace::DeviceType::kSmartphone, false));
  run_row(table, "PH (static)  predictive",
          base_config(trace::DeviceType::kSmartphone, true));
  run_row(table, "HM (roaming) reactive SLS",
          base_config(trace::DeviceType::kHeadset, false));
  run_row(table, "HM (roaming) predictive",
          base_config(trace::DeviceType::kHeadset, true));
  std::printf("%s\n", table.render().c_str());

  std::printf("staleness-threshold sweep (HM users, reactive mode): how\n"
              "aggressively re-sweeping trades outage for beam quality:\n");
  AsciiTable sweep;
  sweep.header({"resweep when stale by", "mean fps", "sweeps",
                "outage ticks", "tier"});
  for (double db : {2.0, 4.0, 6.0, 10.0, 20.0}) {
    SessionConfig c = base_config(trace::DeviceType::kHeadset, false);
    c.sls_staleness_db = db;
    Session session(c);
    const auto r = session.run();
    sweep.row({AsciiTable::num(db, 0) + " dB",
               AsciiTable::num(r.qoe.mean_fps(), 1),
               std::to_string(r.sls_sweeps),
               std::to_string(r.sls_outage_ticks),
               AsciiTable::num(r.qoe.mean_quality_tier(), 2)});
  }
  std::printf("%s\n", sweep.render().c_str());
  std::printf("expected shape: predictive tracking matches or beats every "
              "reactive setting with zero search outage; roaming headsets "
              "force the reactive baseline into frequent sweeps.\n");
  return 0;
}
