// Reproduces Fig. 3b: "The default beams cannot support an efficient
// multicast for multiple users" — CDF of the best common RSS achievable
// with the stock sector codebook for multicast groups of 1, 2 and 3 users,
// with user positions drawn from the viewport traces (Section 3).
//
// Paper anchors: -68 dBm (the ~384 Mbps MCS-1 threshold for 550K quality)
// is reachable at ~96.5% of positions for one user, ~79% for two, ~60% for
// three.
#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "core/testbed.h"
#include "mmwave/link.h"
#include "trace/user_study.h"

using namespace volcast;

int main() {
  std::printf("=== Fig. 3b: max common RSS under the default codebook ===\n");
  core::Testbed testbed;
  trace::UserStudyConfig study_config;
  study_config.content_center =
      testbed.config().content_floor + geo::Vec3{0, 0, 1.1};
  const trace::UserStudy study(study_config);

  Rng rng(2021);
  auto random_position = [&](std::size_t sample) {
    const std::size_t user = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(study.user_count()) - 1));
    const auto& poses = study.trace(user).poses;
    (void)sample;
    return poses[static_cast<std::size_t>(rng.uniform_int(
                     0, static_cast<std::int64_t>(poses.size()) - 1))]
        .position;
  };

  EmpiricalDistribution rss_1, rss_2, rss_3;
  mmwave::ShadowingProcess shadowing(testbed.config().shadowing_sigma_db,
                                     testbed.config().shadowing_coherence_s,
                                     7);
  constexpr int kTrials = 4000;
  for (int trial = 0; trial < kTrials; ++trial) {
    const geo::Vec3 u1 = random_position(0);
    const geo::Vec3 u2 = random_position(1);
    const geo::Vec3 u3 = random_position(2);
    const double s1 = shadowing.step(0.05);
    const double s2 = shadowing.step(0.05);
    const double s3 = shadowing.step(0.05);

    rss_1.add(mmwave::best_beam_rss_dbm(testbed.ap(), testbed.codebook(),
                                        testbed.channel(), u1, {},
                                        testbed.budget()) +
              s1);
    {
      const geo::Vec3 group[] = {u1, u2};
      const auto beam = testbed.codebook().beam(
          testbed.codebook().best_common_beam(testbed.ap(), group));
      rss_2.add(std::min(
          mmwave::rss_dbm(testbed.ap(), beam, testbed.channel(), u1, {},
                          testbed.budget()) +
              s1,
          mmwave::rss_dbm(testbed.ap(), beam, testbed.channel(), u2, {},
                          testbed.budget()) +
              s2));
    }
    {
      const geo::Vec3 group[] = {u1, u2, u3};
      const auto beam = testbed.codebook().beam(
          testbed.codebook().best_common_beam(testbed.ap(), group));
      rss_3.add(std::min(
          {mmwave::rss_dbm(testbed.ap(), beam, testbed.channel(), u1, {},
                           testbed.budget()) +
               s1,
           mmwave::rss_dbm(testbed.ap(), beam, testbed.channel(), u2, {},
                           testbed.budget()) +
               s2,
           mmwave::rss_dbm(testbed.ap(), beam, testbed.channel(), u3, {},
                           testbed.budget()) +
               s3}));
    }
  }

  auto report = [](const char* label, const EmpiricalDistribution& d,
                   double paper_coverage) {
    std::printf("%s: p5=%.1f median=%.1f p95=%.1f dBm | >= -68 dBm: %.1f%% "
                "(paper: %.1f%%)\n",
                label, d.percentile(5), d.median(), d.percentile(95),
                100.0 * (1.0 - d.cdf(-68.0)), paper_coverage);
  };
  report("1 user ", rss_1, 96.5);
  report("2 users", rss_2, 79.0);
  report("3 users", rss_3, 60.0);

  std::printf("\nCDF series (x = RSS dBm, y = CDF):\n");
  std::printf("-- 1 user --\n%s", rss_1.format_cdf(10).c_str());
  std::printf("-- 2 users --\n%s", rss_2.format_cdf(10).c_str());
  std::printf("-- 3 users --\n%s", rss_3.format_cdf(10).c_str());
  return 0;
}
