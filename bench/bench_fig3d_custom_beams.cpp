// Reproduces Fig. 3d: CDF of the common (worst-member) RSS for two-user
// multicast with the default codebook vs. the paper's customized multi-lobe
// beams, on the same user positions. Also reports the "max common RSS
// improvement" the paper circles, and the ablation the design section
// implies: RSS-weighted vs. equal-weight AWV combination.
#include <cstdio>

#include "common/stats.h"
#include "common/units.h"
#include "core/beam_designer.h"
#include "mmwave/beam_design.h"
#include "mmwave/link.h"
#include "trace/user_study.h"

using namespace volcast;

int main() {
  std::printf("=== Fig. 3d: default vs customized beams, 2-user multicast "
              "===\n");
  core::Testbed testbed;
  trace::UserStudyConfig study_config;
  study_config.content_center =
      testbed.config().content_floor + geo::Vec3{0, 0, 1.1};
  const trace::UserStudy study(study_config);

  Rng rng(31337);
  auto random_position = [&] {
    const auto user = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(study.user_count()) - 1));
    const auto& poses = study.trace(user).poses;
    return poses[static_cast<std::size_t>(rng.uniform_int(
                     0, static_cast<std::int64_t>(poses.size()) - 1))]
        .position;
  };

  auto min_rss = [&](const mmwave::Awv& beam, const geo::Vec3& u1,
                     const geo::Vec3& u2) {
    return std::min(mmwave::rss_dbm(testbed.ap(), beam, testbed.channel(), u1,
                                    {}, testbed.budget()),
                    mmwave::rss_dbm(testbed.ap(), beam, testbed.channel(), u2,
                                    {}, testbed.budget()));
  };

  EmpiricalDistribution stock_dist, custom_dist, equal_dist, improvement;
  constexpr int kTrials = 4000;
  for (int trial = 0; trial < kTrials; ++trial) {
    const geo::Vec3 u1 = random_position();
    const geo::Vec3 u2 = random_position();

    const geo::Vec3 group[] = {u1, u2};
    const auto stock_beam = testbed.codebook().beam(
        testbed.codebook().best_common_beam(testbed.ap(), group));
    const double stock = min_rss(stock_beam, u1, u2);

    const mmwave::Awv b1 = testbed.ap().steer_at(u1);
    const mmwave::Awv b2 = testbed.ap().steer_at(u2);
    const double r1 = mmwave::rss_dbm(testbed.ap(), b1, testbed.channel(), u1,
                                      {}, testbed.budget());
    const double r2 = mmwave::rss_dbm(testbed.ap(), b2, testbed.channel(), u2,
                                      {}, testbed.budget());
    const mmwave::Awv beams[] = {b1, b2};
    const double rss_mw[] = {dbm_to_mw(r1), dbm_to_mw(r2)};
    const double custom =
        min_rss(mmwave::combine_awvs(beams, rss_mw), u1, u2);
    const double equal = min_rss(mmwave::combine_awvs_equal(beams), u1, u2);

    stock_dist.add(stock);
    custom_dist.add(custom);
    equal_dist.add(equal);
    improvement.add(custom - stock);
  }

  auto report = [](const char* label, const EmpiricalDistribution& d) {
    std::printf("%s: p5=%.1f median=%.1f p95=%.1f dBm | >= -68 dBm: %.1f%%\n",
                label, d.percentile(5), d.median(), d.percentile(95),
                100.0 * (1.0 - d.cdf(-68.0)));
  };
  report("default codebook      ", stock_dist);
  report("custom two-lobe (RSS) ", custom_dist);
  report("custom two-lobe equal ", equal_dist);
  std::printf("\ncommon-RSS improvement custom-vs-default: median=%.1f dB, "
              "p90=%.1f dB, max=%.1f dB\n",
              improvement.median(), improvement.percentile(90),
              improvement.max());
  std::printf("(paper Fig. 3d: customized beams shift the whole CDF right; "
              "the circled region marks the max common-RSS improvement)\n");

  std::printf("\nCDF series (x = RSS dBm, y = CDF):\n");
  std::printf("-- default beam --\n%s", stock_dist.format_cdf(10).c_str());
  std::printf("-- customized beams --\n%s",
              custom_dist.format_cdf(10).c_str());
  return 0;
}
