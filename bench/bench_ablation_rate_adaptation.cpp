// Ablation for Section 4.3 (cross-layer video rate adaptation): compares
// adaptation policies (none / buffer-only / cross-layer) crossed with
// bandwidth estimators (app-only / phy-only / cross-layer), and toggles
// proactive blockage mitigation, in a crowded session where bodies
// regularly cross LoS paths.
#include <cstdio>

#include "common/table.h"
#include "core/session.h"

using namespace volcast;
using namespace volcast::core;

namespace {

SessionConfig stress_config() {
  SessionConfig c;
  c.user_count = 6;  // crowded: frequent body blockage
  c.duration_s = 8.0;
  c.master_points = 90'000;
  c.video_frames = 30;
  c.start_tier = 1;
  return c;
}

void run_row(AsciiTable& table, const char* label, const SessionConfig& c) {
  Session session(c);
  const auto r = session.run();
  table.row({label, AsciiTable::num(r.qoe.mean_fps(), 1),
             AsciiTable::num(r.qoe.total_stall_s(), 2),
             AsciiTable::num(r.qoe.mean_quality_tier(), 2),
             AsciiTable::num(r.mean_airtime_utilization, 2),
             std::to_string(r.reflection_switches),
             std::to_string(r.outage_user_ticks)});
}

}  // namespace

int main() {
  std::printf("=== Ablation: cross-layer rate adaptation (Sec 4.3) ===\n");
  std::printf("6 users, 8 s, frequent body blockage\n\n");

  AsciiTable table;
  table.header({"policy / estimator", "mean fps", "stall s", "mean tier",
                "airtime", "refl-switch", "outage-ticks"});

  {
    SessionConfig c = stress_config();
    c.adaptation = AdaptationPolicy::kNone;
    c.enable_blockage_mitigation = false;
    run_row(table, "none (pinned tier)", c);
  }
  {
    SessionConfig c = stress_config();
    c.adaptation = AdaptationPolicy::kBufferOnly;
    c.enable_blockage_mitigation = false;
    run_row(table, "buffer-only", c);
  }
  {
    SessionConfig c = stress_config();
    c.adaptation = AdaptationPolicy::kCrossLayer;
    c.estimator = BandwidthEstimator::kAppOnly;
    c.enable_blockage_mitigation = false;
    run_row(table, "cross-layer + app-only est", c);
  }
  {
    SessionConfig c = stress_config();
    c.adaptation = AdaptationPolicy::kCrossLayer;
    c.estimator = BandwidthEstimator::kPhyOnly;
    c.enable_blockage_mitigation = false;
    run_row(table, "cross-layer + phy-only est", c);
  }
  {
    SessionConfig c = stress_config();
    c.adaptation = AdaptationPolicy::kCrossLayer;
    c.estimator = BandwidthEstimator::kCrossLayer;
    c.enable_blockage_mitigation = false;
    run_row(table, "cross-layer est (no mitigation)", c);
  }
  {
    SessionConfig c = stress_config();
    c.adaptation = AdaptationPolicy::kCrossLayer;
    c.estimator = BandwidthEstimator::kCrossLayer;
    c.enable_blockage_mitigation = true;
    run_row(table, "full cross-layer + mitigation", c);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: the pinned tier stalls under blockage; "
              "buffer-only reacts late; the cross-layer estimator plus "
              "proactive mitigation keeps FPS high at comparable quality.\n");
  return 0;
}
