// Ablation for Section 4.2 (multicast grouping with viewport similarity):
// compares grouping policies end to end — unicast-only, pairs-only, the
// paper's greedy-IoU, and the exhaustive optimum — plus a sweep of the
// IoU admission threshold, reporting QoE, airtime and multicast share.
#include <cstdio>

#include "common/table.h"
#include "core/session.h"

using namespace volcast;
using namespace volcast::core;

namespace {

SessionConfig base_config() {
  SessionConfig c;
  c.user_count = 6;
  c.duration_s = 6.0;
  c.master_points = 90'000;
  c.video_frames = 30;
  c.adaptation = AdaptationPolicy::kNone;  // isolate the grouping effect
  c.start_tier = 2;
  return c;
}

void run_row(AsciiTable& table, const char* label, const SessionConfig& c) {
  Session session(c);
  const auto r = session.run();
  double m2p = 0.0;
  for (const auto& u : r.qoe.users) m2p += u.mean_m2p_latency_s;
  m2p /= static_cast<double>(r.qoe.users.size());
  table.row({label, AsciiTable::num(r.qoe.mean_fps(), 1),
             AsciiTable::num(r.qoe.min_fps(), 1),
             AsciiTable::num(r.mean_airtime_utilization, 2),
             AsciiTable::num(r.multicast_bit_share, 2),
             AsciiTable::num(r.mean_group_size, 2),
             AsciiTable::num(static_cast<double>(r.qoe.total_stall_s()), 2),
             AsciiTable::num(1e3 * m2p, 1)});
}

}  // namespace

int main() {
  std::printf("=== Ablation: multicast grouping policies (Sec 4.2) ===\n");
  std::printf("6 headset users, fixed top tier, 6 s sessions\n\n");

  AsciiTable table;
  table.header({"policy", "mean fps", "min fps", "airtime", "mcast share",
                "group size", "stall s", "m2p ms"});
  {
    SessionConfig c = base_config();
    c.enable_multicast = false;
    run_row(table, "unicast-only", c);
  }
  {
    SessionConfig c = base_config();
    c.grouping = GroupingPolicy::kPairsOnly;
    run_row(table, "pairs-only", c);
  }
  {
    SessionConfig c = base_config();
    c.grouping = GroupingPolicy::kGreedyIoU;
    run_row(table, "greedy-iou (paper)", c);
  }
  {
    SessionConfig c = base_config();
    c.grouping = GroupingPolicy::kExhaustive;
    run_row(table, "exhaustive optimum", c);
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("IoU admission threshold sweep (greedy policy):\n");
  AsciiTable sweep;
  sweep.header({"min IoU", "mean fps", "airtime", "mcast share",
                "group size"});
  for (double min_iou : {0.0, 0.15, 0.3, 0.5, 0.7, 0.9}) {
    SessionConfig c = base_config();
    c.grouping_min_iou = min_iou;
    Session session(c);
    const auto r = session.run();
    sweep.row({AsciiTable::num(min_iou, 2),
               AsciiTable::num(r.qoe.mean_fps(), 1),
               AsciiTable::num(r.mean_airtime_utilization, 2),
               AsciiTable::num(r.multicast_bit_share, 2),
               AsciiTable::num(r.mean_group_size, 2)});
  }
  std::printf("%s\n", sweep.render().c_str());
  std::printf("expected shape: multicast policies cut airtime vs unicast; "
              "greedy tracks the exhaustive optimum; overly strict IoU "
              "thresholds forfeit the savings.\n");
  return 0;
}
