// End-to-end system scaling (the paper's overall thesis + Section 5's
// multi-AP extension): users vs. QoE for the full cross-layer system
// against the unicast baseline, single AP and two APs.
//
// This regenerates the paper's headline claim in system form: the
// cross-layer design either serves more users at 30 FPS or delivers higher
// quality for the same user count, and multiple APs extend scaling through
// spatial reuse.
//
// `--json PATH` switches to the perf-trajectory mode used by
// tools/ci_bench.sh: a serial-vs-parallel wall-clock sweep of the session
// pipeline at 2/4/8/16 users, written as machine-readable JSON (the QoE
// numbers are bit-identical across thread counts, so only time varies).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/table.h"
#include "core/session.h"

using namespace volcast;
using namespace volcast::core;

namespace {

SessionConfig scaled_config(std::size_t users, bool cross_layer,
                            std::size_t aps, double spread_rad = 2.0) {
  SessionConfig c;
  c.user_count = users;
  c.duration_s = 5.0;
  c.master_points = 160'000;
  c.video_frames = 30;
  c.ap_count = aps;
  c.audience_spread_rad = spread_rad;
  if (!cross_layer) {
    c.enable_multicast = false;
    c.enable_custom_beams = false;
    c.enable_blockage_mitigation = false;
    c.adaptation = AdaptationPolicy::kBufferOnly;
    c.estimator = BandwidthEstimator::kAppOnly;
  }
  return c;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Serial-vs-parallel wall clock of the per-tick pipeline. Content is
// scaled down so the sweep stays minutes even on small CI boxes; the
// interesting number is the ratio, not the absolute time.
int run_json(const char* path) {
  constexpr std::size_t kParallelThreads = 8;
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_system_scaling: cannot write %s\n", path);
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"system_scaling\",\n"
               "  \"config\": {\"duration_s\": 3.0, \"master_points\": "
               "120000, \"video_frames\": 30, \"parallel_worker_threads\": "
               "%zu},\n  \"throughput\": [",
               kParallelThreads);

  AsciiTable table;
  table.header({"users", "serial run s", "parallel run s", "speedup", "fps"});
  bool first = true;
  for (std::size_t users : {2u, 4u, 8u, 16u}) {
    SessionConfig c;
    c.user_count = users;
    c.duration_s = 3.0;
    c.master_points = 120'000;
    c.video_frames = 30;

    // Best of 3: scheduler noise on a shared box only ever adds time, so
    // the minimum is the stable estimator the regression check needs.
    constexpr int kReps = 3;
    double serial_setup_s = 0.0, serial_run_s = 0.0;
    double parallel_setup_s = 0.0, parallel_run_s = 0.0;
    SessionResult r;
    for (int rep = 0; rep < kReps; ++rep) {
      c.worker_threads = 1;
      auto t0 = std::chrono::steady_clock::now();
      Session serial(c);
      const double setup = seconds_since(t0);
      t0 = std::chrono::steady_clock::now();
      r = serial.run();
      const double run = seconds_since(t0);
      if (rep == 0 || setup < serial_setup_s) serial_setup_s = setup;
      if (rep == 0 || run < serial_run_s) serial_run_s = run;

      c.worker_threads = kParallelThreads;
      t0 = std::chrono::steady_clock::now();
      Session parallel(c);
      const double psetup = seconds_since(t0);
      t0 = std::chrono::steady_clock::now();
      const auto rp = parallel.run();
      const double prun = seconds_since(t0);
      if (rep == 0 || psetup < parallel_setup_s) parallel_setup_s = psetup;
      if (rep == 0 || prun < parallel_run_s) parallel_run_s = prun;
      if (rp.qoe.users.size() != r.qoe.users.size()) return 1;  // impossible
    }

    const double speedup = serial_run_s / parallel_run_s;
    std::fprintf(out,
                 "%s\n    {\"users\": %zu, \"serial_setup_s\": %.4f, "
                 "\"serial_run_s\": %.4f, \"parallel_setup_s\": %.4f, "
                 "\"parallel_run_s\": %.4f, \"run_speedup\": %.3f, "
                 "\"mean_fps\": %.3f, \"mean_quality_tier\": %.3f}",
                 first ? "" : ",", users, serial_setup_s, serial_run_s,
                 parallel_setup_s, parallel_run_s, speedup, r.qoe.mean_fps(),
                 r.qoe.mean_quality_tier());
    first = false;
    table.row({std::to_string(users), AsciiTable::num(serial_run_s, 2),
               AsciiTable::num(parallel_run_s, 2),
               AsciiTable::num(speedup, 2),
               AsciiTable::num(r.qoe.mean_fps(), 1)});
  }
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
  std::printf("=== Session throughput: serial vs %zu worker threads ===\n\n",
              kParallelThreads);
  std::printf("%s\n", table.render().c_str());
  std::printf("wrote %s\n", path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--json") == 0)
    return run_json(argv[2]);
  if (argc != 1) {
    std::fprintf(stderr, "usage: %s [--json PATH]\n", argv[0]);
    return 2;
  }
  std::printf("=== System scaling: users vs QoE ===\n");
  std::printf("(scaled content; compare columns within a row)\n\n");

  AsciiTable table;
  table.header({"users", "baseline fps", "tier", "volcast fps", "tier"});
  for (std::size_t users : {2u, 4u, 6u, 8u, 10u, 12u}) {
    Session baseline(scaled_config(users, false, 1));
    Session system(scaled_config(users, true, 1));
    const auto rb = baseline.run();
    const auto rs = system.run();
    table.row({std::to_string(users),
               AsciiTable::num(rb.qoe.mean_fps(), 1),
               AsciiTable::num(rb.qoe.mean_quality_tier(), 2),
               AsciiTable::num(rs.qoe.mean_fps(), 1),
               AsciiTable::num(rs.qoe.mean_quality_tier(), 2)});
  }
  std::printf("%s\n", table.render().c_str());

  // Section 5 extension: spatial reuse needs spatially separated client
  // groups — a surround audience (2*pi arc) is the regime where a second
  // AP pays; a single tight arc is its worst case (both APs would beam
  // into the same spot and interfere).
  std::printf("multi-AP coordination with a surround audience (2*pi "
              "arc):\n");
  AsciiTable multi;
  multi.header({"users", "1 AP fps", "tier", "2 APs fps", "tier"});
  for (std::size_t users : {6u, 8u, 10u, 12u}) {
    constexpr double kSurround = 6.283185307179586;
    Session one(scaled_config(users, true, 1, kSurround));
    Session two(scaled_config(users, true, 2, kSurround));
    const auto r1 = one.run();
    const auto r2 = two.run();
    multi.row({std::to_string(users), AsciiTable::num(r1.qoe.mean_fps(), 1),
               AsciiTable::num(r1.qoe.mean_quality_tier(), 2),
               AsciiTable::num(r2.qoe.mean_fps(), 1),
               AsciiTable::num(r2.qoe.mean_quality_tier(), 2)});
  }
  std::printf("%s\n", multi.render().c_str());

  std::printf("cross-layer feature inventory at 6 users:\n");
  Session detail(scaled_config(6, true, 1));
  const auto r = detail.run();
  std::printf("  multicast bit share      %.2f\n", r.multicast_bit_share);
  std::printf("  mean multicast group     %.2f users\n", r.mean_group_size);
  std::printf("  custom/stock group beams %zu/%zu\n", r.custom_beam_uses,
              r.stock_beam_uses);
  std::printf("  blockage forecasts       %zu\n", r.blockage_forecasts);
  std::printf("  reflection beam switches %zu\n", r.reflection_switches);
  std::printf("  airtime utilization      %.2f\n",
              r.mean_airtime_utilization);
  return 0;
}
