// End-to-end system scaling (the paper's overall thesis + Section 5's
// multi-AP extension): users vs. QoE for the full cross-layer system
// against the unicast baseline, single AP and two APs.
//
// This regenerates the paper's headline claim in system form: the
// cross-layer design either serves more users at 30 FPS or delivers higher
// quality for the same user count, and multiple APs extend scaling through
// spatial reuse.
#include <cstdio>

#include "common/table.h"
#include "core/session.h"

using namespace volcast;
using namespace volcast::core;

namespace {

SessionConfig scaled_config(std::size_t users, bool cross_layer,
                            std::size_t aps, double spread_rad = 2.0) {
  SessionConfig c;
  c.user_count = users;
  c.duration_s = 5.0;
  c.master_points = 160'000;
  c.video_frames = 30;
  c.ap_count = aps;
  c.audience_spread_rad = spread_rad;
  if (!cross_layer) {
    c.enable_multicast = false;
    c.enable_custom_beams = false;
    c.enable_blockage_mitigation = false;
    c.adaptation = AdaptationPolicy::kBufferOnly;
    c.estimator = BandwidthEstimator::kAppOnly;
  }
  return c;
}

}  // namespace

int main() {
  std::printf("=== System scaling: users vs QoE ===\n");
  std::printf("(scaled content; compare columns within a row)\n\n");

  AsciiTable table;
  table.header({"users", "baseline fps", "tier", "volcast fps", "tier"});
  for (std::size_t users : {2u, 4u, 6u, 8u, 10u, 12u}) {
    Session baseline(scaled_config(users, false, 1));
    Session system(scaled_config(users, true, 1));
    const auto rb = baseline.run();
    const auto rs = system.run();
    table.row({std::to_string(users),
               AsciiTable::num(rb.qoe.mean_fps(), 1),
               AsciiTable::num(rb.qoe.mean_quality_tier(), 2),
               AsciiTable::num(rs.qoe.mean_fps(), 1),
               AsciiTable::num(rs.qoe.mean_quality_tier(), 2)});
  }
  std::printf("%s\n", table.render().c_str());

  // Section 5 extension: spatial reuse needs spatially separated client
  // groups — a surround audience (2*pi arc) is the regime where a second
  // AP pays; a single tight arc is its worst case (both APs would beam
  // into the same spot and interfere).
  std::printf("multi-AP coordination with a surround audience (2*pi "
              "arc):\n");
  AsciiTable multi;
  multi.header({"users", "1 AP fps", "tier", "2 APs fps", "tier"});
  for (std::size_t users : {6u, 8u, 10u, 12u}) {
    constexpr double kSurround = 6.283185307179586;
    Session one(scaled_config(users, true, 1, kSurround));
    Session two(scaled_config(users, true, 2, kSurround));
    const auto r1 = one.run();
    const auto r2 = two.run();
    multi.row({std::to_string(users), AsciiTable::num(r1.qoe.mean_fps(), 1),
               AsciiTable::num(r1.qoe.mean_quality_tier(), 2),
               AsciiTable::num(r2.qoe.mean_fps(), 1),
               AsciiTable::num(r2.qoe.mean_quality_tier(), 2)});
  }
  std::printf("%s\n", multi.render().c_str());

  std::printf("cross-layer feature inventory at 6 users:\n");
  Session detail(scaled_config(6, true, 1));
  const auto r = detail.run();
  std::printf("  multicast bit share      %.2f\n", r.multicast_bit_share);
  std::printf("  mean multicast group     %.2f users\n", r.mean_group_size);
  std::printf("  custom/stock group beams %zu/%zu\n", r.custom_beam_uses,
              r.stock_beam_uses);
  std::printf("  blockage forecasts       %zu\n", r.blockage_forecasts);
  std::printf("  reflection beam switches %zu\n", r.reflection_switches);
  std::printf("  airtime utilization      %.2f\n",
              r.mean_airtime_utilization);
  return 0;
}
