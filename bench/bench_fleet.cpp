// Fleet-runner scaling: wall clock of N independently-seeded sessions run
// serially vs. across the fleet thread pool, plus the aggregate fleet QoE.
// The FleetResult is bit-identical at any parallelism, so only time varies
// — the speedup column is the whole point of the fleet dimension (outer
// parallelism scales past a single session's per-tick fan-out).
//
// `--json PATH` writes the machine-readable form consumed by
// tools/ci_bench.sh (merged into BENCH_scaling.json as the "fleet" key).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>

#include "common/table.h"
#include "core/fleet.h"
#include "core/workload_bundle.h"

using namespace volcast;
using namespace volcast::core;

namespace {

FleetConfig fleet_config(std::size_t sessions, std::size_t parallel) {
  FleetConfig fc;
  fc.session.user_count = 4;
  fc.session.duration_s = 2.0;
  fc.session.master_points = 100'000;
  fc.session.video_frames = 30;
  // One lane per session: the fleet dimension provides the parallelism.
  fc.session.worker_threads = 1;
  fc.sessions = sessions;
  fc.parallel_sessions = parallel;
  return fc;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Setup amortization: what 8 slots' worth of session construction costs
/// with one shared WorkloadBundle vs the legacy per-slot setup. This is
/// the bench_fleet column ci_bench.sh gates (8-slot shared setup must stay
/// <= 1.5x a single session's setup — vs ~8x without sharing).
struct SetupBench {
  double single_s = 0.0;        // one legacy Session construction
  double bundle_build_s = 0.0;  // one WorkloadBundle::build
  double shared8_s = 0.0;       // bundle build + 8 bundled constructions
  double legacy8_s = 0.0;       // 8 legacy constructions
  double amortization_8 = 0.0;  // shared8_s / single_s
};

SetupBench measure_setup() {
  constexpr std::size_t kSlots = 8;
  SessionConfig sc = fleet_config(kSlots, 1).session;
  sc.content_seed = 4242;  // pinned content: every slot, one video
  SetupBench b;
  constexpr int kReps = 3;
  for (int rep = 0; rep < kReps; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    { Session session(sc); }
    const double single = seconds_since(t0);
    if (rep == 0 || single < b.single_s) b.single_s = single;

    t0 = std::chrono::steady_clock::now();
    const std::shared_ptr<const WorkloadBundle> bundle =
        WorkloadBundle::build(sc);
    const double build = seconds_since(t0);
    if (rep == 0 || build < b.bundle_build_s) b.bundle_build_s = build;
    for (std::size_t k = 0; k < kSlots; ++k) {
      SessionConfig slot = sc;
      slot.seed = sc.seed + k;
      slot.bundle = bundle;
      Session session(std::move(slot));
    }
    const double shared8 = seconds_since(t0);  // includes the build
    if (rep == 0 || shared8 < b.shared8_s) b.shared8_s = shared8;
  }
  // One rep is plenty for the legacy fan-out: it only exists to show the
  // ~8x the bundle removes, not to gate on.
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t k = 0; k < kSlots; ++k) {
    SessionConfig slot = sc;
    slot.seed = sc.seed + k;
    Session session(std::move(slot));
  }
  b.legacy8_s = seconds_since(t0);
  b.amortization_8 = b.shared8_s / b.single_s;
  return b;
}

int run(const char* json_path) {
  constexpr std::size_t kParallelSessions = 8;
  std::FILE* out = nullptr;
  if (json_path != nullptr) {
    out = std::fopen(json_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_fleet: cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(out,
                 "{\n  \"bench\": \"fleet\",\n"
                 "  \"config\": {\"users\": 4, \"duration_s\": 2.0, "
                 "\"master_points\": 100000, \"parallel_sessions\": %zu},\n"
                 "  \"scaling\": [",
                 kParallelSessions);
  }

  AsciiTable table;
  table.header({"sessions", "serial s", "parallel s", "speedup",
                "supervised s", "overhead", "supported", "mean fps"});
  bool first = true;
  for (std::size_t sessions : {2u, 4u, 8u}) {
    // Best of 3: scheduler noise on a shared box only ever adds time, so
    // the minimum is the stable estimator the regression check needs.
    constexpr int kReps = 3;
    double serial_s = 0.0;
    double parallel_s = 0.0;
    double supervised_s = 0.0;
    FleetResult r;
    for (int rep = 0; rep < kReps; ++rep) {
      auto t0 = std::chrono::steady_clock::now();
      r = run_fleet(fleet_config(sessions, 1));
      const double serial = seconds_since(t0);
      if (rep == 0 || serial < serial_s) serial_s = serial;

      t0 = std::chrono::steady_clock::now();
      const FleetResult rp = run_fleet(fleet_config(sessions, kParallelSessions));
      const double parallel = seconds_since(t0);
      if (rep == 0 || parallel < parallel_s) parallel_s = parallel;
      if (rp.total_users != r.total_users) return 1;  // impossible

      // Supervision active but never firing (retry budget armed, generous
      // deadline): measures the pure bookkeeping overhead of the
      // supervised slot runner. Target: within noise of the plain serial
      // run (< 2%).
      FleetConfig supervised = fleet_config(sessions, 1);
      supervised.supervision.max_retries = 2;
      supervised.supervision.tick_budget = 1'000'000;
      t0 = std::chrono::steady_clock::now();
      const FleetResult rs = run_fleet(supervised);
      const double sup = seconds_since(t0);
      if (rep == 0 || sup < supervised_s) supervised_s = sup;
      if (rs.total_users != r.total_users) return 1;  // impossible
    }
    const double speedup = serial_s / parallel_s;
    const double overhead = supervised_s / serial_s - 1.0;
    if (out != nullptr) {
      std::fprintf(out,
                   "%s\n    {\"sessions\": %zu, \"serial_s\": %.4f, "
                   "\"parallel_s\": %.4f, \"speedup\": %.3f, "
                   "\"supervised_s\": %.4f, \"supervision_overhead\": %.4f, "
                   "\"supported_users\": %zu, \"total_users\": %zu, "
                   "\"mean_fps\": %.3f}",
                   first ? "" : ",", sessions, serial_s, parallel_s, speedup,
                   supervised_s, overhead, r.supported_users, r.total_users,
                   r.mean_displayed_fps);
      first = false;
    }
    table.row({std::to_string(sessions), AsciiTable::num(serial_s, 2),
               AsciiTable::num(parallel_s, 2), AsciiTable::num(speedup, 2),
               AsciiTable::num(supervised_s, 2),
               AsciiTable::num(100.0 * overhead, 1) + "%",
               std::to_string(r.supported_users) + "/" +
                   std::to_string(r.total_users),
               AsciiTable::num(r.mean_displayed_fps, 1)});
  }
  const SetupBench setup = measure_setup();
  if (out != nullptr) {
    std::fprintf(out,
                 "\n  ],\n  \"setup\": {\"single_s\": %.4f, "
                 "\"bundle_build_s\": %.4f, \"shared8_s\": %.4f, "
                 "\"legacy8_s\": %.4f, \"amortization_8\": %.3f}\n}\n",
                 setup.single_s, setup.bundle_build_s, setup.shared8_s,
                 setup.legacy8_s, setup.amortization_8);
    std::fclose(out);
  }
  std::printf("=== Fleet scaling: serial vs %zu concurrent sessions ===\n\n",
              kParallelSessions);
  std::printf("%s", table.render().c_str());

  AsciiTable setup_table;
  setup_table.header({"setup", "single s", "bundle s", "shared x8 s",
                      "legacy x8 s", "amortization"});
  setup_table.row({"8 slots", AsciiTable::num(setup.single_s, 3),
                   AsciiTable::num(setup.bundle_build_s, 3),
                   AsciiTable::num(setup.shared8_s, 3),
                   AsciiTable::num(setup.legacy8_s, 3),
                   AsciiTable::num(setup.amortization_8, 2) + "x"});
  std::printf(
      "\n=== Setup amortization: one shared WorkloadBundle vs per-slot "
      "setup ===\n\n%s",
      setup_table.render().c_str());
  if (json_path != nullptr) std::printf("wrote %s\n", json_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--json") == 0) return run(argv[2]);
  if (argc != 1) {
    std::fprintf(stderr, "usage: %s [--json PATH]\n", argv[0]);
    return 2;
  }
  return run(nullptr);
}
