// Ablation for Section 4.1 (multi-user viewport prediction).
//
// (1) Per-user predictor accuracy (position error at several horizons) on
//     the synthetic study traces — linear regression vs. the baselines.
// (2) Value of *joint* prediction: blockage-forecast hit rate — how often a
//     forecast issued at t predicts an actual LoS blockage at t+horizon —
//     and the occlusion-aware visibility delta.
#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "core/session.h"
#include "core/testbed.h"
#include "pointcloud/video_generator.h"
#include "trace/user_study.h"
#include "viewport/joint_predictor.h"

using namespace volcast;

int main() {
  std::printf("=== Ablation: multi-user viewport prediction (Sec 4.1) ===\n");

  trace::UserStudyConfig study_config;
  study_config.samples_per_user = 600;
  const trace::UserStudy study(study_config);

  // --- (1) per-user predictor accuracy ---------------------------------
  std::printf("\nper-user 6DoF prediction error (m + rad), study traces:\n");
  std::printf("predictor          100ms   333ms   1s\n");
  for (const char* name :
       {"static", "const-velocity", "linear-regression", "ewma", "mlp"}) {
    double err[3] = {0, 0, 0};
    const int horizons[3] = {3, 10, 30};
    int count = 0;
    for (std::size_t u = 0; u < study.user_count(); u += 3) {
      const auto predictor = view::make_predictor(name);
      const auto& poses = study.trace(u).poses;
      for (std::size_t i = 0; i + 30 < poses.size(); ++i) {
        predictor->observe(static_cast<double>(i) / 30.0, poses[i]);
        if (i < 15) continue;
        for (int h = 0; h < 3; ++h) {
          const auto predicted =
              predictor->predict(horizons[h] / 30.0);
          err[h] += predicted.distance(
              poses[i + static_cast<std::size_t>(horizons[h])]);
        }
        ++count;
      }
    }
    std::printf("%-18s %.3f   %.3f   %.3f\n", name, err[0] / count,
                err[1] / count, err[2] / count);
  }

  // --- (2) joint prediction: blockage forecasting ----------------------
  core::Testbed testbed;
  view::JointPredictorConfig jc;
  jc.ap_position =
      testbed.config().ap_position - testbed.config().content_floor;
  const std::size_t n_users = 6;
  view::JointViewportPredictor joint(n_users, jc);

  const int horizon_ticks = 6;  // 200 ms look-ahead
  std::size_t forecasts = 0;
  std::size_t hits = 0;
  std::size_t actual_events = 0;
  std::size_t predicted_events = 0;

  std::vector<std::vector<geo::Pose>> history;
  const std::size_t samples = study.trace(0).size();
  for (std::size_t f = 0; f < samples; ++f) {
    std::vector<geo::Pose> poses;
    for (std::size_t u = 0; u < n_users; ++u)
      poses.push_back(study.trace(16 + u).poses[f]);  // headset group
    history.push_back(poses);
  }

  auto actual_blockage = [&](std::size_t frame, std::size_t user) {
    for (std::size_t v = 0; v < n_users; ++v) {
      if (v == user) continue;
      geo::BodyObstacle body{history[frame][v].position, 0.25, 1.8};
      if (geo::segment_hits_body(jc.ap_position,
                                 history[frame][user].position, body))
        return true;
    }
    return false;
  };

  for (std::size_t f = 0; f + horizon_ticks < samples; ++f) {
    joint.observe(static_cast<double>(f) / 30.0, history[f]);
    if (f < 15) continue;
    const auto predicted_poses =
        joint.predict_poses(horizon_ticks / 30.0);
    const auto fcs = joint.forecast_blockages(predicted_poses);
    std::vector<bool> forecast_user(n_users, false);
    for (const auto& fc : fcs) forecast_user[fc.user] = true;
    for (std::size_t u = 0; u < n_users; ++u) {
      const bool actual = actual_blockage(f + horizon_ticks, u);
      if (forecast_user[u]) {
        ++forecasts;
        if (actual) ++hits;
      }
      if (actual) ++actual_events;
      if (forecast_user[u] && actual) ++predicted_events;
    }
  }
  std::printf("\njoint blockage forecasting (200 ms ahead, 6 headset "
              "users):\n");
  std::printf("forecast precision: %.0f%% (%zu/%zu forecasts correct)\n",
              forecasts ? 100.0 * hits / forecasts : 0.0, hits, forecasts);
  std::printf("recall: %.0f%% of the %zu actual blocked user-frames were "
              "forecast\n",
              actual_events ? 100.0 * predicted_events / actual_events : 0.0,
              actual_events);

  // --- (3) occlusion-aware visibility ----------------------------------
  vv::VideoConfig vc;
  vc.points_per_frame = 60'000;
  vc.frame_count = 30;
  const vv::VideoGenerator generator(vc);
  const vv::CellGrid grid(generator.content_bounds(), 0.5);
  view::JointPredictorConfig with = jc;
  view::JointPredictorConfig without = jc;
  without.user_occlusion = false;
  view::JointViewportPredictor joint_with(n_users, with);
  view::JointViewportPredictor joint_without(n_users, without);
  double bytes_with = 0.0;
  double bytes_without = 0.0;
  for (std::size_t f = 0; f < 300; f += 10) {
    joint_with.observe(static_cast<double>(f) / 30.0, history[f]);
    joint_without.observe(static_cast<double>(f) / 30.0, history[f]);
    const auto occupancy = grid.occupancy(generator.frame(f % 30));
    const auto pw = joint_with.predict(0.1, grid, occupancy);
    const auto pwo = joint_without.predict(0.1, grid, occupancy);
    for (std::size_t u = 0; u < n_users; ++u) {
      bytes_with += static_cast<double>(pw.visibility[u].visible_count());
      bytes_without +=
          static_cast<double>(pwo.visibility[u].visible_count());
    }
  }
  std::printf("\nuser-user occlusion saves %.1f%% of fetched cells "
              "(AR semantics: you see the person, not the content)\n",
              100.0 * (1.0 - bytes_with / bytes_without));

  // --- (4) prediction-horizon sweep (full sessions) --------------------
  // Longer look-ahead gives the scheduler more slack but predicts worse:
  // the viewport-miss ratio is the cost the horizon pays.
  std::printf("\nprediction-horizon sweep (4 users, full sessions):\n");
  std::printf("horizon  mean fps  viewport miss  m2p ms\n");
  for (double horizon : {1.0 / 30.0, 0.1, 0.2, 1.0 / 3.0, 0.5}) {
    core::SessionConfig sc;
    sc.user_count = 4;
    sc.duration_s = 4.0;
    sc.master_points = 60'000;
    sc.video_frames = 30;
    sc.prediction_horizon_s = horizon;
    core::Session session(sc);
    const auto r = session.run();
    double miss = 0.0;
    double m2p = 0.0;
    for (const auto& u : r.qoe.users) {
      miss += u.viewport_miss_ratio;
      m2p += u.mean_m2p_latency_s;
    }
    miss /= static_cast<double>(r.qoe.users.size());
    m2p /= static_cast<double>(r.qoe.users.size());
    std::printf("%4.0f ms  %8.1f  %12.1f%%  %6.1f\n", horizon * 1e3,
                r.qoe.mean_fps(), 100.0 * miss, 1e3 * m2p);
  }
  return 0;
}
