// Packet-wire microbenchmark: per-policy cost and recovery quality of the
// transport subsystem (src/transport). For each recovery policy the sweep
// pushes a fixed train population through `transmit_train` under a bursty
// loss mix and reports wire overhead (parity + retransmit + header bits
// over frame bits), residual loss after FEC, the failed-tile ratio and the
// NACK recovery-latency percentiles — the numbers behind the fec/nack/
// hybrid ablation — plus the wall clock of the sweep itself.
//
// `--json PATH` writes the machine-readable form consumed by
// tools/ci_bench.sh (merged into BENCH_scaling.json as the "transport"
// key; the `sweep_s` wall time participates in the regression gate).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/table.h"
#include "transport/wire.h"

using namespace volcast;
using namespace volcast::transport;

namespace {

constexpr std::uint32_t kTrains = 10'000;

TrainParams train_params(std::uint32_t tick) {
  TrainParams p;
  p.frame_bits = 1.5e6;  // ~6 tiles, ~144 data packets
  p.per = 0.02;
  // Burst chain on for a third of the trains — a loss mix rather than a
  // single operating point, so FEC and NACK both get exercised.
  p.burst_loss = (tick % 3 == 0) ? 0.5 : 0.0;
  p.deadline_ms = 12.0;
  p.seed = 4242;
  p.user = tick % 4;
  p.tick = tick;
  p.frame = static_cast<std::uint16_t>(tick % 30);
  return p;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct SweepResult {
  double sweep_s = 0.0;       // best-of-3 wall clock of the train sweep
  double overhead_ratio = 0.0;  // extra wire bits / frame bits
  double residual_loss = 0.0;   // mean loss after FEC, before NACK
  double failed_tile_ratio = 0.0;
  double recovery_ms_p50 = 0.0;
  double recovery_ms_p99 = 0.0;
  double recovery_ms_max = 0.0;
};

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

SweepResult sweep(TransportPolicy policy) {
  const TransportConfig config;
  SweepResult out;
  constexpr int kReps = 3;
  for (int rep = 0; rep < kReps; ++rep) {
    // Fresh receiver lanes per repetition: identical work each time, so
    // the minimum is the stable estimator (noise only ever adds time).
    std::vector<ReceiverState> lanes(4);
    TransportReport report;
    std::vector<double> recovery;
    double frame_bits = 0.0, extra_bits = 0.0, failed = 0.0, tiles = 0.0;

    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint32_t tick = 0; tick < kTrains; ++tick) {
      const TrainParams p = train_params(tick);
      const TrainResult r = transmit_train(config, policy, p, lanes[p.user]);
      report.add(r);
      if (r.recovery_ms > 0.0) recovery.push_back(r.recovery_ms);
      frame_bits += p.frame_bits;
      extra_bits += r.parity_bits + r.retransmit_bits + r.header_bits;
      failed += static_cast<double>(r.failed_tiles);
      tiles += static_cast<double>(r.tiles);
    }
    const double elapsed = seconds_since(t0);
    if (rep == 0 || elapsed < out.sweep_s) out.sweep_s = elapsed;
    if (rep == 0) {
      out.overhead_ratio = frame_bits > 0.0 ? extra_bits / frame_bits : 0.0;
      out.residual_loss = report.residual_loss_mean;
      out.failed_tile_ratio = tiles > 0.0 ? failed / tiles : 0.0;
      out.recovery_ms_p50 = percentile(recovery, 0.50);
      out.recovery_ms_p99 = percentile(recovery, 0.99);
      out.recovery_ms_max = recovery.empty()
                                ? 0.0
                                : *std::max_element(recovery.begin(),
                                                    recovery.end());
    }
  }
  return out;
}

int run(const char* json_path) {
  std::FILE* out = nullptr;
  if (json_path != nullptr) {
    out = std::fopen(json_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_transport: cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(out,
                 "{\n  \"bench\": \"transport\",\n"
                 "  \"config\": {\"trains\": %u, \"frame_bits\": 1500000, "
                 "\"per\": 0.02, \"burst_loss\": 0.5, \"deadline_ms\": "
                 "12.0},\n  \"policies\": [",
                 kTrains);
  }

  AsciiTable table;
  table.header({"policy", "sweep s", "overhead", "residual loss",
                "failed tiles", "rec p50 ms", "rec p99 ms", "rec max ms"});
  bool first = true;
  for (const TransportPolicy policy :
       {TransportPolicy::kFec, TransportPolicy::kNack,
        TransportPolicy::kHybrid}) {
    const SweepResult r = sweep(policy);
    if (out != nullptr) {
      std::fprintf(out,
                   "%s\n    {\"policy\": \"%s\", \"sweep_s\": %.4f, "
                   "\"overhead_ratio\": %.4f, \"residual_loss\": %.5f, "
                   "\"failed_tile_ratio\": %.5f, \"recovery_ms_p50\": %.2f, "
                   "\"recovery_ms_p99\": %.2f, \"recovery_ms_max\": %.2f}",
                   first ? "" : ",", to_string(policy), r.sweep_s,
                   r.overhead_ratio, r.residual_loss, r.failed_tile_ratio,
                   r.recovery_ms_p50, r.recovery_ms_p99, r.recovery_ms_max);
      first = false;
    }
    table.row({to_string(policy), AsciiTable::num(r.sweep_s, 3),
               AsciiTable::num(100.0 * r.overhead_ratio, 1) + "%",
               AsciiTable::num(r.residual_loss, 4),
               AsciiTable::num(100.0 * r.failed_tile_ratio, 2) + "%",
               AsciiTable::num(r.recovery_ms_p50, 1),
               AsciiTable::num(r.recovery_ms_p99, 1),
               AsciiTable::num(r.recovery_ms_max, 1)});
  }
  if (out != nullptr) {
    std::fprintf(out, "\n  ]\n}\n");
    std::fclose(out);
  }
  std::printf("=== Packet wire: %u trains per policy ===\n\n", kTrains);
  std::printf("%s", table.render().c_str());
  if (json_path != nullptr) std::printf("wrote %s\n", json_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--json") == 0) return run(argv[2]);
  if (argc != 1) {
    std::fprintf(stderr, "usage: %s [--json PATH]\n", argv[0]);
    return 2;
  }
  return run(nullptr);
}
