// Encode-once, serve-many: tile-cache benefit across users and fleet
// slots.
//
// Section 1 (single session): users x audience-spread sweep comparing
// tiling=off (per-user encode) against tiling=shared. The logical encode
// bytes per user are deterministic, so the encode-cost ratio is a hard
// regression gate; the headline property is that shared encode cost scales
// with *distinct viewports*, not user count — at 8 users in a tight arc
// the per-user encode cost drops well past 2x.
//
// Section 2 (fleet): 8 slots streaming the same content (content_seed
// pinned), per-slot local caches vs one fleet-shared cache. Cross-slot
// handoff turns most first-touch encodes into cache hits; the hit rate is
// deterministic in the serial run and gated, wall clock is informational.
//
// `--json PATH` writes the machine-readable form consumed by
// tools/ci_bench.sh (merged into BENCH_scaling.json as the "tile_cache"
// key).
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/table.h"
#include "core/fleet.h"
#include "core/session.h"
#include "pointcloud/tile_cache.h"

using namespace volcast;
using namespace volcast::core;

namespace {

SessionConfig session_config(std::size_t users, double spread) {
  SessionConfig config;
  config.user_count = users;
  config.duration_s = 2.0;
  config.master_points = 100'000;
  config.video_frames = 30;
  config.worker_threads = 1;
  config.audience_spread_rad = spread;
  return config;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Timed {
  SessionResult result;
  double wall_s = 0.0;
};

Timed run_timed(const SessionConfig& config, const char* tiling,
                vv::TileCache* cache) {
  constexpr int kReps = 3;
  Timed best;
  for (int rep = 0; rep < kReps; ++rep) {
    SessionConfig sc = config;
    sc.policy_overrides["tiling"] = tiling;
    sc.tile_cache = cache;
    Session session(std::move(sc));
    const auto t0 = std::chrono::steady_clock::now();
    SessionResult r = session.run();
    const double wall = seconds_since(t0);
    if (rep == 0 || wall < best.wall_s) {
      best.result = r;
      best.wall_s = wall;
    }
  }
  return best;
}

int run(const char* json_path) {
  std::FILE* out = nullptr;
  if (json_path != nullptr) {
    out = std::fopen(json_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_tile_cache: cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(out,
                 "{\n  \"bench\": \"tile_cache\",\n"
                 "  \"config\": {\"duration_s\": 2.0, \"master_points\": "
                 "100000, \"video_frames\": 30},\n"
                 "  \"sessions\": [");
  }

  std::printf("=== Tile cache: encode-once/serve-many vs per-user encode "
              "===\n\n");
  AsciiTable table;
  table.header({"users", "spread", "off MB/user", "shared MB/user",
                "encode ratio", "reuse", "hit rate", "off s", "shared s"});
  bool first = true;
  // 1.5 rad is the "clustered" arc: viewports overlap heavily but the
  // users stay out of each other's body-blockage shadow (tighter arcs
  // black out the links and nothing is scheduled).
  for (const auto& [users, spread] :
       {std::pair<std::size_t, double>{2, 2.0},
        {4, 2.0},
        {8, 1.5},
        {8, 2.0},
        {16, 1.5}}) {
    const SessionConfig config = session_config(users, spread);
    const Timed off = run_timed(config, "off", nullptr);
    // An external cache so the deterministic serial run's hit rate is
    // observable from outside the session.
    vv::TileCache cache;
    const Timed shared = run_timed(config, "shared", &cache);

    const double n = static_cast<double>(users);
    const double off_mb_user =
        static_cast<double>(off.result.tiles.encoded_bytes) / 1e6 / n;
    const double shared_mb_user =
        static_cast<double>(shared.result.tiles.encoded_bytes) / 1e6 / n;
    // < 1: the shared path encodes fewer bytes. The gated column.
    const double encode_ratio =
        static_cast<double>(shared.result.tiles.encoded_bytes) /
        static_cast<double>(off.result.tiles.encoded_bytes);
    const double reuse =
        static_cast<double>(shared.result.tiles.stitched_tiles) /
        static_cast<double>(shared.result.tiles.requests);
    const double hit_rate = cache.stats().hit_rate();

    if (out != nullptr) {
      std::fprintf(out,
                   "%s\n    {\"users\": %zu, \"spread_rad\": %.1f, "
                   "\"off_encode_mb_per_user\": %.4f, "
                   "\"shared_encode_mb_per_user\": %.4f, "
                   "\"encode_ratio\": %.4f, \"reuse\": %.4f, "
                   "\"hit_rate\": %.4f, \"off_s\": %.4f, "
                   "\"shared_s\": %.4f}",
                   first ? "" : ",", users, spread, off_mb_user,
                   shared_mb_user, encode_ratio, reuse, hit_rate, off.wall_s,
                   shared.wall_s);
      first = false;
    }
    table.row({std::to_string(users), AsciiTable::num(spread, 1),
               AsciiTable::num(off_mb_user, 2),
               AsciiTable::num(shared_mb_user, 2),
               AsciiTable::num(encode_ratio, 3), AsciiTable::num(reuse, 3),
               AsciiTable::num(hit_rate, 3), AsciiTable::num(off.wall_s, 2),
               AsciiTable::num(shared.wall_s, 2)});
  }
  std::printf("%s", table.render().c_str());

  // --- fleet: per-slot local caches vs one fleet-shared cache ------------
  constexpr std::size_t kSlots = 8;
  FleetConfig fc;
  fc.session = session_config(4, 2.0);
  fc.session.content_seed = 0x5eedc0de;  // every slot streams this video
  fc.session.policy_overrides["tiling"] = "shared";
  fc.sessions = kSlots;
  fc.parallel_sessions = 1;

  constexpr int kReps = 3;
  double local_s = 0.0;
  double shared_s = 0.0;
  double shared_hit_rate = 0.0;
  FleetResult fleet;
  for (int rep = 0; rep < kReps; ++rep) {
    // Per-slot local caches: defeat the fleet handoff by handing each slot
    // nothing and forcing the template cache path off.
    FleetConfig local_fc = fc;
    vv::TileCache defeat(1);  // capacity 1 byte: nothing is ever resident
    local_fc.session.tile_cache = &defeat;
    auto t0 = std::chrono::steady_clock::now();
    const FleetResult rl = run_fleet(local_fc);
    const double local = seconds_since(t0);
    if (rep == 0 || local < local_s) local_s = local;

    FleetConfig shared_fc = fc;
    vv::TileCache shared_cache;
    shared_fc.session.tile_cache = &shared_cache;
    t0 = std::chrono::steady_clock::now();
    fleet = run_fleet(shared_fc);
    const double shared = seconds_since(t0);
    if (rep == 0 || shared < shared_s) shared_s = shared;
    shared_hit_rate = shared_cache.stats().hit_rate();
    if (rl.total_users != fleet.total_users) return 1;  // impossible
  }
  const double fleet_speedup = local_s / shared_s;

  std::printf("\n=== Fleet handoff: %zu slots, same content, cold vs "
              "shared cache ===\n\n",
              kSlots);
  AsciiTable ftable;
  ftable.header({"slots", "cold s", "shared s", "speedup", "hit rate",
                 "stitched", "encoded"});
  ftable.row({std::to_string(kSlots), AsciiTable::num(local_s, 2),
              AsciiTable::num(shared_s, 2),
              AsciiTable::num(fleet_speedup, 2),
              AsciiTable::num(shared_hit_rate, 3),
              std::to_string(fleet.tiles.stitched_tiles),
              std::to_string(fleet.tiles.encoded_tiles)});
  std::printf("%s", ftable.render().c_str());

  if (out != nullptr) {
    std::fprintf(out,
                 "\n  ],\n  \"fleet\": {\"slots\": %zu, \"cold_s\": %.4f, "
                 "\"shared_s\": %.4f, \"speedup\": %.3f, "
                 "\"hit_rate\": %.4f, \"stitched_tiles\": %llu, "
                 "\"encoded_tiles\": %llu}\n}\n",
                 kSlots, local_s, shared_s, fleet_speedup, shared_hit_rate,
                 static_cast<unsigned long long>(fleet.tiles.stitched_tiles),
                 static_cast<unsigned long long>(fleet.tiles.encoded_tiles));
    std::fclose(out);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--json") == 0) return run(argv[2]);
  if (argc != 1) {
    std::fprintf(stderr, "usage: %s [--json PATH]\n", argv[0]);
    return 2;
  }
  return run(nullptr);
}
