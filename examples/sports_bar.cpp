// Group-watching a volumetric sports event (the paper's other motivating
// scenario): a mixed audience — some on smartphones, some on headsets —
// around a captured athlete. Smartphone viewers barely move, so their
// viewports overlap heavily and multicast shines; headset viewers roam.
// The example runs the two audiences separately to expose exactly that
// device effect, then stresses the room with a walking waiter (heavy
// blockage) to show proactive mitigation at work.
#include <cstdio>

#include "core/session.h"

using namespace volcast;
using namespace volcast::core;

namespace {

SessionConfig audience(trace::DeviceType device, std::size_t users) {
  SessionConfig c;
  c.user_count = users;
  c.device = device;
  c.duration_s = 6.0;
  c.master_points = 90'000;
  c.video_frames = 30;
  c.start_tier = 2;  // everyone wants the premium feed
  return c;
}

void report(const char* label, const SessionResult& r) {
  std::printf("%-24s fps %.1f | tier %.2f | multicast %.0f%% | group %.2f | "
              "airtime %.2f\n",
              label, r.qoe.mean_fps(), r.qoe.mean_quality_tier(),
              100.0 * r.multicast_bit_share, r.mean_group_size,
              r.mean_airtime_utilization);
}

}  // namespace

int main() {
  std::printf("=== Sports night: group-watching a volumetric match ===\n\n");

  std::printf("five smartphone fans (static, similar viewports):\n");
  report("  phones:", Session(audience(trace::DeviceType::kSmartphone, 5))
                          .run());

  std::printf("\nfive headset fans (roaming, divergent viewports):\n");
  report("  headsets:", Session(audience(trace::DeviceType::kHeadset, 5))
                            .run());

  std::printf("\nsame headset audience without multicast (what the fans "
              "would get from stock ViVo):\n");
  SessionConfig no_multicast = audience(trace::DeviceType::kHeadset, 5);
  no_multicast.enable_multicast = false;
  report("  unicast only:", Session(no_multicast).run());

  std::printf("\ncrowded room, mitigation off vs on (blockage stress):\n");
  SessionConfig crowded = audience(trace::DeviceType::kHeadset, 7);
  crowded.enable_blockage_mitigation = false;
  const auto without = Session(crowded).run();
  crowded.enable_blockage_mitigation = true;
  const auto with = Session(crowded).run();
  std::printf("  mitigation off: stall %.2f s, outage ticks %zu\n",
              without.qoe.total_stall_s(), without.outage_user_ticks);
  std::printf("  mitigation on : stall %.2f s, outage ticks %zu, "
              "%zu reflection switches, %zu forecasts\n",
              with.qoe.total_stall_s(), with.outage_user_ticks,
              with.reflection_switches, with.blockage_forecasts);
  return 0;
}
