// Quickstart: the volcast public API in ~80 lines.
//
//  1. generate volumetric video content and look at its encoded size,
//  2. compute what a viewer actually needs (ViVo-style visibility),
//  3. check the mmWave link that will carry it,
//  4. run a full multi-user cross-layer streaming session.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "core/session.h"
#include "core/testbed.h"
#include "mmwave/link.h"
#include "pointcloud/codec.h"
#include "pointcloud/video_generator.h"
#include "viewport/visibility.h"

using namespace volcast;

int main() {
  // --- 1. content -------------------------------------------------------
  vv::VideoConfig video;
  video.points_per_frame = 100'000;  // scale down for a quick demo
  video.frame_count = 30;
  const vv::VideoGenerator generator(video);
  const vv::PointCloud frame = generator.frame(0);
  const auto blob = vv::encode(frame);
  std::printf("frame 0: %zu points, %zu raw bytes -> %zu encoded (%.1f "
              "bits/point)\n",
              frame.size(), frame.raw_size_bytes(), blob.size(),
              8.0 * static_cast<double>(blob.size()) /
                  static_cast<double>(frame.size()));

  // --- 2. visibility ----------------------------------------------------
  const vv::CellGrid grid(generator.content_bounds(), 0.5);
  const auto occupancy = grid.occupancy(frame);
  const geo::Pose viewer = geo::Pose::look_at({2.0, 0.0, 1.6}, {0, 0, 1.1});
  const auto visibility =
      view::compute_visibility(grid, occupancy, viewer, {});
  std::size_t occupied = 0;
  for (auto n : occupancy)
    if (n > 0) ++occupied;
  std::printf("viewer at 2 m needs %zu of %zu occupied cells\n",
              visibility.visible_count(), occupied);

  // --- 3. the mmWave link ------------------------------------------------
  const core::Testbed testbed;  // 8x6x3 m room, wall-mounted 802.11ad AP
  const geo::Vec3 seat = testbed.to_room(viewer.position);
  const double rss = mmwave::best_beam_rss_dbm(
      testbed.ap(), testbed.codebook(), testbed.channel(), seat, {},
      testbed.budget());
  std::printf("best stock sector at the viewer's seat: %.1f dBm -> %.0f "
              "Mbps goodput\n",
              rss, testbed.mcs().goodput_mbps(rss));

  // --- 4. a full multi-user session --------------------------------------
  core::SessionConfig config;
  config.user_count = 4;
  config.duration_s = 5.0;
  config.master_points = 80'000;
  config.video_frames = 30;
  core::Session session(config);
  const core::SessionResult result = session.run();
  std::printf("\n4-user cross-layer session, 5 s:\n%s",
              result.qoe.summary().c_str());
  std::printf("multicast carried %.0f%% of delivered bits "
              "(mean group %.2f users)\n",
              100.0 * result.multicast_bit_share, result.mean_group_size);
  return 0;
}
