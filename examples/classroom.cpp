// AR-enhanced classroom (one of the paper's motivating use cases): eight
// students with headsets watch the same volumetric lecture capture. The
// example contrasts the state-of-the-art baseline (unicast ViVo with
// client-side buffer adaptation) against the full cross-layer system, then
// shows what adding a second AP buys — the Section 5 route for scaling to a
// whole classroom.
#include <cstdio>

#include "common/table.h"
#include "core/session.h"

using namespace volcast;
using namespace volcast::core;

namespace {

SessionConfig classroom_base() {
  SessionConfig c;
  c.user_count = 8;
  c.device = trace::DeviceType::kHeadset;
  c.duration_s = 6.0;
  c.master_points = 90'000;  // scaled lecture capture
  c.video_frames = 30;
  c.start_tier = 1;
  return c;
}

void report(const char* label, const SessionResult& r) {
  std::printf("%-28s mean %.1f fps | min %.1f fps | stall %.2f s | tier "
              "%.2f | multicast %.0f%%\n",
              label, r.qoe.mean_fps(), r.qoe.min_fps(),
              r.qoe.total_stall_s(), r.qoe.mean_quality_tier(),
              100.0 * r.multicast_bit_share);
}

}  // namespace

int main() {
  std::printf("=== AR classroom: 8 headset students, one volumetric "
              "lecture ===\n\n");

  // Baseline: what ViVo-style unicast streaming does in this room.
  SessionConfig baseline = classroom_base();
  baseline.enable_multicast = false;
  baseline.enable_custom_beams = false;
  baseline.enable_blockage_mitigation = false;
  baseline.adaptation = AdaptationPolicy::kBufferOnly;
  baseline.estimator = BandwidthEstimator::kAppOnly;
  report("unicast baseline:", Session(baseline).run());

  // The paper's cross-layer system.
  SessionConfig cross = classroom_base();
  report("cross-layer volcast:", Session(cross).run());

  // Section 5 extension: a second AP on the opposite wall.
  SessionConfig two_aps = classroom_base();
  two_aps.ap_count = 2;
  report("volcast + 2nd AP:", Session(two_aps).run());

  std::printf("\nper-student breakdown (cross-layer, single AP):\n");
  SessionConfig detail = classroom_base();
  const auto result = Session(detail).run();
  AsciiTable table;
  table.header({"student", "fps", "stall s", "mean tier", "goodput Mbps"});
  for (const auto& u : result.qoe.users) {
    table.row({std::to_string(u.user), AsciiTable::num(u.displayed_fps, 1),
               AsciiTable::num(u.stall_time_s, 2),
               AsciiTable::num(u.mean_quality_tier, 2),
               AsciiTable::num(u.mean_goodput_mbps, 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nblockage forecasts issued: %zu, reflection-beam switches: "
              "%zu\n",
              result.blockage_forecasts, result.reflection_switches);
  return 0;
}
