// Beam explorer: a terminal visualization of the paper's Fig. 3c idea —
// what the stock sector codebook radiates vs. the customized two-lobe beam
// for a concrete pair of users. Prints azimuth gain cuts as ASCII art plus
// the per-user link budget under each beam.
#include <cmath>
#include <cstdio>
#include <string>

#include "common/units.h"
#include "core/testbed.h"
#include "mmwave/beam_design.h"
#include "mmwave/link.h"

using namespace volcast;

namespace {

/// Renders an azimuth gain cut (elevation of the user ring) as bars.
void print_cut(const core::Testbed& testbed, const mmwave::Awv& beam,
               const char* title) {
  std::printf("%s\n", title);
  const auto& ap = testbed.ap();
  for (double az_deg = -60; az_deg <= 60; az_deg += 5) {
    const double az = az_deg * std::numbers::pi / 180.0;
    // Direction in the AP's local frame at a slight downward tilt,
    // rotated into the world.
    const geo::Vec3 local{std::cos(az), std::sin(az), -0.25};
    const geo::Pose& pose = ap.pose();
    const geo::Vec3 world = (pose.forward() * local.x +
                             pose.left() * local.y + pose.up() * local.z)
                                .normalized();
    const double dbi = ap.gain_dbi(beam, world);
    const int bars = std::max(0, static_cast<int>((dbi + 10.0) / 1.5));
    std::printf("%+4.0f deg %6.1f dBi |%s\n", az_deg, dbi,
                std::string(static_cast<std::size_t>(bars), '#').c_str());
  }
}

}  // namespace

int main() {
  core::Testbed testbed;
  // Two users on opposite sides of the content — the configuration where
  // the default codebook collapses (Fig. 3b) and two lobes win (Fig. 3d).
  const geo::Vec3 user1 = testbed.to_room({-1.8, -1.2, 1.5});
  const geo::Vec3 user2 = testbed.to_room({1.8, -1.0, 1.5});

  std::printf("=== Beam explorer: serving two separated users ===\n");
  std::printf("user1 at (%.1f, %.1f), user2 at (%.1f, %.1f), AP on the "
              "front wall\n\n",
              user1.x, user1.y, user2.x, user2.y);

  const geo::Vec3 group[] = {user1, user2};
  const auto stock = testbed.codebook().beam(
      testbed.codebook().best_common_beam(testbed.ap(), group));

  const mmwave::Awv b1 = testbed.ap().steer_at(user1);
  const mmwave::Awv b2 = testbed.ap().steer_at(user2);
  const double r1 = mmwave::rss_dbm(testbed.ap(), b1, testbed.channel(),
                                    user1, {}, testbed.budget());
  const double r2 = mmwave::rss_dbm(testbed.ap(), b2, testbed.channel(),
                                    user2, {}, testbed.budget());
  const mmwave::Awv beams[] = {b1, b2};
  const double rss_mw[] = {dbm_to_mw(r1), dbm_to_mw(r2)};
  const auto custom = mmwave::combine_awvs(beams, rss_mw);

  print_cut(testbed, stock, "stock common sector (one main lobe):");
  std::printf("\n");
  print_cut(testbed, custom,
            "customized beam (two lobes, RSS-weighted combination):");

  auto link = [&](const mmwave::Awv& beam, const geo::Vec3& user) {
    const double rss = mmwave::rss_dbm(testbed.ap(), beam, testbed.channel(),
                                       user, {}, testbed.budget());
    const auto mcs = testbed.mcs().select(rss);
    std::printf("  RSS %.1f dBm -> MCS %d, %.0f Mbps PHY\n", rss, mcs.index,
                mcs.phy_rate_mbps);
  };
  std::printf("\nlink budget under the stock common sector:\n");
  link(stock, user1);
  link(stock, user2);
  std::printf("link budget under the customized two-lobe beam:\n");
  link(custom, user1);
  link(custom, user2);

  std::printf("\nmulticast rate = min over members; the customized beam "
              "lifts exactly that minimum (paper Sec 4.2).\n");
  return 0;
}
