// Telepresence lecture with captured trajectories: generates a 6-student
// study, round-trips the traces through the VCTRACE text format (exactly
// what you would do with real headset captures), and replays them through
// the full cross-layer session — then asks the "what if" questions replay
// makes possible: same audience, different system configurations.
#include <cstdio>
#include <sstream>
#include <vector>

#include "core/session.h"
#include "trace/trace_io.h"
#include "trace/user_study.h"

using namespace volcast;
using namespace volcast::core;

namespace {

SessionConfig replay_config(const std::vector<trace::Trace>& traces) {
  SessionConfig c;
  c.user_count = traces.size();
  c.duration_s = 8.0;
  c.master_points = 90'000;
  c.video_frames = 30;
  c.replay_traces = traces;
  return c;
}

void report(const char* label, const SessionResult& r) {
  std::printf("%-30s fps %.1f | stall %.2f s | tier %.2f | fairness %.2f | "
              "viewport miss %.1f%%\n",
              label, r.qoe.mean_fps(), r.qoe.total_stall_s(),
              r.qoe.mean_quality_tier(), r.qoe.fairness_index(),
              100.0 * r.qoe.users.front().viewport_miss_ratio);
}

}  // namespace

int main() {
  std::printf("=== Telepresence lecture: replaying captured 6DoF traces "
              "===\n\n");

  // 1. "Capture": a 6-headset-student session.
  trace::UserStudyConfig study_config;
  study_config.smartphone_users = 0;
  study_config.headset_users = 6;
  study_config.samples_per_user = 240;
  const trace::UserStudy study(study_config);

  // 2. Serialize and re-load through the on-disk VCTRACE format — the
  // same path real captures take into the system.
  std::vector<trace::Trace> replayed;
  for (const trace::Trace& t : study.traces()) {
    std::stringstream buffer;
    trace::write_trace(buffer, t);
    replayed.push_back(trace::read_trace(buffer));
  }
  std::printf("captured %zu traces (%.1f s each at %.0f Hz), round-tripped "
              "through VCTRACE\n\n",
              replayed.size(), replayed.front().duration_s(),
              replayed.front().sample_rate_hz);

  // 3. Replay the same audience under different system configurations.
  report("full cross-layer system:",
         Session(replay_config(replayed)).run());

  SessionConfig no_multicast = replay_config(replayed);
  no_multicast.enable_multicast = false;
  report("without multicast:", Session(no_multicast).run());

  SessionConfig reactive = replay_config(replayed);
  reactive.predictive_beam_tracking = false;
  report("reactive beam training:", Session(reactive).run());

  SessionConfig no_occlusion = replay_config(replayed);
  no_occlusion.enable_user_occlusion = false;
  report("ignoring user occlusion:", Session(no_occlusion).run());

  std::printf("\nreplay is deterministic: every row above reproduces "
              "bit-identically from the same trace files.\n");
  return 0;
}
