// volcast_sim — run a configurable multi-user streaming session from the
// command line and print the QoE outcome. Every ablation switch of the
// cross-layer system is exposed as a flag, so experiments beyond the bench
// harness need no recompilation.
//
//   volcast_sim --users=6 --duration=10 --device=hm --adaptation=cross
//   volcast_sim --users=8 --aps=2 --spread=6.28
//   volcast_sim --users=5 --no-multicast --reactive-beams
//   volcast_sim --users=4 --replay=traces.dir   (one VCTRACE file per user)
//   volcast_sim --users=6 --aps=2 --chaos --chaos-intensity=1.0
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "common/flags.h"
#include "common/table.h"
#include "core/session.h"
#include "fault/fault_plan.h"
#include "obs/telemetry.h"
#include "trace/trace_io.h"

using namespace volcast;
using namespace volcast::core;

namespace {

int fail(const std::string& message) {
  std::fprintf(stderr, "volcast_sim: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags("volcast_sim",
                   "multi-user volumetric streaming session runner");
  flags.add_number("users", 4, "number of concurrent viewers");
  flags.add_number("duration", 8.0, "session length in seconds");
  flags.add_string("device", "hm", "viewer hardware: hm (headset) or ph "
                                   "(smartphone)");
  flags.add_number("points", 100000, "master content points per frame");
  flags.add_number("frames", 30, "video frames before the clip loops");
  flags.add_number("aps", 1, "number of coordinated APs (1-4)");
  flags.add_number("seed", 1, "experiment seed (bit-reproducible)");
  flags.add_number("threads", 0,
                   "worker threads for the per-tick pipeline (0 = hardware "
                   "concurrency, 1 = serial; result is bit-identical)");
  flags.add_number("spread", 2.0,
                   "audience arc around the content in radians "
                   "(6.28 = surround)");
  flags.add_number("start-tier", 2, "initial quality tier (0..2)");
  flags.add_string("adaptation", "cross",
                   "rate adaptation: none | buffer | cross");
  flags.add_string("estimator", "cross",
                   "bandwidth estimator: app | phy | cross");
  flags.add_string("grouping", "greedy",
                   "multicast grouping: unicast | pairs | greedy | "
                   "exhaustive");
  flags.add_switch("no-multicast", "disable multicast entirely");
  flags.add_switch("no-custom-beams", "stock sector beams only");
  flags.add_switch("no-mitigation", "disable proactive blockage mitigation");
  flags.add_switch("no-occlusion", "ignore user-user viewport occlusion");
  flags.add_switch("reactive-beams",
                   "reactive SLS beam training instead of predictive "
                   "tracking");
  flags.add_string("replay", "",
                   "directory of VCTRACE files (user0.trace, user1.trace, "
                   "...) to replay instead of synthetic mobility");
  flags.add_switch("chaos",
                   "inject a seeded random fault plan (AP outages, user "
                   "churn, obstacles, probe failures, frame loss, decoder "
                   "stalls) and print the recovery report");
  flags.add_number("chaos-seed", 0,
                   "fault plan seed (0 = reuse the experiment seed)");
  flags.add_number("chaos-intensity", 0.5,
                   "expected fault events per simulated second");
  flags.add_switch("per-user", "print the per-user QoE table");
  flags.add_string("timeline", "",
                   "write a per-tick CSV (t,user,buffer_s,tier,rss_dbm,"
                   "rate_mbps,blockage) to this file");
  flags.add_string("telemetry", "",
                   "write the cross-layer telemetry log (spans, events, "
                   "metrics) as JSONL to this file; inspect with "
                   "'volcast_trace summarize <file>'");
  flags.add_switch("telemetry-no-wall",
                   "omit wall-clock span times from the telemetry log "
                   "(byte-identical output across runs and thread counts)");

  std::string error;
  if (!flags.parse(argc, argv, &error)) {
    return fail(error + "\n\n" + flags.help());
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.help().c_str());
    return 0;
  }

  SessionConfig config;
  config.user_count = static_cast<std::size_t>(flags.integer("users"));
  config.duration_s = flags.num("duration");
  config.master_points = static_cast<std::size_t>(flags.integer("points"));
  config.video_frames = static_cast<std::size_t>(flags.integer("frames"));
  config.ap_count = static_cast<std::size_t>(flags.integer("aps"));
  config.seed = static_cast<std::uint64_t>(flags.integer("seed"));
  config.worker_threads = static_cast<std::size_t>(flags.integer("threads"));
  config.audience_spread_rad = flags.num("spread");
  config.start_tier = static_cast<std::size_t>(flags.integer("start-tier"));
  config.enable_multicast = !flags.on("no-multicast");
  config.enable_custom_beams = !flags.on("no-custom-beams");
  config.enable_blockage_mitigation = !flags.on("no-mitigation");
  config.enable_user_occlusion = !flags.on("no-occlusion");
  config.predictive_beam_tracking = !flags.on("reactive-beams");

  const std::string device = flags.str("device");
  if (device == "hm") {
    config.device = trace::DeviceType::kHeadset;
  } else if (device == "ph") {
    config.device = trace::DeviceType::kSmartphone;
  } else {
    return fail("unknown --device: " + device);
  }

  const std::string adaptation = flags.str("adaptation");
  if (adaptation == "none") {
    config.adaptation = AdaptationPolicy::kNone;
  } else if (adaptation == "buffer") {
    config.adaptation = AdaptationPolicy::kBufferOnly;
  } else if (adaptation == "cross") {
    config.adaptation = AdaptationPolicy::kCrossLayer;
  } else {
    return fail("unknown --adaptation: " + adaptation);
  }

  const std::string estimator = flags.str("estimator");
  if (estimator == "app") {
    config.estimator = BandwidthEstimator::kAppOnly;
  } else if (estimator == "phy") {
    config.estimator = BandwidthEstimator::kPhyOnly;
  } else if (estimator == "cross") {
    config.estimator = BandwidthEstimator::kCrossLayer;
  } else {
    return fail("unknown --estimator: " + estimator);
  }

  const std::string grouping = flags.str("grouping");
  if (grouping == "unicast") {
    config.grouping = GroupingPolicy::kUnicastOnly;
  } else if (grouping == "pairs") {
    config.grouping = GroupingPolicy::kPairsOnly;
  } else if (grouping == "greedy") {
    config.grouping = GroupingPolicy::kGreedyIoU;
  } else if (grouping == "exhaustive") {
    config.grouping = GroupingPolicy::kExhaustive;
  } else {
    return fail("unknown --grouping: " + grouping);
  }

  const std::string replay_dir = flags.str("replay");
  if (!replay_dir.empty()) {
    for (std::size_t u = 0; u < config.user_count; ++u) {
      const auto path = std::filesystem::path(replay_dir) /
                        ("user" + std::to_string(u) + ".trace");
      std::ifstream in(path);
      if (!in) return fail("cannot open replay trace: " + path.string());
      try {
        config.replay_traces.push_back(trace::read_trace(in));
      } catch (const std::exception& e) {
        return fail(path.string() + ": " + e.what());
      }
    }
  }

  if (flags.on("chaos")) {
    fault::ChaosConfig chaos;
    const auto chaos_seed =
        static_cast<std::uint64_t>(flags.integer("chaos-seed"));
    chaos.seed = chaos_seed != 0 ? chaos_seed : config.seed;
    chaos.duration_s = config.duration_s;
    chaos.user_count = config.user_count;
    chaos.ap_count = config.ap_count;
    chaos.intensity = flags.num("chaos-intensity");
    config.fault_plan = fault::random_plan(chaos);
    std::printf("%s", config.fault_plan.summary().c_str());
  }

  std::ofstream timeline;
  const std::string timeline_path = flags.str("timeline");
  if (!timeline_path.empty()) {
    timeline.open(timeline_path);
    if (!timeline) return fail("cannot open " + timeline_path);
    timeline << "t,user,buffer_s,tier,rss_dbm,rate_mbps,blockage\n";
    config.tick_observer = [&timeline](const TickSample& s) {
      timeline << s.t_s << ',' << s.user << ',' << s.buffer_s << ','
               << s.tier << ',' << s.rss_dbm << ',' << s.rate_mbps << ','
               << (s.blockage_forecast ? 1 : 0) << '\n';
    };
  }

  obs::TelemetryOptions telemetry_options;
  telemetry_options.capture_wall_time = !flags.on("telemetry-no-wall");
  obs::Telemetry telemetry(telemetry_options);
  const std::string telemetry_path = flags.str("telemetry");
  if (!telemetry_path.empty()) config.telemetry = &telemetry;

  SessionResult result;
  try {
    Session session(config);
    result = session.run();
  } catch (const std::invalid_argument& e) {
    return fail(std::string("invalid configuration: ") + e.what());
  }
  if (timeline.is_open())
    std::printf("timeline written to %s\n", timeline_path.c_str());
  if (!telemetry_path.empty()) {
    std::ofstream out(telemetry_path);
    if (!out) return fail("cannot open " + telemetry_path);
    telemetry.write_jsonl(out);
    std::printf("telemetry written to %s (%zu spans, %zu events)\n",
                telemetry_path.c_str(), telemetry.span_count(),
                telemetry.event_count());
  }

  std::printf("session: %zu %s users, %.1f s, %zu AP(s)\n",
              config.user_count, device.c_str(), config.duration_s,
              config.ap_count);
  std::printf("mean fps %.1f | min fps %.1f | total stall %.2f s | mean "
              "tier %.2f | fairness %.2f\n",
              result.qoe.mean_fps(), result.qoe.min_fps(),
              result.qoe.total_stall_s(), result.qoe.mean_quality_tier(),
              result.qoe.fairness_index());
  std::printf("motion-to-photon: mean %.1f ms, max %.1f ms (user 0)\n",
              1e3 * result.qoe.users.front().mean_m2p_latency_s,
              1e3 * result.qoe.users.front().max_m2p_latency_s);
  std::printf("multicast bit share %.2f | mean group %.2f | custom beams "
              "%zu | stock %zu\n",
              result.multicast_bit_share, result.mean_group_size,
              result.custom_beam_uses, result.stock_beam_uses);
  std::printf("blockage forecasts %zu | reflection switches %zu | outage "
              "user-ticks %zu\n",
              result.blockage_forecasts, result.reflection_switches,
              result.outage_user_ticks);
  std::printf("SLS sweeps %zu | sweep outage ticks %zu | airtime "
              "utilization %.2f | dropped ticks %zu\n",
              result.sls_sweeps, result.sls_outage_ticks,
              result.mean_airtime_utilization, result.dropped_ticks);
  if (!config.fault_plan.empty())
    std::printf("%s", result.faults.summary().c_str());

  if (flags.on("per-user")) {
    AsciiTable table;
    table.header({"user", "fps", "stall s", "tier", "goodput Mbps",
                  "switches"});
    for (const auto& u : result.qoe.users) {
      table.row({std::to_string(u.user), AsciiTable::num(u.displayed_fps, 1),
                 AsciiTable::num(u.stall_time_s, 2),
                 AsciiTable::num(u.mean_quality_tier, 2),
                 AsciiTable::num(u.mean_goodput_mbps, 1),
                 std::to_string(u.quality_switches)});
    }
    std::printf("%s", table.render().c_str());
  }
  return 0;
}
