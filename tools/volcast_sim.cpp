// volcast_sim — run a configurable multi-user streaming session from the
// command line and print the QoE outcome. Every ablation switch of the
// cross-layer system is exposed as a flag, so experiments beyond the bench
// harness need no recompilation.
//
//   volcast_sim --users=6 --duration=10 --device=hm --adaptation=cross
//   volcast_sim --users=8 --aps=2 --spread=6.28
//   volcast_sim --users=5 --no-multicast --reactive-beams
//   volcast_sim --users=4 --replay=traces.dir   (one VCTRACE file per user)
//   volcast_sim --users=6 --aps=2 --chaos --chaos-intensity=1.0
//   volcast_sim --users=4 --policy=grouping=pairs_only,beam=reactive
//   volcast_sim --users=4 --fleet=8             (8 seeded rooms, aggregated)
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "common/flags.h"
#include "common/table.h"
#include "core/checkpoint.h"
#include "core/fleet.h"
#include "core/workload_bundle.h"
#include "core/session.h"
#include "fault/fault_plan.h"
#include "obs/telemetry.h"
#include "trace/trace_io.h"

using namespace volcast;
using namespace volcast::core;

namespace {

int fail(const std::string& message) {
  std::fprintf(stderr, "volcast_sim: %s\n", message.c_str());
  return 1;
}

const FlagChoices<trace::DeviceType> kDeviceChoices{
    {"hm", trace::DeviceType::kHeadset},
    {"ph", trace::DeviceType::kSmartphone}};
const FlagChoices<AdaptationPolicy> kAdaptationChoices{
    {"none", AdaptationPolicy::kNone},
    {"buffer", AdaptationPolicy::kBufferOnly},
    {"cross", AdaptationPolicy::kCrossLayer}};
const FlagChoices<BandwidthEstimator> kEstimatorChoices{
    {"app", BandwidthEstimator::kAppOnly},
    {"phy", BandwidthEstimator::kPhyOnly},
    {"cross", BandwidthEstimator::kCrossLayer}};
const FlagChoices<GroupingPolicy> kGroupingChoices{
    {"unicast", GroupingPolicy::kUnicastOnly},
    {"pairs", GroupingPolicy::kPairsOnly},
    {"greedy", GroupingPolicy::kGreedyIoU},
    {"exhaustive", GroupingPolicy::kExhaustive}};

void print_session_result(const SessionConfig& config,
                          const SessionResult& result,
                          const std::string& device, bool per_user) {
  std::printf("session: %zu %s users, %.1f s, %zu AP(s)\n",
              config.user_count, device.c_str(), config.duration_s,
              config.ap_count);
  std::printf("mean fps %.1f | min fps %.1f | total stall %.2f s | mean "
              "tier %.2f | fairness %.2f\n",
              result.qoe.mean_fps(), result.qoe.min_fps(),
              result.qoe.total_stall_s(), result.qoe.mean_quality_tier(),
              result.qoe.fairness_index());
  std::printf("motion-to-photon: mean %.1f ms, max %.1f ms (user 0)\n",
              1e3 * result.qoe.users.front().mean_m2p_latency_s,
              1e3 * result.qoe.users.front().max_m2p_latency_s);
  std::printf("multicast bit share %.2f | mean group %.2f | custom beams "
              "%zu | stock %zu\n",
              result.multicast_bit_share, result.mean_group_size,
              result.custom_beam_uses, result.stock_beam_uses);
  std::printf("blockage forecasts %zu | reflection switches %zu | outage "
              "user-ticks %zu\n",
              result.blockage_forecasts, result.reflection_switches,
              result.outage_user_ticks);
  std::printf("SLS sweeps %zu | sweep outage ticks %zu | airtime "
              "utilization %.2f | dropped ticks %zu\n",
              result.sls_sweeps, result.sls_outage_ticks,
              result.mean_airtime_utilization, result.dropped_ticks);
  if (!config.fault_plan.empty())
    std::printf("%s", result.faults.summary().c_str());
  if (result.transport.trains > 0) {
    const auto& w = result.transport;
    std::printf("wire: %llu trains, %llu data + %llu parity pkts, %llu "
                "lost, %llu retransmitted\n",
                static_cast<unsigned long long>(w.trains),
                static_cast<unsigned long long>(w.data_packets),
                static_cast<unsigned long long>(w.parity_packets),
                static_cast<unsigned long long>(w.lost_packets),
                static_cast<unsigned long long>(w.retransmitted_packets));
    std::printf("wire recovery: %llu tiles by FEC, %llu by NACK, %llu "
                "deadline-missed | residual loss %.4f\n",
                static_cast<unsigned long long>(w.fec_recovered_tiles),
                static_cast<unsigned long long>(w.nack_recovered_tiles),
                static_cast<unsigned long long>(w.deadline_missed_tiles),
                w.residual_loss_mean);
    if (w.recovery_ms_max > 0.0)
      std::printf("wire recovery latency: p50 %.1f ms, p99 %.1f ms, max "
                  "%.1f ms\n",
                  w.recovery_ms_p50, w.recovery_ms_p99, w.recovery_ms_max);
  }
  if (result.tiles.requests > 0) {
    const auto& t = result.tiles;
    std::printf("tiles: %llu assembled = %llu encoded + %llu stitched "
                "(%.0f%% reuse)\n",
                static_cast<unsigned long long>(t.requests),
                static_cast<unsigned long long>(t.encoded_tiles),
                static_cast<unsigned long long>(t.stitched_tiles),
                100.0 * static_cast<double>(t.stitched_tiles) /
                    static_cast<double>(t.requests));
    std::printf("tile encode: %.2f MB total, %.2f MB/user | stitched %.2f "
                "MB saved\n",
                static_cast<double>(t.encoded_bytes) / 1e6,
                static_cast<double>(t.encoded_bytes) / 1e6 /
                    static_cast<double>(config.user_count),
                static_cast<double>(t.stitched_bytes) / 1e6);
  }

  if (per_user) {
    AsciiTable table;
    table.header({"user", "fps", "stall s", "tier", "goodput Mbps",
                  "switches"});
    for (const auto& u : result.qoe.users) {
      table.row({std::to_string(u.user), AsciiTable::num(u.displayed_fps, 1),
                 AsciiTable::num(u.stall_time_s, 2),
                 AsciiTable::num(u.mean_quality_tier, 2),
                 AsciiTable::num(u.mean_goodput_mbps, 1),
                 std::to_string(u.quality_switches)});
    }
    std::printf("%s", table.render().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags("volcast_sim",
                   "multi-user volumetric streaming session runner");
  flags.add_number("users", 4, "number of concurrent viewers");
  flags.add_number("duration", 8.0, "session length in seconds");
  flags.add_string("device", "hm", "viewer hardware: " + kDeviceChoices.names());
  flags.add_number("points", 100000, "master content points per frame");
  flags.add_number("frames", 30, "video frames before the clip loops");
  flags.add_number("aps", 1, "number of coordinated APs (1-4)");
  flags.add_number("seed", 1, "experiment seed (bit-reproducible)");
  flags.add_number("threads", 0,
                   "worker threads for the per-tick pipeline (0 = hardware "
                   "concurrency, 1 = serial; result is bit-identical)");
  flags.add_number("spread", 2.0,
                   "audience arc around the content in radians "
                   "(6.28 = surround)");
  flags.add_number("start-tier", 2, "initial quality tier (0..2)");
  flags.add_string("adaptation", "cross",
                   "rate adaptation: " + kAdaptationChoices.names());
  flags.add_string("estimator", "cross",
                   "bandwidth estimator: " + kEstimatorChoices.names());
  flags.add_string("grouping", "greedy",
                   "multicast grouping: " + kGroupingChoices.names());
  flags.add_switch("no-multicast", "disable multicast entirely");
  flags.add_switch("no-custom-beams", "stock sector beams only");
  flags.add_switch("no-mitigation", "disable proactive blockage mitigation");
  flags.add_switch("no-occlusion", "ignore user-user viewport occlusion");
  flags.add_switch("reactive-beams",
                   "reactive SLS beam training instead of predictive "
                   "tracking");
  flags.add_string("policy", "",
                   "pipeline policy overrides by registry name, applied on "
                   "top of the ablation flags: slot=name[,slot=name...], "
                   "e.g. grouping=pairs_only,beam=reactive (slots: "
                   "prediction, beam, adaptation, mitigation, grouping, "
                   "tiling, transport)");
  flags.add_switch("tile-cache",
                   "encode-once/serve-many tile assembly (shorthand for "
                   "--policy tiling=shared): the first touch of each "
                   "(frame, tier, cell) tile encodes it, every repeat is "
                   "stitched from cache; with --fleet all slots share one "
                   "cache");
  flags.add_number("content-seed", 0,
                   "pin the video content identity regardless of --seed "
                   "(0 = derive from --seed); lets fleet slots stream the "
                   "same content and share tiles across the fleet cache");
  flags.add_switch("bundle",
                   "share one workload bundle (generated video, codec "
                   "tables, occupancy precompute) across all --fleet slots "
                   "instead of rebuilding per slot; pins --content-seed to "
                   "--seed when unset so every slot streams the same "
                   "content");
  flags.add_number("fleet", 0,
                   "run N independently-seeded sessions (seed, seed+1, ...) "
                   "and print aggregate fleet statistics (0 = single "
                   "session)");
  flags.add_number("fleet-parallel", 0,
                   "sessions simulated concurrently in fleet mode (0 = "
                   "hardware concurrency; results are bit-identical at any "
                   "value)");
  flags.add_number("fleet-retries", 0,
                   "retries per failed fleet slot with a deterministically "
                   "derived seed (0 = first failure is final; deadline "
                   "overruns are never retried)");
  flags.add_number("fleet-tick-budget", 0,
                   "logical per-session deadline in ticks; an overrunning "
                   "slot is recorded as deadline-exceeded (0 = unlimited)");
  flags.add_string("fleet-checkpoint", "",
                   "rewrite this file with every finished slot (atomic "
                   "replace); resume a killed run with --fleet-resume");
  flags.add_string("fleet-resume", "",
                   "restore finished slots from this checkpoint and run "
                   "only the missing ones (bit-identical to an "
                   "uninterrupted run)");
  flags.add_number("fleet-kill-after", 0,
                   "test hook: abort the fleet after N newly finished "
                   "slots (simulates an operator kill; 0 = off)");
  flags.add_string("replay", "",
                   "directory of VCTRACE files (user0.trace, user1.trace, "
                   "...) to replay instead of synthetic mobility");
  flags.add_switch("chaos",
                   "inject a seeded random fault plan (AP outages, user "
                   "churn, obstacles, probe failures, frame loss, decoder "
                   "stalls) and print the recovery report");
  flags.add_number("chaos-seed", 0,
                   "fault plan seed (0 = reuse the experiment seed)");
  flags.add_number("chaos-intensity", 0.5,
                   "expected fault events per simulated second");
  flags.add_number("chaos-crash", 0.0,
                   "add a session-crash fault firing with this probability "
                   "(0 = no crash fault; with --fleet, crashed slots are "
                   "supervised instead of aborting the fleet)");
  flags.add_number("chaos-burst-loss", 0.0,
                   "add correlated burst-loss windows with this bad-state "
                   "packet-loss probability (needs a wire policy, e.g. "
                   "--policy transport=hybrid, to have any effect)");
  flags.add_switch("per-user", "print the per-user QoE table");
  flags.add_string("timeline", "",
                   "write a per-tick CSV (t,user,buffer_s,tier,rss_dbm,"
                   "rate_mbps,blockage) to this file");
  flags.add_string("telemetry", "",
                   "write the cross-layer telemetry log (spans, events, "
                   "metrics) as JSONL to this file; inspect with "
                   "'volcast_trace summarize <file>'");
  flags.add_switch("telemetry-no-wall",
                   "omit wall-clock span times from the telemetry log "
                   "(byte-identical output across runs and thread counts)");

  std::string error;
  if (!flags.parse(argc, argv, &error)) {
    return fail(error + "\n\n" + flags.help());
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.help().c_str());
    return 0;
  }

  SessionConfig config;
  config.user_count = flags.size("users");
  config.duration_s = flags.num("duration");
  config.master_points = flags.size("points");
  config.video_frames = flags.size("frames");
  config.ap_count = flags.size("aps");
  config.seed = flags.u64("seed");
  config.worker_threads = flags.size("threads");
  config.audience_spread_rad = flags.num("spread");
  config.start_tier = flags.size("start-tier");
  config.enable_multicast = !flags.on("no-multicast");
  config.enable_custom_beams = !flags.on("no-custom-beams");
  config.enable_blockage_mitigation = !flags.on("no-mitigation");
  config.enable_user_occlusion = !flags.on("no-occlusion");
  config.predictive_beam_tracking = !flags.on("reactive-beams");

  const std::string device = flags.str("device");
  if (const auto v = kDeviceChoices.parse(device)) {
    config.device = *v;
  } else {
    return fail("unknown --device: " + device + " (expected " +
                kDeviceChoices.names() + ")");
  }
  if (const auto v = kAdaptationChoices.parse(flags.str("adaptation"))) {
    config.adaptation = *v;
  } else {
    return fail("unknown --adaptation: " + flags.str("adaptation") +
                " (expected " + kAdaptationChoices.names() + ")");
  }
  if (const auto v = kEstimatorChoices.parse(flags.str("estimator"))) {
    config.estimator = *v;
  } else {
    return fail("unknown --estimator: " + flags.str("estimator") +
                " (expected " + kEstimatorChoices.names() + ")");
  }
  if (const auto v = kGroupingChoices.parse(flags.str("grouping"))) {
    config.grouping = *v;
  } else {
    return fail("unknown --grouping: " + flags.str("grouping") +
                " (expected " + kGroupingChoices.names() + ")");
  }

  const auto overrides = parse_key_value_list(flags.str("policy"), &error);
  if (!overrides) return fail("--policy: " + error);
  for (const auto& [slot, name] : *overrides)
    config.policy_overrides[slot] = name;
  if (flags.on("tile-cache") && config.policy_overrides.count("tiling") == 0)
    config.policy_overrides["tiling"] = "shared";
  config.content_seed = flags.u64("content-seed");
  if (flags.on("bundle") && config.content_seed == 0)
    config.content_seed = config.seed != 0 ? config.seed : 1;

  const std::string replay_dir = flags.str("replay");
  if (!replay_dir.empty()) {
    for (std::size_t u = 0; u < config.user_count; ++u) {
      const auto path = std::filesystem::path(replay_dir) /
                        ("user" + std::to_string(u) + ".trace");
      std::ifstream in(path);
      if (!in) return fail("cannot open replay trace: " + path.string());
      try {
        config.replay_traces.push_back(trace::read_trace(in));
      } catch (const std::exception& e) {
        return fail(path.string() + ": " + e.what());
      }
    }
  }

  if (flags.on("chaos")) {
    fault::ChaosConfig chaos;
    const auto chaos_seed = flags.u64("chaos-seed");
    chaos.seed = chaos_seed != 0 ? chaos_seed : config.seed;
    chaos.duration_s = config.duration_s;
    chaos.user_count = config.user_count;
    chaos.ap_count = config.ap_count;
    chaos.intensity = flags.num("chaos-intensity");
    chaos.crash_probability = flags.num("chaos-crash");
    chaos.burst_loss_probability = flags.num("chaos-burst-loss");
    config.fault_plan = fault::random_plan(chaos);
    std::printf("%s", config.fault_plan.summary().c_str());
  }

  // ---- fleet mode: N seeded rooms, aggregate statistics -----------------
  const std::size_t fleet_size = flags.size("fleet");
  if (fleet_size > 0) {
    if (!flags.str("timeline").empty() || !flags.str("telemetry").empty())
      return fail("--timeline/--telemetry are per-session sinks; not "
                  "available with --fleet");
    FleetConfig fc;
    fc.session = config;
    fc.sessions = fleet_size;
    fc.parallel_sessions = flags.size("fleet-parallel");
    fc.supervision.max_retries = flags.size("fleet-retries");
    fc.supervision.tick_budget = flags.size("fleet-tick-budget");
    fc.checkpoint_file = flags.str("fleet-checkpoint");
    fc.resume_file = flags.str("fleet-resume");
    fc.kill_after_slots = flags.size("fleet-kill-after");
    if (!fc.resume_file.empty()) {
      try {
        const FleetCheckpoint ckpt = load_checkpoint(fc.resume_file);
        std::printf("resuming: %zu of %u slots restored from %s\n",
                    ckpt.records.size(), ckpt.slot_count,
                    fc.resume_file.c_str());
      } catch (const CheckpointError& e) {
        return fail(std::string("checkpoint rejected: ") + e.what());
      }
    }
    FleetResult fleet;
    try {
      fleet = run_fleet(fc);
    } catch (const std::invalid_argument& e) {
      return fail(std::string("invalid configuration: ") + e.what());
    } catch (const FleetKilled& e) {
      std::fprintf(stderr, "volcast_sim: %s\n", e.what());
      if (!fc.checkpoint_file.empty())
        std::fprintf(stderr,
                     "volcast_sim: checkpoint written to %s; resume with "
                     "--fleet-resume=%s\n",
                     fc.checkpoint_file.c_str(), fc.checkpoint_file.c_str());
      return 3;
    } catch (const CheckpointError& e) {
      return fail(std::string("checkpoint rejected: ") + e.what());
    }
    std::printf("fleet: %zu sessions x %zu %s users (seeds %llu..%llu), "
                "%.1f s each\n",
                fc.sessions, config.user_count, device.c_str(),
                static_cast<unsigned long long>(config.seed),
                static_cast<unsigned long long>(config.seed + fc.sessions - 1),
                config.duration_s);
    if (config.content_seed != 0)
      std::printf("bundle: one shared workload bundle %016llx (content "
                  "seed %llu) served every slot's setup\n",
                  static_cast<unsigned long long>(
                      workload_bundle_hash(fc.session)),
                  static_cast<unsigned long long>(config.content_seed));
    std::printf("supported users %zu / %zu (>= %.1f fps)\n",
                fleet.supported_users, fleet.total_users,
                fc.supported_fps_threshold);
    std::printf("displayed fps: mean %.1f | p5 %.1f | p50 %.1f | p95 %.1f\n",
                fleet.mean_displayed_fps, fleet.p5_displayed_fps,
                fleet.p50_displayed_fps, fleet.p95_displayed_fps);
    std::printf("stall ratio mean %.3f | p95 stall %.2f s | mean tier "
                "%.2f\n",
                fleet.mean_stall_ratio, fleet.p95_stall_time_s,
                fleet.mean_quality_tier);
    if (fleet.tiles.requests > 0) {
      const auto& t = fleet.tiles;
      std::printf("tiles (fleet): %llu assembled = %llu encoded + %llu "
                  "stitched | encode %.2f MB, saved %.2f MB\n",
                  static_cast<unsigned long long>(t.requests),
                  static_cast<unsigned long long>(t.encoded_tiles),
                  static_cast<unsigned long long>(t.stitched_tiles),
                  static_cast<double>(t.encoded_bytes) / 1e6,
                  static_cast<double>(t.stitched_bytes) / 1e6);
    }
    if (fleet.aborted_slots > 0 || fleet.retried_slots > 0) {
      std::printf("supervision: %zu of %zu slots aborted | %zu "
                  "quarantined | %zu completed after retry\n",
                  fleet.aborted_slots, fc.sessions,
                  fleet.quarantined_slots, fleet.retried_slots);
      for (std::size_t k = 0; k < fleet.outcomes.size(); ++k) {
        const SlotOutcome& o = fleet.outcomes[k];
        if (o.status == SlotStatus::kCompleted && o.attempts == 1) continue;
        std::printf("  slot %zu: %s (%s, %u attempt(s)%s)%s%s\n", k,
                    to_string(o.status), to_string(o.error_class),
                    o.attempts,
                    o.backoff_ticks > 0
                        ? (", backoff " + std::to_string(o.backoff_ticks) +
                           " ticks").c_str()
                        : "",
                    o.message.empty() ? "" : ": ",
                    o.message.c_str());
      }
    }
    if (flags.on("per-user")) {
      AsciiTable table;
      table.header({"session", "status", "mean fps", "min fps", "stall s",
                    "tier"});
      for (std::size_t k = 0; k < fleet.sessions.size(); ++k) {
        const auto& qoe = fleet.sessions[k].qoe;
        const bool ok = fleet.outcomes[k].status == SlotStatus::kCompleted;
        table.row({std::to_string(k), to_string(fleet.outcomes[k].status),
                   ok ? AsciiTable::num(qoe.mean_fps(), 1) : "-",
                   ok ? AsciiTable::num(qoe.min_fps(), 1) : "-",
                   ok ? AsciiTable::num(qoe.total_stall_s(), 2) : "-",
                   ok ? AsciiTable::num(qoe.mean_quality_tier(), 2) : "-"});
      }
      std::printf("%s", table.render().c_str());
    }
    return 0;
  }

  std::ofstream timeline;
  const std::string timeline_path = flags.str("timeline");
  if (!timeline_path.empty()) {
    timeline.open(timeline_path);
    if (!timeline) return fail("cannot open " + timeline_path);
    timeline << "t,user,buffer_s,tier,rss_dbm,rate_mbps,blockage\n";
    config.tick_observer = [&timeline](const TickSample& s) {
      timeline << s.t_s << ',' << s.user << ',' << s.buffer_s << ','
               << s.tier << ',' << s.rss_dbm << ',' << s.rate_mbps << ','
               << (s.blockage_forecast ? 1 : 0) << '\n';
    };
  }

  obs::TelemetryOptions telemetry_options;
  telemetry_options.capture_wall_time = !flags.on("telemetry-no-wall");
  obs::Telemetry telemetry(telemetry_options);
  const std::string telemetry_path = flags.str("telemetry");
  if (!telemetry_path.empty()) config.telemetry = &telemetry;

  SessionResult result;
  try {
    Session session(config);
    result = session.run();
  } catch (const std::invalid_argument& e) {
    return fail(std::string("invalid configuration: ") + e.what());
  } catch (const fault::SessionCrashFault& e) {
    std::fprintf(stderr,
                 "volcast_sim: session crashed (injected fault): %s\n"
                 "volcast_sim: run under --fleet for supervised retry and "
                 "checkpointing\n",
                 e.what());
    return 2;
  } catch (const DeadlineExceeded& e) {
    std::fprintf(stderr, "volcast_sim: %s\n", e.what());
    return 2;
  }
  if (timeline.is_open())
    std::printf("timeline written to %s\n", timeline_path.c_str());
  if (!telemetry_path.empty()) {
    std::ofstream out(telemetry_path);
    if (!out) return fail("cannot open " + telemetry_path);
    telemetry.write_jsonl(out);
    std::printf("telemetry written to %s (%zu spans, %zu events)\n",
                telemetry_path.c_str(), telemetry.span_count(),
                telemetry.event_count());
  }

  print_session_result(config, result, device, flags.on("per-user"));
  return 0;
}
