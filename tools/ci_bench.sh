#!/usr/bin/env bash
# Runs the benchmark suite and refreshes the perf-trajectory files at the
# repo root (BENCH_micro.json / BENCH_scaling.json), then compares the
# fresh numbers against the baselines committed at HEAD: any shared
# benchmark that slowed down by more than the tolerance fails the run.
#
#   tools/ci_bench.sh [build-dir]      # default: build-bench
#
# Benchmarks are built Release in their own tree (default build-bench, so
# the developer build directory keeps its own configuration): gating wall
# clock on a debug build measures the sanitizer/assert tax, not the code.
#
# Environment:
#   VOLCAST_BENCH_TOLERANCE   allowed fractional slowdown (default 0.20)
#   VOLCAST_BENCH_NO_CHECK=1  refresh the JSON files, skip the comparison
#                             (use when intentionally re-baselining)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-bench}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target bench_micro bench_system_scaling bench_fleet bench_transport \
           bench_tile_cache

# Repetitions + median: single-shot times on a shared box swing well past
# any useful tolerance; the median of 3 is stable enough to gate on.
"$BUILD_DIR"/bench/bench_micro \
  --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
  --benchmark_out=BENCH_micro.json --benchmark_out_format=json
"$BUILD_DIR"/bench/bench_system_scaling --json BENCH_scaling.json
"$BUILD_DIR"/bench/bench_fleet --json BENCH_fleet.tmp.json
"$BUILD_DIR"/bench/bench_transport --json BENCH_transport.tmp.json
"$BUILD_DIR"/bench/bench_tile_cache --json BENCH_tile_cache.tmp.json

# Fold the fleet and transport sweeps into BENCH_scaling.json ("fleet" /
# "transport" keys) and stamp the machine context the numbers were taken
# on, so one committed file carries the whole scaling trajectory and a
# baseline from a different box or build type is recognisable as such.
BENCH_BUILD_DIR="$BUILD_DIR" python3 - <<'EOF'
import json, os, re
with open("BENCH_scaling.json") as f:
    doc = json.load(f)
with open("BENCH_fleet.tmp.json") as f:
    doc["fleet"] = json.load(f)
with open("BENCH_transport.tmp.json") as f:
    doc["transport"] = json.load(f)
with open("BENCH_tile_cache.tmp.json") as f:
    doc["tile_cache"] = json.load(f)
build_type = "unknown"
try:
    with open(os.path.join(os.environ["BENCH_BUILD_DIR"],
                           "CMakeCache.txt")) as f:
        m = re.search(r"^CMAKE_BUILD_TYPE:\w+=(.*)$", f.read(), re.M)
        if m and m.group(1):
            build_type = m.group(1)
except OSError:
    pass
doc["context"] = {"num_cpus": os.cpu_count(),
                  "library_build_type": build_type}
with open("BENCH_scaling.json", "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
EOF
rm -f BENCH_fleet.tmp.json BENCH_transport.tmp.json BENCH_tile_cache.tmp.json

if [[ "${VOLCAST_BENCH_NO_CHECK:-0}" == "1" ]]; then
  echo "ci_bench: baseline check skipped (VOLCAST_BENCH_NO_CHECK=1)"
  exit 0
fi

python3 - <<'EOF'
import json, os, subprocess, sys

tol = float(os.environ.get("VOLCAST_BENCH_TOLERANCE", "0.20"))

# Build-type guard: a debug-built library produced the stale 0.76-1.01x
# run_speedup baselines this file once carried — never let non-Release
# numbers gate (or seed) the trajectory again.
with open("BENCH_scaling.json") as f:
    build_type = json.load(f).get("context", {}).get("library_build_type")
if build_type != "Release":
    print(f"ci_bench: FAIL — benchmarks ran against a "
          f"'{build_type}' build; only Release numbers may gate or seed "
          f"the baselines")
    sys.exit(1)

def committed(path):
    """The baseline committed at HEAD, or None when this run seeds it."""
    try:
        out = subprocess.run(["git", "show", f"HEAD:{path}"],
                             capture_output=True, check=True)
        return json.loads(out.stdout)
    except (subprocess.CalledProcessError, json.JSONDecodeError):
        return None

fails = []

base = committed("BENCH_micro.json")
if base is None:
    print("ci_bench: no committed BENCH_micro.json baseline, seeding it")
else:
    with open("BENCH_micro.json") as f:
        cur = json.load(f)
    # Median cpu_time: cpu_time ignores preemption on a shared box,
    # the median ignores the odd slow repetition.
    def medians(doc):
        out = {}
        for b in doc.get("benchmarks", []):
            if b.get("aggregate_name") == "median":
                out[b.get("run_name", b["name"])] = \
                    b.get("cpu_time", b.get("real_time", 0.0))
        return out
    ref = medians(base)
    for name, t in medians(cur).items():
        old = ref.get(name)
        if old and old > 0:
            ratio = t / old
            if ratio > 1 + tol:
                fails.append(f"micro {name}: {ratio:.2f}x baseline")

base = committed("BENCH_scaling.json")
if base is None:
    print("ci_bench: no committed BENCH_scaling.json baseline, seeding it")
else:
    with open("BENCH_scaling.json") as f:
        cur = json.load(f)
    ref = {e["users"]: e for e in base.get("throughput", [])}
    for e in cur.get("throughput", []):
        old = ref.get(e["users"])
        if not old:
            continue
        for key in ("serial_run_s", "parallel_run_s"):
            # Entries under a quarter second are dominated by scheduler
            # noise, not by the pipeline — only the longer runs gate.
            if old.get(key, 0) >= 0.25:
                ratio = e[key] / old[key]
                if ratio > 1 + tol:
                    fails.append(
                        f"scaling users={e['users']} {key}: "
                        f"{ratio:.2f}x baseline")
    transport_ref = {e["policy"]: e
                     for e in base.get("transport", {}).get("policies", [])}
    for e in cur.get("transport", {}).get("policies", []):
        old = transport_ref.get(e["policy"])
        if not old:
            continue
        if old.get("sweep_s", 0) >= 0.25:
            ratio = e["sweep_s"] / old["sweep_s"]
            if ratio > 1 + tol:
                fails.append(
                    f"transport policy={e['policy']} sweep_s: "
                    f"{ratio:.2f}x baseline")
    fleet_ref = {e["sessions"]: e
                 for e in base.get("fleet", {}).get("scaling", [])}
    for e in cur.get("fleet", {}).get("scaling", []):
        old = fleet_ref.get(e["sessions"])
        if not old:
            continue
        for key in ("serial_s", "parallel_s", "supervised_s"):
            if old.get(key, 0) >= 0.25:
                ratio = e[key] / old[key]
                if ratio > 1 + tol:
                    fails.append(
                        f"fleet sessions={e['sessions']} {key}: "
                        f"{ratio:.2f}x baseline")
    # Setup amortization: the shared-WorkloadBundle acceptance bar. An
    # 8-slot fleet's total setup (bundle build + 8 bundled constructions)
    # must stay within 1.5x one session's setup — the absolute gate — and
    # the timed entries also ride the usual wall-clock tolerance.
    cur_setup = cur.get("fleet", {}).get("setup", {})
    if cur_setup:
        if cur_setup["amortization_8"] > 1.5:
            fails.append(
                f"fleet setup amortization_8: "
                f"{cur_setup['amortization_8']:.2f}x > 1.5x single-session "
                f"setup (lost the shared-bundle win)")
        ref_setup = base.get("fleet", {}).get("setup", {})
        for key in ("single_s", "shared8_s"):
            if ref_setup.get(key, 0) >= 0.25:
                ratio = cur_setup[key] / ref_setup[key]
                if ratio > 1 + tol:
                    fails.append(
                        f"fleet setup {key}: {ratio:.2f}x baseline")
    # Tile cache: encode_ratio and hit_rate are deterministic logical
    # quantities (first-touch accounting / serial fleet run), so they gate
    # exactly — any drift is a behavior change, not noise. Wall clock
    # gates like the other suites, on entries long enough to measure.
    tile_ref = {(e["users"], e["spread_rad"]): e
                for e in base.get("tile_cache", {}).get("sessions", [])}
    for e in cur.get("tile_cache", {}).get("sessions", []):
        old = tile_ref.get((e["users"], e["spread_rad"]))
        if not old:
            continue
        for key in ("encode_ratio", "hit_rate"):
            if abs(e[key] - old[key]) > 1e-9:
                fails.append(
                    f"tile_cache users={e['users']} "
                    f"spread={e['spread_rad']} {key}: "
                    f"{e[key]:.4f} vs baseline {old[key]:.4f}")
        for key in ("off_s", "shared_s"):
            if old.get(key, 0) >= 0.25:
                ratio = e[key] / old[key]
                if ratio > 1 + tol:
                    fails.append(
                        f"tile_cache users={e['users']} "
                        f"spread={e['spread_rad']} {key}: "
                        f"{ratio:.2f}x baseline")
        if e["users"] == 8 and e["spread_rad"] <= 1.5:
            # The acceptance bar from the tile-cache PR: 8 users in <= 2
            # viewport clusters must encode >= 2x cheaper per user.
            if e["encode_ratio"] > 0.5:
                fails.append(
                    f"tile_cache users=8 clustered: encode_ratio "
                    f"{e['encode_ratio']:.3f} > 0.5 (lost the 2x win)")
    tile_fleet = cur.get("tile_cache", {}).get("fleet", {})
    tile_fleet_ref = base.get("tile_cache", {}).get("fleet", {})
    if tile_fleet and tile_fleet_ref:
        if abs(tile_fleet["hit_rate"] - tile_fleet_ref["hit_rate"]) > 1e-9:
            fails.append(
                f"tile_cache fleet hit_rate: {tile_fleet['hit_rate']:.4f} "
                f"vs baseline {tile_fleet_ref['hit_rate']:.4f}")
        if tile_fleet_ref.get("shared_s", 0) >= 0.25:
            ratio = tile_fleet["shared_s"] / tile_fleet_ref["shared_s"]
            if ratio > 1 + tol:
                fails.append(
                    f"tile_cache fleet shared_s: {ratio:.2f}x baseline")

if fails:
    print(f"ci_bench: FAIL — regressions beyond +{tol:.0%}:")
    for f in fails:
        print(f"  {f}")
    sys.exit(1)
print(f"ci_bench: OK — no regression beyond +{tol:.0%} vs HEAD baselines")
EOF
