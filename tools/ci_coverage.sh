#!/usr/bin/env bash
# Line-coverage gate for the telemetry subsystem (src/obs): builds an
# instrumented tree, drives the obs-focused tests (metric primitives, span
# + JSONL units, the session-level determinism suite, and the MAC schedule
# observer), then reports line coverage for every file under src/obs and
# fails below the threshold.
#
#   tools/ci_coverage.sh [build-dir]     # default: build-coverage
#
# Threshold: VOLCAST_COVERAGE_MIN (percent, default 90). Uses gcovr when
# installed; otherwise falls back to raw gcov + a python3 merge, so the
# gate runs on a bare toolchain image.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-coverage}"
MIN="${VOLCAST_COVERAGE_MIN:-90}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="--coverage" \
  -DCMAKE_EXE_LINKER_FLAGS="--coverage" >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target volcast_tests

# Zero out counts from previous runs so the report reflects this run only.
find "$BUILD_DIR" -name '*.gcda' -delete

"$BUILD_DIR/tests/volcast_tests" \
  --gtest_filter='ObsMetrics*:Telemetry*:TelemetryDeterminism*:Jsonl*:MacEdges.*:SessionEdges.*' \
  >/dev/null

if command -v gcovr >/dev/null 2>&1; then
  gcovr -r . --filter 'src/obs/' --print-summary \
    --fail-under-line "$MIN" "$BUILD_DIR"
  exit 0
fi

# gcov fallback: run gcov over every translation unit that touched src/obs
# (the obs library itself plus the test objects, which instantiate the
# header-inline Span), then merge per source line across TUs.
SCRATCH="$BUILD_DIR/coverage-report"
rm -rf "$SCRATCH"
mkdir -p "$SCRATCH"

BUILD_DIR="$BUILD_DIR" SCRATCH="$SCRATCH" MIN="$MIN" python3 - <<'PYEOF'
import glob, os, subprocess, sys

build = os.environ["BUILD_DIR"]
scratch = os.environ["SCRATCH"]
minimum = float(os.environ["MIN"])

gcda = glob.glob(os.path.join(build, "**", "*.gcda"), recursive=True)
if not gcda:
    sys.exit("ci_coverage: no .gcda files found — was the build instrumented?")

for path in gcda:
    subprocess.run(
        ["gcov", "-p", os.path.abspath(path)],
        cwd=scratch, check=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)

# -p mangles the source path into the file name with '#' separators.
covered = {}   # (file, line) -> hit at least once in any TU
for report in glob.glob(os.path.join(scratch, "*.gcov")):
    name = os.path.basename(report)
    if "#src#obs#" not in name:
        continue
    source = "src/obs/" + name[name.rindex("#") + 1:-len(".gcov")]
    with open(report) as f:
        for line in f:
            parts = line.split(":", 2)
            if len(parts) < 3:
                continue
            count, lineno = parts[0].strip(), parts[1].strip()
            if lineno == "0" or count == "-":
                continue  # header lines / non-executable
            key = (source, int(lineno))
            covered[key] = covered.get(key, False) or count != "#####"

if not covered:
    sys.exit("ci_coverage: no src/obs lines in the gcov output")

files = sorted({f for f, _ in covered})
total_lines = total_hit = 0
print("src/obs line coverage:")
for f in files:
    lines = [hit for (g, _), hit in covered.items() if g == f]
    hit = sum(lines)
    total_lines += len(lines)
    total_hit += hit
    print(f"  {f:32s} {100.0 * hit / len(lines):6.1f}%  "
          f"({hit}/{len(lines)} lines)")
pct = 100.0 * total_hit / total_lines
print(f"  {'TOTAL':32s} {pct:6.1f}%  ({total_hit}/{total_lines} lines)")
if pct < minimum:
    sys.exit(f"ci_coverage: src/obs line coverage {pct:.1f}% "
             f"is below the {minimum:.0f}% gate")
print(f"ci_coverage: PASS (gate {minimum:.0f}%)")
PYEOF
