#!/usr/bin/env bash
# Checkpoint -> kill -> resume smoke for the supervised fleet runner, driven
# through the public volcast_sim CLI (the same path an operator would use):
#
#   1. run the fleet uninterrupted and keep its report as the reference
#   2. rerun with --fleet-checkpoint and --fleet-kill-after=2: the run must
#      die with exit code 3 and leave a loadable checkpoint behind
#   3. resume from the checkpoint: the aggregate report (everything from the
#      "fleet:" line on) must match the reference byte for byte
#
#   tools/smoke_fleet_resume.sh /path/to/volcast_sim
set -euo pipefail

SIM="${1:?usage: smoke_fleet_resume.sh /path/to/volcast_sim}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

COMMON=(--fleet=4 --fleet-parallel=2 --users=2 --duration=1 --points=30000
        --frames=20 --threads=1 --seed=11 --per-user)

"$SIM" "${COMMON[@]}" > "$TMP/reference.txt"

set +e
"$SIM" "${COMMON[@]}" --fleet-checkpoint="$TMP/fleet.ckpt" \
  --fleet-kill-after=2 > "$TMP/killed.txt" 2> "$TMP/killed.err"
status=$?
set -e
if [[ "$status" -ne 3 ]]; then
  echo "smoke_fleet_resume: expected exit 3 from the killed run, got $status" >&2
  cat "$TMP/killed.err" >&2
  exit 1
fi
if [[ ! -s "$TMP/fleet.ckpt" ]]; then
  echo "smoke_fleet_resume: killed run left no checkpoint behind" >&2
  exit 1
fi

"$SIM" "${COMMON[@]}" --fleet-resume="$TMP/fleet.ckpt" > "$TMP/resumed.txt"

# The resumed run prints an extra "resuming: ..." banner; the fleet report
# that follows must be identical to the uninterrupted run.
sed -n '/^fleet:/,$p' "$TMP/reference.txt" > "$TMP/reference.report"
sed -n '/^fleet:/,$p' "$TMP/resumed.txt" > "$TMP/resumed.report"
if ! diff -u "$TMP/reference.report" "$TMP/resumed.report"; then
  echo "smoke_fleet_resume: resumed report differs from uninterrupted run" >&2
  exit 1
fi
# The kill fires once 2 slots have finished, but a slot already in flight
# on the second lane may legitimately finish and checkpoint too: 2 or 3
# restored slots are both correct, 4 would mean the kill never happened.
if ! grep -Eq '^resuming: [23] of 4 slots restored' "$TMP/resumed.txt"; then
  echo "smoke_fleet_resume: resume banner missing or wrong slot count:" >&2
  head -n 1 "$TMP/resumed.txt" >&2
  exit 1
fi
echo "smoke_fleet_resume: OK (kill at 2/4, resume bit-identical)"
