#!/usr/bin/env bash
# Builds the tree under sanitizers and runs the test suite under them. Any
# sanitizer report fails the run (-fno-sanitize-recover=all aborts on the
# first finding).
#
# Modes, selected by the VOLCAST_SANITIZE environment variable:
#   address;undefined   (default) full suite under ASan + UBSan
#   thread              TSan over the concurrent paths: the thread pool and
#                       every test that drives the parallel session pipeline
#                       (the rest of the suite is serial — running it under
#                       TSan costs hours and checks nothing concurrent)
#
#   tools/ci_sanitize.sh [build-dir]      # default: build-asan / build-tsan
set -euo pipefail

cd "$(dirname "$0")/.."
MODE="${VOLCAST_SANITIZE:-address;undefined}"

if [[ "$MODE" == "thread" ]]; then
  BUILD_DIR="${1:-build-tsan}"
  TEST_FILTER=(-R 'ThreadPool|SessionParallel|Session|JointPredictor|VideoStore|Telemetry|ObsMetrics|Fleet|Supervisor|Checkpoint|Transport|TileCache|TilingStage|WorkloadBundle')
else
  BUILD_DIR="${1:-build-asan}"
  TEST_FILTER=()
fi

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DVOLCAST_SANITIZE="$MODE"
cmake --build "$BUILD_DIR" -j"$(nproc)"

cd "$BUILD_DIR"
ctest --output-on-failure -j"$(nproc)" "${TEST_FILTER[@]}"
