#!/usr/bin/env bash
# Builds the full tree with AddressSanitizer + UndefinedBehaviorSanitizer
# and runs the test suite under them. Any sanitizer report fails the run
# (-fno-sanitize-recover=all aborts on the first finding).
#
#   tools/ci_sanitize.sh [build-dir]      # default: build-asan
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DVOLCAST_SANITIZE="address;undefined"
cmake --build "$BUILD_DIR" -j"$(nproc)"

cd "$BUILD_DIR"
ctest --output-on-failure -j"$(nproc)"
