// volcast_trace — generate, inspect and export 6DoF viewing traces.
//
//   volcast_trace --export=DIR [--users=32 --samples=300 --seed=42]
//       writes the synthetic user study as user<N>.trace files (VCTRACE
//       format), ready for `volcast_sim --replay=DIR` or external tools;
//   volcast_trace --summary
//       prints per-user motion statistics of the study;
//   volcast_trace --iou
//       prints the pairwise viewport-similarity matrix (50 cm cells);
//   volcast_trace summarize telemetry.jsonl
//       renders a `volcast_sim --telemetry` log as per-stage cost/time
//       percentile tables plus event and metric summaries.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/stats.h"
#include "common/table.h"
#include "obs/jsonl.h"
#include "pointcloud/video_generator.h"
#include "trace/trace_io.h"
#include "trace/user_study.h"
#include "viewport/similarity.h"

using namespace volcast;

namespace {

trace::UserStudy build_study(const FlagParser& flags) {
  trace::UserStudyConfig config;
  const std::size_t users = flags.size("users");
  config.smartphone_users = users / 2;
  config.headset_users = users - users / 2;
  config.samples_per_user = flags.size("samples");
  config.seed = flags.u64("seed");
  return trace::UserStudy(config);
}

void print_summary(const trace::UserStudy& study) {
  AsciiTable table;
  table.header({"user", "device", "travel m", "mean speed m/s",
                "radius mean m"});
  for (std::size_t u = 0; u < study.user_count(); ++u) {
    const auto& poses = study.trace(u).poses;
    double travel = 0.0;
    RunningStats radius;
    for (std::size_t i = 0; i < poses.size(); ++i) {
      if (i > 0)
        travel += poses[i].position.distance(poses[i - 1].position);
      radius.add(std::hypot(poses[i].position.x, poses[i].position.y));
    }
    const double duration = study.trace(u).duration_s();
    table.row({std::to_string(u), to_string(study.device_of(u)),
               AsciiTable::num(travel, 2),
               AsciiTable::num(duration > 0 ? travel / duration : 0.0, 3),
               AsciiTable::num(radius.mean(), 2)});
  }
  std::printf("%s", table.render().c_str());
}

void print_iou(const trace::UserStudy& study) {
  vv::VideoConfig vc;
  vc.points_per_frame = 60'000;
  vc.frame_count = 30;
  const vv::VideoGenerator generator(vc);
  const vv::CellGrid grid(generator.content_bounds(), 0.5);

  // Mean pairwise IoU over sampled frames.
  const std::size_t n = study.user_count();
  std::vector<std::vector<double>> mean_iou(n, std::vector<double>(n, 0.0));
  int samples = 0;
  for (std::size_t f = 0; f < study.trace(0).size(); f += 15) {
    const auto occupancy = grid.occupancy(generator.frame(f % 30));
    std::vector<view::VisibilityMap> maps;
    maps.reserve(n);
    for (std::size_t u = 0; u < n; ++u) {
      view::VisibilityOptions options;
      options.intrinsics = view::device_intrinsics(study.device_of(u));
      maps.push_back(view::compute_visibility(grid, occupancy,
                                              study.trace(u).poses[f],
                                              options));
    }
    for (std::size_t a = 0; a < n; ++a)
      for (std::size_t b = 0; b < n; ++b)
        mean_iou[a][b] += view::iou(maps[a], maps[b]);
    ++samples;
  }
  std::printf("mean pairwise IoU (50 cm cells), row/col = user id:\n    ");
  for (std::size_t b = 0; b < n; ++b) std::printf("%4zu", b);
  std::printf("\n");
  for (std::size_t a = 0; a < n; ++a) {
    std::printf("%4zu", a);
    for (std::size_t b = 0; b < n; ++b)
      std::printf(" %.1f", mean_iou[a][b] / samples);
    std::printf("\n");
  }
}

/// `volcast_trace summarize <telemetry.jsonl>`: per-stage span tables
/// (logical cost always; wall time when the log captured it), event counts
/// by layer/type, and the counter snapshot.
int summarize(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "volcast_trace: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    std::fprintf(stderr, "volcast_trace: read error on %s\n", path.c_str());
    return 1;
  }
  std::vector<obs::JsonRecord> records;
  try {
    records = obs::parse_jsonl(buffer.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "volcast_trace: %s: %s\n", path.c_str(), e.what());
    return 1;
  }
  if (records.empty()) {
    std::fprintf(stderr,
                 "volcast_trace: %s holds no telemetry records (empty or "
                 "not a --telemetry log)\n",
                 path.c_str());
    return 1;
  }

  struct StageStats {
    std::size_t count = 0;
    EmpiricalDistribution cost;
    EmpiricalDistribution wall_us;
  };
  std::map<std::string, StageStats> stages;
  std::map<std::string, std::size_t> events;
  std::vector<std::pair<std::string, std::string>> counters;
  // Wire counters ("transport.*"), pulled out into their own section.
  std::map<std::string, unsigned long long> wire;
  // Tile-cache counters ("tile.*"), same treatment, plus the per-user
  // encode gauge.
  std::map<std::string, unsigned long long> cache;
  double encode_bytes_per_user = -1.0;
  bool has_wall = false;
  std::size_t ticks = 0;

  try {
    for (const obs::JsonRecord& record : records) {
      const std::string kind = record.str("record");
      if (kind == "meta") {
        std::printf("session: %llu users, %llu AP(s), %.0f fps, %.1f s, "
                    "seed %llu\n",
                    static_cast<unsigned long long>(record.uint("users")),
                    static_cast<unsigned long long>(record.uint("aps")),
                    record.num("fps"), record.num("duration_s"),
                    static_cast<unsigned long long>(record.uint("seed")));
      } else if (kind == "span") {
        StageStats& s = stages[record.str("stage")];
        ++s.count;
        s.cost.add(record.num("cost"));
        if (record.has("wall_us")) {
          has_wall = true;
          s.wall_us.add(record.num("wall_us"));
        }
        ticks = std::max(ticks,
                         static_cast<std::size_t>(record.uint("tick")) + 1);
      } else if (kind == "event") {
        ++events[record.str("layer") + "/" + record.str("type")];
      } else if (kind == "counter") {
        const std::string name = record.str("name");
        counters.emplace_back(name, record.raw("value"));
        if (name.rfind("transport.", 0) == 0)
          wire[name.substr(10)] =
              static_cast<unsigned long long>(record.uint("value"));
        if (name.rfind("tile.", 0) == 0)
          cache[name.substr(5)] =
              static_cast<unsigned long long>(record.uint("value"));
      } else if (kind == "gauge") {
        const std::string name = record.str("name");
        counters.emplace_back(name, record.raw("value"));
        if (name == "tile.encode_bytes_per_user")
          encode_bytes_per_user = record.num("value");
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "volcast_trace: %s: %s\n", path.c_str(), e.what());
    return 1;
  }

  std::printf("%zu ticks\n\nper-stage spans:\n", ticks);
  AsciiTable table;
  if (has_wall) {
    table.header({"stage", "spans", "cost p50", "cost p99", "wall p50 us",
                  "wall p99 us", "wall total ms"});
  } else {
    table.header({"stage", "spans", "cost p50", "cost p99", "cost total"});
  }
  for (auto& [stage, s] : stages) {
    std::vector<std::string> row = {stage, std::to_string(s.count),
                                    AsciiTable::num(s.cost.percentile(50), 0),
                                    AsciiTable::num(s.cost.percentile(99), 0)};
    if (has_wall) {
      row.push_back(AsciiTable::num(s.wall_us.percentile(50), 1));
      row.push_back(AsciiTable::num(s.wall_us.percentile(99), 1));
      const double total_us =
          s.wall_us.mean() * static_cast<double>(s.wall_us.count());
      row.push_back(AsciiTable::num(total_us / 1e3, 2));
    } else {
      const double total =
          s.cost.mean() * static_cast<double>(s.cost.count());
      row.push_back(AsciiTable::num(total, 0));
    }
    table.row(row);
  }
  std::printf("%s", table.render().c_str());

  if (!events.empty()) {
    std::printf("\nevents:\n");
    AsciiTable etable;
    etable.header({"layer/type", "count"});
    for (const auto& [key, count] : events)
      etable.row({key, std::to_string(count)});
    std::printf("%s", etable.render().c_str());
  }
  if (!wire.empty()) {
    // The packet wire was on (--policy transport=fec|nack|hybrid): render
    // its counters as a dedicated section so loss/recovery behaviour is
    // inspectable straight from the log.
    const auto get = [&](const char* key) -> unsigned long long {
      const auto it = wire.find(key);
      return it != wire.end() ? it->second : 0ULL;
    };
    std::printf("\ntransport wire:\n");
    AsciiTable wtable;
    wtable.header({"metric", "value"});
    wtable.row({"data packets sent", std::to_string(get("packets_sent"))});
    wtable.row({"parity packets sent",
                std::to_string(get("parity_packets"))});
    wtable.row({"packets lost", std::to_string(get("packets_lost"))});
    wtable.row({"packets retransmitted",
                std::to_string(get("retransmitted_packets"))});
    wtable.row({"tiles recovered by FEC",
                std::to_string(get("fec_recovered_tiles"))});
    wtable.row({"tiles past deadline",
                std::to_string(get("deadline_missed_tiles"))});
    std::printf("%s", wtable.render().c_str());
  }
  if (!cache.empty()) {
    // The tiling stage was on: hit rate, encode-vs-stitch split and the
    // bytes stitching saved, straight from the log.
    const auto get = [&](const char* key) -> unsigned long long {
      const auto it = cache.find(key);
      return it != cache.end() ? it->second : 0ULL;
    };
    const unsigned long long hits = get("cache_hits");
    const unsigned long long misses = get("cache_misses");
    std::printf("\ntile cache:\n");
    AsciiTable ttable;
    ttable.header({"metric", "value"});
    ttable.row({"tiles assembled", std::to_string(get("requests"))});
    ttable.row({"tiles encoded", std::to_string(get("encoded_tiles"))});
    ttable.row({"tiles stitched", std::to_string(get("stitched_tiles"))});
    ttable.row({"cache hit rate",
                hits + misses > 0
                    ? AsciiTable::num(static_cast<double>(hits) /
                                          static_cast<double>(hits + misses),
                                      3)
                    : "-"});
    ttable.row({"encode MB",
                AsciiTable::num(
                    static_cast<double>(get("encoded_bytes")) / 1e6, 2)});
    ttable.row({"stitched MB saved",
                AsciiTable::num(
                    static_cast<double>(get("stitched_bytes")) / 1e6, 2)});
    if (encode_bytes_per_user >= 0.0)
      ttable.row({"encode MB per user",
                  AsciiTable::num(encode_bytes_per_user / 1e6, 2)});
    std::printf("%s", ttable.render().c_str());
  }
  if (!counters.empty()) {
    std::printf("\ncounters:\n");
    AsciiTable ctable;
    ctable.header({"name", "value"});
    for (const auto& [name, value] : counters) ctable.row({name, value});
    std::printf("%s", ctable.render().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Sub-command form (positional, before flag parsing): summarize <file>.
  if (argc >= 2 && std::string(argv[1]) == "summarize") {
    if (argc != 3) {
      std::fprintf(stderr,
                   "usage: volcast_trace summarize <telemetry.jsonl>\n");
      return 1;
    }
    return summarize(argv[2]);
  }
  FlagParser flags("volcast_trace", "6DoF viewing-trace toolkit");
  flags.add_number("users", 32, "study participants (half PH, half HM)");
  flags.add_number("samples", 300, "samples per trace at 30 Hz");
  flags.add_number("seed", 42, "study seed");
  flags.add_string("export", "", "write user<N>.trace files to a directory");
  flags.add_switch("summary", "print per-user motion statistics");
  flags.add_switch("iou", "print the pairwise viewport-similarity matrix");

  std::string error;
  if (!flags.parse(argc, argv, &error)) {
    std::fprintf(stderr, "volcast_trace: %s\n%s", error.c_str(),
                 flags.help().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.help().c_str());
    return 0;
  }

  const trace::UserStudy study = build_study(flags);

  const std::string export_dir = flags.str("export");
  if (!export_dir.empty()) {
    std::filesystem::create_directories(export_dir);
    for (std::size_t u = 0; u < study.user_count(); ++u) {
      const auto path = std::filesystem::path(export_dir) /
                        ("user" + std::to_string(u) + ".trace");
      std::ofstream out(path);
      trace::write_trace(out, study.trace(u));
    }
    std::printf("wrote %zu traces to %s\n", study.user_count(),
                export_dir.c_str());
  }
  if (flags.on("summary")) print_summary(study);
  if (flags.on("iou")) print_iou(study);
  if (export_dir.empty() && !flags.on("summary") && !flags.on("iou")) {
    std::printf("%s", flags.help().c_str());
  }
  return 0;
}
