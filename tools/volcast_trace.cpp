// volcast_trace — generate, inspect and export 6DoF viewing traces.
//
//   volcast_trace --export=DIR [--users=32 --samples=300 --seed=42]
//       writes the synthetic user study as user<N>.trace files (VCTRACE
//       format), ready for `volcast_sim --replay=DIR` or external tools;
//   volcast_trace --summary
//       prints per-user motion statistics of the study;
//   volcast_trace --iou
//       prints the pairwise viewport-similarity matrix (50 cm cells).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/flags.h"
#include "common/stats.h"
#include "common/table.h"
#include "pointcloud/video_generator.h"
#include "trace/trace_io.h"
#include "trace/user_study.h"
#include "viewport/similarity.h"

using namespace volcast;

namespace {

trace::UserStudy build_study(const FlagParser& flags) {
  trace::UserStudyConfig config;
  const auto users = static_cast<std::size_t>(flags.integer("users"));
  config.smartphone_users = users / 2;
  config.headset_users = users - users / 2;
  config.samples_per_user = static_cast<std::size_t>(flags.integer("samples"));
  config.seed = static_cast<std::uint64_t>(flags.integer("seed"));
  return trace::UserStudy(config);
}

void print_summary(const trace::UserStudy& study) {
  AsciiTable table;
  table.header({"user", "device", "travel m", "mean speed m/s",
                "radius mean m"});
  for (std::size_t u = 0; u < study.user_count(); ++u) {
    const auto& poses = study.trace(u).poses;
    double travel = 0.0;
    RunningStats radius;
    for (std::size_t i = 0; i < poses.size(); ++i) {
      if (i > 0)
        travel += poses[i].position.distance(poses[i - 1].position);
      radius.add(std::hypot(poses[i].position.x, poses[i].position.y));
    }
    const double duration = study.trace(u).duration_s();
    table.row({std::to_string(u), to_string(study.device_of(u)),
               AsciiTable::num(travel, 2),
               AsciiTable::num(duration > 0 ? travel / duration : 0.0, 3),
               AsciiTable::num(radius.mean(), 2)});
  }
  std::printf("%s", table.render().c_str());
}

void print_iou(const trace::UserStudy& study) {
  vv::VideoConfig vc;
  vc.points_per_frame = 60'000;
  vc.frame_count = 30;
  const vv::VideoGenerator generator(vc);
  const vv::CellGrid grid(generator.content_bounds(), 0.5);

  // Mean pairwise IoU over sampled frames.
  const std::size_t n = study.user_count();
  std::vector<std::vector<double>> mean_iou(n, std::vector<double>(n, 0.0));
  int samples = 0;
  for (std::size_t f = 0; f < study.trace(0).size(); f += 15) {
    const auto occupancy = grid.occupancy(generator.frame(f % 30));
    std::vector<view::VisibilityMap> maps;
    maps.reserve(n);
    for (std::size_t u = 0; u < n; ++u) {
      view::VisibilityOptions options;
      options.intrinsics = view::device_intrinsics(study.device_of(u));
      maps.push_back(view::compute_visibility(grid, occupancy,
                                              study.trace(u).poses[f],
                                              options));
    }
    for (std::size_t a = 0; a < n; ++a)
      for (std::size_t b = 0; b < n; ++b)
        mean_iou[a][b] += view::iou(maps[a], maps[b]);
    ++samples;
  }
  std::printf("mean pairwise IoU (50 cm cells), row/col = user id:\n    ");
  for (std::size_t b = 0; b < n; ++b) std::printf("%4zu", b);
  std::printf("\n");
  for (std::size_t a = 0; a < n; ++a) {
    std::printf("%4zu", a);
    for (std::size_t b = 0; b < n; ++b)
      std::printf(" %.1f", mean_iou[a][b] / samples);
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags("volcast_trace", "6DoF viewing-trace toolkit");
  flags.add_number("users", 32, "study participants (half PH, half HM)");
  flags.add_number("samples", 300, "samples per trace at 30 Hz");
  flags.add_number("seed", 42, "study seed");
  flags.add_string("export", "", "write user<N>.trace files to a directory");
  flags.add_switch("summary", "print per-user motion statistics");
  flags.add_switch("iou", "print the pairwise viewport-similarity matrix");

  std::string error;
  if (!flags.parse(argc, argv, &error)) {
    std::fprintf(stderr, "volcast_trace: %s\n%s", error.c_str(),
                 flags.help().c_str());
    return 1;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.help().c_str());
    return 0;
  }

  const trace::UserStudy study = build_study(flags);

  const std::string export_dir = flags.str("export");
  if (!export_dir.empty()) {
    std::filesystem::create_directories(export_dir);
    for (std::size_t u = 0; u < study.user_count(); ++u) {
      const auto path = std::filesystem::path(export_dir) /
                        ("user" + std::to_string(u) + ".trace");
      std::ofstream out(path);
      trace::write_trace(out, study.trace(u));
    }
    std::printf("wrote %zu traces to %s\n", study.user_count(),
                export_dir.c_str());
  }
  if (flags.on("summary")) print_summary(study);
  if (flags.on("iou")) print_iou(study);
  if (export_dir.empty() && !flags.on("summary") && !flags.on("iou")) {
    std::printf("%s", flags.help().c_str());
  }
  return 0;
}
