#include "pointcloud/video_generator.h"

#include <gtest/gtest.h>

namespace volcast::vv {
namespace {

VideoConfig small_config() {
  VideoConfig c;
  c.points_per_frame = 10'000;
  c.frame_count = 30;
  return c;
}

TEST(VideoGenerator, ExactPointBudget) {
  const VideoGenerator gen(small_config());
  EXPECT_EQ(gen.frame(0).size(), 10'000u);
  EXPECT_EQ(gen.frame(7).size(), 10'000u);
}

TEST(VideoGenerator, DeterministicPerIndex) {
  const VideoGenerator a(small_config());
  const VideoGenerator b(small_config());
  const auto fa = a.frame(5);
  const auto fb = b.frame(5);
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); i += 500)
    EXPECT_EQ(fa.points()[i], fb.points()[i]);
}

TEST(VideoGenerator, SeedChangesSampling) {
  VideoConfig c1 = small_config();
  VideoConfig c2 = small_config();
  c2.seed = 999;
  const auto f1 = VideoGenerator(c1).frame(0);
  const auto f2 = VideoGenerator(c2).frame(0);
  int differing = 0;
  for (std::size_t i = 0; i < f1.size(); i += 100)
    if (!(f1.points()[i] == f2.points()[i])) ++differing;
  EXPECT_GT(differing, 50);
}

TEST(VideoGenerator, FramesStayInsideContentBounds) {
  const VideoGenerator gen(small_config());
  const auto bounds = gen.content_bounds();
  for (std::size_t f = 0; f < 30; f += 5) {
    // Bind the frame: ranging over a temporary's member dangles (the
    // temporary dies before the loop body runs).
    const PointCloud frame = gen.frame(f);
    for (const Point& p : frame.points())
      EXPECT_TRUE(bounds.contains(p.position));
  }
}

TEST(VideoGenerator, AnimationMovesPoints) {
  const VideoGenerator gen(small_config());
  const auto f0 = gen.frame(0);
  const auto f10 = gen.frame(10);
  double total_motion = 0.0;
  for (std::size_t i = 0; i < f0.size(); i += 50)
    total_motion += f0.points()[i].position.distance(f10.points()[i].position);
  EXPECT_GT(total_motion, 1.0);  // limbs swing
}

TEST(VideoGenerator, TemporalCoherenceBetweenAdjacentFrames) {
  const VideoGenerator gen(small_config());
  const auto f0 = gen.frame(0);
  const auto f1 = gen.frame(1);
  for (std::size_t i = 0; i < f0.size(); i += 111) {
    EXPECT_LT(f0.points()[i].position.distance(f1.points()[i].position), 0.15)
        << "point " << i << " teleported between adjacent frames";
  }
}

TEST(VideoGenerator, LoopsModuloFrameCount) {
  const VideoGenerator gen(small_config());
  const auto f2 = gen.frame(2);
  const auto f32 = gen.frame(32);  // 32 % 30 == 2
  ASSERT_EQ(f2.size(), f32.size());
  for (std::size_t i = 0; i < f2.size(); i += 1000)
    EXPECT_EQ(f2.points()[i], f32.points()[i]);
}

TEST(VideoGenerator, ContentCenterInsideBounds) {
  const VideoGenerator gen(small_config());
  EXPECT_TRUE(gen.content_bounds().contains(gen.content_center()));
}

TEST(VideoGenerator, HumanlikeVerticalExtent) {
  const VideoGenerator gen(small_config());
  const auto bounds = gen.frame(0).bounds();
  EXPECT_GT(bounds.hi.z - bounds.lo.z, 1.4);  // roughly person-sized
  EXPECT_LT(bounds.hi.z - bounds.lo.z, 2.0);
}

TEST(Thin, FractionOneIsIdentity) {
  const VideoGenerator gen(small_config());
  const auto cloud = gen.frame(0);
  EXPECT_EQ(thin(cloud, 1.0).size(), cloud.size());
  EXPECT_EQ(thin(cloud, 2.0).size(), cloud.size());
}

TEST(Thin, FractionZeroIsEmpty) {
  const VideoGenerator gen(small_config());
  EXPECT_TRUE(thin(gen.frame(0), 0.0).empty());
  EXPECT_TRUE(thin(gen.frame(0), -1.0).empty());
}

TEST(Thin, ApproximatesRequestedFraction) {
  const VideoGenerator gen(small_config());
  const auto cloud = gen.frame(0);
  for (double f : {0.25, 0.5, 0.6, 0.78}) {
    const auto thinned = thin(cloud, f);
    const double actual =
        static_cast<double>(thinned.size()) / static_cast<double>(cloud.size());
    EXPECT_NEAR(actual, f, 0.03) << "fraction " << f;
  }
}

TEST(Thin, DeterministicAndNested) {
  // Thinning is index-hash based: thinning to 0.3 keeps a subset of the
  // points kept at 0.6 (nested levels of detail).
  const VideoGenerator gen(small_config());
  const auto cloud = gen.frame(0);
  const auto t1 = thin(cloud, 0.6);
  const auto t2 = thin(cloud, 0.6);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); i += 97)
    EXPECT_EQ(t1.points()[i], t2.points()[i]);
}

TEST(Thin, PreservesSpatialCoverage) {
  // The thinned cloud must still span the figure (uniform thinning).
  const VideoGenerator gen(small_config());
  const auto cloud = gen.frame(0);
  const auto thinned = thin(cloud, 0.3);
  const auto full_bounds = cloud.bounds();
  const auto thin_bounds = thinned.bounds();
  EXPECT_LT(full_bounds.hi.z - thin_bounds.hi.z, 0.1);
  EXPECT_LT(thin_bounds.lo.z - full_bounds.lo.z, 0.1);
}

}  // namespace
}  // namespace volcast::vv
