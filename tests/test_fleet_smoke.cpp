// 1000-slot fleet smoke (ctest label `slow`): the scale the shared
// WorkloadBundle exists for. One bundle build serves a thousand supervised
// slots; a kill after 120 checkpointed slots followed by a resume
// reproduces the uninterrupted fleet bit for bit, with exactly one bundle
// build per run_fleet call and the v4 bundle hash recorded in the
// checkpoint.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/checkpoint.h"
#include "core/fleet.h"
#include "core/workload_bundle.h"
#include "session_compare.h"

namespace volcast::core {
namespace {

FleetConfig thousand_fleet() {
  FleetConfig fc;
  fc.session.user_count = 1;
  fc.session.duration_s = 0.25;
  fc.session.master_points = 10'000;
  fc.session.video_frames = 6;
  fc.session.worker_threads = 1;
  fc.session.content_seed = 31337;  // pinned: one video, a thousand viewers
  fc.sessions = 1000;
  fc.parallel_sessions = 1;
  return fc;
}

TEST(ThousandSlotSmoke, KillResumeBitIdenticalWithOneBundleBuildPerRun) {
  const std::string ckpt_path =
      (std::filesystem::temp_directory_path() / "volcast_smoke_1k.vckp")
          .string();
  std::remove(ckpt_path.c_str());

  FleetConfig fc = thousand_fleet();

  std::uint64_t before = WorkloadBundle::builds_total();
  const FleetResult uninterrupted = run_fleet(fc);
  EXPECT_EQ(WorkloadBundle::builds_total() - before, 1u)
      << "an uninterrupted 1000-slot fleet must build the bundle once";
  EXPECT_EQ(uninterrupted.sessions.size(), 1000u);
  EXPECT_EQ(uninterrupted.aborted_slots, 0u);
  EXPECT_EQ(uninterrupted.total_users, 1000u);

  // Operator kill after 120 newly checkpointed slots.
  fc.checkpoint_file = ckpt_path;
  fc.kill_after_slots = 120;
  before = WorkloadBundle::builds_total();
  EXPECT_THROW((void)run_fleet(fc), FleetKilled);
  EXPECT_EQ(WorkloadBundle::builds_total() - before, 1u);
  {
    const FleetCheckpoint ckpt = load_checkpoint(ckpt_path);
    EXPECT_EQ(ckpt.slot_count, 1000u);
    EXPECT_EQ(ckpt.records.size(), 120u);
    EXPECT_EQ(ckpt.bundle_hash, workload_bundle_hash(fc.session));
  }

  // Resume the remaining 880 slots: bit-identical to the uninterrupted
  // run, again from a single bundle build.
  fc.checkpoint_file.clear();
  fc.kill_after_slots = 0;
  fc.resume_file = ckpt_path;
  before = WorkloadBundle::builds_total();
  const FleetResult resumed = run_fleet(fc);
  EXPECT_EQ(WorkloadBundle::builds_total() - before, 1u);
  expect_fleet_identical(uninterrupted, resumed);

  std::remove(ckpt_path.c_str());
}

}  // namespace
}  // namespace volcast::core
