// Integration tests: the full cross-layer streaming session.
#include "core/session.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "trace/user_study.h"

namespace volcast::core {
namespace {

SessionConfig fast_config() {
  SessionConfig c;
  c.user_count = 3;
  c.duration_s = 3.0;
  c.master_points = 40'000;
  c.video_frames = 30;
  return c;
}

TEST(Session, RunsAndDeliversFrames) {
  Session session(fast_config());
  const auto result = session.run();
  ASSERT_EQ(result.qoe.users.size(), 3u);
  EXPECT_GT(result.qoe.mean_fps(), 20.0);
  EXPECT_GT(result.qoe.aggregate_goodput_mbps(), 1.0);
  EXPECT_GT(result.mean_airtime_utilization, 0.0);
  EXPECT_LT(result.mean_airtime_utilization, 1.0);
  for (const auto& u : result.qoe.users) {
    EXPECT_GE(u.viewport_miss_ratio, 0.0);
    EXPECT_LT(u.viewport_miss_ratio, 0.5)
        << "prediction-driven fetch missing too much of the viewport";
  }
}

TEST(Session, SecondRunThrows) {
  // Single-shot semantics: the tick queue and per-run state are consumed
  // by run(); a silent second run would return garbage, so it must throw.
  Session session(fast_config());
  (void)session.run();
  EXPECT_THROW((void)session.run(), std::logic_error);
  // The config stays readable after the run.
  EXPECT_EQ(session.config().user_count, 3u);
}

TEST(Session, DeterministicForSeed) {
  Session a(fast_config());
  Session b(fast_config());
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_DOUBLE_EQ(ra.qoe.mean_fps(), rb.qoe.mean_fps());
  EXPECT_DOUBLE_EQ(ra.multicast_bit_share, rb.multicast_bit_share);
  EXPECT_EQ(ra.custom_beam_uses, rb.custom_beam_uses);
}

TEST(Session, SeedChangesOutcome) {
  SessionConfig c1 = fast_config();
  SessionConfig c2 = fast_config();
  c2.seed = 99;
  const auto r1 = Session(c1).run();
  const auto r2 = Session(c2).run();
  EXPECT_NE(r1.qoe.aggregate_goodput_mbps(), r2.qoe.aggregate_goodput_mbps());
}

TEST(Session, MulticastCarriesTraffic) {
  const auto result = Session(fast_config()).run();
  EXPECT_GT(result.multicast_bit_share, 0.05);
  EXPECT_GE(result.mean_group_size, 1.0);
}

TEST(Session, UnicastOnlyAblationUsesNoMulticast) {
  SessionConfig c = fast_config();
  c.enable_multicast = false;
  const auto result = Session(c).run();
  EXPECT_DOUBLE_EQ(result.multicast_bit_share, 0.0);
  EXPECT_DOUBLE_EQ(result.mean_group_size, 1.0);
  EXPECT_EQ(result.custom_beam_uses + result.stock_beam_uses, 0u);
}

TEST(Session, MulticastSavesAirtime) {
  SessionConfig with = fast_config();
  SessionConfig without = fast_config();
  without.enable_multicast = false;
  // Pin the tier so both runs move the same payload.
  with.adaptation = AdaptationPolicy::kNone;
  without.adaptation = AdaptationPolicy::kNone;
  const auto r_with = Session(with).run();
  const auto r_without = Session(without).run();
  EXPECT_LT(r_with.mean_airtime_utilization,
            r_without.mean_airtime_utilization * 1.02);
}

TEST(Session, BlockageForecastsHappen) {
  SessionConfig c = fast_config();
  c.user_count = 7;  // crowded arc: bodies regularly graze LoS paths
  c.duration_s = 5.0;
  const auto result = Session(c).run();
  EXPECT_GT(result.blockage_forecasts, 0u);
}

TEST(Session, MitigationCanBeDisabled) {
  SessionConfig c = fast_config();
  c.enable_blockage_mitigation = false;
  const auto result = Session(c).run();
  EXPECT_EQ(result.reflection_switches, 0u);
}

TEST(Session, SingleUserSession) {
  SessionConfig c = fast_config();
  c.user_count = 1;
  const auto result = Session(c).run();
  ASSERT_EQ(result.qoe.users.size(), 1u);
  EXPECT_GT(result.qoe.users[0].displayed_fps, 25.0);
  EXPECT_DOUBLE_EQ(result.multicast_bit_share, 0.0);
}

TEST(Session, SmartphoneDeviceWorks) {
  SessionConfig c = fast_config();
  c.device = trace::DeviceType::kSmartphone;
  const auto result = Session(c).run();
  EXPECT_GT(result.qoe.mean_fps(), 20.0);
}

TEST(Session, AdaptationNoneKeepsStartTier) {
  SessionConfig c = fast_config();
  c.adaptation = AdaptationPolicy::kNone;
  c.start_tier = 1;
  const auto result = Session(c).run();
  for (const auto& u : result.qoe.users)
    EXPECT_NEAR(u.mean_quality_tier, 1.0, 1e-9);
}

TEST(Session, CrossLayerRaisesQualityAboveFloor) {
  SessionConfig c = fast_config();
  c.start_tier = 0;
  const auto result = Session(c).run();
  double mean_tier = 0.0;
  for (const auto& u : result.qoe.users) mean_tier += u.mean_quality_tier;
  mean_tier /= static_cast<double>(result.qoe.users.size());
  EXPECT_GT(mean_tier, 0.2);  // climbed off the floor
}

TEST(Session, MultiApRunsAndServesUsers) {
  SessionConfig c = fast_config();
  c.ap_count = 2;
  c.user_count = 4;
  const auto result = Session(c).run();
  EXPECT_GT(result.qoe.mean_fps(), 15.0);
}

TEST(Session, TickObserverSeesEveryUserEveryTick) {
  SessionConfig c = fast_config();
  c.duration_s = 1.0;
  std::size_t calls = 0;
  double last_t = -1.0;
  c.tick_observer = [&](const TickSample& s) {
    ++calls;
    EXPECT_GE(s.t_s, last_t);
    last_t = std::max(last_t, s.t_s);
    EXPECT_LT(s.user, c.user_count);
    EXPECT_GE(s.buffer_s, 0.0);
    EXPECT_LE(s.tier, 2u);
    EXPECT_GE(s.rate_mbps, 0.0);
  };
  Session session(c);
  (void)session.run();
  EXPECT_EQ(calls, 30u * c.user_count);  // 1 s at 30 Hz x users
}

// validate(): every rule rejects with std::invalid_argument, up front,
// before any expensive construction happens.
TEST(SessionConfigValidate, AcceptsDefaultAndFastConfigs) {
  EXPECT_NO_THROW(SessionConfig{}.validate());
  EXPECT_NO_THROW(fast_config().validate());
}

TEST(SessionConfigValidate, RejectsNonPositiveFps) {
  SessionConfig c = fast_config();
  c.fps = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.fps = -30.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SessionConfigValidate, RejectsNonPositiveDuration) {
  SessionConfig c = fast_config();
  c.duration_s = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SessionConfigValidate, RejectsZeroUsers) {
  SessionConfig c = fast_config();
  c.user_count = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SessionConfigValidate, RejectsZeroContent) {
  SessionConfig c = fast_config();
  c.master_points = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = fast_config();
  c.video_frames = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SessionConfigValidate, RejectsNonPositiveCellSize) {
  SessionConfig c = fast_config();
  c.cell_size_m = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SessionConfigValidate, RejectsApCountOutOfRange) {
  SessionConfig c = fast_config();
  c.ap_count = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.ap_count = 5;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SessionConfigValidate, RejectsStartTierOutOfRange) {
  SessionConfig c = fast_config();
  c.start_tier = 3;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SessionConfigValidate, RejectsNegativeRates) {
  SessionConfig c = fast_config();
  c.prediction_horizon_s = -0.1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = fast_config();
  c.decode_points_per_second = -1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = fast_config();
  c.max_backlog_s = -0.1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SessionConfigValidate, RejectsEmptyReplayTrace) {
  SessionConfig c = fast_config();
  c.replay_traces.resize(c.user_count);  // present but empty poses
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SessionConfigValidate, SessionConstructorValidates) {
  SessionConfig c = fast_config();
  c.fps = -1.0;
  EXPECT_THROW(Session{c}, std::invalid_argument);
}

TEST(Session, ConfigAccessor) {
  SessionConfig c = fast_config();
  c.user_count = 2;
  Session session(c);
  EXPECT_EQ(session.config().user_count, 2u);
}

TEST(Session, MoveSemantics) {
  Session a(fast_config());
  Session b = std::move(a);
  const auto result = b.run();
  EXPECT_EQ(result.qoe.users.size(), 3u);
}


TEST(Session, DecodeCeilingThrottlesFps) {
  SessionConfig fast = fast_config();
  SessionConfig slow = fast_config();
  // A decoder that manages only ~0.3M points/s cannot sustain 30 FPS of
  // ~25K-visible-point frames.
  slow.decode_points_per_second = 0.3e6;
  const auto r_fast = Session(fast).run();
  const auto r_slow = Session(slow).run();
  EXPECT_LT(r_slow.qoe.mean_fps(), r_fast.qoe.mean_fps() - 5.0);
}

TEST(Session, ReplayTracesDriveUsers) {
  SessionConfig c = fast_config();
  trace::UserStudyConfig study_config;
  study_config.smartphone_users = 0;
  study_config.headset_users = 3;
  study_config.samples_per_user = 90;
  const trace::UserStudy study(study_config);
  c.replay_traces.assign(study.traces().begin(), study.traces().end());
  const auto replayed = Session(c).run();
  ASSERT_EQ(replayed.qoe.users.size(), 3u);
  EXPECT_GT(replayed.qoe.mean_fps(), 20.0);
  // Replay is deterministic too.
  Session again(c);
  EXPECT_DOUBLE_EQ(again.run().qoe.mean_fps(), replayed.qoe.mean_fps());
}

TEST(Session, ReplayRejectsTooFewTraces) {
  SessionConfig c = fast_config();
  trace::UserStudyConfig study_config;
  study_config.smartphone_users = 1;
  study_config.headset_users = 0;
  study_config.samples_per_user = 30;
  const trace::UserStudy study(study_config);
  c.replay_traces.assign(study.traces().begin(), study.traces().end());
  EXPECT_THROW(Session{c}, std::invalid_argument);
}

TEST(Session, ReactiveBeamsPaySlsCost) {
  SessionConfig c = fast_config();
  c.duration_s = 4.0;
  c.predictive_beam_tracking = false;
  const auto reactive = Session(c).run();
  EXPECT_GT(reactive.sls_sweeps, 0u);
  EXPECT_GT(reactive.sls_outage_ticks, 0u);

  c.predictive_beam_tracking = true;
  const auto predictive = Session(c).run();
  EXPECT_EQ(predictive.sls_sweeps, 0u);
  EXPECT_EQ(predictive.sls_outage_ticks, 0u);
  // The paper's claim: predicted-pose steering avoids search outage and
  // delivers at least as much video.
  EXPECT_GE(predictive.qoe.mean_fps(), reactive.qoe.mean_fps() - 0.5);
}

class SessionUserSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SessionUserSweep, MoreUsersNeverImproveWorstFps) {
  SessionConfig small = fast_config();
  small.duration_s = 2.0;
  small.user_count = 2;
  SessionConfig big = small;
  big.user_count = GetParam();
  const auto r_small = Session(small).run();
  const auto r_big = Session(big).run();
  // Airtime utilization grows with load.
  EXPECT_GE(r_big.mean_airtime_utilization,
            r_small.mean_airtime_utilization * 0.8);
}

INSTANTIATE_TEST_SUITE_P(Users, SessionUserSweep,
                         ::testing::Values(3u, 4u, 6u));

}  // namespace
}  // namespace volcast::core
