#include "core/bandwidth_predictor.h"

#include <gtest/gtest.h>

namespace volcast::core {
namespace {

TEST(BandwidthPredictor, NoSamplesFallsBackToPhy) {
  BandwidthPredictor p(BandwidthEstimator::kCrossLayer);
  p.set_phy_state(800.0, false);
  EXPECT_DOUBLE_EQ(p.predict_mbps(), 800.0);
}

TEST(BandwidthPredictor, AppOnlyIsHarmonicMean) {
  BandwidthPredictor p(BandwidthEstimator::kAppOnly);
  p.observe(100.0, 1000.0);
  p.observe(400.0, 1000.0);
  // Harmonic mean of {100, 400} = 2/(1/100 + 1/400) = 160.
  EXPECT_NEAR(p.predict_mbps(), 160.0, 1e-9);
}

TEST(BandwidthPredictor, AppOnlyIgnoresPhyChanges) {
  BandwidthPredictor p(BandwidthEstimator::kAppOnly);
  p.observe(200.0, 1000.0);
  const double before = p.predict_mbps();
  p.set_phy_state(10.0, false);
  EXPECT_DOUBLE_EQ(p.predict_mbps(), before);
}

TEST(BandwidthPredictor, PhyOnlyTracksInstantRate) {
  BandwidthPredictor p(BandwidthEstimator::kPhyOnly);
  p.observe(200.0, 1000.0);
  p.set_phy_state(500.0, false);
  EXPECT_DOUBLE_EQ(p.predict_mbps(), 500.0);
}

TEST(BandwidthPredictor, PhyOnlyDiscountsForecastBlockage) {
  BandwidthPredictor p(BandwidthEstimator::kPhyOnly);
  p.observe(200.0, 1000.0);
  p.set_phy_state(1000.0, true);
  EXPECT_LT(p.predict_mbps(), 500.0);
}

TEST(BandwidthPredictor, CrossLayerReactsToRssCollapse) {
  // App history says ~600 Mbps; the PHY just collapsed to 60. Cross-layer
  // must fall with it immediately, app-only must not.
  BandwidthPredictor cross(BandwidthEstimator::kCrossLayer);
  BandwidthPredictor app(BandwidthEstimator::kAppOnly);
  for (int i = 0; i < 8; ++i) {
    cross.observe(600.0, 1000.0);
    app.observe(600.0, 1000.0);
  }
  cross.set_phy_state(100.0, false);
  app.set_phy_state(100.0, false);
  EXPECT_LT(cross.predict_mbps(), 100.0);
  EXPECT_NEAR(app.predict_mbps(), 600.0, 1e-9);
}

TEST(BandwidthPredictor, CrossLayerStableWhenChannelStable) {
  BandwidthPredictor p(BandwidthEstimator::kCrossLayer);
  for (int i = 0; i < 8; ++i) p.observe(600.0, 1000.0);
  p.set_phy_state(1000.0, false);
  EXPECT_NEAR(p.predict_mbps(), 600.0, 1.0);
}

TEST(BandwidthPredictor, CrossLayerRatioClamped) {
  // PHY doubling does not promise more than 2x app throughput.
  BandwidthPredictor p(BandwidthEstimator::kCrossLayer);
  for (int i = 0; i < 8; ++i) p.observe(300.0, 500.0);
  p.set_phy_state(50000.0, false);
  EXPECT_LE(p.predict_mbps(), 600.0 + 1e-9);
}

TEST(BandwidthPredictor, CrossLayerForecastDiscount) {
  BandwidthPredictor p(BandwidthEstimator::kCrossLayer);
  for (int i = 0; i < 8; ++i) p.observe(600.0, 1000.0);
  p.set_phy_state(1000.0, true);
  EXPECT_LT(p.predict_mbps(), 300.0);
}

TEST(BandwidthPredictor, WindowSlides) {
  BandwidthPredictor p(BandwidthEstimator::kAppOnly, 4);
  for (int i = 0; i < 4; ++i) p.observe(100.0, 1000.0);
  for (int i = 0; i < 4; ++i) p.observe(900.0, 1000.0);
  EXPECT_NEAR(p.predict_mbps(), 900.0, 1e-9);
}

TEST(BandwidthPredictor, ModeNames) {
  EXPECT_STREQ(to_string(BandwidthEstimator::kAppOnly), "app-only");
  EXPECT_STREQ(to_string(BandwidthEstimator::kPhyOnly), "phy-only");
  EXPECT_STREQ(to_string(BandwidthEstimator::kCrossLayer), "cross-layer");
}

}  // namespace
}  // namespace volcast::core
