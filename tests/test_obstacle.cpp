#include "geometry/obstacle.h"

#include <gtest/gtest.h>

namespace volcast::geo {
namespace {

TEST(Obstacle, DirectHitThroughCenter) {
  BodyObstacle body;
  body.position = {5, 0, 0};
  EXPECT_TRUE(segment_hits_body({0, 0, 1.0}, {10, 0, 1.0}, body));
  EXPECT_NEAR(segment_body_clearance({0, 0, 1.0}, {10, 0, 1.0}, body), 0.0,
              1e-12);
}

TEST(Obstacle, MissBeside) {
  BodyObstacle body;
  body.position = {5, 1, 0};
  body.radius_m = 0.25;
  EXPECT_FALSE(segment_hits_body({0, 0, 1.0}, {10, 0, 1.0}, body));
  EXPECT_NEAR(segment_body_clearance({0, 0, 1.0}, {10, 0, 1.0}, body), 1.0,
              1e-12);
}

TEST(Obstacle, GrazingAtRadius) {
  BodyObstacle body;
  body.position = {5, 0.25, 0};
  body.radius_m = 0.25;
  EXPECT_TRUE(segment_hits_body({0, 0, 1.0}, {10, 0, 1.0}, body));
}

TEST(Obstacle, SegmentAboveCapsuleMisses) {
  BodyObstacle body;
  body.position = {5, 0, 0};
  body.height_m = 1.8;
  // A ceiling-level link passes over the person.
  EXPECT_FALSE(segment_hits_body({0, 0, 2.5}, {10, 0, 2.5}, body));
  EXPECT_TRUE(std::isinf(segment_body_clearance({0, 0, 2.5}, {10, 0, 2.5},
                                                body)));
}

TEST(Obstacle, SlantedLinkHitsWhenCrossingAtBodyHeight) {
  BodyObstacle body;
  body.position = {5, 0, 0};
  // AP at 2.6 m going down to a user at 1.4 m: at x=5 the ray is ~2.0 m.
  EXPECT_FALSE(segment_hits_body({0, 0, 2.6}, {10, 0, 1.4}, body));
  // Blocker nearer to the receiver: ray height at x=8 is ~1.64 m, inside.
  body.position = {8, 0, 0};
  EXPECT_TRUE(segment_hits_body({0, 0, 2.6}, {10, 0, 1.4}, body));
}

TEST(Obstacle, EndpointInsideBodyCounts) {
  BodyObstacle body;
  body.position = {1, 0, 0};
  EXPECT_TRUE(segment_hits_body({1.1, 0, 1.0}, {5, 0, 1.0}, body));
}

TEST(Obstacle, DegenerateSegmentUsesPointDistance) {
  BodyObstacle body;
  body.position = {0.1, 0, 0};
  EXPECT_TRUE(segment_hits_body({0, 0, 1}, {0, 0, 1}, body));
  body.position = {1, 0, 0};
  EXPECT_FALSE(segment_hits_body({0, 0, 1}, {0, 0, 1}, body));
}

TEST(Obstacle, ClearanceMonotoneInOffset) {
  BodyObstacle body;
  body.radius_m = 0.3;
  double last = -1.0;
  for (double offset = 0.0; offset < 2.0; offset += 0.25) {
    body.position = {5, offset, 0};
    const double c = segment_body_clearance({0, 0, 1}, {10, 0, 1}, body);
    EXPECT_GT(c, last);
    last = c;
  }
}

}  // namespace
}  // namespace volcast::geo
