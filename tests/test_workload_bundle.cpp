// WorkloadBundle: shared immutable setup artifacts. Covers the freeze
// latch (mutation-after-freeze throws), the Session-side validation wall
// (unfrozen or mismatched bundles are rejected up front), bundled-vs-legacy
// bit-equality for single sessions and fleets at several parallelism
// levels, concurrent shared reads (the TSan target), and the build counter
// the fleet amortization claims rest on.
#include "core/workload_bundle.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/fleet.h"
#include "core/session.h"
#include "session_compare.h"
#include "session_golden.h"

namespace volcast::core {
namespace {

SessionConfig small_config() {
  SessionConfig c;
  c.user_count = 2;
  c.duration_s = 1.0;
  c.master_points = 20'000;
  c.video_frames = 10;
  c.seed = 11;
  c.worker_threads = 1;
  return c;
}

TEST(WorkloadBundle, KeyCapturesContentIdentityOnly) {
  SessionConfig c = small_config();
  const WorkloadKey key = WorkloadKey::from(c);
  EXPECT_EQ(key.video_seed, c.seed ^ 0xc0ffee);  // derived when unpinned
  EXPECT_EQ(key.master_points, c.master_points);
  EXPECT_EQ(key.video_frames, c.video_frames);

  // Audience-side knobs must not move the key: same artifacts, different
  // viewers.
  SessionConfig audience = c;
  audience.user_count = 7;
  audience.enable_multicast = false;
  audience.worker_threads = 4;
  EXPECT_TRUE(key == WorkloadKey::from(audience));
  EXPECT_EQ(key.hash(), WorkloadKey::from(audience).hash());

  // Pinning content_seed decouples identity from the session seed.
  SessionConfig pinned = c;
  pinned.content_seed = 4242;
  SessionConfig pinned_other_seed = pinned;
  pinned_other_seed.seed = 999;
  EXPECT_FALSE(key == WorkloadKey::from(pinned));
  EXPECT_TRUE(WorkloadKey::from(pinned) ==
              WorkloadKey::from(pinned_other_seed));

  // Every workload field moves the hash.
  SessionConfig diff = c;
  diff.master_points = 21'000;
  EXPECT_NE(key.hash(), workload_bundle_hash(diff));
  diff = c;
  diff.video_frames = 12;
  EXPECT_NE(key.hash(), workload_bundle_hash(diff));
  diff = c;
  diff.cell_size_m = 0.4;
  EXPECT_NE(key.hash(), workload_bundle_hash(diff));
  diff = c;
  diff.fps = 25.0;
  EXPECT_NE(key.hash(), workload_bundle_hash(diff));
}

TEST(WorkloadBundle, MutationAfterFreezeThrows) {
  WorkloadBundle bundle(WorkloadKey::from(small_config()));
  EXPECT_FALSE(bundle.frozen());
  bundle.build_artifacts(1);
  bundle.freeze();
  EXPECT_TRUE(bundle.frozen());
  EXPECT_THROW(bundle.build_artifacts(1), std::logic_error);
  EXPECT_THROW(bundle.install_occupancy({}), std::logic_error);
  EXPECT_THROW(bundle.install_video(nullptr, nullptr, nullptr),
               std::logic_error);
  EXPECT_THROW(bundle.freeze(), std::logic_error);
  // Const accessors keep working after the latch.
  EXPECT_GT(bundle.store().tier_count(), 0u);
  EXPECT_EQ(bundle.occupancy().size(), small_config().video_frames);
}

TEST(WorkloadBundle, FreezeWithoutArtifactsThrows) {
  WorkloadBundle bundle(WorkloadKey::from(small_config()));
  EXPECT_THROW(bundle.freeze(), std::logic_error);
  EXPECT_FALSE(bundle.frozen());
}

TEST(WorkloadBundle, AccessorsBeforeBuildThrow) {
  const WorkloadBundle bundle(WorkloadKey::from(small_config()));
  EXPECT_THROW((void)bundle.generator(), std::logic_error);
  EXPECT_THROW((void)bundle.grid(), std::logic_error);
  EXPECT_THROW((void)bundle.store(), std::logic_error);
  EXPECT_THROW((void)bundle.occupancy(), std::logic_error);
}

TEST(WorkloadBundle, SessionRejectsAnUnfrozenBundle) {
  SessionConfig c = small_config();
  auto bundle = std::make_shared<WorkloadBundle>(WorkloadKey::from(c));
  bundle->build_artifacts(1);  // built but never frozen
  c.bundle = bundle;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  EXPECT_THROW(Session{c}, std::invalid_argument);
}

TEST(WorkloadBundle, SessionRejectsAMismatchedBundle) {
  SessionConfig c = small_config();
  c.bundle = WorkloadBundle::build(c);
  SessionConfig other = c;
  other.seed = 12;  // content tracks the seed when content_seed == 0
  EXPECT_THROW(other.validate(), std::invalid_argument);
  EXPECT_THROW(Session{other}, std::invalid_argument);
  // Pinned content makes the same hand-off legal across seeds.
  SessionConfig pinned = small_config();
  pinned.content_seed = 77;
  pinned.bundle = WorkloadBundle::build(pinned);
  SessionConfig pinned_other = pinned;
  pinned_other.seed = 12;
  EXPECT_NO_THROW(pinned_other.validate());
}

TEST(WorkloadBundle, BundledSessionIsBitIdenticalToLegacy) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SessionConfig legacy = small_config();
    legacy.worker_threads = threads;
    Session a(legacy);
    const SessionResult want = a.run();

    SessionConfig bundled = legacy;
    bundled.bundle = WorkloadBundle::build(bundled);
    Session b(bundled);
    const SessionResult got = b.run();
    expect_identical(want, got);
    expect_tiles_identical(want, got);
  }
}

TEST(WorkloadBundle, FleetSharedBundleBitIdenticalAtAnyParallelism) {
  FleetConfig fc;
  fc.session = small_config();
  fc.session.content_seed = 4242;  // shareable: all slots, one video
  fc.sessions = 8;

  fc.share_bundle = false;
  fc.parallel_sessions = 1;
  const FleetResult legacy = run_fleet(fc);

  for (const std::size_t parallel : {std::size_t{1}, std::size_t{8}}) {
    fc.parallel_sessions = parallel;
    fc.share_bundle = true;
    expect_fleet_identical(legacy, run_fleet(fc));
    fc.share_bundle = false;
    expect_fleet_identical(legacy, run_fleet(fc));
  }
}

TEST(WorkloadBundle, FleetWithPinnedContentBuildsExactlyOnce) {
  FleetConfig fc;
  fc.session = small_config();
  fc.session.content_seed = 7;
  fc.sessions = 6;
  fc.parallel_sessions = 1;
  const std::uint64_t before = WorkloadBundle::builds_total();
  const FleetResult result = run_fleet(fc);
  EXPECT_EQ(WorkloadBundle::builds_total() - before, 1u);
  EXPECT_EQ(result.aborted_slots, 0u);
}

TEST(WorkloadBundle, UnpinnedFleetFallsBackToPerSlotBuilds) {
  // content_seed == 0: slot k streams video (seed + k) ^ 0xc0ffee — nothing
  // is shareable and every slot must build privately, share_bundle or not.
  FleetConfig fc;
  fc.session = small_config();
  fc.sessions = 3;
  fc.parallel_sessions = 1;
  const std::uint64_t before = WorkloadBundle::builds_total();
  (void)run_fleet(fc);
  EXPECT_EQ(WorkloadBundle::builds_total() - before, 3u);
}

TEST(WorkloadBundle, ConcurrentSessionsReadingOneBundleStayIdentical) {
  // Two sessions race over one frozen bundle (the TSan target: shared
  // reads of generator/grid/store/occupancy with zero synchronization),
  // then each must match its serially-computed twin bit for bit.
  SessionConfig base = small_config();
  base.content_seed = 99;

  SessionConfig c0 = base;
  c0.seed = 21;
  SessionConfig c1 = base;
  c1.seed = 22;
  Session s0(c0);
  Session s1(c1);
  const SessionResult want0 = s0.run();
  const SessionResult want1 = s1.run();

  const std::shared_ptr<const WorkloadBundle> bundle =
      WorkloadBundle::build(base);
  SessionResult got0;
  SessionResult got1;
  std::thread t0([&] {
    SessionConfig c = c0;
    c.bundle = bundle;
    Session s(c);
    got0 = s.run();
  });
  std::thread t1([&] {
    SessionConfig c = c1;
    c.bundle = bundle;
    Session s(c);
    got1 = s.run();
  });
  t0.join();
  t1.join();
  expect_identical(want0, got0);
  expect_identical(want1, got1);
}

}  // namespace
}  // namespace volcast::core
