// Content-addressed tile cache (pointcloud/tile_cache.h) and the tiling
// stage built on it: encode determinism, insert-or-get dedup, FIFO
// eviction under pressure, corrupt-tile rejection, and — the load-bearing
// property — bit-identical SessionResult/FleetResult whether tiling is
// off or shared, at any worker_threads / parallel_sessions value, with a
// session-local, external, or fleet-shared cache.
#include "pointcloud/tile_cache.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/checkpoint.h"
#include "core/fleet.h"
#include "core/session.h"
#include "session_compare.h"

namespace volcast {
namespace {

vv::TileKey key_of(std::uint32_t frame, std::uint16_t tier,
                   std::uint32_t cell) {
  vv::TileKey key;
  key.content = 0xfeedfacecafef00dULL;
  key.frame = frame;
  key.tier = tier;
  key.cell = cell;
  return key;
}

TEST(TileCache, EncodeIsDeterministicAndKeyed) {
  const vv::Tile a = vv::encode_tile(key_of(3, 1, 7), 1000);
  const vv::Tile b = vv::encode_tile(key_of(3, 1, 7), 1000);
  ASSERT_EQ(a.payload.size(), 1000u);
  EXPECT_EQ(a.payload, b.payload);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_TRUE(a.valid());
  // Any key-field change produces a different bitstream.
  EXPECT_NE(a.payload, vv::encode_tile(key_of(4, 1, 7), 1000).payload);
  EXPECT_NE(a.payload, vv::encode_tile(key_of(3, 2, 7), 1000).payload);
  EXPECT_NE(a.payload, vv::encode_tile(key_of(3, 1, 8), 1000).payload);
  EXPECT_EQ(vv::stitch_tile(a), a.checksum);
}

TEST(TileCache, GetReturnsWhatPutStored) {
  vv::TileCache cache;
  EXPECT_EQ(cache.get(key_of(0, 0, 0)), nullptr);
  EXPECT_EQ(cache.stats().misses.load(), 1u);

  const vv::Tile tile = vv::encode_tile(key_of(0, 0, 0), 256);
  (void)cache.put(tile);
  const auto hit = cache.get(key_of(0, 0, 0));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->payload, tile.payload);
  EXPECT_EQ(cache.stats().hits.load(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.payload_bytes(), 256u);
}

TEST(TileCache, PutIsInsertOrGet) {
  vv::TileCache cache;
  const auto first = cache.put(vv::encode_tile(key_of(1, 0, 2), 128));
  const auto second = cache.put(vv::encode_tile(key_of(1, 0, 2), 128));
  // Two concurrent encoders produce identical bytes; first-in wins and the
  // duplicate is dropped on the floor.
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.stats().insertions.load(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(TileCache, EvictsOldestFirstUnderPressure) {
  vv::TileCache cache(1024);  // room for 4 x 256
  for (std::uint32_t c = 0; c < 4; ++c)
    (void)cache.put(vv::encode_tile(key_of(0, 0, c), 256));
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.stats().evictions.load(), 0u);

  // A fifth insert evicts exactly the oldest entry (cell 0).
  (void)cache.put(vv::encode_tile(key_of(0, 0, 4), 256));
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.payload_bytes(), 1024u);
  EXPECT_EQ(cache.stats().evictions.load(), 1u);
  EXPECT_EQ(cache.get(key_of(0, 0, 0)), nullptr);
  EXPECT_NE(cache.get(key_of(0, 0, 1)), nullptr);
  EXPECT_NE(cache.get(key_of(0, 0, 4)), nullptr);

  // A tile larger than the whole cache is returned but never stored.
  const auto huge = cache.put(vv::encode_tile(key_of(9, 0, 0), 2048));
  ASSERT_NE(huge, nullptr);
  EXPECT_EQ(cache.get(key_of(9, 0, 0)), nullptr);
  EXPECT_EQ(cache.size(), 4u);
}

TEST(TileCache, RejectsAndEvictsCorruptTiles) {
  vv::TileCache cache;
  vv::Tile tile = vv::encode_tile(key_of(2, 1, 3), 64);
  tile.payload[10] ^= 0xff;  // bit rot after checksum computation
  (void)cache.put(std::move(tile));
  ASSERT_EQ(cache.size(), 1u);

  // The corrupt entry is never served: evicted, counted, reported a miss.
  EXPECT_EQ(cache.get(key_of(2, 1, 3)), nullptr);
  EXPECT_EQ(cache.stats().corrupt_rejected.load(), 1u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.payload_bytes(), 0u);

  // A fresh (valid) encode repopulates the slot.
  (void)cache.put(vv::encode_tile(key_of(2, 1, 3), 64));
  EXPECT_NE(cache.get(key_of(2, 1, 3)), nullptr);
}

TEST(TileCache, FreezeStopsStoresButKeepsServing) {
  vv::TileCache cache;
  (void)cache.put(vv::encode_tile(key_of(0, 0, 1), 32));
  cache.freeze();
  ASSERT_TRUE(cache.frozen());
  (void)cache.put(vv::encode_tile(key_of(0, 0, 2), 32));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.get(key_of(0, 0, 1)), nullptr);
  EXPECT_EQ(cache.get(key_of(0, 0, 2)), nullptr);
}

// --- tiling stage / session determinism ----------------------------------

core::SessionConfig fast_config() {
  core::SessionConfig config;
  config.user_count = 4;
  config.duration_s = 1.0;
  config.master_points = 30'000;
  config.video_frames = 20;
  config.worker_threads = 1;
  config.audience_spread_rad = 0.4;  // clustered viewports: heavy overlap
  return config;
}

core::SessionResult run_with_tiling(core::SessionConfig config,
                                    const std::string& policy) {
  config.policy_overrides["tiling"] = policy;
  core::Session session(std::move(config));
  return session.run();
}

TEST(TilingStage, SharedMatchesOffOnEverySimulationField) {
  // Tile assembly is a server-side accounting layer: switching it from
  // per-user encode to encode-once/serve-many must not move a single QoE
  // or link-layer bit.
  const core::SessionResult off = run_with_tiling(fast_config(), "off");
  const core::SessionResult shared = run_with_tiling(fast_config(), "shared");
  core::expect_identical(off, shared);

  // Same tiles assembled either way; shared turns repeats into stitches.
  EXPECT_EQ(off.tiles.requests, shared.tiles.requests);
  EXPECT_GT(off.tiles.requests, 0u);
  EXPECT_EQ(off.tiles.stitched_tiles, 0u);
  EXPECT_EQ(off.tiles.encoded_tiles, off.tiles.requests);
  EXPECT_GT(shared.tiles.stitched_tiles, 0u);
  EXPECT_EQ(shared.tiles.encoded_tiles + shared.tiles.stitched_tiles,
            shared.tiles.requests);
  EXPECT_LT(shared.tiles.encoded_bytes, off.tiles.encoded_bytes);
}

TEST(TilingStage, ReportIsIdenticalAtAnyWorkerThreadCount) {
  core::SessionConfig serial = fast_config();
  core::SessionConfig parallel = fast_config();
  parallel.worker_threads = 4;
  const core::SessionResult a = run_with_tiling(std::move(serial), "shared");
  const core::SessionResult b = run_with_tiling(std::move(parallel), "shared");
  core::expect_identical(a, b);
  core::expect_tiles_identical(a, b);
}

TEST(TilingStage, ExternalCacheMatchesSessionLocalCache) {
  // The report comes from first-touch accounting, so a pre-warmed (or
  // shared, or empty external) cache changes wall clock only.
  vv::TileCache external;
  core::SessionConfig with_cache = fast_config();
  with_cache.tile_cache = &external;
  const core::SessionResult ext =
      run_with_tiling(std::move(with_cache), "shared");
  const core::SessionResult local = run_with_tiling(fast_config(), "shared");
  core::expect_identical(ext, local);
  core::expect_tiles_identical(ext, local);
  EXPECT_GT(external.size(), 0u);

  // Re-running against the now-warm cache: all probes hit, same report.
  const std::uint64_t misses_before = external.stats().misses.load();
  core::SessionConfig rerun = fast_config();
  rerun.tile_cache = &external;
  const core::SessionResult warm = run_with_tiling(std::move(rerun), "shared");
  core::expect_identical(warm, local);
  core::expect_tiles_identical(warm, local);
  EXPECT_EQ(external.stats().misses.load(), misses_before);
}

TEST(TilingStage, TinyCacheEvictionChangesNothingButWallClock) {
  vv::TileCache tiny(4096);  // far below the working set: constant churn
  core::SessionConfig with_tiny = fast_config();
  with_tiny.tile_cache = &tiny;
  const core::SessionResult pressured =
      run_with_tiling(std::move(with_tiny), "shared");
  const core::SessionResult unbounded = run_with_tiling(fast_config(), "shared");
  core::expect_identical(pressured, unbounded);
  core::expect_tiles_identical(pressured, unbounded);
  EXPECT_GT(tiny.stats().evictions.load(), 0u);
  EXPECT_LE(tiny.payload_bytes(), 4096u);
}

TEST(TilingStage, EightUsersTwoClustersEncodeAtLeastTwiceCheaper) {
  // The acceptance bar: 8 users whose viewports collapse into at most two
  // clusters must cut per-user encode cost >= 2x vs the per-user-encode
  // baseline. The arc is 1.5 rad: narrow enough that viewports overlap
  // heavily, wide enough that the users do not stand inside each other's
  // body-blockage shadow (packing 8 people into a 0.4 rad arc blacks out
  // the links entirely and nothing gets scheduled at all).
  core::SessionConfig config = fast_config();
  config.user_count = 8;
  config.audience_spread_rad = 1.5;
  const core::SessionResult off = run_with_tiling(config, "off");
  const core::SessionResult shared = run_with_tiling(config, "shared");
  core::expect_identical(off, shared);
  ASSERT_GT(off.tiles.encoded_bytes, 0u);
  EXPECT_GE(static_cast<double>(off.tiles.encoded_bytes),
            2.0 * static_cast<double>(shared.tiles.encoded_bytes));
}

// --- fleet-shared cache ---------------------------------------------------

core::FleetConfig fast_fleet(std::size_t sessions) {
  core::FleetConfig fc;
  fc.session = fast_config();
  fc.session.user_count = 2;
  fc.session.content_seed = 0x5eedc0de;
  fc.session.policy_overrides["tiling"] = "shared";
  fc.sessions = sessions;
  fc.parallel_sessions = 1;
  return fc;
}

TEST(FleetTileCache, SharedCacheIsIdenticalAtAnyParallelism) {
  core::FleetConfig serial = fast_fleet(8);
  core::FleetConfig parallel = fast_fleet(8);
  parallel.parallel_sessions = 8;
  core::expect_fleet_identical(core::run_fleet(serial),
                               core::run_fleet(parallel));
}

TEST(FleetTileCache, SlotsShareContentAndAggregateTiles) {
  const core::FleetResult fleet = core::run_fleet(fast_fleet(4));
  vv::TileReport sum;
  for (const core::SessionResult& s : fleet.sessions) {
    EXPECT_GT(s.tiles.stitched_tiles, 0u);
    sum.requests += s.tiles.requests;
    sum.encoded_tiles += s.tiles.encoded_tiles;
    sum.stitched_tiles += s.tiles.stitched_tiles;
    sum.encoded_bytes += s.tiles.encoded_bytes;
    sum.stitched_bytes += s.tiles.stitched_bytes;
  }
  EXPECT_EQ(fleet.tiles.requests, sum.requests);
  EXPECT_EQ(fleet.tiles.encoded_tiles, sum.encoded_tiles);
  EXPECT_EQ(fleet.tiles.stitched_tiles, sum.stitched_tiles);
  EXPECT_EQ(fleet.tiles.encoded_bytes, sum.encoded_bytes);
  EXPECT_EQ(fleet.tiles.stitched_bytes, sum.stitched_bytes);
}

TEST(FleetTileCache, KillAndResumeWithSharedCacheIsBitIdentical) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "volcast_tile_ckpt.bin")
          .string();
  std::remove(path.c_str());

  core::FleetConfig killed = fast_fleet(6);
  killed.checkpoint_file = path;
  killed.kill_after_slots = 3;
  EXPECT_THROW((void)core::run_fleet(killed), core::FleetKilled);

  // The resumed run restores 3 slots verbatim and re-runs the rest against
  // a *fresh* shared cache — still bit-identical to an uninterrupted run,
  // because cache state never leaks into results.
  core::FleetConfig resumed = fast_fleet(6);
  resumed.resume_file = path;
  const core::FleetResult a = core::run_fleet(resumed);
  const core::FleetResult b = core::run_fleet(fast_fleet(6));
  core::expect_fleet_identical(a, b);
  std::remove(path.c_str());
}

TEST(FleetTileCache, ContentSeedJoinsTheCheckpointFingerprint) {
  core::FleetConfig a = fast_fleet(2);
  core::FleetConfig b = fast_fleet(2);
  b.session.content_seed = a.session.content_seed + 1;
  EXPECT_NE(core::fleet_fingerprint(a), core::fleet_fingerprint(b));
}

}  // namespace
}  // namespace volcast
