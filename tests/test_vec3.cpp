#include "geometry/vec3.h"

#include <gtest/gtest.h>

#include <cmath>

namespace volcast::geo {
namespace {

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
  EXPECT_EQ(2.0 * a, Vec3(2, 4, 6));
  EXPECT_EQ(a / 2.0, Vec3(0.5, 1, 1.5));
  EXPECT_EQ(-a, Vec3(-1, -2, -3));
}

TEST(Vec3, CompoundAssignment) {
  Vec3 v{1, 1, 1};
  v += {1, 2, 3};
  EXPECT_EQ(v, Vec3(2, 3, 4));
  v -= {1, 1, 1};
  EXPECT_EQ(v, Vec3(1, 2, 3));
  v *= 3.0;
  EXPECT_EQ(v, Vec3(3, 6, 9));
}

TEST(Vec3, DotAndCross) {
  const Vec3 x{1, 0, 0};
  const Vec3 y{0, 1, 0};
  EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
  EXPECT_EQ(x.cross(y), Vec3(0, 0, 1));
  EXPECT_EQ(y.cross(x), Vec3(0, 0, -1));
  const Vec3 a{1, 2, 3};
  EXPECT_DOUBLE_EQ(a.dot(a), a.norm_sq());
}

TEST(Vec3, NormAndDistance) {
  const Vec3 v{3, 4, 0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.distance({3, 4, 12}), 12.0);
}

TEST(Vec3, NormalizedUnitLength) {
  const Vec3 v{2, -3, 6};
  EXPECT_NEAR(v.normalized().norm(), 1.0, 1e-12);
  // Degenerate zero vector maps to +X, never NaN.
  const Vec3 z{0, 0, 0};
  EXPECT_EQ(z.normalized(), Vec3(1, 0, 0));
}

TEST(Vec3, MinMaxComponentwise) {
  const Vec3 a{1, 5, 3};
  const Vec3 b{2, 4, 3};
  EXPECT_EQ(a.min(b), Vec3(1, 4, 3));
  EXPECT_EQ(a.max(b), Vec3(2, 5, 3));
}

TEST(Vec3, Lerp) {
  const Vec3 a{0, 0, 0};
  const Vec3 b{10, 20, 30};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), Vec3(5, 10, 15));
}

TEST(Vec3, CrossOrthogonality) {
  const Vec3 a{1.3, -2.7, 0.4};
  const Vec3 b{-0.2, 1.9, 3.3};
  const Vec3 c = a.cross(b);
  EXPECT_NEAR(c.dot(a), 0.0, 1e-12);
  EXPECT_NEAR(c.dot(b), 0.0, 1e-12);
}

}  // namespace
}  // namespace volcast::geo
