#include "viewport/visibility.h"

#include <gtest/gtest.h>

#include "pointcloud/video_generator.h"

namespace volcast::view {
namespace {

using vv::CellGrid;
using vv::CellId;

/// A simple 4x4x4 grid over the unit-ish box with uniform occupancy.
struct Scene {
  CellGrid grid{geo::Aabb({-0.8, -0.8, 0.0}, {0.8, 0.8, 1.9}), 0.5};
  std::vector<std::uint32_t> occupancy;

  Scene() : occupancy(grid.cell_count(), 100) {}
};

geo::Pose viewer_at(const geo::Vec3& pos, const geo::Vec3& target) {
  return geo::Pose::look_at(pos, target);
}

TEST(VisibilityMap, SetAndQuery) {
  VisibilityMap map(8);
  EXPECT_EQ(map.cell_count(), 8u);
  EXPECT_EQ(map.visible_count(), 0u);
  map.set(3, 0.5);
  EXPECT_TRUE(map.visible(3));
  EXPECT_DOUBLE_EQ(map.lod(3), 0.5);
  EXPECT_FALSE(map.visible(2));
  map.reset(3);
  EXPECT_FALSE(map.visible(3));
}

TEST(VisibilityMap, VisibleCellsAscending) {
  VisibilityMap map(10);
  map.set(7);
  map.set(2);
  map.set(4);
  const auto cells = map.visible_cells();
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], 2u);
  EXPECT_EQ(cells[1], 4u);
  EXPECT_EQ(cells[2], 7u);
}

TEST(VisibilityMap, OutOfRangeThrows) {
  VisibilityMap map(4);
  EXPECT_THROW(map.set(4), std::out_of_range);
  EXPECT_THROW((void)map.visible(99), std::out_of_range);
}

TEST(ComputeVisibility, ViewerFacingContentSeesCells) {
  Scene scene;
  const auto pose = viewer_at({3.0, 0.0, 1.2}, {0.0, 0.0, 1.0});
  const auto map =
      compute_visibility(scene.grid, scene.occupancy, pose, {});
  EXPECT_GT(map.visible_count(), 0u);
}

TEST(ComputeVisibility, ViewerFacingAwaySeesNothing) {
  Scene scene;
  const auto pose = viewer_at({3.0, 0.0, 1.2}, {10.0, 0.0, 1.2});
  const auto map =
      compute_visibility(scene.grid, scene.occupancy, pose, {});
  EXPECT_EQ(map.visible_count(), 0u);
}

TEST(ComputeVisibility, EmptyCellsNeverVisible) {
  Scene scene;
  scene.occupancy.assign(scene.grid.cell_count(), 0);
  scene.occupancy[5] = 50;
  const auto pose = viewer_at({3.0, 0.0, 1.0}, {0.0, 0.0, 1.0});
  const auto map =
      compute_visibility(scene.grid, scene.occupancy, pose, {});
  for (CellId c = 0; c < scene.grid.cell_count(); ++c) {
    if (c != 5) EXPECT_FALSE(map.visible(c));
  }
}

TEST(ComputeVisibility, MismatchedOccupancyReturnsEmpty) {
  Scene scene;
  std::vector<std::uint32_t> wrong(3, 1);
  const auto pose = viewer_at({3.0, 0.0, 1.2}, {0.0, 0.0, 1.0});
  EXPECT_EQ(compute_visibility(scene.grid, wrong, pose, {}).visible_count(),
            0u);
}

TEST(ComputeVisibility, OcclusionHidesBackCells) {
  Scene scene;
  const auto pose = viewer_at({3.0, 0.0, 1.2}, {0.0, 0.0, 1.2});
  VisibilityOptions with;
  VisibilityOptions without;
  without.occlusion_culling = false;
  const auto occluded =
      compute_visibility(scene.grid, scene.occupancy, pose, with);
  const auto all =
      compute_visibility(scene.grid, scene.occupancy, pose, without);
  EXPECT_LT(occluded.visible_count(), all.visible_count());
  // Occlusion culling only removes cells, never adds.
  for (CellId c = 0; c < scene.grid.cell_count(); ++c)
    if (occluded.visible(c)) EXPECT_TRUE(all.visible(c));
}

TEST(ComputeVisibility, DistanceLodReducesFarDensity) {
  Scene scene;
  VisibilityOptions opt;
  opt.occlusion_culling = false;  // isolate the distance term
  const auto near_map = compute_visibility(
      scene.grid, scene.occupancy,
      viewer_at({1.5, 0.0, 1.0}, {0.0, 0.0, 1.0}), opt);
  const auto far_map = compute_visibility(
      scene.grid, scene.occupancy,
      viewer_at({8.0, 0.0, 1.0}, {0.0, 0.0, 1.0}), opt);
  // Far cells get lower LoD than the same cells seen near.
  double near_sum = 0.0;
  double far_sum = 0.0;
  int shared = 0;
  for (CellId c = 0; c < scene.grid.cell_count(); ++c) {
    if (near_map.visible(c) && far_map.visible(c)) {
      near_sum += near_map.lod(c);
      far_sum += far_map.lod(c);
      ++shared;
    }
  }
  ASSERT_GT(shared, 0);
  EXPECT_LT(far_sum, near_sum);
}

TEST(ComputeVisibility, LodNeverBelowFloor) {
  Scene scene;
  VisibilityOptions opt;
  opt.lod_min = 0.25;
  opt.occlusion_culling = false;
  const auto map = compute_visibility(
      scene.grid, scene.occupancy,
      viewer_at({15.0, 0.0, 1.0}, {0.0, 0.0, 1.0}), opt);
  for (CellId c = 0; c < scene.grid.cell_count(); ++c) {
    if (map.visible(c)) EXPECT_GE(map.lod(c), 0.25);
  }
}

TEST(ComputeVisibility, BodyOcclusionHidesCellsBehindPerson) {
  Scene scene;
  const auto pose = viewer_at({3.0, 0.0, 1.2}, {0.0, 0.0, 1.2});
  const BodyObstacle blocker{{1.5, 0.0, 0.0}, 0.3, 1.8};
  const BodyObstacle bystander{{3.0, 3.0, 0.0}, 0.3, 1.8};
  const auto clear =
      compute_visibility(scene.grid, scene.occupancy, pose, {});
  const std::vector<BodyObstacle> blockers{blocker};
  const auto blocked = compute_visibility(scene.grid, scene.occupancy, pose,
                                          {}, blockers);
  const std::vector<BodyObstacle> bystanders{bystander};
  const auto unaffected = compute_visibility(scene.grid, scene.occupancy,
                                             pose, {}, bystanders);
  EXPECT_LT(blocked.visible_count(), clear.visible_count());
  EXPECT_EQ(unaffected.visible_count(), clear.visible_count());
}

TEST(ComputeVisibility, ViewportCullingOffSeesAllOccupied) {
  Scene scene;
  VisibilityOptions opt;
  opt.viewport_culling = false;
  opt.occlusion_culling = false;
  opt.distance_lod = false;
  const auto map = compute_visibility(
      scene.grid, scene.occupancy,
      viewer_at({3.0, 0.0, 1.2}, {10.0, 0.0, 1.2}), opt);
  EXPECT_EQ(map.visible_count(), scene.grid.cell_count());
}

TEST(FetchBytes, SumsVisibleCellsWeightedByLod) {
  class FixedSizer : public FetchSizer {
   public:
    [[nodiscard]] double cell_bytes(vv::CellId) const override { return 100.0; }
  };
  VisibilityMap map(4);
  map.set(0, 1.0);
  map.set(2, 0.5);
  EXPECT_DOUBLE_EQ(fetch_bytes(map, FixedSizer{}), 150.0);
}

TEST(DeviceIntrinsics, HeadsetNarrowerThanPhone) {
  const auto hm = device_intrinsics(trace::DeviceType::kHeadset);
  const auto ph = device_intrinsics(trace::DeviceType::kSmartphone);
  EXPECT_LT(hm.horizontal_fov_rad, ph.horizontal_fov_rad);
}

TEST(ComputeVisibility, RealContentVisibleFraction) {
  // ViVo's headline: visibility-aware fetching needs well under 100% of
  // cells. Check on real generated content.
  vv::VideoConfig vc;
  vc.points_per_frame = 30'000;
  vc.frame_count = 2;
  const vv::VideoGenerator gen(vc);
  const CellGrid grid(gen.content_bounds(), 0.25);
  const auto occupancy = grid.occupancy(gen.frame(0));
  std::size_t occupied = 0;
  for (auto n : occupancy)
    if (n > 0) ++occupied;
  const auto pose = viewer_at({2.0, 0.0, 1.5}, {0.0, 0.0, 1.1});
  VisibilityOptions opt;
  opt.intrinsics = device_intrinsics(trace::DeviceType::kHeadset);
  const auto map = compute_visibility(grid, occupancy, pose, opt);
  EXPECT_GT(map.visible_count(), 0u);
  EXPECT_LT(map.visible_count(), occupied);
}

}  // namespace
}  // namespace volcast::view
