#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace volcast {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    (i < 20 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(EmpiricalDistribution, PercentilesInterpolate) {
  EmpiricalDistribution d;
  for (double x : {10.0, 20.0, 30.0, 40.0, 50.0}) d.add(x);
  EXPECT_DOUBLE_EQ(d.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(d.percentile(100), 50.0);
  EXPECT_DOUBLE_EQ(d.median(), 30.0);
  EXPECT_DOUBLE_EQ(d.percentile(25), 20.0);
  EXPECT_DOUBLE_EQ(d.percentile(12.5), 15.0);  // interpolated
}

TEST(EmpiricalDistribution, PercentileOnEmptyThrows) {
  EmpiricalDistribution d;
  EXPECT_THROW((void)d.percentile(50), std::logic_error);
}

TEST(EmpiricalDistribution, CdfMatchesDefinition) {
  EmpiricalDistribution d;
  for (double x : {1.0, 2.0, 2.0, 3.0}) d.add(x);
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(d.cdf(3.0), 1.0);
  EXPECT_DOUBLE_EQ(d.cdf(99.0), 1.0);
}

TEST(EmpiricalDistribution, AddAllAndSorted) {
  EmpiricalDistribution d;
  const std::vector<double> xs{3.0, 1.0, 2.0};
  d.add_all(xs);
  const auto sorted = d.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 3.0);
  EXPECT_NEAR(d.mean(), 2.0, 1e-12);
}

TEST(EmpiricalDistribution, FormatCdfHasRequestedRows) {
  EmpiricalDistribution d;
  for (int i = 0; i < 100; ++i) d.add(i);
  const std::string text = d.format_cdf(5);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 5);
}

TEST(LinearFit, RecoversExactLine) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 10; ++i) {
    xs.push_back(i);
    ys.push_back(2.5 * i - 1.0);
  }
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.at(20.0), 49.0, 1e-9);
}

TEST(LinearFit, DegenerateXGivesFlatFit) {
  const std::vector<double> xs{3.0, 3.0, 3.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(LinearFit, EmptyInput) {
  const LinearFit fit = fit_line({}, {});
  EXPECT_EQ(fit.slope, 0.0);
  EXPECT_EQ(fit.intercept, 0.0);
}

TEST(HarmonicMean, KnownValue) {
  const std::vector<double> xs{1.0, 2.0, 4.0};
  EXPECT_NEAR(harmonic_mean(xs), 3.0 / (1.0 + 0.5 + 0.25), 1e-12);
}

TEST(HarmonicMean, DominatedBysmallest) {
  const std::vector<double> xs{1000.0, 1000.0, 1.0};
  EXPECT_LT(harmonic_mean(xs), 3.1);
}

TEST(HarmonicMean, NonPositiveSampleYieldsZero) {
  const std::vector<double> xs{1.0, 0.0, 2.0};
  EXPECT_EQ(harmonic_mean(xs), 0.0);
  EXPECT_EQ(harmonic_mean({}), 0.0);
}

class PercentileSweep : public ::testing::TestWithParam<double> {};

TEST_P(PercentileSweep, MonotonicInP) {
  EmpiricalDistribution d;
  for (int i = 0; i < 1000; ++i) d.add(std::sin(i * 0.1) * i);
  const double p = GetParam();
  EXPECT_LE(d.percentile(p), d.percentile(std::min(p + 10.0, 100.0)) + 1e-12);
  EXPECT_GE(d.cdf(d.percentile(p)) + 1e-9, p / 100.0 * 0.9);
}

INSTANTIATE_TEST_SUITE_P(Ps, PercentileSweep,
                         ::testing::Values(0.0, 10.0, 25.0, 50.0, 75.0, 90.0,
                                           99.0, 100.0));

}  // namespace
}  // namespace volcast
