#include "common/table.h"

#include <gtest/gtest.h>

namespace volcast {
namespace {

TEST(AsciiTable, RendersAlignedColumns) {
  AsciiTable t;
  t.header({"name", "value"});
  t.row({"x", "1"});
  t.row({"longer", "22"});
  const std::string out = t.render();
  // Each line has the same prefix width for the first column.
  const auto first_newline = out.find('\n');
  ASSERT_NE(first_newline, std::string::npos);
  EXPECT_NE(out.find("name    value"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
}

TEST(AsciiTable, HeaderRuleSeparatesRows) {
  AsciiTable t;
  t.header({"a"});
  t.row({"b"});
  const std::string out = t.render();
  EXPECT_NE(out.find('-'), std::string::npos);
}

TEST(AsciiTable, NoHeaderNoRule) {
  AsciiTable t;
  t.row({"b", "c"});
  const std::string out = t.render();
  EXPECT_EQ(out.find('-'), std::string::npos);
}

TEST(AsciiTable, NumFormatsPrecision) {
  EXPECT_EQ(AsciiTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::num(30.0, 0), "30");
  EXPECT_EQ(AsciiTable::num(21.55, 1), "21.6");
}

TEST(AsciiTable, RaggedRowsDoNotCrash) {
  AsciiTable t;
  t.header({"a", "b", "c"});
  t.row({"1"});
  t.row({"1", "2", "3", "4"});
  const std::string out = t.render();
  EXPECT_FALSE(out.empty());
}

TEST(AsciiTable, EmptyTableRendersEmpty) {
  AsciiTable t;
  EXPECT_TRUE(t.render().empty());
}

}  // namespace
}  // namespace volcast
