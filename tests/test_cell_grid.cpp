#include "pointcloud/cell_grid.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"

namespace volcast::vv {
namespace {

const geo::Aabb kUnitBox({0, 0, 0}, {1, 1, 1});

TEST(CellGrid, RejectsBadArguments) {
  EXPECT_THROW(CellGrid(kUnitBox, 0.0), std::invalid_argument);
  EXPECT_THROW(CellGrid(kUnitBox, -1.0), std::invalid_argument);
  EXPECT_THROW(CellGrid(geo::Aabb{}, 0.5), std::invalid_argument);
}

TEST(CellGrid, CellCountsMatchDimensions) {
  const CellGrid grid(geo::Aabb({0, 0, 0}, {2, 1, 0.5}), 0.5);
  EXPECT_EQ(grid.nx(), 4u);
  EXPECT_EQ(grid.ny(), 2u);
  EXPECT_EQ(grid.nz(), 1u);
  EXPECT_EQ(grid.cell_count(), 8u);
}

TEST(CellGrid, CellLargerThanContentGivesOneCell) {
  const CellGrid grid(kUnitBox, 5.0);
  EXPECT_EQ(grid.cell_count(), 1u);
}

TEST(CellGrid, PaperCellSizes) {
  // The paper's three partition granularities over a ~1.6x1.6x1.9 m body.
  const geo::Aabb body({-0.8, -0.8, 0.0}, {0.8, 0.8, 1.9});
  EXPECT_EQ(CellGrid(body, 1.00).cell_count(), 2u * 2u * 2u);
  EXPECT_EQ(CellGrid(body, 0.50).cell_count(), 4u * 4u * 4u);
  EXPECT_EQ(CellGrid(body, 0.25).cell_count(),
            7u * 7u * 8u);
}

TEST(CellGrid, CellBoundsTileTheBox) {
  const CellGrid grid(kUnitBox, 0.5);
  double total = 0.0;
  for (CellId c = 0; c < grid.cell_count(); ++c)
    total += grid.cell_bounds(c).volume();
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(CellGrid, CellBoundsOutOfRangeThrows) {
  const CellGrid grid(kUnitBox, 0.5);
  EXPECT_THROW((void)grid.cell_bounds(grid.cell_count()), std::out_of_range);
}

TEST(CellGrid, LocateRoundTripsWithCellBounds) {
  const CellGrid grid(kUnitBox, 0.3);
  for (CellId c = 0; c < grid.cell_count(); ++c) {
    EXPECT_EQ(grid.locate(grid.cell_center(c)), c);
  }
}

TEST(CellGrid, LocateClampsOutOfBoundsPoints) {
  const CellGrid grid(kUnitBox, 0.5);
  EXPECT_EQ(grid.locate({-5, -5, -5}), grid.locate({0, 0, 0}));
  EXPECT_EQ(grid.locate({5, 5, 5}), grid.locate({1, 1, 1}));
}

TEST(CellGrid, AssignPartitionsAllPoints) {
  const CellGrid grid(kUnitBox, 0.5);
  PointCloud cloud;
  for (int i = 0; i < 100; ++i) {
    const double v = i / 100.0;
    cloud.add({{v, 1.0 - v, 0.5}, 0, 0, 0});
  }
  const auto buckets = grid.assign(cloud);
  std::size_t total = 0;
  for (const auto& b : buckets) total += b.size();
  EXPECT_EQ(total, cloud.size());
  // Indices must be valid and unique.
  std::vector<bool> seen(cloud.size(), false);
  for (const auto& b : buckets) {
    for (auto i : b) {
      ASSERT_LT(i, cloud.size());
      EXPECT_FALSE(seen[i]);
      seen[i] = true;
    }
  }
}

TEST(CellGrid, OccupancyMatchesAssign) {
  const CellGrid grid(kUnitBox, 0.34);
  PointCloud cloud;
  volcast::Rng rng(5);
  for (int i = 0; i < 500; ++i)
    cloud.add({{rng.uniform(), rng.uniform(), rng.uniform()}, 0, 0, 0});
  const auto buckets = grid.assign(cloud);
  const auto counts = grid.occupancy(cloud);
  ASSERT_EQ(buckets.size(), counts.size());
  for (std::size_t c = 0; c < counts.size(); ++c)
    EXPECT_EQ(counts[c], buckets[c].size());
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0u), 500u);
}

TEST(CellGrid, PointsLandInContainingCell) {
  const CellGrid grid(kUnitBox, 0.25);
  volcast::Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const geo::Vec3 p{rng.uniform(), rng.uniform(), rng.uniform()};
    const CellId c = grid.locate(p);
    // The located cell's padded bounds must contain the point (padding for
    // boundary points assigned to the lower cell).
    EXPECT_TRUE(grid.cell_bounds(c).padded(1e-9).contains(p));
  }
}

class CellGridSizeSweep : public ::testing::TestWithParam<double> {};

TEST_P(CellGridSizeSweep, FinerGridsHaveMoreCells) {
  const double size = GetParam();
  const CellGrid coarse(kUnitBox, size * 2.0);
  const CellGrid fine(kUnitBox, size);
  EXPECT_GE(fine.cell_count(), coarse.cell_count());
}

INSTANTIATE_TEST_SUITE_P(Sizes, CellGridSizeSweep,
                         ::testing::Values(0.1, 0.2, 0.25, 0.3, 0.5));

}  // namespace
}  // namespace volcast::vv
