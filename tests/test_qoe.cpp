#include "sim/qoe.h"

#include <gtest/gtest.h>

namespace volcast::sim {
namespace {

SessionQoe sample() {
  SessionQoe qoe;
  qoe.duration_s = 10.0;
  qoe.users = {
      {0, 30.0, 0.0, 0.0, 2.0, 1, 150.0},
      {1, 24.0, 2.0, 0.2, 1.0, 5, 120.0},
      {2, 29.6, 0.1, 0.01, 1.5, 2, 140.0},
  };
  return qoe;
}

TEST(SessionQoe, Aggregates) {
  const SessionQoe qoe = sample();
  EXPECT_NEAR(qoe.mean_fps(), (30.0 + 24.0 + 29.6) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(qoe.min_fps(), 24.0);
  EXPECT_NEAR(qoe.total_stall_s(), 2.1, 1e-12);
  EXPECT_NEAR(qoe.mean_quality_tier(), 1.5, 1e-12);
  EXPECT_NEAR(qoe.aggregate_goodput_mbps(), 410.0, 1e-12);
}

TEST(SessionQoe, FractionAtFps) {
  const SessionQoe qoe = sample();
  EXPECT_NEAR(qoe.fraction_at_fps(29.5), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(qoe.fraction_at_fps(20.0), 1.0, 1e-12);
  EXPECT_NEAR(qoe.fraction_at_fps(31.0), 0.0, 1e-12);
}

TEST(SessionQoe, EmptyIsZero) {
  const SessionQoe qoe;
  EXPECT_EQ(qoe.mean_fps(), 0.0);
  EXPECT_EQ(qoe.min_fps(), 0.0);
  EXPECT_EQ(qoe.fraction_at_fps(30.0), 0.0);
}

TEST(SessionQoe, FairnessIndex) {
  SessionQoe qoe = sample();
  // Roughly equal goodputs: close to 1.
  EXPECT_GT(qoe.fairness_index(), 0.95);
  EXPECT_LE(qoe.fairness_index(), 1.0);
  // One starved user drags it down.
  qoe.users[1].mean_goodput_mbps = 1.0;
  EXPECT_LT(qoe.fairness_index(), 0.8);
  // Degenerate cases.
  EXPECT_DOUBLE_EQ(SessionQoe{}.fairness_index(), 1.0);
}

TEST(SessionQoe, SummaryMentionsEveryUser) {
  const std::string text = sample().summary();
  EXPECT_NE(text.find("user 0"), std::string::npos);
  EXPECT_NE(text.find("user 1"), std::string::npos);
  EXPECT_NE(text.find("user 2"), std::string::npos);
  EXPECT_NE(text.find("3 users"), std::string::npos);
}

}  // namespace
}  // namespace volcast::sim
