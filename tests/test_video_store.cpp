#include "pointcloud/video_store.h"

#include <gtest/gtest.h>

namespace volcast::vv {
namespace {

VideoGenerator small_generator() {
  VideoConfig c;
  c.points_per_frame = 20'000;
  c.frame_count = 6;
  return VideoGenerator(c);
}

VideoStoreConfig scaled_tiers(bool exact) {
  VideoStoreConfig sc;
  sc.tiers = {{"low", 12'000}, {"med", 16'000}, {"high", 20'000}};
  sc.exact = exact;
  sc.sample_frames = 2;
  return sc;
}

TEST(VideoStore, RejectsBadTiers) {
  const VideoGenerator gen = small_generator();
  const CellGrid grid(gen.content_bounds(), 0.5);
  VideoStoreConfig sc;
  sc.tiers.clear();
  EXPECT_THROW(VideoStore(gen, grid, sc), std::invalid_argument);
  sc.tiers = {{"too-big", 30'000}};
  EXPECT_THROW(VideoStore(gen, grid, sc), std::invalid_argument);
  sc.tiers = {{"zero", 0}};
  EXPECT_THROW(VideoStore(gen, grid, sc), std::invalid_argument);
}

TEST(VideoStore, DimensionsMatchConfig) {
  const VideoGenerator gen = small_generator();
  const CellGrid grid(gen.content_bounds(), 0.5);
  const VideoStore store(gen, grid, scaled_tiers(false));
  EXPECT_EQ(store.frame_count(), 6u);
  EXPECT_EQ(store.tier_count(), 3u);
  EXPECT_DOUBLE_EQ(store.fps(), 30.0);
}

TEST(VideoStore, CellPointsSumToTierBudget) {
  const VideoGenerator gen = small_generator();
  const CellGrid grid(gen.content_bounds(), 0.5);
  const VideoStore store(gen, grid, scaled_tiers(false));
  for (std::size_t q = 0; q < 3; ++q) {
    std::size_t total = 0;
    for (CellId c = 0; c < grid.cell_count(); ++c)
      total += store.cell_points(0, q, c);
    const std::size_t budget = scaled_tiers(false).tiers[q].points_per_frame;
    EXPECT_NEAR(static_cast<double>(total), static_cast<double>(budget),
                static_cast<double>(budget) * 0.05);
  }
}

TEST(VideoStore, HigherTierIsLarger) {
  const VideoGenerator gen = small_generator();
  const CellGrid grid(gen.content_bounds(), 0.5);
  const VideoStore store(gen, grid, scaled_tiers(false));
  for (std::size_t f = 0; f < store.frame_count(); ++f) {
    EXPECT_LT(store.frame_bytes(f, 0), store.frame_bytes(f, 1));
    EXPECT_LT(store.frame_bytes(f, 1), store.frame_bytes(f, 2));
  }
}

TEST(VideoStore, EmptyCellsHaveZeroBytes) {
  const VideoGenerator gen = small_generator();
  const CellGrid grid(gen.content_bounds(), 0.25);
  const VideoStore store(gen, grid, scaled_tiers(false));
  std::size_t empty_cells = 0;
  for (CellId c = 0; c < grid.cell_count(); ++c) {
    if (store.cell_points(0, 2, c) == 0) {
      EXPECT_EQ(store.cell_bytes(0, 2, c), 0u);
      ++empty_cells;
    } else {
      EXPECT_GT(store.cell_bytes(0, 2, c), 0u);
    }
  }
  EXPECT_GT(empty_cells, 0u);  // a human figure never fills the whole box
}

TEST(VideoStore, ModeledSizesTrackExactSizes) {
  const VideoGenerator gen = small_generator();
  const CellGrid grid(gen.content_bounds(), 0.5);
  const VideoStore exact(gen, grid, scaled_tiers(true));
  const VideoStore modeled(gen, grid, scaled_tiers(false));
  // Frames beyond the sample window are modeled; totals must agree within
  // 15% (the linear model's tolerance).
  for (std::size_t f = 3; f < 6; ++f) {
    const double e = static_cast<double>(exact.frame_bytes(f, 2));
    const double m = static_cast<double>(modeled.frame_bytes(f, 2));
    EXPECT_NEAR(m / e, 1.0, 0.15) << "frame " << f;
  }
}

TEST(VideoStore, BitrateScalesWithPointCount) {
  const VideoGenerator gen = small_generator();
  const CellGrid grid(gen.content_bounds(), 0.5);
  const VideoStore store(gen, grid, scaled_tiers(false));
  const double low = store.tier_bitrate_mbps(0);
  const double high = store.tier_bitrate_mbps(2);
  EXPECT_GT(low, 0.0);
  // 12K -> 20K points is a 1.67x increase; bitrate should grow comparably.
  EXPECT_NEAR(high / low, 20.0 / 12.0, 0.35);
}

TEST(VideoStore, BitsPerPointInCodecRegime) {
  const VideoGenerator gen = small_generator();
  const CellGrid grid(gen.content_bounds(), 0.5);
  const VideoStore store(gen, grid, scaled_tiers(true));
  for (std::size_t q = 0; q < 3; ++q) {
    const double bpp = store.tier_bits_per_point(q);
    EXPECT_GT(bpp, 10.0);
    EXPECT_LT(bpp, 60.0);
  }
}

TEST(VideoStore, AccessorsRangeCheck) {
  const VideoGenerator gen = small_generator();
  const CellGrid grid(gen.content_bounds(), 0.5);
  const VideoStore store(gen, grid, scaled_tiers(false));
  EXPECT_THROW((void)store.cell_bytes(99, 0, 0), std::out_of_range);
  EXPECT_THROW((void)store.cell_bytes(0, 99, 0), std::out_of_range);
  EXPECT_THROW((void)store.cell_bytes(0, 0, grid.cell_count() + 5),
               std::out_of_range);
}

TEST(VideoStore, OctreeBackendWorks) {
  const VideoGenerator gen = small_generator();
  const CellGrid grid(gen.content_bounds(), 0.5);
  VideoStoreConfig sc = scaled_tiers(false);
  sc.codec_kind = StoreCodec::kOctree;
  const VideoStore store(gen, grid, sc);
  EXPECT_GT(store.tier_bitrate_mbps(2), 0.0);
  // Octree sizing stays within a factor of ~2.5 of the Morton pipeline.
  const VideoStore morton(gen, grid, scaled_tiers(false));
  const double ratio =
      store.tier_bitrate_mbps(2) / morton.tier_bitrate_mbps(2);
  EXPECT_GT(ratio, 0.3);
  EXPECT_LT(ratio, 2.5);
}

TEST(VideoStore, PaperTiersAreDefault) {
  const auto tiers = paper_quality_tiers();
  ASSERT_EQ(tiers.size(), 3u);
  EXPECT_EQ(tiers[0].points_per_frame, 330'000u);
  EXPECT_EQ(tiers[1].points_per_frame, 430'000u);
  EXPECT_EQ(tiers[2].points_per_frame, 550'000u);
}

}  // namespace
}  // namespace volcast::vv
