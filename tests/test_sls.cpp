#include "mmwave/sls.h"

#include <gtest/gtest.h>

namespace volcast::mmwave {
namespace {

TEST(Sls, OnAirScalesLinearlyWithSectors) {
  const SlsProcedure sls;
  const double at20 = sls.on_air_s(20);
  const double at40 = sls.on_air_s(40);
  // Twice the sectors ~ twice the SSW frames (feedback is constant).
  EXPECT_NEAR(at40 - sls.timing().feedback_s,
              2.0 * (at20 - sls.timing().feedback_s), 1e-12);
}

TEST(Sls, OutageInPaperBand) {
  // "a delay of up to 5 to 20 ms" for re-searching beams.
  const SlsProcedure sls;
  for (std::size_t sectors : {16u, 32u, 39u, 64u}) {
    const double ms = sls.outage_s(sectors) * 1e3;
    EXPECT_GT(ms, 4.0) << sectors << " sectors";
    EXPECT_LT(ms, 30.0) << sectors << " sectors";
  }
}

TEST(Sls, OutageExceedsOnAir) {
  const SlsProcedure sls;
  EXPECT_GT(sls.outage_s(39), sls.on_air_s(39));
}

TEST(Sls, CodebookOverloadMatchesSectorCount) {
  const geo::Pose pose;
  const PhasedArray array({}, pose, 60.48e9);
  const Codebook codebook(array);
  const SlsProcedure sls;
  EXPECT_DOUBLE_EQ(sls.outage_s(codebook), sls.outage_s(codebook.size()));
}

TEST(Sls, CustomTimingRespected) {
  SlsTiming timing;
  timing.mac_stretch = 1.0;
  const SlsProcedure sls(timing);
  EXPECT_DOUBLE_EQ(sls.outage_s(10), sls.on_air_s(10));
}

TEST(Sls, ZeroSectorsCostsOnlyFeedback) {
  const SlsProcedure sls;
  EXPECT_DOUBLE_EQ(sls.on_air_s(0), sls.timing().feedback_s);
}

}  // namespace
}  // namespace volcast::mmwave
