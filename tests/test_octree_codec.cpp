#include "pointcloud/octree_codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>

#include "common/rng.h"
#include "pointcloud/codec.h"
#include "pointcloud/video_generator.h"

namespace volcast::vv {
namespace {

PointCloud random_cloud(std::size_t n, std::uint64_t seed) {
  volcast::Rng rng(seed);
  PointCloud cloud;
  for (std::size_t i = 0; i < n; ++i) {
    cloud.add({{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(0, 2)},
               static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
               static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
               static_cast<std::uint8_t>(rng.uniform_int(0, 255))});
  }
  return cloud;
}

TEST(OctreeCodec, EmptyCloudRoundTrips) {
  const auto blob = octree_encode(PointCloud{});
  EXPECT_TRUE(octree_decode(blob).empty());
  EXPECT_EQ(octree_voxel_count(blob), 0u);
}

TEST(OctreeCodec, SinglePointAtVoxelCenter) {
  PointCloud cloud;
  cloud.add({{0.5, 0.25, 1.0}, 10, 20, 30});
  const PointCloud back = octree_decode(octree_encode(cloud));
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back.points()[0].r, 10);
  EXPECT_EQ(back.points()[0].g, 20);
  EXPECT_EQ(back.points()[0].b, 30);
}

TEST(OctreeCodec, EveryDecodedVoxelNearAnInputPoint) {
  // Geometry-fidelity property: each decoded voxel center lies within one
  // voxel diagonal of some input point (no phantom geometry).
  const PointCloud cloud = random_cloud(1500, 1);
  OctreeCodecConfig config;
  config.depth = 8;
  const PointCloud back = octree_decode(octree_encode(cloud, config));
  const geo::Vec3 extent = cloud.bounds().extent();
  const double span = std::max({extent.x, extent.y, extent.z});
  const double voxel_diag = std::sqrt(3.0) * span / 256.0;
  for (const Point& v : back.points()) {
    double best = 1e18;
    for (const Point& p : cloud.points())
      best = std::min(best, v.position.distance(p.position));
    ASSERT_LE(best, voxel_diag);
  }
}

TEST(OctreeCodec, DuplicatePointsCollapseToOneVoxel) {
  PointCloud cloud;
  for (int i = 0; i < 50; ++i) cloud.add({{0.1, 0.1, 0.1}, 100, 100, 100});
  cloud.add({{0.9, 0.9, 0.9}, 1, 2, 3});
  const auto blob = octree_encode(cloud);
  EXPECT_EQ(octree_voxel_count(blob), 2u);
  EXPECT_EQ(octree_decode(blob).size(), 2u);
}

TEST(OctreeCodec, PositionErrorBoundedByVoxelSize) {
  const PointCloud cloud = random_cloud(1000, 2);
  OctreeCodecConfig config;
  config.depth = 10;
  const PointCloud back = octree_decode(octree_encode(cloud, config));
  // Every decoded voxel center lies within half a voxel of the input
  // bounds (centers sit at (q + 0.5) * step).
  const geo::Vec3 extent = cloud.bounds().extent();
  const double span = std::max({extent.x, extent.y, extent.z});
  const auto bounds = cloud.bounds().padded(span / 1024.0);
  for (const Point& p : back.points())
    EXPECT_TRUE(bounds.contains(p.position));
}

TEST(OctreeCodec, ColorsAveragedWithinVoxel) {
  PointCloud cloud;
  cloud.add({{0.2, 0.2, 0.2}, 100, 0, 0});
  cloud.add({{0.2, 0.2, 0.2}, 200, 0, 0});
  cloud.add({{0.8, 0.8, 0.8}, 0, 50, 0});
  const PointCloud back = octree_decode(octree_encode(cloud));
  ASSERT_EQ(back.size(), 2u);
  bool found_average = false;
  for (const Point& p : back.points())
    if (p.r == 150) found_average = true;
  EXPECT_TRUE(found_average);
}

TEST(OctreeCodec, NoColorModeGrey) {
  PointCloud cloud;
  cloud.add({{0.1, 0.2, 0.3}, 9, 9, 9});
  OctreeCodecConfig config;
  config.encode_colors = false;
  const PointCloud back = octree_decode(octree_encode(cloud, config));
  EXPECT_EQ(back.points()[0].r, 128);
}

TEST(OctreeCodec, RejectsBadDepth) {
  OctreeCodecConfig config;
  config.depth = 0;
  EXPECT_THROW((void)octree_encode(PointCloud{}, config),
               std::invalid_argument);
  config.depth = 17;
  EXPECT_THROW((void)octree_encode(PointCloud{}, config),
               std::invalid_argument);
}

TEST(OctreeCodec, RejectsMalformedHeader) {
  EXPECT_THROW((void)octree_decode(std::vector<std::uint8_t>(10, 0)),
               std::runtime_error);
  std::vector<std::uint8_t> junk(64, 0xcd);
  EXPECT_THROW((void)octree_decode(junk), std::runtime_error);
  EXPECT_THROW((void)octree_voxel_count(junk), std::runtime_error);
}

TEST(OctreeCodec, CompressesRealContentWell) {
  VideoConfig vc;
  vc.points_per_frame = 60'000;
  vc.frame_count = 2;
  const VideoGenerator gen(vc);
  const PointCloud cloud = gen.frame(0);
  const auto blob = octree_encode(cloud);
  const std::size_t voxels = octree_voxel_count(blob);
  const double bits_per_voxel =
      8.0 * static_cast<double>(blob.size()) / static_cast<double>(voxels);
  EXPECT_LT(bits_per_voxel, 32.0);
  EXPECT_GT(bits_per_voxel, 4.0);
}

TEST(OctreeCodec, ComparableToMortonDeltaCodec) {
  // The two pipelines compress the same content within ~2x of each other —
  // a sanity check that both are in the realistic PCC regime.
  VideoConfig vc;
  vc.points_per_frame = 40'000;
  vc.frame_count = 2;
  const VideoGenerator gen(vc);
  const PointCloud cloud = gen.frame(0);
  const auto octree_blob = octree_encode(cloud);
  const auto morton_blob = encode(cloud);
  const double ratio = static_cast<double>(octree_blob.size()) /
                       static_cast<double>(morton_blob.size());
  EXPECT_GT(ratio, 0.3);
  EXPECT_LT(ratio, 2.5);
}

class OctreeDepthSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(OctreeDepthSweep, RoundTripsAtAnyDepth) {
  const PointCloud cloud = random_cloud(2000, 7);
  OctreeCodecConfig config;
  config.depth = GetParam();
  const auto blob = octree_encode(cloud, config);
  const PointCloud back = octree_decode(blob);
  EXPECT_EQ(back.size(), octree_voxel_count(blob));
  EXPECT_GT(back.size(), 0u);
  // Coarser trees merge more voxels.
  EXPECT_LE(back.size(), cloud.size());
}

INSTANTIATE_TEST_SUITE_P(Depths, OctreeDepthSweep,
                         ::testing::Values(1u, 4u, 8u, 10u, 12u, 16u));

TEST(OctreeCodec, DeeperTreesKeepMoreVoxels) {
  const PointCloud cloud = random_cloud(5000, 9);
  std::size_t last = 0;
  for (unsigned depth : {4u, 6u, 8u, 10u}) {
    OctreeCodecConfig config;
    config.depth = depth;
    const std::size_t voxels = octree_voxel_count(octree_encode(cloud, config));
    EXPECT_GE(voxels, last);
    last = voxels;
  }
}

}  // namespace
}  // namespace volcast::vv
