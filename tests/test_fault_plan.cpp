// Fault plan, injector and health machine: the chaos layer itself must be
// deterministic and strictly validated before it is allowed to disturb a
// session.
#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "fault/health.h"
#include "fault/injector.h"

namespace volcast::fault {
namespace {

FaultEvent event(double t, FaultKind kind, std::size_t target,
                 double duration = 1.0) {
  FaultEvent e;
  e.t_s = t;
  e.kind = kind;
  e.target = target;
  e.duration_s = duration;
  return e;
}

TEST(FaultPlan, AddKeepsEventsSortedByOnset) {
  FaultPlan plan;
  plan.add(event(3.0, FaultKind::kUserLeave, 0));
  plan.add(event(1.0, FaultKind::kBeamProbeFail, 1));
  plan.add(event(2.0, FaultKind::kDecoderStall, 2));
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_DOUBLE_EQ(plan.events()[0].t_s, 1.0);
  EXPECT_DOUBLE_EQ(plan.events()[1].t_s, 2.0);
  EXPECT_DOUBLE_EQ(plan.events()[2].t_s, 3.0);
}

TEST(FaultPlan, ValidateRejectsNegativeOnset) {
  FaultPlan plan;
  plan.add(event(-0.1, FaultKind::kUserLeave, 0));
  EXPECT_THROW(plan.validate(4, 1), std::invalid_argument);
}

TEST(FaultPlan, ValidateRejectsApIndexOutOfRange) {
  FaultPlan plan;
  plan.add(event(1.0, FaultKind::kApOutage, 2));
  EXPECT_THROW(plan.validate(4, 2), std::invalid_argument);
  plan = FaultPlan();
  plan.add(event(1.0, FaultKind::kApOutage, 1));
  EXPECT_NO_THROW(plan.validate(4, 2));
}

TEST(FaultPlan, ValidateRejectsUserIndexOutOfRange) {
  for (FaultKind kind : {FaultKind::kUserLeave, FaultKind::kBeamProbeFail,
                         FaultKind::kStuckSector, FaultKind::kDecoderStall}) {
    FaultPlan plan;
    plan.add(event(1.0, kind, 4));
    EXPECT_THROW(plan.validate(4, 1), std::invalid_argument)
        << to_string(kind);
  }
}

TEST(FaultPlan, ValidateRejectsBadLossProbability) {
  FaultPlan plan;
  FaultEvent e = event(1.0, FaultKind::kFrameLoss, 0);
  e.magnitude = 1.5;
  plan.add(e);
  EXPECT_THROW(plan.validate(4, 1), std::invalid_argument);
}

TEST(FaultPlan, ValidateAcceptsAllUsersFrameLoss) {
  FaultPlan plan;
  FaultEvent e = event(1.0, FaultKind::kFrameLoss, kAllUsers);
  e.magnitude = 0.5;
  plan.add(e);
  EXPECT_NO_THROW(plan.validate(4, 1));
}

TEST(FaultPlan, ValidateRejectsNegativeObstacleRadius) {
  FaultPlan plan;
  FaultEvent e = event(1.0, FaultKind::kObstacleSpawn, 0);
  e.magnitude = -0.2;
  plan.add(e);
  EXPECT_THROW(plan.validate(4, 1), std::invalid_argument);
}

TEST(FaultPlan, SummaryMentionsEveryEvent) {
  FaultPlan plan;
  plan.add(event(1.0, FaultKind::kApOutage, 0));
  plan.add(event(2.0, FaultKind::kStuckSector, 1, /*duration=*/0.0));
  const std::string text = plan.summary();
  EXPECT_NE(text.find("ap-outage"), std::string::npos);
  EXPECT_NE(text.find("stuck-sector"), std::string::npos);
  EXPECT_NE(text.find("permanent"), std::string::npos);
}

TEST(FaultPlan, RandomPlanIsDeterministicPerSeed) {
  ChaosConfig config;
  config.seed = 42;
  config.intensity = 1.0;
  const FaultPlan a = random_plan(config);
  const FaultPlan b = random_plan(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.events()[i].t_s, b.events()[i].t_s);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].target, b.events()[i].target);
    EXPECT_DOUBLE_EQ(a.events()[i].magnitude, b.events()[i].magnitude);
  }
  config.seed = 43;
  const FaultPlan c = random_plan(config);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i)
    differs = a.events()[i].t_s != c.events()[i].t_s ||
              a.events()[i].kind != c.events()[i].kind;
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, RandomPlanIsNeverEmptyAndValidates) {
  ChaosConfig config;
  config.intensity = 1e-6;  // far below one expected event
  const FaultPlan plan = random_plan(config);
  EXPECT_GE(plan.size(), 1u);
  EXPECT_NO_THROW(plan.validate(config.user_count, config.ap_count));
}

TEST(FaultPlan, RandomPlanSkipsApOutagesWithSingleAp) {
  ChaosConfig config;
  config.intensity = 5.0;
  config.ap_count = 1;
  const FaultPlan plan = random_plan(config);
  for (const FaultEvent& e : plan.events())
    EXPECT_NE(e.kind, FaultKind::kApOutage);
}

TEST(FaultInjector, ActivationWindowRespectsOnsetAndDuration) {
  FaultPlan plan;
  plan.add(event(1.0, FaultKind::kBeamProbeFail, 0, /*duration=*/0.5));
  FaultInjector injector(plan, 2, 1, 1);
  injector.advance(0.0);
  EXPECT_FALSE(injector.probe_fail(0));
  EXPECT_FALSE(injector.any_active());
  injector.advance(1.0);
  EXPECT_TRUE(injector.probe_fail(0));
  EXPECT_FALSE(injector.probe_fail(1));
  EXPECT_TRUE(injector.any_active());
  EXPECT_EQ(injector.fired(), 1u);
  injector.advance(1.4);
  EXPECT_TRUE(injector.probe_fail(0));
  injector.advance(1.6);
  EXPECT_FALSE(injector.probe_fail(0));
  EXPECT_FALSE(injector.any_active());
}

TEST(FaultInjector, PermanentFaultNeverExpires) {
  FaultPlan plan;
  plan.add(event(1.0, FaultKind::kUserLeave, 1, /*duration=*/0.0));
  FaultInjector injector(plan, 2, 1, 1);
  injector.advance(2.0);
  EXPECT_TRUE(injector.user_absent(1));
  injector.advance(1e9);
  EXPECT_TRUE(injector.user_absent(1));
}

TEST(FaultInjector, ApOutageAndObstaclesReport) {
  FaultPlan plan;
  plan.add(event(0.5, FaultKind::kApOutage, 1, /*duration=*/1.0));
  FaultEvent ob = event(0.5, FaultKind::kObstacleSpawn, 0, /*duration=*/1.0);
  ob.position = {3.0, 2.0, 0.0};
  ob.magnitude = 0.5;
  plan.add(ob);
  FaultInjector injector(plan, 2, 2, 1);
  injector.advance(0.6);
  EXPECT_FALSE(injector.ap_down(0));
  EXPECT_TRUE(injector.ap_down(1));
  ASSERT_EQ(injector.obstacles().size(), 1u);
  EXPECT_DOUBLE_EQ(injector.obstacles()[0].radius_m, 0.5);
  injector.advance(2.0);
  EXPECT_FALSE(injector.ap_down(1));
  EXPECT_TRUE(injector.obstacles().empty());
}

TEST(FaultInjector, FrameLossDrawsAreDeterministicAndBounded) {
  FaultPlan plan;
  FaultEvent e = event(0.0, FaultKind::kFrameLoss, kAllUsers,
                       /*duration=*/0.0);
  e.magnitude = 0.4;
  plan.add(e);
  FaultInjector a(plan, 2, 1, 7);
  FaultInjector b(plan, 2, 1, 7);
  a.advance(0.1);
  b.advance(0.1);
  std::size_t losses = 0;
  for (std::size_t tick = 0; tick < 1000; ++tick) {
    ASSERT_EQ(a.frame_lost(0, tick), b.frame_lost(0, tick));
    if (a.frame_lost(0, tick)) ++losses;
  }
  // Empirical loss rate tracks the configured probability.
  EXPECT_GT(losses, 300u);
  EXPECT_LT(losses, 500u);

  // A different seed gives a different (but equally reproducible) pattern.
  FaultInjector c(plan, 2, 1, 8);
  c.advance(0.1);
  std::size_t differs = 0;
  for (std::size_t tick = 0; tick < 1000; ++tick)
    if (a.frame_lost(0, tick) != c.frame_lost(0, tick)) ++differs;
  EXPECT_GT(differs, 0u);
}

TEST(FaultInjector, NoLossDrawWithoutActiveFault) {
  FaultPlan plan;
  FaultEvent e = event(5.0, FaultKind::kFrameLoss, 0, /*duration=*/1.0);
  e.magnitude = 1.0;
  plan.add(e);
  FaultInjector injector(plan, 1, 1, 1);
  injector.advance(0.1);
  EXPECT_DOUBLE_EQ(injector.frame_loss_probability(0), 0.0);
  for (std::size_t tick = 0; tick < 100; ++tick)
    EXPECT_FALSE(injector.frame_lost(0, tick));
}

TEST(HealthMonitor, EpisodeMeasuresTimeToRecover) {
  HealthConfig config;
  config.recovery_ticks = 2;
  HealthMonitor monitor(config);
  EXPECT_EQ(monitor.state(), HealthState::kHealthy);
  // t=0: outage opens an episode.
  EXPECT_EQ(monitor.observe(0.0, false, 0.0, false), HealthState::kOutage);
  EXPECT_EQ(monitor.observe(0.1, false, 0.0, false), HealthState::kOutage);
  // Good ticks: recovering, then healthy after 2 consecutive.
  EXPECT_EQ(monitor.observe(0.2, true, 100.0, false),
            HealthState::kRecovering);
  EXPECT_EQ(monitor.observe(0.3, true, 100.0, false), HealthState::kHealthy);
  ASSERT_EQ(monitor.recovery_times().size(), 1u);
  EXPECT_NEAR(monitor.recovery_times()[0], 0.3, 1e-12);
  EXPECT_GT(monitor.transitions(), 0u);
}

TEST(HealthMonitor, LowRateOrImpairmentDegrades) {
  HealthMonitor monitor;
  EXPECT_EQ(monitor.observe(0.0, true, 10.0, false), HealthState::kDegraded);
  HealthMonitor other;
  EXPECT_EQ(other.observe(0.0, true, 100.0, true), HealthState::kDegraded);
}

TEST(HealthMonitor, RelapseDuringRecoveryKeepsEpisodeOpen) {
  HealthConfig config;
  config.recovery_ticks = 3;
  HealthMonitor monitor(config);
  monitor.observe(0.0, false, 0.0, false);   // outage
  monitor.observe(0.1, true, 100.0, false);  // recovering
  monitor.observe(0.2, false, 0.0, false);   // relapse
  EXPECT_EQ(monitor.state(), HealthState::kOutage);
  EXPECT_TRUE(monitor.recovery_times().empty());
  monitor.observe(0.3, true, 100.0, false);
  monitor.observe(0.4, true, 100.0, false);
  monitor.observe(0.5, true, 100.0, false);
  EXPECT_EQ(monitor.state(), HealthState::kHealthy);
  ASSERT_EQ(monitor.recovery_times().size(), 1u);
  EXPECT_NEAR(monitor.recovery_times()[0], 0.5, 1e-12);
}

}  // namespace
}  // namespace volcast::fault
