// Configuration-matrix property sweep: the session must hold its core
// invariants under every combination of grouping policy, adaptation policy
// and bandwidth estimator — not just the defaults the other tests use.
#include <gtest/gtest.h>

#include <tuple>

#include "core/session.h"

namespace volcast::core {
namespace {

using MatrixParam =
    std::tuple<GroupingPolicy, AdaptationPolicy, BandwidthEstimator>;

class SessionMatrix : public ::testing::TestWithParam<MatrixParam> {};

SessionConfig matrix_config(const MatrixParam& param) {
  SessionConfig c;
  c.user_count = 3;
  c.duration_s = 2.0;
  c.master_points = 30'000;
  c.video_frames = 20;
  c.grouping = std::get<0>(param);
  c.adaptation = std::get<1>(param);
  c.estimator = std::get<2>(param);
  return c;
}

TEST_P(SessionMatrix, InvariantsHoldUnderEveryPolicyCombination) {
  const SessionConfig config = matrix_config(GetParam());
  Session session(config);
  const SessionResult r = session.run();

  // Delivery happened and stayed within physical bounds.
  ASSERT_EQ(r.qoe.users.size(), config.user_count);
  EXPECT_GT(r.qoe.mean_fps(), 10.0);
  EXPECT_LE(r.qoe.mean_fps(), 30.0 + 1e-9);
  EXPECT_GE(r.mean_airtime_utilization, 0.0);
  EXPECT_LT(r.mean_airtime_utilization, 1.5);

  // Shares and sizes are well-formed.
  EXPECT_GE(r.multicast_bit_share, 0.0);
  EXPECT_LE(r.multicast_bit_share, 1.0);
  if (config.grouping == GroupingPolicy::kUnicastOnly)
    EXPECT_DOUBLE_EQ(r.multicast_bit_share, 0.0);
  EXPECT_GE(r.mean_group_size, 1.0 - 1e-9);

  // Per-user QoE fields are sane.
  for (const auto& u : r.qoe.users) {
    EXPECT_GE(u.stall_time_s, 0.0);
    EXPECT_LE(u.stall_time_s, config.duration_s + 1e-9);
    EXPECT_GE(u.mean_quality_tier, 0.0);
    EXPECT_LE(u.mean_quality_tier, 2.0);
    EXPECT_GE(u.viewport_miss_ratio, 0.0);
    EXPECT_LE(u.viewport_miss_ratio, 1.0);
    EXPECT_GE(u.mean_m2p_latency_s, 0.0);
    EXPECT_LE(u.mean_m2p_latency_s, config.max_backlog_s + 0.1);
    EXPECT_LE(u.mean_m2p_latency_s, u.max_m2p_latency_s + 1e-12);
  }
  EXPECT_GT(r.qoe.fairness_index(), 0.3);
  EXPECT_LE(r.qoe.fairness_index(), 1.0 + 1e-12);

  // Determinism under the same configuration.
  Session again(config);
  const SessionResult r2 = again.run();
  EXPECT_DOUBLE_EQ(r2.qoe.mean_fps(), r.qoe.mean_fps());
  EXPECT_DOUBLE_EQ(r2.multicast_bit_share, r.multicast_bit_share);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, SessionMatrix,
    ::testing::Combine(
        ::testing::Values(GroupingPolicy::kUnicastOnly,
                          GroupingPolicy::kGreedyIoU,
                          GroupingPolicy::kPairsOnly),
        ::testing::Values(AdaptationPolicy::kNone,
                          AdaptationPolicy::kBufferOnly,
                          AdaptationPolicy::kCrossLayer),
        ::testing::Values(BandwidthEstimator::kAppOnly,
                          BandwidthEstimator::kCrossLayer)),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      std::string name = to_string(std::get<0>(info.param));
      name += "_";
      name += to_string(std::get<1>(info.param));
      name += "_";
      name += to_string(std::get<2>(info.param));
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

}  // namespace
}  // namespace volcast::core
