#include "mmwave/link.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.h"

namespace volcast::mmwave {
namespace {

struct Rig {
  Channel channel{Room{}};
  geo::Pose ap_pose = geo::Pose::look_at({4, 0.1, 2.6}, {4, 3, 1.2});
  PhasedArray ap{{}, ap_pose, kMmWaveCarrierHz};
  Codebook codebook{ap};
  LinkBudget budget{};
};

TEST(Link, SteeredBeamGivesUsableRss) {
  Rig s;
  const geo::Vec3 user{4.0, 3.0, 1.5};
  const double rss = rss_dbm(s.ap, s.ap.steer_at(user), s.channel, user, {},
                             s.budget);
  EXPECT_GT(rss, -68.0);  // at least MCS 1 at 3 m
  EXPECT_LT(rss, -30.0);  // but not implausibly hot
}

TEST(Link, RssFallsWithDistance) {
  Rig s;
  const geo::Vec3 near_user{4.0, 2.0, 1.5};
  const geo::Vec3 far_user{4.0, 5.5, 1.5};
  const double near_rss = rss_dbm(s.ap, s.ap.steer_at(near_user), s.channel,
                                  near_user, {}, s.budget);
  const double far_rss = rss_dbm(s.ap, s.ap.steer_at(far_user), s.channel,
                                 far_user, {}, s.budget);
  EXPECT_GT(near_rss, far_rss);
}

TEST(Link, MisalignedBeamLosesManyDb) {
  Rig s;
  const geo::Vec3 user{2.0, 3.0, 1.5};
  const geo::Vec3 elsewhere{6.5, 3.0, 1.5};
  const double aligned = rss_dbm(s.ap, s.ap.steer_at(user), s.channel, user,
                                 {}, s.budget);
  const double misaligned = rss_dbm(s.ap, s.ap.steer_at(elsewhere), s.channel,
                                    user, {}, s.budget);
  EXPECT_GT(aligned - misaligned, 10.0);
}

TEST(Link, BodyBlockageDropsRss) {
  Rig s;
  const geo::Vec3 user{4.0, 4.0, 1.5};
  const geo::BodyObstacle blocker{{4.0, 3.2, 0.0}, 0.25, 1.8};
  const Awv w = s.ap.steer_at(user);
  const double clear = rss_dbm(s.ap, w, s.channel, user, {}, s.budget);
  const std::vector<geo::BodyObstacle> bodies{blocker};
  const double blocked = rss_dbm(s.ap, w, s.channel, user, bodies, s.budget);
  EXPECT_GT(clear - blocked, 8.0);
  // Reflections keep the link alive (not -200).
  EXPECT_GT(blocked, -110.0);
}

TEST(Link, BestBeamRssMatchesManualSearch) {
  Rig s;
  const geo::Vec3 user{5.0, 3.5, 1.5};
  const double via_helper =
      best_beam_rss_dbm(s.ap, s.codebook, s.channel, user, {}, s.budget);
  double manual = -1e9;
  for (std::size_t i = 0; i < s.codebook.size(); ++i) {
    manual = std::max(manual, rss_dbm(s.ap, s.codebook.beam(i), s.channel,
                                      user, {}, s.budget));
  }
  // The helper picks by geometric gain, which may differ from the
  // multipath-aware optimum by a small margin only.
  EXPECT_NEAR(via_helper, manual, 3.0);
}

TEST(Link, TxPowerShiftsRssOneToOne) {
  Rig s;
  const geo::Vec3 user{4.0, 3.0, 1.5};
  const Awv w = s.ap.steer_at(user);
  LinkBudget hot = s.budget;
  hot.tx_power_dbm += 7.0;
  const double base = rss_dbm(s.ap, w, s.channel, user, {}, s.budget);
  const double boosted = rss_dbm(s.ap, w, s.channel, user, {}, hot);
  EXPECT_NEAR(boosted - base, 7.0, 1e-9);
}

TEST(Link, ReflectionsAddEnergy) {
  Rig s;
  Room no_reflections;
  no_reflections.enable_reflections = false;
  const Channel bare(no_reflections);
  const geo::Vec3 user{4.0, 3.0, 1.5};
  const Awv w = s.ap.steer_at(user);
  const double with = rss_dbm(s.ap, w, s.channel, user, {}, s.budget);
  const double without = rss_dbm(s.ap, w, bare, user, {}, s.budget);
  EXPECT_GE(with, without);
}

TEST(Shadowing, DeterministicPerSeed) {
  ShadowingProcess a(2.5, 0.5, 42);
  ShadowingProcess b(2.5, 0.5, 42);
  for (int i = 0; i < 50; ++i)
    EXPECT_DOUBLE_EQ(a.step(0.033), b.step(0.033));
}

TEST(Shadowing, MarginalVarianceMatchesSigma) {
  ShadowingProcess p(3.0, 0.2, 7);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double v = p.step(0.033);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.35);
}

TEST(Shadowing, TemporallyCorrelatedAtShortLags) {
  ShadowingProcess p(3.0, 1.0, 9);
  double prev = p.step(0.01);
  double abs_step_sum = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double cur = p.step(0.01);
    abs_step_sum += std::abs(cur - prev);
    prev = cur;
  }
  // Steps at dt << tau are much smaller than sigma.
  EXPECT_LT(abs_step_sum / 1000.0, 1.0);
}

}  // namespace
}  // namespace volcast::mmwave
