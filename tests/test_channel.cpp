#include "mmwave/channel.h"

#include <gtest/gtest.h>

#include <cmath>

namespace volcast::mmwave {
namespace {

Channel room_channel() { return Channel(Room{}); }

TEST(Channel, FsplAt60GHzKnownValues) {
  const auto ch = room_channel();
  // FSPL(1 m, 60.48 GHz) = 20 log10(4 pi / lambda) with lambda ~4.96 mm.
  EXPECT_NEAR(ch.fspl_db(1.0), 68.1, 0.2);
  // +6 dB per doubling.
  EXPECT_NEAR(ch.fspl_db(2.0) - ch.fspl_db(1.0), 6.02, 0.01);
  EXPECT_NEAR(ch.fspl_db(4.0) - ch.fspl_db(2.0), 6.02, 0.01);
}

TEST(Channel, FsplClampsTinyDistances) {
  const auto ch = room_channel();
  EXPECT_DOUBLE_EQ(ch.fspl_db(0.0), ch.fspl_db(0.01));
}

TEST(Channel, LosPathIsFirstAndCorrect) {
  const auto ch = room_channel();
  const geo::Vec3 tx{1, 1, 2.5};
  const geo::Vec3 rx{5, 4, 1.5};
  const auto paths = ch.paths(tx, rx);
  ASSERT_FALSE(paths.empty());
  const Path& los = paths.front();
  EXPECT_TRUE(los.line_of_sight);
  EXPECT_NEAR(los.length_m, tx.distance(rx), 1e-12);
  EXPECT_NEAR(los.tx_direction.dot((rx - tx).normalized()), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(los.extra_loss_db, 0.0);
}

TEST(Channel, FirstOrderReflectionsExist) {
  const auto ch = room_channel();
  const auto paths = ch.paths({1, 1, 1.5}, {6, 4, 1.5});
  // Interior points see bounces off most of the six surfaces.
  EXPECT_GE(paths.size(), 5u);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_FALSE(paths[i].line_of_sight);
    EXPECT_GE(paths[i].extra_loss_db, Room{}.reflection_loss_db);
    EXPECT_GT(paths[i].length_m, paths.front().length_m);
  }
}

TEST(Channel, ReflectionGeometryIsSpecular) {
  const Room room{};
  const Channel ch(room);
  const geo::Vec3 tx{2, 1, 1.5};
  const geo::Vec3 rx{6, 1, 1.5};
  for (const Path& p : ch.paths(tx, rx)) {
    if (p.line_of_sight) continue;
    // Bounce point lies on a room face.
    const geo::Vec3& b = p.bounce_point;
    const bool on_face =
        std::abs(b.x) < 1e-6 || std::abs(b.x - room.width_m) < 1e-6 ||
        std::abs(b.y) < 1e-6 || std::abs(b.y - room.length_m) < 1e-6 ||
        std::abs(b.z) < 1e-6 || std::abs(b.z - room.height_m) < 1e-6;
    EXPECT_TRUE(on_face);
    // Path length = |tx-b| + |b-rx| (image construction).
    EXPECT_NEAR(p.length_m, tx.distance(b) + b.distance(rx), 1e-9);
  }
}

TEST(Channel, ReflectionsCanBeDisabled) {
  Room room;
  room.enable_reflections = false;
  const Channel ch(room);
  EXPECT_EQ(ch.paths({1, 1, 1.5}, {5, 4, 1.5}).size(), 1u);
}

TEST(Channel, BodyBlockageAttenuatesLos) {
  const auto ch = room_channel();
  const geo::Vec3 tx{1, 3, 2.0};
  const geo::Vec3 rx{7, 3, 1.5};
  const geo::BodyObstacle body{{4, 3, 0}, 0.25, 1.8};
  const std::vector<geo::BodyObstacle> bodies{body};
  const auto paths = ch.paths(tx, rx, bodies);
  EXPECT_GT(paths.front().extra_loss_db, 10.0);
}

TEST(Channel, ReflectionRoutesAroundBlocker) {
  // The mitigation premise: some bounce path avoids the body entirely.
  const auto ch = room_channel();
  const geo::Vec3 tx{1, 3, 2.0};
  const geo::Vec3 rx{7, 3, 1.5};
  const geo::BodyObstacle body{{4, 3, 0}, 0.25, 1.8};
  const std::vector<geo::BodyObstacle> bodies{body};
  const auto paths = ch.paths(tx, rx, bodies);
  bool clean_bounce = false;
  for (std::size_t i = 1; i < paths.size(); ++i) {
    if (paths[i].extra_loss_db <= Room{}.reflection_loss_db + 1e-9)
      clean_bounce = true;
  }
  EXPECT_TRUE(clean_bounce);
}

TEST(BlockageModel, DeadCenterFullLoss) {
  const BlockageModel model;
  const geo::BodyObstacle body{{5, 0, 0}, 0.25, 1.8};
  EXPECT_NEAR(model.segment_loss_db({0, 0, 1}, {10, 0, 1}, body),
              model.max_loss_db, 1e-9);
}

TEST(BlockageModel, PartialDegradationLevels) {
  // Paper Section 5: blockage does not always cause outage — the loss
  // ramps with how deeply the body cuts the path.
  const BlockageModel model;
  double last = model.max_loss_db + 1.0;
  for (double offset = 0.0; offset <= 0.4; offset += 0.05) {
    const geo::BodyObstacle body{{5, offset, 0}, 0.25, 1.8};
    const double loss = model.segment_loss_db({0, 0, 1}, {10, 0, 1}, body);
    EXPECT_LE(loss, last + 1e-12);
    last = loss;
  }
  // Beyond the clearance radius: zero.
  const geo::BodyObstacle far_body{{5, 1.0, 0}, 0.25, 1.8};
  EXPECT_DOUBLE_EQ(model.segment_loss_db({0, 0, 1}, {10, 0, 1}, far_body),
                   0.0);
}

TEST(BlockageModel, MultipleBodiesAddInDb) {
  const BlockageModel model;
  const geo::BodyObstacle a{{3, 0, 0}, 0.25, 1.8};
  const geo::BodyObstacle b{{7, 0, 0}, 0.25, 1.8};
  const std::vector<geo::BodyObstacle> both{a, b};
  const double la = model.segment_loss_db({0, 0, 1}, {10, 0, 1}, a);
  const double lb = model.segment_loss_db({0, 0, 1}, {10, 0, 1}, b);
  EXPECT_NEAR(model.segment_loss_db({0, 0, 1}, {10, 0, 1}, both), la + lb,
              1e-9);
}


TEST(Channel, SecondOrderReflectionsOptIn) {
  Room room;
  const Channel first(room);
  room.max_reflection_order = 2;
  const Channel second(room);
  const geo::Vec3 tx{1, 1, 2.0};
  const geo::Vec3 rx{6, 4, 1.5};
  const auto p1 = first.paths(tx, rx);
  const auto p2 = second.paths(tx, rx);
  EXPECT_GT(p2.size(), p1.size());
  bool has_double = false;
  for (const Path& p : p2)
    if (p.bounces == 2) has_double = true;
  EXPECT_TRUE(has_double);
}

TEST(Channel, DoubleBouncesCarryTwoReflectionLosses) {
  Room room;
  room.max_reflection_order = 2;
  const Channel ch(room);
  for (const Path& p : ch.paths({1, 1, 2.0}, {6, 4, 1.5})) {
    if (p.bounces == 2)
      EXPECT_GE(p.extra_loss_db, 2.0 * room.reflection_loss_db - 1e-9);
    if (p.bounces == 1)
      EXPECT_GE(p.extra_loss_db, room.reflection_loss_db - 1e-9);
  }
}

TEST(Channel, DoubleBouncesLongerThanSingle) {
  Room room;
  room.max_reflection_order = 2;
  const Channel ch(room);
  const geo::Vec3 tx{1, 1, 2.0};
  const geo::Vec3 rx{6, 4, 1.5};
  double min_double = 1e18;
  double min_single = 1e18;
  for (const Path& p : ch.paths(tx, rx)) {
    if (p.bounces == 2) min_double = std::min(min_double, p.length_m);
    if (p.bounces == 1) min_single = std::min(min_single, p.length_m);
  }
  EXPECT_GT(min_double, tx.distance(rx));
  EXPECT_GT(min_single, tx.distance(rx));
}

TEST(Channel, BouncesFieldConsistentWithLoS) {
  Room room;
  room.max_reflection_order = 2;
  const Channel ch(room);
  for (const Path& p : ch.paths({2, 2, 1.5}, {5, 4, 1.5})) {
    EXPECT_EQ(p.line_of_sight, p.bounces == 0);
  }
}

class ChannelDistanceSweep : public ::testing::TestWithParam<double> {};

TEST_P(ChannelDistanceSweep, LosAlwaysShortestPath) {
  const auto ch = room_channel();
  const geo::Vec3 tx{0.5, 0.5, 2.5};
  const geo::Vec3 rx{0.5 + GetParam(), 3.0, 1.5};
  const auto paths = ch.paths(tx, rx);
  for (std::size_t i = 1; i < paths.size(); ++i)
    EXPECT_GE(paths[i].length_m, paths.front().length_m);
}

INSTANTIATE_TEST_SUITE_P(Distances, ChannelDistanceSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0, 6.0));

}  // namespace
}  // namespace volcast::mmwave
