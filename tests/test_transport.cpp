// Packet transport subsystem: wire-format round trips and hostile-input
// rejection, FEC stripe algebra, train-level loss/recovery behaviour
// (including the hybrid >= ablation acceptance bar), and the determinism
// contract of wire-enabled sessions and fleets under burst-loss chaos.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/fleet.h"
#include "core/session.h"
#include "fault/fault_plan.h"
#include "session_compare.h"
#include "transport/fec.h"
#include "transport/packet.h"
#include "transport/wire.h"

namespace volcast::transport {
namespace {

// ---------------------------------------------------------------- packets

PacketHeader sample_header(std::uint16_t payload_len) {
  PacketHeader h;
  h.seq = 12345;
  h.tick = 67;
  h.frame = 8;
  h.tile = 3;
  h.flags = kFlagLastInTile;
  h.fec_group = 2;
  h.fec_index = 5;
  h.fec_k = 8;
  h.fec_r = 2;
  h.payload_len = payload_len;
  return h;
}

std::vector<std::uint8_t> sample_payload(std::size_t n) {
  std::vector<std::uint8_t> payload(n);
  for (std::size_t i = 0; i < n; ++i)
    payload[i] = static_cast<std::uint8_t>((i * 31 + 7) & 0xFF);
  return payload;
}

TEST(TransportPacket, RoundTripPreservesEveryField) {
  const auto payload = sample_payload(1400);
  const PacketHeader h = sample_header(1400);
  const auto bytes = serialize_packet(h, payload);
  ASSERT_EQ(bytes.size(), PacketHeader::kWireSize + payload.size());

  const Packet p = parse_packet(bytes);
  EXPECT_EQ(p.header.seq, h.seq);
  EXPECT_EQ(p.header.tick, h.tick);
  EXPECT_EQ(p.header.frame, h.frame);
  EXPECT_EQ(p.header.tile, h.tile);
  EXPECT_EQ(p.header.flags, h.flags);
  EXPECT_EQ(p.header.fec_group, h.fec_group);
  EXPECT_EQ(p.header.fec_index, h.fec_index);
  EXPECT_EQ(p.header.fec_k, h.fec_k);
  EXPECT_EQ(p.header.fec_r, h.fec_r);
  EXPECT_EQ(p.header.payload_len, h.payload_len);
  EXPECT_EQ(p.payload, payload);
}

TEST(TransportPacket, RoundTripEmptyPayload) {
  PacketHeader h = sample_header(0);
  h.flags = kFlagRetransmit;
  const Packet p = parse_packet(serialize_packet(h, {}));
  EXPECT_EQ(p.header.flags, kFlagRetransmit);
  EXPECT_TRUE(p.payload.empty());
}

TEST(TransportPacket, SerializeRejectsInconsistentHeaders) {
  const auto payload = sample_payload(100);
  // payload_len must match the span handed in.
  EXPECT_THROW((void)serialize_packet(sample_header(99), payload), WireError);
  // Payload ceiling.
  EXPECT_THROW((void)serialize_packet(
                   sample_header(static_cast<std::uint16_t>(9001)),
                   sample_payload(9001)),
               WireError);
  // Unknown flag bits.
  PacketHeader bad_flags = sample_header(100);
  bad_flags.flags = 0x80;
  EXPECT_THROW((void)serialize_packet(bad_flags, payload), WireError);
}

TEST(TransportPacket, ParseRejectsTruncation) {
  const auto payload = sample_payload(256);
  const auto bytes = serialize_packet(sample_header(256), payload);
  // Every truncation point, including mid-header, must throw — never read
  // out of bounds.
  for (std::size_t n = 0; n < bytes.size(); n += 13) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + static_cast<long>(n));
    EXPECT_THROW((void)parse_packet(cut), WireError) << "length " << n;
  }
}

TEST(TransportPacket, ParseRejectsBadMagicAndVersion) {
  const auto payload = sample_payload(64);
  auto bytes = serialize_packet(sample_header(64), payload);
  auto corrupt = bytes;
  corrupt[0] ^= 0xFF;  // magic
  EXPECT_THROW((void)parse_packet(corrupt), WireError);
  corrupt = bytes;
  corrupt[2] = PacketHeader::kVersion + 1;  // version
  EXPECT_THROW((void)parse_packet(corrupt), WireError);
}

TEST(TransportPacket, ParseRejectsLengthFieldLies) {
  const auto payload = sample_payload(512);
  const auto bytes = serialize_packet(sample_header(512), payload);

  // Header claims more bytes than present.
  auto lie_more = bytes;
  lie_more[24] = 0xFF;
  lie_more[25] = 0x7F;
  EXPECT_THROW((void)parse_packet(lie_more), WireError);

  // Header claims fewer bytes than present (trailing garbage must not be
  // silently ignored).
  auto lie_less = bytes;
  lie_less[24] = 1;
  lie_less[25] = 0;
  EXPECT_THROW((void)parse_packet(lie_less), WireError);
}

TEST(TransportPacket, ParseRejectsChecksumMismatch) {
  const auto payload = sample_payload(300);
  const auto bytes = serialize_packet(sample_header(300), payload);
  // Flip one payload bit: the header parses clean, the checksum must not.
  auto corrupt = bytes;
  corrupt[PacketHeader::kWireSize + 150] ^= 0x10;
  EXPECT_THROW((void)parse_packet(corrupt), WireError);
}

TEST(TransportPacket, ParseRejectsBadFecCoordinates) {
  const auto payload = sample_payload(32);
  PacketHeader h = sample_header(32);
  h.fec_index = 10;  // k + r = 10 -> valid indices are 0..9
  EXPECT_THROW((void)serialize_packet(h, payload), WireError);

  // Parity flag on a packet without FEC grouping.
  PacketHeader parity = sample_header(32);
  parity.flags = kFlagParity;
  parity.fec_k = 0;
  parity.fec_r = 0;
  parity.fec_index = 0;
  EXPECT_THROW((void)serialize_packet(parity, payload), WireError);
}

// -------------------------------------------------------------------- FEC

std::vector<std::vector<std::uint8_t>> sample_group(int k) {
  std::vector<std::vector<std::uint8_t>> data;
  for (int i = 0; i < k; ++i) {
    // Varying lengths so the zero-padding path is on.
    data.push_back(sample_payload(100 + static_cast<std::size_t>(i) * 37));
  }
  return data;
}

TEST(TransportFec, RecoverReproducesAnySingleLossPerStripe) {
  const int k = 8, r = 2;
  const auto data = sample_group(k);
  const auto parity = fec::make_parity(data, r);
  ASSERT_EQ(parity.size(), static_cast<std::size_t>(r));

  for (int lost = 0; lost < k; ++lost) {
    auto damaged = data;
    const std::size_t original_len = damaged[lost].size();
    damaged[lost].clear();
    const auto rebuilt =
        fec::recover(damaged, parity, lost, original_len);
    EXPECT_EQ(rebuilt, data[static_cast<std::size_t>(lost)])
        << "lost index " << lost;
  }
}

TEST(TransportFec, TwoLossesInDistinctStripesRecoverable) {
  std::vector<bool> data_arrived(8, true);
  std::vector<bool> parity_arrived(2, true);
  data_arrived[0] = false;  // stripe 0
  data_arrived[3] = false;  // stripe 1
  EXPECT_TRUE(fec::recoverable(data_arrived, parity_arrived));
  EXPECT_EQ(fec::count_recoverable(data_arrived, parity_arrived), 2);
}

TEST(TransportFec, TwoLossesInSameStripeNotRecoverable) {
  std::vector<bool> data_arrived(8, true);
  std::vector<bool> parity_arrived(2, true);
  data_arrived[0] = false;  // stripe 0
  data_arrived[2] = false;  // stripe 0 again
  EXPECT_FALSE(fec::recoverable(data_arrived, parity_arrived));
  EXPECT_EQ(fec::count_recoverable(data_arrived, parity_arrived), 0);
}

TEST(TransportFec, LostParityDisablesItsStripe) {
  std::vector<bool> data_arrived(8, true);
  std::vector<bool> parity_arrived(2, true);
  data_arrived[1] = false;   // stripe 1
  parity_arrived[1] = false;  // stripe 1's parity gone too
  EXPECT_FALSE(fec::recoverable(data_arrived, parity_arrived));
  // The other stripe is intact, so nothing is countable either.
  EXPECT_EQ(fec::count_recoverable(data_arrived, parity_arrived), 0);
}

TEST(TransportFec, NoParityMeansOnlyCleanGroupsSurvive) {
  std::vector<bool> all(4, true);
  EXPECT_TRUE(fec::recoverable(all, {}));
  all[2] = false;
  EXPECT_FALSE(fec::recoverable(all, {}));
}

// ------------------------------------------------------------------- wire

TransportConfig wire_config() {
  TransportConfig c;
  c.mtu_bytes = 1400;
  c.tile_bytes = 32768;
  c.fec_group_data = 8;
  c.fec_group_parity = 2;
  c.nack_rounds = 2;
  c.nack_rtt_ms = 4.0;
  return c;
}

TrainParams lossy_params(std::uint32_t tick) {
  TrainParams p;
  p.frame_bits = 1.5e6;  // ~6 tiles of ~24 data packets each
  p.per = 0.05;
  p.burst_loss = 0.5;
  p.deadline_ms = 12.0;
  p.seed = 99;
  p.user = 1;
  p.tick = tick;
  p.frame = static_cast<std::uint16_t>(tick % 30);
  return p;
}

TEST(TransportWire, ConfigValidateRejectsNonsense) {
  auto expect_bad = [](auto mutate) {
    TransportConfig c;
    mutate(c);
    EXPECT_THROW(c.validate(), std::invalid_argument);
  };
  expect_bad([](TransportConfig& c) { c.mtu_bytes = 0; });
  expect_bad([](TransportConfig& c) { c.mtu_bytes = 9001; });
  expect_bad([](TransportConfig& c) { c.tile_bytes = 100; });
  expect_bad([](TransportConfig& c) { c.fec_group_data = 0; });
  expect_bad([](TransportConfig& c) { c.fec_group_parity = 9; });
  expect_bad([](TransportConfig& c) { c.nack_rounds = -1; });
  expect_bad([](TransportConfig& c) { c.nack_rtt_ms = 0.0; });
  expect_bad([](TransportConfig& c) { c.target_per = 1.0; });
  expect_bad([](TransportConfig& c) { c.burst_exit = 0.0; });
  EXPECT_NO_THROW(TransportConfig{}.validate());
}

TEST(TransportWire, TrainIsDeterministic) {
  const TransportConfig config = wire_config();
  ReceiverState rx_a, rx_b;
  for (std::uint32_t tick = 0; tick < 20; ++tick) {
    const TrainParams p = lossy_params(tick);
    const TrainResult a =
        transmit_train(config, TransportPolicy::kHybrid, p, rx_a);
    const TrainResult b =
        transmit_train(config, TransportPolicy::kHybrid, p, rx_b);
    EXPECT_EQ(a.lost_packets, b.lost_packets);
    EXPECT_EQ(a.failed_tiles, b.failed_tiles);
    EXPECT_EQ(a.retransmitted_packets, b.retransmitted_packets);
    EXPECT_BITEQ(a.residual_loss, b.residual_loss);
    EXPECT_BITEQ(a.recovery_ms, b.recovery_ms);
  }
  EXPECT_EQ(rx_a.next_seq, rx_b.next_seq);
  EXPECT_BITEQ(rx_a.residual_loss, rx_b.residual_loss);
}

TEST(TransportWire, LosslessWireDeliversEverything) {
  const TransportConfig config = wire_config();
  TrainParams p = lossy_params(0);
  p.per = 0.0;
  p.burst_loss = 0.0;
  ReceiverState rx;
  const TrainResult r =
      transmit_train(config, TransportPolicy::kHybrid, p, rx);
  EXPECT_GT(r.tiles, 0u);
  EXPECT_EQ(r.lost_packets, 0u);
  EXPECT_EQ(r.failed_tiles, 0u);
  EXPECT_EQ(r.retransmitted_packets, 0u);
  EXPECT_TRUE(r.frame_ok());
  EXPECT_BITEQ(r.residual_loss, 0.0);
  // Sequence numbers were still burned for every packet on the wire.
  EXPECT_EQ(rx.next_seq, r.data_packets + r.parity_packets);
}

TEST(TransportWire, TotalLossNeverHangsAndFailsEveryTile) {
  // Worst case the chaos flag can produce: every packet (and every
  // retransmission) is lost. The train must terminate with all tiles
  // failed — the concealment path's job — not loop or crash.
  const TransportConfig config = wire_config();
  TrainParams p = lossy_params(0);
  p.per = 1.0;
  p.burst_loss = 1.0;
  for (const TransportPolicy policy :
       {TransportPolicy::kFec, TransportPolicy::kNack,
        TransportPolicy::kHybrid}) {
    ReceiverState rx;
    const TrainResult r = transmit_train(config, policy, p, rx);
    EXPECT_EQ(r.failed_tiles, r.tiles) << to_string(policy);
    EXPECT_FALSE(r.frame_ok()) << to_string(policy);
    EXPECT_BITEQ(r.residual_loss, 1.0);
  }
}

TEST(TransportWire, ZeroDeadlineDisablesNack) {
  const TransportConfig config = wire_config();
  TrainParams p = lossy_params(3);
  p.deadline_ms = 0.0;  // transfer ate the whole frame budget
  ReceiverState rx;
  const TrainResult r =
      transmit_train(config, TransportPolicy::kNack, p, rx);
  EXPECT_EQ(r.retransmitted_packets, 0u);
  EXPECT_EQ(r.nack_recovered_tiles, 0u);
  EXPECT_BITEQ(r.recovery_ms, 0.0);
}

// The acceptance ablation, pinned at the train level with fresh receiver
// state per (policy, train) so all three policies see identical initial
// loss draws on the data packets they share. Hybrid >= FEC is structural
// (same packet sequence, NACK can only shrink the missing set); hybrid
// >= NACK holds statistically over the sweep (parity shifts later seq
// draws, so individual trains may differ either way).
TEST(TransportWire, HybridRecoversAtLeastAsManyTilesAsAblations) {
  const TransportConfig config = wire_config();
  std::uint64_t fec_failed = 0, nack_failed = 0, hybrid_failed = 0;
  std::uint64_t tiles = 0;
  for (std::uint32_t tick = 0; tick < 300; ++tick) {
    const TrainParams p = lossy_params(tick);
    ReceiverState rx_fec, rx_nack, rx_hybrid;
    const TrainResult fec_r =
        transmit_train(config, TransportPolicy::kFec, p, rx_fec);
    const TrainResult nack_r =
        transmit_train(config, TransportPolicy::kNack, p, rx_nack);
    const TrainResult hybrid_r =
        transmit_train(config, TransportPolicy::kHybrid, p, rx_hybrid);
    // Structural, so it must hold per train, not just in aggregate.
    EXPECT_LE(hybrid_r.failed_tiles, fec_r.failed_tiles) << "tick " << tick;
    fec_failed += fec_r.failed_tiles;
    nack_failed += nack_r.failed_tiles;
    hybrid_failed += hybrid_r.failed_tiles;
    tiles += hybrid_r.tiles;
  }
  // The sweep must actually exercise the loss machinery.
  EXPECT_GT(fec_failed + nack_failed, 0u);
  EXPECT_GT(tiles, 0u);
  EXPECT_LE(hybrid_failed, fec_failed);
  EXPECT_LE(hybrid_failed, nack_failed);
}

TEST(TransportWire, ResidualLossEwmaTracksLoss) {
  const TransportConfig config = wire_config();
  ReceiverState rx;
  TrainParams clean = lossy_params(0);
  clean.per = 0.0;
  clean.burst_loss = 0.0;
  (void)transmit_train(config, TransportPolicy::kFec, clean, rx);
  EXPECT_BITEQ(rx.residual_loss, 0.0);

  TrainParams lossy = lossy_params(1);
  lossy.per = 0.3;
  (void)transmit_train(config, TransportPolicy::kFec, lossy, rx);
  EXPECT_GT(rx.residual_loss, 0.0);
  const double after_loss = rx.residual_loss;

  // Back to clean air: the EWMA must decay, not latch.
  TrainParams clean2 = lossy_params(2);
  clean2.per = 0.0;
  clean2.burst_loss = 0.0;
  (void)transmit_train(config, TransportPolicy::kFec, clean2, rx);
  EXPECT_LT(rx.residual_loss, after_loss);
}

// ---------------------------------------------------- session-level wire

core::SessionConfig wire_session_config(const std::string& policy) {
  core::SessionConfig c;
  c.user_count = 3;
  c.duration_s = 2.0;
  c.master_points = 40'000;
  c.video_frames = 20;
  c.policy_overrides["transport"] = policy;
  fault::ChaosConfig chaos;
  chaos.seed = c.seed;
  chaos.duration_s = c.duration_s;
  chaos.user_count = c.user_count;
  chaos.ap_count = c.ap_count;
  chaos.intensity = 0.8;
  chaos.burst_loss_probability = 0.6;
  c.fault_plan = fault::random_plan(chaos);
  return c;
}

TEST(TransportSession, WireCountersLandInSessionResult) {
  core::Session session(wire_session_config("hybrid"));
  const core::SessionResult r = session.run();
  EXPECT_GT(r.transport.trains, 0u);
  EXPECT_GT(r.transport.data_packets, 0u);
  EXPECT_GT(r.transport.parity_packets, 0u);
  EXPECT_GT(r.transport.lost_packets, 0u);
  EXPECT_GE(r.transport.recovery_ms_max, r.transport.recovery_ms_p99);
  EXPECT_GE(r.transport.recovery_ms_p99, r.transport.recovery_ms_p50);
}

TEST(TransportSession, GoodputPolicyLeavesWireUntouched) {
  core::SessionConfig c = wire_session_config("hybrid");
  c.policy_overrides.erase("transport");
  const core::SessionResult r = core::Session(std::move(c)).run();
  EXPECT_EQ(r.transport.trains, 0u);
  EXPECT_EQ(r.transport.data_packets, 0u);
}

// The determinism-matrix entry for the wire: burst-loss chaos plus the
// hybrid recovery path, bit-identical across worker_threads.
TEST(TransportSession, WireRunBitIdenticalAcrossThreadCounts) {
  auto run_with = [](std::size_t threads) {
    core::SessionConfig c = wire_session_config("hybrid");
    c.worker_threads = threads;
    return core::Session(std::move(c)).run();
  };
  const core::SessionResult serial = run_with(1);
  const core::SessionResult four = run_with(4);
  core::expect_identical(serial, four);
}

TEST(TransportSession, ExtremeLossConfigsComplete) {
  // No loss configuration may crash or deadlock a session; the worst case
  // degrades to concealment.
  for (const char* policy : {"fec", "nack", "hybrid"}) {
    core::SessionConfig c = wire_session_config(policy);
    c.duration_s = 1.0;
    c.transport.target_per = 0.9;
    c.transport.burst_enter = 1.0;
    c.transport.burst_exit = 0.01;
    fault::ChaosConfig chaos;
    chaos.seed = c.seed;
    chaos.duration_s = c.duration_s;
    chaos.user_count = c.user_count;
    chaos.ap_count = c.ap_count;
    chaos.intensity = 1.5;
    chaos.burst_loss_probability = 1.0;
    c.fault_plan = fault::random_plan(chaos);
    const core::SessionResult r = core::Session(std::move(c)).run();
    EXPECT_GT(r.transport.trains, 0u) << policy;
  }
}

TEST(TransportFleet, WireFleetBitIdenticalAcrossParallelism) {
  auto run_with = [](std::size_t parallel) {
    core::FleetConfig fc;
    fc.session = wire_session_config("hybrid");
    fc.session.duration_s = 1.0;
    fc.session.worker_threads = 1;
    fc.sessions = 3;
    fc.parallel_sessions = parallel;
    return core::run_fleet(fc);
  };
  const core::FleetResult serial = run_with(1);
  const core::FleetResult four = run_with(4);
  core::expect_fleet_identical(serial, four);
}

}  // namespace
}  // namespace volcast::transport
