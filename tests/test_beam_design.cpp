#include "mmwave/beam_design.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.h"
#include "mmwave/link.h"

namespace volcast::mmwave {
namespace {

struct Rig {
  Channel channel{Room{}};
  geo::Pose ap_pose = geo::Pose::look_at({4, 0.1, 2.6}, {4, 3, 1.2});
  PhasedArray ap{{}, ap_pose, kMmWaveCarrierHz};
  LinkBudget budget{};
};

TEST(CombineAwvs, RejectsBadInput) {
  EXPECT_THROW((void)combine_awvs({}, {}), std::invalid_argument);
  const Awv a(32, Complex{0.17, 0.0});
  const Awv beams[] = {a, a};
  const double bad_rss[] = {1.0};
  EXPECT_THROW((void)combine_awvs(beams, bad_rss), std::invalid_argument);
  const double neg_rss[] = {1.0, -2.0};
  EXPECT_THROW((void)combine_awvs(beams, neg_rss), std::invalid_argument);
  const Awv short_awv(4, Complex{0.5, 0.0});
  const Awv ragged[] = {a, short_awv};
  const double ok_rss[] = {1.0, 1.0};
  EXPECT_THROW((void)combine_awvs(ragged, ok_rss), std::invalid_argument);
}

TEST(CombineAwvs, OutputPowerNormalized) {
  Rig s;
  const Awv b1 = s.ap.steer_at({2, 3, 1.5});
  const Awv b2 = s.ap.steer_at({6, 3, 1.5});
  const Awv beams[] = {b1, b2};
  const double rss[] = {1e-6, 1e-6};
  const Awv combined = combine_awvs(beams, rss);
  double power = 0.0;
  for (const Complex& c : combined) power += std::norm(c);
  EXPECT_NEAR(power, 1.0, 1e-9);
}

TEST(CombineAwvs, TwoLobesCoverBothUsers) {
  Rig s;
  const geo::Vec3 u1{2.0, 3.0, 1.5};
  const geo::Vec3 u2{6.0, 3.0, 1.5};
  const Awv b1 = s.ap.steer_at(u1);
  const Awv b2 = s.ap.steer_at(u2);
  const Awv beams[] = {b1, b2};
  const double rss[] = {1e-6, 1e-6};
  const Awv combined = combine_awvs(beams, rss);
  const double g1 = s.ap.gain(combined, u1 - s.ap.pose().position);
  const double g2 = s.ap.gain(combined, u2 - s.ap.pose().position);
  // Each user keeps a lobe within ~7 dB of the peak single-user gain
  // (half the power per lobe plus combining loss).
  const double solo1 = s.ap.gain(b1, u1 - s.ap.pose().position);
  const double solo2 = s.ap.gain(b2, u2 - s.ap.pose().position);
  EXPECT_GT(g1, solo1 * 0.2);
  EXPECT_GT(g2, solo2 * 0.2);
}

TEST(CombineAwvs, PaperRuleMatchesInverseRssWeights) {
  // For k=2 the implementation must equal (D2 w1 + D1 w2)/(D1 + D2) up to
  // normalization.
  Rig s;
  const Awv w1 = s.ap.steer_at({2, 3, 1.5});
  const Awv w2 = s.ap.steer_at({6, 3, 1.5});
  const double d1 = 4e-6;
  const double d2 = 1e-6;
  const Awv beams[] = {w1, w2};
  const double rss[] = {d1, d2};
  const Awv ours = combine_awvs(beams, rss);

  Awv paper(w1.size());
  for (std::size_t i = 0; i < w1.size(); ++i)
    paper[i] = (d2 * w1[i] + d1 * w2[i]) / (d1 + d2);
  paper = power_normalized(std::move(paper));

  for (std::size_t i = 0; i < ours.size(); ++i) {
    EXPECT_NEAR(ours[i].real(), paper[i].real(), 1e-9);
    EXPECT_NEAR(ours[i].imag(), paper[i].imag(), 1e-9);
  }
}

TEST(CombineAwvs, WeakerUserGetsMorePower) {
  Rig s;
  const geo::Vec3 u1{2.0, 3.0, 1.5};
  const geo::Vec3 u2{6.0, 3.0, 1.5};
  const Awv b1 = s.ap.steer_at(u1);
  const Awv b2 = s.ap.steer_at(u2);
  const Awv beams[] = {b1, b2};
  // User 2 much weaker: its lobe must come out stronger than user 1's.
  const double rss[] = {1e-5, 1e-7};
  const Awv combined = combine_awvs(beams, rss);
  const double g1 = s.ap.gain(combined, u1 - s.ap.pose().position);
  const double g2 = s.ap.gain(combined, u2 - s.ap.pose().position);
  EXPECT_GT(g2, g1);
}

TEST(CombineAwvs, EqualWeightIsSymmetric) {
  Rig s;
  const Awv b1 = s.ap.steer_at({2, 3, 1.5});
  const Awv b2 = s.ap.steer_at({6, 3, 1.5});
  const Awv beams[] = {b1, b2};
  const Awv combined = combine_awvs_equal(beams);
  const double g1 =
      s.ap.gain(combined, geo::Vec3{2, 3, 1.5} - s.ap.pose().position);
  const double g2 =
      s.ap.gain(combined, geo::Vec3{6, 3, 1.5} - s.ap.pose().position);
  EXPECT_NEAR(ratio_to_db(g1 / g2), 0.0, 2.0);
}

TEST(CombineAwvs, ImprovesMinRssOverCommonSector) {
  // The Fig. 3d claim, end to end: for separated users the combined beam's
  // worst-member RSS beats the best stock common sector.
  Rig s;
  Codebook cb(s.ap);
  const geo::Vec3 u1{2.5, 3.2, 1.5};
  const geo::Vec3 u2{5.8, 2.8, 1.5};
  const geo::Vec3 both[] = {u1, u2};
  const Awv stock = cb.beam(cb.best_common_beam(s.ap, both));
  const double stock_min =
      std::min(rss_dbm(s.ap, stock, s.channel, u1, {}, s.budget),
               rss_dbm(s.ap, stock, s.channel, u2, {}, s.budget));

  const Awv b1 = s.ap.steer_at(u1);
  const Awv b2 = s.ap.steer_at(u2);
  const double r1 = rss_dbm(s.ap, b1, s.channel, u1, {}, s.budget);
  const double r2 = rss_dbm(s.ap, b2, s.channel, u2, {}, s.budget);
  const Awv beams[] = {b1, b2};
  const double rss_mw[] = {dbm_to_mw(r1), dbm_to_mw(r2)};
  const Awv custom = combine_awvs(beams, rss_mw);
  const double custom_min =
      std::min(rss_dbm(s.ap, custom, s.channel, u1, {}, s.budget),
               rss_dbm(s.ap, custom, s.channel, u2, {}, s.budget));
  EXPECT_GT(custom_min, stock_min + 3.0);
}

class CombineGroupSize : public ::testing::TestWithParam<int> {};

TEST_P(CombineGroupSize, PowerNormalizedForKUsers) {
  Rig s;
  std::vector<Awv> beams;
  std::vector<double> rss;
  for (int i = 0; i < GetParam(); ++i) {
    beams.push_back(
        s.ap.steer_at({1.5 + i * 1.2, 3.0, 1.5}));
    rss.push_back(1e-6 * (i + 1));
  }
  const Awv combined = combine_awvs(beams, rss);
  double power = 0.0;
  for (const Complex& c : combined) power += std::norm(c);
  EXPECT_NEAR(power, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CombineGroupSize, ::testing::Values(1, 2, 3,
                                                                    4, 5));

}  // namespace
}  // namespace volcast::mmwave
