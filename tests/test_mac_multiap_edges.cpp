// Edge cases of the MAC scheduler and the multi-AP coordinator (ISSUE 3):
// empty multicast groups, single-user sessions, ticks where every user is
// blocked or absent, and AP handoff happening mid-session under a fault
// plan — the configurations where off-by-one and empty-container bugs live.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <utility>
#include <vector>

#include "core/multi_ap.h"
#include "core/session.h"
#include "fault/fault_plan.h"
#include "mac/schedule.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "session_compare.h"

namespace volcast {
namespace {

using core::SessionConfig;
using core::SessionResult;

SessionConfig tiny_session() {
  SessionConfig c;
  c.user_count = 2;
  c.duration_s = 2.0;
  c.master_points = 40'000;
  c.video_frames = 30;
  return c;
}

// --- mac/schedule ---------------------------------------------------------

TEST(MacEdges, EmptyGroupPlanIsFreeAndFeasible) {
  const mac::GroupPlan empty;
  EXPECT_EQ(empty.transmit_time_s(), 0.0);
  EXPECT_EQ(empty.unicast_time_s(), 0.0);
  EXPECT_EQ(empty.airtime_saving_s(), 0.0);
}

TEST(MacEdges, EmptyScheduleIsFeasibleAtAnyFps) {
  const mac::FrameSchedule schedule;
  EXPECT_EQ(schedule.airtime_s(), 0.0);
  EXPECT_TRUE(schedule.feasible(30.0));
  EXPECT_TRUE(schedule.feasible(1e6));
  EXPECT_EQ(schedule.sustainable_fps(30.0), 30.0);
}

TEST(MacEdges, SingletonGroupDegeneratesToUnicast) {
  mac::GroupPlan plan;
  plan.members.push_back({.user = 0,
                          .total_bits = 1e6,
                          .overlap_bits = 1e6,
                          .unicast_rate_mbps = 500.0});
  plan.multicast_rate_mbps = 400.0;
  plan.group_overlap_bits = 1e6;
  EXPECT_DOUBLE_EQ(plan.transmit_time_s(), plan.unicast_time_s());
}

TEST(MacEdges, ZeroMulticastRateFallsBackToUnicastTime) {
  mac::GroupPlan plan;
  plan.members.push_back({.user = 0,
                          .total_bits = 1e6,
                          .overlap_bits = 5e5,
                          .unicast_rate_mbps = 500.0});
  plan.members.push_back({.user = 1,
                          .total_bits = 1e6,
                          .overlap_bits = 5e5,
                          .unicast_rate_mbps = 250.0});
  plan.multicast_rate_mbps = 0.0;  // no common MCS under the beam
  plan.group_overlap_bits = 5e5;
  EXPECT_DOUBLE_EQ(plan.transmit_time_s(), plan.unicast_time_s());
}

TEST(MacEdges, ZeroRateMembersDoNotDivideByZero) {
  // A fully blocked member (no unicast rate at all) must yield an infinite
  // or huge time, not a crash; feasibility is then false.
  mac::GroupPlan plan;
  plan.members.push_back({.user = 0,
                          .total_bits = 1e6,
                          .overlap_bits = 0.0,
                          .unicast_rate_mbps = 0.0});
  mac::FrameSchedule schedule;
  schedule.groups.push_back(plan);
  EXPECT_FALSE(schedule.feasible(30.0));
  EXPECT_LT(schedule.sustainable_fps(30.0), 1e-8);
}

TEST(MacEdges, ObserveScheduleHandlesEmptyAndSingleton) {
  obs::MetricRegistry metrics;
  const mac::MacOverheads overheads;
  mac::observe_schedule(mac::FrameSchedule{}, overheads, metrics);
  EXPECT_EQ(metrics.counter("mac.groups").value(), 0u);

  mac::FrameSchedule schedule;
  mac::GroupPlan solo;
  solo.members.push_back({.user = 3,
                          .total_bits = 1e6,
                          .overlap_bits = 0.0,
                          .unicast_rate_mbps = 500.0});
  schedule.groups.push_back(solo);
  mac::observe_schedule(schedule, overheads, metrics);
  EXPECT_EQ(metrics.counter("mac.groups").value(), 1u);
  EXPECT_EQ(metrics.counter("mac.scheduled_users").value(), 1u);
  // A singleton is never a multicast group.
  EXPECT_EQ(metrics.counter("mac.multicast_groups").value(), 0u);
}

// --- core/multi_ap --------------------------------------------------------

TEST(MultiApEdges, AssignWithNoPositionsIsEmpty) {
  core::MultiApConfig config;
  config.ap_count = 2;
  const core::MultiApCoordinator coord(core::TestbedConfig{}, config);
  EXPECT_TRUE(coord.assign_users({}).empty());
}

TEST(MultiApEdges, AllApsDownAssignsEveryoneToZero) {
  core::MultiApConfig config;
  config.ap_count = 2;
  const core::MultiApCoordinator coord(core::TestbedConfig{}, config);
  const std::vector<geo::Vec3> positions{{4.0, 1.2, 1.5}, {4.0, 4.8, 1.5}};
  const std::array<bool, 2> down{false, false};
  const auto assignment = coord.assign_users(positions, down);
  ASSERT_EQ(assignment.size(), 2u);
  for (const std::size_t a : assignment) EXPECT_EQ(a, 0u);
}

TEST(MultiApEdges, SingleAvailableApTakesAllUsers) {
  core::MultiApConfig config;
  config.ap_count = 2;
  const core::MultiApCoordinator coord(core::TestbedConfig{}, config);
  const std::vector<geo::Vec3> positions{{4.0, 1.2, 1.5}, {4.0, 4.8, 1.5}};
  const std::array<bool, 2> only_back{false, true};
  for (const std::size_t a : coord.assign_users(positions, only_back))
    EXPECT_EQ(a, 1u);
}

// --- session-level edges --------------------------------------------------

TEST(SessionEdges, SingleUserSessionRuns) {
  SessionConfig c = tiny_session();
  c.user_count = 1;
  core::Session session(std::move(c));
  const SessionResult result = session.run();
  ASSERT_EQ(result.qoe.users.size(), 1u);
  EXPECT_GT(result.qoe.users[0].displayed_fps, 0.0);
  // One user cannot multicast.
  EXPECT_EQ(result.multicast_bit_share, 0.0);
}

TEST(SessionEdges, AllUsersAbsentTickSurvives) {
  // Every user churns out over the same window: ticks where the schedule
  // serves nobody must not crash or deadlock, and users must recover.
  SessionConfig c = tiny_session();
  c.duration_s = 3.0;
  for (std::size_t u = 0; u < c.user_count; ++u) {
    fault::FaultEvent leave;
    leave.t_s = 1.0;
    leave.kind = fault::FaultKind::kUserLeave;
    leave.target = u;
    leave.duration_s = 1.0;
    c.fault_plan.add(leave);
  }
  core::Session session(std::move(c));
  const SessionResult result = session.run();
  EXPECT_EQ(result.faults.faults_injected, 2u);
  for (const auto& u : result.qoe.users) EXPECT_GT(u.displayed_fps, 0.0);
}

TEST(SessionEdges, AllUsersBlockedTickSurvives) {
  // A wall of obstacles between the AP and everyone: deep blockage on every
  // link. The session must keep ticking and report outage user-ticks
  // rather than wedging.
  SessionConfig c = tiny_session();
  c.duration_s = 3.0;
  for (int i = 0; i < 5; ++i) {
    fault::FaultEvent wall;
    wall.t_s = 1.0;
    wall.kind = fault::FaultKind::kObstacleSpawn;
    wall.magnitude = 0.6;
    wall.position = {2.0 + 0.8 * i, 2.0, 1.5};
    c.fault_plan.add(wall);
  }
  core::Session session(std::move(c));
  const SessionResult result = session.run();
  EXPECT_EQ(result.faults.faults_injected, 5u);
  EXPECT_EQ(result.qoe.users.size(), 2u);
}

TEST(SessionEdges, ApHandoffMidSessionUnderFaultPlan) {
  // Two APs; the primary goes dark mid-session. Users must hand off to the
  // surviving AP (telemetry records ap_down/ap_up and the session keeps
  // delivering), then hand back on recovery — bit-identically across
  // thread counts.
  auto make = [] {
    SessionConfig c = tiny_session();
    c.user_count = 3;
    c.duration_s = 3.0;
    c.ap_count = 2;
    fault::FaultEvent outage;
    outage.t_s = 1.0;
    outage.kind = fault::FaultKind::kApOutage;
    outage.target = 0;
    outage.duration_s = 1.0;
    c.fault_plan.add(outage);
    return c;
  };

  obs::Telemetry telemetry({.capture_wall_time = false});
  SessionConfig traced = make();
  traced.worker_threads = 1;
  traced.telemetry = &telemetry;
  core::Session session(std::move(traced));
  const SessionResult result = session.run();

  bool saw_down = false;
  bool saw_up = false;
  for (const obs::Event& e : telemetry.events()) {
    if (e.type == obs::EventType::kApDown && e.ap == 0u) saw_down = true;
    if (e.type == obs::EventType::kApUp && e.ap == 0u) saw_up = saw_down;
  }
  EXPECT_TRUE(saw_down);
  EXPECT_TRUE(saw_up);  // and strictly after the outage
  EXPECT_EQ(result.faults.faults_injected, 1u);
  // Recovery is tracked per degraded user, so one outage can log several.
  EXPECT_GE(result.faults.recoveries, 1u);
  for (const auto& u : result.qoe.users) EXPECT_GT(u.displayed_fps, 0.0);

  // The handoff path follows the same determinism discipline.
  SessionConfig parallel = make();
  parallel.worker_threads = 4;
  core::Session parallel_session(std::move(parallel));
  core::expect_identical(result, parallel_session.run());
}

}  // namespace
}  // namespace volcast
