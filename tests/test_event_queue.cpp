#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace volcast::sim {
namespace {

TEST(EventQueue, StartsAtZeroEmpty) {
  EventQueue q;
  EXPECT_EQ(q.now(), 0.0);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.run(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, FifoForSimultaneousEvents) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, RejectsPastEvents) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(4.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(2.0, [&] { q.schedule_in(1.5, [&] { fired_at = q.now(); }); });
  q.run();
  EXPECT_DOUBLE_EQ(fired_at, 3.5);
}

TEST(EventQueue, HandlersMayScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 5) q.schedule_in(1.0, chain);
  };
  q.schedule_at(0.0, chain);
  EXPECT_EQ(q.run(), 5u);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive) {
  EventQueue q;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0})
    q.schedule_at(t, [&fired, &q] { fired.push_back(q.now()); });
  EXPECT_EQ(q.run_until(2.0), 2u);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 2u);
}

TEST(EventQueue, RunUntilAdvancesClockWithoutEvents) {
  EventQueue q;
  EXPECT_EQ(q.run_until(10.0), 0u);
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(EventQueue, MaxEventsLimit) {
  EventQueue q;
  for (int i = 0; i < 10; ++i) q.schedule_at(i, [] {});
  EXPECT_EQ(q.run(4), 4u);
  EXPECT_EQ(q.pending(), 6u);
}

TEST(EventQueue, NowVisibleInsideHandler) {
  EventQueue q;
  double seen = -1.0;
  q.schedule_at(7.25, [&] { seen = q.now(); });
  q.run();
  EXPECT_DOUBLE_EQ(seen, 7.25);
}

}  // namespace
}  // namespace volcast::sim
