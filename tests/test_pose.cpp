#include "geometry/pose.h"

#include <gtest/gtest.h>

#include <cmath>

namespace volcast::geo {
namespace {

TEST(Pose, DefaultAxes) {
  const Pose p;
  EXPECT_EQ(p.forward(), Vec3(1, 0, 0));
  EXPECT_EQ(p.up(), Vec3(0, 0, 1));
  EXPECT_EQ(p.left(), Vec3(0, 1, 0));
}

TEST(Pose, LookAtFacesTarget) {
  const Pose p = Pose::look_at({1, 2, 3}, {4, 2, 3});
  const Vec3 expected = Vec3{1, 0, 0};
  EXPECT_NEAR(p.forward().dot(expected), 1.0, 1e-12);
  EXPECT_EQ(p.position, Vec3(1, 2, 3));
}

TEST(Pose, LookAtArbitraryDirection) {
  const Vec3 eye{0, 0, 1.5};
  const Vec3 target{2, -1, 0.5};
  const Pose p = Pose::look_at(eye, target);
  const Vec3 dir = (target - eye).normalized();
  EXPECT_NEAR(p.forward().dot(dir), 1.0, 1e-9);
}

TEST(Pose, AxesStayOrthonormal) {
  const Pose p = Pose::look_at({1, 1, 1}, {-2, 3, 0.5});
  EXPECT_NEAR(p.forward().norm(), 1.0, 1e-9);
  EXPECT_NEAR(p.up().norm(), 1.0, 1e-9);
  EXPECT_NEAR(p.forward().dot(p.up()), 0.0, 1e-9);
  EXPECT_NEAR(p.forward().dot(p.left()), 0.0, 1e-9);
  EXPECT_NEAR(p.up().dot(p.left()), 0.0, 1e-9);
}

TEST(Pose, DistanceCombinesTranslationAndRotation) {
  Pose a;
  Pose b;
  EXPECT_DOUBLE_EQ(a.distance(b), 0.0);
  b.position = {3, 4, 0};
  EXPECT_DOUBLE_EQ(a.distance(b), 5.0);
  b.orientation = Quat::from_axis_angle({0, 0, 1}, 0.5);
  EXPECT_NEAR(a.distance(b), 5.5, 1e-9);
}

TEST(Pose, DistanceSymmetric) {
  const Pose a = Pose::look_at({0, 0, 1}, {1, 1, 1});
  const Pose b = Pose::look_at({2, -1, 1.5}, {0, 0, 1});
  EXPECT_NEAR(a.distance(b), b.distance(a), 1e-12);
}

TEST(Pose, InterpolateEndpoints) {
  const Pose a = Pose::look_at({0, 0, 0}, {1, 0, 0});
  const Pose b = Pose::look_at({2, 2, 2}, {2, 5, 2});
  const Pose at0 = interpolate(a, b, 0.0);
  const Pose at1 = interpolate(a, b, 1.0);
  EXPECT_NEAR(at0.distance(a), 0.0, 1e-9);
  EXPECT_NEAR(at1.distance(b), 0.0, 1e-9);
}

TEST(Pose, InterpolateMidpointPosition) {
  Pose a;
  Pose b;
  b.position = {4, 0, 0};
  const Pose mid = interpolate(a, b, 0.5);
  EXPECT_EQ(mid.position, Vec3(2, 0, 0));
}

TEST(Pose, InterpolateRotationMonotone) {
  Pose a;
  Pose b;
  b.orientation = Quat::from_axis_angle({0, 0, 1}, 1.0);
  double last = -1.0;
  for (double t = 0.0; t <= 1.0; t += 0.1) {
    const double angle =
        interpolate(a, b, t).orientation.angular_distance(a.orientation);
    EXPECT_GE(angle, last - 1e-9);
    last = angle;
  }
}

}  // namespace
}  // namespace volcast::geo
