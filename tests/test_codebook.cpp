#include "mmwave/codebook.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.h"

namespace volcast::mmwave {
namespace {

PhasedArray room_array() {
  // AP on a wall looking into the room along +Y, tilted down slightly.
  const geo::Pose pose = geo::Pose::look_at({4, 0.1, 2.6}, {4, 3, 1.2});
  return PhasedArray({}, pose, kMmWaveCarrierHz);
}

TEST(Codebook, SizeMatchesGrid) {
  const auto array = room_array();
  CodebookConfig config;
  config.az_steps = 13;
  config.el_steps = 3;
  const Codebook cb(array, config);
  EXPECT_EQ(cb.size(), 39u);
}

TEST(Codebook, RejectsDegenerateGrid) {
  const auto array = room_array();
  CodebookConfig config;
  config.az_steps = 0;
  EXPECT_THROW(Codebook(array, config), std::invalid_argument);
}

TEST(Codebook, BeamsArePowerNormalized) {
  const auto array = room_array();
  const Codebook cb(array);
  for (std::size_t i = 0; i < cb.size(); ++i) {
    double power = 0.0;
    for (const Complex& c : cb.beam(i)) power += std::norm(c);
    EXPECT_NEAR(power, 1.0, 1e-9) << "beam " << i;
  }
}

TEST(Codebook, SubarrayTaperZeroesEdgeElements) {
  const auto array = room_array();
  CodebookConfig config;
  config.subarray_ny = 6;
  config.subarray_nz = 3;
  const Codebook cb(array, config);
  // 32-element array, 18 active: at least 14 zero weights per beam.
  std::size_t zeros = 0;
  for (const Complex& c : cb.beam(0))
    if (std::norm(c) == 0.0) ++zeros;
  EXPECT_EQ(zeros, 32u - 18u);
}

TEST(Codebook, FullArrayOptionKeepsAllElements) {
  const auto array = room_array();
  CodebookConfig config;
  config.subarray_ny = 0;
  config.subarray_nz = 0;
  const Codebook cb(array, config);
  for (const Complex& c : cb.beam(0)) EXPECT_GT(std::norm(c), 0.0);
}

TEST(Codebook, BestBeamPointsNearTarget) {
  const auto array = room_array();
  const Codebook cb(array);
  const geo::Vec3 target{4.0, 3.0, 1.5};
  const std::size_t best = cb.best_beam_toward(array, target);
  const double g_best =
      array.gain(cb.beam(best), target - array.pose().position);
  // The chosen sector must be within a few dB of the strongest entry and
  // clearly better than a random far sector.
  for (std::size_t i = 0; i < cb.size(); ++i) {
    EXPECT_GE(g_best + 1e-9,
              array.gain(cb.beam(i), target - array.pose().position));
  }
  EXPECT_GT(g_best, 1.0);
}

TEST(Codebook, DifferentTargetsPickDifferentSectors) {
  const auto array = room_array();
  const Codebook cb(array);
  const std::size_t left = cb.best_beam_toward(array, {1.0, 3.0, 1.5});
  const std::size_t right = cb.best_beam_toward(array, {7.0, 3.0, 1.5});
  EXPECT_NE(left, right);
}

TEST(Codebook, CommonBeamMaximizesWorstUser) {
  const auto array = room_array();
  const Codebook cb(array);
  const geo::Vec3 users[] = {{2.5, 3.0, 1.5}, {5.5, 3.0, 1.5}};
  const std::size_t common = cb.best_common_beam(array, users);
  auto min_gain = [&](std::size_t beam) {
    double m = 1e18;
    for (const auto& u : users)
      m = std::min(m, array.gain(cb.beam(beam), u - array.pose().position));
    return m;
  };
  const double chosen = min_gain(common);
  for (std::size_t i = 0; i < cb.size(); ++i)
    EXPECT_GE(chosen + 1e-9, min_gain(i)) << "beam " << i;
}

TEST(Codebook, CommonBeamForSingleUserMatchesBestBeam) {
  const auto array = room_array();
  const Codebook cb(array);
  const geo::Vec3 user{3.0, 2.0, 1.5};
  const geo::Vec3 single[] = {user};
  EXPECT_EQ(cb.best_common_beam(array, single),
            cb.best_beam_toward(array, user));
}

TEST(Codebook, SeparatedUsersGetWorseCommonGainThanUnicast) {
  // The Fig. 3b effect: one sector cannot serve two separated users well.
  const auto array = room_array();
  const Codebook cb(array);
  const geo::Vec3 u1{1.5, 3.0, 1.5};
  const geo::Vec3 u2{6.5, 3.0, 1.5};
  const double unicast_gain =
      array.gain(cb.beam(cb.best_beam_toward(array, u1)),
                 u1 - array.pose().position);
  const geo::Vec3 both[] = {u1, u2};
  const std::size_t common = cb.best_common_beam(array, both);
  const double common_min =
      std::min(array.gain(cb.beam(common), u1 - array.pose().position),
               array.gain(cb.beam(common), u2 - array.pose().position));
  EXPECT_LT(common_min, unicast_gain * 0.25);
}

}  // namespace
}  // namespace volcast::mmwave
