#include "trace/mobility.h"

#include <gtest/gtest.h>

#include <cmath>

namespace volcast::trace {
namespace {

MobilityParams headset_params() {
  Rng rng(1);
  return MobilityParams::for_device(DeviceType::kHeadset, rng, {0, 0, 1.1},
                                    0.0);
}

MobilityParams phone_params() {
  Rng rng(1);
  return MobilityParams::for_device(DeviceType::kSmartphone, rng, {0, 0, 1.1},
                                    0.0);
}

TEST(Mobility, DeterministicForSeed) {
  MobilityModel a(headset_params(), 42);
  MobilityModel b(headset_params(), 42);
  for (int i = 0; i < 100; ++i) {
    const auto pa = a.step(1.0 / 30.0);
    const auto pb = b.step(1.0 / 30.0);
    EXPECT_EQ(pa.position, pb.position);
  }
}

TEST(Mobility, SeedsDiverge) {
  MobilityModel a(headset_params(), 1);
  MobilityModel b(headset_params(), 2);
  double diff = 0.0;
  for (int i = 0; i < 100; ++i)
    diff += a.step(1.0 / 30.0).position.distance(b.step(1.0 / 30.0).position);
  EXPECT_GT(diff, 0.1);
}

TEST(Mobility, ZeroDtIsNoop) {
  MobilityModel m(headset_params(), 7);
  const auto before = m.pose();
  const auto after = m.step(0.0);
  EXPECT_EQ(before.position, after.position);
}

TEST(Mobility, StaysOutsideContent) {
  MobilityModel m(headset_params(), 11);
  for (int i = 0; i < 3000; ++i) {
    const auto pose = m.step(1.0 / 30.0);
    const double radial = std::hypot(pose.position.x, pose.position.y);
    EXPECT_GE(radial, 0.59) << "walked into the content at step " << i;
  }
}

TEST(Mobility, GazePointsRoughlyAtContent) {
  const auto params = phone_params();
  MobilityModel m(params, 13);
  int looking_at_content = 0;
  constexpr int kSteps = 900;
  for (int i = 0; i < kSteps; ++i) {
    const auto pose = m.step(1.0 / 30.0);
    const geo::Vec3 to_content =
        (params.attractor - pose.position).normalized();
    if (pose.forward().dot(to_content) > 0.9) ++looking_at_content;
  }
  EXPECT_GT(looking_at_content, kSteps * 3 / 4);
}

TEST(Mobility, PhoneUsersMoveLessThanHeadsetUsers) {
  // The paper's core PH vs HM distinction.
  auto travel = [](const MobilityParams& params) {
    MobilityModel m(params, 17);
    double total = 0.0;
    geo::Vec3 last = m.pose().position;
    for (int i = 0; i < 900; ++i) {
      const auto pose = m.step(1.0 / 30.0);
      total += pose.position.distance(last);
      last = pose.position;
    }
    return total;
  };
  EXPECT_LT(travel(phone_params()), travel(headset_params()));
}

TEST(Mobility, HeightStaysPlausible) {
  MobilityModel m(headset_params(), 19);
  for (int i = 0; i < 1000; ++i) {
    const auto pose = m.step(1.0 / 30.0);
    EXPECT_GT(pose.position.z, 1.0);
    EXPECT_LT(pose.position.z, 2.2);
  }
}

TEST(GenerateTrace, ProducesRequestedSamples) {
  const Trace trace = generate_trace(headset_params(), 23, 120, 30.0);
  EXPECT_EQ(trace.size(), 120u);
  EXPECT_DOUBLE_EQ(trace.sample_rate_hz, 30.0);
  EXPECT_DOUBLE_EQ(trace.duration_s(), 4.0);
  EXPECT_EQ(trace.device, DeviceType::kHeadset);
}

TEST(GenerateTrace, PosesAreContinuous) {
  const Trace trace = generate_trace(headset_params(), 29, 300, 30.0);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LT(trace.poses[i].position.distance(trace.poses[i - 1].position),
              0.25)
        << "jump at sample " << i;
  }
}

TEST(DeviceType, Names) {
  EXPECT_STREQ(to_string(DeviceType::kSmartphone), "PH");
  EXPECT_STREQ(to_string(DeviceType::kHeadset), "HM");
}

class MobilityDtSweep : public ::testing::TestWithParam<double> {};

TEST_P(MobilityDtSweep, VarianceIndependentOfStepSize) {
  // OU discretization property: radial spread after 10 s should not blow
  // up (or vanish) as dt changes.
  const auto params = headset_params();
  MobilityModel m(params, 31);
  const double dt = GetParam();
  const int steps = static_cast<int>(30.0 / dt);
  double sum_sq = 0.0;
  int count = 0;
  for (int i = 0; i < steps; ++i) {
    const auto pose = m.step(dt);
    const double r = std::hypot(pose.position.x, pose.position.y);
    sum_sq += (r - params.ring_radius_m) * (r - params.ring_radius_m);
    ++count;
  }
  const double rms = std::sqrt(sum_sq / count);
  EXPECT_LT(rms, 1.5);
}

INSTANTIATE_TEST_SUITE_P(Dts, MobilityDtSweep,
                         ::testing::Values(1.0 / 60.0, 1.0 / 30.0, 1.0 / 10.0,
                                           0.2));

}  // namespace
}  // namespace volcast::trace
