#include "mac/schedule.h"

#include <gtest/gtest.h>

namespace volcast::mac {
namespace {

UserDemand demand(std::size_t user, double total_mbit, double rate_mbps) {
  return {user, total_mbit * 1e6, 0.0, rate_mbps};
}

TEST(GroupPlan, EmptyIsZeroTime) {
  const GroupPlan plan;
  EXPECT_EQ(plan.transmit_time_s(), 0.0);
  EXPECT_EQ(plan.unicast_time_s(), 0.0);
}

TEST(GroupPlan, SingletonIsUnicast) {
  GroupPlan plan;
  plan.members.push_back(demand(0, 10.0, 1000.0));  // 10 Mbit at 1 Gbps
  EXPECT_NEAR(plan.transmit_time_s(), 0.010, 1e-12);
  EXPECT_NEAR(plan.unicast_time_s(), 0.010, 1e-12);
  EXPECT_NEAR(plan.airtime_saving_s(), 0.0, 1e-12);
}

TEST(GroupPlan, PaperFormulaTwoUsers) {
  // T_m = S_m/r_m + sum (S_i - S_m)/r_i.
  GroupPlan plan;
  plan.members.push_back(demand(0, 10.0, 1000.0));
  plan.members.push_back(demand(1, 8.0, 800.0));
  plan.group_overlap_bits = 6.0 * 1e6;
  plan.multicast_rate_mbps = 600.0;
  const double expected =
      6.0 / 600.0 + (10.0 - 6.0) / 1000.0 + (8.0 - 6.0) / 800.0;
  EXPECT_NEAR(plan.transmit_time_s(), expected, 1e-12);
}

TEST(GroupPlan, SavingPositiveWhenMulticastRateHigh) {
  GroupPlan plan;
  plan.members.push_back(demand(0, 10.0, 1000.0));
  plan.members.push_back(demand(1, 10.0, 1000.0));
  plan.group_overlap_bits = 8.0 * 1e6;
  plan.multicast_rate_mbps = 900.0;
  EXPECT_GT(plan.airtime_saving_s(), 0.0);
}

TEST(GroupPlan, SavingNegativeWhenMulticastRateLow) {
  // The paper's warning: a bad common MCS makes multicast worse than
  // unicast.
  GroupPlan plan;
  plan.members.push_back(demand(0, 10.0, 1000.0));
  plan.members.push_back(demand(1, 10.0, 1000.0));
  plan.group_overlap_bits = 8.0 * 1e6;
  plan.multicast_rate_mbps = 300.0;
  EXPECT_LT(plan.airtime_saving_s(), 0.0);
}

TEST(GroupPlan, ZeroMulticastRateFallsBackToUnicast) {
  GroupPlan plan;
  plan.members.push_back(demand(0, 10.0, 1000.0));
  plan.members.push_back(demand(1, 10.0, 1000.0));
  plan.group_overlap_bits = 8.0 * 1e6;
  plan.multicast_rate_mbps = 0.0;
  EXPECT_NEAR(plan.transmit_time_s(), plan.unicast_time_s(), 1e-12);
}

TEST(GroupPlan, OverlapLargerThanDemandClampsResidual) {
  // A member whose own tier needs less than the group blob: residual 0,
  // never negative.
  GroupPlan plan;
  plan.members.push_back(demand(0, 4.0, 1000.0));
  plan.members.push_back(demand(1, 10.0, 1000.0));
  plan.group_overlap_bits = 6.0 * 1e6;
  plan.multicast_rate_mbps = 600.0;
  const double expected = 6.0 / 600.0 + 0.0 + (10.0 - 6.0) / 1000.0;
  EXPECT_NEAR(plan.transmit_time_s(), expected, 1e-12);
}

TEST(GroupPlan, UndeliverableResidualIsInfeasible) {
  GroupPlan plan;
  plan.members.push_back({0, 10e6, 0.0, 0.0});  // no unicast rate
  plan.members.push_back(demand(1, 10.0, 1000.0));
  plan.group_overlap_bits = 5e6;
  plan.multicast_rate_mbps = 500.0;
  EXPECT_GE(plan.transmit_time_s(), 1e8);
}

TEST(FrameSchedule, AirtimeSumsGroups) {
  FrameSchedule schedule;
  GroupPlan a;
  a.members.push_back(demand(0, 10.0, 1000.0));
  GroupPlan b;
  b.members.push_back(demand(1, 20.0, 1000.0));
  schedule.groups = {a, b};
  EXPECT_NEAR(schedule.airtime_s(), 0.030, 1e-12);
}

TEST(FrameSchedule, FeasibilityAgainstFrameRate) {
  FrameSchedule schedule;
  GroupPlan a;
  a.members.push_back(demand(0, 30.0, 1000.0));  // 30 ms
  schedule.groups = {a};
  EXPECT_TRUE(schedule.feasible(30.0));  // 33.3 ms budget
  EXPECT_FALSE(schedule.feasible(60.0));
  EXPECT_FALSE(schedule.feasible(0.0));
}

TEST(FrameSchedule, SustainableFpsCapped) {
  FrameSchedule schedule;
  GroupPlan a;
  a.members.push_back(demand(0, 1.0, 1000.0));  // 1 ms -> 1000 fps raw
  schedule.groups = {a};
  EXPECT_DOUBLE_EQ(schedule.sustainable_fps(30.0), 30.0);
  EXPECT_DOUBLE_EQ(schedule.sustainable_fps(2000.0), 1000.0);
}

TEST(FrameSchedule, EmptyScheduleIsFree) {
  const FrameSchedule schedule;
  EXPECT_EQ(schedule.airtime_s(), 0.0);
  EXPECT_TRUE(schedule.feasible(30.0));
  EXPECT_DOUBLE_EQ(schedule.sustainable_fps(30.0), 30.0);
}


TEST(MacOverheads, PerBurstCostsAdd) {
  GroupPlan plan;
  plan.members.push_back(demand(0, 10.0, 1000.0));
  plan.members.push_back(demand(1, 10.0, 1000.0));
  plan.group_overlap_bits = 6.0 * 1e6;
  plan.multicast_rate_mbps = 600.0;
  const MacOverheads ideal{0.0, 0.0};
  const MacOverheads real{80e-6, 10e-6};
  // One multicast burst + two residual bursts = 3 x 90 us.
  EXPECT_NEAR(plan.transmit_time_s(real) - plan.transmit_time_s(ideal),
              3.0 * 90e-6, 1e-12);
  // Unicast: two bursts.
  EXPECT_NEAR(plan.unicast_time_s(real) - plan.unicast_time_s(ideal),
              2.0 * 90e-6, 1e-12);
}

TEST(MacOverheads, NoResidualBurstWhenFullyOverlapped) {
  GroupPlan plan;
  plan.members.push_back(demand(0, 6.0, 1000.0));
  plan.members.push_back(demand(1, 6.0, 1000.0));
  plan.group_overlap_bits = 6.0 * 1e6;  // everything multicast
  plan.multicast_rate_mbps = 600.0;
  const MacOverheads real{80e-6, 10e-6};
  // Only the single multicast burst pays overhead.
  EXPECT_NEAR(plan.transmit_time_s(real),
              6.0 / 600.0 + 90e-6, 1e-12);
}

TEST(MacOverheads, DefaultAirtimeIsIdealMac) {
  GroupPlan plan;
  plan.members.push_back(demand(0, 10.0, 1000.0));
  FrameSchedule schedule;
  schedule.groups = {plan};
  EXPECT_NEAR(schedule.airtime_s(), 0.010, 1e-12);
  EXPECT_GT(schedule.airtime_s({80e-6, 10e-6}), 0.010);
}

class OverlapSweep : public ::testing::TestWithParam<double> {};

TEST_P(OverlapSweep, SavingGrowsWithOverlap) {
  // Property: with equal rates, airtime saving is monotone in S_m.
  const double overlap_mbit = GetParam();
  GroupPlan plan;
  plan.members.push_back(demand(0, 10.0, 1000.0));
  plan.members.push_back(demand(1, 10.0, 1000.0));
  plan.multicast_rate_mbps = 1000.0;
  plan.group_overlap_bits = overlap_mbit * 1e6;
  // saving = S_m / r (one copy instead of two).
  EXPECT_NEAR(plan.airtime_saving_s(), overlap_mbit / 1000.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Overlaps, OverlapSweep,
                         ::testing::Values(0.0, 1.0, 2.5, 5.0, 7.5, 10.0));

}  // namespace
}  // namespace volcast::mac
