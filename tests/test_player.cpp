#include "sim/player.h"

#include <gtest/gtest.h>

namespace volcast::sim {
namespace {

BufferedFrame frame(std::size_t index, std::size_t tier = 0) {
  return {index, tier, 1e6};
}

TEST(Player, RejectsBadRates) {
  EXPECT_THROW(Player(0.0), std::invalid_argument);
  EXPECT_THROW(Player(30.0, 0.0), std::invalid_argument);
}

TEST(Player, WaitsForStartupBuffer) {
  Player p(30.0, 30.0, 2);
  EXPECT_FALSE(p.playing());
  p.deliver(frame(0));
  EXPECT_FALSE(p.playing());
  p.deliver(frame(1));
  EXPECT_TRUE(p.playing());
}

TEST(Player, StallsAccumulateBeforeStart) {
  Player p(30.0);
  p.advance(0.5);
  EXPECT_DOUBLE_EQ(p.stall_time_s(), 0.5);
  EXPECT_EQ(p.played_frames(), 0.0);
}

TEST(Player, PlaysAtDisplayRate) {
  Player p(30.0, 30.0, 1);
  for (std::size_t i = 0; i < 30; ++i) p.deliver(frame(i));
  p.advance(0.5);
  EXPECT_DOUBLE_EQ(p.played_frames(), 15.0);
  EXPECT_EQ(p.buffered_frames(), 15u);
  EXPECT_DOUBLE_EQ(p.buffer_s(), 0.5);
}

TEST(Player, DecodeCapLimitsRate) {
  Player p(60.0, 30.0, 1);  // display wants 60, decoder does 30
  for (std::size_t i = 0; i < 60; ++i) p.deliver(frame(i));
  p.advance(1.0);
  EXPECT_DOUBLE_EQ(p.played_frames(), 30.0);
}

TEST(Player, UnderrunCausesStallAndRebuffer) {
  Player p(30.0, 30.0, 2);
  p.deliver(frame(0));
  p.deliver(frame(1));
  p.advance(1.0);  // only 2 frames available, owes 30
  EXPECT_DOUBLE_EQ(p.played_frames(), 2.0);
  EXPECT_FALSE(p.playing());
  EXPECT_GT(p.stall_time_s(), 0.8);
  // One frame is not enough to restart (startup threshold 2).
  p.deliver(frame(2));
  EXPECT_FALSE(p.playing());
  p.deliver(frame(3));
  EXPECT_TRUE(p.playing());
}

TEST(Player, SteadyStreamNeverStallsAfterStart) {
  Player p(30.0, 30.0, 2);
  p.deliver(frame(0));
  p.deliver(frame(1));
  double stall_after_start = 0.0;
  for (std::size_t i = 2; i < 92; ++i) {
    p.deliver(frame(i));
    const double before = p.stall_time_s();
    p.advance(1.0 / 30.0);
    stall_after_start += p.stall_time_s() - before;
  }
  EXPECT_DOUBLE_EQ(stall_after_start, 0.0);
  EXPECT_NEAR(p.played_frames(), 90.0, 2.0);
}

TEST(Player, MeanTierTracksDeliveredTiers) {
  Player p(30.0, 30.0, 1);
  p.deliver(frame(0, 2));
  p.deliver(frame(1, 0));
  p.advance(2.0 / 30.0 + 1e-9);
  EXPECT_NEAR(p.mean_played_tier(), 1.0, 1e-9);
}

TEST(Player, QualitySwitchesCounted) {
  Player p(30.0, 30.0, 1);
  const std::size_t tiers[] = {0, 0, 1, 1, 2, 1};
  for (std::size_t i = 0; i < 6; ++i) p.deliver(frame(i, tiers[i]));
  p.advance(1.0);
  EXPECT_EQ(p.quality_switches(), 3u);
}

TEST(Player, FractionalAdvanceAccumulates) {
  Player p(30.0, 30.0, 1);
  for (std::size_t i = 0; i < 10; ++i) p.deliver(frame(i));
  // 100 tiny steps of 1/3000 s = 1/30 s total -> exactly one frame.
  for (int i = 0; i < 100; ++i) p.advance(1.0 / 3000.0);
  EXPECT_DOUBLE_EQ(p.played_frames(), 1.0);
}

TEST(Player, ZeroOrNegativeAdvanceIsNoop) {
  Player p(30.0);
  p.advance(0.0);
  p.advance(-1.0);
  EXPECT_DOUBLE_EQ(p.stall_time_s(), 0.0);
}

TEST(Player, ConcealBeforeFirstDeliveryFails) {
  Player p(30.0);
  EXPECT_FALSE(p.conceal());
  EXPECT_EQ(p.concealed_frames(), 0u);
}

TEST(Player, ConcealReplaysLastFrameAndKeepsPlayback) {
  Player p(30.0, 30.0, 1);
  p.deliver(frame(0, 2));
  ASSERT_TRUE(p.conceal());  // frame 1 lost on the air interface
  EXPECT_EQ(p.concealed_frames(), 1u);
  EXPECT_EQ(p.buffered_frames(), 2u);
  p.advance(2.0 / 30.0 + 1e-9);
  EXPECT_DOUBLE_EQ(p.played_frames(), 2.0);
  // The concealed copy keeps the last frame's tier: no quality switch.
  EXPECT_EQ(p.quality_switches(), 0u);
}

TEST(Player, ConcealRunIsBounded) {
  Player p(30.0, 30.0, 1, /*max_conceal_run=*/3);
  p.deliver(frame(0));
  EXPECT_TRUE(p.conceal());
  EXPECT_TRUE(p.conceal());
  EXPECT_TRUE(p.conceal());
  EXPECT_FALSE(p.conceal());  // fourth consecutive loss is skipped
  EXPECT_EQ(p.concealed_frames(), 3u);
  // A real delivery resets the run.
  p.deliver(frame(1));
  EXPECT_TRUE(p.conceal());
  EXPECT_EQ(p.concealed_frames(), 4u);
}

}  // namespace
}  // namespace volcast::sim
