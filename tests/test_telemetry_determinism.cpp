// The telemetry determinism contract (ISSUE 3 acceptance criteria):
//  * SessionResult is bit-identical with telemetry enabled vs disabled, at
//    any worker_threads value;
//  * the JSONL stream is identical — byte-for-byte with wall capture off,
//    modulo the wall_us fields with it on — for worker_threads in
//    {1, 4, hardware} under the chaos fault plan.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <utility>

#include "core/session.h"
#include "fault/fault_plan.h"
#include "obs/telemetry.h"
#include "session_compare.h"

namespace volcast::core {
namespace {

// Multi-AP chaos config: every event-emitting path (fault injection, AP
// outages, probe retries, fallbacks, tier changes, group formation) fires.
SessionConfig chaos_config() {
  SessionConfig c;
  c.user_count = 4;
  c.duration_s = 4.0;
  c.master_points = 40'000;
  c.video_frames = 30;
  c.ap_count = 2;
  fault::ChaosConfig chaos;
  chaos.seed = c.seed;
  chaos.duration_s = c.duration_s;
  chaos.user_count = c.user_count;
  chaos.ap_count = c.ap_count;
  chaos.intensity = 1.5;
  c.fault_plan = fault::random_plan(chaos);
  return c;
}

struct TracedRun {
  SessionResult result;
  std::string jsonl;
};

TracedRun run_traced(std::size_t threads, bool capture_wall) {
  obs::Telemetry telemetry({.capture_wall_time = capture_wall});
  SessionConfig c = chaos_config();
  c.worker_threads = threads;
  c.telemetry = &telemetry;
  Session session(std::move(c));
  TracedRun out;
  out.result = session.run();
  out.jsonl = telemetry.to_jsonl();
  return out;
}

SessionResult run_untraced(std::size_t threads) {
  SessionConfig c = chaos_config();
  c.worker_threads = threads;
  Session session(std::move(c));
  return session.run();
}

/// Removes every `,"wall_us":<number>` field. The writer always emits
/// wall_us as the last span field, so the strip runs to the closing brace.
std::string strip_wall(const std::string& jsonl) {
  static const std::string kKey = ",\"wall_us\":";
  std::string out;
  out.reserve(jsonl.size());
  std::size_t pos = 0;
  while (pos < jsonl.size()) {
    const std::size_t hit = jsonl.find(kKey, pos);
    if (hit == std::string::npos) {
      out.append(jsonl, pos, std::string::npos);
      break;
    }
    out.append(jsonl, pos, hit - pos);
    const std::size_t close = jsonl.find('}', hit);
    if (close == std::string::npos) {
      ADD_FAILURE() << "unterminated span record after wall_us";
      break;
    }
    pos = close;
  }
  return out;
}

TEST(TelemetryDeterminism, JsonlIdenticalAcrossThreadCounts) {
  // Wall capture off: the stream must be byte-identical for serial, a
  // fixed pool, and hardware concurrency (worker_threads = 0).
  const TracedRun serial = run_traced(1, /*capture_wall=*/false);
  const TracedRun four = run_traced(4, /*capture_wall=*/false);
  const TracedRun hardware = run_traced(0, /*capture_wall=*/false);
  ASSERT_FALSE(serial.jsonl.empty());
  EXPECT_EQ(serial.jsonl, four.jsonl);
  EXPECT_EQ(serial.jsonl, hardware.jsonl);
  expect_identical(serial.result, four.result);
  expect_identical(serial.result, hardware.result);
}

TEST(TelemetryDeterminism, WallCaptureOnlyAddsWallFields) {
  // With wall capture on, stripping the wall_us fields must reproduce the
  // wall-free stream exactly — the wall clock adds data, never reorders or
  // perturbs it.
  const TracedRun with_wall = run_traced(4, /*capture_wall=*/true);
  const TracedRun without = run_traced(4, /*capture_wall=*/false);
  EXPECT_EQ(strip_wall(with_wall.jsonl), without.jsonl);
  expect_identical(with_wall.result, without.result);
}

TEST(TelemetryDeterminism, SessionResultUnchangedByTelemetry) {
  // The acceptance criterion: bit-identical SessionResult with telemetry
  // enabled vs disabled, at any thread count.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                    std::size_t{0}}) {
    const SessionResult bare = run_untraced(threads);
    const TracedRun traced = run_traced(threads, /*capture_wall=*/true);
    expect_identical(bare, traced.result);
  }
}

TEST(TelemetryDeterminism, ChaosRunEmitsFaultEvents) {
  // The chaos plan must actually exercise the event paths, otherwise the
  // stream-equality assertions above are vacuous.
  const TracedRun run = run_traced(1, /*capture_wall=*/false);
  bool fault_event = false;
  bool group_event = false;
  for (const obs::Event& e : [] {
         obs::Telemetry tel({.capture_wall_time = false});
         SessionConfig c = chaos_config();
         c.worker_threads = 1;
         c.telemetry = &tel;
         Session session(std::move(c));
         (void)session.run();
         return tel.events();
       }()) {
    fault_event |= e.type == obs::EventType::kFaultInjected;
    group_event |= e.type == obs::EventType::kGroupFormed;
  }
  EXPECT_TRUE(fault_event);
  EXPECT_TRUE(group_event);
  EXPECT_GT(run.jsonl.size(), 1000u);
}

}  // namespace
}  // namespace volcast::core
