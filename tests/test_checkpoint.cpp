// Fleet checkpoint/restore: bit-exact round trips, typed rejection of
// every corruption, fingerprint scoping, and kill-and-resume equivalence
// with an uninterrupted run.
#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/endian.h"
#include "core/workload_bundle.h"
#include "fault/fault_plan.h"
#include "session_compare.h"

namespace volcast::core {
namespace {

FleetConfig tiny_fleet(std::size_t sessions) {
  FleetConfig fc;
  fc.session.user_count = 1;
  fc.session.duration_s = 0.5;
  fc.session.master_points = 20'000;
  fc.session.video_frames = 10;
  fc.session.worker_threads = 1;
  fc.sessions = sessions;
  fc.parallel_sessions = 1;
  return fc;
}

/// An irregular SessionResult exercising every serialized field.
SessionResult sample_result(std::uint64_t salt) {
  SessionResult r;
  r.qoe.duration_s = 0.5 + static_cast<double>(salt);
  sim::UserQoe u;
  u.user = salt;
  u.displayed_fps = 29.972 + static_cast<double>(salt) * 0.125;
  u.stall_time_s = 0.0625;
  u.stall_ratio = 0.125;
  u.mean_quality_tier = 1.5;
  u.quality_switches = 3 + salt;
  u.mean_goodput_mbps = 431.73;
  u.viewport_miss_ratio = 0.031;
  u.mean_m2p_latency_s = 0.021;
  u.max_m2p_latency_s = 0.055;
  r.qoe.users.push_back(u);
  u.user = salt + 100;
  u.displayed_fps = -0.0;  // sign bit must survive the round trip
  r.qoe.users.push_back(u);
  r.multicast_bit_share = 0.625;
  r.mean_group_size = 1.75;
  r.custom_beam_uses = 11 + salt;
  r.stock_beam_uses = 5;
  r.blockage_forecasts = 2;
  r.reflection_switches = 1;
  r.dropped_ticks = 4;
  r.outage_user_ticks = 9;
  r.sls_sweeps = 6;
  r.sls_outage_ticks = 3;
  r.mean_airtime_utilization = 0.4375;
  r.faults.faults_injected = 2;
  r.faults.recoveries = 1;
  r.faults.mean_time_to_recover_s = 0.75;
  r.faults.max_time_to_recover_s = 1.25;
  r.faults.fault_rebuffer_s = 0.21;
  r.faults.group_reformations = 1;
  r.faults.concealed_frames = 7;
  r.faults.skipped_frames = 2;
  r.faults.probe_retries = 3;
  r.faults.fallback_stock_beams = 1;
  r.faults.fallback_reflection_beams = 1;
  r.faults.fallback_tier_drops = 2;
  r.faults.degraded_user_ticks = 13;
  r.faults.unhealthy_user_ticks = 4;
  r.faults.health_transitions = 5;
  return r;
}

FleetCheckpoint sample_checkpoint() {
  FleetCheckpoint ckpt;
  ckpt.fingerprint = 0x1234'5678'9abc'def0ULL;
  ckpt.bundle_hash = 0x0fed'cba9'8765'4321ULL;
  ckpt.slot_count = 5;
  for (std::uint32_t slot : {0u, 2u, 4u}) {
    SlotRecord rec;
    rec.slot = slot;
    rec.outcome.status =
        slot == 2 ? SlotStatus::kFailed : SlotStatus::kCompleted;
    rec.outcome.error_class =
        slot == 2 ? FailureClass::kCrashFault : FailureClass::kNone;
    rec.outcome.message = slot == 2 ? "fault plan: session crash" : "";
    rec.outcome.attempts = slot == 4 ? 2 : 1;
    rec.outcome.seed = 42 + slot;
    rec.outcome.backoff_ticks = slot == 4 ? 17 : 0;
    rec.result = sample_result(slot);
    ckpt.records.push_back(rec);
  }
  return ckpt;
}

/// Scratch path under the build tree; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_((std::filesystem::temp_directory_path() /
               ("volcast_ckpt_test_" + name))
                  .string()) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

TEST(Checkpoint, SerializeDeserializeRoundTripsBitExactly) {
  const FleetCheckpoint ckpt = sample_checkpoint();
  const FleetCheckpoint back = deserialize_checkpoint(serialize_checkpoint(ckpt));
  EXPECT_EQ(back.fingerprint, ckpt.fingerprint);
  EXPECT_EQ(back.bundle_hash, ckpt.bundle_hash);
  EXPECT_EQ(back.slot_count, ckpt.slot_count);
  ASSERT_EQ(back.records.size(), ckpt.records.size());
  for (std::size_t i = 0; i < ckpt.records.size(); ++i) {
    EXPECT_EQ(back.records[i].slot, ckpt.records[i].slot);
    expect_outcome_identical(back.records[i].outcome, ckpt.records[i].outcome);
    expect_identical(back.records[i].result, ckpt.records[i].result);
  }
}

TEST(Checkpoint, SaveLoadRoundTripsThroughAFile) {
  const TempFile file("roundtrip.vckp");
  const FleetCheckpoint ckpt = sample_checkpoint();
  save_checkpoint(ckpt, file.path());
  const FleetCheckpoint back = load_checkpoint(file.path());
  EXPECT_EQ(back.fingerprint, ckpt.fingerprint);
  ASSERT_EQ(back.records.size(), ckpt.records.size());
  expect_identical(back.records[0].result, ckpt.records[0].result);
}

TEST(Checkpoint, MissingFileIsATypedError) {
  EXPECT_THROW((void)load_checkpoint("/nonexistent/dir/fleet.vckp"),
               CheckpointError);
}

TEST(Checkpoint, RejectsEveryHeaderCorruption) {
  std::vector<std::uint8_t> blob = serialize_checkpoint(sample_checkpoint());

  // Truncations at every boundary-ish prefix.
  const std::vector<std::size_t> prefixes = {0,  4,  11, 31,
                                             blob.size() - 9,
                                             blob.size() - 1};
  for (std::size_t keep : prefixes)
    EXPECT_THROW(
        (void)deserialize_checkpoint(
            std::span<const std::uint8_t>(blob.data(), keep)),
        CheckpointError)
        << "prefix " << keep;

  // A single flipped bit anywhere breaks the checksum.
  const std::vector<std::size_t> flips = {0, 5, 17, blob.size() / 2,
                                          blob.size() - 3};
  for (std::size_t at : flips) {
    std::vector<std::uint8_t> bad = blob;
    bad[at] ^= 0x40;
    EXPECT_THROW((void)deserialize_checkpoint(bad), CheckpointError)
        << "flip at " << at;
  }
}

/// Corrupts `blob` at `at`, then re-seals the trailing checksum — proving
/// the structural validation catches it on its own, without the checksum.
std::vector<std::uint8_t> resealed(std::vector<std::uint8_t> blob,
                                   std::size_t at, std::uint8_t value) {
  blob[at] = value;
  const std::uint64_t sum = checkpoint_checksum(
      std::span<const std::uint8_t>(blob.data(), blob.size() - 8));
  for (int i = 0; i < 8; ++i)
    blob[blob.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(sum >> (8 * i));
  return blob;
}

TEST(Checkpoint, BoundsChecksHoldEvenWithAValidChecksum) {
  const std::vector<std::uint8_t> blob =
      serialize_checkpoint(sample_checkpoint());

  // Bad magic (offset 0) and foreign version (offset 4).
  EXPECT_THROW((void)deserialize_checkpoint(resealed(blob, 0, 0xff)),
               CheckpointError);
  EXPECT_THROW((void)deserialize_checkpoint(resealed(blob, 4, 0x7f)),
               CheckpointError);
  // Absurd record count (offset 28, after the v4 bundle_hash): must be
  // rejected before allocation.
  EXPECT_THROW((void)deserialize_checkpoint(resealed(blob, 31, 0xff)),
               CheckpointError);
  // First record's slot (offset 32) beyond slot_count.
  EXPECT_THROW((void)deserialize_checkpoint(resealed(blob, 32, 0xee)),
               CheckpointError);
  // Invalid status enumerator (offset 36).
  EXPECT_THROW((void)deserialize_checkpoint(resealed(blob, 36, 0x9)),
               CheckpointError);
}

TEST(Checkpoint, FingerprintCoversWorkloadButNotParallelism) {
  const FleetConfig base = tiny_fleet(3);
  const std::uint64_t fp = fleet_fingerprint(base);
  EXPECT_EQ(fp, fleet_fingerprint(base));  // pure

  // Parallelism knobs and checkpoint paths are resumption-neutral.
  FleetConfig same = base;
  same.parallel_sessions = 7;
  same.session.worker_threads = 9;
  same.checkpoint_file = "a.vckp";
  same.resume_file = "b.vckp";
  same.kill_after_slots = 1;
  EXPECT_EQ(fp, fleet_fingerprint(same));

  // Everything result-determining must move the fingerprint.
  FleetConfig diff = base;
  diff.sessions = 4;
  EXPECT_NE(fp, fleet_fingerprint(diff));
  diff = base;
  diff.session.seed = 2;
  EXPECT_NE(fp, fleet_fingerprint(diff));
  diff = base;
  diff.session.user_count = 2;
  EXPECT_NE(fp, fleet_fingerprint(diff));
  diff = base;
  diff.session.enable_multicast = false;
  EXPECT_NE(fp, fleet_fingerprint(diff));
  diff = base;
  diff.session.policy_overrides["grouping"] = "pairs_only";
  EXPECT_NE(fp, fleet_fingerprint(diff));
  diff = base;
  fault::FaultEvent e;
  e.kind = fault::FaultKind::kBeamProbeFail;
  e.t_s = 0.1;
  diff.session.fault_plan.add(e);
  EXPECT_NE(fp, fleet_fingerprint(diff));
  diff = base;
  diff.supervision.max_retries = 1;
  EXPECT_NE(fp, fleet_fingerprint(diff));
  diff = base;
  diff.supervision.tick_budget = 10;
  EXPECT_NE(fp, fleet_fingerprint(diff));
}

TEST(Checkpoint, KillAndResumeIsBitIdenticalToUninterrupted) {
  const TempFile file("resume.vckp");
  FleetConfig fc = tiny_fleet(4);

  const FleetResult uninterrupted = run_fleet(fc);

  // Phase 1: killed after two newly finished slots (serial = exact).
  fc.checkpoint_file = file.path();
  fc.kill_after_slots = 2;
  EXPECT_THROW((void)run_fleet(fc), FleetKilled);
  {
    const FleetCheckpoint ckpt = load_checkpoint(file.path());
    EXPECT_EQ(ckpt.slot_count, 4u);
    EXPECT_EQ(ckpt.records.size(), 2u);
    EXPECT_EQ(ckpt.fingerprint, fleet_fingerprint(tiny_fleet(4)));
  }

  // Phase 2: resume the remaining slots; serial and parallel must both
  // reproduce the uninterrupted fleet bit-for-bit.
  fc.kill_after_slots = 0;
  fc.checkpoint_file.clear();
  fc.resume_file = file.path();
  expect_fleet_identical(uninterrupted, run_fleet(fc));
  fc.parallel_sessions = 4;
  expect_fleet_identical(uninterrupted, run_fleet(fc));
}

TEST(Checkpoint, ResumeRestoresStoredSlotsVerbatim) {
  // Doctor a stored result, re-save, resume: the doctored value must come
  // back untouched — proof the restored slot is never recomputed.
  const TempFile file("verbatim.vckp");
  FleetConfig fc = tiny_fleet(3);
  fc.checkpoint_file = file.path();
  fc.kill_after_slots = 1;
  EXPECT_THROW((void)run_fleet(fc), FleetKilled);

  FleetCheckpoint ckpt = load_checkpoint(file.path());
  ASSERT_EQ(ckpt.records.size(), 1u);
  const std::uint32_t slot = ckpt.records[0].slot;
  ckpt.records[0].result.custom_beam_uses = 987'654;
  ckpt.records[0].outcome.attempts = 7;
  save_checkpoint(ckpt, file.path());

  fc.kill_after_slots = 0;
  fc.checkpoint_file.clear();
  fc.resume_file = file.path();
  const FleetResult resumed = run_fleet(fc);
  EXPECT_EQ(resumed.sessions[slot].custom_beam_uses, 987'654u);
  EXPECT_EQ(resumed.outcomes[slot].attempts, 7u);
}

TEST(Checkpoint, ResumeRejectsAForeignConfiguration) {
  const TempFile file("foreign.vckp");
  FleetConfig fc = tiny_fleet(3);
  fc.checkpoint_file = file.path();
  fc.kill_after_slots = 1;
  EXPECT_THROW((void)run_fleet(fc), FleetKilled);

  FleetConfig other = tiny_fleet(3);
  other.session.seed = 99;  // different workload, same shape
  other.resume_file = file.path();
  EXPECT_THROW((void)run_fleet(other), CheckpointError);
}

TEST(Checkpoint, ResumeRejectsAMismatchedBundleHashSpecifically) {
  // A checkpoint whose recorded bundle hash disagrees with the resuming
  // fleet's workload must fail with the bundle-specific message — the
  // shared-content analogue of the fingerprint check, and the guard that
  // keeps a resumed fleet from silently reading different artifacts.
  const TempFile file("bundlehash.vckp");
  FleetConfig fc = tiny_fleet(3);
  fc.session.content_seed = 4242;
  fc.checkpoint_file = file.path();
  fc.kill_after_slots = 1;
  EXPECT_THROW((void)run_fleet(fc), FleetKilled);

  FleetCheckpoint ckpt = load_checkpoint(file.path());
  EXPECT_EQ(ckpt.bundle_hash, workload_bundle_hash(fc.session));
  ckpt.bundle_hash ^= 1;  // fingerprint untouched: only the bundle check fires
  save_checkpoint(ckpt, file.path());

  fc.kill_after_slots = 0;
  fc.checkpoint_file.clear();
  fc.resume_file = file.path();
  try {
    (void)run_fleet(fc);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& err) {
    EXPECT_NE(std::string(err.what()).find("workload bundle hash"),
              std::string::npos)
        << err.what();
  }
}

TEST(Checkpoint, ContinueInPlaceUsesOneFileForBothRoles) {
  const TempFile file("inplace.vckp");
  FleetConfig fc = tiny_fleet(3);
  const FleetResult uninterrupted = run_fleet(fc);

  fc.checkpoint_file = file.path();
  fc.kill_after_slots = 1;
  EXPECT_THROW((void)run_fleet(fc), FleetKilled);

  fc.kill_after_slots = 0;
  fc.resume_file = file.path();  // same file: checkpoint while resuming
  expect_fleet_identical(uninterrupted, run_fleet(fc));
  // The file now holds every slot; a second resume runs nothing new.
  EXPECT_EQ(load_checkpoint(file.path()).records.size(), 3u);
  expect_fleet_identical(uninterrupted, run_fleet(fc));
}

}  // namespace
}  // namespace volcast::core
