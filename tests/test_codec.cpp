#include "pointcloud/codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>

#include "common/rng.h"
#include "pointcloud/video_generator.h"

namespace volcast::vv {
namespace {

PointCloud random_cloud(std::size_t n, std::uint64_t seed) {
  volcast::Rng rng(seed);
  PointCloud cloud;
  for (std::size_t i = 0; i < n; ++i) {
    cloud.add({{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(0, 2)},
               static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
               static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
               static_cast<std::uint8_t>(rng.uniform_int(0, 255))});
  }
  return cloud;
}

/// Multiset of quantized (position, color) tuples, for order-free
/// comparison after decode.
std::multiset<std::tuple<long, long, long, int, int, int>> quantized_multiset(
    const PointCloud& cloud, double step) {
  std::multiset<std::tuple<long, long, long, int, int, int>> out;
  for (const Point& p : cloud.points()) {
    out.insert({std::lround(p.position.x / step),
                std::lround(p.position.y / step),
                std::lround(p.position.z / step), p.r, p.g, p.b});
  }
  return out;
}

TEST(Codec, EmptyCloudRoundTrips) {
  const PointCloud empty;
  const auto blob = encode(empty);
  EXPECT_EQ(blob.size(), kCodecHeaderBytes);
  const PointCloud back = decode(blob);
  EXPECT_TRUE(back.empty());
}

TEST(Codec, SinglePointRoundTrips) {
  PointCloud cloud;
  cloud.add({{0.5, -0.25, 1.0}, 10, 20, 30});
  const PointCloud back = decode(encode(cloud));
  ASSERT_EQ(back.size(), 1u);
  EXPECT_NEAR(back.points()[0].position.x, 0.5, 1e-9);
  EXPECT_EQ(back.points()[0].r, 10);
  EXPECT_EQ(back.points()[0].g, 20);
  EXPECT_EQ(back.points()[0].b, 30);
}

TEST(Codec, PreservesPointCount) {
  const PointCloud cloud = random_cloud(5000, 1);
  EXPECT_EQ(decode(encode(cloud)).size(), 5000u);
}

TEST(Codec, PositionErrorBoundedByResolution) {
  const PointCloud cloud = random_cloud(2000, 2);
  CodecConfig config;
  config.resolution_m = 0.002;
  const PointCloud back = decode(encode(cloud, config));
  // Match nearest by sorting both multisets in a canonical order is
  // overkill; instead verify every decoded point is within the resolution
  // of the cloud bounds and colors survive exactly (delta coding is
  // lossless).
  const auto bounds = cloud.bounds().padded(0.002);
  for (const Point& p : back.points()) {
    EXPECT_TRUE(bounds.contains(p.position));
  }
}

TEST(Codec, LosslessInQuantizedDomain) {
  // Encoding an already-quantized cloud is exactly lossless: decode ->
  // re-encode -> decode must be a fixed point.
  const PointCloud cloud = random_cloud(3000, 3);
  const PointCloud once = decode(encode(cloud));
  const auto blob2 = encode(once);
  const PointCloud twice = decode(blob2);
  ASSERT_EQ(once.size(), twice.size());
  const auto a = quantized_multiset(once, 1e-6);
  const auto b = quantized_multiset(twice, 1e-6);
  EXPECT_EQ(a, b);
}

TEST(Codec, ColorsSurviveExactly) {
  PointCloud cloud;
  volcast::Rng rng(4);
  std::multiset<std::tuple<int, int, int>> colors_in;
  for (int i = 0; i < 1000; ++i) {
    const auto r = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto g = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    cloud.add({{rng.uniform(), rng.uniform(), rng.uniform()}, r, g, b});
    colors_in.insert({r, g, b});
  }
  const PointCloud back = decode(encode(cloud));
  std::multiset<std::tuple<int, int, int>> colors_out;
  for (const Point& p : back.points()) colors_out.insert({p.r, p.g, p.b});
  EXPECT_EQ(colors_in, colors_out);
}

TEST(Codec, NoColorModeReconstructsGrey) {
  PointCloud cloud;
  cloud.add({{0, 0, 0}, 200, 10, 99});
  cloud.add({{1, 1, 1}, 5, 5, 5});
  CodecConfig config;
  config.encode_colors = false;
  const PointCloud back = decode(encode(cloud, config));
  for (const Point& p : back.points()) {
    EXPECT_EQ(p.r, 128);
    EXPECT_EQ(p.g, 128);
    EXPECT_EQ(p.b, 128);
  }
}

TEST(Codec, CompressesWellBelowRaw) {
  VideoConfig vc;
  vc.points_per_frame = 50'000;
  vc.frame_count = 2;
  const VideoGenerator gen(vc);
  const PointCloud cloud = gen.frame(0);
  const auto blob = encode(cloud);
  EXPECT_LT(blob.size(), cloud.raw_size_bytes() / 3);
}

TEST(Codec, RealisticContentHitsPaperBitrateRegime) {
  // The paper's implied budget is ~20-26 bits/point; our figure content
  // must land in that band or Table 1's bitrates drift.
  VideoConfig vc;
  vc.points_per_frame = 100'000;
  vc.frame_count = 2;
  const VideoGenerator gen(vc);
  const PointCloud cloud = gen.frame(0);
  const auto blob = encode(cloud);
  const double bits_per_point =
      8.0 * static_cast<double>(blob.size()) /
      static_cast<double>(cloud.size());
  EXPECT_GT(bits_per_point, 15.0);
  EXPECT_LT(bits_per_point, 32.0);
}

TEST(Codec, InvalidQuantBitsThrows) {
  CodecConfig config;
  config.resolution_m = 0.0;
  config.quant_bits = 0;
  EXPECT_THROW((void)encode(PointCloud{}, config), std::invalid_argument);
  config.quant_bits = 22;
  EXPECT_THROW((void)encode(PointCloud{}, config), std::invalid_argument);
}

TEST(Codec, MalformedHeaderThrows) {
  std::vector<std::uint8_t> junk(kCodecHeaderBytes, 0xab);
  EXPECT_THROW((void)decode(junk), std::runtime_error);
  EXPECT_THROW((void)decode(std::vector<std::uint8_t>{1, 2, 3}),
               std::runtime_error);
}

TEST(Codec, DegeneratePlanarCloudRoundTrips) {
  // All points in a plane (zero extent along z).
  PointCloud cloud;
  volcast::Rng rng(6);
  for (int i = 0; i < 500; ++i)
    cloud.add({{rng.uniform(), rng.uniform(), 0.7}, 1, 2, 3});
  const PointCloud back = decode(encode(cloud));
  ASSERT_EQ(back.size(), 500u);
  for (const Point& p : back.points()) EXPECT_NEAR(p.position.z, 0.7, 1e-9);
}

TEST(Codec, DuplicatePointsPreserved) {
  PointCloud cloud;
  for (int i = 0; i < 64; ++i) cloud.add({{0.25, 0.25, 0.25}, 9, 9, 9});
  EXPECT_EQ(decode(encode(cloud)).size(), 64u);
}

class CodecSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CodecSizeSweep, RoundTripsAtAnySize) {
  const PointCloud cloud = random_cloud(GetParam(), 42 + GetParam());
  const PointCloud back = decode(encode(cloud));
  EXPECT_EQ(back.size(), cloud.size());
}

INSTANTIATE_TEST_SUITE_P(Sizes, CodecSizeSweep,
                         ::testing::Values(1, 2, 3, 10, 100, 1000, 10'000));

class CodecResolutionSweep : public ::testing::TestWithParam<double> {};

TEST_P(CodecResolutionSweep, FinerResolutionCostsMoreBits) {
  const PointCloud cloud = random_cloud(5000, 11);
  CodecConfig coarse;
  coarse.resolution_m = GetParam() * 2.0;
  CodecConfig fine;
  fine.resolution_m = GetParam();
  EXPECT_LE(encode(cloud, coarse).size(), encode(cloud, fine).size());
}

INSTANTIATE_TEST_SUITE_P(Resolutions, CodecResolutionSweep,
                         ::testing::Values(0.0005, 0.001, 0.002, 0.004));

}  // namespace
}  // namespace volcast::vv
