// Refactor-equivalence suite: the staged pipeline must reproduce the
// pre-refactor monolithic session loop bit for bit. The golden file was
// generated from the monolith (tests/gen_session_goldens.cpp) across the
// ablation × fault matrix; every case is checked at two thread counts, so
// the suite simultaneously pins the worker_threads invariance.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "core/workload_bundle.h"
#include "session_golden.h"

#ifndef VOLCAST_GOLDEN_DIR
#error "VOLCAST_GOLDEN_DIR must point at tests/golden"
#endif

namespace volcast::core {
namespace {

/// name -> serialized block, split on the "case." line prefixes.
std::map<std::string, std::string> load_goldens() {
  const std::string path =
      std::string(VOLCAST_GOLDEN_DIR) + "/session_results.golden";
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "missing golden file: " << path;
  std::map<std::string, std::string> blocks;
  std::string line;
  while (std::getline(in, line)) {
    const auto dot = line.find('.');
    if (dot == std::string::npos) continue;
    blocks[line.substr(0, dot)] += line + '\n';
  }
  return blocks;
}

class RefactorEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RefactorEquivalence, MatchesPreRefactorGoldens) {
  const std::size_t threads = GetParam();
  const auto goldens = load_goldens();
  ASSERT_FALSE(goldens.empty());
  for (const GoldenCase& c : golden_matrix()) {
    const auto it = goldens.find(c.name);
    ASSERT_NE(it, goldens.end()) << "no golden block for case " << c.name;
    SessionConfig config = c.config;
    config.worker_threads = threads;
    Session session(config);
    const std::string got = serialize_result(c.name, session.run());
    // Line-by-line so a mismatch names the exact field.
    std::istringstream want_in(it->second);
    std::istringstream got_in(got);
    std::string want_line;
    std::string got_line;
    while (std::getline(want_in, want_line)) {
      ASSERT_TRUE(std::getline(got_in, got_line))
          << c.name << ": serialized result ended early, expected "
          << want_line;
      EXPECT_EQ(got_line, want_line) << "case " << c.name;
    }
    EXPECT_FALSE(std::getline(got_in, got_line))
        << c.name << ": extra serialized field " << got_line;
  }
}

TEST_P(RefactorEquivalence, MatchesGoldensWithOneSharedBundle) {
  // The whole ablation matrix keeps the same workload identity (seed 7,
  // 30k points, 20 frames), so ONE shared bundle must serve every case —
  // and reproduce the pre-refactor golden file byte for byte, proving the
  // shared-setup path changes wall clock only, never results.
  const std::size_t threads = GetParam();
  const auto goldens = load_goldens();
  ASSERT_FALSE(goldens.empty());
  const std::vector<GoldenCase> matrix = golden_matrix();
  std::shared_ptr<const WorkloadBundle> bundle;
  for (const GoldenCase& c : matrix) {
    SessionConfig config = c.config;
    config.worker_threads = threads;
    if (bundle == nullptr) bundle = WorkloadBundle::build(config);
    ASSERT_TRUE(bundle->key() == WorkloadKey::from(config))
        << "case " << c.name << " broke the shared workload identity";
    config.bundle = bundle;
    Session session(config);
    const std::string got = serialize_result(c.name, session.run());
    const auto it = goldens.find(c.name);
    ASSERT_NE(it, goldens.end()) << "no golden block for case " << c.name;
    EXPECT_EQ(got, it->second) << "case " << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, RefactorEquivalence,
                         ::testing::Values(1u, 4u),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return "threads" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace volcast::core
