#include "viewport/predictor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "trace/mobility.h"

namespace volcast::view {
namespace {

geo::Pose pose_at(double x, double y) {
  return geo::Pose::look_at({x, y, 1.5}, {0, 0, 1.1});
}

TEST(StaticPredictor, ReturnsLastPose) {
  StaticPredictor p;
  p.observe(0.0, pose_at(1, 0));
  p.observe(0.1, pose_at(2, 0));
  EXPECT_EQ(p.predict(0.5).position, pose_at(2, 0).position);
}

TEST(ConstVelocity, ExtrapolatesLinearMotion) {
  ConstantVelocityPredictor p;
  p.observe(0.0, pose_at(0, 0));
  p.observe(0.1, pose_at(0.1, 0));
  const auto predicted = p.predict(0.2);
  EXPECT_NEAR(predicted.position.x, 0.3, 1e-9);
}

TEST(ConstVelocity, SingleObservationFallsBack) {
  ConstantVelocityPredictor p;
  p.observe(0.0, pose_at(1, 1));
  EXPECT_EQ(p.predict(0.5).position, pose_at(1, 1).position);
}

TEST(ConstVelocity, RotationExtrapolationCapped) {
  // A fast spin must not extrapolate into many revolutions.
  ConstantVelocityPredictor p;
  geo::Pose a;
  geo::Pose b;
  b.orientation = geo::Quat::from_axis_angle({0, 0, 1}, 0.5);
  p.observe(0.0, a);
  p.observe(0.1, b);
  const auto predicted = p.predict(10.0);  // 100x the sample gap
  // Capped at 4 deltas beyond the last pose = 2.0 rad of extrapolation.
  EXPECT_NEAR(predicted.orientation.angular_distance(b.orientation), 2.0,
              0.2);
}

TEST(LinearRegression, FitsLinearTrajectoryExactly) {
  LinearRegressionPredictor p(10);
  for (int i = 0; i < 10; ++i) {
    const double t = i / 30.0;
    p.observe(t, pose_at(1.0 + t, 2.0 - 0.5 * t));
  }
  const auto predicted = p.predict(0.2);
  const double t_pred = 9.0 / 30.0 + 0.2;
  EXPECT_NEAR(predicted.position.x, 1.0 + t_pred, 1e-6);
  EXPECT_NEAR(predicted.position.y, 2.0 - 0.5 * t_pred, 1e-6);
}

TEST(LinearRegression, ShortHistoryFallsBackToLastPose) {
  LinearRegressionPredictor p;
  p.observe(0.0, pose_at(3, 3));
  EXPECT_EQ(p.predict(0.1).position, pose_at(3, 3).position);
  p.observe(0.1, pose_at(4, 3));
  EXPECT_EQ(p.predict(0.1).position, pose_at(4, 3).position);
}

TEST(LinearRegression, NoObservationGivesDefaultPose) {
  LinearRegressionPredictor p;
  EXPECT_EQ(p.predict(0.1).position, geo::Vec3());
}

TEST(LinearRegression, RejectsBadTargetDistance) {
  EXPECT_THROW(LinearRegressionPredictor(10, 0.0), std::invalid_argument);
  EXPECT_THROW(LinearRegressionPredictor(10, -2.0), std::invalid_argument);
}

TEST(Ewma, SmoothsVelocity) {
  EwmaPredictor p(0.5);
  p.observe(0.0, pose_at(0, 0));
  p.observe(0.1, pose_at(0.1, 0));   // 1 m/s
  p.observe(0.2, pose_at(0.3, 0));   // 2 m/s
  const auto predicted = p.predict(0.1);
  // Velocity estimate is between 1 and 2 m/s.
  EXPECT_GT(predicted.position.x, 0.3 + 0.1 * 1.0 - 1e-9);
  EXPECT_LT(predicted.position.x, 0.3 + 0.1 * 2.0 + 1e-9);
}

TEST(Ewma, RejectsBadAlpha) {
  EXPECT_THROW(EwmaPredictor(0.0), std::invalid_argument);
  EXPECT_THROW(EwmaPredictor(1.5), std::invalid_argument);
}

TEST(Factory, ConstructsAllKnownNames) {
  for (const char* name :
       {"static", "const-velocity", "linear-regression", "ewma", "mlp"}) {
    const auto p = make_predictor(name);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->name(), name);
  }
}

TEST(Factory, UnknownNameThrows) {
  EXPECT_THROW((void)make_predictor("oracle"), std::invalid_argument);
}


TEST(Mlp, RejectsBadLearningRate) {
  EXPECT_THROW(MlpPredictor(5, 12, 0.0), std::invalid_argument);
  EXPECT_THROW(MlpPredictor(5, 12, -1.0), std::invalid_argument);
}

TEST(Mlp, DeterministicForSeed) {
  MlpPredictor a(5, 12, 0.05, 3);
  MlpPredictor b(5, 12, 0.05, 3);
  for (int i = 0; i < 100; ++i) {
    const auto pose = pose_at(0.1 * i, 0.05 * i);
    a.observe(i / 30.0, pose);
    b.observe(i / 30.0, pose);
  }
  const auto pa = a.predict(0.1);
  const auto pb = b.predict(0.1);
  EXPECT_EQ(pa.position, pb.position);
  EXPECT_EQ(a.training_steps(), b.training_steps());
}

TEST(Mlp, TrainsOncePerObservationAfterWarmup) {
  MlpPredictor p(4);
  for (int i = 0; i < 20; ++i) p.observe(i / 30.0, pose_at(0.01 * i, 0));
  // Window capacity is history+1 = 5; training starts once it is full.
  EXPECT_EQ(p.training_steps(), 20u - 5u);
}

TEST(Mlp, WarmupFallsBackGracefully) {
  MlpPredictor p;
  EXPECT_EQ(p.predict(0.1).position, geo::Vec3());
  p.observe(0.0, pose_at(1, 1));
  const auto predicted = p.predict(0.1);
  EXPECT_NEAR(predicted.position.distance(pose_at(1, 1).position), 0.0,
              1e-9);
}

TEST(Mlp, LearnsConstantVelocityMotion) {
  // After enough SGD steps on pure linear motion, the net's 100 ms
  // prediction error must be well below the static baseline's.
  MlpPredictor mlp;
  StaticPredictor still;
  double mlp_err = 0.0;
  double static_err = 0.0;
  int count = 0;
  for (int i = 0; i < 600; ++i) {
    const auto pose = pose_at(-3.0 + 0.01 * i, 2.0);
    mlp.observe(i / 30.0, pose);
    still.observe(i / 30.0, pose);
    if (i < 200) continue;  // training warm-up
    const auto truth = pose_at(-3.0 + 0.01 * (i + 3), 2.0);
    mlp_err += mlp.predict(0.1).position.distance(truth.position);
    static_err += still.predict(0.1).position.distance(truth.position);
    ++count;
  }
  EXPECT_LT(mlp_err / count, 0.6 * static_err / count);
}

/// Property sweep: on smooth mobility traces, motion-aware predictors beat
/// the static baseline at a 100 ms horizon (the agenda's premise that 6DoF
/// is predictable in real time).
class PredictorAccuracy : public ::testing::TestWithParam<const char*> {};

TEST_P(PredictorAccuracy, BeatsOrMatchesStaticOnSmoothTraces) {
  // A deliberately smooth, slowly drifting walk: the regime where the
  // paper says per-user 6DoF prediction works well.
  trace::MobilityParams params;
  params.attractor = {0, 0, 1.1};
  params.ring_radius_m = 2.0;
  params.radial_sigma = 0.01;
  params.radial_rate = 0.2;
  params.angular_sigma = 0.30;  // strong but *persistent* angular motion
  params.angular_rate = 0.02;
  params.home_angle_rad = 0.4;
  params.height_sigma = 0.005;
  params.gaze_sigma_m = 0.04;
  params.gaze_rate = 0.8;
  params.look_away_per_s = 0.0;
  const auto trace = trace::generate_trace(params, 99, 300, 30.0);

  auto evaluate = [&](const std::string& name) {
    const auto p = make_predictor(name);
    double err = 0.0;
    int count = 0;
    const int horizon_samples = 3;  // 100 ms
    for (std::size_t i = 0; i + horizon_samples < trace.size(); ++i) {
      p->observe(i / 30.0, trace.poses[i]);
      if (i < 20) continue;  // warm-up
      const auto predicted = p->predict(horizon_samples / 30.0);
      err += predicted.position.distance(
          trace.poses[i + horizon_samples].position);
      ++count;
    }
    return err / count;
  };

  const double static_err = evaluate("static");
  const double model_err = evaluate(GetParam());
  EXPECT_LE(model_err, static_err * 1.05) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Models, PredictorAccuracy,
                         ::testing::Values("const-velocity",
                                           "linear-regression", "ewma"));

}  // namespace
}  // namespace volcast::view
